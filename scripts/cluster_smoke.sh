#!/usr/bin/env bash
# Cluster smoke: launch two fvevald workers on localhost, drive a
# distributed run through fvevalctl — including a dead-worker retry
# and a 4-engine loopback fleet — and demand byte-identical output
# against the single-process run. Finishes by SIGINT-ing the workers
# and checking they drain and exit 0.
#
# Run via `make cluster-smoke`; CI runs the same script.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT1=${CLUSTER_SMOKE_PORT1:-8191}
PORT2=${CLUSTER_SMOKE_PORT2:-8192}
DEAD_PORT=${CLUSTER_SMOKE_DEAD_PORT:-8199}

BIN=$(mktemp -d)
W1=""
W2=""
cleanup() {
  [ -n "$W1" ] && kill "$W1" 2>/dev/null || true
  [ -n "$W2" ] && kill "$W2" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

echo "cluster-smoke: building fveval, fvevald, fvevalctl"
go build -o "$BIN" ./cmd/fveval ./cmd/fvevald ./cmd/fvevalctl

"$BIN/fvevald" -addr "127.0.0.1:$PORT1" >"$BIN/w1.log" 2>&1 &
W1=$!
"$BIN/fvevald" -addr "127.0.0.1:$PORT2" >"$BIN/w2.log" 2>&1 &
W2=$!

wait_ready() {
  local port=$1
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.1
  done
  echo "cluster-smoke: worker on port $port never came up" >&2
  cat "$BIN"/w*.log >&2
  exit 1
}
wait_ready "$PORT1"
wait_ready "$PORT2"

echo "cluster-smoke: single-process reference run"
"$BIN/fveval" -table 1 2>/dev/null >"$BIN/single.out"

echo "cluster-smoke: 2 HTTP workers"
"$BIN/fvevalctl" run -task table1 \
  -workers "http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2" \
  2>/dev/null >"$BIN/dist2.out"
diff "$BIN/single.out" "$BIN/dist2.out"

echo "cluster-smoke: 2 HTTP workers + 1 dead worker (failure + retry)"
"$BIN/fvevalctl" run -task table1 -shards 4 \
  -workers "http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2,http://127.0.0.1:$DEAD_PORT" \
  2>"$BIN/retry.err" >"$BIN/dist3.out"
diff "$BIN/single.out" "$BIN/dist3.out"
# the dead worker must have produced at least one retried attempt
grep -qE '\([1-9][0-9]* retried\)' "$BIN/retry.err"

echo "cluster-smoke: 4 loopback workers"
"$BIN/fvevalctl" run -task table1 -local 4 2>/dev/null >"$BIN/loop4.out"
diff "$BIN/single.out" "$BIN/loop4.out"

echo "cluster-smoke: graceful shutdown (SIGINT drains, exit 0)"
kill -INT "$W1"
wait "$W1"
kill -INT "$W2"
wait "$W2"
W1=""
W2=""
grep -q "drained" "$BIN/w1.log"
grep -q "drained" "$BIN/w2.log"

echo "cluster-smoke: OK — distributed output byte-identical across 2 HTTP workers, dead-worker retry, and 4 loopback workers"
