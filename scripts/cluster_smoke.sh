#!/usr/bin/env bash
# Cluster smoke: launch a fvevald coordinator (persistent data dir)
# plus two workers that register themselves with it, and drive
# distributed runs through fvevalctl four ways — static -workers
# fleet, dead-worker retry, loopback fleet, and the registered fleet
# via -registry and a server-side -distributed submission — demanding
# byte-identical output against the single-process run each time.
# Then kill -9 the coordinator, restart it on the same data dir, and
# check the finished run is served byte-identical from the recovered
# journal while the workers re-register on their own. A traced
# distributed submission then exercises the observability path: the
# stitched span tree is fetched from /v1/runs/{id}/trace and
# jq-validated (single root, worker spans present), the Perfetto
# export is produced by fvevalctl trace, and the coordinator's -pprof
# heap endpoint is scraped. Finishes with a /metrics scrape (runtime
# gauges + queue-wait histogram included) and a graceful SIGINT drain.
#
# Run via `make cluster-smoke`; CI runs the same script.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT1=${CLUSTER_SMOKE_PORT1:-8191}
PORT2=${CLUSTER_SMOKE_PORT2:-8192}
CPORT=${CLUSTER_SMOKE_COORD_PORT:-8190}
DEAD_PORT=${CLUSTER_SMOKE_DEAD_PORT:-8199}
COORD_URL="http://127.0.0.1:$CPORT"

BIN=$(mktemp -d)
DATA="$BIN/data"
W1=""
W2=""
COORD=""
cleanup() {
  [ -n "$W1" ] && kill "$W1" 2>/dev/null || true
  [ -n "$W2" ] && kill "$W2" 2>/dev/null || true
  [ -n "$COORD" ] && kill "$COORD" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

echo "cluster-smoke: building fveval, fvevald, fvevalctl"
go build -o "$BIN" ./cmd/fveval ./cmd/fvevald ./cmd/fvevalctl

"$BIN/fvevald" -addr "127.0.0.1:$CPORT" -data-dir "$DATA" -pprof >"$BIN/coord.log" 2>&1 &
COORD=$!
"$BIN/fvevald" -addr "127.0.0.1:$PORT1" -join "$COORD_URL" \
  -advertise "http://127.0.0.1:$PORT1" >"$BIN/w1.log" 2>&1 &
W1=$!
"$BIN/fvevald" -addr "127.0.0.1:$PORT2" -join "$COORD_URL" \
  -advertise "http://127.0.0.1:$PORT2" >"$BIN/w2.log" 2>&1 &
W2=$!

wait_ready() {
  local port=$1
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.1
  done
  echo "cluster-smoke: server on port $port never came up" >&2
  cat "$BIN"/*.log >&2
  exit 1
}
wait_ready "$CPORT"
wait_ready "$PORT1"
wait_ready "$PORT2"

# wait_fleet polls the coordinator's registry until both workers'
# self-registrations are live.
wait_fleet() {
  for _ in $(seq 1 100); do
    if [ "$("$BIN/fvevalctl" workers -to "$COORD_URL" 2>/dev/null | grep -c "127.0.0.1:$PORT1\|127.0.0.1:$PORT2")" = 2 ]; then
      return 0
    fi
    sleep 0.3
  done
  echo "cluster-smoke: workers never registered with the coordinator" >&2
  cat "$BIN"/*.log >&2
  exit 1
}
wait_fleet

echo "cluster-smoke: single-process reference run"
"$BIN/fveval" -table 1 2>/dev/null >"$BIN/single.out"

echo "cluster-smoke: 2 HTTP workers (static -workers fleet)"
"$BIN/fvevalctl" run -task table1 \
  -workers "http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2" \
  2>/dev/null >"$BIN/dist2.out"
diff "$BIN/single.out" "$BIN/dist2.out"

echo "cluster-smoke: 2 HTTP workers + 1 dead worker (failure + retry)"
"$BIN/fvevalctl" run -task table1 -shards 4 \
  -workers "http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2,http://127.0.0.1:$DEAD_PORT" \
  2>"$BIN/retry.err" >"$BIN/dist3.out"
diff "$BIN/single.out" "$BIN/dist3.out"
# the dead worker must have produced at least one retried attempt
grep -qE '\([1-9][0-9]* retried\)' "$BIN/retry.err"

echo "cluster-smoke: 4 loopback workers"
"$BIN/fvevalctl" run -task table1 -local 4 2>/dev/null >"$BIN/loop4.out"
diff "$BIN/single.out" "$BIN/loop4.out"

echo "cluster-smoke: registered fleet via -registry (no static worker flags)"
"$BIN/fvevalctl" run -task table1 -registry "$COORD_URL" 2>/dev/null >"$BIN/reg.out"
diff "$BIN/single.out" "$BIN/reg.out"

echo "cluster-smoke: server-side distributed run over the registered fleet"
"$BIN/fvevalctl" submit -to "$COORD_URL" -task table1 -distributed -follow \
  2>/dev/null >"$BIN/sdist.out"
diff "$BIN/single.out" "$BIN/sdist.out"

echo "cluster-smoke: AGR task family distributed across the fleet"
"$BIN/fveval" -task agr 2>/dev/null >"$BIN/agr-single.out"
"$BIN/fvevalctl" run -task agr \
  -workers "http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2" \
  2>/dev/null >"$BIN/agr-dist.out"
diff "$BIN/agr-single.out" "$BIN/agr-dist.out"

echo "cluster-smoke: persistent store survives kill -9"
RID=$("$BIN/fvevalctl" submit -to "$COORD_URL" -task table1 2>/dev/null)
report_when_done() {
  local out=$1
  for _ in $(seq 1 100); do
    if "$BIN/fvevalctl" report -to "$COORD_URL" "$RID" 2>/dev/null >"$out"; then
      return 0
    fi
    sleep 0.3
  done
  echo "cluster-smoke: run $RID never produced a report" >&2
  cat "$BIN"/*.log >&2
  exit 1
}
report_when_done "$BIN/pre-crash.json"
kill -9 "$COORD"
wait "$COORD" 2>/dev/null || true
COORD=""
"$BIN/fvevald" -addr "127.0.0.1:$CPORT" -data-dir "$DATA" -pprof >"$BIN/coord2.log" 2>&1 &
COORD=$!
wait_ready "$CPORT"
report_when_done "$BIN/post-crash.json"
diff "$BIN/pre-crash.json" "$BIN/post-crash.json"

echo "cluster-smoke: workers re-register with the restarted coordinator"
wait_fleet
"$BIN/fvevalctl" run -task table1 -registry "$COORD_URL" 2>/dev/null >"$BIN/reg2.out"
diff "$BIN/single.out" "$BIN/reg2.out"

echo "cluster-smoke: traced distributed run (stitched spans + Perfetto export)"
"$BIN/fvevalctl" submit -to "$COORD_URL" -task table1 -distributed -follow \
  -trace "$BIN/trace.json" 2>/dev/null >"$BIN/traced.out"
diff "$BIN/single.out" "$BIN/traced.out"
# the Chrome export must be non-empty and contain the workers' spans
jq -e '.traceEvents | length > 0' "$BIN/trace.json" >/dev/null
jq -e '[.traceEvents[] | select(.name == "shard-run")] | length > 0' "$BIN/trace.json" >/dev/null
jq -e '[.traceEvents[] | select(.name == "job")] | length > 0' "$BIN/trace.json" >/dev/null
# the raw span dump from /v1/runs/{id}/trace must be one stitched tree:
# exactly one root, and every parent reference resolvable
TRID=$(jq -r '[.traceEvents[] | .args.run_id // empty][0]' "$BIN/trace.json")
[ -n "$TRID" ]
"$BIN/fvevalctl" trace -to "$COORD_URL" -raw "$TRID" >"$BIN/trace.ndjson"
jq -s -e '[.[] | select((.parent // 0) == 0)] | length == 1' "$BIN/trace.ndjson" >/dev/null
jq -s -e '([.[].id] | sort) as $ids | [.[] | select((.parent // 0) != 0) | .parent] | all(. as $p | $ids | bsearch($p) >= 0)' \
  "$BIN/trace.ndjson" >/dev/null

echo "cluster-smoke: pprof heap scrape (-pprof)"
curl -fsS "$COORD_URL/debug/pprof/heap?debug=1" >"$BIN/heap.out"
grep -q '^heap profile:' "$BIN/heap.out"

# A repeat submission against the restarted coordinator hits the
# result cache recovered from the journal, and still renders the same
# report (metrics below then see a non-zero submission count).
echo "cluster-smoke: recovered result cache serves a repeat submission"
"$BIN/fvevalctl" submit -to "$COORD_URL" -task table1 -distributed -follow \
  2>/dev/null >"$BIN/cached.out"
diff "$BIN/single.out" "$BIN/cached.out"

echo "cluster-smoke: /metrics scrape"
"$BIN/fvevalctl" metrics -to "$COORD_URL" >"$BIN/metrics.out"
grep -q '^fveval_runs_submitted_total [1-9]' "$BIN/metrics.out"
grep -q '^fveval_workers_live 2$' "$BIN/metrics.out"
grep -q '^fveval_queue_depth ' "$BIN/metrics.out"
grep -q '^fveval_run_wall_seconds_bucket' "$BIN/metrics.out"
grep -q '^fveval_solver_wall_seconds_bucket' "$BIN/metrics.out"
grep -q '^fveval_queue_wait_seconds_bucket' "$BIN/metrics.out"
grep -q '^fveval_go_goroutines ' "$BIN/metrics.out"
grep -q '^fveval_go_heap_bytes ' "$BIN/metrics.out"

echo "cluster-smoke: graceful shutdown (SIGINT drains, exit 0)"
kill -INT "$W1"
wait "$W1"
kill -INT "$W2"
wait "$W2"
W1=""
W2=""
kill -INT "$COORD"
wait "$COORD"
COORD=""
grep -q "drained" "$BIN/w1.log"
grep -q "drained" "$BIN/w2.log"
grep -q "drained" "$BIN/coord2.log"

echo "cluster-smoke: OK — static, registered, and loopback fleets byte-identical; dead-worker retry exercised; journal recovery byte-identical after kill -9; distributed trace stitched + exported; pprof and /metrics live"
