#!/usr/bin/env bash
# Chaos smoke: the failure-semantics counterpart to cluster_smoke.sh.
# Everything is built with -tags faultinject and driven by seeded
# fault plans, so each stage's failure is deterministic, and every
# stage demands the same invariant: the merged report stays
# byte-identical to the single-process run no matter what breaks.
#
#   1. Client-side loopback coordinator with injected dispatch and
#      response losses — retries recover, output byte-identical.
#   2. Server-side distributed run while the coordinator loses shard
#      responses (breaker trips + recovers) and one worker stalls on
#      an injected engine delay (straggler is hedged).
#   3. kill -9 a worker mid-run — the shard is retried on the
#      survivor and the run still completes byte-identically.
#   4. kill -9 the coordinator mid-run after at least one shard
#      checkpoint hit the journal; restart it with register/heartbeat
#      faults active. The run must RESUME from its checkpointed
#      shards (never land "interrupted") while the workers fight
#      through the injected 503s to re-register, and the final
#      report must byte-match the pre-crash submission's.
#   5. Post-chaos sanity: a clean distributed run over the rebuilt
#      fleet, byte-diffed against the single-process reference, then
#      a graceful SIGINT drain.
#
# Run via `make chaos-smoke`; CI runs the same script.
set -euo pipefail
cd "$(dirname "$0")/.."

CPORT=${CHAOS_SMOKE_COORD_PORT:-8290}
PORT1=${CHAOS_SMOKE_PORT1:-8291}
PORT2=${CHAOS_SMOKE_PORT2:-8292}
PORT3=${CHAOS_SMOKE_PORT3:-8293}
COORD_URL="http://127.0.0.1:$CPORT"

BIN=$(mktemp -d)
DATA="$BIN/data"
W1=""
W2=""
W3=""
COORD=""
cleanup() {
  [ -n "$W1" ] && kill "$W1" 2>/dev/null || true
  [ -n "$W2" ] && kill "$W2" 2>/dev/null || true
  [ -n "$W3" ] && kill "$W3" 2>/dev/null || true
  [ -n "$COORD" ] && kill "$COORD" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

echo "chaos-smoke: building fveval, fvevald, fvevalctl (-tags faultinject)"
go build -tags faultinject -o "$BIN" ./cmd/fveval ./cmd/fvevald ./cmd/fvevalctl

wait_ready() {
  local port=$1
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.1
  done
  echo "chaos-smoke: server on port $port never came up" >&2
  cat "$BIN"/*.log >&2
  exit 1
}

# wait_fleet N polls the coordinator's registry until N distinct
# workers are live.
wait_fleet() {
  local want=$1
  for _ in $(seq 1 100); do
    if [ "$("$BIN/fvevalctl" workers -to "$COORD_URL" 2>/dev/null | grep -c "127.0.0.1:$PORT1\|127.0.0.1:$PORT2\|127.0.0.1:$PORT3")" = "$want" ]; then
      return 0
    fi
    sleep 0.3
  done
  echo "chaos-smoke: fleet never reached $want live workers" >&2
  cat "$BIN"/*.log >&2
  exit 1
}

# wait_checkpoints N polls the coordinator's journal until at least N
# shard checkpoint records have been appended.
wait_checkpoints() {
  local want=$1
  for _ in $(seq 1 200); do
    if [ "$(grep -c '"op":"checkpoint"' "$DATA/journal.jsonl" 2>/dev/null || true)" -ge "$want" ]; then
      return 0
    fi
    sleep 0.05
  done
  echo "chaos-smoke: journal never reached $want checkpoint records" >&2
  cat "$BIN"/*.log >&2
  exit 1
}

# report_when_done RID OUT polls until the run is terminal with a
# payload, then writes its sorted report JSON to OUT.
report_when_done() {
  local rid=$1 out=$2
  for _ in $(seq 1 200); do
    if "$BIN/fvevalctl" report -to "$COORD_URL" "$rid" 2>"$BIN/report.err" >"$BIN/report.json"; then
      jq -S .report "$BIN/report.json" >"$out"
      return 0
    fi
    sleep 0.3
  done
  echo "chaos-smoke: run $rid never produced a report" >&2
  cat "$BIN/report.err" "$BIN"/*.log >&2
  exit 1
}

echo "chaos-smoke: single-process reference run"
"$BIN/fveval" -table 1 2>/dev/null >"$BIN/single.out"

echo "chaos-smoke: stage 1 — loopback coordinator with injected dispatch/response losses"
"$BIN/fvevalctl" run -task table1 -local 2 -shards 4 -seed 7 \
  -faults 'seed=7;dist.dispatch:count=1;dist.response:count=1' \
  2>"$BIN/stage1.err" >"$BIN/stage1.out"
diff "$BIN/single.out" "$BIN/stage1.out"
grep -q 'fault injection active' "$BIN/stage1.err"
# both injected losses must surface as retried shard attempts
grep -qE '\([1-9][0-9]* retried\)' "$BIN/stage1.err"

echo "chaos-smoke: stage 2 — cluster up (coordinator loses responses, one worker stalls)"
"$BIN/fvevald" -addr "127.0.0.1:$CPORT" -data-dir "$DATA" -worker-ttl 6s \
  -faults 'seed=11;dist.response:count=2' >"$BIN/coord.log" 2>&1 &
COORD=$!
"$BIN/fvevald" -addr "127.0.0.1:$PORT1" -join "$COORD_URL" \
  -advertise "http://127.0.0.1:$PORT1" >"$BIN/w1.log" 2>&1 &
W1=$!
"$BIN/fvevald" -addr "127.0.0.1:$PORT2" -join "$COORD_URL" \
  -advertise "http://127.0.0.1:$PORT2" \
  -faults 'seed=2;engine.job:count=1,delay=20s' >"$BIN/w2a.log" 2>&1 &
W2=$!
wait_ready "$CPORT"
wait_ready "$PORT1"
wait_ready "$PORT2"
wait_fleet 2

# Run A: the coordinator drops the first two shard responses (breaker
# trips, then the half-open probe recovers) and W2's shard stalls on
# the injected engine delay until the hedger re-dispatches it.
RID_A=$("$BIN/fvevalctl" submit -to "$COORD_URL" -task table1 -distributed -cache=false 2>/dev/null)
report_when_done "$RID_A" "$BIN/ref_report.json"

echo "chaos-smoke: stage 3 — kill -9 a worker mid-run"
kill -9 "$W2"
wait "$W2" 2>/dev/null || true
"$BIN/fvevald" -addr "127.0.0.1:$PORT2" -join "$COORD_URL" \
  -advertise "http://127.0.0.1:$PORT2" \
  -faults 'seed=2;engine.job:count=1,delay=20s' >"$BIN/w2b.log" 2>&1 &
W2=$!
wait_ready "$PORT2"
wait_fleet 2
RID_B=$("$BIN/fvevalctl" submit -to "$COORD_URL" -task table1 -distributed -cache=false 2>/dev/null)
# run A journaled one checkpoint per shard (2); once run B's first
# shard checkpoint lands, the stalled worker owns the other shard.
wait_checkpoints 3
kill -9 "$W2"
wait "$W2" 2>/dev/null || true
W2=""
report_when_done "$RID_B" "$BIN/runb_report.json"
diff "$BIN/ref_report.json" "$BIN/runb_report.json"

"$BIN/fvevalctl" metrics -to "$COORD_URL" >"$BIN/metrics1.out"
grep -qE '^fveval_shard_retries_total [1-9]' "$BIN/metrics1.out"
grep -qE '^fveval_shard_hedges_total [1-9]' "$BIN/metrics1.out"
grep -qE '^fveval_breaker_trips_total [1-9]' "$BIN/metrics1.out"
grep -qE '^fveval_breaker_recoveries_total [1-9]' "$BIN/metrics1.out"
grep -qE '^fveval_checkpoints_total [1-9]' "$BIN/metrics1.out"
grep -qE '^fveval_faults_injected_total [1-9]' "$BIN/metrics1.out"

echo "chaos-smoke: stage 4 — kill -9 the coordinator mid-run, resume from checkpoints"
# Two stalled workers hold two of the three shards, so the run cannot
# finish before the kill; the third (fast) shard's checkpoint is the
# kill trigger.
"$BIN/fvevald" -addr "127.0.0.1:$PORT2" -join "$COORD_URL" \
  -advertise "http://127.0.0.1:$PORT2" \
  -faults 'seed=2;engine.job:count=1,delay=20s' >"$BIN/w2c.log" 2>&1 &
W2=$!
"$BIN/fvevald" -addr "127.0.0.1:$PORT3" -join "$COORD_URL" \
  -advertise "http://127.0.0.1:$PORT3" \
  -faults 'seed=4;engine.job:count=1,delay=20s' >"$BIN/w3.log" 2>&1 &
W3=$!
wait_ready "$PORT2"
wait_ready "$PORT3"
wait_fleet 3
RID_C=$("$BIN/fvevalctl" submit -to "$COORD_URL" -task table1 -distributed -cache=false 2>/dev/null)
wait_checkpoints 5
kill -9 "$COORD"
wait "$COORD" 2>/dev/null || true
COORD=""
# Restart on the same journal with registration chaos still active:
# the first two heartbeats and the first re-registration get 503s,
# and the workers must fight through them for the resume to proceed.
"$BIN/fvevald" -addr "127.0.0.1:$CPORT" -data-dir "$DATA" -worker-ttl 6s \
  -faults 'seed=3;worker.heartbeat:count=2;worker.register:count=1' >"$BIN/coord2.log" 2>&1 &
COORD=$!
wait_ready "$CPORT"
report_when_done "$RID_C" "$BIN/runc_report.json"
diff "$BIN/ref_report.json" "$BIN/runc_report.json"

"$BIN/fvevalctl" metrics -to "$COORD_URL" >"$BIN/metrics2.out"
# the resumed run restored at least one checkpointed shard...
grep -qE '^fveval_checkpoint_restores_total [1-9]' "$BIN/metrics2.out"
# ...was never written off as interrupted...
if grep -qE 'fveval_runs_total\{status="interrupted"\} [1-9]' "$BIN/metrics2.out"; then
  echo "chaos-smoke: resumed run was reported interrupted" >&2
  cat "$BIN"/coord2.log >&2
  exit 1
fi
# ...and the registration faults actually fired on the new process.
grep -qE '^fveval_faults_injected_total [1-9]' "$BIN/metrics2.out"

echo "chaos-smoke: stage 5 — clean distributed run over the rebuilt fleet"
wait_fleet 3
"$BIN/fvevalctl" submit -to "$COORD_URL" -task table1 -distributed -follow -cache=false \
  2>/dev/null >"$BIN/final.out"
diff "$BIN/single.out" "$BIN/final.out"

echo "chaos-smoke: graceful shutdown (SIGINT drains, exit 0)"
kill -INT "$W1"
wait "$W1"
kill -INT "$W2"
wait "$W2"
kill -INT "$W3"
wait "$W3"
W1=""
W2=""
W3=""
kill -INT "$COORD"
wait "$COORD"
COORD=""
grep -q "drained" "$BIN/w1.log"
grep -q "drained" "$BIN/w2c.log"
grep -q "drained" "$BIN/w3.log"
grep -q "drained" "$BIN/coord2.log"

echo "chaos-smoke: OK — injected dispatch/response/engine faults recovered byte-identically; worker kill -9 survived; coordinator kill -9 resumed from shard checkpoints through registration chaos; fleet drained clean"
