// Design2SVA: generate a synthetic FSM, ask a proxy model for
// assertions over its formal testbench, and prove each suggestion with
// the model checker — the end-to-end flow behind Table 5.
package main

import (
	"fmt"

	"fveval/internal/core"
	"fveval/internal/gen/rtlgen"
	"fveval/internal/llm"
	"fveval/internal/mc"
)

func main() {
	inst := rtlgen.GenerateFSM(rtlgen.FSMParams{
		States: 4, Edges: 8, Width: 16, Complexity: 2, Seed: 42,
	})
	fmt.Println("=== generated design ===")
	fmt.Println(inst.Design)

	model := llm.ModelByName("gpt-4o")
	prompt := llm.BuildDesignPrompt(inst)
	for sample := 0; sample < 4; sample++ {
		resp := llm.ExtractCode(model.Generate(prompt, sample))
		syntax, proven := core.JudgeDesign(inst, resp, mc.Options{})
		fmt.Printf("--- %s attempt %d ---\n%s\n", model.Name(), sample+1, resp)
		fmt.Printf("Syntax: %s | Functionality (is proven): %s\n\n",
			passFail(syntax), passFail(proven))
	}
}

func passFail(b bool) string {
	if b {
		return "pass"
	}
	return "fail"
}
