// Quickstart: list the task registry, run NL2SVA-Human on a slice of
// the fleet through the single Run entry point, stream per-job
// progress, and print the Table-1-style report.
package main

import (
	"context"
	"fmt"
	"log"

	"fveval"
)

func main() {
	fmt.Println("=== registered tasks ===")
	for _, t := range fveval.Tasks() {
		fmt.Printf("%-24s %s\n", t.Name, t.Title)
	}
	fmt.Println()

	run, err := fveval.Run(context.Background(), fveval.Request{
		Task:    "nl2sva-human",
		Params:  fveval.Params{Models: []string{"gpt-4o", "llama-3.1-70b"}},
		Options: fveval.Options{Limit: 20},
		Progress: func(ev fveval.Event) {
			if ev.Done == ev.Total {
				fmt.Printf("evaluated %d jobs\n\n", ev.Total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fveval.FormatTable6())
	fmt.Println(run.Report.Render())

	// Inspect one judged response end to end: the unified report keeps
	// the per-instance outcomes of greedy tasks.
	for _, o := range run.Report.Groups[0].Rows[0].Outcomes[:3] {
		fmt.Printf("instance %s: syntax=%v func=%v partial=%v bleu=%.3f\n",
			o.InstanceID, o.Syntax, o.Full, o.Partial, o.BLEU)
	}
	fmt.Printf("\nrun metadata: %d jobs in %d ms; %s\n",
		run.Stats.Jobs, run.Stats.WallMS, run.Stats.Cache)
}
