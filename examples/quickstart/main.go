// Quickstart: evaluate two models on a slice of NL2SVA-Human and print
// the Table-1-style report plus the dataset composition.
package main

import (
	"fmt"
	"log"

	"fveval"
)

func main() {
	models := []fveval.Model{
		fveval.ModelByName("gpt-4o"),
		fveval.ModelByName("llama-3.1-70b"),
	}
	reports, err := fveval.RunNL2SVAHuman(models, fveval.Options{Limit: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fveval.FormatTable6())
	fmt.Println(fveval.FormatTable1(reports))

	// Inspect one judged response end to end.
	r := reports[0]
	for _, o := range r.Outcomes[:3] {
		fmt.Printf("instance %s: syntax=%v func=%v partial=%v bleu=%.3f\n",
			o.InstanceID, o.Syntax, o.Full, o.Partial, o.BLEU)
	}
}
