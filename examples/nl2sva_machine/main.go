// NL2SVA-Machine: show the synthetic data generation pipeline (random
// assertion -> naturalized description -> critic validation) and run a
// model through the 0-shot vs 3-shot comparison behind Table 3.
package main

import (
	"fmt"
	"log"

	"fveval"
	"fveval/internal/gen/svagen"
)

func main() {
	fmt.Println("=== generated test instances ===")
	for _, inst := range svagen.Dataset(5) {
		fmt.Printf("%s (naturalizer retries: %d)\n", inst.ID, inst.Retries)
		fmt.Printf("  NL: %s\n", inst.NL)
		fmt.Printf("  Reference: %s\n\n", inst.Reference)
	}

	models := []fveval.Model{fveval.ModelByName("gemini-1.5-pro")}
	zero, err := fveval.RunNL2SVAMachine(models, 0, 60, fveval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	three, err := fveval.RunNL2SVAMachine(models, 3, 60, fveval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fveval.FormatTable3(zero, three))
	fmt.Println("(note the in-context-learning gain, most dramatic for gemini-1.5-pro as in the paper)")
}
