// NL2SVA-Machine: show the synthetic data generation pipeline (random
// assertion -> naturalized description -> critic validation) and run a
// model through the 0-shot vs 3-shot comparison behind Table 3 via the
// task registry.
package main

import (
	"context"
	"fmt"
	"log"

	"fveval"
	"fveval/internal/gen/svagen"
)

func main() {
	fmt.Println("=== generated test instances ===")
	for _, inst := range svagen.Dataset(5) {
		fmt.Printf("%s (naturalizer retries: %d)\n", inst.ID, inst.Retries)
		fmt.Printf("  NL: %s\n", inst.NL)
		fmt.Printf("  Reference: %s\n\n", inst.Reference)
	}

	// The nl2sva-machine task evaluates every requested shot setting in
	// one run; its report renders the paper's Table 3 comparison.
	run, err := fveval.Run(context.Background(), fveval.Request{
		Task:   "nl2sva-machine",
		Params: fveval.Params{Models: []string{"gemini-1.5-pro"}, Count: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(run.Report.Render())
	fmt.Println("(note the in-context-learning gain, most dramatic for gemini-1.5-pro as in the paper)")
}
