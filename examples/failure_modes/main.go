// Failure modes: showcase the response error channels the proxy
// models draw from — the taxonomy of Figures 7, 8, and 9 — and how
// each class is judged by the evaluation flow.
package main

import (
	"fmt"
	"log"

	"fveval"
	"fveval/internal/equiv"
	"fveval/internal/sva"
)

func main() {
	widths := map[string]int{
		"clk": 1, "tb_reset": 1, "sig_D": 1, "sig_F": 1, "sig_H": 4,
	}
	ref := `assert property (@(posedge clk) ((sig_D || ^sig_H) && sig_F));`

	responses := []struct {
		model, shot, code string
	}{
		{"gpt-4o", "0-shot",
			`assert property (@(posedge clk) (sig_D || ($countones(sig_H) % 2 == 1)) |-> sig_F);`},
		{"gpt-4o", "3-shot",
			`assert property (@(posedge clk) ((sig_D || (^sig_H)) && sig_F));`},
		{"llama-3.1-8b", "0-shot",
			`assert property (@(posedge clk) (sig_D || ($countones(sig_H) % 2 == 1)) && sig_F);`},
		{"llama-3.1-8b", "3-shot",
			`assert property (@(posedge clk) ((sig_D || ($bits(sig_H) % 2 == 1)) && sig_F));`},
		{"llama-3.1-70b", "0-shot",
			`assert property (@(posedge clk) sig_D |-> eventually(sig_F));`},
	}
	fmt.Println("Problem: nl2sva_machine_3_61_0 (paper Fig. 8)")
	fmt.Println("Reference:", ref)
	fmt.Println()
	for _, r := range responses {
		fmt.Printf("%s | %s:\n  %s\n", r.model, r.shot, r.code)
		if err := fveval.CheckSyntax(r.code); err != nil {
			fmt.Printf("  Syntax: fail (%v)\n\n", err)
			continue
		}
		res, err := fveval.CheckEquivalence(r.code, ref, widths)
		if err != nil {
			log.Fatal(err)
		}
		switch res.Verdict {
		case fveval.Equivalent:
			fmt.Println("  Syntax: pass | Functionality: pass")
		case fveval.AImpliesB, fveval.BImpliesA:
			fmt.Println("  Syntax: pass | Functionality: partial pass")
		default:
			fmt.Println("  Syntax: pass | Functionality: fail")
		}
		fmt.Println()
	}

	// Show a counterexample trace for an inequivalent pair.
	a, _ := sva.ParseAssertion(`assert property (@(posedge clk) sig_D |-> ##1 sig_F);`)
	b, _ := sva.ParseAssertion(`assert property (@(posedge clk) sig_D |-> ##2 sig_F);`)
	res, err := equiv.Check(a, b, &equiv.Sigs{Widths: widths}, equiv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delay mismatch verdict: %v\ncounterexample (A holds, B fails):\n%s",
		res.Verdict, res.AB)
}
