// Equivalence: reproduce the paper's Figure 7 classifications with the
// assertion-to-assertion equivalence checker — the reproduction's
// stand-in for the custom Jasper function.
package main

import (
	"fmt"
	"log"

	"fveval"
)

func main() {
	widths := map[string]int{
		"clk": 1, "tb_reset": 1,
		"wr_push": 1, "rd_pop": 1,
		"busy": 1, "hold": 1, "cont_gnt": 1,
	}

	// fifo_1r1w_bypass_4: gpt-4o's weak-implication answer is implied
	// by the strong reference (partial pass).
	ref := `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  wr_push |-> strong(##[0:$] rd_pop));`
	gpt := `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  wr_push |-> ##[1:$] rd_pop);`
	show("fifo_1r1w_bypass_4 / gpt-4o", gpt, ref, widths)

	// arbiter_reverse_priority_9: gpt-4o's weaker all-three check
	// (partial) and Llama's exact pairwise expansion (full pass).
	ref2 := `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  !$onehot0({hold,busy,cont_gnt}) !== 1'b1);`
	gpt2 := `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  !(busy && hold && cont_gnt));`
	llama := `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  !(busy && (hold || cont_gnt)) && !(hold && (busy || cont_gnt)) && !(cont_gnt && (busy || hold)));`
	show("arbiter_reverse_priority_9 / gpt-4o", gpt2, ref2, widths)
	show("arbiter_reverse_priority_9 / llama-3.1-70b", llama, ref2, widths)

	// Llama's hallucinated operator fails the syntax check outright.
	bad := `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  wr_push |-> eventually(rd_pop));`
	if err := fveval.CheckSyntax(bad); err != nil {
		fmt.Printf("llama-3.1-70b response: Syntax: FAIL (%v)\n", err)
	}
}

func show(name, model, ref string, widths map[string]int) {
	res, err := fveval.CheckEquivalence(model, ref, widths)
	if err != nil {
		log.Fatal(err)
	}
	verdict := "Functionality: fail"
	switch res.Verdict {
	case fveval.Equivalent:
		verdict = "Functionality: pass"
	case fveval.AImpliesB, fveval.BImpliesA:
		verdict = "Functionality: partial pass"
	}
	fmt.Printf("%s -> %s (verdict %v)\n", name, verdict, res.Verdict)
	if res.AB != nil {
		fmt.Printf("  model-but-not-reference witness:\n%s", indent(res.AB.String()))
	}
	if res.BA != nil {
		fmt.Printf("  reference-but-not-model witness:\n%s", indent(res.BA.String()))
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
