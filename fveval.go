// Package fveval is the public facade of the FVEval reproduction: a
// benchmark and evaluation framework for language models on hardware
// formal verification tasks via SystemVerilog Assertions, after
// "FVEval: Understanding Language Model Capabilities in Formal
// Verification of Digital Hardware" (Kang et al., DATE 2025).
//
// The API is task-centric: every sub-benchmark (each paper table and
// figure) is a named entry in a task registry, and one entry point
// runs any of them:
//
//	for _, t := range fveval.Tasks() {
//		fmt.Println(t.Name, "—", t.Title)
//	}
//	run, err := fveval.Run(ctx, fveval.Request{
//		Task:    "nl2sva-human",
//		Params:  fveval.Params{Models: []string{"gpt-4o"}},
//		Options: fveval.Options{Limit: 20},
//	})
//	fmt.Print(run.Report.Render())
//
// A Run returns one unified Report (JSON round-trippable; the legacy
// per-table report types project out of it), streams per-job progress
// through Request.Progress, honors context cancellation, and carries
// run metadata (cache and formal-backend statistics, wall-clock).
// Reuse one Engine across runs — or serve it over HTTP with
// cmd/fvevald — to share the equivalence-check cache between them.
//
// Underneath, the registry drives the unified evaluation engine
// (flattened job queue, bounded worker pool, run-wide memo pool) and
// the incremental formal backend (assumption-based CDCL sessions with
// bound ramping; see Options.MaxBound and FormalStats).
package fveval

import (
	"context"
	"fmt"

	"fveval/internal/core"
	"fveval/internal/engine"
	"fveval/internal/equiv"
	"fveval/internal/formal"
	"fveval/internal/llm"
	"fveval/internal/metrics"
	"fveval/internal/sva"
	"fveval/internal/task"
)

// Options tunes a benchmark run. See engine.Config; Validate rejects
// malformed values (negative sizes or budgets) instead of clamping.
type Options = engine.Config

// Shard restricts a process to one horizontal slice of the instance
// axis for multi-process runs.
type Shard = engine.Shard

// TaskSpec describes one registry task: name, paper table/figure,
// default parameters, and which parameters it accepts.
type TaskSpec = task.Spec

// Params are a task's tunable knobs (model set, shot counts, pass@k
// cut-offs, dataset size, design categories).
type Params = task.Params

// Request names one registry task plus parameter overrides, engine
// options, and an optional progress callback.
type Request = task.Request

// Event is one streamed per-job progress notification.
type Event = task.Event

// Report is the unified result type every task produces; the legacy
// ModelReport/PassKReport/DesignReport shapes project out of its rows
// and Render reproduces the paper table or figure.
type Report = task.Report

// Result is a completed run: the unified Report, the resolved
// request echo, and execution metadata.
type Result = task.Run

// Engine executes registry tasks over one shared memo pool
// (equivalence cache, judgment memos, formal counters); reuse one
// engine across runs to share the pool. Engine.RunPartial evaluates
// one shard of a distributed run (see Options.Shard and Partial).
type Engine = task.Engine

// Partial is one shard's raw contribution to a distributed run: the
// outcome grids with slot provenance instead of aggregated rows. A
// complete shard partition recombines via MergeReports; the
// coordinator in internal/dist (cmd/fvevalctl) automates the fan-out.
type Partial = task.Partial

// MergeReports deterministically recombines a complete shard
// partition into the unified Report. The merge is commutative, and
// Render/Encode output is byte-identical to an unsharded run with the
// same parameters.
func MergeReports(partials []*Partial) (*Report, error) { return task.MergeReports(partials) }

// MergeRuns is MergeReports plus folded execution metadata, shaped
// like a local Engine.Run result.
func MergeRuns(partials []*Partial) (*Result, error) { return task.MergeRuns(partials) }

// CacheStats reports equivalence-cache hit/miss counters for a run.
type CacheStats = equiv.CacheStats

// FormalStats reports the incremental formal backend's solver-reuse
// and bound-ramp counters for a run (see Engine.FormalStats): formal
// queries open persistent assumption-based SAT sessions that ramp the
// bound upward, so most inequivalent pairs and shallow counterexamples
// are decided at small bounds while proofs reuse all learnt clauses.
type FormalStats = formal.Snapshot

// SimStats reports the bit-parallel simulation prefilter's counters
// (patterns simulated, refutations, SAT calls avoided, bank hits);
// it is the Sim field of FormalStats, see DESIGN.md §10.
type SimStats = formal.SimStats

// Tasks lists the registry: one spec per sub-benchmark, covering
// every paper table and figure.
func Tasks() []TaskSpec { return task.Tasks() }

// NewEngine builds an evaluation engine whose default configuration
// is opt; reuse one engine across runs to share its memo pool. Like
// the underlying engine it panics on invalid options — callers
// holding untrusted configuration should opt.Validate() first.
func NewEngine(opt Options) *Engine { return task.NewEngine(opt) }

// Run executes one registry task on a fresh engine. For repeated or
// served runs build one Engine and call its Run method instead, so
// the equivalence cache carries across runs.
func Run(ctx context.Context, req Request) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return task.NewEngine(Options{}).Run(ctx, req)
}

// ModelReport aggregates one model's metrics on one task.
type ModelReport = core.ModelReport

// PassKReport aggregates pass@k metrics.
type PassKReport = core.PassKReport

// DesignReport aggregates Design2SVA metrics.
type DesignReport = core.DesignReport

// Model is the language-model interface; the built-in fleet consists
// of calibrated offline proxies (see internal/llm).
type Model = llm.Model

// Verdict classifies an assertion pair.
type Verdict = equiv.Verdict

// Verdict values.
const (
	Inequivalent = equiv.Inequivalent
	Equivalent   = equiv.Equivalent
	AImpliesB    = equiv.AImpliesB
	BImpliesA    = equiv.BImpliesA
)

// Models returns the full proxy fleet (8 models).
func Models() []Model { return llm.Models() }

// DesignModels returns the Design2SVA-capable subset (6 models).
func DesignModels() []Model { return llm.DesignModels() }

// ModelByName finds a proxy model.
func ModelByName(name string) Model { return llm.ModelByName(name) }

// ---- deprecated per-table entry points ----------------------------------
//
// The Run* functions below are thin wrappers over the task registry,
// kept for source compatibility. They accept only models from the
// built-in proxy fleet (the registry resolves models by name).

// fleetNames maps facade model values onto registry names.
func fleetNames(models []Model) ([]string, error) {
	out := make([]string, 0, len(models))
	for _, m := range models {
		if m == nil {
			return nil, fmt.Errorf("fveval: nil model")
		}
		if llm.ModelByName(m.Name()) == nil {
			return nil, fmt.Errorf("fveval: model %q is not in the proxy fleet; use Engine.Run with a registry task instead", m.Name())
		}
		out = append(out, m.Name())
	}
	return out, nil
}

// runTask executes one registry request on a fresh engine.
func runTask(req Request) (*Result, error) {
	return Run(context.Background(), req)
}

// RunNL2SVAHuman runs Table 1's evaluation.
//
// Deprecated: use Run with the "nl2sva-human" task.
func RunNL2SVAHuman(models []Model, opt Options) ([]ModelReport, error) {
	names, err := fleetNames(models)
	if err != nil {
		return nil, err
	}
	run, err := runTask(Request{Task: "nl2sva-human", Params: Params{Models: names}, Options: opt})
	if err != nil {
		return nil, err
	}
	return run.Report.Group("").ModelReports(), nil
}

// RunNL2SVAHumanPassK runs Table 2's evaluation.
//
// Deprecated: use Run with the "nl2sva-human-passk" task.
func RunNL2SVAHumanPassK(models []Model, ks []int, opt Options) ([]PassKReport, error) {
	names, err := fleetNames(models)
	if err != nil {
		return nil, err
	}
	run, err := runTask(Request{Task: "nl2sva-human-passk", Params: Params{Models: names, Ks: ks}, Options: opt})
	if err != nil {
		return nil, err
	}
	return run.Report.Group("").PassKReports(), nil
}

// RunNL2SVAMachine runs one shot-setting of Table 3.
//
// Deprecated: use Run with the "nl2sva-machine" task (its default
// parameters evaluate both shot settings in one run).
func RunNL2SVAMachine(models []Model, shots, count int, opt Options) ([]ModelReport, error) {
	if count < 1 {
		return nil, fmt.Errorf("fveval: count %d out of range (must be >= 1)", count)
	}
	names, err := fleetNames(models)
	if err != nil {
		return nil, err
	}
	run, err := runTask(Request{
		Task:    "nl2sva-machine",
		Params:  Params{Models: names, Shots: []int{shots}, Count: count},
		Options: opt,
	})
	if err != nil {
		return nil, err
	}
	return run.Report.Groups[0].ModelReports(), nil
}

// RunNL2SVAMachinePassK runs Table 4's evaluation.
//
// Deprecated: use Run with the "nl2sva-machine-passk" task.
func RunNL2SVAMachinePassK(models []Model, ks []int, count int, opt Options) ([]PassKReport, error) {
	if count < 1 {
		return nil, fmt.Errorf("fveval: count %d out of range (must be >= 1)", count)
	}
	names, err := fleetNames(models)
	if err != nil {
		return nil, err
	}
	run, err := runTask(Request{
		Task:    "nl2sva-machine-passk",
		Params:  Params{Models: names, Ks: ks, Count: count},
		Options: opt,
	})
	if err != nil {
		return nil, err
	}
	return run.Report.Group("").PassKReports(), nil
}

// RunDesign2SVA runs one category half of Table 5.
//
// Deprecated: use Run with the "design2sva" task (its default
// parameters evaluate both categories in one run).
func RunDesign2SVA(models []Model, kind string, opt Options) ([]DesignReport, error) {
	names, err := fleetNames(models)
	if err != nil {
		return nil, err
	}
	run, err := runTask(Request{
		Task:    "design2sva",
		Params:  Params{Models: names, Kinds: []string{kind}},
		Options: opt,
	})
	if err != nil {
		return nil, err
	}
	return run.Report.Group(kind).DesignReports(), nil
}

// Table and figure renderers.
var (
	FormatTable1 = core.FormatTable1
	FormatTable2 = core.FormatTable2
	FormatTable3 = core.FormatTable3
	FormatTable4 = core.FormatTable4
	FormatTable5 = core.FormatTable5
	FormatTable6 = core.FormatTable6
	Figure2      = core.Figure2
	Figure3      = core.Figure3
	Figure4      = core.Figure4
	Figure6      = core.Figure6
)

// CheckSyntax reports whether assertion source passes the tool-style
// syntax check (parse + validate).
func CheckSyntax(src string) error { return sva.CheckSyntax(src) }

// CheckEquivalence decides the formal relationship between two
// assertions over the given signal widths, returning the verdict and
// optional counterexample traces.
func CheckEquivalence(aSrc, bSrc string, widths map[string]int) (equiv.Result, error) {
	a, err := sva.ParseAssertion(aSrc)
	if err != nil {
		return equiv.Result{}, err
	}
	b, err := sva.ParseAssertion(bSrc)
	if err != nil {
		return equiv.Result{}, err
	}
	sigs := &equiv.Sigs{Widths: widths}
	return equiv.Check(a, b, sigs, equiv.Options{})
}

// BLEU scores a candidate against a reference assertion, over code
// tokens with smoothing.
func BLEU(candidate, reference string) float64 {
	return metrics.BLEU(candidate, reference)
}

// PassAtK is the unbiased pass@k estimator.
func PassAtK(n, c, k int) float64 { return metrics.PassAtK(n, c, k) }
