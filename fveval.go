// Package fveval is the public facade of the FVEval reproduction: a
// benchmark and evaluation framework for language models on hardware
// formal verification tasks via SystemVerilog Assertions, after
// "FVEval: Understanding Language Model Capabilities in Formal
// Verification of Digital Hardware" (Kang et al., DATE 2025).
//
// The facade re-exports the user-facing surface of the internal
// packages:
//
//   - the three sub-benchmarks and their runners (NL2SVA-Human,
//     NL2SVA-Machine, Design2SVA), executed by the unified evaluation
//     engine (flattened job queue, bounded worker pool, run-wide
//     equivalence-check cache — see NewEngine for multi-run reuse),
//   - the formal backend (SVA parsing/validation, assertion
//     equivalence checking, RTL elaboration and model checking), which
//     solves incrementally: one assumption-based CDCL session per
//     query with bound ramping (see Options.MaxBound and FormalStats),
//   - the model layer (prompt construction, proxy model fleet), and
//   - the metric set (BLEU, pass@k, token-length statistics).
//
// Quick start:
//
//	reports, err := fveval.RunNL2SVAHuman(fveval.Models(), fveval.Options{})
//	fmt.Print(fveval.FormatTable1(reports))
package fveval

import (
	"fveval/internal/core"
	"fveval/internal/engine"
	"fveval/internal/equiv"
	"fveval/internal/formal"
	"fveval/internal/llm"
	"fveval/internal/metrics"
	"fveval/internal/sva"
)

// Options tunes a benchmark run. See engine.Config.
type Options = engine.Config

// Engine executes benchmark runs over one flattened
// (model, instance, sample) job queue with a bounded worker pool and a
// run-wide equivalence-check cache. See engine.Engine.
type Engine = engine.Engine

// Shard restricts a process to one horizontal slice of the instance
// axis for multi-process runs.
type Shard = engine.Shard

// CacheStats reports equivalence-cache hit/miss counters for a run.
type CacheStats = equiv.CacheStats

// FormalStats reports the incremental formal backend's solver-reuse
// and bound-ramp counters for a run (see Engine.FormalStats): formal
// queries open persistent assumption-based SAT sessions that ramp the
// bound upward, so most inequivalent pairs and shallow counterexamples
// are decided at small bounds while proofs reuse all learnt clauses.
type FormalStats = formal.Snapshot

// NewEngine builds an evaluation engine; reuse one engine across runs
// to share its equivalence cache.
func NewEngine(opt Options) *Engine { return engine.New(opt) }

// ModelReport aggregates one model's metrics on one task.
type ModelReport = core.ModelReport

// PassKReport aggregates pass@k metrics.
type PassKReport = core.PassKReport

// DesignReport aggregates Design2SVA metrics.
type DesignReport = core.DesignReport

// Model is the language-model interface; the built-in fleet consists
// of calibrated offline proxies (see internal/llm).
type Model = llm.Model

// Verdict classifies an assertion pair.
type Verdict = equiv.Verdict

// Verdict values.
const (
	Inequivalent = equiv.Inequivalent
	Equivalent   = equiv.Equivalent
	AImpliesB    = equiv.AImpliesB
	BImpliesA    = equiv.BImpliesA
)

// Models returns the full proxy fleet (8 models).
func Models() []Model { return llm.Models() }

// DesignModels returns the Design2SVA-capable subset (6 models).
func DesignModels() []Model { return llm.DesignModels() }

// ModelByName finds a proxy model.
func ModelByName(name string) Model { return llm.ModelByName(name) }

// RunNL2SVAHuman runs Table 1's evaluation.
func RunNL2SVAHuman(models []Model, opt Options) ([]ModelReport, error) {
	return engine.RunNL2SVAHuman(models, opt)
}

// RunNL2SVAHumanPassK runs Table 2's evaluation.
func RunNL2SVAHumanPassK(models []Model, ks []int, opt Options) ([]PassKReport, error) {
	return engine.RunNL2SVAHumanPassK(models, ks, opt)
}

// RunNL2SVAMachine runs one shot-setting of Table 3.
func RunNL2SVAMachine(models []Model, shots, count int, opt Options) ([]ModelReport, error) {
	return engine.RunNL2SVAMachine(models, shots, count, opt)
}

// RunNL2SVAMachinePassK runs Table 4's evaluation.
func RunNL2SVAMachinePassK(models []Model, ks []int, count int, opt Options) ([]PassKReport, error) {
	return engine.RunNL2SVAMachinePassK(models, ks, count, opt)
}

// RunDesign2SVA runs one category half of Table 5.
func RunDesign2SVA(models []Model, kind string, opt Options) ([]DesignReport, error) {
	return engine.RunDesign2SVA(models, kind, opt)
}

// Table and figure renderers.
var (
	FormatTable1 = core.FormatTable1
	FormatTable2 = core.FormatTable2
	FormatTable3 = core.FormatTable3
	FormatTable4 = core.FormatTable4
	FormatTable5 = core.FormatTable5
	FormatTable6 = core.FormatTable6
	Figure2      = core.Figure2
	Figure3      = core.Figure3
	Figure4      = core.Figure4
	Figure6      = core.Figure6
)

// CheckSyntax reports whether assertion source passes the tool-style
// syntax check (parse + validate).
func CheckSyntax(src string) error { return sva.CheckSyntax(src) }

// CheckEquivalence decides the formal relationship between two
// assertions over the given signal widths, returning the verdict and
// optional counterexample traces.
func CheckEquivalence(aSrc, bSrc string, widths map[string]int) (equiv.Result, error) {
	a, err := sva.ParseAssertion(aSrc)
	if err != nil {
		return equiv.Result{}, err
	}
	b, err := sva.ParseAssertion(bSrc)
	if err != nil {
		return equiv.Result{}, err
	}
	sigs := &equiv.Sigs{Widths: widths}
	return equiv.Check(a, b, sigs, equiv.Options{})
}

// BLEU scores a candidate against a reference assertion, over code
// tokens with smoothing.
func BLEU(candidate, reference string) float64 {
	return metrics.BLEU(candidate, reference)
}

// PassAtK is the unbiased pass@k estimator.
func PassAtK(n, c, k int) float64 { return metrics.PassAtK(n, c, k) }
