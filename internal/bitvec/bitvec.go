// Package bitvec implements symbolic bit-vectors over logic circuit
// nodes. A BV is a little-endian slice of logic.Node values (bit 0 is
// the least significant). All arithmetic follows SystemVerilog
// two-state unsigned semantics at the declared width: results are
// truncated, operands are zero-extended to a common width.
package bitvec

import (
	"fveval/internal/logic"
)

// BV is a symbolic bit-vector. Index 0 is the LSB.
type BV struct {
	Bits []logic.Node
}

// Width returns the number of bits.
func (v BV) Width() int { return len(v.Bits) }

// Const builds a constant bit-vector of the given width from val
// (truncating).
func Const(val uint64, width int) BV {
	bits := make([]logic.Node, width)
	for i := 0; i < width; i++ {
		if i < 64 && val&(1<<uint(i)) != 0 {
			bits[i] = logic.True
		} else {
			bits[i] = logic.False
		}
	}
	return BV{bits}
}

// FromBool wraps a single node as a 1-bit vector.
func FromBool(n logic.Node) BV { return BV{[]logic.Node{n}} }

// Inputs allocates width fresh input nodes, all carrying the vector's
// base name as their debug name. Per-bit "[i]" suffixes used to be
// materialized here; input allocation sits on the trace-environment
// hot path and the per-bit string builds were measurable, while the
// bit position is recoverable from allocation order when debugging.
func Inputs(b *logic.Builder, name string, width int) BV {
	bits := make([]logic.Node, width)
	for i := range bits {
		bits[i] = b.Input(name)
	}
	return BV{bits}
}

// Extend zero-extends (or truncates) v to width w.
func (v BV) Extend(w int) BV {
	if len(v.Bits) == w {
		return v
	}
	bits := make([]logic.Node, w)
	for i := 0; i < w; i++ {
		if i < len(v.Bits) {
			bits[i] = v.Bits[i]
		} else {
			bits[i] = logic.False
		}
	}
	return BV{bits}
}

// SignExtend sign-extends (or truncates) v to width w.
func (v BV) SignExtend(w int) BV {
	if len(v.Bits) == 0 {
		return Const(0, w)
	}
	if len(v.Bits) >= w {
		return BV{append([]logic.Node(nil), v.Bits[:w]...)}
	}
	bits := make([]logic.Node, w)
	copy(bits, v.Bits)
	sign := v.Bits[len(v.Bits)-1]
	for i := len(v.Bits); i < w; i++ {
		bits[i] = sign
	}
	return BV{bits}
}

func common(a, b BV) (BV, BV, int) {
	w := max(a.Width(), b.Width())
	return a.Extend(w), b.Extend(w), w
}

// Ops bundles a builder with bit-vector operations.
type Ops struct{ B *logic.Builder }

// Not returns the bitwise complement.
func (o Ops) Not(v BV) BV {
	bits := make([]logic.Node, len(v.Bits))
	for i, n := range v.Bits {
		bits[i] = n.Not()
	}
	return BV{bits}
}

// And returns the bitwise conjunction.
func (o Ops) And(a, b BV) BV { return o.bitwise(a, b, o.B.And) }

// Or returns the bitwise disjunction.
func (o Ops) Or(a, b BV) BV { return o.bitwise(a, b, o.B.Or) }

// Xor returns the bitwise exclusive-or.
func (o Ops) Xor(a, b BV) BV { return o.bitwise(a, b, o.B.Xor) }

// Xnor returns the bitwise equivalence.
func (o Ops) Xnor(a, b BV) BV { return o.bitwise(a, b, o.B.Xnor) }

func (o Ops) bitwise(a, b BV, f func(x, y logic.Node) logic.Node) BV {
	a, b, w := common(a, b)
	bits := make([]logic.Node, w)
	for i := 0; i < w; i++ {
		bits[i] = f(a.Bits[i], b.Bits[i])
	}
	return BV{bits}
}

// Add returns a+b truncated to the common width.
func (o Ops) Add(a, b BV) BV {
	a, b, w := common(a, b)
	bits := make([]logic.Node, w)
	carry := logic.False
	for i := 0; i < w; i++ {
		x, y := a.Bits[i], b.Bits[i]
		s := o.B.Xor(o.B.Xor(x, y), carry)
		carry = o.B.Or(o.B.And(x, y), o.B.And(carry, o.B.Xor(x, y)))
		bits[i] = s
	}
	return BV{bits}
}

// Sub returns a-b truncated to the common width (two's complement).
func (o Ops) Sub(a, b BV) BV {
	a, b, w := common(a, b)
	bits := make([]logic.Node, w)
	carry := logic.True // +1 for two's complement
	for i := 0; i < w; i++ {
		x, y := a.Bits[i], b.Bits[i].Not()
		s := o.B.Xor(o.B.Xor(x, y), carry)
		carry = o.B.Or(o.B.And(x, y), o.B.And(carry, o.B.Xor(x, y)))
		bits[i] = s
	}
	return BV{bits}
}

// Neg returns -a (two's complement).
func (o Ops) Neg(a BV) BV { return o.Sub(Const(0, a.Width()), a) }

// Mul returns a*b truncated to the common width (shift-and-add).
func (o Ops) Mul(a, b BV) BV {
	a, b, w := common(a, b)
	acc := Const(0, w)
	for i := 0; i < w; i++ {
		// acc += (b[i] ? a<<i : 0)
		shifted := o.ShlConst(a, i)
		gated := make([]logic.Node, w)
		for j := 0; j < w; j++ {
			gated[j] = o.B.And(shifted.Bits[j], b.Bits[i])
		}
		acc = o.Add(acc, BV{gated})
	}
	return acc
}

// ShlConst shifts left by a constant amount, zero filling.
func (o Ops) ShlConst(v BV, k int) BV {
	w := v.Width()
	bits := make([]logic.Node, w)
	for i := 0; i < w; i++ {
		if i-k >= 0 && i-k < w {
			bits[i] = v.Bits[i-k]
		} else {
			bits[i] = logic.False
		}
	}
	return BV{bits}
}

// ShrConst shifts right logically by a constant amount.
func (o Ops) ShrConst(v BV, k int) BV {
	w := v.Width()
	bits := make([]logic.Node, w)
	for i := 0; i < w; i++ {
		if i+k < w {
			bits[i] = v.Bits[i+k]
		} else {
			bits[i] = logic.False
		}
	}
	return BV{bits}
}

// AshrConst shifts right arithmetically by a constant amount.
func (o Ops) AshrConst(v BV, k int) BV {
	w := v.Width()
	if w == 0 {
		return v
	}
	sign := v.Bits[w-1]
	bits := make([]logic.Node, w)
	for i := 0; i < w; i++ {
		if i+k < w {
			bits[i] = v.Bits[i+k]
		} else {
			bits[i] = sign
		}
	}
	return BV{bits}
}

// Shl shifts left by a symbolic amount (barrel shifter).
func (o Ops) Shl(v, amt BV) BV { return o.barrel(v, amt, o.ShlConst) }

// Shr shifts right logically by a symbolic amount.
func (o Ops) Shr(v, amt BV) BV { return o.barrel(v, amt, o.ShrConst) }

// Ashr shifts right arithmetically by a symbolic amount.
func (o Ops) Ashr(v, amt BV) BV { return o.barrel(v, amt, o.AshrConst) }

func (o Ops) barrel(v, amt BV, step func(BV, int) BV) BV {
	res := v
	for i := 0; i < amt.Width() && (1<<uint(i)) <= v.Width(); i++ {
		res = o.Mux(amt.Bits[i], step(res, 1<<uint(i)), res)
	}
	// If any higher amount bit is set the result is the full shift-out
	// (all zeros for logical, sign for arithmetic via stepping by width).
	var over logic.Node = logic.False
	for i := 0; i < amt.Width(); i++ {
		if (1 << uint(i)) > v.Width() {
			over = o.B.Or(over, amt.Bits[i])
		}
	}
	if over != logic.False {
		res = o.Mux(over, step(v, v.Width()), res)
	}
	return res
}

// Mux returns sel ? t : f bitwise.
func (o Ops) Mux(sel logic.Node, t, f BV) BV {
	t, f, w := common(t, f)
	bits := make([]logic.Node, w)
	for i := 0; i < w; i++ {
		bits[i] = o.B.Mux(sel, t.Bits[i], f.Bits[i])
	}
	return BV{bits}
}

// Eq returns the single-bit equality a == b.
func (o Ops) Eq(a, b BV) logic.Node {
	a, b, w := common(a, b)
	acc := logic.True
	for i := 0; i < w; i++ {
		acc = o.B.And(acc, o.B.Xnor(a.Bits[i], b.Bits[i]))
	}
	return acc
}

// Ne returns a != b.
func (o Ops) Ne(a, b BV) logic.Node { return o.Eq(a, b).Not() }

// Ult returns the unsigned comparison a < b.
func (o Ops) Ult(a, b BV) logic.Node {
	a, b, w := common(a, b)
	lt := logic.False
	for i := 0; i < w; i++ { // from LSB to MSB
		x, y := a.Bits[i], b.Bits[i]
		lt = o.B.Mux(o.B.Xor(x, y), o.B.And(x.Not(), y), lt)
	}
	return lt
}

// Ule returns a <= b unsigned.
func (o Ops) Ule(a, b BV) logic.Node { return o.Ult(b, a).Not() }

// RedOr returns the OR-reduction (nonzero test).
func (o Ops) RedOr(v BV) logic.Node { return o.B.OrSlice(v.Bits) }

// RedAnd returns the AND-reduction.
func (o Ops) RedAnd(v BV) logic.Node { return o.B.AndSlice(v.Bits) }

// RedXor returns the XOR-reduction (parity).
func (o Ops) RedXor(v BV) logic.Node {
	acc := logic.False
	for _, n := range v.Bits {
		acc = o.B.Xor(acc, n)
	}
	return acc
}

// Bool converts a vector to its truth value (nonzero).
func (o Ops) Bool(v BV) logic.Node { return o.RedOr(v) }

// CountOnes returns a vector holding the population count, wide enough
// to hold the maximum count.
func (o Ops) CountOnes(v BV) BV {
	w := 1
	for (1 << uint(w)) <= v.Width() {
		w++
	}
	acc := Const(0, w)
	for _, bit := range v.Bits {
		acc = o.Add(acc, FromBool(bit).Extend(w))
	}
	return acc
}

// OneHot returns the $onehot test: exactly one bit set.
func (o Ops) OneHot(v BV) logic.Node {
	// exactly one: some bit set AND no two bits set
	return o.B.And(o.RedOr(v), o.atMostOne(v))
}

// OneHot0 returns the $onehot0 test: at most one bit set.
func (o Ops) OneHot0(v BV) logic.Node { return o.atMostOne(v) }

func (o Ops) atMostOne(v BV) logic.Node {
	// pairwise exclusion; O(n^2) but widths here are tiny
	acc := logic.True
	for i := 0; i < len(v.Bits); i++ {
		for j := i + 1; j < len(v.Bits); j++ {
			acc = o.B.And(acc, o.B.And(v.Bits[i], v.Bits[j]).Not())
		}
	}
	return acc
}

// Concat concatenates vectors with the SystemVerilog convention
// {a, b}: a occupies the high bits.
func (o Ops) Concat(parts ...BV) BV {
	var bits []logic.Node
	for i := len(parts) - 1; i >= 0; i-- {
		bits = append(bits, parts[i].Bits...)
	}
	return BV{bits}
}

// Extract returns v[hi:lo].
func (o Ops) Extract(v BV, hi, lo int) BV {
	if lo < 0 {
		lo = 0
	}
	if hi >= v.Width() {
		hi = v.Width() - 1
	}
	if hi < lo {
		return Const(0, 1)
	}
	return BV{append([]logic.Node(nil), v.Bits[lo:hi+1]...)}
}

// Index returns the single bit v[i] selected by a symbolic index.
func (o Ops) Index(v, idx BV) logic.Node {
	res := logic.False
	for i := 0; i < v.Width(); i++ {
		sel := o.Eq(idx, Const(uint64(i), idx.Width()))
		res = o.B.Or(res, o.B.And(sel, v.Bits[i]))
	}
	return res
}

// Replicate returns n copies of v concatenated.
func (o Ops) Replicate(v BV, n int) BV {
	var bits []logic.Node
	for i := 0; i < n; i++ {
		bits = append(bits, v.Bits...)
	}
	return BV{bits}
}

// EvalConst evaluates a vector of constant nodes to a uint64 value; ok
// is false if any bit is non-constant or the width exceeds 64.
func EvalConst(v BV) (uint64, bool) {
	if v.Width() > 64 {
		return 0, false
	}
	var out uint64
	for i, n := range v.Bits {
		switch n {
		case logic.True:
			out |= 1 << uint(i)
		case logic.False:
		default:
			return 0, false
		}
	}
	return out, true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
