package bitvec

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"fveval/internal/logic"
)

// evalBV evaluates a symbolic vector whose inputs are assigned via env.
func evalBV(b *logic.Builder, v BV, env map[logic.Node]bool) uint64 {
	cache := map[int32]bool{}
	var out uint64
	for i, n := range v.Bits {
		if b.Eval(n, env, cache) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// withInputs builds two symbolic inputs of width w and an env assigning
// concrete values.
func withInputs(w int, av, bv uint64) (*logic.Builder, Ops, BV, BV, map[logic.Node]bool) {
	b := logic.NewBuilder()
	o := Ops{b}
	x := Inputs(b, "x", w)
	y := Inputs(b, "y", w)
	env := map[logic.Node]bool{}
	for i := 0; i < w; i++ {
		env[x.Bits[i]] = av&(1<<uint(i)) != 0
		env[y.Bits[i]] = bv&(1<<uint(i)) != 0
	}
	return b, o, x, y, env
}

func maskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

func TestArithAgainstUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		w := 1 + rng.Intn(12)
		m := maskW(w)
		av := rng.Uint64() & m
		bv := rng.Uint64() & m
		b, o, x, y, env := withInputs(w, av, bv)

		checks := []struct {
			name string
			got  BV
			want uint64
		}{
			{"add", o.Add(x, y), (av + bv) & m},
			{"sub", o.Sub(x, y), (av - bv) & m},
			{"and", o.And(x, y), av & bv},
			{"or", o.Or(x, y), av | bv},
			{"xor", o.Xor(x, y), av ^ bv},
			{"not", o.Not(x), ^av & m},
			{"neg", o.Neg(x), (-av) & m},
			{"mul", o.Mul(x, y), (av * bv) & m},
			{"shl3", o.ShlConst(x, 3), (av << 3) & m},
			{"shr2", o.ShrConst(x, 2), av >> 2},
		}
		for _, c := range checks {
			if got := evalBV(b, c.got, env); got != c.want {
				t.Fatalf("w=%d a=%d b=%d: %s got %d want %d", w, av, bv, c.name, got, c.want)
			}
		}
	}
}

func TestAshrConst(t *testing.T) {
	b := logic.NewBuilder()
	o := Ops{b}
	v := Const(0b1100, 4)
	got, ok := EvalConst(o.AshrConst(v, 1))
	if !ok || got != 0b1110 {
		t.Fatalf("ashr(1100,1) got %04b ok=%v want 1110", got, ok)
	}
	got, _ = EvalConst(o.AshrConst(Const(0b0100, 4), 1))
	if got != 0b0010 {
		t.Fatalf("ashr(0100,1) got %04b want 0010", got)
	}
}

func TestComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		w := 1 + rng.Intn(10)
		m := maskW(w)
		av := rng.Uint64() & m
		bv := rng.Uint64() & m
		b, o, x, y, env := withInputs(w, av, bv)
		cache := map[int32]bool{}
		if got := b.Eval(o.Eq(x, y), env, cache); got != (av == bv) {
			t.Fatalf("eq(%d,%d) got %v", av, bv, got)
		}
		if got := b.Eval(o.Ult(x, y), env, cache); got != (av < bv) {
			t.Fatalf("ult(%d,%d) got %v", av, bv, got)
		}
		if got := b.Eval(o.Ule(x, y), env, cache); got != (av <= bv) {
			t.Fatalf("ule(%d,%d) got %v", av, bv, got)
		}
	}
}

func TestReductionsAndCounts(t *testing.T) {
	f := func(raw uint16, wRaw uint8) bool {
		w := 1 + int(wRaw%12)
		m := maskW(w)
		av := uint64(raw) & m
		b := logic.NewBuilder()
		o := Ops{b}
		x := Inputs(b, "x", w)
		env := map[logic.Node]bool{}
		for i := 0; i < w; i++ {
			env[x.Bits[i]] = av&(1<<uint(i)) != 0
		}
		cache := map[int32]bool{}
		pop := bits.OnesCount64(av)
		if b.Eval(o.RedOr(x), env, cache) != (av != 0) {
			return false
		}
		if b.Eval(o.RedAnd(x), env, cache) != (av == m) {
			return false
		}
		if b.Eval(o.RedXor(x), env, cache) != (pop%2 == 1) {
			return false
		}
		if b.Eval(o.OneHot(x), env, cache) != (pop == 1) {
			return false
		}
		if b.Eval(o.OneHot0(x), env, cache) != (pop <= 1) {
			return false
		}
		if evalBV(b, o.CountOnes(x), env) != uint64(pop) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolicShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		w := 2 + rng.Intn(10)
		m := maskW(w)
		av := rng.Uint64() & m
		amt := uint64(rng.Intn(w + 3))
		b := logic.NewBuilder()
		o := Ops{b}
		x := Inputs(b, "x", w)
		a := Inputs(b, "a", 4)
		env := map[logic.Node]bool{}
		for i := 0; i < w; i++ {
			env[x.Bits[i]] = av&(1<<uint(i)) != 0
		}
		for i := 0; i < 4; i++ {
			env[a.Bits[i]] = amt&(1<<uint(i)) != 0
		}
		wantShl := uint64(0)
		wantShr := uint64(0)
		if amt < 64 {
			wantShl = (av << amt) & m
			wantShr = av >> amt
		}
		if got := evalBV(b, o.Shl(x, a), env); got != wantShl {
			t.Fatalf("w=%d shl(%d,%d) got %d want %d", w, av, amt, got, wantShl)
		}
		if got := evalBV(b, o.Shr(x, a), env); got != wantShr {
			t.Fatalf("w=%d shr(%d,%d) got %d want %d", w, av, amt, got, wantShr)
		}
	}
}

func TestConcatExtractIndex(t *testing.T) {
	b := logic.NewBuilder()
	o := Ops{b}
	hi := Const(0b101, 3)
	lo := Const(0b01, 2)
	cat := o.Concat(hi, lo) // {3'b101, 2'b01} = 5'b10101
	got, ok := EvalConst(cat)
	if !ok || got != 0b10101 {
		t.Fatalf("concat got %05b", got)
	}
	ex := o.Extract(cat, 3, 1) // bits 3..1 of 10101 = 010
	got, _ = EvalConst(ex)
	if got != 0b010 {
		t.Fatalf("extract got %03b", got)
	}
	idx := o.Index(cat, Const(4, 3))
	if idx != logic.True {
		t.Fatalf("index bit 4 of 10101 must be 1")
	}
	rep := o.Replicate(Const(0b10, 2), 3)
	got, _ = EvalConst(rep)
	if got != 0b101010 {
		t.Fatalf("replicate got %06b", got)
	}
}

func TestExtendTruncate(t *testing.T) {
	v := Const(0b1011, 4)
	if got, _ := EvalConst(v.Extend(6)); got != 0b001011 {
		t.Fatalf("zero extend got %06b", got)
	}
	if got, _ := EvalConst(v.Extend(2)); got != 0b11 {
		t.Fatalf("truncate got %02b", got)
	}
	if got, _ := EvalConst(v.SignExtend(6)); got != 0b111011 {
		t.Fatalf("sign extend got %06b", got)
	}
}

func TestMuxVector(t *testing.T) {
	b := logic.NewBuilder()
	o := Ops{b}
	s := b.Input("s")
	tv := Const(0b11, 2)
	fv := Const(0b00, 2)
	m := o.Mux(s, tv, fv)
	env := map[logic.Node]bool{s: true}
	if got := evalBV(b, m, env); got != 0b11 {
		t.Fatalf("mux true got %02b", got)
	}
	env[s] = false
	if got := evalBV(b, m, env); got != 0 {
		t.Fatalf("mux false got %02b", got)
	}
}

func TestEvalConstNonConst(t *testing.T) {
	b := logic.NewBuilder()
	x := b.Input("x")
	if _, ok := EvalConst(BV{[]logic.Node{x}}); ok {
		t.Fatalf("EvalConst must reject symbolic bits")
	}
}
