// Package metrics implements the paper's scalar evaluation metrics:
// BLEU over code tokens, the unbiased pass@k estimator, and the
// approximate subword tokenizer used for the length-distribution
// figures.
package metrics

import (
	"math"
	"strings"
)

// multiOps are the multi-character operator tokens, hoisted so the
// tokenizer's inner loop allocates nothing.
var multiOps = []string{"|->", "|=>", "<<<", ">>>", "===", "!==", "##", "&&", "||", "==", "!=", "<=", ">="}

// CodeTokens tokenizes SVA/SystemVerilog text for BLEU scoring:
// identifiers, numbers, and operator glyphs become tokens. Every token
// is a substring of src — the tokenizer allocates only the result
// slice.
func CodeTokens(src string) []string {
	var out []string
	i := 0
	isWord := func(c byte) bool {
		return c == '_' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '\''
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isWord(c):
			j := i
			for j < len(src) && isWord(src[j]) {
				j++
			}
			out = append(out, src[i:j])
			i = j
		default:
			for _, op := range multiOps {
				if strings.HasPrefix(src[i:], op) {
					out = append(out, op)
					i += len(op)
					goto next
				}
			}
			out = append(out, src[i:i+1])
			i++
		next:
		}
	}
	return out
}

// RefTokens is a pre-tokenized BLEU reference: scoring many
// candidates against one reference (the pass@k shape) tokenizes it
// once instead of per call.
type RefTokens struct{ toks []string }

// TokenizeRef prepares a reference for repeated BLEU scoring.
func TokenizeRef(reference string) RefTokens {
	return RefTokens{toks: CodeTokens(reference)}
}

// BLEU computes smoothed BLEU-4 between a candidate and a reference
// (both raw source strings, tokenized with CodeTokens). Smoothing adds
// one to every n-gram count (Lin & Och smoothing), keeping short
// assertions comparable.
func BLEU(candidate, reference string) float64 {
	return BLEURef(candidate, TokenizeRef(reference))
}

// BLEURef is BLEU against a pre-tokenized reference.
func BLEURef(candidate string, reference RefTokens) float64 {
	cand := CodeTokens(candidate)
	ref := reference.toks
	if len(cand) == 0 || len(ref) == 0 {
		return 0
	}
	// Intern tokens to dense ids once so n-gram counting below hashes
	// small fixed-size arrays instead of joining strings.
	ids := make(map[string]int32, len(cand)+len(ref))
	candIDs := internTokens(cand, ids)
	refIDs := internTokens(ref, ids)
	overlap := ngramOverlap
	if len(ids) >= 0xFFFF {
		overlap = ngramOverlapWide
	}
	const maxN = 4
	logSum := 0.0
	for n := 1; n <= maxN; n++ {
		match, total := overlap(candIDs, refIDs, n)
		// +1 smoothing for n>1 per standard practice
		var p float64
		if n == 1 {
			if total == 0 {
				return 0
			}
			p = float64(match) / float64(total)
			if p == 0 {
				p = 1.0 / float64(2*total)
			}
		} else {
			p = (float64(match) + 1) / (float64(total) + 1)
		}
		logSum += math.Log(p)
	}
	bleu := math.Exp(logSum / maxN)
	// brevity penalty
	if len(cand) < len(ref) {
		bleu *= math.Exp(1 - float64(len(ref))/float64(len(cand)))
	}
	return bleu
}

// internTokens maps tokens to dense ids (extending the shared table)
// so n-grams compare by integer instead of string content.
func internTokens(toks []string, ids map[string]int32) []int32 {
	out := make([]int32, len(toks))
	for i, t := range toks {
		id, ok := ids[t]
		if !ok {
			id = int32(len(ids))
			ids[t] = id
		}
		out[i] = id
	}
	return out
}

// ngram packs tokens i..i+n-1 into one uint64 key, 16 bits per token
// with ids shifted by one so zero-padding cannot collide with id 0.
// Callers guarantee ids fit 16 bits (ngramOverlap checks).
func ngram(xs []int32, i, n int) uint64 {
	var k uint64
	for j := 0; j < n; j++ {
		k = k<<16 | uint64(xs[i+j]+1)
	}
	return k
}

func ngramOverlap(cand, ref []int32, n int) (match, total int) {
	if len(cand) < n {
		return 0, 0
	}
	refCounts := make(map[uint64]int, len(ref))
	for i := 0; i+n <= len(ref); i++ {
		refCounts[ngram(ref, i, n)]++
	}
	for i := 0; i+n <= len(cand); i++ {
		total++
		key := ngram(cand, i, n)
		if refCounts[key] > 0 {
			refCounts[key]--
			match++
		}
	}
	return match, total
}

// ngramOverlapWide is the fallback for inputs with ≥ 2^16-1 distinct
// tokens, where 16-bit packing would collide.
func ngramOverlapWide(cand, ref []int32, n int) (match, total int) {
	if len(cand) < n {
		return 0, 0
	}
	wide := func(xs []int32, i int) (k [4]int32) {
		k = [4]int32{-1, -1, -1, -1}
		copy(k[:], xs[i:i+n])
		return k
	}
	refCounts := make(map[[4]int32]int, len(ref))
	for i := 0; i+n <= len(ref); i++ {
		refCounts[wide(ref, i)]++
	}
	for i := 0; i+n <= len(cand); i++ {
		total++
		key := wide(cand, i)
		if refCounts[key] > 0 {
			refCounts[key]--
			match++
		}
	}
	return match, total
}

// PassAtK is the unbiased estimator from Chen et al. (2021):
// 1 - C(n-c, k)/C(n, k) for n samples with c correct.
func PassAtK(n, c, k int) float64 {
	if k > n {
		k = n
	}
	if n-c < k {
		return 1.0
	}
	// compute 1 - prod_{i=n-c+1..n} (1 - k/i)
	prod := 1.0
	for i := n - c + 1; i <= n; i++ {
		prod *= 1 - float64(k)/float64(i)
	}
	return 1 - prod
}

// Pearson computes the sample Pearson correlation coefficient.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Histogram bins values into equal-width buckets over [min, max] and
// returns bucket labels with counts, for the figure reproductions.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
}

// NewHistogram bins the values into n buckets.
func NewHistogram(values []float64, n int) Histogram {
	if len(values) == 0 || n <= 0 {
		return Histogram{}
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	h := Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
	for _, v := range values {
		b := int((v - lo) / (hi - lo) * float64(n))
		if b >= n {
			b = n - 1
		}
		h.Buckets[b]++
	}
	return h
}

// Render draws the histogram as ASCII rows.
func (h Histogram) Render() string {
	var b strings.Builder
	maxC := 1
	for _, c := range h.Buckets {
		if c > maxC {
			maxC = c
		}
	}
	step := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		lo := h.Lo + float64(i)*step
		hi := lo + step
		bar := strings.Repeat("#", c*40/maxC)
		b.WriteString(strings.TrimRight(
			padLeft(formatRange(lo, hi), 14)+" |"+bar+" "+itoa(c), " ") + "\n")
	}
	return b.String()
}

func formatRange(lo, hi float64) string {
	return itoa(int(lo)) + "-" + itoa(int(hi))
}

func padLeft(s string, w int) string {
	for len(s) < w {
		s = " " + s
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
