// Package metrics implements the paper's scalar evaluation metrics:
// BLEU over code tokens, the unbiased pass@k estimator, and the
// approximate subword tokenizer used for the length-distribution
// figures.
package metrics

import (
	"math"
	"strings"
)

// CodeTokens tokenizes SVA/SystemVerilog text for BLEU scoring:
// identifiers, numbers, and operator glyphs become tokens.
func CodeTokens(src string) []string {
	var out []string
	i := 0
	isWord := func(c byte) bool {
		return c == '_' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '\''
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isWord(c):
			j := i
			for j < len(src) && isWord(src[j]) {
				j++
			}
			out = append(out, src[i:j])
			i = j
		default:
			// multi-char operators
			for _, op := range []string{"|->", "|=>", "<<<", ">>>", "===", "!==", "##", "&&", "||", "==", "!=", "<=", ">="} {
				if strings.HasPrefix(src[i:], op) {
					out = append(out, op)
					i += len(op)
					goto next
				}
			}
			out = append(out, string(c))
			i++
		next:
		}
	}
	return out
}

// BLEU computes smoothed BLEU-4 between a candidate and a reference
// (both raw source strings, tokenized with CodeTokens). Smoothing adds
// one to every n-gram count (Lin & Och smoothing), keeping short
// assertions comparable.
func BLEU(candidate, reference string) float64 {
	cand := CodeTokens(candidate)
	ref := CodeTokens(reference)
	if len(cand) == 0 || len(ref) == 0 {
		return 0
	}
	const maxN = 4
	logSum := 0.0
	for n := 1; n <= maxN; n++ {
		match, total := ngramOverlap(cand, ref, n)
		// +1 smoothing for n>1 per standard practice
		var p float64
		if n == 1 {
			if total == 0 {
				return 0
			}
			p = float64(match) / float64(total)
			if p == 0 {
				p = 1.0 / float64(2*total)
			}
		} else {
			p = (float64(match) + 1) / (float64(total) + 1)
		}
		logSum += math.Log(p)
	}
	bleu := math.Exp(logSum / maxN)
	// brevity penalty
	if len(cand) < len(ref) {
		bleu *= math.Exp(1 - float64(len(ref))/float64(len(cand)))
	}
	return bleu
}

func ngramOverlap(cand, ref []string, n int) (match, total int) {
	if len(cand) < n {
		return 0, 0
	}
	refCounts := map[string]int{}
	for i := 0; i+n <= len(ref); i++ {
		refCounts[strings.Join(ref[i:i+n], "\x00")]++
	}
	for i := 0; i+n <= len(cand); i++ {
		total++
		key := strings.Join(cand[i:i+n], "\x00")
		if refCounts[key] > 0 {
			refCounts[key]--
			match++
		}
	}
	return match, total
}

// PassAtK is the unbiased estimator from Chen et al. (2021):
// 1 - C(n-c, k)/C(n, k) for n samples with c correct.
func PassAtK(n, c, k int) float64 {
	if k > n {
		k = n
	}
	if n-c < k {
		return 1.0
	}
	// compute 1 - prod_{i=n-c+1..n} (1 - k/i)
	prod := 1.0
	for i := n - c + 1; i <= n; i++ {
		prod *= 1 - float64(k)/float64(i)
	}
	return 1 - prod
}

// Pearson computes the sample Pearson correlation coefficient.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Histogram bins values into equal-width buckets over [min, max] and
// returns bucket labels with counts, for the figure reproductions.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
}

// NewHistogram bins the values into n buckets.
func NewHistogram(values []float64, n int) Histogram {
	if len(values) == 0 || n <= 0 {
		return Histogram{}
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	h := Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
	for _, v := range values {
		b := int((v - lo) / (hi - lo) * float64(n))
		if b >= n {
			b = n - 1
		}
		h.Buckets[b]++
	}
	return h
}

// Render draws the histogram as ASCII rows.
func (h Histogram) Render() string {
	var b strings.Builder
	maxC := 1
	for _, c := range h.Buckets {
		if c > maxC {
			maxC = c
		}
	}
	step := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		lo := h.Lo + float64(i)*step
		hi := lo + step
		bar := strings.Repeat("#", c*40/maxC)
		b.WriteString(strings.TrimRight(
			padLeft(formatRange(lo, hi), 14)+" |"+bar+" "+itoa(c), " ") + "\n")
	}
	return b.String()
}

func formatRange(lo, hi float64) string {
	return itoa(int(lo)) + "-" + itoa(int(hi))
}

func padLeft(s string, w int) string {
	for len(s) < w {
		s = " " + s
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
