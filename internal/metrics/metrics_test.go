package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBLEUIdentity(t *testing.T) {
	s := "assert property (@(posedge clk) a |-> ##2 b);"
	if got := BLEU(s, s); got < 0.999 {
		t.Fatalf("self-BLEU = %f, want 1.0", got)
	}
}

func TestBLEUOrdering(t *testing.T) {
	ref := "assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> strong(##[0:$] rd_pop));"
	close1 := "assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> ##[1:$] rd_pop);"
	far := "x + y"
	b1 := BLEU(close1, ref)
	b2 := BLEU(far, ref)
	if !(b1 > b2) {
		t.Fatalf("BLEU ordering broken: close=%f far=%f", b1, b2)
	}
	if b1 <= 0 || b1 >= 1 {
		t.Fatalf("close BLEU out of range: %f", b1)
	}
}

func TestBLEUEmpty(t *testing.T) {
	if BLEU("", "a b c") != 0 || BLEU("a b c", "") != 0 {
		t.Fatalf("empty inputs must score 0")
	}
}

func TestCodeTokens(t *testing.T) {
	toks := CodeTokens("a |-> ##2 (b && c)")
	want := []string{"a", "|->", "##", "2", "(", "b", "&&", "c", ")"}
	if len(toks) != len(want) {
		t.Fatalf("tokens: %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d: %q want %q", i, toks[i], want[i])
		}
	}
}

func TestPassAtKKnownValues(t *testing.T) {
	cases := []struct {
		n, c, k int
		want    float64
	}{
		{5, 0, 1, 0},
		{5, 5, 1, 1},
		{5, 1, 1, 0.2},
		{5, 1, 5, 1},
		{10, 3, 1, 0.3},
		{2, 1, 2, 1},
	}
	for _, c := range cases {
		got := PassAtK(c.n, c.c, c.k)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("PassAtK(%d,%d,%d) = %f want %f", c.n, c.c, c.k, got, c.want)
		}
	}
}

func TestPassAtKProperties(t *testing.T) {
	f := func(nRaw, cRaw, kRaw uint8) bool {
		n := 1 + int(nRaw%10)
		c := int(cRaw) % (n + 1)
		k := 1 + int(kRaw%10)
		p := PassAtK(n, c, k)
		if p < 0 || p > 1 {
			return false
		}
		// monotone in c
		if c > 0 && PassAtK(n, c-1, k) > p+1e-12 {
			return false
		}
		// monotone in k
		if k > 1 && PassAtK(n, c, k-1) > p+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect correlation: %f", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-9 {
		t.Fatalf("perfect anticorrelation: %f", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("zero variance: %f", got)
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 {
		t.Fatalf("empty must be 0")
	}
	short := CountTokens("a && b")
	long := CountTokens("assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> strong(##[0:$] rd_pop));")
	if !(long > short) {
		t.Fatalf("token counts must grow with text: %d vs %d", short, long)
	}
	// identifiers split into subwords
	one := CountTokens("ab")
	big := CountTokens("abcdefghijklmnop")
	if !(big > one) {
		t.Fatalf("long identifiers must cost more tokens")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5)
	total := 0
	for _, c := range h.Buckets {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram loses mass: %d", total)
	}
	if h.Render() == "" {
		t.Fatalf("histogram must render")
	}
}
