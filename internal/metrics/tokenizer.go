package metrics

// CountTokens approximates a Llama-3-style subword token count for the
// length-distribution figures (2, 3, 4). The approximation: words and
// identifiers are split into ~4-character subword pieces with common
// programming tokens counted as single pieces; every operator glyph
// and punctuation mark is one token. Absolute counts differ from the
// real tokenizer by a small factor, but relative distribution shape —
// which is what the figures communicate — is preserved.
func CountTokens(text string) int {
	common := map[string]bool{
		"module": true, "endmodule": true, "input": true, "output": true,
		"assign": true, "always": true, "begin": true, "end": true,
		"posedge": true, "negedge": true, "assert": true, "property": true,
		"disable": true, "iff": true, "the": true, "that": true,
		"and": true, "or": true, "is": true, "clock": true, "cycle": true,
		"cycles": true, "signal": true, "must": true, "hold": true,
		"high": true, "low": true, "true": true, "false": true,
		"then": true, "when": true, "if": true, "else": true, "not": true,
		"reg": true, "wire": true, "logic": true, "parameter": true,
		"case": true, "endcase": true, "state": true, "reset": true,
	}
	count := 0
	i := 0
	isWord := func(c byte) bool {
		return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}
	for i < len(text) {
		c := text[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '\n' || c == '\r':
			count++ // newlines tokenize
			i++
		case isWord(c):
			j := i
			for j < len(text) && isWord(text[j]) {
				j++
			}
			word := text[i:j]
			if common[lower(word)] {
				count++
			} else {
				// subword pieces of ~4 chars, underscores split
				pieces := 0
				runLen := 0
				for k := 0; k < len(word); k++ {
					if word[k] == '_' {
						if runLen > 0 {
							pieces += (runLen + 3) / 4
						}
						pieces++
						runLen = 0
						continue
					}
					runLen++
				}
				if runLen > 0 {
					pieces += (runLen + 3) / 4
				}
				count += pieces
			}
			i = j
		default:
			count++
			i++
		}
	}
	return count
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
