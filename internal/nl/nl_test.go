package nl

import (
	"math/rand"
	"strings"
	"testing"

	"fveval/internal/ltl"
	"fveval/internal/sva"
)

func mustAssert(t *testing.T, src string) *sva.Assertion {
	t.Helper()
	a, err := sva.ParseAssertion(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return a
}

func TestDescribeAndRoundTrip(t *testing.T) {
	cases := []string{
		`assert property (@(posedge clk) sig_D);`,
		`assert property (@(posedge clk) (sig_D && sig_F));`,
		`assert property (@(posedge clk) (sig_D || ^sig_H));`,
		`assert property (@(posedge clk) ((sig_D || ^sig_H) && sig_F));`,
		`assert property (@(posedge clk) (sig_G && sig_J) |-> ##2 (&sig_B));`,
		`assert property (@(posedge clk) sig_D |=> sig_F);`,
		`assert property (@(posedge clk) sig_D |-> ##[1:3] sig_F);`,
		`assert property (@(posedge clk) sig_D |-> s_eventually sig_F);`,
		`assert property (@(posedge clk) (sig_B == 5));`,
		`assert property (@(posedge clk) (sig_B != sig_C));`,
		`assert property (@(posedge clk) ($onehot(sig_G)));`,
		`assert property (@(posedge clk) ($onehot0(sig_G) || !sig_I));`,
		`assert property (@(posedge clk) (sig_C <= 7));`,
		`assert property (@(posedge clk) (|sig_A && sig_J));`,
	}
	for _, src := range cases {
		a := mustAssert(t, src)
		for seed := int64(0); seed < 5; seed++ {
			n := &Naturalizer{Rng: rand.New(rand.NewSource(seed)), Sloppiness: 0}
			desc, err := n.Describe(a)
			if err != nil {
				t.Fatalf("%s (seed %d): describe: %v", src, seed, err)
			}
			if err := Critic(desc, a); err != nil {
				t.Errorf("%s (seed %d): critic rejected faithful description %q: %v",
					src, seed, desc, err)
			}
		}
	}
}

func TestCriticCatchesSloppyGrouping(t *testing.T) {
	// A nested disjunction rendered without grouping markers parses
	// with different associativity; over many seeds, the sloppy
	// renderer must produce at least one description the critic
	// rejects, and the retry loop must then converge.
	a := mustAssert(t, `assert property (@(posedge clk) (sig_D && (sig_E || sig_F)) |-> ##1 sig_J);`)
	sawReject := false
	for seed := int64(0); seed < 40 && !sawReject; seed++ {
		n := &Naturalizer{Rng: rand.New(rand.NewSource(seed)), Sloppiness: 1.0}
		desc, err := n.Describe(a)
		if err != nil {
			continue
		}
		if Critic(desc, a) != nil {
			sawReject = true
		}
	}
	if !sawReject {
		t.Errorf("fully sloppy renderer never produced a critic-rejected description")
	}
}

func TestCriticCatchesWrongMeaning(t *testing.T) {
	a := mustAssert(t, `assert property (@(posedge clk) sig_D |-> ##2 sig_F);`)
	wrong := []string{
		"If sig_D is high, then 3 clock cycles later, sig_F must hold.",
		"If sig_D is high, then 2 clock cycles later, sig_I must hold.",
		"If sig_F is high, then 2 clock cycles later, sig_D must hold.",
		"sig_D is high.",
	}
	for _, d := range wrong {
		if Critic(d, a) == nil {
			t.Errorf("critic accepted wrong description %q", d)
		}
	}
	right := "If sig_D is high, then 2 clock cycles later, sig_F must hold."
	if err := Critic(right, a); err != nil {
		t.Errorf("critic rejected correct description: %v", err)
	}
}

func TestParseDescriptionForms(t *testing.T) {
	cases := []struct {
		desc string
		want string // canonical lowered formula
	}{
		{"sig_D is high.", "sig_D"},
		{"the assertion is satisfied when sig_D is low.", "!sig_D"},
		{"If sig_D is high, then on the next clock cycle, sig_F must hold.",
			"(!(sig_D) | X^1(sig_F))"},
		{"When both sig_D is high and sig_F is true, then eventually, sig_J must hold.",
			"(!(sig_D && sig_F) | F(sig_J))"},
		{"If sig_G has an odd number of bits set to '1', then within 1 to 3 clock cycles, sig_J must hold.",
			"(!(^sig_G) | ((X^1(sig_J) | X^2(sig_J)) | X^3(sig_J)))"},
	}
	for _, c := range cases {
		p, err := ParseDescription(c.desc)
		if err != nil {
			t.Errorf("%q: %v", c.desc, err)
			continue
		}
		f, err := ltl.LowerProperty(p)
		if err != nil {
			t.Errorf("%q: lower: %v", c.desc, err)
			continue
		}
		if f.String() != c.want {
			t.Errorf("%q:\n got %s\nwant %s", c.desc, f, c.want)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"the frobnicator is worbled.",
		"If sig_D is high, then",
		"sig_D is high and.",
	}
	for _, d := range bad {
		if _, err := ParseDescription(d); err == nil {
			t.Errorf("expected parse failure for %q", d)
		}
	}
}

func TestSynonymCoverage(t *testing.T) {
	// Every synonym path must stay parseable: run many seeds over a
	// rich assertion and require zero critic failures at sloppiness 0.
	a := mustAssert(t, `assert property (@(posedge clk)
		(($onehot0(sig_G) || (sig_B >= 3)) && (sig_C != sig_H)) |-> ##4 (sig_A == 9));`)
	// >= not in naturalizer atoms for generation, swap to supported set
	a = mustAssert(t, `assert property (@(posedge clk)
		(($onehot0(sig_G) || (sig_B <= 3)) && (sig_C != sig_H)) |-> ##4 (sig_A == 9));`)
	for seed := int64(0); seed < 30; seed++ {
		n := &Naturalizer{Rng: rand.New(rand.NewSource(seed)), Sloppiness: 0}
		desc, err := n.Describe(a)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Critic(desc, a); err != nil {
			t.Errorf("seed %d: %q rejected: %v", seed, desc, err)
		}
		if !strings.Contains(desc, "sig_") {
			t.Errorf("seed %d: description lost signal names: %q", seed, desc)
		}
	}
}
