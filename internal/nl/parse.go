package nl

import (
	"fmt"
	"strconv"
	"strings"

	"fveval/internal/ltl"
	"fveval/internal/sva"
)

// ParseDescription reconstructs the property described by a
// naturalized assertion description. It understands exactly the phrase
// grammar the Naturalizer emits — this is the critic's inverse model.
func ParseDescription(desc string) (sva.Property, error) {
	s := strings.TrimSpace(desc)
	s = strings.TrimSuffix(s, ".")
	// Commas only punctuate clause boundaries in the generated
	// grammar; they carry no grouping information.
	s = strings.ReplaceAll(s, ",", " ")
	words := strings.Fields(s)
	p := &nlParser{words: words}
	prop, err := p.sentence()
	if err != nil {
		return nil, err
	}
	if p.i != len(p.words) {
		return nil, fmt.Errorf("nl: trailing words %q", strings.Join(p.words[p.i:], " "))
	}
	return prop, nil
}

// Critic re-parses a description and checks it reproduces the source
// assertion's temporal logic, mirroring the paper's LLM-as-critic
// step. It returns nil when the description is faithful.
func Critic(desc string, ref *sva.Assertion) error {
	got, err := ParseDescription(desc)
	if err != nil {
		return fmt.Errorf("nl: critic cannot parse description: %w", err)
	}
	want, err := ltl.LowerProperty(ref.Body)
	if err != nil {
		return fmt.Errorf("nl: critic cannot lower reference: %w", err)
	}
	gotF, err := ltl.LowerProperty(got)
	if err != nil {
		return fmt.Errorf("nl: critic cannot lower description: %w", err)
	}
	if gotF.String() != want.String() {
		return fmt.Errorf("nl: description means %s but reference is %s", gotF, want)
	}
	return nil
}

type nlParser struct {
	words []string
	i     int
}

func (p *nlParser) peek() string {
	if p.i < len(p.words) {
		return p.words[p.i]
	}
	return ""
}

func (p *nlParser) accept(ws ...string) bool {
	if p.i+len(ws) > len(p.words) {
		return false
	}
	for k, w := range ws {
		if !strings.EqualFold(p.words[p.i+k], w) {
			return false
		}
	}
	p.i += len(ws)
	return true
}

func (p *nlParser) sentence() (sva.Property, error) {
	switch {
	case p.accept("if") || p.accept("when") || p.accept("whenever"):
		// "whenever COND, the assertion is satisfied" is the plain
		// form; "if COND, then ..." is the implication.
		ante, err := p.cond()
		if err != nil {
			return nil, err
		}
		if p.accept("the", "assertion", "is", "satisfied") {
			return &sva.PropSeq{S: &sva.SeqExpr{E: ante}}, nil
		}
		if !p.accept("then") {
			return nil, fmt.Errorf("nl: expected 'then' near %q", p.peek())
		}
		delayLo, delayHi, eventually, err := p.delay()
		if err != nil {
			return nil, err
		}
		cons, err := p.cond()
		if err != nil {
			return nil, err
		}
		p.acceptMust()
		var consProp sva.Property = &sva.PropSeq{S: &sva.SeqExpr{E: cons}}
		if eventually {
			return &sva.PropImpl{S: &sva.SeqExpr{E: ante}, Overlap: true,
				P: &sva.PropEventually{P: consProp, Strong: true}}, nil
		}
		if delayLo > 0 || delayHi > 0 {
			return &sva.PropImpl{S: &sva.SeqExpr{E: ante}, Overlap: true,
				P: &sva.PropSeq{S: &sva.SeqDelay{
					D: sva.Delay{Lo: delayLo, Hi: delayHi},
					R: &sva.SeqExpr{E: cons},
				}}}, nil
		}
		return &sva.PropImpl{S: &sva.SeqExpr{E: ante}, Overlap: true, P: consProp}, nil
	case p.accept("the", "assertion", "is", "satisfied", "when"):
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		return &sva.PropSeq{S: &sva.SeqExpr{E: c}}, nil
	case p.accept("at", "every", "clock", "cycle"):
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		return &sva.PropSeq{S: &sva.SeqExpr{E: c}}, nil
	default:
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		return &sva.PropSeq{S: &sva.SeqExpr{E: c}}, nil
	}
}

func (p *nlParser) acceptMust() {
	if p.accept("must", "hold") {
		return
	}
	if p.accept("must", "be", "satisfied") {
		return
	}
	if p.accept("must", "be", "true") {
		return
	}
}

// delay parses a delay phrase, returning (lo, hi, eventually).
func (p *nlParser) delay() (int, int, bool, error) {
	switch {
	case p.accept("on", "the", "next", "clock", "cycle"):
		return 1, 1, false, nil
	case p.accept("one", "clock", "cycle", "later"):
		return 1, 1, false, nil
	case p.accept("in", "the", "same", "cycle"):
		return 0, 0, false, nil
	case p.accept("eventually"):
		return 0, 0, true, nil
	case p.accept("at", "some", "point", "in", "the", "future"):
		return 0, 0, true, nil
	case p.accept("within"):
		lo, err := p.number()
		if err != nil {
			return 0, 0, false, err
		}
		if !p.accept("to") {
			return 0, 0, false, fmt.Errorf("nl: expected 'to' in delay range")
		}
		hi, err := p.number()
		if err != nil {
			return 0, 0, false, err
		}
		if !p.accept("clock", "cycles") && !p.accept("cycles") {
			return 0, 0, false, fmt.Errorf("nl: expected 'clock cycles'")
		}
		return lo, hi, false, nil
	case p.accept("after"):
		n, err := p.number()
		if err != nil {
			return 0, 0, false, err
		}
		if !p.accept("clock", "cycles") && !p.accept("clock", "cycle") {
			return 0, 0, false, fmt.Errorf("nl: expected 'clock cycles'")
		}
		return n, n, false, nil
	}
	// "N clock cycles later, "
	if n, ok := p.tryNumber(); ok {
		if p.accept("clock", "cycles", "later") || p.accept("clock", "cycle", "later") {
			return n, n, false, nil
		}
		return 0, 0, false, fmt.Errorf("nl: malformed delay after number %d", n)
	}
	return 0, 0, false, nil // no delay phrase: same-cycle
}

func (p *nlParser) number() (int, error) {
	if n, ok := p.tryNumber(); ok {
		return n, nil
	}
	return 0, fmt.Errorf("nl: expected a number, found %q", p.peek())
}

func (p *nlParser) tryNumber() (int, bool) {
	w := strings.TrimRight(p.peek(), ",")
	if n, err := strconv.Atoi(w); err == nil {
		p.i++
		return n, true
	}
	switch strings.ToLower(w) {
	case "one":
		p.i++
		return 1, true
	case "two":
		p.i++
		return 2, true
	case "three":
		p.i++
		return 3, true
	case "four":
		p.i++
		return 4, true
	case "five":
		p.i++
		return 5, true
	}
	return 0, false
}

// cond parses a boolean condition with both/either grouping markers.
// Bare connectives associate left.
func (p *nlParser) cond() (sva.Expr, error) {
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("and"):
			right, err := p.operand()
			if err != nil {
				return nil, err
			}
			left = &sva.Binary{Op: "&&", X: left, Y: right}
		case p.accept("or"):
			right, err := p.operand()
			if err != nil {
				return nil, err
			}
			left = &sva.Binary{Op: "||", X: left, Y: right}
		default:
			return left, nil
		}
	}
}

func (p *nlParser) operand() (sva.Expr, error) {
	switch {
	case p.accept("both"):
		x, err := p.operand()
		if err != nil {
			return nil, err
		}
		if !p.accept("and") {
			return nil, fmt.Errorf("nl: expected 'and' after 'both ...'")
		}
		y, err := p.operand()
		if err != nil {
			return nil, err
		}
		return &sva.Binary{Op: "&&", X: x, Y: y}, nil
	case p.accept("either"):
		x, err := p.operand()
		if err != nil {
			return nil, err
		}
		if !p.accept("or") {
			return nil, fmt.Errorf("nl: expected 'or' after 'either ...'")
		}
		y, err := p.operand()
		if err != nil {
			return nil, err
		}
		return &sva.Binary{Op: "||", X: x, Y: y}, nil
	case p.accept("it", "is", "not", "the", "case", "that"):
		x, err := p.operand()
		if err != nil {
			return nil, err
		}
		return &sva.Unary{Op: "!", X: x}, nil
	}
	return p.atom()
}

// atom parses a leaf phrase.
func (p *nlParser) atom() (sva.Expr, error) {
	// non-signal-leading patterns first
	switch {
	case p.accept("all", "bits", "of"):
		sig, err := p.signal()
		if err != nil {
			return nil, err
		}
		if !p.accept("are", "1") {
			return nil, fmt.Errorf("nl: expected 'are 1'")
		}
		return &sva.Unary{Op: "&", X: sig}, nil
	case p.accept("every", "bit", "of"):
		sig, err := p.signal()
		if err != nil {
			return nil, err
		}
		if !p.accept("is", "set") {
			return nil, fmt.Errorf("nl: expected 'is set'")
		}
		return &sva.Unary{Op: "&", X: sig}, nil
	case p.accept("exactly", "one", "bit", "of"):
		sig, err := p.signal()
		if err != nil {
			return nil, err
		}
		if !p.accept("is", "set") {
			return nil, fmt.Errorf("nl: expected 'is set'")
		}
		return &sva.Call{Name: "$onehot", Args: []sva.Expr{sig}}, nil
	case p.accept("at", "most", "one", "bit", "of"):
		sig, err := p.signal()
		if err != nil {
			return nil, err
		}
		if !p.accept("is", "set") {
			return nil, fmt.Errorf("nl: expected 'is set'")
		}
		return &sva.Call{Name: "$onehot0", Args: []sva.Expr{sig}}, nil
	}
	sig, err := p.signal()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept("is", "high"), p.accept("is", "true"), p.accept("is", "asserted"):
		return sig, nil
	case p.accept("is", "low"), p.accept("is", "false"), p.accept("is", "deasserted"):
		return &sva.Unary{Op: "!", X: sig}, nil
	case p.accept("has", "an", "odd", "number", "of", "bits", "set", "to", "'1'"),
		p.accept("has", "odd", "parity"):
		return &sva.Unary{Op: "^", X: sig}, nil
	case p.accept("contains", "at", "least", "one", "'1'", "bit"), p.accept("is", "nonzero"):
		return &sva.Unary{Op: "|", X: sig}, nil
	case p.accept("equals"), p.accept("is", "equal", "to"), p.accept("matches"):
		rhs, err := p.rhs()
		if err != nil {
			return nil, err
		}
		return &sva.Binary{Op: "==", X: sig, Y: rhs}, nil
	case p.accept("is", "not", "equal", "to"), p.accept("differs", "from"):
		rhs, err := p.rhs()
		if err != nil {
			return nil, err
		}
		return &sva.Binary{Op: "!=", X: sig, Y: rhs}, nil
	case p.accept("is", "less", "than", "or", "equal", "to"), p.accept("is", "at", "most"):
		rhs, err := p.rhs()
		if err != nil {
			return nil, err
		}
		return &sva.Binary{Op: "<=", X: sig, Y: rhs}, nil
	case p.accept("is", "less", "than"):
		rhs, err := p.rhs()
		if err != nil {
			return nil, err
		}
		return &sva.Binary{Op: "<", X: sig, Y: rhs}, nil
	case p.accept("is", "greater", "than"):
		rhs, err := p.rhs()
		if err != nil {
			return nil, err
		}
		return &sva.Binary{Op: ">", X: sig, Y: rhs}, nil
	case p.accept("is", "at", "least"):
		rhs, err := p.rhs()
		if err != nil {
			return nil, err
		}
		return &sva.Binary{Op: ">=", X: sig, Y: rhs}, nil
	}
	// Bare signal ("sig_F must hold", "... and sig_J"): treated as
	// asserted-high when followed by a clause boundary.
	switch p.peek() {
	case "", "must", "and", "or", "then":
		return sig, nil
	}
	return nil, fmt.Errorf("nl: cannot parse phrase near %q", strings.Join(p.words[p.i:min(p.i+4, len(p.words))], " "))
}

func (p *nlParser) rhs() (sva.Expr, error) {
	w := strings.TrimRight(p.peek(), ",")
	if v, err := strconv.ParseUint(w, 10, 64); err == nil {
		p.i++
		return &sva.Num{Text: strconv.FormatUint(v, 10), Value: v}, nil
	}
	return p.signal()
}

func (p *nlParser) signal() (sva.Expr, error) {
	w := strings.TrimRight(p.peek(), ",")
	if w == "" || !isSignalWord(w) {
		return nil, fmt.Errorf("nl: expected a signal name, found %q", p.peek())
	}
	p.i++
	return &sva.Ident{Name: w}, nil
}

func isSignalWord(w string) bool {
	if len(w) == 0 {
		return false
	}
	c := w[0]
	if !(c == '_' || (c >= 'a' && c <= 'z')) {
		return false
	}
	// reject grammar words
	switch w {
	case "and", "or", "both", "either", "is", "the", "it", "not", "then",
		"must", "hold", "to", "all", "every", "exactly", "at", "most",
		"least", "when", "if", "whenever", "on", "within", "after":
		return false
	}
	return strings.Contains(w, "_") || strings.HasPrefix(w, "sig")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
