// Package nl naturalizes SVA assertions into English descriptions and
// round-trip-parses descriptions back into logic. It substitutes for
// the LLM naturalizer + LLM critic used in the paper's NL2SVA-Machine
// data generation (§3.3): the naturalizer renders an assertion AST
// through a seeded phrase grammar, and the critic re-parses the
// description and checks it reproduces the source logic; failures
// trigger a regeneration retry exactly as in the paper's flow.
package nl

import (
	"fmt"
	"math/rand"
	"strconv"

	"fveval/internal/sva"
)

// Naturalizer renders assertion ASTs to English. Sloppiness is the
// probability of emitting an ambiguous rendering (dropping grouping
// markers), which the critic is expected to catch.
type Naturalizer struct {
	Rng        *rand.Rand
	Sloppiness float64
}

// pick selects a synonym.
func (n *Naturalizer) pick(options ...string) string {
	return options[n.Rng.Intn(len(options))]
}

// Describe renders the assertion body to a natural-language
// description (without the "Create a SVA assertion that checks:"
// prompt prefix).
func (n *Naturalizer) Describe(a *sva.Assertion) (string, error) {
	return n.prop(a.Body)
}

func (n *Naturalizer) prop(p sva.Property) (string, error) {
	switch v := p.(type) {
	case *sva.PropSeq:
		if se, ok := v.S.(*sva.SeqExpr); ok {
			cond, err := n.expr(se.E, true)
			if err != nil {
				return "", err
			}
			switch n.Rng.Intn(3) {
			case 0:
				return cond + ".", nil
			case 1:
				return "the assertion is satisfied when " + cond + ".", nil
			default:
				return "at every clock cycle, " + cond + ".", nil
			}
		}
		return "", fmt.Errorf("nl: unsupported sequence property %s", v.S.String())
	case *sva.PropImpl:
		ante, ok := v.S.(*sva.SeqExpr)
		if !ok {
			return "", fmt.Errorf("nl: unsupported antecedent %s", v.S.String())
		}
		a, err := n.expr(ante.E, true)
		if err != nil {
			return "", err
		}
		delay, body, err := n.consequent(v.P, !v.Overlap)
		if err != nil {
			return "", err
		}
		lead := n.pick("If ", "When ", "Whenever ")
		return lead + a + ", then " + delay + body + ".", nil
	}
	return "", fmt.Errorf("nl: unsupported property %T", p)
}

// consequent renders the right side of an implication; shifted marks
// |=> (one extra cycle).
func (n *Naturalizer) consequent(p sva.Property, shifted bool) (delay, body string, err error) {
	switch v := p.(type) {
	case *sva.PropSeq:
		switch s := v.S.(type) {
		case *sva.SeqExpr:
			d := ""
			if shifted {
				d = n.pick("on the next clock cycle, ", "one clock cycle later, ")
			} else {
				d = n.pick("", "in the same cycle, ")
			}
			b, err := n.expr(s.E, true)
			if err != nil {
				return "", "", err
			}
			return d, b + n.pick(" must hold", "", " must be satisfied"), nil
		case *sva.SeqDelay:
			if s.L == nil {
				inner, ok := s.R.(*sva.SeqExpr)
				if !ok {
					return "", "", fmt.Errorf("nl: unsupported delayed consequent %s", s.String())
				}
				b, err := n.expr(inner.E, true)
				if err != nil {
					return "", "", err
				}
				d, err := n.delayPhrase(s.D, shifted)
				if err != nil {
					return "", "", err
				}
				return d, b + n.pick(" must hold", "", " must be true"), nil
			}
		}
	case *sva.PropEventually:
		if v.Strong {
			inner, ok := v.P.(*sva.PropSeq)
			if ok {
				if se, ok := inner.S.(*sva.SeqExpr); ok {
					b, err := n.expr(se.E, true)
					if err != nil {
						return "", "", err
					}
					return n.pick("eventually, ", "at some point in the future, "),
						b + " must hold", nil
				}
			}
		}
	}
	return "", "", fmt.Errorf("nl: unsupported consequent %T", p)
}

func (n *Naturalizer) delayPhrase(d sva.Delay, shifted bool) (string, error) {
	lo, hi := d.Lo, d.Hi
	if shifted {
		lo++
		hi++
	}
	switch {
	case d.Inf:
		return "", fmt.Errorf("nl: unbounded delay in consequent phrase")
	case lo == hi && lo == 1:
		return n.pick("on the next clock cycle, ", "one clock cycle later, "), nil
	case lo == hi:
		return n.pick(
			fmt.Sprintf("%d clock cycles later, ", lo),
			fmt.Sprintf("after %d clock cycles, ", lo),
		), nil
	default:
		return fmt.Sprintf("within %d to %d clock cycles, ", lo, hi), nil
	}
}

// expr renders a boolean-layer expression. top marks the outermost
// position (grouping markers optional there; required when nested,
// except in sloppy renderings).
func (n *Naturalizer) expr(e sva.Expr, top bool) (string, error) {
	switch v := e.(type) {
	case *sva.Binary:
		switch v.Op {
		case "&&":
			x, err := n.expr(v.X, false)
			if err != nil {
				return "", err
			}
			y, err := n.expr(v.Y, false)
			if err != nil {
				return "", err
			}
			if !top || n.Rng.Intn(2) == 0 {
				if n.Rng.Float64() < n.Sloppiness {
					return x + " and " + y, nil // ambiguous when nested
				}
				return "both " + x + " and " + y, nil
			}
			return x + " and " + y, nil
		case "||":
			x, err := n.expr(v.X, false)
			if err != nil {
				return "", err
			}
			y, err := n.expr(v.Y, false)
			if err != nil {
				return "", err
			}
			if !top || n.Rng.Intn(2) == 0 {
				if n.Rng.Float64() < n.Sloppiness {
					return x + " or " + y, nil
				}
				return "either " + x + " or " + y, nil
			}
			return x + " or " + y, nil
		}
		return n.atom(e)
	case *sva.Unary:
		if v.Op == "!" {
			if at, err := n.atom(e); err == nil {
				return at, nil
			}
			inner, err := n.expr(v.X, false)
			if err != nil {
				return "", err
			}
			return "it is not the case that " + inner, nil
		}
		return n.atom(e)
	default:
		return n.atom(e)
	}
}

// atom renders a leaf comparison/reduction pattern.
func (n *Naturalizer) atom(e sva.Expr) (string, error) {
	switch v := e.(type) {
	case *sva.Ident:
		return n.pick(v.Name+" is high", v.Name+" is true", v.Name+" is asserted"), nil
	case *sva.Unary:
		switch v.Op {
		case "!":
			if id, ok := v.X.(*sva.Ident); ok {
				return n.pick(id.Name+" is low", id.Name+" is false", id.Name+" is deasserted"), nil
			}
		case "^":
			if id, ok := v.X.(*sva.Ident); ok {
				return n.pick(
					id.Name+" has an odd number of bits set to '1'",
					id.Name+" has odd parity",
				), nil
			}
		case "&":
			if id, ok := v.X.(*sva.Ident); ok {
				return n.pick(
					"all bits of "+id.Name+" are 1",
					"every bit of "+id.Name+" is set",
				), nil
			}
		case "|":
			if id, ok := v.X.(*sva.Ident); ok {
				return n.pick(
					id.Name+" contains at least one '1' bit",
					id.Name+" is nonzero",
				), nil
			}
		}
	case *sva.Call:
		if len(v.Args) == 1 {
			if id, ok := v.Args[0].(*sva.Ident); ok {
				switch v.Name {
				case "$onehot":
					return "exactly one bit of " + id.Name + " is set", nil
				case "$onehot0":
					return "at most one bit of " + id.Name + " is set", nil
				}
			}
		}
	case *sva.Binary:
		id, ok := v.X.(*sva.Ident)
		if !ok {
			break
		}
		if num, isNum := v.Y.(*sva.Num); isNum {
			nv := strconv.FormatUint(num.Value, 10)
			switch v.Op {
			case "==", "===":
				return n.pick(id.Name+" equals "+nv, id.Name+" is equal to "+nv), nil
			case "!=", "!==":
				return n.pick(id.Name+" is not equal to "+nv, id.Name+" differs from "+nv), nil
			case "<":
				return id.Name + " is less than " + nv, nil
			case "<=":
				return n.pick(id.Name+" is at most "+nv, id.Name+" is less than or equal to "+nv), nil
			case ">":
				return id.Name + " is greater than " + nv, nil
			case ">=":
				return id.Name + " is at least " + nv, nil
			}
		}
		if id2, isID := v.Y.(*sva.Ident); isID {
			switch v.Op {
			case "==", "===":
				return n.pick(id.Name+" equals "+id2.Name, id.Name+" matches "+id2.Name), nil
			case "!=", "!==":
				return n.pick(id.Name+" is not equal to "+id2.Name, id.Name+" differs from "+id2.Name), nil
			case "<":
				return id.Name + " is less than " + id2.Name, nil
			}
		}
	}
	return "", fmt.Errorf("nl: no rendering for %s", e.String())
}
