package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lit(v int) Lit {
	if v < 0 {
		return NewLit(-v, true)
	}
	return NewLit(v, false)
}

func addVars(s *Solver, n int) {
	for i := 0; i < n; i++ {
		s.NewVar()
	}
}

func TestLitEncoding(t *testing.T) {
	l := NewLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Fatalf("positive literal broken: %v", l)
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Fatalf("negation broken: %v", n)
	}
	if n.Not() != l {
		t.Fatalf("double negation broken")
	}
	if l.String() != "5" || n.String() != "-5" {
		t.Fatalf("String broken: %q %q", l, n)
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s := New()
	ok, err := s.Solve()
	if err != nil || !ok {
		t.Fatalf("empty formula must be SAT, got %v %v", ok, err)
	}
}

func TestUnitPropagationConflict(t *testing.T) {
	s := New()
	addVars(s, 1)
	s.AddClause(lit(1))
	if res := s.AddClause(lit(-1)); res {
		t.Fatalf("x and !x must be unsatisfiable at add time")
	}
	ok, _ := s.Solve()
	if ok {
		t.Fatalf("expected UNSAT")
	}
}

func TestSimpleSat(t *testing.T) {
	s := New()
	addVars(s, 3)
	s.AddClause(lit(1), lit(2))
	s.AddClause(lit(-1), lit(3))
	s.AddClause(lit(-2), lit(-3))
	ok, m, err := s.SolveModel()
	if err != nil || !ok {
		t.Fatalf("expected SAT: %v %v", ok, err)
	}
	// verify model satisfies all clauses
	val := func(v int) bool { return m[v] }
	if !(val(1) || val(2)) || !(!val(1) || val(3)) || !(!val(2) || !val(3)) {
		t.Fatalf("model does not satisfy formula: %v", m)
	}
}

func TestPigeonhole3into2(t *testing.T) {
	// 3 pigeons, 2 holes: classic small UNSAT instance.
	s := New()
	// var p*2+h+1 for pigeon p in hole h
	addVars(s, 6)
	v := func(p, h int) Lit { return lit(p*2 + h + 1) }
	for p := 0; p < 3; p++ {
		s.AddClause(v(p, 0), v(p, 1))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				s.AddClause(v(p1, h).Not(), v(p2, h).Not())
			}
		}
	}
	ok, _ := s.Solve()
	if ok {
		t.Fatalf("pigeonhole 3->2 must be UNSAT")
	}
}

func TestPigeonhole6into5(t *testing.T) {
	s := New()
	const P, H = 6, 5
	addVars(s, P*H)
	v := func(p, h int) Lit { return lit(p*H + h + 1) }
	for p := 0; p < P; p++ {
		var cl []Lit
		for h := 0; h < H; h++ {
			cl = append(cl, v(p, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				s.AddClause(v(p1, h).Not(), v(p2, h).Not())
			}
		}
	}
	ok, _ := s.Solve()
	if ok {
		t.Fatalf("pigeonhole 6->5 must be UNSAT")
	}
	if s.Stats().Conflicts == 0 {
		t.Fatalf("expected a nontrivial search")
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lit(1), lit(2))
	ok, _ := s.Solve(lit(-1), lit(-2))
	if ok {
		t.Fatalf("assumptions force both false; expected UNSAT")
	}
	ok, _ = s.Solve(lit(-1))
	if !ok {
		t.Fatalf("expected SAT under single assumption")
	}
	// solver must remain reusable
	ok, _ = s.Solve()
	if !ok {
		t.Fatalf("expected SAT with no assumptions")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	addVars(s, 2)
	if !s.AddClause(lit(1), lit(-1)) {
		t.Fatalf("tautological clause must be accepted (and dropped)")
	}
	if !s.AddClause(lit(2), lit(2)) {
		t.Fatalf("duplicate literals must be deduped")
	}
	ok, m, _ := s.SolveModel()
	if !ok || !m[2] {
		t.Fatalf("x2 must be forced true")
	}
}

// brute-force satisfiability for cross-checking
func bruteForce(nVars int, clauses [][]int) bool {
	for mask := 0; mask < 1<<uint(nVars); mask++ {
		sat := true
		for _, c := range clauses {
			cSat := false
			for _, l := range c {
				v := l
				if v < 0 {
					v = -v
				}
				val := mask&(1<<uint(v-1)) != 0
				if l < 0 {
					val = !val
				}
				if val {
					cSat = true
					break
				}
			}
			if !cSat {
				sat = false
				break
			}
		}
		if sat {
			return true
		}
	}
	return false
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 1 + rng.Intn(30)
		var clauses [][]int
		s := New()
		addVars(s, nVars)
		root := true
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			var c []int
			var cl []Lit
			for j := 0; j < width; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c = append(c, v)
				cl = append(cl, lit(v))
			}
			clauses = append(clauses, c)
			if !s.AddClause(cl...) {
				root = false
			}
		}
		want := bruteForce(nVars, clauses)
		var got bool
		if !root {
			got = false
		} else {
			var err error
			got, err = s.Solve()
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v (vars=%d clauses=%v)",
				iter, got, want, nVars, clauses)
		}
		if got {
			// model must actually satisfy every clause
			ok, m, _ := s.SolveModel()
			if !ok {
				t.Fatalf("iter %d: SAT became UNSAT on re-solve", iter)
			}
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					val := m[v]
					if l < 0 {
						val = !val
					}
					if val {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: returned model violates clause %v", iter, c)
				}
			}
		}
	}
}

func TestQuickModelsSatisfy(t *testing.T) {
	// Property: whenever the solver reports SAT on a random 3-CNF, the
	// returned model satisfies the formula.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 4 + rng.Intn(10)
		s := New()
		addVars(s, nVars)
		var clauses [][]Lit
		ok := true
		for i := 0; i < 4*nVars; i++ {
			var cl []Lit
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(nVars)
				neg := rng.Intn(2) == 0
				cl = append(cl, NewLit(v, neg))
			}
			clauses = append(clauses, cl)
			if !s.AddClause(cl...) {
				ok = false
			}
		}
		if !ok {
			return true // UNSAT at root: nothing to check
		}
		sat, m, err := s.SolveModel()
		if err != nil {
			return false
		}
		if !sat {
			return true
		}
		for _, cl := range clauses {
			cSat := false
			for _, l := range cl {
				val := m[l.Var()]
				if l.Neg() {
					val = !val
				}
				if val {
					cSat = true
					break
				}
			}
			if !cSat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d)=%d want %d", i+1, got, w)
		}
	}
}

func TestBudget(t *testing.T) {
	// A hard pigeonhole instance with a tiny budget should hit ErrBudget.
	s := New()
	const P, H = 9, 8
	addVars(s, P*H)
	v := func(p, h int) Lit { return lit(p*H + h + 1) }
	for p := 0; p < P; p++ {
		var cl []Lit
		for h := 0; h < H; h++ {
			cl = append(cl, v(p, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				s.AddClause(v(p1, h).Not(), v(p2, h).Not())
			}
		}
	}
	s.SetBudget(10)
	_, err := s.Solve()
	if err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func BenchmarkSolverPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		const P, H = 7, 6
		addVars(s, P*H)
		v := func(p, h int) Lit { return lit(p*H + h + 1) }
		for p := 0; p < P; p++ {
			var cl []Lit
			for h := 0; h < H; h++ {
				cl = append(cl, v(p, h))
			}
			s.AddClause(cl...)
		}
		for h := 0; h < H; h++ {
			for p1 := 0; p1 < P; p1++ {
				for p2 := p1 + 1; p2 < P; p2++ {
					s.AddClause(v(p1, h).Not(), v(p2, h).Not())
				}
			}
		}
		if ok, _ := s.Solve(); ok {
			b.Fatalf("pigeonhole must be UNSAT")
		}
	}
}
