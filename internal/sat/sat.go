// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-literal watching, VSIDS-style variable activity, phase
// saving, first-UIP clause learning, and Luby restarts.
//
// The solver is the decision engine underneath the formal backend: the
// assertion equivalence checker and the RTL model checker both reduce
// their questions to CNF satisfiability here.
package sat

import (
	"errors"
	"fmt"
)

// Lit is a literal: variable index v (1-based) encoded as 2v for the
// positive literal and 2v+1 for the negated literal.
type Lit int32

// NewLit returns the literal for variable v (1-based), negated if neg.
func NewLit(v int, neg bool) Lit {
	if v <= 0 {
		panic("sat: variable index must be positive")
	}
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the 1-based variable index of the literal.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

// value of a variable assignment.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker Lit // if blocker is true, the clause is satisfied
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct
// with New.
type Solver struct {
	nVars    int
	clauses  []*clause
	learnts  []*clause
	watches  [][]watcher // indexed by literal
	assigns  []lbool     // indexed by var (1-based; index 0 unused)
	phase    []bool      // saved phase per var
	level    []int       // decision level per var
	reason   []*clause   // antecedent clause per var
	trail    []Lit
	trailLim []int // trail index per decision level
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap

	claInc float64

	seen       []bool
	conflicts  int64
	decisions  int64
	propsCount int64
	solves     int64

	maxConflicts int64 // per-call conflict budget; 0 = unlimited

	core []Lit // failed-assumption core of the last unsat Solve

	ok bool // false once an empty clause is derived
}

// Stats reports cumulative solver statistics. Counters accumulate
// across Solve calls on the same solver, so incremental clients can
// compute per-call deltas by snapshotting before and after a call.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Solves       int64
	Learnt       int
	Clauses      int
	Vars         int
}

// ErrBudget is returned by Solve when the conflict budget set via
// SetBudget is exhausted before a verdict is reached.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// New returns an empty solver with no variables.
func New() *Solver {
	s := &Solver{
		varInc: 1.0,
		claInc: 1.0,
		ok:     true,
	}
	s.order = newVarHeap(&s.activity)
	// index 0 of per-var slices is unused (vars are 1-based)
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return s
}

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	s.nVars++
	v := s.nVars
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// SetBudget limits the number of conflicts each Solve call may spend;
// 0 means unlimited. The budget is a per-call delta, not a lifetime
// cap: every Solve starts from a fresh allowance, so an incremental
// client issuing many calls on one solver keeps a uniform
// conflicts-per-query budget regardless of what earlier calls spent.
func (s *Solver) SetBudget(conflicts int64) { s.maxConflicts = conflicts }

// Stats returns solver statistics.
func (s *Solver) Stats() Stats {
	return Stats{
		Conflicts:    s.conflicts,
		Decisions:    s.decisions,
		Propagations: s.propsCount,
		Solves:       s.solves,
		Learnt:       len(s.learnts),
		Clauses:      len(s.clauses),
		Vars:         s.nVars,
	}
}

// Core returns the failed-assumption core of the most recent
// unsatisfiable Solve call: a subset of that call's assumptions which
// by itself already forces unsatisfiability. An empty core on an
// unsatisfiable call means the clause database is unsatisfiable
// regardless of assumptions. The returned slice is a copy; it stays
// valid across later calls.
func (s *Solver) Core() []Lit {
	return append([]Lit(nil), s.core...)
}

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		return v.neg()
	}
	return v
}

// AddClause adds a clause (a disjunction of literals). It returns false
// if the formula is already known unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("sat: AddClause called at non-root decision level")
	}
	// Normalize: sort-free dedupe, drop false lits, detect tautology.
	// Clauses here are tiny (Tseitin emits 2-3 literals), so a linear
	// scan over a stack buffer replaces the per-call map the old
	// normalization allocated — AddClause runs ~3× per encoded gate
	// and was a top allocation site of the whole backend.
	var buf [8]Lit
	out := buf[:0]
	if len(lits) > len(buf) {
		out = make([]Lit, 0, len(lits))
	}
	for _, l := range lits {
		if l.Var() <= 0 || l.Var() > s.nVars {
			panic(fmt.Sprintf("sat: literal %v references unallocated variable", l))
		}
		switch s.valueLit(l) {
		case lTrue:
			return true // clause already satisfied at root
		case lFalse:
			continue
		}
		dup := false
		for _, o := range out {
			if o == l.Not() {
				return true // tautology
			}
			if o == l {
				dup = true
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	// watch the first two literals
	w0, w1 := c.lits[0], c.lits[1]
	s.watches[w0.Not()] = append(s.watches[w0.Not()], watcher{c, w1})
	s.watches[w1.Not()] = append(s.watches[w1.Not()], watcher{c, w0})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propsCount++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.valueLit(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// ensure c.lits[0] is the other watched literal
			falseLit := p.Not()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// search replacement watch
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// clause is unit or conflicting
			kept = append(kept, watcher{c, first})
			if s.valueLit(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
				continue
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

// analyze computes a first-UIP learnt clause and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		if confl.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// pick next literal on trail
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		confl = s.reason[v]
		s.seen[v] = false
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Conflict-clause minimization (recursive, via reason clauses).
	// Every variable whose seen flag is set during analysis — including
	// literals dropped by minimization and variables marked inside
	// litRedundant — must be cleared before returning, or the next
	// analysis round sees stale flags and miscounts paths.
	toClear := append([]Lit(nil), learnt...)
	abstract := 0
	for _, l := range learnt[1:] {
		abstract |= 1 << (uint(s.level[l.Var()]) & 31)
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		l := learnt[i]
		if s.reason[l.Var()] == nil || !s.litRedundant(l, abstract, &toClear) {
			learnt[j] = l
			j++
		}
	}
	out := learnt[:j]

	// compute backtrack level
	btLevel := 0
	if len(out) > 1 {
		maxI := 1
		for i := 2; i < len(out); i++ {
			if s.level[out[i].Var()] > s.level[out[maxI].Var()] {
				maxI = i
			}
		}
		out[1], out[maxI] = out[maxI], out[1]
		btLevel = s.level[out[1].Var()]
	}
	for _, l := range toClear {
		s.seen[l.Var()] = false
	}
	return out, btLevel
}

// litRedundant checks whether literal l is implied by the remaining
// learnt-clause literals (standard clause minimization). Variables it
// marks seen are recorded in toClear for the caller to reset.
func (s *Solver) litRedundant(l Lit, abstract int, toClear *[]Lit) bool {
	stack := []Lit{l}
	top := len(*toClear)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := s.reason[p.Var()]
		if c == nil {
			// Roll back marks made during this call only.
			for _, q := range (*toClear)[top:] {
				s.seen[q.Var()] = false
			}
			*toClear = (*toClear)[:top]
			return false
		}
		for _, q := range c.lits[1:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == nil || (1<<(uint(s.level[v])&31))&abstract == 0 {
				for _, qq := range (*toClear)[top:] {
					s.seen[qq.Var()] = false
				}
				*toClear = (*toClear)[:top]
				return false
			}
			s.seen[v] = true
			*toClear = append(*toClear, q)
			stack = append(stack, q)
		}
	}
	return true
}

// analyzeFinal computes the failed-assumption core when assumption p
// is found falsified during assumption enqueueing: the subset of the
// current call's assumptions whose implication graph forces ~p. At
// that point every decision on the trail is itself an assumption, so
// walking reasons from ~p down and collecting reached decisions yields
// a core that is by construction a subset of the assumptions.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	core := []Lit{p}
	if s.decisionLevel() == 0 {
		// ~p is implied at root level: p alone is inconsistent with the
		// clause database.
		return core
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if c := s.reason[v]; c == nil {
			if s.level[v] > 0 {
				core = append(core, s.trail[i])
			}
		} else {
			for _, q := range c.lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
	return core
}

func (s *Solver) backtrack(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = nil
		if !s.order.inHeap(v) {
			s.order.push(v)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.order.inHeap(v) {
		s.order.decrease(v)
	}
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, cl := range s.learnts {
			cl.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) pickBranchVar() int {
	for s.order.size() > 0 {
		v := s.order.pop()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return 0
}

// reduceDB removes half of the learnt clauses with lowest activity.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 100 {
		return
	}
	// partial selection: simple threshold at median via nth-element-ish pass
	acts := make([]float64, len(s.learnts))
	for i, c := range s.learnts {
		acts[i] = c.activity
	}
	med := quickMedian(acts)
	kept := s.learnts[:0]
	removed := map[*clause]bool{}
	for _, c := range s.learnts {
		if len(c.lits) <= 2 || c.activity >= med || s.locked(c) {
			kept = append(kept, c)
		} else {
			removed[c] = true
		}
	}
	if len(removed) == 0 {
		return
	}
	s.learnts = kept
	for li := range s.watches {
		ws := s.watches[li]
		out := ws[:0]
		for _, w := range ws {
			if !removed[w.c] {
				out = append(out, w)
			}
		}
		s.watches[li] = out
	}
}

func (s *Solver) locked(c *clause) bool {
	return len(c.lits) > 0 && s.reason[c.lits[0].Var()] == c &&
		s.valueLit(c.lits[0]) == lTrue
}

func quickMedian(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	// median-of-medians not needed; simple insertion on copy is fine for
	// the sizes reduceDB sees (bounded by learnt-clause count).
	b := append([]float64(nil), a...)
	lo, hi, k := 0, len(b)-1, len(b)/2
	for lo < hi {
		p := b[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for b[i] < p {
				i++
			}
			for b[j] > p {
				j--
			}
			if i <= j {
				b[i], b[j] = b[j], b[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return b[k]
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// Assumptions are enqueued as pseudo-decisions below all search
// decisions, so learnt clauses and variable activity carry over to
// later Solve calls, and clauses may be added between calls. It
// returns (true, nil) if satisfiable, (false, nil) if unsatisfiable
// (see Core for the responsible assumption subset), and
// (false, ErrBudget) if the per-call conflict budget ran out.
func (s *Solver) Solve(assumptions ...Lit) (bool, error) {
	ok, _, err := s.solve(false, assumptions)
	return ok, err
}

// search runs CDCL for up to maxConfl conflicts. done=false means the
// budget expired (restart).
func (s *Solver) search(maxConfl int64, assumptions []Lit, learntCap *int) (sat bool, done bool) {
	conflC := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflC++
			if s.decisionLevel() == 0 {
				s.ok = false
				return false, true
			}
			learnt, btLevel := s.analyze(confl)
			s.backtrack(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			continue
		}
		if conflC >= maxConfl {
			s.backtrack(0)
			return false, false
		}
		if len(s.learnts) > *learntCap {
			s.reduceDB()
			*learntCap += *learntCap / 10
		}
		// enqueue assumptions first
		next := Lit(-1)
		for s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.valueLit(p) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				// conflict with assumption: final-conflict analysis
				// yields the failed-assumption core
				s.core = s.analyzeFinal(p)
				return false, true
			}
			next = p
			break
		}
		if next == -1 {
			v := s.pickBranchVar()
			if v == 0 {
				return true, true // all vars assigned: model found
			}
			s.decisions++
			next = NewLit(v, !s.phase[v])
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// Value returns the model value of variable v after a satisfiable Solve.
// Must be called before the next Solve/AddClause; after backtrack to
// root, values persist only for root-level implied variables, so Solve
// copies the model — see Model.
func (s *Solver) Value(v int) bool {
	return s.assigns[v] == lTrue
}

// Model captures the satisfying assignment (index 0 unused).
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.assigns[v] == lTrue
	}
	return m
}

// SolveModel is a convenience wrapper: it solves and, when satisfiable,
// returns the model before backtracking state is disturbed.
func (s *Solver) SolveModel(assumptions ...Lit) (bool, []bool, error) {
	return s.solve(true, assumptions)
}

// solve is the shared CDCL driver behind Solve and SolveModel. search()
// returns with the full assignment still on the trail only when SAT, so
// the model (when requested) is captured before backtracking to root.
func (s *Solver) solve(wantModel bool, assumptions []Lit) (bool, []bool, error) {
	s.solves++
	s.core = nil
	if !s.ok {
		return false, nil, nil
	}
	s.backtrack(0)
	restart := int64(0)
	baseConflicts := s.conflicts
	learntCap := len(s.clauses)/3 + 100
	for {
		restart++
		budget := 100 * luby(restart)
		res, done := s.search(budget, assumptions, &learntCap)
		if done {
			var m []bool
			if res && wantModel {
				m = s.Model()
			}
			s.backtrack(0)
			return res, m, nil
		}
		if s.maxConflicts > 0 && s.conflicts-baseConflicts > s.maxConflicts {
			s.backtrack(0)
			return false, nil, ErrBudget
		}
	}
}

// varHeap is a binary max-heap over variable activity.
type varHeap struct {
	heap     []int
	indices  []int // var -> position+1 (0 = absent)
	activity *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{activity: act, indices: make([]int, 1)}
}

func (h *varHeap) less(a, b int) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) inHeap(v int) bool {
	return v < len(h.indices) && h.indices[v] != 0
}

func (h *varHeap) push(v int) {
	for v >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 1
	h.heap = h.heap[:last]
	h.indices[v] = 0
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) decrease(v int) { // activity increased -> move up
	h.up(h.indices[v] - 1)
}

func (h *varHeap) up(i int) {
	x := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(x, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = i + 1
		i = p
	}
	h.heap[i] = x
	h.indices[x] = i + 1
}

func (h *varHeap) down(i int) {
	x := h.heap[i]
	n := len(h.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], x) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = i + 1
		i = c
	}
	h.heap[i] = x
	h.indices[x] = i + 1
}
