package sat

import (
	"errors"
	"testing"
)

// Tests for the incremental (assumption-based) solver interface: unsat
// cores, learnt-clause retention across Solve calls, clause addition
// between calls, and per-call conflict-budget deltas.

// addPigeonhole encodes the pigeonhole principle PHP(pigeons, holes)
// with every clause gated behind the activation literal act: the
// instance is unsatisfiable for pigeons > holes, but only under the
// assumption act, so the solver survives refuting it.
func addPigeonhole(s *Solver, act Lit, pigeons, holes int) {
	p := make([][]Lit, pigeons)
	for i := 0; i < pigeons; i++ {
		p[i] = make([]Lit, holes)
		for j := 0; j < holes; j++ {
			p[i][j] = NewLit(s.NewVar(), false)
		}
	}
	// every pigeon sits in some hole
	for i := 0; i < pigeons; i++ {
		lits := []Lit{act.Not()}
		lits = append(lits, p[i]...)
		s.AddClause(lits...)
	}
	// no two pigeons share a hole
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(act.Not(), p[i][j].Not(), p[k][j].Not())
			}
		}
	}
}

func litSet(lits []Lit) map[Lit]bool {
	m := map[Lit]bool{}
	for _, l := range lits {
		m[l] = true
	}
	return m
}

func TestCoreIsSubsetOfAssumptions(t *testing.T) {
	s := New()
	a := NewLit(s.NewVar(), false)
	b := NewLit(s.NewVar(), false)
	c := NewLit(s.NewVar(), false) // irrelevant to the conflict
	x := NewLit(s.NewVar(), false)
	s.AddClause(a.Not(), x)
	s.AddClause(b.Not(), x.Not())

	ok, err := s.Solve(a, b, c)
	if err != nil || ok {
		t.Fatalf("want unsat, got ok=%v err=%v", ok, err)
	}
	core := s.Core()
	if len(core) == 0 {
		t.Fatal("unsat under assumptions must produce a non-empty core")
	}
	asm := litSet([]Lit{a, b, c})
	for _, l := range core {
		if !asm[l] {
			t.Fatalf("core literal %v is not one of the assumptions", l)
		}
	}
	// The core must itself be sufficient for unsatisfiability.
	ok, err = s.Solve(core...)
	if err != nil || ok {
		t.Fatalf("re-solving under the core must stay unsat, got ok=%v err=%v", ok, err)
	}
	// Dropping the core (assuming only the irrelevant literal) is sat.
	ok, err = s.Solve(c)
	if err != nil || !ok {
		t.Fatalf("assuming only %v must be sat, got ok=%v err=%v", c, ok, err)
	}
}

func TestCoreEmptyWhenUnconditionallyUnsat(t *testing.T) {
	s := New()
	x := NewLit(s.NewVar(), false)
	y := NewLit(s.NewVar(), false)
	s.AddClause(x)
	s.AddClause(x.Not(), y)
	s.AddClause(y.Not())
	ok, err := s.Solve(NewLit(s.NewVar(), false))
	if err != nil || ok {
		t.Fatalf("want unsat, got ok=%v err=%v", ok, err)
	}
	if core := s.Core(); len(core) != 0 {
		t.Fatalf("unconditional unsat must yield an empty core, got %v", core)
	}
}

func TestContradictoryAssumptionsCore(t *testing.T) {
	s := New()
	x := NewLit(s.NewVar(), false)
	s.AddClause(x, x.Not()) // tautology; solver otherwise unconstrained
	ok, err := s.Solve(x, x.Not())
	if err != nil || ok {
		t.Fatalf("contradictory assumptions must be unsat, got ok=%v err=%v", ok, err)
	}
	core := litSet(s.Core())
	if !core[x] || !core[x.Not()] {
		t.Fatalf("core must contain both contradictory assumptions, got %v", s.Core())
	}
}

func TestLearntClausesSurviveAcrossSolves(t *testing.T) {
	s := New()
	act := NewLit(s.NewVar(), false)
	addPigeonhole(s, act, 5, 4)

	ok, err := s.Solve(act)
	if err != nil || ok {
		t.Fatalf("gated pigeonhole must be unsat under act, got ok=%v err=%v", ok, err)
	}
	st1 := s.Stats()
	if st1.Conflicts == 0 {
		t.Fatal("refuting the pigeonhole must cost conflicts")
	}
	if st1.Learnt == 0 && st1.Conflicts > 1 {
		t.Fatal("conflicts must have produced learnt clauses")
	}
	if core := s.Core(); len(core) != 1 || core[0] != act {
		t.Fatalf("core must be exactly the activation literal, got %v", s.Core())
	}

	// Second refutation reuses the learnt clauses: act is root-implied
	// false by now (or nearly so), so the repeat costs far fewer
	// conflicts than the first call.
	ok, err = s.Solve(act)
	if err != nil || ok {
		t.Fatalf("repeat solve must stay unsat, got ok=%v err=%v", ok, err)
	}
	st2 := s.Stats()
	if st2.Solves != st1.Solves+1 {
		t.Fatalf("solve counter must advance by one, got %d -> %d", st1.Solves, st2.Solves)
	}
	delta := st2.Conflicts - st1.Conflicts
	if delta*2 >= st1.Conflicts {
		t.Fatalf("repeat solve must reuse learnt clauses: first call %d conflicts, repeat %d",
			st1.Conflicts, delta)
	}
	// The clause memory itself persisted (not rebuilt from zero).
	if st2.Learnt < st1.Learnt {
		t.Fatalf("learnt clauses dropped across calls: %d -> %d", st1.Learnt, st2.Learnt)
	}
	// The instance stays sat with the activation released.
	ok, err = s.Solve(act.Not())
	if err != nil || !ok {
		t.Fatalf("released instance must be sat, got ok=%v err=%v", ok, err)
	}
}

func TestClauseAdditionBetweenSolves(t *testing.T) {
	s := New()
	x := NewLit(s.NewVar(), false)
	y := NewLit(s.NewVar(), false)
	s.AddClause(x, y)
	ok, m, err := s.SolveModel()
	if err != nil || !ok {
		t.Fatalf("want sat, got ok=%v err=%v", ok, err)
	}
	if !m[x.Var()] && !m[y.Var()] {
		t.Fatal("model must satisfy x or y")
	}
	// Block the positive x; the solver must adapt on the next call.
	s.AddClause(x.Not())
	ok, m, err = s.SolveModel()
	if err != nil || !ok {
		t.Fatalf("still sat via y, got ok=%v err=%v", ok, err)
	}
	if m[x.Var()] || !m[y.Var()] {
		t.Fatalf("model must now set y and clear x, got x=%v y=%v", m[x.Var()], m[y.Var()])
	}
	s.AddClause(y.Not())
	ok, err = s.Solve()
	if err != nil || ok {
		t.Fatalf("fully blocked instance must be unsat, got ok=%v err=%v", ok, err)
	}
}

func TestBudgetIsPerCallDelta(t *testing.T) {
	s := New()
	act := NewLit(s.NewVar(), false)
	addPigeonhole(s, act, 7, 6)
	s.SetBudget(20)

	_, err := s.Solve(act)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget must exhaust on PHP(7,6), got err=%v", err)
	}
	c1 := s.Stats().Conflicts
	if c1 <= 20 {
		t.Fatalf("first call must have spent past its budget check, conflicts=%d", c1)
	}

	// A second budgeted call starts from a fresh allowance: it performs
	// real new search work instead of aborting on the lifetime total.
	_, err = s.Solve(act)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("second budgeted call must also exhaust, got err=%v", err)
	}
	c2 := s.Stats().Conflicts
	if c2-c1 < 10 {
		t.Fatalf("per-call budget must reset: second call spent only %d conflicts", c2-c1)
	}

	// An easy query on the same solver is unaffected by earlier spend.
	ok, err := s.Solve(act.Not())
	if err != nil || !ok {
		t.Fatalf("easy query must succeed within budget, got ok=%v err=%v", ok, err)
	}

	// Clearing the budget lets the refutation complete.
	s.SetBudget(0)
	ok, err = s.Solve(act)
	if err != nil || ok {
		t.Fatalf("unbudgeted solve must refute, got ok=%v err=%v", ok, err)
	}
}
