// Package sva defines the abstract syntax tree for SystemVerilog
// Assertions, a recursive-descent parser, a canonical printer, and a
// semantic validator. The validator plays the role of the commercial
// tool's compile step in the paper's evaluation flow: an assertion
// passes the Syntax metric iff it parses and validates here.
package sva

import (
	"fmt"
	"strings"
)

// Expr is a boolean/bit-vector expression (the boolean layer of SVA).
type Expr interface {
	exprNode()
	String() string
}

// Ident is a signal, parameter, or constant reference.
type Ident struct{ Name string }

// Num is a numeric literal; Text preserves the source spelling.
type Num struct {
	Text  string
	Value uint64
	Width int  // 0 = unsized
	Fill  bool // '0 / '1
}

// Unary is a prefix operator application: ! ~ & | ^ ~& ~| ~^ ^~ - +.
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operator application.
type Binary struct {
	Op   string
	X, Y Expr
}

// Cond is the ternary conditional c ? t : e.
type Cond struct {
	C, T, E Expr
}

// Call is a system function application ($countones(x), $past(x, 2)).
// Non-system names parse but fail validation — this is how hallucinated
// operators like eventually(x) are caught, mirroring the paper.
type Call struct {
	Name string
	Args []Expr
}

// Concat is {a, b, c}.
type Concat struct{ Parts []Expr }

// Repl is a replication {n{v}}.
type Repl struct {
	Count Expr
	Value Expr
}

// Index is a bit select x[i].
type Index struct {
	X   Expr
	Idx Expr
}

// Select is a part select x[hi:lo].
type Select struct {
	X      Expr
	Hi, Lo Expr
}

// WidthCast forces an expression to a fixed self-determined width
// (truncating or zero-extending). It has no surface syntax — the RTL
// elaborator inserts it to pin port/assignment widths — and prints as
// a $fvw(w, x) pseudo-call for debugging.
type WidthCast struct {
	X Expr
	W int
}

func (*Ident) exprNode()     {}
func (*Num) exprNode()       {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Cond) exprNode()      {}
func (*Call) exprNode()      {}
func (*Concat) exprNode()    {}
func (*Repl) exprNode()      {}
func (*Index) exprNode()     {}
func (*Select) exprNode()    {}
func (*WidthCast) exprNode() {}

func (e *WidthCast) String() string {
	return fmt.Sprintf("$fvw(%d, %s)", e.W, e.X.String())
}

func (e *Ident) String() string { return e.Name }
func (e *Num) String() string   { return e.Text }
func (e *Unary) String() string { return e.Op + parenExpr(e.X) }
func (e *Binary) String() string {
	return parenExpr(e.X) + " " + e.Op + " " + parenExpr(e.Y)
}
func (e *Cond) String() string {
	return parenExpr(e.C) + " ? " + parenExpr(e.T) + " : " + parenExpr(e.E)
}
func (e *Call) String() string {
	var args []string
	for _, a := range e.Args {
		args = append(args, a.String())
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}
func (e *Concat) String() string {
	var parts []string
	for _, p := range e.Parts {
		parts = append(parts, p.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
func (e *Repl) String() string {
	return "{" + e.Count.String() + "{" + e.Value.String() + "}}"
}
func (e *Index) String() string {
	return parenExpr(e.X) + "[" + e.Idx.String() + "]"
}
func (e *Select) String() string {
	return parenExpr(e.X) + "[" + e.Hi.String() + ":" + e.Lo.String() + "]"
}

func parenExpr(e Expr) string {
	switch e.(type) {
	case *Ident, *Num, *Call, *Concat, *Repl, *Index, *Select:
		return e.String()
	case *Unary:
		return e.String()
	}
	return "(" + e.String() + ")"
}

// Delay is a cycle-delay range ##[Lo:Hi]; Inf means Hi is $.
type Delay struct {
	Lo, Hi int
	Inf    bool
}

func (d Delay) String() string {
	if d.Inf {
		if d.Lo == 0 {
			return "##[0:$]"
		}
		return fmt.Sprintf("##[%d:$]", d.Lo)
	}
	if d.Lo == d.Hi {
		return fmt.Sprintf("##%d", d.Lo)
	}
	return fmt.Sprintf("##[%d:%d]", d.Lo, d.Hi)
}

// Sequence is an SVA sequence expression.
type Sequence interface {
	seqNode()
	String() string
}

// SeqExpr is a boolean expression as a length-1 sequence.
type SeqExpr struct{ E Expr }

// SeqDelay is L ##[lo:hi] R. L may be nil for a leading delay.
type SeqDelay struct {
	L Sequence // may be nil
	D Delay
	R Sequence
}

// SeqRepeat is S[*lo:hi] consecutive repetition; Inf means hi is $.
type SeqRepeat struct {
	S      Sequence
	Lo, Hi int
	Inf    bool
}

// SeqBinary is a sequence combination: "and", "or", "intersect",
// "within".
type SeqBinary struct {
	Op   string
	L, R Sequence
}

// SeqThroughout is E throughout S.
type SeqThroughout struct {
	E Expr
	S Sequence
}

// SeqFirstMatch is first_match(S).
type SeqFirstMatch struct{ S Sequence }

func (*SeqExpr) seqNode()       {}
func (*SeqDelay) seqNode()      {}
func (*SeqRepeat) seqNode()     {}
func (*SeqBinary) seqNode()     {}
func (*SeqThroughout) seqNode() {}
func (*SeqFirstMatch) seqNode() {}

func (s *SeqExpr) String() string { return s.E.String() }
func (s *SeqDelay) String() string {
	if s.L == nil {
		return s.D.String() + " " + parenSeq(s.R)
	}
	// Delay concatenation chains print flat: a ##1 b ##2 c.
	left := parenSeq(s.L)
	if _, ok := s.L.(*SeqDelay); ok {
		left = s.L.String()
	}
	return left + " " + s.D.String() + " " + parenSeq(s.R)
}
func (s *SeqRepeat) String() string {
	var rep string
	switch {
	case s.Inf:
		rep = fmt.Sprintf("[*%d:$]", s.Lo)
	case s.Lo == s.Hi:
		rep = fmt.Sprintf("[*%d]", s.Lo)
	default:
		rep = fmt.Sprintf("[*%d:%d]", s.Lo, s.Hi)
	}
	return parenSeq(s.S) + rep
}
func (s *SeqBinary) String() string {
	return parenSeq(s.L) + " " + s.Op + " " + parenSeq(s.R)
}
func (s *SeqThroughout) String() string {
	return parenExpr(s.E) + " throughout " + parenSeq(s.S)
}
func (s *SeqFirstMatch) String() string {
	return "first_match(" + s.S.String() + ")"
}

func parenSeq(s Sequence) string {
	switch s.(type) {
	case *SeqExpr, *SeqFirstMatch, *SeqRepeat:
		return s.String()
	}
	return "(" + s.String() + ")"
}

// Property is an SVA property expression.
type Property interface {
	propNode()
	String() string
}

// PropSeq is a sequence used as a property. Strength records an
// explicit strong(...)/weak(...) wrapper; unset means the default weak
// interpretation of a sequence property.
type PropSeq struct {
	S        Sequence
	Strong   bool
	Explicit bool // wrapped in strong()/weak()
}

// PropNot is "not P".
type PropNot struct{ P Property }

// PropBinary is "P and Q", "P or Q", "P implies Q", or "P iff Q".
type PropBinary struct {
	Op   string
	L, R Property
}

// PropImpl is S |-> P (Overlap) or S |=> P.
type PropImpl struct {
	S       Sequence
	Overlap bool
	P       Property
}

// PropIfElse is "if (C) P else Q"; Else may be nil.
type PropIfElse struct {
	C    Expr
	Then Property
	Else Property // may be nil
}

// PropAlways is always P (weak) or s_always P.
type PropAlways struct {
	P      Property
	Strong bool
}

// PropEventually is s_eventually P (Strong) — the weak bounded form is
// not used by the benchmark and rejected by the validator if unbounded.
type PropEventually struct {
	P      Property
	Strong bool
}

// PropNexttime is nexttime P / s_nexttime P.
type PropNexttime struct {
	P      Property
	Strong bool
}

// PropUntil is "L until R" and variants (s_until, until_with,
// s_until_with).
type PropUntil struct {
	L, R   Property
	Strong bool
	With   bool
}

func (*PropSeq) propNode()        {}
func (*PropNot) propNode()        {}
func (*PropBinary) propNode()     {}
func (*PropImpl) propNode()       {}
func (*PropIfElse) propNode()     {}
func (*PropAlways) propNode()     {}
func (*PropEventually) propNode() {}
func (*PropNexttime) propNode()   {}
func (*PropUntil) propNode()      {}

func (p *PropSeq) String() string {
	if p.Explicit {
		if p.Strong {
			return "strong(" + p.S.String() + ")"
		}
		return "weak(" + p.S.String() + ")"
	}
	return p.S.String()
}
func (p *PropNot) String() string { return "not " + parenProp(p.P) }
func (p *PropBinary) String() string {
	return parenProp(p.L) + " " + p.Op + " " + parenProp(p.R)
}
func (p *PropImpl) String() string {
	op := "|=>"
	if p.Overlap {
		op = "|->"
	}
	return parenSeq(p.S) + " " + op + " " + parenProp(p.P)
}
func (p *PropIfElse) String() string {
	s := "if (" + p.C.String() + ") " + parenProp(p.Then)
	if p.Else != nil {
		s += " else " + parenProp(p.Else)
	}
	return s
}
func (p *PropAlways) String() string {
	if p.Strong {
		return "s_always " + parenProp(p.P)
	}
	return "always " + parenProp(p.P)
}
func (p *PropEventually) String() string {
	if p.Strong {
		return "s_eventually " + parenProp(p.P)
	}
	return "eventually " + parenProp(p.P)
}
func (p *PropNexttime) String() string {
	if p.Strong {
		return "s_nexttime " + parenProp(p.P)
	}
	return "nexttime " + parenProp(p.P)
}
func (p *PropUntil) String() string {
	op := "until"
	if p.Strong {
		op = "s_until"
	}
	if p.With {
		op += "_with"
	}
	return parenProp(p.L) + " " + op + " " + parenProp(p.R)
}

func parenProp(p Property) string {
	switch v := p.(type) {
	case *PropSeq:
		if v.Explicit {
			return p.String()
		}
		if _, ok := v.S.(*SeqExpr); ok {
			return p.String()
		}
	}
	return "(" + p.String() + ")"
}

// Assertion is a complete concurrent assertion statement. Kind is
// "assert" (default), "assume" (input constraint), or "cover".
type Assertion struct {
	Label      string // optional
	Kind       string // "" is treated as "assert"
	ClockEdge  string // "posedge" or "negedge"
	ClockName  string // clock signal name
	DisableIff Expr   // may be nil
	Body       Property
}

// KindOrAssert returns the statement kind, defaulting to "assert".
func (a *Assertion) KindOrAssert() string {
	if a.Kind == "" {
		return "assert"
	}
	return a.Kind
}

// String renders the assertion in canonical SVA form.
func (a *Assertion) String() string {
	var b strings.Builder
	if a.Label != "" {
		b.WriteString(a.Label)
		b.WriteString(": ")
	}
	b.WriteString(a.KindOrAssert())
	b.WriteString(" property (@(")
	b.WriteString(a.ClockEdge)
	b.WriteString(" ")
	b.WriteString(a.ClockName)
	b.WriteString(")")
	if a.DisableIff != nil {
		b.WriteString(" disable iff (")
		b.WriteString(a.DisableIff.String())
		b.WriteString(")")
	}
	b.WriteString(" ")
	b.WriteString(a.Body.String())
	b.WriteString(");")
	return b.String()
}
