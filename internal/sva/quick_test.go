package sva

import (
	"testing"
	"testing/quick"

	"math/rand"
)

// randExpr builds a random well-formed expression for round-trip
// property testing.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Ident{Name: "sig_" + string(rune('A'+rng.Intn(8)))}
		case 1:
			return &Num{Text: "3", Value: 3}
		case 2:
			return &Num{Text: "2'b01", Value: 1, Width: 2}
		default:
			return &Call{Name: "$countones", Args: []Expr{
				&Ident{Name: "sig_" + string(rune('A'+rng.Intn(8)))}}}
		}
	}
	switch rng.Intn(7) {
	case 0:
		return &Unary{Op: pickOp(rng, "!", "~", "&", "|", "^"), X: randExpr(rng, depth-1)}
	case 1, 2:
		return &Binary{
			Op: pickOp(rng, "&&", "||", "==", "!=", "<", "<=", "+", "-", "&", "|", "^"),
			X:  randExpr(rng, depth-1), Y: randExpr(rng, depth-1)}
	case 3:
		return &Cond{C: randExpr(rng, depth-1), T: randExpr(rng, depth-1), E: randExpr(rng, depth-1)}
	case 4:
		return &Concat{Parts: []Expr{randExpr(rng, depth-1), randExpr(rng, depth-1)}}
	case 5:
		return &Index{X: &Ident{Name: "sig_A"}, Idx: &Num{Text: "1", Value: 1}}
	default:
		return &Select{X: &Ident{Name: "sig_B"},
			Hi: &Num{Text: "3", Value: 3}, Lo: &Num{Text: "1", Value: 1}}
	}
}

func pickOp(rng *rand.Rand, ops ...string) string { return ops[rng.Intn(len(ops))] }

func randSeq(rng *rand.Rand, depth int) Sequence {
	if depth <= 0 {
		return &SeqExpr{E: randExpr(rng, 1)}
	}
	switch rng.Intn(5) {
	case 0:
		d := 1 + rng.Intn(3)
		return &SeqDelay{L: randSeq(rng, depth-1),
			D: Delay{Lo: d, Hi: d}, R: randSeq(rng, depth-1)}
	case 1:
		lo := 1 + rng.Intn(2)
		return &SeqDelay{L: randSeq(rng, depth-1),
			D: Delay{Lo: lo, Hi: lo + rng.Intn(3)}, R: randSeq(rng, depth-1)}
	case 2:
		return &SeqRepeat{S: &SeqExpr{E: randExpr(rng, 1)}, Lo: 1, Hi: 1 + rng.Intn(2)}
	case 3:
		return &SeqBinary{Op: pickOp(rng, "and", "or", "intersect"),
			L: randSeq(rng, depth-1), R: randSeq(rng, depth-1)}
	default:
		return &SeqThroughout{E: randExpr(rng, 1), S: randSeq(rng, depth-1)}
	}
}

func randProp(rng *rand.Rand, depth int) Property {
	if depth <= 0 {
		return &PropSeq{S: &SeqExpr{E: randExpr(rng, 1)}}
	}
	switch rng.Intn(8) {
	case 0:
		return &PropNot{P: randProp(rng, depth-1)}
	case 1:
		return &PropBinary{Op: pickOp(rng, "and", "or", "implies"),
			L: &PropSeq{S: &SeqExpr{E: randExpr(rng, 1)}},
			R: randProp(rng, depth-1)}
	case 2, 3:
		return &PropImpl{S: randSeq(rng, 1), Overlap: rng.Intn(2) == 0,
			P: randProp(rng, depth-1)}
	case 4:
		return &PropEventually{P: randProp(rng, depth-1), Strong: true}
	case 5:
		return &PropUntil{L: &PropSeq{S: &SeqExpr{E: randExpr(rng, 1)}},
			R: randProp(rng, depth-1), Strong: rng.Intn(2) == 0}
	case 6:
		return &PropAlways{P: randProp(rng, depth-1)}
	default:
		return &PropSeq{S: randSeq(rng, depth)}
	}
}

// TestQuickPrinterRoundTrip: the printer/parser pair must reach a
// fixed point after one normalization — the parser canonicalizes
// surface forms the grammar cannot distinguish (property-and of plain
// boolean operands folds to sequence-and), so the property is
// idempotence from the first reparse onward. Trees whose printed form
// is rejected by the parser (structurally impossible antecedents,
// etc.) are skipped.
func TestQuickPrinterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProp(rng, 2+rng.Intn(2))
		first, err := ParseProperty(p.String())
		if err != nil {
			return true // not all random trees have valid surface syntax
		}
		canonical := first.String()
		second, err := ParseProperty(canonical)
		if err != nil {
			return false // canonical text must always reparse
		}
		return second.String() == canonical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAssertionRoundTrip does the same through the assertion
// wrapper including disable-iff.
func TestQuickAssertionRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := &Assertion{
			ClockEdge: "posedge",
			ClockName: "clk",
			Body:      randProp(rng, 2),
		}
		if rng.Intn(2) == 0 {
			a.DisableIff = &Ident{Name: "tb_reset"}
		}
		if rng.Intn(3) == 0 {
			a.Label = "asrt"
		}
		first, err := ParseAssertion(a.String())
		if err != nil {
			return true
		}
		canonical := first.String()
		second, err := ParseAssertion(canonical)
		if err != nil {
			return false
		}
		return second.String() == canonical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneIndependence: mutating a clone never changes the
// original's canonical form.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := &Assertion{ClockEdge: "posedge", ClockName: "clk", Body: randProp(rng, 2)}
		before := a.String()
		c := a.Clone()
		c.Body = &PropNot{P: c.Body}
		c.Label = "mutated"
		return a.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
