package sva

import (
	"strings"
	"testing"
)

// paperAssertions are assertions taken verbatim from the FVEval paper
// (Figures 2, 7, 8, 11, 13, 16); all must parse and validate.
var paperAssertions = []string{
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		(fifo_empty && rd_pop) !== 1'b1);`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		(fifo_full && wr_push) !== 1'b1);`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		(rd_pop && (fifo_out_data != rd_data)) !== 1'b1);`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		!fifo_empty |-> strong(##[0:$] rd_pop));`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		wr_push |-> strong(##[0:$] rd_pop));`,
	`assert property (@(posedge clk) disable iff (tb_reset)
		(!busy && |tb_req && (tb_gnt == 'd0)) !== 1'b1);`,
	`assert property (@(posedge clk) disable iff (tb_reset)
		(tb_req && !busy) |-> tb_gnt);`,
	`assert property (@(posedge clk) disable iff (tb_reset)
		|tb_req && !busy |=> ##[1:$] (|tb_gnt));`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		wr_push |-> ##[1:$] rd_pop);`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		!$onehot0({hold,busy,cont_gnt}) !== 1'b1);`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		!(busy && hold && cont_gnt));`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		!(busy && (hold || cont_gnt)) && !(hold && (busy || cont_gnt)) && !(cont_gnt && (busy || hold)));`,
	`assert property(@(posedge clk)
		((sig_G && sig_J) |-> ##2 ((^sig_G === 1'b1) && &sig_B)));`,
	`assert property (@(posedge clk)
		(sig_G && sig_J) |-> ##2 (^{sig_G} && (sig_B == '1)));`,
	`assert property(@(posedge clk)
		((sig_D || ^sig_H) && sig_F));`,
	`assert property (@(posedge clk)
		(sig_D || ($countones(sig_H) % 2 == 1)) |-> sig_F);`,
	`assert property(@(posedge clk)
		((sig_D || ($bits(sig_H) % 2 == 1)) && sig_F));`,
	`assert property(@(posedge clk)
		(sig_G !== 1'b1) |-> ##4 sig_J);`,
	`assert property(@(posedge clk)
		(!sig_G) |-> ##[4] sig_J);`,
	`assert property(@(posedge clk) ($rose(!sig_G) |=> ##[3] sig_J));`,
	`assert property(@(posedge clk)
		(sig_G !== 1'b1) |-> ##[1:4] sig_J);`,
	`assert property(@(posedge clk)
		(|sig_C || (sig_D !== sig_A)) |=> s_eventually(sig_F));`,
	`assert property(@(posedge clk)
		((sig_J < (sig_B == (sig_C ^ ~|sig_H))) == ((|sig_A === !sig_J) || sig_B)));`,
	`assert property (@(posedge clk) disable iff (tb_reset)
		(a && b) != 1'b1);`,
	`assert property (@(posedge clk) disable iff (!reset_)
		(state == 2'b10) |-> ##1 ((in_D == 'd0 && in_C == 'd0) || (next_state == 2'b11)));`,
	`assert property (@(posedge clk) disable iff (reset_)
		state == 2'b10 |-> (next_state == 2'b00 || next_state == 2'b01 || next_state == 2'b11));`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		rd_pop |-> (rd_data == fifo_out_data));`,
	`asrt: assert property (@(posedge clk)
		disable iff (tb_reset)
		(rd_pop && (rd_data !== fifo_out_data)) | (!rd_pop && (rd_data === fifo_out_data)));`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		rd_pop |-> $rose(fifo_rd_ptr) |=> rd_data == fifo_out_data);`,
	`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		!((rd_pop && rd_data !== fifo_out_data) && !fifo_empty));`,
	`assert property (@(posedge clk) disable iff (!reset_)
		tb_in_vld |-> ##6 tb_out_vld);`,
	`assert property (@(posedge clk) disable iff (tb_reset)
		$rose(data_in_vld) |=> ##[1:6] out_vld);`,
	`assert property (@(posedge clk) disable iff (tb_reset)
		$rose(fsm_out == 2'b00) |-> ##1 (in_A_reg != in_B_reg));`,
}

func TestPaperAssertionsParseAndValidate(t *testing.T) {
	for i, src := range paperAssertions {
		a, err := ParseAssertion(src)
		if err != nil {
			t.Errorf("case %d: parse error: %v\nsource: %s", i, err, src)
			continue
		}
		if err := Validate(a); err != nil {
			t.Errorf("case %d: validate error: %v\nsource: %s", i, err, src)
		}
	}
}

func TestHallucinatedOperatorsFailSyntax(t *testing.T) {
	bad := []string{
		// Llama's invalid "eventually" operator (paper Fig. 7).
		`asrt_wr_push_rd_pop: assert property (@(posedge clk) disable iff (tb_reset)
			wr_push |-> eventually(rd_pop));`,
		// Unknown system function.
		`assert property (@(posedge clk) a |-> $sometimes(b));`,
		// Unbalanced parenthesis.
		`assert property (@(posedge clk) disable iff (tb_reset)
			|tb_req && !busy |=> ##[1:$] (|tb_gnt)));`,
		// Bad delay range.
		`assert property (@(posedge clk) a |-> ##[3:1] b);`,
		// Bad repetition range.
		`assert property (@(posedge clk) a[*4:2] |-> b);`,
		// Missing clock.
		`assert property (a |-> b);`,
		// Unbounded antecedent.
		`assert property (@(posedge clk) a ##[1:$] b |-> c);`,
		// Empty body.
		`assert property (@(posedge clk));`,
		// Wrong arity.
		`assert property (@(posedge clk) $countones(a, b) == 1);`,
	}
	for i, src := range bad {
		if err := CheckSyntax(src); err == nil {
			t.Errorf("case %d: expected syntax failure\nsource: %s", i, src)
		}
	}
}

func TestRoundTripCanonical(t *testing.T) {
	// Printing then reparsing must reproduce the same canonical string.
	for i, src := range paperAssertions {
		a, err := ParseAssertion(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		printed := a.String()
		b, err := ParseAssertion(printed)
		if err != nil {
			t.Errorf("case %d: reparse of %q: %v", i, printed, err)
			continue
		}
		if b.String() != printed {
			t.Errorf("case %d: round trip not stable:\n first: %s\nsecond: %s",
				i, printed, b.String())
		}
	}
}

func TestAssertionFields(t *testing.T) {
	a, err := ParseAssertion(`my_label: assert property (@(negedge clkX) disable iff (rst) a |=> b);`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Label != "my_label" {
		t.Errorf("label: %q", a.Label)
	}
	if a.ClockEdge != "negedge" || a.ClockName != "clkX" {
		t.Errorf("clock: %s %s", a.ClockEdge, a.ClockName)
	}
	if a.DisableIff == nil || a.DisableIff.String() != "rst" {
		t.Errorf("disable iff: %v", a.DisableIff)
	}
	impl, ok := a.Body.(*PropImpl)
	if !ok || impl.Overlap {
		t.Fatalf("body: %T %v", a.Body, a.Body)
	}
}

func TestSequenceShapes(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical body print
	}{
		{`a ##1 b ##2 c`, "a ##1 b ##2 c"},
		{`##2 a`, "##2 a"},
		{`a ##[1:3] b`, "a ##[1:3] b"},
		{`a ##[0:$] b |-> c`, ""}, // validated elsewhere (unbounded antecedent)
		{`a[*3]`, "a[*3]"},
		{`a[*1:2] |-> b`, "a[*1:2] |-> b"},
		{`x throughout (a ##1 b)`, "x throughout (a ##1 b)"},
		{`(a ##1 b) intersect (c ##1 d)`, "(a ##1 b) intersect (c ##1 d)"},
		{`first_match(a ##[1:2] b) |-> c`, "first_match(a ##[1:2] b) |-> c"},
		{`strong(##[0:$] e)`, "strong(##[0:$] e)"},
		{`weak(a ##1 b)`, "weak(a ##1 b)"},
	}
	for _, c := range cases {
		p, err := ParseProperty(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if c.want != "" && p.String() != c.want {
			t.Errorf("%s: printed %q want %q", c.src, p.String(), c.want)
		}
	}
}

func TestPropertyOperators(t *testing.T) {
	cases := []string{
		"not (a |-> b)",
		"(a |-> b) and (c |-> d)",
		"(a |-> b) or (c |-> d)",
		"a until b",
		"a s_until b",
		"a until_with b",
		"always (a |-> b)",
		"s_eventually a",
		"nexttime a",
		"s_nexttime (a && b)",
		"if (a) (b |-> c) else (d |-> e)",
		"(a |-> b) implies (c |-> d)",
	}
	for _, src := range cases {
		p, err := ParseProperty(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		// reparse canonical form
		if _, err := ParseProperty(p.String()); err != nil {
			t.Errorf("%s: canonical %q fails reparse: %v", src, p.String(), err)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a + b * c", "a + (b * c)"},
		{"a * b + c", "(a * b) + c"},
		{"a == b && c", "(a == b) && c"},
		{"a && b || c", "(a && b) || c"},
		{"a | b ^ c & d", "a | (b ^ (c & d))"},
		{"!a && b", "!a && b"},
		{"a ? b : c ? d : e", "a ? b : (c ? d : e)"},
		{"a << 2 + 1", "a << (2 + 1)"},
		{"^sig_G === 1'b1", "(^sig_G) === 1'b1"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		got, err := ParseExpr(c.want)
		if err != nil {
			t.Fatalf("bad want %q: %v", c.want, err)
		}
		if e.String() != got.String() {
			t.Errorf("%s: parsed as %q, want %q (printed %q)",
				c.src, e.String(), c.want, got.String())
		}
	}
}

func TestExprForms(t *testing.T) {
	cases := []string{
		"{a, b, c}",
		"{3{ab}}",
		"sig[3]",
		"sig[7:4]",
		"$countones(sig) % 2 == 1",
		"$past(x, 2)",
		"(a != b) < 'd0",
		"~|sig_H",
		"&sig_B",
		"fsm_out == 2'b10",
		"in_C <= 'd1",
	}
	for _, src := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		again, err := ParseExpr(e.String())
		if err != nil {
			t.Errorf("%s: canonical %q fails reparse: %v", src, e.String(), err)
			continue
		}
		if again.String() != e.String() {
			t.Errorf("%s: unstable print: %q vs %q", src, e.String(), again.String())
		}
	}
}

func TestSignals(t *testing.T) {
	a, err := ParseAssertion(`assert property (@(posedge clk) disable iff (tb_reset)
		wr_push |-> strong(##[0:$] rd_pop));`)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(a.Signals(), ",")
	want := "rd_pop,tb_reset,wr_push"
	if got != want {
		t.Errorf("signals: %q want %q", got, want)
	}
}

func TestClone(t *testing.T) {
	a, err := ParseAssertion(paperAssertions[3])
	if err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	if c.String() != a.String() {
		t.Fatalf("clone print mismatch")
	}
	// mutating the clone must not affect the original
	c.Label = "changed"
	c.Body = &PropNot{P: c.Body}
	if c.String() == a.String() {
		t.Fatalf("clone aliases original")
	}
}

func TestTrailingInputRejected(t *testing.T) {
	if _, err := ParseAssertion(`assert property (@(posedge clk) a); extra`); err == nil {
		t.Fatalf("expected trailing input error")
	}
}
