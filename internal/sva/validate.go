package sva

import (
	"fmt"
	"strings"
)

// KnownSystemFunctions is the set of system functions the formal tool
// accepts in assertion context, with their permitted argument counts.
var KnownSystemFunctions = map[string][2]int{
	"$countones": {1, 1},
	"$onehot":    {1, 1},
	"$onehot0":   {1, 1},
	"$isunknown": {1, 1},
	"$bits":      {1, 1},
	"$clog2":     {1, 1},
	"$past":      {1, 2},
	"$rose":      {1, 1},
	"$fell":      {1, 1},
	"$stable":    {1, 1},
	"$changed":   {1, 1},
}

// SyntaxError describes why an assertion failed the syntax check.
type SyntaxError struct {
	Reason string
}

func (e *SyntaxError) Error() string { return "sva: syntax: " + e.Reason }

// Validate performs the semantic checks that the commercial tool's
// compile step performs: known operators/system functions only, sane
// delay and repetition bounds. It mirrors the paper's Syntax metric:
// a response passes Syntax iff ParseAssertion succeeds and Validate
// returns nil.
func Validate(a *Assertion) error {
	if a.Body == nil {
		return &SyntaxError{"empty property"}
	}
	if a.DisableIff != nil {
		if err := validateExpr(a.DisableIff); err != nil {
			return err
		}
	}
	return validateProp(a.Body)
}

func validateProp(p Property) error {
	switch v := p.(type) {
	case *PropSeq:
		return validateSeq(v.S)
	case *PropNot:
		return validateProp(v.P)
	case *PropBinary:
		if err := validateProp(v.L); err != nil {
			return err
		}
		return validateProp(v.R)
	case *PropImpl:
		if err := validateSeq(v.S); err != nil {
			return err
		}
		if hasUnboundedTail(v.S) {
			return &SyntaxError{"unbounded sequence not allowed as implication antecedent"}
		}
		return validateProp(v.P)
	case *PropIfElse:
		if err := validateExpr(v.C); err != nil {
			return err
		}
		if err := validateProp(v.Then); err != nil {
			return err
		}
		if v.Else != nil {
			return validateProp(v.Else)
		}
		return nil
	case *PropAlways:
		return validateProp(v.P)
	case *PropEventually:
		if !v.Strong {
			return &SyntaxError{"unbounded weak eventually is not supported; use s_eventually"}
		}
		return validateProp(v.P)
	case *PropNexttime:
		return validateProp(v.P)
	case *PropUntil:
		if err := validateProp(v.L); err != nil {
			return err
		}
		return validateProp(v.R)
	}
	return &SyntaxError{fmt.Sprintf("unknown property node %T", p)}
}

func validateSeq(s Sequence) error {
	switch v := s.(type) {
	case *SeqExpr:
		return validateExpr(v.E)
	case *SeqDelay:
		if v.D.Lo < 0 || (!v.D.Inf && v.D.Hi < v.D.Lo) {
			return &SyntaxError{fmt.Sprintf("invalid delay range %s", v.D)}
		}
		if v.L != nil {
			if err := validateSeq(v.L); err != nil {
				return err
			}
		}
		return validateSeq(v.R)
	case *SeqRepeat:
		if v.Lo < 0 || (!v.Inf && v.Hi < v.Lo) {
			return &SyntaxError{fmt.Sprintf("invalid repetition range [*%d:%d]", v.Lo, v.Hi)}
		}
		return validateSeq(v.S)
	case *SeqBinary:
		if err := validateSeq(v.L); err != nil {
			return err
		}
		return validateSeq(v.R)
	case *SeqThroughout:
		if err := validateExpr(v.E); err != nil {
			return err
		}
		return validateSeq(v.S)
	case *SeqFirstMatch:
		return validateSeq(v.S)
	}
	return &SyntaxError{fmt.Sprintf("unknown sequence node %T", s)}
}

func validateExpr(e Expr) error {
	switch v := e.(type) {
	case *Ident, *Num:
		return nil
	case *Unary:
		return validateExpr(v.X)
	case *Binary:
		if err := validateExpr(v.X); err != nil {
			return err
		}
		return validateExpr(v.Y)
	case *Cond:
		if err := validateExpr(v.C); err != nil {
			return err
		}
		if err := validateExpr(v.T); err != nil {
			return err
		}
		return validateExpr(v.E)
	case *Call:
		if !strings.HasPrefix(v.Name, "$") {
			return &SyntaxError{fmt.Sprintf("%q is not a valid SVA operator or system function", v.Name)}
		}
		bounds, ok := KnownSystemFunctions[v.Name]
		if !ok {
			return &SyntaxError{fmt.Sprintf("unknown system function %q", v.Name)}
		}
		if len(v.Args) < bounds[0] || len(v.Args) > bounds[1] {
			return &SyntaxError{fmt.Sprintf("%s expects %d..%d arguments, got %d",
				v.Name, bounds[0], bounds[1], len(v.Args))}
		}
		for _, a := range v.Args {
			if err := validateExpr(a); err != nil {
				return err
			}
		}
		return nil
	case *Concat:
		for _, p := range v.Parts {
			if err := validateExpr(p); err != nil {
				return err
			}
		}
		return nil
	case *Repl:
		if err := validateExpr(v.Count); err != nil {
			return err
		}
		return validateExpr(v.Value)
	case *Index:
		if err := validateExpr(v.X); err != nil {
			return err
		}
		return validateExpr(v.Idx)
	case *Select:
		if err := validateExpr(v.X); err != nil {
			return err
		}
		if err := validateExpr(v.Hi); err != nil {
			return err
		}
		return validateExpr(v.Lo)
	case *WidthCast:
		return validateExpr(v.X)
	}
	return &SyntaxError{fmt.Sprintf("unknown expression node %T", e)}
}

// hasUnboundedTail reports whether a sequence can match arbitrarily far
// in the future (contains ##[a:$] or [*a:$]).
func hasUnboundedTail(s Sequence) bool {
	switch v := s.(type) {
	case *SeqExpr:
		return false
	case *SeqDelay:
		if v.D.Inf {
			return true
		}
		if v.L != nil && hasUnboundedTail(v.L) {
			return true
		}
		return hasUnboundedTail(v.R)
	case *SeqRepeat:
		return v.Inf || hasUnboundedTail(v.S)
	case *SeqBinary:
		return hasUnboundedTail(v.L) || hasUnboundedTail(v.R)
	case *SeqThroughout:
		return hasUnboundedTail(v.S)
	case *SeqFirstMatch:
		return hasUnboundedTail(v.S)
	}
	return false
}

// CheckSyntax parses and validates assertion source text, returning nil
// when the text passes the paper's Syntax metric.
func CheckSyntax(src string) error {
	a, err := ParseAssertion(src)
	if err != nil {
		return err
	}
	return Validate(a)
}

// WalkExprs calls f on every expression node reachable from the
// property, in evaluation order.
func WalkExprs(p Property, f func(Expr)) {
	walkPropExprs(p, f)
}

func walkPropExprs(p Property, f func(Expr)) {
	switch v := p.(type) {
	case *PropSeq:
		walkSeqExprs(v.S, f)
	case *PropNot:
		walkPropExprs(v.P, f)
	case *PropBinary:
		walkPropExprs(v.L, f)
		walkPropExprs(v.R, f)
	case *PropImpl:
		walkSeqExprs(v.S, f)
		walkPropExprs(v.P, f)
	case *PropIfElse:
		walkExprTree(v.C, f)
		walkPropExprs(v.Then, f)
		if v.Else != nil {
			walkPropExprs(v.Else, f)
		}
	case *PropAlways:
		walkPropExprs(v.P, f)
	case *PropEventually:
		walkPropExprs(v.P, f)
	case *PropNexttime:
		walkPropExprs(v.P, f)
	case *PropUntil:
		walkPropExprs(v.L, f)
		walkPropExprs(v.R, f)
	}
}

func walkSeqExprs(s Sequence, f func(Expr)) {
	switch v := s.(type) {
	case *SeqExpr:
		walkExprTree(v.E, f)
	case *SeqDelay:
		if v.L != nil {
			walkSeqExprs(v.L, f)
		}
		walkSeqExprs(v.R, f)
	case *SeqRepeat:
		walkSeqExprs(v.S, f)
	case *SeqBinary:
		walkSeqExprs(v.L, f)
		walkSeqExprs(v.R, f)
	case *SeqThroughout:
		walkExprTree(v.E, f)
		walkSeqExprs(v.S, f)
	case *SeqFirstMatch:
		walkSeqExprs(v.S, f)
	}
}

func walkExprTree(e Expr, f func(Expr)) {
	f(e)
	switch v := e.(type) {
	case *Unary:
		walkExprTree(v.X, f)
	case *Binary:
		walkExprTree(v.X, f)
		walkExprTree(v.Y, f)
	case *Cond:
		walkExprTree(v.C, f)
		walkExprTree(v.T, f)
		walkExprTree(v.E, f)
	case *Call:
		for _, a := range v.Args {
			walkExprTree(a, f)
		}
	case *Concat:
		for _, p := range v.Parts {
			walkExprTree(p, f)
		}
	case *Repl:
		walkExprTree(v.Count, f)
		walkExprTree(v.Value, f)
	case *Index:
		walkExprTree(v.X, f)
		walkExprTree(v.Idx, f)
	case *Select:
		walkExprTree(v.X, f)
		walkExprTree(v.Hi, f)
		walkExprTree(v.Lo, f)
	case *WidthCast:
		walkExprTree(v.X, f)
	}
}

// Signals returns the sorted set of identifier names referenced by the
// assertion body (and disable-iff condition).
func (a *Assertion) Signals() []string {
	set := map[string]bool{}
	collect := func(e Expr) {
		if id, ok := e.(*Ident); ok {
			set[id.Name] = true
		}
	}
	if a.DisableIff != nil {
		walkExprTree(a.DisableIff, collect)
	}
	WalkExprs(a.Body, collect)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch v := e.(type) {
	case *Ident:
		c := *v
		return &c
	case *Num:
		c := *v
		return &c
	case *Unary:
		return &Unary{Op: v.Op, X: CloneExpr(v.X)}
	case *Binary:
		return &Binary{Op: v.Op, X: CloneExpr(v.X), Y: CloneExpr(v.Y)}
	case *Cond:
		return &Cond{C: CloneExpr(v.C), T: CloneExpr(v.T), E: CloneExpr(v.E)}
	case *Call:
		c := &Call{Name: v.Name}
		for _, a := range v.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *Concat:
		c := &Concat{}
		for _, p := range v.Parts {
			c.Parts = append(c.Parts, CloneExpr(p))
		}
		return c
	case *Repl:
		return &Repl{Count: CloneExpr(v.Count), Value: CloneExpr(v.Value)}
	case *Index:
		return &Index{X: CloneExpr(v.X), Idx: CloneExpr(v.Idx)}
	case *Select:
		return &Select{X: CloneExpr(v.X), Hi: CloneExpr(v.Hi), Lo: CloneExpr(v.Lo)}
	case *WidthCast:
		return &WidthCast{X: CloneExpr(v.X), W: v.W}
	}
	panic(fmt.Sprintf("sva: CloneExpr: unknown node %T", e))
}

// CloneSeq deep-copies a sequence.
func CloneSeq(s Sequence) Sequence {
	switch v := s.(type) {
	case *SeqExpr:
		return &SeqExpr{E: CloneExpr(v.E)}
	case *SeqDelay:
		c := &SeqDelay{D: v.D, R: CloneSeq(v.R)}
		if v.L != nil {
			c.L = CloneSeq(v.L)
		}
		return c
	case *SeqRepeat:
		return &SeqRepeat{S: CloneSeq(v.S), Lo: v.Lo, Hi: v.Hi, Inf: v.Inf}
	case *SeqBinary:
		return &SeqBinary{Op: v.Op, L: CloneSeq(v.L), R: CloneSeq(v.R)}
	case *SeqThroughout:
		return &SeqThroughout{E: CloneExpr(v.E), S: CloneSeq(v.S)}
	case *SeqFirstMatch:
		return &SeqFirstMatch{S: CloneSeq(v.S)}
	}
	panic(fmt.Sprintf("sva: CloneSeq: unknown node %T", s))
}

// CloneProp deep-copies a property.
func CloneProp(p Property) Property {
	switch v := p.(type) {
	case *PropSeq:
		return &PropSeq{S: CloneSeq(v.S), Strong: v.Strong, Explicit: v.Explicit}
	case *PropNot:
		return &PropNot{P: CloneProp(v.P)}
	case *PropBinary:
		return &PropBinary{Op: v.Op, L: CloneProp(v.L), R: CloneProp(v.R)}
	case *PropImpl:
		return &PropImpl{S: CloneSeq(v.S), Overlap: v.Overlap, P: CloneProp(v.P)}
	case *PropIfElse:
		c := &PropIfElse{C: CloneExpr(v.C), Then: CloneProp(v.Then)}
		if v.Else != nil {
			c.Else = CloneProp(v.Else)
		}
		return c
	case *PropAlways:
		return &PropAlways{P: CloneProp(v.P), Strong: v.Strong}
	case *PropEventually:
		return &PropEventually{P: CloneProp(v.P), Strong: v.Strong}
	case *PropNexttime:
		return &PropNexttime{P: CloneProp(v.P), Strong: v.Strong}
	case *PropUntil:
		return &PropUntil{L: CloneProp(v.L), R: CloneProp(v.R), Strong: v.Strong, With: v.With}
	}
	panic(fmt.Sprintf("sva: CloneProp: unknown node %T", p))
}

// Clone deep-copies an assertion.
func (a *Assertion) Clone() *Assertion {
	c := &Assertion{
		Label:     a.Label,
		Kind:      a.Kind,
		ClockEdge: a.ClockEdge,
		ClockName: a.ClockName,
	}
	if a.DisableIff != nil {
		c.DisableIff = CloneExpr(a.DisableIff)
	}
	if a.Body != nil {
		c.Body = CloneProp(a.Body)
	}
	return c
}
