package sva

import (
	"fmt"

	"fveval/internal/sv"
)

// ParseAssertion parses a complete concurrent assertion statement:
//
//	[label:] assert property (@(posedge clk) [disable iff (e)] prop);
func ParseAssertion(src string) (*Assertion, error) {
	toks, err := sv.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	a, err := p.parseAssertion()
	if err != nil {
		return nil, err
	}
	if !p.at(sv.EOF, "") {
		return nil, p.errf("trailing input after assertion")
	}
	return a, nil
}

// ParseProperty parses a bare property expression (no assert wrapper).
func ParseProperty(src string) (Property, error) {
	toks, err := sv.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prop, err := p.parseProperty()
	if err != nil {
		return nil, err
	}
	if !p.at(sv.EOF, "") {
		return nil, p.errf("trailing input after property")
	}
	return prop, nil
}

// ParseExpr parses a bare expression (shared with the RTL parser).
func ParseExpr(src string) (Expr, error) {
	toks, err := sv.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(sv.EOF, "") {
		return nil, p.errf("trailing input after expression")
	}
	return e, nil
}

// ParseExprTokens parses an expression from a token stream starting at
// index i; it returns the expression and the index of the first
// unconsumed token. The RTL parser uses this to share the expression
// grammar.
func ParseExprTokens(toks []sv.Token, i int) (Expr, int, error) {
	p := &parser{toks: toks, i: i}
	e, err := p.parseExpr()
	if err != nil {
		return nil, i, err
	}
	return e, p.i, nil
}

// ParseLValueTokens parses an assignment target (identifier with
// optional bit/part selects) from a token stream. Restricting the
// grammar here resolves the classic `x <= y` ambiguity between
// nonblocking assignment and less-equal comparison in statement
// context.
func ParseLValueTokens(toks []sv.Token, i int) (Expr, int, error) {
	p := &parser{toks: toks, i: i}
	id, err := p.expect(sv.Ident, "")
	if err != nil {
		return nil, i, err
	}
	var e Expr = &Ident{Name: id.Text}
	for p.at(sv.Punct, "[") {
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, i, err
		}
		if p.accept(sv.Punct, ":") {
			lo, err := p.parseExpr()
			if err != nil {
				return nil, i, err
			}
			if _, err := p.expect(sv.Punct, "]"); err != nil {
				return nil, i, err
			}
			e = &Select{X: e, Hi: idx, Lo: lo}
			continue
		}
		if _, err := p.expect(sv.Punct, "]"); err != nil {
			return nil, i, err
		}
		e = &Index{X: e, Idx: idx}
	}
	return e, p.i, nil
}

type parser struct {
	toks []sv.Token
	i    int
}

func (p *parser) peek() sv.Token { return p.toks[p.i] }

func (p *parser) next() sv.Token {
	t := p.toks[p.i]
	if t.Kind != sv.EOF {
		p.i++
	}
	return t
}

func (p *parser) at(k sv.Kind, text string) bool {
	t := p.peek()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *parser) accept(k sv.Kind, text string) bool {
	if p.at(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k sv.Kind, text string) (sv.Token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return sv.Token{}, p.errf("expected %q, found %v", text, p.peek())
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%v: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseAssertion() (*Assertion, error) {
	a := &Assertion{}
	// optional label
	if p.at(sv.Ident, "") && p.toks[p.i+1].Kind == sv.Punct && p.toks[p.i+1].Text == ":" {
		a.Label = p.next().Text
		p.next() // :
	}
	switch {
	case p.accept(sv.Keyword, "assert"):
		a.Kind = "assert"
	case p.accept(sv.Keyword, "assume"):
		a.Kind = "assume"
	case p.accept(sv.Keyword, "cover"):
		a.Kind = "cover"
	default:
		return nil, p.errf("expected assert, assume, or cover")
	}
	if _, err := p.expect(sv.Keyword, "property"); err != nil {
		return nil, err
	}
	if _, err := p.expect(sv.Punct, "("); err != nil {
		return nil, err
	}
	// clocking event
	if _, err := p.expect(sv.Punct, "@"); err != nil {
		return nil, err
	}
	if _, err := p.expect(sv.Punct, "("); err != nil {
		return nil, err
	}
	switch {
	case p.accept(sv.Keyword, "posedge"):
		a.ClockEdge = "posedge"
	case p.accept(sv.Keyword, "negedge"):
		a.ClockEdge = "negedge"
	default:
		return nil, p.errf("expected posedge or negedge")
	}
	clk, err := p.expect(sv.Ident, "")
	if err != nil {
		return nil, err
	}
	a.ClockName = clk.Text
	if _, err := p.expect(sv.Punct, ")"); err != nil {
		return nil, err
	}
	// optional disable iff
	if p.accept(sv.Keyword, "disable") {
		if _, err := p.expect(sv.Keyword, "iff"); err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, "("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
		a.DisableIff = e
	}
	body, err := p.parseProperty()
	if err != nil {
		return nil, err
	}
	a.Body = body
	if _, err := p.expect(sv.Punct, ")"); err != nil {
		return nil, err
	}
	// optional trailing semicolon
	p.accept(sv.Punct, ";")
	return a, nil
}

// ---- property grammar -------------------------------------------------
//
// Precedence (weakest binds first):
//
//	implies/iff < |->,|=> < until family < or < and < prefix ops < sequence

func (p *parser) parseProperty() (Property, error) {
	return p.parsePropImplies()
}

func (p *parser) parsePropImplies() (Property, error) {
	l, err := p.parsePropImpl()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(sv.Keyword, "implies"):
			op = "implies"
		case p.accept(sv.Keyword, "iff"):
			op = "iff"
		default:
			return l, nil
		}
		r, err := p.parsePropImpl()
		if err != nil {
			return nil, err
		}
		l = &PropBinary{Op: op, L: l, R: r}
	}
}

func (p *parser) parsePropImpl() (Property, error) {
	l, err := p.parsePropUntil()
	if err != nil {
		return nil, err
	}
	overlap := false
	switch {
	case p.accept(sv.Punct, "|->"):
		overlap = true
	case p.accept(sv.Punct, "|=>"):
	default:
		return l, nil
	}
	seq, err := propToSequence(l)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	r, err := p.parsePropImpl() // right associative
	if err != nil {
		return nil, err
	}
	return &PropImpl{S: seq, Overlap: overlap, P: r}, nil
}

// propToSequence converts a property parsed on the left of an
// implication back into the sequence it must syntactically be.
func propToSequence(prop Property) (Sequence, error) {
	ps, ok := prop.(*PropSeq)
	if !ok || ps.Explicit {
		return nil, fmt.Errorf("left-hand side of |->/|=> must be a sequence, found property %s", prop.String())
	}
	return ps.S, nil
}

func (p *parser) parsePropUntil() (Property, error) {
	l, err := p.parsePropOr()
	if err != nil {
		return nil, err
	}
	var strong, with bool
	switch {
	case p.accept(sv.Keyword, "until"):
	case p.accept(sv.Keyword, "s_until"):
		strong = true
	case p.accept(sv.Keyword, "until_with"):
		with = true
	case p.accept(sv.Keyword, "s_until_with"):
		strong, with = true, true
	default:
		return l, nil
	}
	r, err := p.parsePropUntil() // right associative
	if err != nil {
		return nil, err
	}
	return &PropUntil{L: l, R: r, Strong: strong, With: with}, nil
}

func (p *parser) parsePropOr() (Property, error) {
	l, err := p.parsePropAnd()
	if err != nil {
		return nil, err
	}
	for p.at(sv.Keyword, "or") {
		p.next()
		r, err := p.parsePropAnd()
		if err != nil {
			return nil, err
		}
		// If both sides are plain sequences, this is a sequence "or".
		if ls, ok := l.(*PropSeq); ok && !ls.Explicit {
			if rs, ok := r.(*PropSeq); ok && !rs.Explicit {
				l = &PropSeq{S: &SeqBinary{Op: "or", L: ls.S, R: rs.S}}
				continue
			}
		}
		l = &PropBinary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePropAnd() (Property, error) {
	l, err := p.parsePropUnary()
	if err != nil {
		return nil, err
	}
	for p.at(sv.Keyword, "and") {
		p.next()
		r, err := p.parsePropUnary()
		if err != nil {
			return nil, err
		}
		if ls, ok := l.(*PropSeq); ok && !ls.Explicit {
			if rs, ok := r.(*PropSeq); ok && !rs.Explicit {
				l = &PropSeq{S: &SeqBinary{Op: "and", L: ls.S, R: rs.S}}
				continue
			}
		}
		l = &PropBinary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePropUnary() (Property, error) {
	switch {
	case p.accept(sv.Keyword, "not"):
		inner, err := p.parsePropUnary()
		if err != nil {
			return nil, err
		}
		return &PropNot{P: inner}, nil
	case p.accept(sv.Keyword, "always"):
		inner, err := p.parsePropUnary()
		if err != nil {
			return nil, err
		}
		return &PropAlways{P: inner}, nil
	case p.accept(sv.Keyword, "s_always"):
		inner, err := p.parsePropUnary()
		if err != nil {
			return nil, err
		}
		return &PropAlways{P: inner, Strong: true}, nil
	case p.accept(sv.Keyword, "s_eventually"):
		inner, err := p.parsePropUnary()
		if err != nil {
			return nil, err
		}
		return &PropEventually{P: inner, Strong: true}, nil
	case p.accept(sv.Keyword, "nexttime"):
		inner, err := p.parsePropUnary()
		if err != nil {
			return nil, err
		}
		return &PropNexttime{P: inner}, nil
	case p.accept(sv.Keyword, "s_nexttime"):
		inner, err := p.parsePropUnary()
		if err != nil {
			return nil, err
		}
		return &PropNexttime{P: inner, Strong: true}, nil
	case p.at(sv.Keyword, "strong") || p.at(sv.Keyword, "weak"):
		strong := p.next().Text == "strong"
		if _, err := p.expect(sv.Punct, "("); err != nil {
			return nil, err
		}
		s, err := p.parseSequence()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
		return &PropSeq{S: s, Strong: strong, Explicit: true}, nil
	case p.at(sv.Keyword, "if"):
		p.next()
		if _, err := p.expect(sv.Punct, "("); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parsePropUnary()
		if err != nil {
			return nil, err
		}
		var els Property
		if p.accept(sv.Keyword, "else") {
			els, err = p.parsePropUnary()
			if err != nil {
				return nil, err
			}
		}
		return &PropIfElse{C: c, Then: then, Else: els}, nil
	}
	// Otherwise the operand is a sequence (which covers parenthesized
	// properties through the backtracking logic in seqPrimary).
	s, err := p.parseSequence()
	if err != nil {
		return nil, err
	}
	// A parenthesized property that isn't a sequence surfaces here as a
	// special marker from seqPrimary.
	if w, ok := s.(*seqWrappedProp); ok {
		return w.p, nil
	}
	return &PropSeq{S: s}, nil
}

// seqWrappedProp lets "(property)" flow through the sequence grammar
// when it is not a valid sequence. It never escapes the parser.
type seqWrappedProp struct{ p Property }

func (*seqWrappedProp) seqNode()         {}
func (w *seqWrappedProp) String() string { return "(" + w.p.String() + ")" }

// ---- sequence grammar ---------------------------------------------------

func (p *parser) parseSequence() (Sequence, error) {
	return p.parseSeqOr()
}

func (p *parser) parseSeqOr() (Sequence, error) {
	l, err := p.parseSeqAnd()
	if err != nil {
		return nil, err
	}
	for p.at(sv.Keyword, "or") {
		// In property context "or" is handled above; in pure sequence
		// context (inside parens or implication antecedent) it means
		// sequence disjunction.
		p.next()
		r, err := p.parseSeqAnd()
		if err != nil {
			return nil, err
		}
		l = combineSeqOrProp("or", l, r)
	}
	return l, nil
}

func (p *parser) parseSeqAnd() (Sequence, error) {
	l, err := p.parseSeqIntersect()
	if err != nil {
		return nil, err
	}
	for p.at(sv.Keyword, "and") {
		p.next()
		r, err := p.parseSeqIntersect()
		if err != nil {
			return nil, err
		}
		l = combineSeqOrProp("and", l, r)
	}
	return l, nil
}

// combineSeqOrProp joins two operands of a sequence-level and/or. When
// either side is really a parenthesized property, the combination is a
// property binary instead, carried through the sequence grammar in a
// wrapper until parsePropUnary unwraps it.
func combineSeqOrProp(op string, l, r Sequence) Sequence {
	_, lw := l.(*seqWrappedProp)
	_, rw := r.(*seqWrappedProp)
	if !lw && !rw {
		return &SeqBinary{Op: op, L: l, R: r}
	}
	return &seqWrappedProp{p: &PropBinary{Op: op, L: seqAsProp(l), R: seqAsProp(r)}}
}

func seqAsProp(s Sequence) Property {
	if w, ok := s.(*seqWrappedProp); ok {
		return w.p
	}
	return &PropSeq{S: s}
}

func (p *parser) parseSeqIntersect() (Sequence, error) {
	l, err := p.parseSeqThroughout()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(sv.Keyword, "intersect"):
			op = "intersect"
		case p.accept(sv.Keyword, "within"):
			op = "within"
		default:
			return l, nil
		}
		r, err := p.parseSeqThroughout()
		if err != nil {
			return nil, err
		}
		l = &SeqBinary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseSeqThroughout() (Sequence, error) {
	l, err := p.parseSeqDelay()
	if err != nil {
		return nil, err
	}
	if p.accept(sv.Keyword, "throughout") {
		se, ok := l.(*SeqExpr)
		if !ok {
			return nil, p.errf("left operand of throughout must be an expression")
		}
		r, err := p.parseSeqThroughout()
		if err != nil {
			return nil, err
		}
		return &SeqThroughout{E: se.E, S: r}, nil
	}
	return l, nil
}

func (p *parser) parseSeqDelay() (Sequence, error) {
	var left Sequence
	if p.at(sv.Punct, "##") {
		d, err := p.parseDelay()
		if err != nil {
			return nil, err
		}
		r, err := p.parseSeqDelayOperand()
		if err != nil {
			return nil, err
		}
		left = &SeqDelay{L: nil, D: d, R: r}
	} else {
		var err error
		left, err = p.parseSeqPrimary()
		if err != nil {
			return nil, err
		}
	}
	for p.at(sv.Punct, "##") {
		d, err := p.parseDelay()
		if err != nil {
			return nil, err
		}
		r, err := p.parseSeqDelayOperand()
		if err != nil {
			return nil, err
		}
		left = &SeqDelay{L: left, D: d, R: r}
	}
	return left, nil
}

// parseSeqDelayOperand parses the sequence following a cycle delay; a
// further leading delay (##1 ##1 b) nests as a sub-sequence, which is
// equivalent under concatenation associativity.
func (p *parser) parseSeqDelayOperand() (Sequence, error) {
	if p.at(sv.Punct, "##") {
		return p.parseSeqDelay()
	}
	return p.parseSeqPrimary()
}

func (p *parser) parseDelay() (Delay, error) {
	if _, err := p.expect(sv.Punct, "##"); err != nil {
		return Delay{}, err
	}
	if p.accept(sv.Punct, "[") {
		lo, err := p.parseInt()
		if err != nil {
			return Delay{}, err
		}
		// Lenient single-value bracket form ##[n], accepted by
		// commercial tools as ##[n:n].
		if p.accept(sv.Punct, "]") {
			return Delay{Lo: lo, Hi: lo}, nil
		}
		if _, err := p.expect(sv.Punct, ":"); err != nil {
			return Delay{}, err
		}
		if p.accept(sv.Punct, "$") {
			if _, err := p.expect(sv.Punct, "]"); err != nil {
				return Delay{}, err
			}
			return Delay{Lo: lo, Inf: true}, nil
		}
		hi, err := p.parseInt()
		if err != nil {
			return Delay{}, err
		}
		if _, err := p.expect(sv.Punct, "]"); err != nil {
			return Delay{}, err
		}
		return Delay{Lo: lo, Hi: hi}, nil
	}
	n, err := p.parseInt()
	if err != nil {
		return Delay{}, err
	}
	return Delay{Lo: n, Hi: n}, nil
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(sv.Number, "")
	if err != nil {
		return 0, err
	}
	lit, err := sv.ParseLiteral(t.Text)
	if err != nil {
		return 0, fmt.Errorf("%v: %v", t.Pos, err)
	}
	return int(lit.Value), nil
}

func (p *parser) parseSeqPrimary() (Sequence, error) {
	var s Sequence
	switch {
	case p.at(sv.Keyword, "first_match"):
		p.next()
		if _, err := p.expect(sv.Punct, "("); err != nil {
			return nil, err
		}
		inner, err := p.parseSequence()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
		s = &SeqFirstMatch{S: inner}
	case p.at(sv.Punct, "("):
		// Ambiguous: (expr), (sequence), or (property). Try the
		// expression grammar first (most common), then the sequence
		// grammar, then a full property.
		save := p.i
		e, err := p.parseExpr()
		if err == nil && !p.seqContinues() {
			s = &SeqExpr{E: e}
			break
		}
		p.i = save
		p.next() // (
		seq, err := p.parseSequence()
		if err == nil && p.at(sv.Punct, ")") {
			p.next()
			s = seq
			break
		}
		p.i = save
		p.next() // (
		prop, perr := p.parseProperty()
		if perr != nil {
			if err != nil {
				return nil, err
			}
			return nil, perr
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
		if ps, ok := prop.(*PropSeq); ok && !ps.Explicit {
			s = ps.S
		} else {
			s = &seqWrappedProp{p: prop}
		}
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s = &SeqExpr{E: e}
	}
	// repetition postfix
	for p.at(sv.Punct, "[*") {
		p.next()
		if p.accept(sv.Punct, "]") {
			s = &SeqRepeat{S: s, Lo: 0, Inf: true}
			continue
		}
		lo, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		rep := &SeqRepeat{S: s, Lo: lo, Hi: lo}
		if p.accept(sv.Punct, ":") {
			if p.accept(sv.Punct, "$") {
				rep.Inf = true
			} else {
				hi, err := p.parseInt()
				if err != nil {
					return nil, err
				}
				rep.Hi = hi
			}
		}
		if _, err := p.expect(sv.Punct, "]"); err != nil {
			return nil, err
		}
		s = rep
	}
	return s, nil
}

// seqContinues reports whether the upcoming token continues an
// expression-level parse context (i.e. the parenthesized form we just
// read was genuinely an expression).
func (p *parser) seqContinues() bool {
	t := p.peek()
	if t.Kind != sv.Punct {
		return false
	}
	switch t.Text {
	case "&&", "||", "==", "!=", "===", "!==", "<", "<=", ">", ">=",
		"&", "|", "^", "~^", "^~", "+", "-", "*", "/", "%",
		"<<", ">>", "<<<", ">>>", "?", "[":
		return true
	}
	return false
}

// ---- expression grammar ---------------------------------------------

// binary precedence levels, weakest first.
var exprLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^", "~^", "^~"},
	{"&"},
	{"==", "!=", "===", "!=="},
	{"<", "<=", ">", ">="},
	{"<<", ">>", "<<<", ">>>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseCond()
}

func (p *parser) parseCond() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(sv.Punct, "?") {
		return c, nil
	}
	t, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(sv.Punct, ":"); err != nil {
		return nil, err
	}
	e, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, T: t, E: e}, nil
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(exprLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range exprLevels[level] {
			if p.at(sv.Punct, op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return l, nil
		}
		p.next()
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: matched, X: l, Y: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == sv.Punct {
		switch t.Text {
		case "!", "~", "-", "+", "&", "|", "^", "~&", "~|", "~^", "^~":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(sv.Punct, "[") {
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(sv.Punct, ":") {
			lo, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sv.Punct, "]"); err != nil {
				return nil, err
			}
			e = &Select{X: e, Hi: idx, Lo: lo}
			continue
		}
		if _, err := p.expect(sv.Punct, "]"); err != nil {
			return nil, err
		}
		e = &Index{X: e, Idx: idx}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case sv.Number:
		p.next()
		lit, err := sv.ParseLiteral(t.Text)
		if err != nil {
			return nil, fmt.Errorf("%v: %v", t.Pos, err)
		}
		return &Num{Text: t.Text, Value: lit.Value, Width: lit.Width, Fill: lit.Fill}, nil
	case sv.Ident:
		p.next()
		if p.at(sv.Punct, "(") {
			// Function-call syntax on a plain identifier. SVA has no
			// user functions in assertion context; the validator
			// rejects these as hallucinated operators (e.g.
			// eventually(x)).
			return p.parseCallArgs(t.Text)
		}
		return &Ident{Name: t.Text}, nil
	case sv.SysIdent:
		p.next()
		if p.at(sv.Punct, "(") {
			return p.parseCallArgs(t.Text)
		}
		return &Call{Name: t.Text}, nil
	case sv.Punct:
		switch t.Text {
		case "(":
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sv.Punct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		case "{":
			return p.parseConcat()
		}
	}
	return nil, p.errf("unexpected token %v in expression", t)
}

func (p *parser) parseCallArgs(name string) (Expr, error) {
	if _, err := p.expect(sv.Punct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.at(sv.Punct, ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(sv.Punct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(sv.Punct, ")"); err != nil {
		return nil, err
	}
	return &Call{Name: name, Args: args}, nil
}

func (p *parser) parseConcat() (Expr, error) {
	if _, err := p.expect(sv.Punct, "{"); err != nil {
		return nil, err
	}
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// replication {n{v}}
	if p.at(sv.Punct, "{") {
		p.next()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, "}"); err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, "}"); err != nil {
			return nil, err
		}
		return &Repl{Count: first, Value: v}, nil
	}
	parts := []Expr{first}
	for p.accept(sv.Punct, ",") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if _, err := p.expect(sv.Punct, "}"); err != nil {
		return nil, err
	}
	return &Concat{Parts: parts}, nil
}
