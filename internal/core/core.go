// Package core holds the benchmark substance shared by every run: the
// three sub-benchmark datasets (NL2SVA-Human, NL2SVA-Machine,
// Design2SVA), the per-response judgment flow — response extraction,
// syntax check, formal equivalence or proof — and the report types and
// table/figure renderers for the paper's metrics.
//
// Execution (worker pools, job scheduling, sharding, memoized
// equivalence checking) lives in internal/engine; core stays free of
// run-loop concerns so judgments can be reused by any runner.
package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"fveval/internal/dataset/human"
	"fveval/internal/equiv"
	"fveval/internal/gen/rtlgen"
	"fveval/internal/gen/svagen"
	"fveval/internal/llm"
	"fveval/internal/mc"
	"fveval/internal/metrics"
	"fveval/internal/obs"
	"fveval/internal/rtl"
	"fveval/internal/sva"
)

// Outcome is the judged result of one response.
type Outcome struct {
	InstanceID string  `json:"instance"`
	Response   string  `json:"response,omitempty"`
	Syntax     bool    `json:"syntax,omitempty"`
	Full       bool    `json:"func,omitempty"`    // exact formal equivalence (or proven, for Design2SVA)
	Partial    bool    `json:"partial,omitempty"` // one-directional equivalence (includes Full)
	BLEU       float64 `json:"bleu,omitempty"`
}

// ModelReport aggregates outcomes for one model on one task setting.
type ModelReport struct {
	Model    string
	Count    int
	Syntax   float64
	Func     float64
	Partial  float64
	BLEU     float64
	Outcomes []Outcome
}

// Aggregate folds outcomes into one model's report. The fold visits
// outcomes in slice order, so identical slices produce bit-identical
// reports no matter how the outcomes were computed.
func Aggregate(model string, outs []Outcome) ModelReport {
	r := ModelReport{Model: model, Count: len(outs), Outcomes: outs}
	if len(outs) == 0 {
		return r
	}
	var s, f, p, b float64
	for _, o := range outs {
		if o.Syntax {
			s++
		}
		if o.Full {
			f++
		}
		if o.Partial {
			p++
		}
		b += o.BLEU
	}
	n := float64(len(outs))
	r.Syntax, r.Func, r.Partial, r.BLEU = s/n, f/n, p/n, b/n
	return r
}

// PassKReport aggregates pass@k across samples.
type PassKReport struct {
	Model    string
	N        int // samples per instance
	SyntaxK  map[int]float64
	FuncK    map[int]float64
	PartialK map[int]float64
}

// AggregatePassK computes unbiased pass@k per metric from a flattened
// outcome grid laid out instance-major: outs[i*n+s] is instance i,
// sample s.
func AggregatePassK(model string, nInst, n int, ks []int, outs []Outcome) PassKReport {
	rep := PassKReport{
		Model: model, N: n,
		SyntaxK:  map[int]float64{},
		FuncK:    map[int]float64{},
		PartialK: map[int]float64{},
	}
	for _, k := range ks {
		var sSum, fSum, pSum float64
		for i := 0; i < nInst; i++ {
			var sC, fC, pC int
			for s := 0; s < n; s++ {
				o := outs[i*n+s]
				if o.Syntax {
					sC++
				}
				if o.Full {
					fC++
				}
				if o.Partial {
					pC++
				}
			}
			sSum += metrics.PassAtK(n, sC, k)
			fSum += metrics.PassAtK(n, fC, k)
			pSum += metrics.PassAtK(n, pC, k)
		}
		rep.SyntaxK[k] = sSum / float64(nInst)
		rep.FuncK[k] = fSum / float64(nInst)
		rep.PartialK[k] = pSum / float64(nInst)
	}
	return rep
}

// DesignReport aggregates Design2SVA pass@k for one model and design
// category.
type DesignReport struct {
	Model   string
	Kind    string
	N       int
	SyntaxK map[int]float64
	FuncK   map[int]float64
}

// AggregateDesign computes Design2SVA pass@k from a flattened outcome
// grid (instance-major, like AggregatePassK); Full carries "proven".
// Design2SVA has no partial-equivalence notion, so the fold is
// AggregatePassK minus the Partial metric.
func AggregateDesign(model, kind string, nInst, n int, ks []int, outs []Outcome) DesignReport {
	pk := AggregatePassK(model, nInst, n, ks, outs)
	return DesignReport{
		Model: model, Kind: kind, N: n,
		SyntaxK: pk.SyntaxK, FuncK: pk.FuncK,
	}
}

// HumanInstance is one NL2SVA-Human test case with its environment.
type HumanInstance struct {
	ID        string
	Testbench *human.Testbench
	NL        string
	Reference *sva.Assertion
	Sigs      *equiv.Sigs
}

// LoadHuman assembles the NL2SVA-Human instances, deriving each
// testbench's signal environment by elaboration.
func LoadHuman() ([]*HumanInstance, error) {
	var out []*HumanInstance
	for _, tb := range human.Testbenches() {
		f, err := rtl.Parse(tb.Source)
		if err != nil {
			return nil, fmt.Errorf("core: testbench %s: %w", tb.Name, err)
		}
		sys, err := rtl.Elaborate(f, tb.Top, nil)
		if err != nil {
			return nil, fmt.Errorf("core: testbench %s: %w", tb.Name, err)
		}
		w, c := sys.Sigs()
		sigs := &equiv.Sigs{Widths: w, Consts: c}
		for _, pair := range tb.Pairs {
			ref, err := sva.ParseAssertion(pair.Reference)
			if err != nil {
				return nil, fmt.Errorf("core: reference %s: %w", pair.ID, err)
			}
			out = append(out, &HumanInstance{
				ID: pair.ID, Testbench: tb, NL: pair.NL, Reference: ref, Sigs: sigs,
			})
		}
	}
	return out, nil
}

// MachineInstance adapts svagen output with the shared machine
// environment.
type MachineInstance struct {
	ID        string
	NL        string
	Reference *sva.Assertion
	Sigs      *equiv.Sigs
}

// LoadMachine builds the NL2SVA-Machine dataset (paper size 300).
func LoadMachine(count int) []*MachineInstance {
	sigs := equiv.DefaultMachineSigs()
	var out []*MachineInstance
	for _, inst := range svagen.Dataset(count) {
		out = append(out, &MachineInstance{
			ID: inst.ID, NL: inst.NL, Reference: inst.Reference, Sigs: sigs,
		})
	}
	return out
}

// ResetMemos clears the process-wide judgment memos (reference BLEU
// tokens, candidate parses, design parses). Benchmarks call it so
// each table measures a cold run — and so one benchmark's retained
// ASTs don't inflate the next one's GC mark phase; a long-lived
// service may call it to shed memory.
func ResetMemos() {
	refBLEU.Clear()
	refBLEUSize.Store(0)
	candParses.Clear()
	candParsesSize.Store(0)
	designParses.Clear()
}

// refBLEU memoizes each reference assertion's rendered source and
// BLEU tokens by identity: one reference is scored against every
// sample of every model, and rendering plus tokenizing it per
// judgment was a top-five cost of the machine tables. The map is
// cleared at a generous bound so a long-lived service cannot grow it
// without limit (references are per-load pointers).
var refBLEU sync.Map // *sva.Assertion -> metrics.RefTokens
var refBLEUSize atomic.Int64

func refTokens(ref *sva.Assertion) metrics.RefTokens {
	if t, ok := refBLEU.Load(ref); ok {
		return t.(metrics.RefTokens)
	}
	t := metrics.TokenizeRef(ref.String())
	if refBLEUSize.Add(1) > 1<<16 {
		refBLEU.Clear()
		refBLEUSize.Store(1)
	}
	refBLEU.Store(ref, t)
	return t
}

// candParses memoizes candidate parsing by source text: generic
// responses recur across instances and models, and every consumer
// treats parsed assertions as read-only, so one shared parse (and its
// downstream identity-keyed memo entries) serves them all. Bounded
// like refBLEU.
var candParses sync.Map // code -> candParse
var candParsesSize atomic.Int64

type candParse struct {
	a   *sva.Assertion
	err error
}

func parseCandidate(code string) (*sva.Assertion, error) {
	if v, ok := candParses.Load(code); ok {
		p := v.(candParse)
		return p.a, p.err
	}
	a, err := sva.ParseAssertion(code)
	if candParsesSize.Add(1) > 1<<16 {
		candParses.Clear()
		candParsesSize.Store(1)
	}
	candParses.Store(code, candParse{a, err})
	return a, err
}

// JudgeTranslation runs the full evaluation flow on one response:
// extraction, BLEU, parse, validate, formal equivalence against the
// reference. The checker options (budget, bound ramp ceiling, stats
// sink) pass through to equiv.Check; a non-nil cache memoizes the
// equivalence check, nil means solve directly. Verdicts are identical
// either way.
func JudgeTranslation(id, response string, ref *sva.Assertion, sigs *equiv.Sigs, opt equiv.Options, cache *equiv.Cache) Outcome {
	code := llm.ExtractCode(response)
	out := Outcome{InstanceID: id, Response: code}
	bsp := opt.Span.Child("bleu").SetPhase(obs.PhaseBLEU)
	out.BLEU = metrics.BLEURef(code, refTokens(ref))
	bsp.End()
	psp := opt.Span.Child("parse").SetPhase(obs.PhaseParse)
	cand, err := parseCandidate(code)
	if err != nil {
		psp.SetBool("ok", false).End()
		return out
	}
	if err := sva.Validate(cand); err != nil {
		psp.SetBool("ok", false).End()
		return out
	}
	psp.SetBool("ok", true).End()
	res, err := cache.Check(cand, ref, sigs, opt)
	if err != nil {
		// elaboration failure (undeclared signals etc.) counts against
		// the syntax metric, mirroring the tool compile step
		return out
	}
	out.Syntax = true
	switch res.Verdict {
	case equiv.Equivalent:
		out.Full, out.Partial = true, true
	case equiv.AImpliesB, equiv.BImpliesA:
		out.Partial = true
	}
	return out
}

// JudgeDesign re-formats the testbench with the model's snippet,
// elaborates the bound DUT+testbench system, and model-checks the
// assertion — the paper's Design2SVA evaluation flow. The checker
// options (budget, depths, stats sink) pass through to
// mc.CheckAssertion.
// designParses memoizes the design half of the Design2SVA parse: one
// design is judged against dozens of candidate snippets, and only the
// testbench half changes between them. The split parse is taken only
// when the design carries no preprocessor directives (no backtick), so
// a design `define can never silently stop reaching the bench.
var designParses sync.Map // design source -> *rtl.File

func parseDesignBench(design, bench string) (*rtl.File, error) {
	if !strings.Contains(design, "`") {
		var df *rtl.File
		if v, ok := designParses.Load(design); ok {
			df = v.(*rtl.File)
		} else if parsed, err := rtl.Parse(design); err == nil {
			designParses.Store(design, parsed)
			df = parsed
		}
		if df != nil {
			bf, err := rtl.Parse(bench)
			if err != nil {
				return nil, err
			}
			f := &rtl.File{Modules: make([]*rtl.Module, 0, len(df.Modules)+len(bf.Modules))}
			f.Modules = append(append(f.Modules, df.Modules...), bf.Modules...)
			return f, nil
		}
	}
	return rtl.Parse(design + "\n" + bench)
}

func JudgeDesign(inst *rtlgen.Instance, snippet string, opt mc.Options) (syntaxOK, proven bool) {
	psp := opt.Span.Child("parse").SetPhase(obs.PhaseParse)
	merged := insertBeforeEndmodule(inst.Bench, snippet)
	f, err := parseDesignBench(inst.Design, merged)
	if err != nil {
		psp.SetBool("ok", false).End()
		return false, false
	}
	sys, err := rtl.ElaborateBound(f, inst.DUTTop, inst.BenchTop, nil)
	if err != nil {
		psp.SetBool("ok", false).End()
		return false, false
	}
	if len(sys.Asserts) == 0 {
		psp.SetBool("ok", false).End()
		return false, false
	}
	// Validate every assertion's signals resolve (elaboration of the
	// assertion itself happens inside the checker).
	for _, a := range sys.Asserts {
		if sva.Validate(a) != nil {
			psp.SetBool("ok", false).End()
			return false, false
		}
	}
	psp.SetBool("ok", true).End()
	syntaxOK = true
	proven = true
	for _, a := range sys.Asserts {
		res, err := mc.CheckAssertion(sys, a, opt)
		if err != nil {
			return false, false // elaboration error inside the property
		}
		if res.Status != mc.Proven {
			proven = false
		}
	}
	return syntaxOK, proven
}

// insertBeforeEndmodule splices a snippet into the testbench body.
func insertBeforeEndmodule(bench, snippet string) string {
	idx := strings.LastIndex(bench, "endmodule")
	if idx < 0 {
		return bench + "\n" + snippet
	}
	return bench[:idx] + "\n" + snippet + "\n" + bench[idx:]
}
