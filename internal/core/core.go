// Package core is the benchmark framework: it assembles the three
// sub-benchmarks (NL2SVA-Human, NL2SVA-Machine, Design2SVA), runs
// models through the full evaluation flow — prompt, response
// extraction, syntax check, formal equivalence or proof — and
// aggregates the paper's metrics into table and figure reports.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"fveval/internal/dataset/human"
	"fveval/internal/equiv"
	"fveval/internal/gen/rtlgen"
	"fveval/internal/gen/svagen"
	"fveval/internal/llm"
	"fveval/internal/mc"
	"fveval/internal/metrics"
	"fveval/internal/rtl"
	"fveval/internal/sva"
)

// Options tunes a benchmark run.
type Options struct {
	// Limit truncates the instance list (0 = all); tests use small
	// limits, benches run full size.
	Limit int
	// Samples per instance for pass@k runs.
	Samples int
	// Budget caps SAT conflicts per query (0 = default 200000).
	Budget int64
	// Workers sets evaluation parallelism (0 = GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Budget == 0 {
		o.Budget = 200000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Samples == 0 {
		o.Samples = 1
	}
	return o
}

// Outcome is the judged result of one response.
type Outcome struct {
	InstanceID string
	Response   string
	Syntax     bool
	Full       bool // exact formal equivalence (or proven, for Design2SVA)
	Partial    bool // one-directional equivalence (includes Full)
	BLEU       float64
}

// ModelReport aggregates outcomes for one model on one task setting.
type ModelReport struct {
	Model    string
	Count    int
	Syntax   float64
	Func     float64
	Partial  float64
	BLEU     float64
	Outcomes []Outcome
}

func aggregate(model string, outs []Outcome) ModelReport {
	r := ModelReport{Model: model, Count: len(outs), Outcomes: outs}
	if len(outs) == 0 {
		return r
	}
	var s, f, p, b float64
	for _, o := range outs {
		if o.Syntax {
			s++
		}
		if o.Full {
			f++
		}
		if o.Partial {
			p++
		}
		b += o.BLEU
	}
	n := float64(len(outs))
	r.Syntax, r.Func, r.Partial, r.BLEU = s/n, f/n, p/n, b/n
	return r
}

// PassKReport aggregates pass@k across samples.
type PassKReport struct {
	Model    string
	N        int // samples per instance
	SyntaxK  map[int]float64
	FuncK    map[int]float64
	PartialK map[int]float64
}

// HumanInstance is one NL2SVA-Human test case with its environment.
type HumanInstance struct {
	ID        string
	Testbench *human.Testbench
	NL        string
	Reference *sva.Assertion
	Sigs      *equiv.Sigs
}

// LoadHuman assembles the NL2SVA-Human instances, deriving each
// testbench's signal environment by elaboration.
func LoadHuman() ([]*HumanInstance, error) {
	var out []*HumanInstance
	for _, tb := range human.Testbenches() {
		f, err := rtl.Parse(tb.Source)
		if err != nil {
			return nil, fmt.Errorf("core: testbench %s: %w", tb.Name, err)
		}
		sys, err := rtl.Elaborate(f, tb.Top, nil)
		if err != nil {
			return nil, fmt.Errorf("core: testbench %s: %w", tb.Name, err)
		}
		w, c := sys.Sigs()
		sigs := &equiv.Sigs{Widths: w, Consts: c}
		for _, pair := range tb.Pairs {
			ref, err := sva.ParseAssertion(pair.Reference)
			if err != nil {
				return nil, fmt.Errorf("core: reference %s: %w", pair.ID, err)
			}
			out = append(out, &HumanInstance{
				ID: pair.ID, Testbench: tb, NL: pair.NL, Reference: ref, Sigs: sigs,
			})
		}
	}
	return out, nil
}

// MachineInstance adapts svagen output with the shared machine
// environment.
type MachineInstance struct {
	ID        string
	NL        string
	Reference *sva.Assertion
	Sigs      *equiv.Sigs
}

// LoadMachine builds the NL2SVA-Machine dataset (paper size 300).
func LoadMachine(count int) []*MachineInstance {
	sigs := equiv.DefaultMachineSigs()
	var out []*MachineInstance
	for _, inst := range svagen.Dataset(count) {
		out = append(out, &MachineInstance{
			ID: inst.ID, NL: inst.NL, Reference: inst.Reference, Sigs: sigs,
		})
	}
	return out
}

// judgeTranslation runs the full evaluation flow on one response.
func judgeTranslation(id, response string, ref *sva.Assertion, sigs *equiv.Sigs, budget int64) Outcome {
	code := llm.ExtractCode(response)
	out := Outcome{InstanceID: id, Response: code}
	out.BLEU = metrics.BLEU(code, ref.String())
	cand, err := sva.ParseAssertion(code)
	if err != nil {
		return out
	}
	if err := sva.Validate(cand); err != nil {
		return out
	}
	res, err := equiv.Check(cand, ref, sigs, equiv.Options{Budget: budget})
	if err != nil {
		// elaboration failure (undeclared signals etc.) counts against
		// the syntax metric, mirroring the tool compile step
		return out
	}
	out.Syntax = true
	switch res.Verdict {
	case equiv.Equivalent:
		out.Full, out.Partial = true, true
	case equiv.AImpliesB, equiv.BImpliesA:
		out.Partial = true
	}
	return out
}

// parallelMap runs f over n indices with bounded workers.
func parallelMap(n, workers int, f func(i int)) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
}

// RunNL2SVAHuman evaluates models on NL2SVA-Human with greedy decoding
// (Table 1).
func RunNL2SVAHuman(models []llm.Model, opt Options) ([]ModelReport, error) {
	opt = opt.withDefaults()
	insts, err := LoadHuman()
	if err != nil {
		return nil, err
	}
	if opt.Limit > 0 && opt.Limit < len(insts) {
		insts = insts[:opt.Limit]
	}
	var reports []ModelReport
	for _, m := range models {
		outs := make([]Outcome, len(insts))
		parallelMap(len(insts), opt.Workers, func(i int) {
			in := insts[i]
			p := llm.BuildHumanPrompt(in.ID, in.Testbench.Source, in.NL, in.Reference)
			resp := m.Generate(p, 0)
			outs[i] = judgeTranslation(in.ID, resp, in.Reference, in.Sigs, opt.Budget)
		})
		reports = append(reports, aggregate(m.Name(), outs))
	}
	return reports, nil
}

// RunNL2SVAHumanPassK evaluates pass@k with multiple samples
// (Table 2).
func RunNL2SVAHumanPassK(models []llm.Model, ks []int, opt Options) ([]PassKReport, error) {
	opt = opt.withDefaults()
	if opt.Samples < 2 {
		opt.Samples = 5
	}
	insts, err := LoadHuman()
	if err != nil {
		return nil, err
	}
	if opt.Limit > 0 && opt.Limit < len(insts) {
		insts = insts[:opt.Limit]
	}
	var reports []PassKReport
	for _, m := range models {
		rep := passKRun(m, len(insts), opt, ks, func(i, s int) Outcome {
			in := insts[i]
			p := llm.BuildHumanPrompt(in.ID, in.Testbench.Source, in.NL, in.Reference)
			resp := m.Generate(p, s)
			return judgeTranslation(in.ID, resp, in.Reference, in.Sigs, opt.Budget)
		})
		reports = append(reports, rep)
	}
	return reports, nil
}

// RunNL2SVAMachine evaluates the machine benchmark at a shot count
// (Table 3 columns).
func RunNL2SVAMachine(models []llm.Model, shots, count int, opt Options) ([]ModelReport, error) {
	opt = opt.withDefaults()
	insts := LoadMachine(count)
	if opt.Limit > 0 && opt.Limit < len(insts) {
		insts = insts[:opt.Limit]
	}
	var reports []ModelReport
	for _, m := range models {
		outs := make([]Outcome, len(insts))
		parallelMap(len(insts), opt.Workers, func(i int) {
			in := insts[i]
			p := llm.BuildMachinePrompt(in.ID, in.NL, shots, in.Reference)
			resp := m.Generate(p, 0)
			outs[i] = judgeTranslation(in.ID, resp, in.Reference, in.Sigs, opt.Budget)
		})
		reports = append(reports, aggregate(m.Name(), outs))
	}
	return reports, nil
}

// RunNL2SVAMachinePassK evaluates machine pass@k at 3-shot (Table 4).
func RunNL2SVAMachinePassK(models []llm.Model, ks []int, count int, opt Options) ([]PassKReport, error) {
	opt = opt.withDefaults()
	if opt.Samples < 2 {
		opt.Samples = 5
	}
	insts := LoadMachine(count)
	if opt.Limit > 0 && opt.Limit < len(insts) {
		insts = insts[:opt.Limit]
	}
	var reports []PassKReport
	for _, m := range models {
		rep := passKRun(m, len(insts), opt, ks, func(i, s int) Outcome {
			in := insts[i]
			p := llm.BuildMachinePrompt(in.ID, in.NL, 3, in.Reference)
			resp := m.Generate(p, s)
			return judgeTranslation(in.ID, resp, in.Reference, in.Sigs, opt.Budget)
		})
		reports = append(reports, rep)
	}
	return reports, nil
}

// passKRun samples n responses per instance and computes unbiased
// pass@k per metric.
func passKRun(m llm.Model, nInst int, opt Options, ks []int, eval func(i, s int) Outcome) PassKReport {
	n := opt.Samples
	outcomes := make([]Outcome, nInst*n)
	parallelMap(len(outcomes), opt.Workers, func(idx int) {
		outcomes[idx] = eval(idx/n, idx%n)
	})
	rep := PassKReport{
		Model: m.Name(), N: n,
		SyntaxK:  map[int]float64{},
		FuncK:    map[int]float64{},
		PartialK: map[int]float64{},
	}
	for _, k := range ks {
		var sSum, fSum, pSum float64
		for i := 0; i < nInst; i++ {
			var sC, fC, pC int
			for s := 0; s < n; s++ {
				o := outcomes[i*n+s]
				if o.Syntax {
					sC++
				}
				if o.Full {
					fC++
				}
				if o.Partial {
					pC++
				}
			}
			sSum += metrics.PassAtK(n, sC, k)
			fSum += metrics.PassAtK(n, fC, k)
			pSum += metrics.PassAtK(n, pC, k)
		}
		rep.SyntaxK[k] = sSum / float64(nInst)
		rep.FuncK[k] = fSum / float64(nInst)
		rep.PartialK[k] = pSum / float64(nInst)
	}
	return rep
}

// ---- Design2SVA ---------------------------------------------------------

// DesignOutcome is the judged result of one Design2SVA response set.
type DesignOutcome struct {
	InstanceID string
	// per-sample verdicts
	Syntax []bool
	Proven []bool
}

// DesignReport aggregates Design2SVA pass@k for one model and design
// category.
type DesignReport struct {
	Model   string
	Kind    string
	N       int
	SyntaxK map[int]float64
	FuncK   map[int]float64
}

// RunDesign2SVA evaluates models on a design category with n samples
// per instance (Table 5 halves).
func RunDesign2SVA(models []llm.Model, kind string, opt Options) ([]DesignReport, error) {
	opt = opt.withDefaults()
	if opt.Samples < 2 {
		opt.Samples = 5
	}
	insts := rtlgen.Sweep96(kind)
	if opt.Limit > 0 && opt.Limit < len(insts) {
		insts = insts[:opt.Limit]
	}
	n := opt.Samples
	// identical snippets recur across samples and models; memoize the
	// expensive elaborate+prove judgment per (instance, snippet)
	type cell struct{ syntax, proven bool }
	var cacheMu sync.Mutex
	cache := map[string]cell{}
	var reports []DesignReport
	for _, m := range models {
		cells := make([]cell, len(insts)*n)
		parallelMap(len(cells), opt.Workers, func(idx int) {
			i, s := idx/n, idx%n
			inst := insts[i]
			p := llm.BuildDesignPrompt(inst)
			resp := m.Generate(p, s)
			code := llm.ExtractCode(resp)
			key := inst.ID + "\x00" + code
			cacheMu.Lock()
			c, ok := cache[key]
			cacheMu.Unlock()
			if !ok {
				syn, prov := JudgeDesign(inst, code, opt.Budget)
				c = cell{syn, prov}
				cacheMu.Lock()
				cache[key] = c
				cacheMu.Unlock()
			}
			cells[idx] = c
		})
		rep := DesignReport{
			Model: m.Name(), Kind: kind, N: n,
			SyntaxK: map[int]float64{}, FuncK: map[int]float64{},
		}
		for _, k := range []int{1, 5} {
			var sSum, fSum float64
			for i := range insts {
				var sC, fC int
				for s := 0; s < n; s++ {
					if cells[i*n+s].syntax {
						sC++
					}
					if cells[i*n+s].proven {
						fC++
					}
				}
				sSum += metrics.PassAtK(n, sC, k)
				fSum += metrics.PassAtK(n, fC, k)
			}
			rep.SyntaxK[k] = sSum / float64(len(insts))
			rep.FuncK[k] = fSum / float64(len(insts))
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// JudgeDesign re-formats the testbench with the model's snippet,
// elaborates the bound DUT+testbench system, and model-checks the
// assertion — the paper's Design2SVA evaluation flow.
func JudgeDesign(inst *rtlgen.Instance, snippet string, budget int64) (syntaxOK, proven bool) {
	merged := insertBeforeEndmodule(inst.Bench, snippet)
	f, err := rtl.Parse(inst.Design + "\n" + merged)
	if err != nil {
		return false, false
	}
	sys, err := rtl.ElaborateBound(f, inst.DUTTop, inst.BenchTop, nil)
	if err != nil {
		return false, false
	}
	if len(sys.Asserts) == 0 {
		return false, false
	}
	// Validate every assertion's signals resolve (elaboration of the
	// assertion itself happens inside the checker).
	for _, a := range sys.Asserts {
		if sva.Validate(a) != nil {
			return false, false
		}
	}
	syntaxOK = true
	proven = true
	for _, a := range sys.Asserts {
		res, err := mc.CheckAssertion(sys, a, mc.Options{Budget: budget})
		if err != nil {
			return false, false // elaboration error inside the property
		}
		if res.Status != mc.Proven {
			proven = false
		}
	}
	return syntaxOK, proven
}

// insertBeforeEndmodule splices a snippet into the testbench body.
func insertBeforeEndmodule(bench, snippet string) string {
	idx := strings.LastIndex(bench, "endmodule")
	if idx < 0 {
		return bench + "\n" + snippet
	}
	return bench[:idx] + "\n" + snippet + "\n" + bench[idx:]
}
