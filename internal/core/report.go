package core

import (
	"fmt"
	"sort"
	"strings"

	"fveval/internal/dataset/human"
	"fveval/internal/gen/rtlgen"
	"fveval/internal/metrics"
)

// FormatTable1 renders NL2SVA-Human greedy results in the paper's
// Table 1 layout.
func FormatTable1(reports []ModelReport) string {
	var b strings.Builder
	b.WriteString("Table 1: NL2SVA-Human (greedy decoding)\n")
	fmt.Fprintf(&b, "%-18s %8s %8s %8s %8s\n", "Model", "Syntax", "Func.", "Partial", "BLEU")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-18s %8.3f %8.3f %8.3f %8.3f\n",
			r.Model, r.Syntax, r.Func, r.Partial, r.BLEU)
	}
	return b.String()
}

// FormatTable2 renders NL2SVA-Human pass@k (Table 2 layout).
func FormatTable2(reports []PassKReport) string {
	return formatPassK("Table 2: NL2SVA-Human pass@k (n=5 samples)", reports)
}

// FormatTable3 renders the 0-shot/3-shot machine comparison (Table 3).
func FormatTable3(zeroShot, threeShot []ModelReport) string {
	var b strings.Builder
	b.WriteString("Table 3: NL2SVA-Machine (0-shot vs 3-shot)\n")
	fmt.Fprintf(&b, "%-18s | %7s %7s %7s %7s | %7s %7s %7s %7s\n",
		"Model", "Syn(0)", "Fun(0)", "Par(0)", "BLEU(0)", "Syn(3)", "Fun(3)", "Par(3)", "BLEU(3)")
	byName := map[string]ModelReport{}
	for _, r := range threeShot {
		byName[r.Model] = r
	}
	for _, z := range zeroShot {
		t := byName[z.Model]
		fmt.Fprintf(&b, "%-18s | %7.3f %7.3f %7.3f %7.3f | %7.3f %7.3f %7.3f %7.3f\n",
			z.Model, z.Syntax, z.Func, z.Partial, z.BLEU, t.Syntax, t.Func, t.Partial, t.BLEU)
	}
	return b.String()
}

// FormatTable4 renders machine pass@k (Table 4 layout).
func FormatTable4(reports []PassKReport) string {
	return formatPassK("Table 4: NL2SVA-Machine pass@k (3-shot, n=5 samples)", reports)
}

func formatPassK(title string, reports []PassKReport) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-18s %9s %8s %8s %10s %10s\n",
		"Model", "Syntax@5", "Func.@3", "Func.@5", "Partial.@3", "Partial.@5")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-18s %9.3f %8.3f %8.3f %10.3f %10.3f\n",
			r.Model, r.SyntaxK[5], r.FuncK[3], r.FuncK[5], r.PartialK[3], r.PartialK[5])
	}
	return b.String()
}

// FormatTable5 renders Design2SVA results (Table 5 layout).
func FormatTable5(pipeline, fsm []DesignReport) string {
	var b strings.Builder
	b.WriteString("Table 5: Design2SVA\n")
	fmt.Fprintf(&b, "%-18s | %8s %8s %7s %7s | %8s %8s %7s %7s\n",
		"Model", "P:Syn@1", "P:Syn@5", "P:Fn@1", "P:Fn@5",
		"F:Syn@1", "F:Syn@5", "F:Fn@1", "F:Fn@5")
	byName := map[string]DesignReport{}
	for _, r := range fsm {
		byName[r.Model] = r
	}
	for _, p := range pipeline {
		f := byName[p.Model]
		fmt.Fprintf(&b, "%-18s | %8.3f %8.3f %7.3f %7.3f | %8.3f %8.3f %7.3f %7.3f\n",
			p.Model, p.SyntaxK[1], p.SyntaxK[5], p.FuncK[1], p.FuncK[5],
			f.SyntaxK[1], f.SyntaxK[5], f.FuncK[1], f.FuncK[5])
	}
	return b.String()
}

// FormatTable6 renders the NL2SVA-Human dataset statistics.
func FormatTable6() string {
	var b strings.Builder
	b.WriteString("Table 6: NL2SVA-Human composition\n")
	fmt.Fprintf(&b, "%-18s %12s %12s\n", "Name", "# Variations", "# Assertions")
	stats := human.Stats()
	totalV, totalA := 0, 0
	for _, cat := range human.Categories {
		v := stats[cat]
		fmt.Fprintf(&b, "%-18s %12d %12d\n", cat, v[0], v[1])
		totalV += v[0]
		totalA += v[1]
	}
	fmt.Fprintf(&b, "%-18s %12d %12d\n", "Total", totalV, totalA)
	return b.String()
}

// Figure2 reports the token-length distributions of the NL
// specifications and reference assertions in NL2SVA-Human.
func Figure2() (string, error) {
	insts, err := LoadHuman()
	if err != nil {
		return "", err
	}
	var nlLens, svaLens []float64
	for _, in := range insts {
		nlLens = append(nlLens, float64(metrics.CountTokens(in.NL)))
		svaLens = append(svaLens, float64(metrics.CountTokens(in.Reference.String())))
	}
	var b strings.Builder
	b.WriteString("Figure 2 (right): NL2SVA-Human token-length distributions\n")
	b.WriteString("NL specification lengths:\n")
	b.WriteString(metrics.NewHistogram(nlLens, 8).Render())
	b.WriteString("Reference SVA lengths:\n")
	b.WriteString(metrics.NewHistogram(svaLens, 8).Render())
	return b.String(), nil
}

// Figure3 reports the machine benchmark's length distributions.
func Figure3(count int) string {
	insts := LoadMachine(count)
	var nlLens, svaLens []float64
	for _, in := range insts {
		nlLens = append(nlLens, float64(metrics.CountTokens(in.NL)))
		svaLens = append(svaLens, float64(metrics.CountTokens(in.Reference.String())))
	}
	var b strings.Builder
	b.WriteString("Figure 3 (right): NL2SVA-Machine token-length distributions\n")
	b.WriteString("NL description lengths:\n")
	b.WriteString(metrics.NewHistogram(nlLens, 8).Render())
	b.WriteString("Reference SVA lengths:\n")
	b.WriteString(metrics.NewHistogram(svaLens, 8).Render())
	return b.String()
}

// Figure4 reports the generated-RTL length distributions for both
// Design2SVA categories.
func Figure4() string {
	var b strings.Builder
	b.WriteString("Figure 4: synthetic RTL token-length distributions\n")
	for _, kind := range []string{"pipeline", "fsm"} {
		var lens []float64
		for _, inst := range rtlgen.Sweep96(kind) {
			lens = append(lens, float64(metrics.CountTokens(inst.Design)))
		}
		b.WriteString(kind + " design lengths:\n")
		b.WriteString(metrics.NewHistogram(lens, 8).Render())
	}
	return b.String()
}

// Figure6 reproduces the BLEU-vs-functional-correctness correlation
// analysis from NL2SVA-Human reports (the paper uses gpt-4o and
// llama-3.1-70b); run the evaluation first via the engine.
func Figure6(reports []ModelReport) string {
	var b strings.Builder
	b.WriteString("Figure 6: BLEU vs formal functional equivalence (NL2SVA-Human)\n")
	for _, r := range reports {
		var xs, ys []float64
		for _, o := range r.Outcomes {
			xs = append(xs, o.BLEU)
			if o.Full {
				ys = append(ys, 1)
			} else {
				ys = append(ys, 0)
			}
		}
		corr := metrics.Pearson(xs, ys)
		fmt.Fprintf(&b, "%-18s corr(BLEU, Func) = %+.4f over %d instances\n",
			r.Model, corr, len(xs))
	}
	b.WriteString("(low correlation reproduces the paper's finding that BLEU does not capture formal equivalence)\n")
	return b.String()
}

// SortReports orders model reports by Func descending for stable
// display.
func SortReports(rs []ModelReport) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Func > rs[j].Func })
}
