package core

import (
	"strings"
	"testing"

	"fveval/internal/equiv"
	"fveval/internal/gen/rtlgen"
	"fveval/internal/mc"
)

func TestLoadHuman(t *testing.T) {
	insts, err := LoadHuman()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 79 {
		t.Fatalf("instances: %d want 79", len(insts))
	}
	for _, in := range insts {
		if in.Sigs == nil || len(in.Sigs.Widths) == 0 {
			t.Fatalf("%s: missing signal environment", in.ID)
		}
	}
}

func TestLoadMachine(t *testing.T) {
	insts := LoadMachine(30)
	if len(insts) != 30 {
		t.Fatalf("instances: %d", len(insts))
	}
}

func TestJudgeTranslationClasses(t *testing.T) {
	insts, err := LoadHuman()
	if err != nil {
		t.Fatal(err)
	}
	in := insts[0] // fifo underflow check
	ref := in.Reference
	// exact reference: full pass
	o := JudgeTranslation(in.ID, "```systemverilog\n"+ref.String()+"\n```", ref, in.Sigs, equiv.Options{}, nil)
	if !o.Syntax || !o.Full || !o.Partial {
		t.Fatalf("reference must fully pass: %+v", o)
	}
	if o.BLEU < 0.9 {
		t.Fatalf("reference BLEU: %f", o.BLEU)
	}
	// broken syntax
	o = JudgeTranslation(in.ID, "assert property (@(posedge clk) a |-> eventually(b));", ref, in.Sigs, equiv.Options{}, nil)
	if o.Syntax {
		t.Fatalf("hallucinated operator must fail syntax")
	}
	// undeclared signal -> elaboration failure -> syntax fail
	o = JudgeTranslation(in.ID, "assert property (@(posedge clk) ghost |-> rd_pop);", ref, in.Sigs, equiv.Options{}, nil)
	if o.Syntax {
		t.Fatalf("undeclared signal must fail syntax")
	}
	// weaker variant: partial only
	o = JudgeTranslation(in.ID,
		"assert property (@(posedge clk) disable iff (tb_reset) (fifo_empty && rd_pop && wr_push) !== 1'b1);",
		ref, in.Sigs, equiv.Options{}, nil)
	if !o.Syntax || o.Full || !o.Partial {
		t.Fatalf("weakened variant must be partial: %+v", o)
	}
}

func TestAggregate(t *testing.T) {
	outs := []Outcome{
		{Syntax: true, Full: true, Partial: true, BLEU: 1.0},
		{Syntax: true, Full: false, Partial: true, BLEU: 0.5},
		{Syntax: false, Full: false, Partial: false, BLEU: 0.25},
		{Syntax: true, Full: false, Partial: false, BLEU: 0.25},
	}
	r := Aggregate("m", outs)
	if r.Count != 4 || r.Syntax != 0.75 || r.Func != 0.25 || r.Partial != 0.5 {
		t.Fatalf("aggregate: %+v", r)
	}
	if r.BLEU != 0.5 {
		t.Fatalf("bleu: %f", r.BLEU)
	}
	empty := Aggregate("m", nil)
	if empty.Count != 0 || empty.Syntax != 0 {
		t.Fatalf("empty aggregate: %+v", empty)
	}
}

func TestAggregatePassKBounds(t *testing.T) {
	// 2 instances x 3 samples; instance 0 always passes Func, instance 1 never
	outs := []Outcome{
		{Syntax: true, Full: true, Partial: true},
		{Syntax: true, Full: true, Partial: true},
		{Syntax: true, Full: true, Partial: true},
		{Syntax: true},
		{Syntax: true},
		{Syntax: false},
	}
	r := AggregatePassK("m", 2, 3, []int{1, 3}, outs)
	if r.FuncK[1] != 0.5 || r.FuncK[3] != 0.5 {
		t.Fatalf("func@k: %+v", r.FuncK)
	}
	if r.SyntaxK[3] < r.SyntaxK[1] {
		t.Fatalf("pass@3 must dominate pass@1: %+v", r.SyntaxK)
	}
}

func TestJudgeDesign(t *testing.T) {
	inst := rtlgen.GenerateFSM(rtlgen.FSMParams{States: 4, Edges: 6, Width: 8, Complexity: 2, Seed: 9})
	// ground-truth successor assertion must be provable
	succ := inst.FSM.Succ[0]
	body := "fsm_out == S0 |=> ("
	for i, tgt := range succ {
		if i > 0 {
			body += " || "
		}
		body += "fsm_out == S" + string(rune('0'+tgt))
	}
	body += ")"
	good := "assert property (@(posedge clk) disable iff (tb_reset) " + body + ");"
	syn, proven := JudgeDesign(inst, good, mc.Options{})
	if !syn || !proven {
		t.Fatalf("ground-truth assertion: syntax=%v proven=%v\n%s", syn, proven, good)
	}
	// DUT-internal signal reference must fail syntax (elaboration)
	bad := "assert property (@(posedge clk) disable iff (tb_reset) state == 'd0);"
	syn, _ = JudgeDesign(inst, bad, mc.Options{})
	if syn {
		t.Fatalf("DUT-internal signal must fail elaboration")
	}
	// wrong successor claim parses but is not proven
	wrong := "assert property (@(posedge clk) disable iff (tb_reset) fsm_out == S0 |=> (fsm_out == S0));"
	if intNotIn(succ, 0) {
		syn, proven = JudgeDesign(inst, wrong, mc.Options{})
		if !syn {
			t.Fatalf("wrong claim must still pass syntax")
		}
		if proven {
			t.Fatalf("wrong claim must not be proven")
		}
	}
}

func intNotIn(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return false
		}
	}
	return true
}

func TestFiguresRender(t *testing.T) {
	f2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2, "Figure 2") {
		t.Fatalf("figure 2 malformed")
	}
	if !strings.Contains(Figure3(30), "Figure 3") {
		t.Fatalf("figure 3 malformed")
	}
	if !strings.Contains(Figure4(), "pipeline") {
		t.Fatalf("figure 4 malformed")
	}
	// Figure6 is a pure formatter over reports (the engine runs the
	// evaluation); feed it a synthetic report.
	rep := Aggregate("toy-model", []Outcome{
		{Full: true, BLEU: 0.9},
		{Full: false, BLEU: 0.8},
		{Full: true, BLEU: 0.2},
	})
	f6 := Figure6([]ModelReport{rep})
	if !strings.Contains(f6, "corr(BLEU, Func)") || !strings.Contains(f6, "toy-model") {
		t.Fatalf("figure 6 malformed:\n%s", f6)
	}
}

func TestTable6(t *testing.T) {
	out := FormatTable6()
	for _, want := range []string{"1R1W FIFO", "Arbiter", "79"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 6 missing %q:\n%s", want, out)
		}
	}
}
