package core

import (
	"strings"
	"testing"

	"fveval/internal/gen/rtlgen"
	"fveval/internal/llm"
)

func TestLoadHuman(t *testing.T) {
	insts, err := LoadHuman()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 79 {
		t.Fatalf("instances: %d want 79", len(insts))
	}
	for _, in := range insts {
		if in.Sigs == nil || len(in.Sigs.Widths) == 0 {
			t.Fatalf("%s: missing signal environment", in.ID)
		}
	}
}

func TestLoadMachine(t *testing.T) {
	insts := LoadMachine(30)
	if len(insts) != 30 {
		t.Fatalf("instances: %d", len(insts))
	}
}

func TestJudgeTranslationClasses(t *testing.T) {
	insts, err := LoadHuman()
	if err != nil {
		t.Fatal(err)
	}
	in := insts[0] // fifo underflow check
	ref := in.Reference
	// exact reference: full pass
	o := judgeTranslation(in.ID, "```systemverilog\n"+ref.String()+"\n```", ref, in.Sigs, 0)
	if !o.Syntax || !o.Full || !o.Partial {
		t.Fatalf("reference must fully pass: %+v", o)
	}
	if o.BLEU < 0.9 {
		t.Fatalf("reference BLEU: %f", o.BLEU)
	}
	// broken syntax
	o = judgeTranslation(in.ID, "assert property (@(posedge clk) a |-> eventually(b));", ref, in.Sigs, 0)
	if o.Syntax {
		t.Fatalf("hallucinated operator must fail syntax")
	}
	// undeclared signal -> elaboration failure -> syntax fail
	o = judgeTranslation(in.ID, "assert property (@(posedge clk) ghost |-> rd_pop);", ref, in.Sigs, 0)
	if o.Syntax {
		t.Fatalf("undeclared signal must fail syntax")
	}
	// weaker variant: partial only
	o = judgeTranslation(in.ID,
		"assert property (@(posedge clk) disable iff (tb_reset) (fifo_empty && rd_pop && wr_push) !== 1'b1);",
		ref, in.Sigs, 0)
	if !o.Syntax || o.Full || !o.Partial {
		t.Fatalf("weakened variant must be partial: %+v", o)
	}
}

func TestRunHumanSmall(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o"), llm.ModelByName("llama-3-8b")}
	reports, err := RunNL2SVAHuman(models, Options{Limit: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports: %d", len(reports))
	}
	for _, r := range reports {
		if r.Count != 12 {
			t.Fatalf("%s: count %d", r.Model, r.Count)
		}
		if r.Partial < r.Func {
			t.Fatalf("%s: partial %f < func %f", r.Model, r.Partial, r.Func)
		}
		if r.Syntax < r.Partial {
			t.Fatalf("%s: syntax %f < partial %f", r.Model, r.Syntax, r.Partial)
		}
	}
	// the stronger model should not lose to the weakest by a wide
	// margin on this slice
	if reports[0].Func+0.3 < reports[1].Func {
		t.Fatalf("gpt-4o proxy unexpectedly weak: %f vs %f", reports[0].Func, reports[1].Func)
	}
	out := FormatTable1(reports)
	if !strings.Contains(out, "gpt-4o") {
		t.Fatalf("table must mention models:\n%s", out)
	}
}

func TestRunMachineSmallBothShots(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gemini-1.5-pro")}
	zero, err := RunNL2SVAMachine(models, 0, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunNL2SVAMachine(models, 3, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// gemini-1.5-pro has the paper's dramatic 0-shot -> 3-shot syntax
	// jump (0.467 -> 0.880); with only 20 instances allow wide noise
	// but demand an improvement.
	if three[0].Syntax <= zero[0].Syntax {
		t.Errorf("3-shot syntax (%f) must beat 0-shot (%f) for gemini-1.5-pro",
			three[0].Syntax, zero[0].Syntax)
	}
	tbl := FormatTable3(zero, three)
	if !strings.Contains(tbl, "gemini-1.5-pro") {
		t.Fatalf("table 3 malformed:\n%s", tbl)
	}
}

func TestPassKImprovesOverPass1(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o")}
	reports, err := RunNL2SVAHumanPassK(models, []int{1, 3, 5}, Options{Limit: 15, Samples: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	if r.FuncK[5] < r.FuncK[1] {
		t.Errorf("func@5 (%f) must be >= func@1 (%f)", r.FuncK[5], r.FuncK[1])
	}
	if r.SyntaxK[5] < r.SyntaxK[1] {
		t.Errorf("syntax@5 must be >= syntax@1")
	}
	if FormatTable2(reports) == "" {
		t.Fatalf("table 2 must render")
	}
}

func TestJudgeDesign(t *testing.T) {
	inst := rtlgen.GenerateFSM(rtlgen.FSMParams{States: 4, Edges: 6, Width: 8, Complexity: 2, Seed: 9})
	// ground-truth successor assertion must be provable
	succ := inst.FSM.Succ[0]
	body := "fsm_out == S0 |=> ("
	for i, tgt := range succ {
		if i > 0 {
			body += " || "
		}
		body += "fsm_out == S" + string(rune('0'+tgt))
	}
	body += ")"
	good := "assert property (@(posedge clk) disable iff (tb_reset) " + body + ");"
	syn, proven := JudgeDesign(inst, good, 0)
	if !syn || !proven {
		t.Fatalf("ground-truth assertion: syntax=%v proven=%v\n%s", syn, proven, good)
	}
	// DUT-internal signal reference must fail syntax (elaboration)
	bad := "assert property (@(posedge clk) disable iff (tb_reset) state == 'd0);"
	syn, _ = JudgeDesign(inst, bad, 0)
	if syn {
		t.Fatalf("DUT-internal signal must fail elaboration")
	}
	// wrong successor claim parses but is not proven
	wrong := "assert property (@(posedge clk) disable iff (tb_reset) fsm_out == S0 |=> (fsm_out == S0));"
	if intNotIn(succ, 0) {
		syn, proven = JudgeDesign(inst, wrong, 0)
		if !syn {
			t.Fatalf("wrong claim must still pass syntax")
		}
		if proven {
			t.Fatalf("wrong claim must not be proven")
		}
	}
}

func intNotIn(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return false
		}
	}
	return true
}

func TestRunDesignSmall(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o")}
	reports, err := RunDesign2SVA(models, "fsm", Options{Limit: 4, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	if r.SyntaxK[5] < r.SyntaxK[1] || r.FuncK[5] < r.FuncK[1] {
		t.Fatalf("pass@5 must dominate pass@1: %+v", r)
	}
	if FormatTable5(reports, reports) == "" {
		t.Fatalf("table 5 must render")
	}
}

func TestFiguresRender(t *testing.T) {
	f2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2, "Figure 2") {
		t.Fatalf("figure 2 malformed")
	}
	if !strings.Contains(Figure3(30), "Figure 3") {
		t.Fatalf("figure 3 malformed")
	}
	if !strings.Contains(Figure4(), "pipeline") {
		t.Fatalf("figure 4 malformed")
	}
	f6, err := Figure6([]llm.Model{llm.ModelByName("gpt-4o")}, Options{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f6, "corr(BLEU, Func)") {
		t.Fatalf("figure 6 malformed:\n%s", f6)
	}
}

func TestTable6(t *testing.T) {
	out := FormatTable6()
	for _, want := range []string{"1R1W FIFO", "Arbiter", "79"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 6 missing %q:\n%s", want, out)
		}
	}
}
