package core

import (
	"fmt"
	"strings"

	"fveval/internal/equiv"
	"fveval/internal/helpergen"
	"fveval/internal/llm"
	"fveval/internal/mc"
	"fveval/internal/rtl"
	"fveval/internal/sva"
)

// parseHelperSet splits a snippet containing one or more labeled
// concurrent assertions into parsed helper assertions. Statements are
// delimited by semicolons (the SVA expression grammar in this repo has
// no statement-internal semicolons); non-assert statements are
// ignored so prose-free wrappers survive, but any malformed or
// unterminated assert fails the whole set — the response's syntax
// metric is all-or-nothing, like the tool compile step it mirrors.
func parseHelperSet(code string) ([]*sva.Assertion, bool) {
	var out []*sva.Assertion
	start := 0
	for i := 0; i < len(code); i++ {
		if code[i] != ';' {
			continue
		}
		stmt := strings.TrimSpace(code[start : i+1])
		start = i + 1
		if !strings.Contains(stmt, "assert") {
			continue
		}
		a, err := parseCandidate(stmt)
		if err != nil {
			return nil, false
		}
		if sva.Validate(a) != nil {
			return nil, false
		}
		out = append(out, a)
	}
	if strings.Contains(code[start:], "assert") {
		return nil, false // unterminated assert statement
	}
	return out, len(out) > 0
}

// JudgeHelper runs the AGR evaluation flow on one helper-set response:
// parse the candidate helpers, elaborate the design+bench system with
// the stuck target spliced in, and run the prove-then-assume lemma
// pipeline (mc.CheckWithLemmas). The three metrics mirror the other
// task families' lattice:
//
//	syntaxOK — every candidate helper parses, validates, and
//	           elaborates against the design;
//	valid    — every candidate helper is itself proved (helper
//	           validity in the paper's AGR scoring);
//	unlocked — the target, unprovable alone by construction, is
//	           proved with the candidate helpers assumed.
func JudgeHelper(inst *helpergen.Instance, snippet string, opt mc.Options) (syntaxOK, valid, unlocked bool) {
	helpers, ok := parseHelperSet(snippet)
	if !ok {
		return false, false, false
	}
	merged := insertBeforeEndmodule(inst.Bench, inst.Target)
	f, err := parseDesignBench(inst.Design, merged)
	if err != nil {
		return false, false, false
	}
	sys, err := rtl.ElaborateBound(f, inst.DUTTop, inst.BenchTop, nil)
	if err != nil {
		return false, false, false
	}
	res, lemmas, err := mc.CheckWithLemmas(sys, inst.TargetAst, helpers, opt)
	if err != nil {
		// elaboration error inside a property (undeclared signals etc.)
		// counts against the syntax metric, like the other judges
		return false, false, false
	}
	valid = true
	for _, lm := range lemmas {
		if !lm.Proved {
			valid = false
		}
	}
	return true, valid, res.Status == mc.Proven
}

// RefineFeedback is the CEX-guided refinement check (DESIGN.md §12):
// it judges a translation response the same way JudgeTranslation does
// and, when the candidate is not equivalent to the reference, returns
// an error whose text carries the concrete witness trace — the
// feedback the llm.FeedbackModel seam renders into the retry prompt.
// A nil return means the response needs no refinement.
func RefineFeedback(response string, ref *sva.Assertion, sigs *equiv.Sigs, cache *equiv.Cache, opt equiv.Options) error {
	code := llm.ExtractCode(response)
	cand, err := parseCandidate(code)
	if err != nil {
		return fmt.Errorf("the assertion does not parse: %v", err)
	}
	if err := sva.Validate(cand); err != nil {
		return fmt.Errorf("the assertion does not validate: %v", err)
	}
	res, err := cache.Check(cand, ref, sigs, opt)
	if err != nil {
		return fmt.Errorf("the assertion does not elaborate: %v", err)
	}
	if res.Verdict == equiv.Equivalent {
		return nil
	}
	var b strings.Builder
	b.WriteString("the assertion is not equivalent to the intended property")
	if res.AB != nil {
		b.WriteString("; counterexample trace satisfying your assertion but violating the intended property:\n")
		b.WriteString(res.AB.String())
	}
	if res.BA != nil {
		b.WriteString("; counterexample trace satisfying the intended property but violating your assertion:\n")
		b.WriteString(res.BA.String())
	}
	return fmt.Errorf("%s", strings.TrimRight(b.String(), "\n"))
}
