// Package obs is the run-tracing subsystem: hierarchical spans with
// typed attributes, recorded into a per-run bounded ring, with
// cross-process stitching for distributed runs and a commutative
// per-phase wall-clock profile that merges across shards exactly like
// the formal-backend snapshot.
//
// Tracing is off by default. A run opts in by placing a *Recorder in
// its context (NewContext); every instrumentation site first asks the
// context for the recorder (or a parent span) and gets nil when
// tracing is off, so the hot path pays one pointer test. All Span
// methods are nil-safe no-ops, which keeps call sites branch-free:
//
//	ctx, sp := obs.Start(ctx, "job")
//	sp.SetStr("model", m).SetInt("sample", int64(s))
//	defer sp.End()
//
// The package is intentionally zero-dependency (stdlib only) and does
// not know about HTTP, JSON wire formats beyond its own span shape, or
// any fveval layer above it.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Phase buckets a span's duration for the per-run wall-clock rollup.
// Only leaf work is phased — parents deliberately carry no phase so a
// phase total never double-counts nested spans.
type Phase string

const (
	PhaseQueue  Phase = "queue"  // admission-queue wait (submit → dequeue)
	PhasePrompt Phase = "prompt" // model generation
	PhaseParse  Phase = "parse"  // candidate parse + validate + elaboration
	PhaseSim    Phase = "sim"    // bit-parallel simulation prefilter
	PhaseSAT    Phase = "sat"    // SAT session ramp steps / BMC frames
	PhaseBLEU   Phase = "bleu"   // BLEU scoring
)

// Attr is one typed span attribute. T discriminates which value field
// is live ("s", "i", or "b"), so zero values round-trip unambiguously.
type Attr struct {
	Key  string `json:"k"`
	T    string `json:"t"`
	Str  string `json:"s,omitempty"`
	Int  int64  `json:"i,omitempty"`
	Bool bool   `json:"b,omitempty"`
}

// Value returns the live value as an interface, for display encoders.
func (a Attr) Value() any {
	switch a.T {
	case "i":
		return a.Int
	case "b":
		return a.Bool
	default:
		return a.Str
	}
}

// SpanData is the completed-span wire shape: what the ring stores,
// what /v1/runs/{id}/trace streams, and what shard partials ship back
// to their coordinator. Start is absolute wall-clock (UnixNano), so
// spans recorded on different machines stitch onto one timeline.
type SpanData struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"` // 0 = root of its recorder
	Name   string `json:"name"`
	Phase  Phase  `json:"phase,omitempty"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// TraceContext is the wire trace context a coordinator serializes into
// a shard request. Its presence on a request is what turns tracing on
// for that shard. Parent names the coordinator-side span the shard's
// work belongs to; it is informational on the wire — workers record a
// local root (parent 0) and the coordinator re-roots the adopted spans
// itself, because a coordinator-space ID embedded in worker spans
// would collide with the worker's own ID space.
type TraceContext struct {
	Parent uint64 `json:"parent,omitempty"`
	// Cap is the requested completed-span ring capacity (0 means
	// DefaultCap). A coordinator forwards its own capacity so worker
	// rings are sized like the tree they feed; heavy runs (deep SAT
	// ramps) need more than DefaultCap to keep their root structure.
	Cap int `json:"cap,omitempty"`
}

// TraceData is a shard's span contribution riding back on its partial:
// the worker-side completed spans plus that recorder's drop count.
type TraceData struct {
	Spans   []SpanData `json:"spans,omitempty"`
	Dropped int64      `json:"dropped,omitempty"`
}

// DefaultCap is the default completed-span ring capacity per run.
const DefaultCap = 4096

// Recorder owns one run's trace: an atomic span-ID allocator, a
// bounded ring of completed spans (oldest overwritten first, each
// overwrite counted), and the per-phase profile. All methods are safe
// for concurrent use and nil-safe, so an untraced run can thread a nil
// *Recorder everywhere.
type Recorder struct {
	nextID atomic.Uint64
	now    func() time.Time

	mu      sync.Mutex
	ring    []SpanData
	head    int // oldest element once the ring has wrapped
	max     int
	dropped int64
	profile Profile
}

// NewRecorder builds a recorder with the given ring capacity
// (<= 0 means DefaultCap).
func NewRecorder(capacity int) *Recorder {
	return NewRecorderClock(capacity, time.Now)
}

// NewRecorderClock is NewRecorder with an injectable clock, for
// deterministic tests and golden fixtures.
func NewRecorderClock(capacity int, now func() time.Time) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{now: now, max: capacity}
}

// Cap returns the ring capacity (0 for a nil recorder), for
// coordinators forwarding their capacity to shard workers.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.max
}

// Start opens a live span under the given parent ID (0 = root). The
// span is not visible in snapshots until End.
func (r *Recorder) Start(name string, parent uint64) *Span {
	if r == nil {
		return nil
	}
	return &Span{rec: r, data: SpanData{
		ID: r.nextID.Add(1), Parent: parent,
		Name: name, Start: r.now().UnixNano(),
	}}
}

// record lands one completed span in the ring.
func (r *Recorder) record(d SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.profile.bump(d.Phase, d.Dur)
	r.push(d)
}

// push appends under r.mu, overwriting the oldest span when full.
func (r *Recorder) push(d SpanData) {
	if len(r.ring) < r.max {
		r.ring = append(r.ring, d)
		return
	}
	r.ring[r.head] = d
	r.head = (r.head + 1) % r.max
	r.dropped++
}

// Snapshot copies the completed spans in completion order (oldest
// first) plus the exact count of spans the ring has dropped.
func (r *Recorder) Snapshot() ([]SpanData, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, 0, len(r.ring))
	out = append(out, r.ring[r.head:]...)
	out = append(out, r.ring[:r.head]...)
	return out, r.dropped
}

// Profile returns the per-phase rollup accumulated so far. Adopted
// remote spans are excluded by design: a shard's phases travel in its
// partial's Stats and merge commutatively there, so folding them here
// too would double-count.
func (r *Recorder) Profile() Profile {
	if r == nil {
		return Profile{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.profile
}

// Adopt stitches a remote recorder's completed spans into this one:
// every span gets a fresh local ID, parent links within the batch are
// remapped, and spans whose parent is outside the batch (the remote
// roots, or spans orphaned by the remote ring) re-root under parent.
// The remote drop count folds into the local one.
func (r *Recorder) Adopt(t *TraceData, parent uint64) {
	if r == nil || t == nil {
		return
	}
	ids := make(map[uint64]uint64, len(t.Spans))
	for _, d := range t.Spans {
		ids[d.ID] = r.nextID.Add(1)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropped += t.Dropped
	for _, d := range t.Spans {
		d.ID = ids[d.ID]
		if mapped, ok := ids[d.Parent]; ok && d.Parent != 0 {
			d.Parent = mapped
		} else {
			d.Parent = parent
		}
		r.push(d)
	}
}

// Span is a live (unfinished) span. Spans are owned by the goroutine
// that started them; all methods are nil-safe so untraced runs pay
// only the nil test.
type Span struct {
	rec   *Recorder
	ended bool
	data  SpanData
}

// ID returns the span's recorder-local ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// Child opens a sub-span on the same recorder.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.Start(name, s.data.ID)
}

// SetPhase buckets this span's eventual duration into the per-run
// profile (leaf spans only — see Phase).
func (s *Span) SetPhase(p Phase) *Span {
	if s != nil {
		s.data.Phase = p
	}
	return s
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) *Span {
	if s != nil {
		s.data.Attrs = append(s.data.Attrs, Attr{Key: key, T: "s", Str: v})
	}
	return s
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) *Span {
	if s != nil {
		s.data.Attrs = append(s.data.Attrs, Attr{Key: key, T: "i", Int: v})
	}
	return s
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) *Span {
	if s != nil {
		s.data.Attrs = append(s.data.Attrs, Attr{Key: key, T: "b", Bool: v})
	}
	return s
}

// End completes the span and lands it in the recorder ring. Double
// End is a no-op, so defer sp.End() composes with early explicit ends.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.data.Dur = s.rec.now().UnixNano() - s.data.Start
	s.rec.record(s.data)
}

// ---- context plumbing ---------------------------------------------------

type recKey struct{}
type spanKey struct{}

// NewContext returns ctx carrying the recorder; instrumentation sites
// downstream will record into it.
func NewContext(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recKey{}, r)
}

// FromContext returns the context's recorder, or nil when the run is
// untraced — the single pointer test gating every instrumentation site.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recKey{}).(*Recorder)
	return r
}

// ContextWithSpan returns ctx with sp as the current span, the parent
// for subsequent Start calls.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the context's current span (nil when untraced).
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Start opens a span under the context's current span (or as a root)
// and returns a context carrying it. When the context has no recorder
// it returns (ctx, nil) after one pointer test — the untraced fast
// path.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	rec := FromContext(ctx)
	if rec == nil {
		return ctx, nil
	}
	sp := rec.Start(name, SpanFrom(ctx).ID())
	return ContextWithSpan(ctx, sp), sp
}
