package obs

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// fakeClock returns a deterministic clock that starts at startNS and
// advances stepNS per call.
func fakeClock(startNS, stepNS int64) func() time.Time {
	t := startNS - stepNS
	return func() time.Time {
		t += stepNS
		return time.Unix(0, t)
	}
}

// TestSpanTreeWellFormed grows a pseudo-random span tree and checks
// the structural invariants every snapshot must satisfy: unique
// non-zero IDs, parents that exist (or are roots), non-negative
// durations, completion-ordered output, and zero drops under capacity.
func TestSpanTreeWellFormed(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	rec := NewRecorderClock(0, fakeClock(1_000_000_000, 1_000))
	root := rec.Start("root", 0)
	live := []*Span{root}
	total := 1
	for i := 0; i < 200; i++ {
		p := live[rnd.Intn(len(live))]
		c := p.Child(fmt.Sprintf("s%d", i))
		if rnd.Intn(3) == 0 {
			c.SetPhase(PhaseSAT)
		}
		c.SetInt("i", int64(i))
		live = append(live, c)
		total++
		if rnd.Intn(2) == 0 {
			k := rnd.Intn(len(live))
			live[k].End()
			live = append(live[:k], live[k+1:]...)
		}
	}
	for _, s := range live {
		s.End()
	}
	root.End() // double End must be a no-op

	spans, dropped := rec.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped = %d under capacity", dropped)
	}
	if len(spans) != total {
		t.Fatalf("snapshot has %d spans, created %d", len(spans), total)
	}
	ids := make(map[uint64]bool, len(spans))
	for _, d := range spans {
		if d.ID == 0 {
			t.Fatalf("span %q has zero id", d.Name)
		}
		if ids[d.ID] {
			t.Fatalf("duplicate span id %d", d.ID)
		}
		ids[d.ID] = true
		if d.Dur < 0 {
			t.Errorf("span %d %q has negative duration %d", d.ID, d.Name, d.Dur)
		}
	}
	for _, d := range spans {
		if d.Parent != 0 && !ids[d.Parent] {
			t.Errorf("span %d has unknown parent %d", d.ID, d.Parent)
		}
	}
	// Completion order: end times never go backwards in the snapshot.
	prev := int64(0)
	for _, d := range spans {
		if end := d.Start + d.Dur; end < prev {
			t.Errorf("span %d out of completion order (end %d < %d)", d.ID, end, prev)
		} else {
			prev = end
		}
	}
}

// TestRingDropAccounting fills a tiny ring past capacity and checks
// the overwrite-oldest policy and the exact eviction count.
func TestRingDropAccounting(t *testing.T) {
	const capacity, n = 4, 10
	rec := NewRecorderClock(capacity, fakeClock(0, 1_000))
	for i := 0; i < n; i++ {
		rec.Start(fmt.Sprintf("s%d", i), 0).End()
	}
	spans, dropped := rec.Snapshot()
	if dropped != n-capacity {
		t.Fatalf("dropped = %d, want %d", dropped, n-capacity)
	}
	if len(spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(spans), capacity)
	}
	for i, d := range spans {
		if want := fmt.Sprintf("s%d", i+n-capacity); d.Name != want {
			t.Errorf("slot %d holds %q, want %q (oldest must go first)", i, d.Name, want)
		}
	}
}

// TestAdoptRemapsAndReroots adopts a remote shard trace and checks ID
// freshness, in-batch parent remapping, out-of-batch re-rooting, drop
// folding, and that adopted spans stay out of the local profile.
func TestAdoptRemapsAndReroots(t *testing.T) {
	remote := NewRecorderClock(0, fakeClock(0, 1_000))
	rroot := remote.Start("shard-run", 77) // 77 lives in the coordinator's ID space
	job := rroot.Child("job")
	job.SetPhase(PhaseSAT)
	job.End()
	orphan := remote.Start("orphan", 12345) // parent evicted from the remote ring
	orphan.End()
	rroot.End()
	remoteSpans, _ := remote.Snapshot()

	local := NewRecorderClock(0, fakeClock(0, 1_000))
	anchor := local.Start("shard", 0)
	anchor.End()
	local.Adopt(&TraceData{Spans: remoteSpans, Dropped: 3}, anchor.ID())

	spans, dropped := local.Snapshot()
	if dropped != 3 {
		t.Fatalf("dropped = %d, want the remote count 3", dropped)
	}
	byName := map[string]SpanData{}
	ids := map[uint64]bool{}
	for _, d := range spans {
		byName[d.Name] = d
		if ids[d.ID] {
			t.Fatalf("duplicate id %d after adoption", d.ID)
		}
		ids[d.ID] = true
	}
	if len(spans) != 4 {
		t.Fatalf("have %d spans, want anchor + 3 adopted", len(spans))
	}
	if got := byName["shard-run"].Parent; got != anchor.ID() {
		t.Errorf("remote root re-rooted under %d, want anchor %d", got, anchor.ID())
	}
	if got := byName["orphan"].Parent; got != anchor.ID() {
		t.Errorf("orphan re-rooted under %d, want anchor %d", got, anchor.ID())
	}
	if got, want := byName["job"].Parent, byName["shard-run"].ID; got != want {
		t.Errorf("in-batch parent remapped to %d, want %d", got, want)
	}
	if p := local.Profile(); p != (Profile{}) {
		t.Errorf("adopted spans leaked into the local profile: %+v", p)
	}
}

// TestProfile checks leaf-phase attribution and commutative merging.
func TestProfile(t *testing.T) {
	rec := NewRecorderClock(0, fakeClock(0, 1_000))
	sim := rec.Start("sim", 0)
	sim.SetPhase(PhaseSim)
	sim.End()
	rec.Start("unphased", 0).End()
	p := rec.Profile()
	if p.Sim.Count != 1 || p.Sim.NS != 1_000 {
		t.Errorf("sim stat = %+v, want one 1000ns sample", p.Sim)
	}
	if p.SAT != (PhaseStat{}) || p.Queue != (PhaseStat{}) {
		t.Errorf("unphased span leaked into a phase: %+v", p)
	}

	a := Profile{SAT: PhaseStat{NS: 5, Count: 2}, Sim: PhaseStat{NS: 1, Count: 1}}
	b := Profile{SAT: PhaseStat{NS: 7, Count: 1}, Queue: PhaseStat{NS: 3, Count: 1}}
	if a.Add(b) != b.Add(a) {
		t.Errorf("Add is not commutative: %+v vs %+v", a.Add(b), b.Add(a))
	}
	if a.Add(Profile{}) != a {
		t.Errorf("zero is not the Add identity")
	}
}

// TestUntracedFastPath pins the off-by-default contract: no recorder
// in the context means nil spans, and every nil method is a no-op.
func TestUntracedFastPath(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatalf("Start without a recorder returned a live span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without a recorder rewrapped the context")
	}
	sp.SetStr("k", "v").SetInt("i", 1).SetBool("b", true).SetPhase(PhaseSAT)
	sp.Child("c").End()
	sp.End()
	if sp.ID() != 0 {
		t.Errorf("nil span ID = %d", sp.ID())
	}
	var r *Recorder
	if s, d := r.Snapshot(); s != nil || d != 0 {
		t.Errorf("nil recorder snapshot = %v, %d", s, d)
	}
	if r.Profile() != (Profile{}) {
		t.Errorf("nil recorder profile non-zero")
	}
	r.Adopt(&TraceData{Spans: []SpanData{{ID: 1}}}, 0)
	if r.Start("x", 0) != nil {
		t.Errorf("nil recorder started a span")
	}
	if got := FromContext(ctx); got != nil {
		t.Errorf("FromContext on a bare context = %v", got)
	}
}
