package obs

// PhaseStat is one phase's accumulated wall time and span count.
type PhaseStat struct {
	NS    int64 `json:"ns"`
	Count int64 `json:"count"`
}

func (a PhaseStat) add(b PhaseStat) PhaseStat {
	return PhaseStat{NS: a.NS + b.NS, Count: a.Count + b.Count}
}

// Profile is the per-run wall-clock rollup by phase. Like
// formal.Snapshot it is a plain value with a field-wise commutative
// Add, so a sharded run's attribution is the sum of its workers' in
// any merge order. The zero value marshals away under omitzero, which
// keeps untraced report JSON byte-identical to pre-tracing output.
type Profile struct {
	Queue  PhaseStat `json:"queue,omitzero"`
	Prompt PhaseStat `json:"prompt,omitzero"`
	Parse  PhaseStat `json:"parse,omitzero"`
	Sim    PhaseStat `json:"sim,omitzero"`
	SAT    PhaseStat `json:"sat,omitzero"`
	BLEU   PhaseStat `json:"bleu,omitzero"`
}

// Add returns the field-wise sum; commutative and associative.
func (p Profile) Add(q Profile) Profile {
	return Profile{
		Queue:  p.Queue.add(q.Queue),
		Prompt: p.Prompt.add(q.Prompt),
		Parse:  p.Parse.add(q.Parse),
		Sim:    p.Sim.add(q.Sim),
		SAT:    p.SAT.add(q.SAT),
		BLEU:   p.BLEU.add(q.BLEU),
	}
}

// bump folds one completed span's duration into its phase bucket.
func (p *Profile) bump(ph Phase, ns int64) {
	var s *PhaseStat
	switch ph {
	case PhaseQueue:
		s = &p.Queue
	case PhasePrompt:
		s = &p.Prompt
	case PhaseParse:
		s = &p.Parse
	case PhaseSim:
		s = &p.Sim
	case PhaseSAT:
		s = &p.SAT
	case PhaseBLEU:
		s = &p.BLEU
	default:
		return
	}
	s.NS += ns
	s.Count++
}
