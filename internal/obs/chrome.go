package obs

import (
	"encoding/json"
	"sort"
)

// chromeEvent is one Chrome trace-event ("X" = complete event, ts and
// dur in microseconds) — the JSON shape Perfetto and chrome://tracing
// load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders completed spans as Chrome trace-event JSON.
// Timestamps are rebased to the earliest span so the timeline starts
// at zero. Lane ("tid") assignment is deterministic and greedy: spans
// are laid out in start order, each taking the first lane that is free
// at its start time, so a parent's children stack beneath it like a
// flame graph. Output bytes are a pure function of the input spans,
// which is what the golden fixture pins.
func ChromeTrace(spans []SpanData) ([]byte, error) {
	sorted := append([]SpanData(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})
	base := int64(0)
	if len(sorted) > 0 {
		base = sorted[0].Start
	}
	var laneEnd []int64 // per-lane last occupied end time
	events := make([]chromeEvent, 0, len(sorted))
	for _, d := range sorted {
		lane := -1
		for i, end := range laneEnd {
			if end <= d.Start {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = d.Start + d.Dur
		args := map[string]any{"id": d.ID}
		if d.Parent != 0 {
			args["parent"] = d.Parent
		}
		if d.Phase != "" {
			args["phase"] = string(d.Phase)
		}
		for _, a := range d.Attrs {
			args[a.Key] = a.Value()
		}
		events = append(events, chromeEvent{
			Name: d.Name, Ph: "X",
			Ts:  float64(d.Start-base) / 1e3,
			Dur: float64(d.Dur) / 1e3,
			Pid: 1, Tid: lane + 1,
			Args: args,
		})
	}
	return json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", "  ")
}
