package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSpans builds the deterministic span set behind the Chrome
// trace fixture: a service-shaped run (queue wait, then a job with a
// generation and a SAT ramp step) on a fixed 0.5ms-step clock.
func goldenSpans() []SpanData {
	rec := NewRecorderClock(0, fakeClock(1_000_000_000, 500_000))
	root := rec.Start("run", 0)
	q := root.Child("queue")
	q.SetPhase(PhaseQueue)
	q.End()
	job := root.Child("job")
	job.SetStr("model", "gpt-4").SetInt("sample", 0)
	gen := job.Child("generate")
	gen.SetPhase(PhasePrompt)
	gen.End()
	ramp := job.Child("ramp")
	ramp.SetPhase(PhaseSAT).SetInt("bound", 4).SetStr("verdict", "unsat")
	ramp.End()
	job.SetBool("func", true)
	job.End()
	root.End()
	spans, _ := rec.Snapshot()
	return spans
}

// TestChromeTraceGolden pins the exported bytes: the Chrome trace is a
// pure function of its input spans, so any drift in sorting, lane
// assignment, rebasing, or arg encoding shows up as a byte diff.
func TestChromeTraceGolden(t *testing.T) {
	got, err := ChromeTrace(goldenSpans())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.json")
	if *update {
		if err := os.WriteFile(golden, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(append(got, '\n'), want) {
		t.Errorf("Chrome trace drifted from golden:\n%s", got)
	}

	// The fixture must also be structurally loadable: every event a
	// complete ("X") event with µs timing and a positive lane.
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) != 5 {
		t.Fatalf("fixture has %d events, want 5", len(parsed.TraceEvents))
	}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 || ev.Tid < 1 {
			t.Errorf("malformed event %+v", ev)
		}
	}
}

// TestChromeTraceEmpty keeps the zero-span export loadable.
func TestChromeTraceEmpty(t *testing.T) {
	data, err := ChromeTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed["traceEvents"]; !ok {
		t.Errorf("empty trace lacks traceEvents: %s", data)
	}
}
