// Package sv provides the shared SystemVerilog lexer used by both the
// SVA assertion parser and the RTL parser, plus literal parsing
// helpers.
package sv

import (
	"fmt"
	"strings"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	SysIdent // $countones, $past, ...
	Number   // 42, 2'b01, 'd0, '0, 8'hFF
	String
	Punct   // operators and punctuation, in Text
	Keyword // SystemVerilog keyword, in Text
	Macro   // `NAME after preprocessing failures (kept for diagnostics)
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case SysIdent:
		return "system identifier"
	case Number:
		return "number"
	case String:
		return "string"
	case Punct:
		return "punctuation"
	case Keyword:
		return "keyword"
	case Macro:
		return "macro"
	}
	return "unknown"
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "EOF"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords recognized as Keyword tokens. Words outside this set lex as
// identifiers even if they are reserved elsewhere in the language.
var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "logic": true,
	"parameter": true, "localparam": true, "assign": true,
	"always": true, "always_ff": true, "always_comb": true,
	"begin": true, "end": true, "if": true, "else": true,
	"case": true, "endcase": true, "default": true,
	"posedge": true, "negedge": true, "or": true, "and": true,
	"not": true, "genvar": true, "generate": true, "endgenerate": true,
	"for": true, "assert": true, "assume": true, "cover": true,
	"property": true, "endproperty": true, "sequence": true,
	"endsequence": true, "disable": true, "iff": true,
	"intersect": true, "throughout": true, "within": true,
	"first_match": true, "strong": true, "weak": true,
	"s_eventually": true, "s_until": true, "until": true,
	"until_with": true, "s_until_with": true, "s_always": true,
	"s_nexttime": true, "nexttime": true, "implies": true,
	"initial": true, "function": true, "endfunction": true,
	"integer": true, "signed": true, "unsigned": true,
	"localparams": false,
}

// IsKeyword reports whether s lexes as a keyword.
func IsKeyword(s string) bool { return keywords[s] }

// multi-character punctuation, longest first.
var puncts = []string{
	"|->", "|=>", "<<<", ">>>", "===", "!==", "##", "&&", "||",
	"==", "!=", "<=", ">=", "<<", ">>", "~&", "~|", "~^", "^~",
	"+:", "-:", "::", "[*", "[=", "[->", "++", "--",
	"(", ")", "[", "]", "{", "}", ",", ";", ":", "@", "#", ".",
	"+", "-", "*", "/", "%", "<", ">", "!", "&", "|", "^", "~",
	"?", "=", "$", "`",
}

// Lexer tokenizes SystemVerilog source text.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isBasedDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ||
		c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '_' || c == '?'
}

// skipSpace consumes whitespace and comments. It returns an error for
// unterminated block comments.
func (lx *Lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := Pos{lx.line, lx.col}
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return fmt.Errorf("%v: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := Pos{lx.line, lx.col}
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peekByte()

	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if keywords[text] {
			return Token{Kind: Keyword, Text: text, Pos: pos}, nil
		}
		return Token{Kind: Ident, Text: text, Pos: pos}, nil

	case c == '$':
		if isIdentStart(lx.peekAt(1)) {
			start := lx.pos
			lx.advance() // $
			for lx.pos < len(lx.src) && isIdentCont(lx.peekByte()) {
				lx.advance()
			}
			return Token{Kind: SysIdent, Text: lx.src[start:lx.pos], Pos: pos}, nil
		}
		lx.advance()
		return Token{Kind: Punct, Text: "$", Pos: pos}, nil

	case isDigit(c):
		start := lx.pos
		for lx.pos < len(lx.src) && (isDigit(lx.peekByte()) || lx.peekByte() == '_') {
			lx.advance()
		}
		// sized based literal: 2'b01
		if lx.peekByte() == '\'' {
			return lx.lexBasedTail(start, pos)
		}
		return Token{Kind: Number, Text: lx.src[start:lx.pos], Pos: pos}, nil

	case c == '\'':
		// unsized based literal 'd0, or '0 / '1 fill literal
		return lx.lexBasedTail(lx.pos, pos)

	case c == '"':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) && lx.peekByte() != '"' {
			if lx.peekByte() == '\\' {
				lx.advance()
			}
			if lx.pos < len(lx.src) {
				lx.advance()
			}
		}
		if lx.pos >= len(lx.src) {
			return Token{}, fmt.Errorf("%v: unterminated string", pos)
		}
		text := lx.src[start:lx.pos]
		lx.advance() // closing quote
		return Token{Kind: String, Text: text, Pos: pos}, nil

	case c == '`':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		return Token{Kind: Macro, Text: lx.src[start:lx.pos], Pos: pos}, nil
	}

	for _, p := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			for range p {
				lx.advance()
			}
			return Token{Kind: Punct, Text: p, Pos: pos}, nil
		}
	}
	return Token{}, fmt.Errorf("%v: unexpected character %q", pos, string(c))
}

// lexBasedTail lexes from a ' (with optional preceding size already
// consumed starting at start).
func (lx *Lexer) lexBasedTail(start int, pos Pos) (Token, error) {
	lx.advance() // '
	c := lx.peekByte()
	switch c {
	case '0', '1':
		// unbased unsized fill literal '0 or '1 — but only if not
		// followed by more digits (then it's a malformed literal).
		lx.advance()
		return Token{Kind: Number, Text: lx.src[start:lx.pos], Pos: pos}, nil
	case 'b', 'B', 'd', 'D', 'h', 'H', 'o', 'O', 's', 'S':
		if c == 's' || c == 'S' {
			lx.advance()
			c = lx.peekByte()
			if c != 'b' && c != 'B' && c != 'd' && c != 'D' && c != 'h' && c != 'H' && c != 'o' && c != 'O' {
				return Token{}, fmt.Errorf("%v: malformed signed literal", pos)
			}
		}
		lx.advance() // base char
		digStart := lx.pos
		for lx.pos < len(lx.src) && isBasedDigit(lx.peekByte()) {
			lx.advance()
		}
		if lx.pos == digStart {
			return Token{}, fmt.Errorf("%v: based literal missing digits", pos)
		}
		return Token{Kind: Number, Text: lx.src[start:lx.pos], Pos: pos}, nil
	}
	return Token{}, fmt.Errorf("%v: malformed literal after '", pos)
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

// Literal describes a parsed SystemVerilog number literal.
type Literal struct {
	Value uint64
	Width int  // 0 = unsized
	Fill  bool // true for '0 / '1 fill literals
}

// ParseLiteral parses the text of a Number token.
func ParseLiteral(text string) (Literal, error) {
	orig := text
	if text == "'0" {
		return Literal{Value: 0, Fill: true}, nil
	}
	if text == "'1" {
		return Literal{Value: ^uint64(0), Fill: true}, nil
	}
	width := 0
	if i := strings.IndexByte(text, '\''); i >= 0 {
		if i > 0 {
			w, err := parseDec(text[:i])
			if err != nil {
				return Literal{}, fmt.Errorf("bad size in %q: %v", orig, err)
			}
			width = int(w)
		}
		text = text[i+1:]
		// skip signed marker
		if len(text) > 0 && (text[0] == 's' || text[0] == 'S') {
			text = text[1:]
		}
		if len(text) == 0 {
			return Literal{}, fmt.Errorf("empty literal %q", orig)
		}
		base := text[0]
		digits := strings.ReplaceAll(text[1:], "_", "")
		digits = strings.Map(func(r rune) rune {
			// two-state semantics: x/z/? lower to 0
			switch r {
			case 'x', 'X', 'z', 'Z', '?':
				return '0'
			}
			return r
		}, digits)
		var val uint64
		var err error
		switch base {
		case 'b', 'B':
			val, err = parseRadix(digits, 2)
		case 'o', 'O':
			val, err = parseRadix(digits, 8)
		case 'd', 'D':
			val, err = parseDec(digits)
		case 'h', 'H':
			val, err = parseRadix(digits, 16)
		default:
			return Literal{}, fmt.Errorf("unknown base %q in %q", string(base), orig)
		}
		if err != nil {
			return Literal{}, fmt.Errorf("bad digits in %q: %v", orig, err)
		}
		if width > 0 && width < 64 {
			val &= (1 << uint(width)) - 1
		}
		return Literal{Value: val, Width: width}, nil
	}
	v, err := parseDec(strings.ReplaceAll(text, "_", ""))
	if err != nil {
		return Literal{}, fmt.Errorf("bad number %q: %v", orig, err)
	}
	return Literal{Value: v}, nil
}

func parseDec(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", string(c))
		}
		v = v*10 + uint64(c-'0')
	}
	return v, nil
}

func parseRadix(s string, radix uint64) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q", string(c))
		}
		if d >= radix {
			return 0, fmt.Errorf("digit %q out of range for base %d", string(c), radix)
		}
		v = v*radix + d
	}
	return v, nil
}
