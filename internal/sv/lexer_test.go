package sv

import (
	"strings"
	"testing"
)

func kinds(ts []Token) []Kind {
	out := make([]Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func texts(ts []Token) []string {
	out := make([]string, 0, len(ts))
	for _, t := range ts {
		if t.Kind == EOF {
			continue
		}
		out = append(out, t.Text)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	ts, err := Tokenize("assert property (@(posedge clk) a |-> ##2 b);")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"assert", "property", "(", "@", "(", "posedge",
		"clk", ")", "a", "|->", "##", "2", "b", ")", ";"}
	got := texts(ts)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestNumberLiterals(t *testing.T) {
	cases := []struct {
		in    string
		value uint64
		width int
		fill  bool
	}{
		{"42", 42, 0, false},
		{"1_000", 1000, 0, false},
		{"2'b01", 1, 2, false},
		{"2'b00", 0, 2, false},
		{"8'hFF", 255, 8, false},
		{"'d0", 0, 0, false},
		{"'d15", 15, 0, false},
		{"4'd9", 9, 4, false},
		{"3'o7", 7, 3, false},
		{"'0", 0, 0, true},
		{"'1", ^uint64(0), 0, true},
		{"4'b1x0z", 0b1000, 4, false}, // x/z lower to 0 in two-state
		{"2'b111", 3, 2, false},       // truncated to width
	}
	for _, c := range cases {
		ts, err := Tokenize(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if ts[0].Kind != Number {
			t.Fatalf("%s: kind %v", c.in, ts[0].Kind)
		}
		lit, err := ParseLiteral(ts[0].Text)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if lit.Value != c.value || lit.Width != c.width || lit.Fill != c.fill {
			t.Fatalf("%s: got %+v want value=%d width=%d fill=%v",
				c.in, lit, c.value, c.width, c.fill)
		}
	}
}

func TestSysIdents(t *testing.T) {
	ts, err := Tokenize("$countones(sig) $onehot0({a,b}) $past(x, 2)")
	if err != nil {
		t.Fatal(err)
	}
	var sys []string
	for _, tok := range ts {
		if tok.Kind == SysIdent {
			sys = append(sys, tok.Text)
		}
	}
	want := []string{"$countones", "$onehot0", "$past"}
	if strings.Join(sys, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v want %v", sys, want)
	}
}

func TestOperators(t *testing.T) {
	ts, err := Tokenize("a !== b === c ~^ d <<< 2 >>> 1 |=> e ##[0:$] f")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(texts(ts), " ")
	want := "a !== b === c ~^ d <<< 2 >>> 1 |=> e ## [ 0 : $ ] f"
	if joined != want {
		t.Fatalf("got %q want %q", joined, want)
	}
}

func TestComments(t *testing.T) {
	ts, err := Tokenize("a // line comment\n/* block\ncomment */ b")
	if err != nil {
		t.Fatal(err)
	}
	got := texts(ts)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	if _, err := Tokenize("a /* never closed"); err == nil {
		t.Fatalf("expected error")
	}
}

func TestMacroToken(t *testing.T) {
	ts, err := Tokenize("`WIDTH")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Kind != Macro || ts[0].Text != "WIDTH" {
		t.Fatalf("got %v %q", ts[0].Kind, ts[0].Text)
	}
}

func TestPositions(t *testing.T) {
	ts, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Pos.Line != 1 || ts[0].Pos.Col != 1 {
		t.Fatalf("a at %v", ts[0].Pos)
	}
	if ts[1].Pos.Line != 2 || ts[1].Pos.Col != 3 {
		t.Fatalf("b at %v", ts[1].Pos)
	}
}

func TestStrings(t *testing.T) {
	ts, err := Tokenize(`"hello world"`)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Kind != String || ts[0].Text != "hello world" {
		t.Fatalf("got %v %q", ts[0].Kind, ts[0].Text)
	}
	if _, err := Tokenize(`"unterminated`); err == nil {
		t.Fatalf("expected error for unterminated string")
	}
}

func TestKeywordSet(t *testing.T) {
	for _, kw := range []string{"module", "s_eventually", "strong", "iff", "throughout"} {
		if !IsKeyword(kw) {
			t.Errorf("%s must be a keyword", kw)
		}
	}
	for _, id := range []string{"eventually", "foo", "clk", "tb_reset"} {
		if IsKeyword(id) {
			t.Errorf("%s must not be a keyword", id)
		}
	}
}

func TestMalformedLiterals(t *testing.T) {
	for _, bad := range []string{"4'", "'b", "2'q01"} {
		if _, err := Tokenize(bad); err == nil {
			t.Errorf("%q: expected lex error", bad)
		}
	}
}
