package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"fveval/internal/task"
)

// HTTPRunner drives one fvevald worker over its /v1/runs API: submit
// the shard as a partial run, stream its progress events (forwarded to
// req.Progress), and fetch the partial report once the run lands in a
// terminal state. Cancelling ctx cancels the remote run (best-effort
// DELETE) before returning.
type HTTPRunner struct {
	base   string
	client *http.Client
}

// NewHTTPRunner builds a worker client for a fvevald base URL such as
// "http://10.0.0.7:8080". No request timeout is set on the client —
// shard attempts are bounded by the coordinator's ShardTimeout.
func NewHTTPRunner(baseURL string) *HTTPRunner {
	return &HTTPRunner{base: strings.TrimRight(baseURL, "/"), client: &http.Client{}}
}

// Name identifies the worker by its base URL.
func (r *HTTPRunner) Name() string { return r.base }

// errorBody extracts the service's {"error": ...} payload.
func errorBody(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// Run executes one shard on the remote worker.
func (r *HTTPRunner) Run(ctx context.Context, req task.Request) (*task.Partial, error) {
	body, err := json.Marshal(task.Submission{Request: req, Partial: true})
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("dist: %s: submit: %w", r.base, err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		msg := errorBody(resp)
		resp.Body.Close()
		return nil, fmt.Errorf("dist: %s: submit: status %d: %s", r.base, resp.StatusCode, msg)
	}
	if err := dec.Decode(&submitted); err != nil || submitted.ID == "" {
		resp.Body.Close()
		return nil, fmt.Errorf("dist: %s: submit: bad response (%v)", r.base, err)
	}
	resp.Body.Close()

	// From here on the remote run exists; if we bail out for any
	// reason (cancellation, timeout, stream breakage) tell the worker
	// to stop burning cycles on it.
	finished := false
	defer func() {
		if !finished {
			r.cancelRemote(submitted.ID)
		}
	}()

	terminal, err := r.streamEvents(ctx, submitted.ID, req.Progress)
	if err != nil {
		return nil, err
	}
	if terminal != "done" {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("dist: %s: run %s ended %s", r.base, submitted.ID, terminal)
	}

	partial, err := r.fetchPartial(ctx, submitted.ID)
	if err != nil {
		return nil, err
	}
	finished = true
	return partial, nil
}

// streamEvents follows the NDJSON event stream, forwarding progress
// until the terminal status line.
func (r *HTTPRunner) streamEvents(ctx context.Context, id string, progress func(task.Event)) (string, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return "", err
	}
	resp, err := r.client.Do(httpReq)
	if err != nil {
		return "", fmt.Errorf("dist: %s: event stream: %w", r.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("dist: %s: event stream: status %d: %s", r.base, resp.StatusCode, errorBody(resp))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return "", fmt.Errorf("dist: %s: bad event line %q: %w", r.base, line, err)
		}
		if probe.Status != "" {
			if probe.Status == "error" {
				return probe.Status, fmt.Errorf("dist: %s: run %s failed: %s", r.base, id, probe.Error)
			}
			return probe.Status, nil
		}
		if progress != nil {
			var ev task.Event
			if err := json.Unmarshal(line, &ev); err == nil {
				progress(ev)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("dist: %s: event stream broke: %w", r.base, err)
	}
	return "", fmt.Errorf("dist: %s: event stream ended without a terminal status", r.base)
}

// fetchPartial retrieves the finished run's partial report.
func (r *HTTPRunner) fetchPartial(ctx context.Context, id string) (*task.Partial, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/v1/runs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("dist: %s: fetch: %w", r.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: %s: fetch: status %d: %s", r.base, resp.StatusCode, errorBody(resp))
	}
	var view struct {
		Status  string        `json:"status"`
		Error   string        `json:"error"`
		Partial *task.Partial `json:"partial"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("dist: %s: fetch: %w", r.base, err)
	}
	if view.Partial == nil {
		return nil, fmt.Errorf("dist: %s: run %s carries no partial (status %s %s)", r.base, id, view.Status, view.Error)
	}
	return view.Partial, nil
}

// cancelRemote issues a best-effort DELETE so an abandoned shard stops
// evaluating; it runs on its own short deadline because the caller's
// ctx is typically already cancelled.
func (r *HTTPRunner) cancelRemote(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodDelete, r.base+"/v1/runs/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := r.client.Do(httpReq); err == nil {
		resp.Body.Close()
	}
}
