package dist

import (
	"context"
	"strings"

	"fveval/internal/service/client"
	"fveval/internal/task"
)

// HTTPRunner drives one fvevald worker over its v1 API: submit the
// shard as a partial run, stream its progress events (forwarded to
// req.Progress), and fetch the partial report once the run lands in a
// terminal state. Cancelling ctx cancels the remote run (best-effort)
// before returning. The wire work lives in service/client.RunShard —
// this type only adapts it to the Runner interface.
type HTTPRunner struct {
	c *client.Client
}

// NewHTTPRunner builds a worker client for a fvevald base URL such as
// "http://10.0.0.7:8080". No request timeout is set — shard attempts
// are bounded by the coordinator's ShardTimeout.
func NewHTTPRunner(baseURL string) *HTTPRunner {
	return &HTTPRunner{c: client.New(strings.TrimRight(baseURL, "/"))}
}

// Name identifies the worker by its base URL.
func (r *HTTPRunner) Name() string { return r.c.Base() }

// Run executes one shard on the remote worker.
func (r *HTTPRunner) Run(ctx context.Context, req task.Request) (*task.Partial, error) {
	return r.c.RunShard(ctx, req)
}
