package dist

import (
	"context"
	"fmt"

	"fveval/internal/engine"
	"fveval/internal/task"
)

// Runner is one evaluation endpoint the coordinator can hand a shard
// to: an in-process engine (LocalRunner, Loopback) or a remote fvevald
// worker (HTTPRunner). Run executes one shard-scoped request and
// returns its partial; implementations must honor ctx cancellation
// and forward req.Progress events if they can observe them.
//
// Runners must be safe for the coordinator to call from one goroutine
// at a time; they need not support concurrent Run calls.
type Runner interface {
	// Name identifies the worker in progress events and errors.
	Name() string
	// Run evaluates one shard and returns its raw partial report.
	Run(ctx context.Context, req task.Request) (*task.Partial, error)
}

// LocalRunner drives an in-process task engine — the loopback worker
// for single-machine parallelism and for tests.
type LocalRunner struct {
	name string
	eng  *task.Engine
}

// NewLocalRunner wraps a task engine as a worker.
func NewLocalRunner(name string, eng *task.Engine) *LocalRunner {
	return &LocalRunner{name: name, eng: eng}
}

// Name identifies the worker.
func (r *LocalRunner) Name() string { return r.name }

// Run evaluates one shard on the wrapped engine.
func (r *LocalRunner) Run(ctx context.Context, req task.Request) (*task.Partial, error) {
	return r.eng.RunPartial(ctx, req)
}

// Loopback builds n isolated in-process workers, each with its own
// engine and memo pool — single-machine parallelism with no
// shared-memory coupling, so a loopback fleet behaves exactly like n
// separate fvevald processes (minus the HTTP hop).
func Loopback(n int, cfg engine.Config) []Runner {
	runners := make([]Runner, n)
	for i := range runners {
		runners[i] = NewLocalRunner(fmt.Sprintf("local-%d", i), task.NewEngine(cfg))
	}
	return runners
}
