package dist

import (
	"fmt"

	"fveval/internal/engine"
	"fveval/internal/task"
)

// Plan is the shard decomposition of one registry request: n
// shard-scoped requests whose Options.Shard slices tile the instance
// axis exactly once. Any complete set of partials produced from a plan
// recombines via task.MergeReports into the unsharded report.
type Plan struct {
	// Task is the resolved registry name.
	Task string
	// Shards are the shard-scoped requests; entry i carries
	// Options.Shard = {Index: i, Count: len(Shards)}.
	Shards []task.Request
}

// PlanShards splits a registry request into n shard-scoped requests.
// Grid-less tasks (static tables, pre-rendered figures) collapse to a
// single shard — splitting them buys nothing and the planner knows it
// from the spec. The request is validated here, so a coordinator can
// fail fast before touching any worker.
func PlanShards(req task.Request, n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: shard count %d out of range", n)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	spec, err := task.Lookup(req.Task)
	if err != nil {
		return nil, err
	}
	if !spec.Shardable() {
		n = 1
	}
	shards := make([]task.Request, n)
	for i := range shards {
		sub := req
		sub.Progress = nil // runners attach their own forwarding observer
		sub.Options.Shard = engine.Shard{Index: i, Count: n}
		shards[i] = sub
	}
	return &Plan{Task: spec.Name, Shards: shards}, nil
}
