// Package dist is the distributed-run layer on top of the task
// registry: a Coordinator splits any registry request into shard
// slices via the planner (PlanShards), dispatches them across a fleet
// of workers behind one Runner interface — in-process loopback engines
// or remote fvevald endpoints — streams merged per-job progress,
// retries failed or timed-out shards on healthy workers, and
// deterministically recombines the partial reports (task.MergeRuns)
// into a single Report whose Render and Encode output is
// byte-identical to an unsharded single-engine run.
//
// The merge invariant rests on three facts: judgments are
// deterministic per (instance, model, sample) cell, shards carry slot
// provenance (engine.Grid), and aggregation folds the reassembled
// lattice through exactly the code path a local run uses. Worker
// count, shard count, dispatch order, and retries therefore never
// change a byte of output — only wall-clock time.
package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fveval/internal/engine"
	"fveval/internal/obs"
	"fveval/internal/task"
)

// Options tunes a coordinator.
type Options struct {
	// Shards overrides the planned slice count (0 = one shard per
	// runner for shardable tasks). More shards than runners gives
	// finer-grained rebalancing when workers are uneven.
	Shards int
	// MaxAttempts bounds how often one shard may be attempted before
	// the whole run fails (0 = 3).
	MaxAttempts int
	// RunnerFailureLimit benches a worker after this many consecutive
	// failed attempts, so a dead endpoint stops eating retries
	// (0 = 2). Benched workers stay out for the rest of the run.
	RunnerFailureLimit int
	// ShardTimeout bounds one shard attempt; an expired attempt counts
	// as a failure and the shard is reassigned (0 = no timeout).
	ShardTimeout time.Duration
	// Progress receives merged coordinator events; calls are
	// serialized across workers and must not block for long.
	Progress func(Event)
}

// Event types.
const (
	// EventShardStart marks a shard attempt beginning on a worker.
	EventShardStart = "shard-start"
	// EventJob forwards one per-job progress event from a shard.
	EventJob = "job"
	// EventShardDone marks a shard's partial landing.
	EventShardDone = "shard-done"
	// EventShardRetry marks a failed attempt being requeued.
	EventShardRetry = "shard-retry"
	// EventWorkerDown marks a worker benched after consecutive failures.
	EventWorkerDown = "worker-down"
)

// Event is one merged progress notification from the coordinator.
type Event struct {
	Type   string       `json:"type"`
	Worker string       `json:"worker,omitempty"`
	Shard  engine.Shard `json:"shard,omitzero"`
	// Done / Total count completed shards at emission time.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Job is the forwarded per-job event (EventJob only).
	Job *task.Event `json:"job,omitempty"`
	// Err describes the failure (retry and bench events).
	Err string `json:"err,omitempty"`
}

// Result is one completed distributed run.
type Result struct {
	// Run is the merged run: unified Report plus folded stats.
	Run *task.Run `json:"run"`
	// Shards and Workers describe the plan that produced it.
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	// Attempts counts shard attempts including retries; Retries counts
	// the failed attempts that were requeued.
	Attempts int `json:"attempts"`
	Retries  int `json:"retries"`
}

// Coordinator fans registry requests out across a worker fleet.
type Coordinator struct {
	runners []Runner
	opts    Options
}

// New builds a coordinator over a non-empty fleet.
func New(runners []Runner, opts Options) (*Coordinator, error) {
	if len(runners) == 0 {
		return nil, fmt.Errorf("dist: no runners")
	}
	if opts.Shards < 0 || opts.MaxAttempts < 0 || opts.RunnerFailureLimit < 0 || opts.ShardTimeout < 0 {
		return nil, fmt.Errorf("dist: negative option")
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 3
	}
	if opts.RunnerFailureLimit == 0 {
		opts.RunnerFailureLimit = 2
	}
	return &Coordinator{runners: append([]Runner(nil), runners...), opts: opts}, nil
}

// item is one shard attempt in the dispatch queue.
type item struct {
	shard   int
	attempt int
}

// Run executes one registry request across the fleet and returns the
// merged result. Cancelling ctx aborts every in-flight shard and
// returns ctx.Err(). A shard that fails MaxAttempts times fails the
// run; losing every worker with shards outstanding fails the run.
func (c *Coordinator) Run(ctx context.Context, req task.Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, err := task.Lookup(req.Task)
	if err != nil {
		return nil, err
	}
	shards := c.opts.Shards
	switch {
	case !spec.Shardable():
		shards = 1
	case shards == 0:
		shards = len(c.runners)
	}
	plan, err := PlanShards(req, shards)
	if err != nil {
		return nil, err
	}
	n := len(plan.Shards)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	queue := make(chan item, n) // cap n: each shard has at most one outstanding attempt
	for i := 0; i < n; i++ {
		queue <- item{shard: i, attempt: 1}
	}

	var (
		mu        sync.Mutex
		partials  = make([]*task.Partial, n)
		remaining = n
		attempts  int
		retries   int
		fatal     error
		doneOnce  sync.Once
		done      = make(chan struct{})
	)
	var emitMu sync.Mutex
	emit := func(ev Event) {
		if c.opts.Progress == nil {
			return
		}
		emitMu.Lock()
		c.opts.Progress(ev)
		emitMu.Unlock()
	}

	var wg sync.WaitGroup
	for _, r := range c.runners {
		wg.Add(1)
		go func(r Runner) {
			defer wg.Done()
			consecutive := 0
			for {
				var it item
				select {
				case <-runCtx.Done():
					return
				case it = <-queue:
				}
				sub := plan.Shards[it.shard]
				shard := sub.Options.Shard
				sub.Progress = func(ev task.Event) {
					mu.Lock()
					d := n - remaining
					mu.Unlock()
					emit(Event{Type: EventJob, Worker: r.Name(), Shard: shard, Done: d, Total: n, Job: &ev})
				}
				// When the coordinator's run is traced, each attempt gets
				// its own shard span and the worker re-roots its spans
				// under it via the serialized trace context; the winning
				// partial's spans are adopted below, so HTTP and loopback
				// fleets stitch into one tree identically.
				_, shardSpan := obs.Start(runCtx, "shard")
				shardSpan.SetStr("worker", r.Name()).
					SetInt("shard", int64(it.shard)).
					SetInt("attempt", int64(it.attempt))
				sub.Trace = nil
				if shardSpan != nil {
					sub.Trace = &obs.TraceContext{
						Parent: shardSpan.ID(),
						Cap:    obs.FromContext(runCtx).Cap(),
					}
				}
				attemptCtx, cancelAttempt := runCtx, context.CancelFunc(func() {})
				if c.opts.ShardTimeout > 0 {
					attemptCtx, cancelAttempt = context.WithTimeout(runCtx, c.opts.ShardTimeout)
				}
				mu.Lock()
				attempts++
				d := n - remaining
				mu.Unlock()
				emit(Event{Type: EventShardStart, Worker: r.Name(), Shard: shard, Done: d, Total: n})

				p, err := r.Run(attemptCtx, sub)
				cancelAttempt()
				if err == nil && p != nil {
					shardSpan.SetBool("ok", true)
					shardSpan.End()
					consecutive = 0
					mu.Lock()
					first := false
					if partials[it.shard] == nil {
						partials[it.shard] = p
						remaining--
						first = true
					}
					rem := remaining
					mu.Unlock()
					if first {
						// Only the winning attempt's spans join the tree;
						// a duplicate partial (late retry racing the
						// original) would double-report the same work.
						obs.FromContext(runCtx).Adopt(p.Trace, shardSpan.ID())
					}
					emit(Event{Type: EventShardDone, Worker: r.Name(), Shard: shard, Done: n - rem, Total: n})
					if rem == 0 {
						doneOnce.Do(func() { close(done) })
						return
					}
					continue
				}
				if runCtx.Err() != nil {
					shardSpan.SetBool("ok", false)
					shardSpan.End()
					return // the run as a whole is over; not this worker's failure
				}
				if err == nil {
					err = fmt.Errorf("runner returned no partial")
				}
				shardSpan.SetBool("ok", false).SetStr("err", err.Error())
				shardSpan.End()
				consecutive++
				mu.Lock()
				if it.attempt >= c.opts.MaxAttempts {
					if fatal == nil {
						fatal = fmt.Errorf("dist: shard %s failed after %d attempts (last on %s): %w",
							shard, it.attempt, r.Name(), err)
					}
					mu.Unlock()
					cancel()
					return
				}
				retries++
				d = n - remaining
				mu.Unlock()
				emit(Event{Type: EventShardRetry, Worker: r.Name(), Shard: shard, Done: d, Total: n, Err: err.Error()})
				queue <- item{shard: it.shard, attempt: it.attempt + 1}
				if consecutive >= c.opts.RunnerFailureLimit {
					emit(Event{Type: EventWorkerDown, Worker: r.Name(), Done: d, Total: n, Err: err.Error()})
					return
				}
			}
		}(r)
	}

	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-done:
		cancel() // release workers parked on the queue
		<-finished
	case <-finished:
		// every worker exited: run done, fatal, or fleet exhausted
	case <-ctx.Done():
		cancel()
		<-finished
	}

	// All workers have exited; no further writes race these reads.
	if fatal != nil {
		return nil, fatal
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if remaining > 0 {
		return nil, fmt.Errorf("dist: %d of %d shards unfinished: no healthy workers left", remaining, n)
	}
	merged, err := task.MergeRuns(partials)
	if err != nil {
		return nil, err
	}
	return &Result{
		Run:    merged,
		Shards: n, Workers: len(c.runners),
		Attempts: attempts, Retries: retries,
	}, nil
}
