// Package dist is the distributed-run layer on top of the task
// registry: a Coordinator splits any registry request into shard
// slices via the planner (PlanShards), dispatches them across a fleet
// of workers behind one Runner interface — in-process loopback engines
// or remote fvevald endpoints — streams merged per-job progress,
// retries failed or timed-out shards with capped exponential backoff,
// trips a per-worker circuit breaker instead of permanently benching
// flaky endpoints, optionally hedges the straggler shard, and
// deterministically recombines the partial reports (task.MergeRuns)
// into a single Report whose Render and Encode output is
// byte-identical to an unsharded single-engine run.
//
// The merge invariant rests on three facts: judgments are
// deterministic per (instance, model, sample) cell, shards carry slot
// provenance (engine.Grid), and aggregation folds the reassembled
// lattice through exactly the code path a local run uses. Worker
// count, shard count, dispatch order, retries, hedges, and checkpoint
// restores therefore never change a byte of output — only wall-clock
// time.
package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fveval/internal/engine"
	"fveval/internal/fault"
	"fveval/internal/obs"
	"fveval/internal/task"
)

// Options tunes a coordinator.
type Options struct {
	// Shards overrides the planned slice count (0 = one shard per
	// runner for shardable tasks). More shards than runners gives
	// finer-grained rebalancing when workers are uneven.
	Shards int
	// MaxAttempts bounds how often one shard may be attempted before
	// the whole run fails (0 = 3). Hedge attempts don't count.
	MaxAttempts int
	// RunnerFailureLimit trips a worker's circuit breaker after this
	// many consecutive failed attempts (0 = 2). A tripped worker sits
	// out a cooldown (doubling per consecutive trip), then probes
	// half-open: one success closes the breaker, one failure re-trips.
	RunnerFailureLimit int
	// BreakerCooldown is the first trip's open interval (0 = 500ms).
	BreakerCooldown time.Duration
	// BackoffBase is the first retry's backoff ceiling; each further
	// attempt doubles it up to BackoffCap, and the actual delay is
	// drawn uniformly from [0, ceiling) — full jitter (0 = 50ms).
	BackoffBase time.Duration
	// BackoffCap caps the backoff ceiling (0 = 2s). A Retry-After hint
	// carried by the failure (api.Error) overrides a shorter draw.
	BackoffCap time.Duration
	// Seed makes retry jitter and hedge decisions reproducible; runs
	// with the same seed and arrival order draw the same delays (0 = 1).
	Seed int64
	// Hedge enables straggler re-dispatch: when exactly one shard
	// remains in flight and its attempt has outlived the HedgeQuantile
	// of completed shard durations, the shard is speculatively
	// re-dispatched to an idle worker; first result wins and the loser
	// is cancelled. Hedging refutes only on wall-clock, never on bytes.
	Hedge bool
	// HedgeQuantile picks the straggler threshold from completed shard
	// durations (0 = 0.9).
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge threshold so millisecond-scale
	// runs don't hedge spuriously (0 = 25ms).
	HedgeMinDelay time.Duration
	// ShardTimeout bounds one shard attempt; an expired attempt counts
	// as a failure and the shard is reassigned (0 = no timeout).
	ShardTimeout time.Duration
	// Completed seeds already-finished shards (checkpoint restore):
	// they are merged without being dispatched. Indices refer to the
	// plan this run produces, so the caller must pin Shards to the
	// count the checkpoints were cut against.
	Completed map[int]*task.Partial
	// OnPartial observes each shard's winning partial as it lands
	// (checkpointing hook). Called outside coordinator locks, possibly
	// concurrently for distinct shards; restored shards are not
	// re-announced.
	OnPartial func(shard, total int, p *task.Partial)
	// Progress receives merged coordinator events; calls are
	// serialized across workers and must not block for long.
	Progress func(Event)
}

// Event types.
const (
	// EventShardStart marks a shard attempt beginning on a worker.
	EventShardStart = "shard-start"
	// EventJob forwards one per-job progress event from a shard.
	EventJob = "job"
	// EventShardDone marks a shard's partial landing.
	EventShardDone = "shard-done"
	// EventShardRetry marks a failed attempt being requeued.
	EventShardRetry = "shard-retry"
	// EventShardHedge marks a speculative duplicate dispatch of the
	// straggler shard.
	EventShardHedge = "shard-hedge"
	// EventWorkerDown marks a worker's circuit breaker tripping open.
	EventWorkerDown = "worker-down"
	// EventWorkerUp marks a tripped worker's half-open probe
	// succeeding: the breaker closed and the worker is back.
	EventWorkerUp = "worker-up"
)

// Event is one merged progress notification from the coordinator.
type Event struct {
	Type   string       `json:"type"`
	Worker string       `json:"worker,omitempty"`
	Shard  engine.Shard `json:"shard,omitzero"`
	// Done / Total count completed shards at emission time.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Job is the forwarded per-job event (EventJob only).
	Job *task.Event `json:"job,omitempty"`
	// Err describes the failure (retry and breaker events).
	Err string `json:"err,omitempty"`
}

// Result is one completed distributed run.
type Result struct {
	// Run is the merged run: unified Report plus folded stats.
	Run *task.Run `json:"run"`
	// Shards and Workers describe the plan that produced it.
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	// Attempts counts shard attempts including retries and hedges;
	// Retries counts the failed attempts that were requeued.
	Attempts int `json:"attempts"`
	Retries  int `json:"retries"`
	// Hedges counts speculative straggler re-dispatches; Restored
	// counts shards seeded from checkpoints instead of dispatched.
	Hedges   int `json:"hedges,omitempty"`
	Restored int `json:"restored,omitempty"`
}

// retryAfterHinter is implemented by failures that carry an explicit
// server back-pressure hint (api.Error from a 429/503 Retry-After);
// the hint overrides a shorter jittered backoff draw.
type retryAfterHinter interface{ RetryAfterHint() time.Duration }

// Coordinator fans registry requests out across a worker fleet.
type Coordinator struct {
	runners []Runner
	opts    Options
}

// New builds a coordinator over a non-empty fleet.
func New(runners []Runner, opts Options) (*Coordinator, error) {
	if len(runners) == 0 {
		return nil, fmt.Errorf("dist: no runners")
	}
	if opts.Shards < 0 || opts.MaxAttempts < 0 || opts.RunnerFailureLimit < 0 || opts.ShardTimeout < 0 ||
		opts.BreakerCooldown < 0 || opts.BackoffBase < 0 || opts.BackoffCap < 0 ||
		opts.HedgeQuantile < 0 || opts.HedgeMinDelay < 0 {
		return nil, fmt.Errorf("dist: negative option")
	}
	if opts.HedgeQuantile > 1 {
		return nil, fmt.Errorf("dist: hedge quantile %v out of [0,1]", opts.HedgeQuantile)
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 3
	}
	if opts.RunnerFailureLimit == 0 {
		opts.RunnerFailureLimit = 2
	}
	if opts.BreakerCooldown == 0 {
		opts.BreakerCooldown = 500 * time.Millisecond
	}
	if opts.BackoffBase == 0 {
		opts.BackoffBase = 50 * time.Millisecond
	}
	if opts.BackoffCap == 0 {
		opts.BackoffCap = 2 * time.Second
	}
	if opts.HedgeQuantile == 0 {
		opts.HedgeQuantile = 0.9
	}
	if opts.HedgeMinDelay == 0 {
		opts.HedgeMinDelay = 25 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Coordinator{runners: append([]Runner(nil), runners...), opts: opts}, nil
}

// item is one shard attempt in the dispatch queue.
type item struct {
	shard   int
	attempt int
	// hedge marks a speculative duplicate: its failure neither counts
	// toward the shard's MaxAttempts nor requeues.
	hedge bool
	// notBefore delays dispatch (retry backoff).
	notBefore time.Time
}

// splitmix64 steps the deterministic jitter stream.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// breaker is one worker's circuit state, owned by its goroutine.
type breaker struct {
	failures  int // consecutive, since last success
	trips     int // consecutive trips, since last success
	open      bool
	openUntil time.Time
}

// Run executes one registry request across the fleet and returns the
// merged result. Cancelling ctx aborts every in-flight shard and
// returns ctx.Err(). A shard that fails MaxAttempts times fails the
// run.
func (c *Coordinator) Run(ctx context.Context, req task.Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, err := task.Lookup(req.Task)
	if err != nil {
		return nil, err
	}
	shards := c.opts.Shards
	switch {
	case !spec.Shardable():
		shards = 1
	case shards == 0:
		shards = len(c.runners)
	}
	plan, err := PlanShards(req, shards)
	if err != nil {
		return nil, err
	}
	n := len(plan.Shards)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu        sync.Mutex
		partials  = make([]*task.Partial, n)
		remaining = n
		attempts  int
		retries   int
		hedges    int
		restored  int
		durations []time.Duration        // completed shard wall times (hedge threshold input)
		started   = make([]time.Time, n) // latest attempt start per shard
		inflight  = make([]map[int]context.CancelFunc, n)
		curAtt    = make([]int, n) // latest chain attempt number per shard
		probeFree = make([]int, n) // half-open probe failures forgiven per shard
		hedged    = make([]bool, n)
		fatal     error
		doneOnce  sync.Once
		done      = make(chan struct{})
		rng       = uint64(c.opts.Seed)
	)
	for i := range inflight {
		inflight[i] = map[int]context.CancelFunc{}
	}

	// Checkpoint restore: seed completed shards straight into the merge
	// set. Indices outside the plan mean the checkpoints were cut
	// against a different shard count — refusing is what keeps resumed
	// output byte-identical instead of subtly mis-merged.
	for i, p := range c.opts.Completed {
		if p == nil {
			continue
		}
		if i < 0 || i >= n {
			return nil, fmt.Errorf("dist: checkpoint for shard %d outside plan of %d shards", i, n)
		}
		partials[i] = p
		remaining--
		restored++
	}

	// Cap 2n: per shard at most one retry-chain item plus one hedge is
	// ever outstanding, so sends below never block.
	queue := make(chan item, 2*n)
	for i := 0; i < n; i++ {
		if partials[i] == nil {
			queue <- item{shard: i, attempt: 1}
		}
	}

	var emitMu sync.Mutex
	emit := func(ev Event) {
		if c.opts.Progress == nil {
			return
		}
		emitMu.Lock()
		c.opts.Progress(ev)
		emitMu.Unlock()
	}

	// backoffDelay draws a full-jitter delay for the given upcoming
	// attempt: uniform in [0, min(base<<(attempt-2), cap)), bumped up
	// to any Retry-After hint the failure carried. Caller holds mu.
	backoffDelay := func(nextAttempt int, cause error) time.Duration {
		ceiling := c.opts.BackoffBase
		for i := 2; i < nextAttempt && ceiling < c.opts.BackoffCap; i++ {
			ceiling *= 2
		}
		if ceiling > c.opts.BackoffCap {
			ceiling = c.opts.BackoffCap
		}
		frac := float64(splitmix64(&rng)>>11) / float64(1<<53)
		delay := time.Duration(frac * float64(ceiling))
		var h retryAfterHinter
		if errors.As(cause, &h) {
			if hint := h.RetryAfterHint(); hint > delay {
				delay = hint
			}
		}
		return delay
	}

	if remaining == 0 {
		// Every shard restored from checkpoints: nothing to dispatch.
		merged, err := task.MergeRuns(partials)
		if err != nil {
			return nil, err
		}
		return &Result{
			Run:    merged,
			Shards: n, Workers: len(c.runners),
			Restored: restored,
		}, nil
	}

	var wg sync.WaitGroup
	for _, r := range c.runners {
		wg.Add(1)
		go func(r Runner) {
			defer wg.Done()
			var br breaker
			for {
				// Open breaker: sit out the cooldown, then the next item
				// this worker takes is its half-open probe.
				if wait := time.Until(br.openUntil); br.open && wait > 0 {
					select {
					case <-runCtx.Done():
						return
					case <-time.After(wait):
					}
				}
				var it item
				select {
				case <-runCtx.Done():
					return
				case it = <-queue:
				}
				// A dispatch taken while the breaker is open (cooldown
				// already served) is this worker's half-open probe.
				probe := br.open
				// Honor retry backoff. Parking this worker (rather than
				// reordering the queue) is fine: each shard's chain has
				// one outstanding item, so no ready work is behind it
				// for this worker that another idle worker can't take.
				if wait := time.Until(it.notBefore); wait > 0 {
					select {
					case <-runCtx.Done():
						return
					case <-time.After(wait):
					}
				}
				sub := plan.Shards[it.shard]
				shard := sub.Options.Shard

				mu.Lock()
				if partials[it.shard] != nil {
					// Stale work: the shard landed while this item sat
					// queued (hedge or late retry). Drop it.
					mu.Unlock()
					continue
				}
				attempts++
				aid := attempts
				if !it.hedge {
					curAtt[it.shard] = it.attempt
				}
				actx, acancel := context.WithCancel(runCtx)
				inflight[it.shard][aid] = acancel
				started[it.shard] = time.Now()
				d := n - remaining
				mu.Unlock()

				sub.Progress = func(ev task.Event) {
					mu.Lock()
					d := n - remaining
					mu.Unlock()
					emit(Event{Type: EventJob, Worker: r.Name(), Shard: shard, Done: d, Total: n, Job: &ev})
				}
				// When the coordinator's run is traced, each attempt gets
				// its own shard span and the worker re-roots its spans
				// under it via the serialized trace context; the winning
				// partial's spans are adopted below, so HTTP and loopback
				// fleets stitch into one tree identically.
				_, shardSpan := obs.Start(runCtx, "shard")
				shardSpan.SetStr("worker", r.Name()).
					SetInt("shard", int64(it.shard)).
					SetInt("attempt", int64(it.attempt))
				if it.hedge {
					shardSpan.SetBool("hedge", true)
				}
				sub.Trace = nil
				if shardSpan != nil {
					sub.Trace = &obs.TraceContext{
						Parent: shardSpan.ID(),
						Cap:    obs.FromContext(runCtx).Cap(),
					}
				}
				attemptCtx, cancelTimeout := actx, context.CancelFunc(func() {})
				if c.opts.ShardTimeout > 0 {
					attemptCtx, cancelTimeout = context.WithTimeout(actx, c.opts.ShardTimeout)
				}
				emit(Event{Type: EventShardStart, Worker: r.Name(), Shard: shard, Done: d, Total: n})

				attemptStart := time.Now()
				var p *task.Partial
				err := fault.Hit(fault.DistDispatch)
				if err == nil {
					p, err = r.Run(attemptCtx, sub)
					if err == nil && p != nil {
						// The worker did the work; the coordinator loses
						// the response (decode failure, dropped conn).
						if ferr := fault.Hit(fault.DistResponse); ferr != nil {
							p, err = nil, ferr
						}
					}
				}
				cancelTimeout()

				if err == nil && p != nil {
					mu.Lock()
					delete(inflight[it.shard], aid)
					first := partials[it.shard] == nil
					var losers []context.CancelFunc
					if first {
						partials[it.shard] = p
						remaining--
						durations = append(durations, time.Since(attemptStart))
						for _, c := range inflight[it.shard] {
							losers = append(losers, c)
						}
					}
					rem := remaining
					mu.Unlock()
					acancel()
					// First result wins; the racing attempt (original or
					// hedge) is cancelled and its outcome discarded.
					for _, c := range losers {
						c()
					}
					shardSpan.SetBool("ok", first)
					if !first {
						shardSpan.SetStr("err", "superseded")
					}
					shardSpan.End()
					if br.open {
						br.open = false
						emit(Event{Type: EventWorkerUp, Worker: r.Name(), Done: n - rem, Total: n})
					}
					br.failures, br.trips = 0, 0
					if first {
						// Only the winning attempt's spans join the tree; a
						// duplicate partial would double-report the work.
						obs.FromContext(runCtx).Adopt(p.Trace, shardSpan.ID())
						if c.opts.OnPartial != nil {
							c.opts.OnPartial(it.shard, n, p)
						}
						emit(Event{Type: EventShardDone, Worker: r.Name(), Shard: shard, Done: n - rem, Total: n})
					}
					if rem == 0 {
						doneOnce.Do(func() { close(done) })
						return
					}
					continue
				}

				acancel()
				if runCtx.Err() != nil {
					shardSpan.SetBool("ok", false)
					shardSpan.End()
					return // the run as a whole is over; not this worker's failure
				}
				mu.Lock()
				delete(inflight[it.shard], aid)
				superseded := partials[it.shard] != nil
				mu.Unlock()
				if superseded {
					// The racing attempt won and cancelled us mid-flight;
					// nothing failed from the run's point of view.
					shardSpan.SetBool("ok", false).SetStr("err", "superseded")
					shardSpan.End()
					continue
				}
				if err == nil {
					err = fmt.Errorf("runner returned no partial")
				}
				shardSpan.SetBool("ok", false).SetStr("err", err.Error())
				shardSpan.End()
				br.failures++
				var requeue bool
				var next item
				mu.Lock()
				if !it.hedge {
					// A failed half-open probe re-trips the breaker but does
					// not charge the shard's attempt budget: the worker is
					// still down, so the attempt never reached healthy
					// hardware — the old bench model never billed those
					// either. The per-shard exemption cap keeps a fully-dead
					// fleet terminating instead of probing forever.
					exempt := probe && probeFree[it.shard] < 3*len(c.runners)
					if exempt {
						probeFree[it.shard]++
					} else if it.attempt >= c.opts.MaxAttempts {
						if fatal == nil {
							fatal = fmt.Errorf("dist: shard %s failed after %d attempts (last on %s): %w",
								shard, it.attempt, r.Name(), err)
						}
						mu.Unlock()
						cancel()
						return
					}
					retries++
					next = item{
						shard:     it.shard,
						attempt:   it.attempt + 1,
						notBefore: time.Now().Add(backoffDelay(it.attempt+1, err)),
					}
					if exempt {
						next.attempt = it.attempt
					}
					requeue = true
				}
				d = n - remaining
				mu.Unlock()
				emit(Event{Type: EventShardRetry, Worker: r.Name(), Shard: shard, Done: d, Total: n, Err: err.Error()})
				if requeue {
					queue <- next
				}
				if br.open || br.failures >= c.opts.RunnerFailureLimit {
					// Trip (or, for a failed half-open probe, re-trip) the
					// breaker: cooldown doubles per consecutive trip
					// (capped), then the worker probes half-open again.
					cooldown := c.opts.BreakerCooldown
					for i := 0; i < br.trips && i < 4; i++ {
						cooldown *= 2
					}
					br.open = true
					br.openUntil = time.Now().Add(cooldown)
					br.trips++
					br.failures = 0
					emit(Event{Type: EventWorkerDown, Worker: r.Name(), Done: d, Total: n, Err: err.Error()})
				}
			}
		}(r)
	}

	// Hedger: when exactly one shard is left and its attempt has
	// outlived the quantile of completed shard durations, enqueue one
	// speculative duplicate for an idle worker. Refute-only on
	// wall-clock: the winning bytes are identical either way.
	if c.opts.Hedge {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(5 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-ticker.C:
				}
				mu.Lock()
				if remaining != 1 || len(durations) == 0 {
					mu.Unlock()
					continue
				}
				s := -1
				for i := range partials {
					if partials[i] == nil {
						s = i
						break
					}
				}
				if s < 0 || hedged[s] || len(inflight[s]) != 1 {
					// Not running right now (queued or backing off), or
					// already hedged: one hedge per shard.
					mu.Unlock()
					continue
				}
				sorted := append([]time.Duration(nil), durations...)
				sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
				threshold := sorted[int(c.opts.HedgeQuantile*float64(len(sorted)-1)+0.5)]
				if threshold < c.opts.HedgeMinDelay {
					threshold = c.opts.HedgeMinDelay
				}
				if time.Since(started[s]) < threshold {
					mu.Unlock()
					continue
				}
				hedged[s] = true
				hedges++
				it := item{shard: s, attempt: curAtt[s], hedge: true}
				d := n - remaining
				mu.Unlock()
				emit(Event{Type: EventShardHedge, Shard: plan.Shards[s].Options.Shard, Done: d, Total: n})
				queue <- it
			}
		}()
	}

	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-done:
		cancel() // release workers parked on the queue
		<-finished
	case <-finished:
		// every worker exited: run done, fatal, or parent cancelled
	case <-ctx.Done():
		cancel()
		<-finished
	}

	// All workers have exited; no further writes race these reads.
	if fatal != nil {
		return nil, fatal
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if remaining > 0 {
		return nil, fmt.Errorf("dist: %d of %d shards unfinished: no healthy workers left", remaining, n)
	}
	merged, err := task.MergeRuns(partials)
	if err != nil {
		return nil, err
	}
	return &Result{
		Run:    merged,
		Shards: n, Workers: len(c.runners),
		Attempts: attempts, Retries: retries,
		Hedges: hedges, Restored: restored,
	}, nil
}
