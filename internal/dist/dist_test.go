package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"fveval/internal/engine"
	"fveval/internal/task"
)

// smallRequest shrinks each registry task to a fast deterministic
// slice; every task stays covered.
func smallRequest(name string) task.Request {
	req := task.Request{Task: name, Options: engine.Config{Workers: 2}}
	switch name {
	case "nl2sva-human":
		req.Params = task.Params{Models: []string{"gpt-4o", "llama-3-8b"}}
		req.Options.Limit = 6
	case "nl2sva-human-passk":
		req.Params = task.Params{Models: []string{"gpt-4o"}}
		req.Options.Limit = 4
		req.Options.Samples = 2
	case "nl2sva-machine":
		req.Params = task.Params{Models: []string{"gpt-4o"}, Count: 8}
	case "nl2sva-machine-passk":
		req.Params = task.Params{Models: []string{"gpt-4o"}, Count: 6}
		req.Options.Samples = 2
	case "design2sva":
		req.Params = task.Params{Models: []string{"gpt-4o"}}
		req.Options.Limit = 2
		req.Options.Samples = 2
	case "machine-token-lengths":
		req.Params = task.Params{Count: 30}
	case "bleu-correlation":
		req.Params = task.Params{Models: []string{"gpt-4o"}}
		req.Options.Limit = 5
	}
	return req
}

// single runs the request on one plain engine — the oracle every
// distributed configuration must match byte-for-byte.
func single(t *testing.T, req task.Request) ([]byte, string) {
	t.Helper()
	run, err := task.NewEngine(engine.Config{}).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc, run.Report.Render()
}

// TestCoordinatorByteIdenticalEveryTask is the subsystem's acceptance
// bar: for every registry task, coordinator output over 1, 2, 4, and 7
// loopback workers is byte-identical (Encode and Render) to the
// single-engine run.
func TestCoordinatorByteIdenticalEveryTask(t *testing.T) {
	for _, spec := range task.Tasks() {
		t.Run(spec.Name, func(t *testing.T) {
			req := smallRequest(spec.Name)
			wantEnc, wantText := single(t, req)
			for _, workers := range []int{1, 2, 4, 7} {
				c, err := New(Loopback(workers, engine.Config{}), Options{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Run(context.Background(), req)
				if err != nil {
					t.Fatalf("%d workers: %v", workers, err)
				}
				gotEnc, err := res.Run.Report.Encode()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotEnc, wantEnc) {
					t.Fatalf("%d workers: Encode diverged\n--- dist ---\n%s\n--- single ---\n%s", workers, gotEnc, wantEnc)
				}
				if got := res.Run.Report.Render(); got != wantText {
					t.Fatalf("%d workers: Render diverged\n--- dist ---\n%s\n--- single ---\n%s", workers, got, wantText)
				}
				wantShards := workers
				if !spec.Shardable() {
					wantShards = 1
				}
				if res.Shards != wantShards || res.Workers != workers {
					t.Fatalf("%d workers: result metadata %d shards / %d workers", workers, res.Shards, res.Workers)
				}
			}
		})
	}
}

// flakyRunner fails its first failures Run calls, then delegates.
type flakyRunner struct {
	Runner
	mu       sync.Mutex
	failures int
}

func (r *flakyRunner) Run(ctx context.Context, req task.Request) (*task.Partial, error) {
	r.mu.Lock()
	fail := r.failures > 0
	if fail {
		r.failures--
	}
	r.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("injected worker failure")
	}
	return r.Runner.Run(ctx, req)
}

// deadRunner always fails.
type deadRunner struct{ name string }

func (r *deadRunner) Name() string { return r.name }
func (r *deadRunner) Run(context.Context, task.Request) (*task.Partial, error) {
	return nil, fmt.Errorf("connection refused")
}

// TestCoordinatorRetriesInjectedFailure injects one worker failure
// into a 2-worker fleet: the shard must be retried and the merged
// output must stay byte-identical to the single-engine run.
func TestCoordinatorRetriesInjectedFailure(t *testing.T) {
	req := smallRequest("nl2sva-human-passk")
	wantEnc, wantText := single(t, req)

	fleet := Loopback(2, engine.Config{})
	fleet[0] = &flakyRunner{Runner: fleet[0], failures: 1}
	var events []Event
	c, err := New(fleet, Options{Progress: func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 || res.Attempts != res.Shards+1 {
		t.Fatalf("expected exactly one retry, got %d retries / %d attempts over %d shards",
			res.Retries, res.Attempts, res.Shards)
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) || res.Run.Report.Render() != wantText {
		t.Fatalf("post-retry output diverged from single-engine run")
	}
	var sawRetry bool
	for _, ev := range events {
		if ev.Type == EventShardRetry {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatalf("no %s event emitted; events: %+v", EventShardRetry, events)
	}
}

// TestCoordinatorBenchesDeadWorker pairs a permanently dead worker
// with a healthy one: the dead worker must be benched after its
// failure limit and the healthy worker must finish every shard, with
// output still byte-identical.
func TestCoordinatorBenchesDeadWorker(t *testing.T) {
	req := smallRequest("nl2sva-human")
	wantEnc, _ := single(t, req)

	fleet := []Runner{&deadRunner{name: "dead"}, NewLocalRunner("alive", task.NewEngine(engine.Config{}))}
	var benched bool
	c, err := New(fleet, Options{Shards: 4, Progress: func(ev Event) {
		if ev.Type == EventWorkerDown && ev.Worker == "dead" {
			benched = true
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !benched {
		t.Fatalf("dead worker was never benched")
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("output diverged with a dead worker in the fleet")
	}
}

// TestCoordinatorFailsWhenFleetDies demands a clean error — not a
// hang — when every worker is dead.
func TestCoordinatorFailsWhenFleetDies(t *testing.T) {
	c, err := New([]Runner{&deadRunner{name: "a"}, &deadRunner{name: "b"}}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), smallRequest("nl2sva-human"))
	if err == nil {
		t.Fatal("run over a dead fleet succeeded")
	}
	if !strings.Contains(err.Error(), "healthy") && !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("unhelpful fleet-death error: %v", err)
	}
}

// TestCoordinatorCancellation cancels mid-run and expects ctx.Err().
func TestCoordinatorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := 0
	c, err := New(Loopback(2, engine.Config{}), Options{Progress: func(ev Event) {
		if ev.Type == EventJob {
			if jobs++; jobs == 2 {
				cancel()
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	req := smallRequest("nl2sva-human-passk")
	if _, err := c.Run(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

// TestCoordinatorForwardsJobProgress checks merged per-job streaming:
// every evaluation job surfaces exactly once across the fleet.
func TestCoordinatorForwardsJobProgress(t *testing.T) {
	var jobs int
	c, err := New(Loopback(3, engine.Config{}), Options{Progress: func(ev Event) {
		if ev.Type == EventJob {
			jobs++
			if ev.Job == nil || ev.Job.Task != "nl2sva-human" || ev.Worker == "" {
				t.Errorf("malformed job event: %+v", ev)
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	req := smallRequest("nl2sva-human")
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// 2 models x 6 instances x 1 sample
	if want := 12; jobs != want || res.Run.Stats.Jobs != want {
		t.Fatalf("forwarded %d job events, stats %d, want %d", jobs, res.Run.Stats.Jobs, want)
	}
}

// TestPlanShards pins the planner: shardable tasks split exactly n
// ways, grid-less tasks collapse to one slice, bad requests fail fast.
func TestPlanShards(t *testing.T) {
	plan, err := PlanShards(task.Request{Task: "nl2sva-human"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 4 {
		t.Fatalf("planned %d shards, want 4", len(plan.Shards))
	}
	for i, sub := range plan.Shards {
		want := engine.Shard{Index: i, Count: 4}
		if sub.Options.Shard != want {
			t.Fatalf("shard %d got slice %v", i, sub.Options.Shard)
		}
	}
	plan, err = PlanShards(task.Request{Task: "dataset-stats"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 1 {
		t.Fatalf("grid-less task planned %d shards, want 1", len(plan.Shards))
	}
	if _, err := PlanShards(task.Request{Task: "no-such-task"}, 2); err == nil {
		t.Fatal("unknown task planned")
	}
	if _, err := PlanShards(task.Request{Task: "nl2sva-human"}, 0); err == nil {
		t.Fatal("zero shard count planned")
	}
}
