package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fveval/internal/engine"
	"fveval/internal/fault"
	"fveval/internal/task"
)

// smallRequest shrinks each registry task to a fast deterministic
// slice; every task stays covered.
func smallRequest(name string) task.Request {
	req := task.Request{Task: name, Options: engine.Config{Workers: 2}}
	switch name {
	case "nl2sva-human":
		req.Params = task.Params{Models: []string{"gpt-4o", "llama-3-8b"}}
		req.Options.Limit = 6
	case "nl2sva-human-passk":
		req.Params = task.Params{Models: []string{"gpt-4o"}}
		req.Options.Limit = 4
		req.Options.Samples = 2
	case "nl2sva-machine":
		req.Params = task.Params{Models: []string{"gpt-4o"}, Count: 8}
	case "nl2sva-machine-passk":
		req.Params = task.Params{Models: []string{"gpt-4o"}, Count: 6}
		req.Options.Samples = 2
	case "design2sva":
		req.Params = task.Params{Models: []string{"gpt-4o"}}
		req.Options.Limit = 2
		req.Options.Samples = 2
	case "machine-token-lengths":
		req.Params = task.Params{Count: 30}
	case "bleu-correlation":
		req.Params = task.Params{Models: []string{"gpt-4o"}}
		req.Options.Limit = 5
	}
	return req
}

// single runs the request on one plain engine — the oracle every
// distributed configuration must match byte-for-byte.
func single(t *testing.T, req task.Request) ([]byte, string) {
	t.Helper()
	run, err := task.NewEngine(engine.Config{}).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc, run.Report.Render()
}

// TestCoordinatorByteIdenticalEveryTask is the subsystem's acceptance
// bar: for every registry task, coordinator output over 1, 2, 4, and 7
// loopback workers is byte-identical (Encode and Render) to the
// single-engine run.
func TestCoordinatorByteIdenticalEveryTask(t *testing.T) {
	for _, spec := range task.Tasks() {
		t.Run(spec.Name, func(t *testing.T) {
			req := smallRequest(spec.Name)
			wantEnc, wantText := single(t, req)
			for _, workers := range []int{1, 2, 4, 7} {
				c, err := New(Loopback(workers, engine.Config{}), Options{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Run(context.Background(), req)
				if err != nil {
					t.Fatalf("%d workers: %v", workers, err)
				}
				gotEnc, err := res.Run.Report.Encode()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotEnc, wantEnc) {
					t.Fatalf("%d workers: Encode diverged\n--- dist ---\n%s\n--- single ---\n%s", workers, gotEnc, wantEnc)
				}
				if got := res.Run.Report.Render(); got != wantText {
					t.Fatalf("%d workers: Render diverged\n--- dist ---\n%s\n--- single ---\n%s", workers, got, wantText)
				}
				wantShards := workers
				if !spec.Shardable() {
					wantShards = 1
				}
				if res.Shards != wantShards || res.Workers != workers {
					t.Fatalf("%d workers: result metadata %d shards / %d workers", workers, res.Shards, res.Workers)
				}
			}
		})
	}
}

// flakyRunner fails its first failures Run calls, then delegates.
type flakyRunner struct {
	Runner
	mu       sync.Mutex
	failures int
}

func (r *flakyRunner) Run(ctx context.Context, req task.Request) (*task.Partial, error) {
	r.mu.Lock()
	fail := r.failures > 0
	if fail {
		r.failures--
	}
	r.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("injected worker failure")
	}
	return r.Runner.Run(ctx, req)
}

// deadRunner always fails.
type deadRunner struct{ name string }

func (r *deadRunner) Name() string { return r.name }
func (r *deadRunner) Run(context.Context, task.Request) (*task.Partial, error) {
	return nil, fmt.Errorf("connection refused")
}

// TestCoordinatorRetriesInjectedFailure injects one worker failure
// into a 2-worker fleet: the shard must be retried and the merged
// output must stay byte-identical to the single-engine run.
func TestCoordinatorRetriesInjectedFailure(t *testing.T) {
	req := smallRequest("nl2sva-human-passk")
	wantEnc, wantText := single(t, req)

	fleet := Loopback(2, engine.Config{})
	fleet[0] = &flakyRunner{Runner: fleet[0], failures: 1}
	var events []Event
	c, err := New(fleet, Options{Progress: func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 || res.Attempts != res.Shards+1 {
		t.Fatalf("expected exactly one retry, got %d retries / %d attempts over %d shards",
			res.Retries, res.Attempts, res.Shards)
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) || res.Run.Report.Render() != wantText {
		t.Fatalf("post-retry output diverged from single-engine run")
	}
	var sawRetry bool
	for _, ev := range events {
		if ev.Type == EventShardRetry {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatalf("no %s event emitted; events: %+v", EventShardRetry, events)
	}
}

// TestCoordinatorBenchesDeadWorker pairs a permanently dead worker
// with a healthy one: the dead worker must be benched after its
// failure limit and the healthy worker must finish every shard, with
// output still byte-identical.
func TestCoordinatorBenchesDeadWorker(t *testing.T) {
	req := smallRequest("nl2sva-human")
	wantEnc, _ := single(t, req)

	fleet := []Runner{&deadRunner{name: "dead"}, NewLocalRunner("alive", task.NewEngine(engine.Config{}))}
	var benched bool
	c, err := New(fleet, Options{Shards: 4, Progress: func(ev Event) {
		if ev.Type == EventWorkerDown && ev.Worker == "dead" {
			benched = true
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !benched {
		t.Fatalf("dead worker was never benched")
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("output diverged with a dead worker in the fleet")
	}
}

// TestCoordinatorFailsWhenFleetDies demands a clean error — not a
// hang — when every worker is dead.
func TestCoordinatorFailsWhenFleetDies(t *testing.T) {
	c, err := New([]Runner{&deadRunner{name: "a"}, &deadRunner{name: "b"}}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), smallRequest("nl2sva-human"))
	if err == nil {
		t.Fatal("run over a dead fleet succeeded")
	}
	if !strings.Contains(err.Error(), "healthy") && !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("unhelpful fleet-death error: %v", err)
	}
}

// TestCoordinatorCancellation cancels mid-run and expects ctx.Err().
func TestCoordinatorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := 0
	c, err := New(Loopback(2, engine.Config{}), Options{Progress: func(ev Event) {
		if ev.Type == EventJob {
			if jobs++; jobs == 2 {
				cancel()
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	req := smallRequest("nl2sva-human-passk")
	if _, err := c.Run(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

// TestCoordinatorForwardsJobProgress checks merged per-job streaming:
// every evaluation job surfaces exactly once across the fleet.
func TestCoordinatorForwardsJobProgress(t *testing.T) {
	var jobs int
	c, err := New(Loopback(3, engine.Config{}), Options{Progress: func(ev Event) {
		if ev.Type == EventJob {
			jobs++
			if ev.Job == nil || ev.Job.Task != "nl2sva-human" || ev.Worker == "" {
				t.Errorf("malformed job event: %+v", ev)
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	req := smallRequest("nl2sva-human")
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// 2 models x 6 instances x 1 sample
	if want := 12; jobs != want || res.Run.Stats.Jobs != want {
		t.Fatalf("forwarded %d job events, stats %d, want %d", jobs, res.Run.Stats.Jobs, want)
	}
}

// TestPlanShards pins the planner: shardable tasks split exactly n
// ways, grid-less tasks collapse to one slice, bad requests fail fast.
func TestPlanShards(t *testing.T) {
	plan, err := PlanShards(task.Request{Task: "nl2sva-human"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 4 {
		t.Fatalf("planned %d shards, want 4", len(plan.Shards))
	}
	for i, sub := range plan.Shards {
		want := engine.Shard{Index: i, Count: 4}
		if sub.Options.Shard != want {
			t.Fatalf("shard %d got slice %v", i, sub.Options.Shard)
		}
	}
	plan, err = PlanShards(task.Request{Task: "dataset-stats"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 1 {
		t.Fatalf("grid-less task planned %d shards, want 1", len(plan.Shards))
	}
	if _, err := PlanShards(task.Request{Task: "no-such-task"}, 2); err == nil {
		t.Fatal("unknown task planned")
	}
	if _, err := PlanShards(task.Request{Task: "nl2sva-human"}, 0); err == nil {
		t.Fatal("zero shard count planned")
	}
}

// throttledRunner fails its first failures calls with a Retry-After
// hint, then delegates.
type throttledRunner struct {
	Runner
	mu       sync.Mutex
	failures int
	hint     time.Duration
}

type retryAfterErr struct{ d time.Duration }

func (e retryAfterErr) Error() string                 { return "throttled" }
func (e retryAfterErr) RetryAfterHint() time.Duration { return e.d }

func (r *throttledRunner) Run(ctx context.Context, req task.Request) (*task.Partial, error) {
	r.mu.Lock()
	fail := r.failures > 0
	if fail {
		r.failures--
	}
	r.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("worker busy: %w", retryAfterErr{d: r.hint})
	}
	return r.Runner.Run(ctx, req)
}

// TestBackoffHonorsRetryAfter pins that a failure carrying a
// Retry-After hint delays the retry at least that long — the hint
// overrides a shorter jittered draw.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	req := smallRequest("nl2sva-human-passk")
	wantEnc, _ := single(t, req)

	const hint = 150 * time.Millisecond
	fleet := Loopback(1, engine.Config{})
	fleet[0] = &throttledRunner{Runner: fleet[0], failures: 1, hint: hint}
	c, err := New(fleet, Options{BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Fatalf("run finished in %v, Retry-After hint of %v not honored", elapsed, hint)
	}
	if res.Retries != 1 {
		t.Fatalf("retries = %d, want 1", res.Retries)
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatal("post-throttle output diverged from single-engine run")
	}
}

// TestBreakerTripsAndRecovers drives a single flaky worker through a
// full breaker cycle: consecutive failures trip it open (worker-down),
// the cooldown lapses, and the half-open probe succeeds (worker-up),
// with the run finishing byte-identical.
func TestBreakerTripsAndRecovers(t *testing.T) {
	req := smallRequest("nl2sva-human-passk")
	wantEnc, _ := single(t, req)

	fleet := Loopback(1, engine.Config{})
	fleet[0] = &flakyRunner{Runner: fleet[0], failures: 2}
	var types []string
	c, err := New(fleet, Options{
		MaxAttempts:     5,
		BackoffBase:     time.Millisecond,
		BackoffCap:      2 * time.Millisecond,
		BreakerCooldown: 10 * time.Millisecond,
		Progress: func(ev Event) {
			if ev.Type == EventWorkerDown || ev.Type == EventWorkerUp {
				types = append(types, ev.Type)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(types) < 2 || types[0] != EventWorkerDown || types[len(types)-1] != EventWorkerUp {
		t.Fatalf("breaker event sequence = %v, want trip then recovery", types)
	}
	if res.Retries != 2 {
		t.Fatalf("retries = %d, want 2", res.Retries)
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatal("post-recovery output diverged from single-engine run")
	}
}

// TestHalfOpenProbeDoesNotBurnShardAttempts pairs a permanently dead
// worker with a slow-but-healthy one under a tight attempt budget.
// The dead worker's half-open probes keep failing while the healthy
// worker is busy; those probe failures must not be charged against the
// shard's MaxAttempts budget, or the run would go fatal before the
// healthy worker ever sees the shard.
func TestHalfOpenProbeDoesNotBurnShardAttempts(t *testing.T) {
	req := smallRequest("nl2sva-human-passk")
	wantEnc, _ := single(t, req)

	fleet := Loopback(2, engine.Config{})
	fleet[0] = &slowRunner{Runner: fleet[0], delay: 60 * time.Millisecond}
	fleet[1] = &deadRunner{name: "dead"}
	c, err := New(fleet, Options{
		MaxAttempts:        2,
		RunnerFailureLimit: 1,
		BreakerCooldown:    5 * time.Millisecond,
		BackoffBase:        time.Millisecond,
		BackoffCap:         2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("run went fatal — probe failures burned the shard's attempt budget: %v", err)
	}
	if res.Retries == 0 {
		t.Fatal("dead worker never failed a dispatch; scenario did not exercise the breaker")
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatal("post-probe output diverged from single-engine run")
	}
}

// slowRunner stalls every call until its delay elapses or the attempt
// is cancelled (hedge loser).
type slowRunner struct {
	Runner
	delay time.Duration
}

func (r *slowRunner) Run(ctx context.Context, req task.Request) (*task.Partial, error) {
	select {
	case <-time.After(r.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return r.Runner.Run(ctx, req)
}

// TestHedgeStragglerFirstResultWins pairs a fast worker with one that
// stalls for seconds: the straggler shard must be hedged to the idle
// fast worker, the hedge must win, the stalled loser must be
// cancelled, and the output must stay byte-identical — hedging refutes
// on wall-clock only, never on bytes.
func TestHedgeStragglerFirstResultWins(t *testing.T) {
	req := smallRequest("nl2sva-human")
	wantEnc, wantText := single(t, req)

	fleet := Loopback(2, engine.Config{})
	fleet[1] = &slowRunner{Runner: fleet[1], delay: 30 * time.Second}
	var hedgeEvents int
	c, err := New(fleet, Options{
		Hedge:         true,
		HedgeQuantile: 0.5,
		HedgeMinDelay: 10 * time.Millisecond,
		Progress: func(ev Event) {
			if ev.Type == EventShardHedge {
				hedgeEvents++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %v: hedge did not rescue the straggler", elapsed)
	}
	if res.Hedges != 1 || hedgeEvents != 1 {
		t.Fatalf("hedges = %d, hedge events = %d, want 1 each", res.Hedges, hedgeEvents)
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) || res.Run.Report.Render() != wantText {
		t.Fatal("hedged output diverged from single-engine run")
	}
}

// TestCheckpointRestoreSkipsCompletedShards captures per-shard
// partials via OnPartial, then replays a subset as Completed: restored
// shards must not be re-dispatched and the merged output must stay
// byte-identical.
func TestCheckpointRestoreSkipsCompletedShards(t *testing.T) {
	req := smallRequest("nl2sva-human")
	wantEnc, wantText := single(t, req)

	const shards = 3
	var mu sync.Mutex
	saved := map[int]*task.Partial{}
	c, err := New(Loopback(2, engine.Config{}), Options{
		Shards: shards,
		OnPartial: func(shard, total int, p *task.Partial) {
			if total != shards {
				t.Errorf("OnPartial total = %d, want %d", total, shards)
			}
			mu.Lock()
			saved[shard] = p
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if len(saved) != shards {
		t.Fatalf("OnPartial observed %d shards, want %d", len(saved), shards)
	}

	// Resume with shards 0 and 2 checkpointed; only shard 1 may run.
	completed := map[int]*task.Partial{0: saved[0], 2: saved[2]}
	var dispatched []int
	c2, err := New(Loopback(2, engine.Config{}), Options{
		Shards:    shards,
		Completed: completed,
		Progress: func(ev Event) {
			if ev.Type == EventShardStart {
				dispatched = append(dispatched, ev.Shard.Index)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restored != 2 {
		t.Fatalf("restored = %d, want 2", res.Restored)
	}
	for _, s := range dispatched {
		if s != 1 {
			t.Fatalf("checkpointed shard %d was re-dispatched", s)
		}
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) || res.Run.Report.Render() != wantText {
		t.Fatal("resumed output diverged from single-engine run")
	}

	// Fully checkpointed: nothing dispatches at all.
	all := map[int]*task.Partial{}
	for s, p := range saved {
		all[s] = p
	}
	c3, err := New(Loopback(2, engine.Config{}), Options{Shards: shards, Completed: all})
	if err != nil {
		t.Fatal(err)
	}
	res, err = c3.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restored != shards || res.Attempts != 0 {
		t.Fatalf("full restore: restored %d / attempts %d, want %d / 0", res.Restored, res.Attempts, shards)
	}
	gotEnc, err = res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatal("fully restored output diverged from single-engine run")
	}
}

// TestCheckpointOutsidePlanRejected demands a loud failure when
// checkpoints don't fit the plan — silently merging shards cut
// against a different shard count would corrupt the report.
func TestCheckpointOutsidePlanRejected(t *testing.T) {
	c, err := New(Loopback(2, engine.Config{}), Options{
		Shards:    2,
		Completed: map[int]*task.Partial{5: {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), smallRequest("nl2sva-human")); err == nil ||
		!strings.Contains(err.Error(), "outside plan") {
		t.Fatalf("out-of-plan checkpoint accepted: %v", err)
	}
}

// TestCoordinatorFaultPointsRetried exercises the dist.dispatch and
// dist.response injection points end to end: each injected failure
// must surface as a normal retry and never change output bytes.
func TestCoordinatorFaultPointsRetried(t *testing.T) {
	req := smallRequest("nl2sva-human")
	wantEnc, _ := single(t, req)

	for _, point := range []string{fault.DistDispatch, fault.DistResponse} {
		if err := fault.Activate(fault.Plan{Seed: 11, Points: map[string]fault.PointPlan{
			point: {Count: 1},
		}}); err != nil {
			t.Fatal(err)
		}
		c, err := New(Loopback(2, engine.Config{}), Options{
			BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
		})
		if err != nil {
			fault.Reset()
			t.Fatal(err)
		}
		res, err := c.Run(context.Background(), req)
		fault.Reset()
		if err != nil {
			t.Fatalf("%s: %v", point, err)
		}
		if fires := res.Retries; fires != 1 {
			t.Fatalf("%s: retries = %d, want 1", point, fires)
		}
		gotEnc, err := res.Run.Report.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotEnc, wantEnc) {
			t.Fatalf("%s: output diverged under injected fault", point)
		}
	}
}
