package dist

import (
	"bytes"
	"context"
	"testing"

	"fveval/internal/engine"
	"fveval/internal/obs"
)

// TestCoordinatorTracePropagation runs a traced distributed run over a
// loopback fleet and checks the tentpole invariants end to end: the
// report stays byte-identical to an untraced single-engine run, every
// worker's spans stitch into one tree under the coordinator's root,
// and the merged per-phase profile is the commutative sum of shard
// profiles.
func TestCoordinatorTracePropagation(t *testing.T) {
	req := smallRequest("nl2sva-human")
	wantEnc, _ := single(t, req)

	c, err := New(Loopback(3, engine.Config{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(0)
	root := rec.Start("run", 0)
	ctx := obs.ContextWithSpan(obs.NewContext(context.Background(), rec), root)
	res, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("tracing changed report bytes\n--- traced ---\n%s\n--- single ---\n%s", gotEnc, wantEnc)
	}

	spans, dropped := rec.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d spans under default capacity", dropped)
	}
	byID := make(map[uint64]obs.SpanData, len(spans))
	counts := map[string]int{}
	roots := 0
	for _, d := range spans {
		byID[d.ID] = d
		counts[d.Name]++
		if d.Parent == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("stitched tree has %d roots, want 1", roots)
	}
	if counts["shard"] != res.Shards {
		t.Errorf("%d shard spans, want %d", counts["shard"], res.Shards)
	}
	if counts["shard-run"] != res.Shards {
		t.Errorf("%d adopted worker roots, want %d", counts["shard-run"], res.Shards)
	}
	if counts["job"] != res.Run.Stats.Jobs {
		t.Errorf("%d job spans, want one per job (%d)", counts["job"], res.Run.Stats.Jobs)
	}
	// Every span must reach the root through resolvable parents — the
	// adoption remap may not leave dangling edges or cycles.
	for _, d := range spans {
		seen := 0
		for p := d.Parent; p != 0; p = byID[p].Parent {
			if _, ok := byID[p]; !ok {
				t.Fatalf("span %d %q has unresolvable ancestor %d", d.ID, d.Name, p)
			}
			if seen++; seen > len(spans) {
				t.Fatalf("parent cycle reached from span %d %q", d.ID, d.Name)
			}
		}
	}
	for _, d := range spans {
		if d.Name == "shard-run" && byID[d.Parent].Name != "shard" {
			t.Errorf("worker root %d re-rooted under %q, want a shard span", d.ID, byID[d.Parent].Name)
		}
	}

	// The merged rollup sums worker-side leaf phases; an NL2SVA run
	// must have prompted and parsed at least once per job.
	prof := res.Run.Stats.Profile
	if prof.Prompt.Count == 0 || prof.Parse.Count == 0 {
		t.Errorf("merged profile missing worker phases: %+v", prof)
	}

	// And with tracing off, the profile stays zero so run JSON is
	// unchanged for untraced callers.
	res2, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Run.Stats.Profile != (obs.Profile{}) {
		t.Errorf("untraced run grew a profile: %+v", res2.Run.Stats.Profile)
	}
}
