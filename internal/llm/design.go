package llm

import (
	"fmt"
	"math/rand"
	"strings"
)

// designResponse synthesizes a Design2SVA answer: a testbench snippet
// (optional helper nets plus one assertion) over the testbench ports.
// classEquivalent maps to "provable", classPartial/classWrong to
// "plausible but not proven", classSyntax to compile failures
// (including the use of DUT-internal signals the prompt forbids).
func (m *ProxyModel) designResponse(p *Prompt, class responseClass, rng *rand.Rand) string {
	inst := p.Design
	if inst == nil {
		return "assert property (@(posedge clk) 1'b1);"
	}
	if inst.Kind == "fsm" {
		return m.fsmResponse(p, class, rng)
	}
	return m.pipelineResponse(p, class, rng)
}

func (m *ProxyModel) pipelineResponse(p *Prompt, class responseClass, rng *rand.Rand) string {
	d := p.Design.Pipeline.Depth
	switch class {
	case classEquivalent:
		// valid-propagation at the true latency — provable.
		if rng.Intn(2) == 0 {
			return fmt.Sprintf(`assert property (@(posedge clk) disable iff (tb_reset)
  in_vld |-> ##%d out_vld
);`, d)
		}
		return fmt.Sprintf(`logic vld_seen;
assign vld_seen = in_vld;
assert property (@(posedge clk) disable iff (tb_reset)
  vld_seen |-> ##%d out_vld
);`, d)
	case classPartial, classWrong:
		// plausible but unprovable: wrong latency or a data relation
		// the datapath does not satisfy.
		switch rng.Intn(3) {
		case 0:
			wrong := d - 1
			if wrong < 1 {
				wrong = d + 1
			}
			return fmt.Sprintf(`assert property (@(posedge clk) disable iff (tb_reset)
  in_vld |-> ##%d out_vld
);`, wrong)
		case 1:
			return fmt.Sprintf(`assert property (@(posedge clk) disable iff (tb_reset)
  in_vld |-> ##%d (out_data == $past(in_data, %d))
);`, d, d)
		default:
			return `assert property (@(posedge clk) disable iff (tb_reset)
  out_vld |-> (out_data != 'd0)
);`
		}
	default:
		return m.designSyntaxBreak(p, rng)
	}
}

func (m *ProxyModel) fsmResponse(p *Prompt, class responseClass, rng *rand.Rand) string {
	truth := p.Design.FSM
	sw := truth.StateWidth
	reach := truth.Reachable()
	switch class {
	case classEquivalent:
		// exact successor-set assertion from the ground truth —
		// provable by the model checker.
		s := reach[rng.Intn(len(reach))]
		var terms []string
		for _, t := range truth.Succ[s] {
			terms = append(terms, fmt.Sprintf("fsm_out == S%d", t))
		}
		body := strings.Join(terms, " || ")
		if rng.Intn(2) == 0 {
			return fmt.Sprintf(`assert property (@(posedge clk) disable iff (tb_reset)
  fsm_out == S%d |=> (%s)
);`, s, body)
		}
		return fmt.Sprintf(`logic [%d:0] cur_state;
assign cur_state = fsm_out;
assert property (@(posedge clk) disable iff (tb_reset)
  cur_state == S%d |=> (%s)
);`, sw-1, s, body)
	case classPartial, classWrong:
		// wrong successor claim: pick a reachable state and a
		// non-successor (unreachable antecedents would be vacuously
		// proven).
		s := reach[rng.Intn(len(reach))]
		wrong := -1
		for t := 0; t < truth.NumStates; t++ {
			if !intIn(truth.Succ[s], t) {
				wrong = t
				break
			}
		}
		if wrong < 0 {
			// all states are successors: claim a single exact
			// successor where several exist, or a false freeze.
			if len(truth.Succ[s]) > 1 {
				return fmt.Sprintf(`assert property (@(posedge clk) disable iff (tb_reset)
  fsm_out == S%d |=> (fsm_out == S%d)
);`, s, truth.Succ[s][0])
			}
			return `assert property (@(posedge clk) disable iff (tb_reset)
  in_A != in_B
);`
		}
		return fmt.Sprintf(`assert property (@(posedge clk) disable iff (tb_reset)
  fsm_out == S%d |=> (fsm_out == S%d)
);`, s, wrong)
	default:
		return m.designSyntaxBreak(p, rng)
	}
}

// designSyntaxBreak fails compilation: DUT-internal signal references
// (forbidden by the prompt and unresolvable in the bound testbench) or
// hallucinated syntax.
func (m *ProxyModel) designSyntaxBreak(p *Prompt, rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		// references the DUT-internal next_state/state nets
		return `assert property (@(posedge clk) disable iff (tb_reset)
  (state == 'd0) |-> (next_state != state)
);`
	case 1:
		return `assert property (@(posedge clk) disable iff (tb_reset)
  in_vld |-> eventually(out_vld)
);`
	default:
		return `assert property (@(posedge clk) disable iff (tb_reset)
  fsm_out == S0 |=> (fsm_out == S1)
;`
	}
}

func intIn(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
