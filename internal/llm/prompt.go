// Package llm provides the language-model layer of the benchmark. The
// paper queries proprietary endpoints (gpt-4o, gemini-1.5) and local
// vLLM deployments (Llama, Mixtral); this reproduction is offline, so
// the Model interface is implemented by deterministic, seeded proxy
// models with per-model calibrated error profiles (see profiles.go and
// DESIGN.md §2). Prompt construction follows the paper's Appendix
// A.2, B.1/B.2, and C.2 verbatim, so a real endpoint-backed Model can
// be dropped in without touching the harness.
package llm

import (
	"strings"

	"fveval/internal/gen/rtlgen"
	"fveval/internal/helpergen"
	"fveval/internal/sva"
)

// Task identifies a sub-benchmark.
type Task int

// Tasks.
const (
	NL2SVAHuman Task = iota
	NL2SVAMachine
	Design2SVA
	AGRHelper
)

func (t Task) String() string {
	switch t {
	case NL2SVAHuman:
		return "nl2sva-human"
	case NL2SVAMachine:
		return "nl2sva-machine"
	case AGRHelper:
		return "agr"
	}
	return "design2sva"
}

// Prompt carries both the rendered text (what a real endpoint would
// receive) and the structured instance context the proxy models need.
type Prompt struct {
	Task   Task
	System string
	User   string

	InstanceID string
	Shots      int

	// Hidden ground truth, used only by proxy models to synthesize
	// realistic responses. Endpoint-backed models must ignore these.
	Reference *sva.Assertion
	Design    *rtlgen.Instance
	Helper    *helpergen.Instance
}

const systemPrompt = `You are an AI assistant tasked with formal verification of register transfer level (RTL) designs.
Your job is to translate a description of an assertion to concrete SystemVerilog Assertion (SVA) implementation.`

const systemPromptDesign = `You are an AI assistant tasked with formal verification of register transfer level (RTL) designs.
Your job is to generate a SystemVerilog assertion for the design-under-test provided.`

const outputRules = `Do not add code to output an error message string. Enclose your SVA code with ` + "```systemverilog and ```" + `.
Only output the code snippet and do NOT output anything else.
For example,
` + "```systemverilog" + `
asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (a && b) != 1'b1
);
` + "```"

// ICLExamples are the fixed 3-shot in-context examples from Appendix
// B.2 (Figure 15).
const ICLExamples = `More detailed examples of correct translations from description into an SVA assertion:

Question: Create a SVA assertion that checks: Whenever sig_A is high and sig_B is low, sig_C will be high on the next clock edge.
Answer:
` + "```systemverilog" + `
assert property(@(posedge clk)
  (sig_A && !sig_B) |-> sig_C
);
` + "```" + `

Question: Create a SVA assertion that checks: If sig_C contains at least one '1' bit or sig_D is not equal to sig_A, then sig_F must eventually be true
Answer:
` + "```systemverilog" + `
assert property(@(posedge clk)
  (|sig_C || (sig_D !== sig_A)) |=> s_eventually(sig_F)
);
` + "```" + `

Question: Create a SVA assertion that checks: Whenever the value of sig_J is less than sig_B, the assertion is true
Answer:
` + "```systemverilog" + `
assert property(@(posedge clk)
  (sig_J < sig_B)
);
` + "```"

// BuildHumanPrompt renders the NL2SVA-Human prompt (Appendix A.2).
func BuildHumanPrompt(instanceID, testbenchSrc, nlSpec string, ref *sva.Assertion) *Prompt {
	var u strings.Builder
	u.WriteString("Here is the testbench to perform your translation:\n\n")
	u.WriteString(testbenchSrc)
	u.WriteString("\n\nQuestion: Create a SVA assertion that checks: ")
	u.WriteString(nlSpec)
	u.WriteString("\n\n")
	u.WriteString(outputRules)
	u.WriteString("\nAnswer:\n")
	return &Prompt{
		Task:       NL2SVAHuman,
		System:     systemPrompt,
		User:       u.String(),
		InstanceID: instanceID,
		Reference:  ref,
	}
}

// BuildMachinePrompt renders the NL2SVA-Machine prompt (Appendix B.1),
// with the fixed ICL examples for shots == 3.
func BuildMachinePrompt(instanceID, nlSpec string, shots int, ref *sva.Assertion) *Prompt {
	var u strings.Builder
	if shots >= 3 {
		u.WriteString(ICLExamples)
		u.WriteString("\n\n")
	}
	u.WriteString("Question: Create a SVA assertion that checks:\n")
	u.WriteString(nlSpec)
	u.WriteString("\n\n")
	u.WriteString(outputRules)
	u.WriteString("\nAnswer:\n")
	return &Prompt{
		Task:       NL2SVAMachine,
		System:     systemPrompt,
		User:       u.String(),
		InstanceID: instanceID,
		Shots:      shots,
		Reference:  ref,
	}
}

// BuildDesignPrompt renders the Design2SVA prompt (Appendix C.2).
func BuildDesignPrompt(inst *rtlgen.Instance) *Prompt {
	var u strings.Builder
	u.WriteString("Here is the design RTL to generate assertions for:\n\n")
	u.WriteString(inst.Design)
	u.WriteString("\nHere is a partial testbench for you to work on:\n\n")
	u.WriteString(inst.Bench)
	u.WriteString(`
Question: generate a single SVA assertion for the given design RTL that is most important to verify.
If necessary, produce any extra code, including wires, registers, and their assignments.
Do NOT use signals from the design RTL, only use the module input signals or internal signals you have added.
Do NOT use any 'initial' blocks. This testbench is not for running RTL simulation but for formal verification.
Do NOT instantiate the design module inside the testbench.
When implementing the assertion, generate a concurrent SVA assertion and do not add code to output an error message string.
`)
	u.WriteString(outputRules)
	u.WriteString("\nRemember to output only one assertion.\nAnswer:\n")
	return &Prompt{
		Task:       Design2SVA,
		System:     systemPromptDesign,
		User:       u.String(),
		InstanceID: inst.ID,
		Design:     inst,
	}
}

const systemPromptAGR = `You are an AI assistant tasked with formal verification of register transfer level (RTL) designs.
Your job is to write helper assertions (lemmas) that let a formal tool prove a target assertion stuck at an inconclusive bound.`

// BuildHelperPrompt renders the AGR (assertion-guided reasoning)
// prompt: the design, the bench, the stuck target, and a request for
// helper assertions that unlock its proof.
func BuildHelperPrompt(inst *helpergen.Instance) *Prompt {
	var u strings.Builder
	u.WriteString("Here is the design RTL under verification:\n\n")
	u.WriteString(inst.Design)
	u.WriteString("\nHere is the formal testbench binding the design:\n\n")
	u.WriteString(inst.Bench)
	u.WriteString("\nThe following target assertion is TRUE but the proof is inconclusive: the property is not inductive, and bounded model checking finds no counterexample.\n\n")
	u.WriteString(inst.Target)
	u.WriteString(`

Question: write one or more helper assertions (lemmas) over the testbench signals such that, once the helpers are proved, assuming them makes the target assertion provable by induction.
Each helper must itself be an invariant of the design (the tool will prove every helper before assuming it).
Write each helper as a complete concurrent SVA assertion statement ending in a semicolon.
`)
	u.WriteString(outputRules)
	u.WriteString("\nAnswer:\n")
	return &Prompt{
		Task:       AGRHelper,
		System:     systemPromptAGR,
		User:       u.String(),
		InstanceID: inst.ID,
		Helper:     inst,
	}
}

// ExtractCode strips the ```systemverilog fences from a model
// response; raw text without fences is returned unchanged.
func ExtractCode(response string) string {
	s := response
	if i := strings.Index(s, "```systemverilog"); i >= 0 {
		s = s[i+len("```systemverilog"):]
	} else if i := strings.Index(s, "```"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.Index(s, "```"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}
