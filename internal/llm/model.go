package llm

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"

	"fveval/internal/sva"
)

// Model generates SVA responses for benchmark prompts. Sample selects
// among nucleus-sampling candidates (0 = greedy).
type Model interface {
	Name() string
	Generate(p *Prompt, sample int) string
	// ContextWindow in tokens; models below 32K skip Design2SVA, as in
	// the paper §4.4.
	ContextWindow() int
}

// responseClass orders outcomes from best to worst.
type responseClass int

const (
	classEquivalent responseClass = iota
	classPartial
	classWrong
	classSyntax
)

// TaskProfile holds the calibration targets for one (task, shots)
// cell: the probability mass of responses that pass Syntax, that are
// fully equivalent (Func), and that are at least one-directionally
// equivalent (Partial ⊇ Func). Jitter is the probability that a
// non-greedy sample re-rolls its outcome class — it controls how much
// pass@k improves over pass@1.
type TaskProfile struct {
	Syntax  float64
	Func    float64
	Partial float64
	Jitter  float64
}

func (tp TaskProfile) sample(rng *rand.Rand) responseClass {
	u := rng.Float64()
	switch {
	case u < tp.Func:
		return classEquivalent
	case u < tp.Partial:
		return classPartial
	case u < tp.Syntax:
		return classWrong
	default:
		return classSyntax
	}
}

// Profile is the full calibration record for one model.
type Profile struct {
	ModelName string
	Window    int

	Human    TaskProfile
	Machine0 TaskProfile // zero-shot
	Machine3 TaskProfile // three-shot
	Pipeline TaskProfile // Design2SVA pipeline category
	FSM      TaskProfile // Design2SVA FSM category
	AGR      TaskProfile // AGR helper-generation task
}

// ProxyModel synthesizes responses by transforming the hidden
// reference solution through error channels sampled from the profile.
// Every transform guarantees its verdict class by construction
// (weaken ⇒ reference implies response, etc.), so the measured metrics
// track the profile targets up to sampling noise.
type ProxyModel struct {
	P Profile
}

// Name implements Model.
func (m *ProxyModel) Name() string { return m.P.ModelName }

// ContextWindow implements Model.
func (m *ProxyModel) ContextWindow() int { return m.P.Window }

func (m *ProxyModel) profileFor(p *Prompt) TaskProfile {
	switch p.Task {
	case NL2SVAHuman:
		return m.P.Human
	case NL2SVAMachine:
		if p.Shots >= 3 {
			return m.P.Machine3
		}
		return m.P.Machine0
	case AGRHelper:
		return m.P.AGR
	default:
		if p.Design != nil && p.Design.Kind == "fsm" {
			return m.P.FSM
		}
		return m.P.Pipeline
	}
}

// hashSource is a splitmix64-backed rand.Source64. Seeding is O(1),
// where the default math/rand source fills a 607-word feedback table
// per seed — and every Generate call derives three freshly seeded
// streams, which made seeding the single hottest path of a full
// benchmark run.
type hashSource struct{ state uint64 }

func (s *hashSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *hashSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *hashSource) Seed(seed int64) { s.state = uint64(seed) }

func (m *ProxyModel) rng(p *Prompt, salt string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(m.P.ModelName))
	h.Write([]byte{0})
	h.Write([]byte(p.InstanceID))
	h.Write([]byte{0})
	h.Write([]byte(p.Task.String()))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	return rand.New(&hashSource{state: h.Sum64()})
}

// Generate implements Model.
func (m *ProxyModel) Generate(p *Prompt, sample int) string {
	tp := m.profileFor(p)
	shots := strconv.Itoa(p.Shots)
	base := m.rng(p, "shots="+shots)
	class := tp.sample(base)
	if sample > 0 {
		jr := m.rng(p, "shots="+shots+"/sample="+strconv.Itoa(sample))
		if jr.Float64() < tp.Jitter {
			class = tp.sample(jr)
		}
	}
	style := m.rng(p, "style/"+shots+"/"+strconv.Itoa(sample))
	var code string
	switch p.Task {
	case Design2SVA:
		code = m.designResponse(p, class, style)
	case AGRHelper:
		code = m.helperResponse(p, class, style)
	default:
		code = m.translationResponse(p, class, style)
	}
	return "```systemverilog\n" + code + "\n```"
}

// ---- NL2SVA response synthesis -----------------------------------------

func (m *ProxyModel) translationResponse(p *Prompt, class responseClass, rng *rand.Rand) string {
	ref := p.Reference
	if ref == nil {
		return "assert property (@(posedge clk) 1'b1);"
	}
	switch class {
	case classEquivalent:
		return styleRewrite(ref, rng).String()
	case classPartial:
		if a, ok := partialTransform(ref, rng); ok {
			return a.String()
		}
		return styleRewrite(ref, rng).String()
	case classWrong:
		return wrongTransform(ref, rng).String()
	default:
		return syntaxBreak(ref, rng)
	}
}

// styleRewrite produces an equivalence-preserving variant: label
// changes, |=> <-> |-> ##1, `x !== 1'b1` <-> !x, === for ==.
func styleRewrite(ref *sva.Assertion, rng *rand.Rand) *sva.Assertion {
	a := ref.Clone()
	switch rng.Intn(4) {
	case 0:
		a.Label = ""
	case 1:
		a.Label = "asrt_" + pickWord(rng)
	}
	// |=> b  <->  |-> ##1 b
	if impl, ok := a.Body.(*sva.PropImpl); ok && rng.Intn(2) == 0 {
		if !impl.Overlap {
			impl.Overlap = true
			impl.P = &sva.PropSeq{S: &sva.SeqDelay{
				D: sva.Delay{Lo: 1, Hi: 1},
				R: &sva.SeqExpr{E: propExprOrTrue(impl.P)},
			}}
		}
	}
	// (X) !== 1'b1  ->  !(X)
	if ps, ok := a.Body.(*sva.PropSeq); ok {
		if se, ok := ps.S.(*sva.SeqExpr); ok {
			if bin, ok := se.E.(*sva.Binary); ok && (bin.Op == "!==" || bin.Op == "!=") {
				if n, ok := bin.Y.(*sva.Num); ok && n.Value == 1 && rng.Intn(2) == 0 {
					se.E = &sva.Unary{Op: "!", X: bin.X}
				}
			}
		}
	}
	// Deep lexical divergence with preserved semantics: models often
	// express the same logic in a visually distant form (the paper's
	// BLEU-vs-Func decorrelation depends on this). Apply a few passes
	// of commutation / De Morgan / comparison flips.
	passes := rng.Intn(3)
	for i := 0; i < passes; i++ {
		mutateExprsEquiv(a, rng)
	}
	return a
}

// mutateExprsEquiv rewrites boolean-layer expressions into equivalent
// forms: operand commutation, De Morgan expansion, flipped
// comparisons, === <-> ==.
func mutateExprsEquiv(a *sva.Assertion, rng *rand.Rand) {
	var rewrite func(e sva.Expr) sva.Expr
	rewrite = func(e sva.Expr) sva.Expr {
		switch v := e.(type) {
		case *sva.Binary:
			v.X = rewrite(v.X)
			v.Y = rewrite(v.Y)
			switch v.Op {
			case "&&", "||", "==", "!=", "===", "!==", "&", "|", "^":
				if rng.Intn(2) == 0 {
					v.X, v.Y = v.Y, v.X
				}
			}
			switch v.Op {
			case "==":
				if rng.Intn(3) == 0 {
					v.Op = "==="
				}
			case "===":
				if rng.Intn(3) == 0 {
					v.Op = "=="
				}
			case "<":
				if rng.Intn(3) == 0 {
					v.Op = ">"
					v.X, v.Y = v.Y, v.X
				}
			}
			return v
		case *sva.Unary:
			if v.Op == "!" && rng.Intn(2) == 0 {
				if inner, ok := v.X.(*sva.Binary); ok {
					switch inner.Op {
					case "&&": // !(a && b) -> !a || !b
						return &sva.Binary{Op: "||",
							X: &sva.Unary{Op: "!", X: rewrite(inner.X)},
							Y: &sva.Unary{Op: "!", X: rewrite(inner.Y)}}
					case "||":
						return &sva.Binary{Op: "&&",
							X: &sva.Unary{Op: "!", X: rewrite(inner.X)},
							Y: &sva.Unary{Op: "!", X: rewrite(inner.Y)}}
					}
				}
			}
			v.X = rewrite(v.X)
			return v
		case *sva.Cond:
			v.C = rewrite(v.C)
			v.T = rewrite(v.T)
			v.E = rewrite(v.E)
			return v
		}
		return e
	}
	switch b := a.Body.(type) {
	case *sva.PropSeq:
		if se, ok := b.S.(*sva.SeqExpr); ok {
			se.E = rewrite(se.E)
		}
	case *sva.PropImpl:
		if se, ok := b.S.(*sva.SeqExpr); ok {
			se.E = rewrite(se.E)
		}
		if ps, ok := b.P.(*sva.PropSeq); ok {
			if se, ok := ps.S.(*sva.SeqExpr); ok {
				se.E = rewrite(se.E)
			}
			if sd, ok := ps.S.(*sva.SeqDelay); ok {
				if se, ok := sd.R.(*sva.SeqExpr); ok {
					se.E = rewrite(se.E)
				}
			}
		}
	}
}

// propExprOrTrue extracts a boolean consequent, for the |=> rewrite.
func propExprOrTrue(p sva.Property) sva.Expr {
	if ps, ok := p.(*sva.PropSeq); ok {
		if se, ok := ps.S.(*sva.SeqExpr); ok {
			return se.E
		}
	}
	return &sva.Num{Text: "1'b1", Value: 1, Width: 1}
}

// partialTransform builds a one-directionally equivalent variant.
func partialTransform(ref *sva.Assertion, rng *rand.Rand) (*sva.Assertion, bool) {
	a := ref.Clone()
	if impl, ok := a.Body.(*sva.PropImpl); ok {
		// weaken: strong eventuality -> weak ##[1:$] (the gpt-4o
		// failure from Fig. 7)
		if ps, ok := impl.P.(*sva.PropSeq); ok && ps.Explicit && ps.Strong && rng.Intn(2) == 0 {
			ps.Explicit = false
			ps.Strong = false
			if sd, ok := ps.S.(*sva.SeqDelay); ok && sd.D.Inf && sd.D.Lo == 0 {
				sd.D.Lo = 1
			}
			a.Label = ""
			return a, true
		}
		switch rng.Intn(3) {
		case 0:
			// weaken: widen an exact consequent delay ##N -> ##[N:N+1]
			if ps, ok := impl.P.(*sva.PropSeq); ok {
				if sd, ok := ps.S.(*sva.SeqDelay); ok && !sd.D.Inf && sd.D.Lo == sd.D.Hi {
					sd.D.Hi = sd.D.Lo + 1
					return a, true
				}
			}
		case 1:
			// strengthen: a |-> b  =>  a && b (paper Fig. 8 llama)
			if se, ok := impl.S.(*sva.SeqExpr); ok {
				if cons, ok := implConsequentExpr(impl); ok {
					a.Body = &sva.PropSeq{S: &sva.SeqExpr{E: &sva.Binary{
						Op: "&&", X: se.E, Y: cons,
					}}}
					return a, true
				}
			}
		}
		// weaken: strengthen the antecedent with an extra live conjunct
		if se, ok := impl.S.(*sva.SeqExpr); ok {
			if extra := firstSignalOf(impl.P); extra != "" {
				impl.S = &sva.SeqExpr{E: &sva.Binary{
					Op: "&&", X: se.E, Y: &sva.Ident{Name: extra},
				}}
				return a, true
			}
		}
		return a, false
	}
	// plain boolean body: strengthen by conjoining another referenced
	// signal, or weaken by disjoining one.
	if ps, ok := a.Body.(*sva.PropSeq); ok {
		if se, ok := ps.S.(*sva.SeqExpr); ok {
			sig := anySignal(ref)
			if sig == "" {
				return a, false
			}
			op := "&&"
			if rng.Intn(2) == 0 {
				op = "||"
			}
			se.E = &sva.Binary{Op: op, X: se.E, Y: &sva.Ident{Name: sig}}
			return a, true
		}
	}
	return a, false
}

func implConsequentExpr(impl *sva.PropImpl) (sva.Expr, bool) {
	if ps, ok := impl.P.(*sva.PropSeq); ok && !ps.Explicit {
		if se, ok := ps.S.(*sva.SeqExpr); ok {
			return se.E, true
		}
	}
	return nil, false
}

func firstSignalOf(p sva.Property) string {
	names := []string{}
	sva.WalkExprs(p, func(e sva.Expr) {
		if id, ok := e.(*sva.Ident); ok {
			names = append(names, id.Name)
		}
	})
	if len(names) > 0 {
		return names[0]
	}
	return ""
}

func anySignal(a *sva.Assertion) string {
	sigs := a.Signals()
	for _, s := range sigs {
		if s != "clk" && s != "tb_reset" && s != "reset_" {
			return s
		}
	}
	return ""
}

// wrongTransform breaks the semantics in both directions.
func wrongTransform(ref *sva.Assertion, rng *rand.Rand) *sva.Assertion {
	a := ref.Clone()
	if impl, ok := a.Body.(*sva.PropImpl); ok {
		// off-by-one consequent delay, or negated consequent
		if ps, ok := impl.P.(*sva.PropSeq); ok {
			if sd, ok := ps.S.(*sva.SeqDelay); ok && !sd.D.Inf {
				sd.D.Lo++
				sd.D.Hi++
				return a
			}
			if se, ok := ps.S.(*sva.SeqExpr); ok {
				se.E = &sva.Unary{Op: "!", X: se.E}
				return a
			}
		}
		// negate the antecedent
		if se, ok := impl.S.(*sva.SeqExpr); ok {
			impl.S = &sva.SeqExpr{E: &sva.Unary{Op: "!", X: se.E}}
			return a
		}
	}
	if ps, ok := a.Body.(*sva.PropSeq); ok {
		if se, ok := ps.S.(*sva.SeqExpr); ok {
			se.E = &sva.Unary{Op: "!", X: se.E}
			return a
		}
	}
	a.Body = &sva.PropNot{P: a.Body}
	return a
}

// syntaxBreak emits text that fails the tool's compile step, drawn
// from the failure modes the paper catalogues (hallucinated operators,
// unknown system functions, unbalanced delimiters).
func syntaxBreak(ref *sva.Assertion, rng *rand.Rand) string {
	base := ref.String()
	switch rng.Intn(4) {
	case 0:
		// invalid "eventually" operator (paper Fig. 7)
		sig := anySignal(ref)
		if sig == "" {
			sig = "sig_A"
		}
		return fmt.Sprintf(`asrt: assert property (@(posedge %s) disable iff (tb_reset)
  %s |-> eventually(%s)
);`, ref.ClockName, sig, sig)
	case 1:
		// unknown system function
		return strings.Replace(base, "assert property", "assert property", 1) +
			"\n// uses $sometimes\n" + strings.Replace(base, ref.Body.String(),
			"$sometimes("+ref.Body.String()+")", 1)
	case 2:
		// unbalanced parenthesis
		return base[:len(base)-2] + "));"
	default:
		// reversed delay range
		sig := anySignal(ref)
		if sig == "" {
			sig = "a"
		}
		return fmt.Sprintf(`assert property (@(posedge %s)
  %s |-> ##[3:1] %s
);`, ref.ClockName, sig, sig)
	}
}

func pickWord(rng *rand.Rand) string {
	words := []string{"check", "prop", "holds", "main", "valid", "ok"}
	return words[rng.Intn(len(words))]
}
