package llm

// Profiles are calibrated against the paper's reported numbers:
// Table 1 (NL2SVA-Human greedy), Table 3 (NL2SVA-Machine 0/3-shot),
// Table 5 (Design2SVA pipeline/FSM), with per-task Jitter fitted to
// the pass@k growth in Tables 2, 4, and 5. The proxy models reproduce
// the SHAPE of the evaluation (model ranking, syntax≫func gap,
// full-vs-partial gap, ICL gains, pass@k improvements); absolute
// values track the targets up to sampling noise on the finite
// instance sets. The AGR column has no published table to calibrate
// against (the paper reports the task family without per-model
// numbers), so its targets encode the expected shape instead: helper
// generation is harder than translation (Func well below Machine3),
// with a wide valid-but-insufficient band (Partial − Func) from
// models proposing true invariants that do not unlock the target.
var Profiles = []Profile{
	{
		ModelName: "gpt-4o",
		Window:    128000,
		Human:     TaskProfile{Syntax: 0.911, Func: 0.456, Partial: 0.582, Jitter: 0.10},
		Machine0:  TaskProfile{Syntax: 0.927, Func: 0.430, Partial: 0.540, Jitter: 0.12},
		Machine3:  TaskProfile{Syntax: 0.937, Func: 0.467, Partial: 0.570, Jitter: 0.12},
		Pipeline:  TaskProfile{Syntax: 0.802, Func: 0.104, Partial: 0.104, Jitter: 0.55},
		FSM:       TaskProfile{Syntax: 0.993, Func: 0.373, Partial: 0.373, Jitter: 0.75},
		AGR:       TaskProfile{Syntax: 0.940, Func: 0.320, Partial: 0.620, Jitter: 0.45},
	},
	{
		ModelName: "gemini-1.5-pro",
		Window:    128000,
		Human:     TaskProfile{Syntax: 0.810, Func: 0.253, Partial: 0.380, Jitter: 0.10},
		Machine0:  TaskProfile{Syntax: 0.467, Func: 0.137, Partial: 0.203, Jitter: 0.12},
		Machine3:  TaskProfile{Syntax: 0.880, Func: 0.417, Partial: 0.517, Jitter: 0.12},
		Pipeline:  TaskProfile{Syntax: 0.665, Func: 0.175, Partial: 0.175, Jitter: 0.55},
		FSM:       TaskProfile{Syntax: 0.950, Func: 0.427, Partial: 0.427, Jitter: 0.75},
		AGR:       TaskProfile{Syntax: 0.900, Func: 0.270, Partial: 0.560, Jitter: 0.45},
	},
	{
		ModelName: "gemini-1.5-flash",
		Window:    128000,
		Human:     TaskProfile{Syntax: 0.949, Func: 0.380, Partial: 0.557, Jitter: 0.09},
		Machine0:  TaskProfile{Syntax: 0.783, Func: 0.377, Partial: 0.470, Jitter: 0.10},
		Machine3:  TaskProfile{Syntax: 0.837, Func: 0.397, Partial: 0.480, Jitter: 0.10},
		Pipeline:  TaskProfile{Syntax: 0.969, Func: 0.025, Partial: 0.025, Jitter: 0.30},
		FSM:       TaskProfile{Syntax: 0.996, Func: 0.079, Partial: 0.079, Jitter: 0.35},
		AGR:       TaskProfile{Syntax: 0.930, Func: 0.150, Partial: 0.480, Jitter: 0.30},
	},
	{
		ModelName: "mixtral-8x22b",
		Window:    64000,
		Human:     TaskProfile{Syntax: 0.823, Func: 0.190, Partial: 0.278, Jitter: 0.10},
		Machine0:  TaskProfile{Syntax: 0.913, Func: 0.327, Partial: 0.500, Jitter: 0.10},
		Machine3:  TaskProfile{Syntax: 0.880, Func: 0.430, Partial: 0.523, Jitter: 0.10},
		Pipeline:  TaskProfile{Syntax: 0.867, Func: 0.119, Partial: 0.119, Jitter: 0.55},
		FSM:       TaskProfile{Syntax: 0.974, Func: 0.054, Partial: 0.054, Jitter: 0.25},
		AGR:       TaskProfile{Syntax: 0.880, Func: 0.130, Partial: 0.450, Jitter: 0.40},
	},
	{
		ModelName: "llama-3.1-70b",
		Window:    128000,
		Human:     TaskProfile{Syntax: 0.861, Func: 0.291, Partial: 0.354, Jitter: 0.12},
		Machine0:  TaskProfile{Syntax: 0.887, Func: 0.303, Partial: 0.397, Jitter: 0.14},
		Machine3:  TaskProfile{Syntax: 0.920, Func: 0.457, Partial: 0.567, Jitter: 0.14},
		Pipeline:  TaskProfile{Syntax: 0.960, Func: 0.167, Partial: 0.167, Jitter: 0.65},
		FSM:       TaskProfile{Syntax: 0.940, Func: 0.231, Partial: 0.231, Jitter: 0.70},
		AGR:       TaskProfile{Syntax: 0.910, Func: 0.220, Partial: 0.520, Jitter: 0.50},
	},
	{
		ModelName: "llama-3-70b",
		Window:    8000,
		Human:     TaskProfile{Syntax: 0.899, Func: 0.291, Partial: 0.506, Jitter: 0.10},
		Machine0:  TaskProfile{Syntax: 0.863, Func: 0.330, Partial: 0.430, Jitter: 0.10},
		Machine3:  TaskProfile{Syntax: 0.860, Func: 0.380, Partial: 0.503, Jitter: 0.10},
		AGR:       TaskProfile{Syntax: 0.840, Func: 0.110, Partial: 0.390, Jitter: 0.35},
	},
	{
		ModelName: "llama-3.1-8b",
		Window:    128000,
		Human:     TaskProfile{Syntax: 0.835, Func: 0.203, Partial: 0.304, Jitter: 0.10},
		Machine0:  TaskProfile{Syntax: 0.813, Func: 0.320, Partial: 0.520, Jitter: 0.10},
		Machine3:  TaskProfile{Syntax: 0.840, Func: 0.267, Partial: 0.370, Jitter: 0.10},
		Pipeline:  TaskProfile{Syntax: 0.904, Func: 0.150, Partial: 0.150, Jitter: 0.60},
		FSM:       TaskProfile{Syntax: 0.906, Func: 0.121, Partial: 0.121, Jitter: 0.55},
		AGR:       TaskProfile{Syntax: 0.860, Func: 0.080, Partial: 0.360, Jitter: 0.40},
	},
	{
		ModelName: "llama-3-8b",
		Window:    8000,
		Human:     TaskProfile{Syntax: 0.747, Func: 0.063, Partial: 0.215, Jitter: 0.10},
		Machine0:  TaskProfile{Syntax: 0.673, Func: 0.187, Partial: 0.320, Jitter: 0.10},
		Machine3:  TaskProfile{Syntax: 0.827, Func: 0.240, Partial: 0.397, Jitter: 0.10},
		AGR:       TaskProfile{Syntax: 0.760, Func: 0.040, Partial: 0.260, Jitter: 0.30},
	},
}

// Models instantiates the full proxy fleet.
func Models() []Model {
	out := make([]Model, 0, len(Profiles))
	for i := range Profiles {
		out = append(out, &ProxyModel{P: Profiles[i]})
	}
	return out
}

// ModelByName finds a proxy by name (nil if absent).
func ModelByName(name string) Model {
	for i := range Profiles {
		if Profiles[i].ModelName == name {
			return &ProxyModel{P: Profiles[i]}
		}
	}
	return nil
}

// DesignModels returns the subset evaluated on Design2SVA (context
// window of at least 32K, as in the paper §4.4).
func DesignModels() []Model {
	var out []Model
	for _, m := range Models() {
		if m.ContextWindow() >= 32000 {
			out = append(out, m)
		}
	}
	return out
}
