package llm

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"fveval/internal/sva"
)

func TestFeedbackModelRefines(t *testing.T) {
	// A proxy tuned to fail syntax often; the feedback wrapper should
	// lift the syntax rate substantially.
	base := &ProxyModel{P: Profile{
		ModelName: "weak-model",
		Window:    128000,
		Human:     TaskProfile{Syntax: 0.40, Func: 0.20, Partial: 0.30, Jitter: 0.2},
	}}
	wrapped := &FeedbackModel{
		Base: base,
		Check: func(_ *Prompt, resp string) error {
			return sva.CheckSyntax(ExtractCode(resp))
		},
		MaxRetries: 3,
	}
	if wrapped.Name() != "weak-model+feedback" {
		t.Fatalf("name: %s", wrapped.Name())
	}
	ref, err := sva.ParseAssertion(`assert property (@(posedge clk) disable iff (tb_reset) a |-> ##1 b);`)
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	basePass, wrapPass := 0, 0
	for i := 0; i < n; i++ {
		p := BuildHumanPrompt("fb-"+itoa(i), "tb", "spec", ref)
		if sva.CheckSyntax(ExtractCode(base.Generate(p, 0))) == nil {
			basePass++
		}
		if sva.CheckSyntax(ExtractCode(wrapped.Generate(p, 0))) == nil {
			wrapPass++
		}
	}
	if wrapPass <= basePass {
		t.Fatalf("feedback loop must improve syntax rate: base %d/%d wrapped %d/%d",
			basePass, n, wrapPass, n)
	}
	// deterministic
	p := BuildHumanPrompt("fb-det", "tb", "spec", ref)
	if wrapped.Generate(p, 0) != wrapped.Generate(p, 0) {
		t.Fatalf("feedback generation must be deterministic")
	}
}

func TestFeedbackModelPassesThroughGood(t *testing.T) {
	base := &ProxyModel{P: Profile{
		ModelName: "perfect",
		Window:    128000,
		Human:     TaskProfile{Syntax: 1.0, Func: 1.0, Partial: 1.0},
	}}
	wrapped := &FeedbackModel{Base: base, Check: func(_ *Prompt, resp string) error {
		return sva.CheckSyntax(ExtractCode(resp))
	}}
	ref, _ := sva.ParseAssertion(`assert property (@(posedge clk) a |-> b);`)
	p := BuildHumanPrompt("x", "tb", "spec", ref)
	resp := wrapped.Generate(p, 0)
	if !strings.Contains(resp, "assert property") {
		t.Fatalf("response lost: %q", resp)
	}
	if resp != base.Generate(p, 0) {
		t.Fatalf("passing responses must not be altered")
	}
}

// TestFeedbackModelContract pins the explicit MaxRetries contract
// (-1 disables, 0 defaults to 2, n>0 bounds) and the Rounds counter.
func TestFeedbackModelContract(t *testing.T) {
	base := &ProxyModel{P: Profile{
		ModelName: "always-bad",
		Window:    128000,
		// Syntax 0: every draw is the syntax-failure class.
		Human: TaskProfile{},
	}}
	ref, _ := sva.ParseAssertion(`assert property (@(posedge clk) a |-> b);`)
	alwaysFail := func(_ *Prompt, _ string) error { return errIota }

	var rounds atomic.Int64
	wrapped := &FeedbackModel{Base: base, Check: alwaysFail, MaxRetries: 3, Rounds: &rounds}
	p := BuildHumanPrompt("contract", "tb", "spec", ref)
	wrapped.Generate(p, 0)
	if got := rounds.Load(); got != 3 {
		t.Fatalf("MaxRetries=3: got %d rounds, want 3", got)
	}

	rounds.Store(0)
	wrapped.MaxRetries = 0 // documented default of 2
	wrapped.Generate(p, 0)
	if got := rounds.Load(); got != 2 {
		t.Fatalf("MaxRetries=0: got %d rounds, want default 2", got)
	}

	rounds.Store(0)
	wrapped.MaxRetries = -1 // disabled
	if got := wrapped.Generate(p, 0); got != base.Generate(p, 0) {
		t.Fatal("MaxRetries=-1 must return the unrefined base response")
	}
	if got := rounds.Load(); got != 0 {
		t.Fatalf("MaxRetries=-1: got %d rounds, want 0", got)
	}

	// A passing check performs zero rounds.
	rounds.Store(0)
	ok := &FeedbackModel{Base: base, Check: func(_ *Prompt, _ string) error { return nil }, MaxRetries: 3, Rounds: &rounds}
	ok.Generate(p, 0)
	if got := rounds.Load(); got != 0 {
		t.Fatalf("passing response: got %d rounds, want 0", got)
	}
}

var errIota = errors.New("rejected")
