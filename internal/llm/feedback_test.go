package llm

import (
	"strings"
	"testing"

	"fveval/internal/sva"
)

func TestFeedbackModelRefines(t *testing.T) {
	// A proxy tuned to fail syntax often; the feedback wrapper should
	// lift the syntax rate substantially.
	base := &ProxyModel{P: Profile{
		ModelName: "weak-model",
		Window:    128000,
		Human:     TaskProfile{Syntax: 0.40, Func: 0.20, Partial: 0.30, Jitter: 0.2},
	}}
	wrapped := &FeedbackModel{
		Base: base,
		Check: func(resp string) error {
			return sva.CheckSyntax(ExtractCode(resp))
		},
		MaxRetries: 3,
	}
	if wrapped.Name() != "weak-model+feedback" {
		t.Fatalf("name: %s", wrapped.Name())
	}
	ref, err := sva.ParseAssertion(`assert property (@(posedge clk) disable iff (tb_reset) a |-> ##1 b);`)
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	basePass, wrapPass := 0, 0
	for i := 0; i < n; i++ {
		p := BuildHumanPrompt("fb-"+itoa(i), "tb", "spec", ref)
		if sva.CheckSyntax(ExtractCode(base.Generate(p, 0))) == nil {
			basePass++
		}
		if sva.CheckSyntax(ExtractCode(wrapped.Generate(p, 0))) == nil {
			wrapPass++
		}
	}
	if wrapPass <= basePass {
		t.Fatalf("feedback loop must improve syntax rate: base %d/%d wrapped %d/%d",
			basePass, n, wrapPass, n)
	}
	// deterministic
	p := BuildHumanPrompt("fb-det", "tb", "spec", ref)
	if wrapped.Generate(p, 0) != wrapped.Generate(p, 0) {
		t.Fatalf("feedback generation must be deterministic")
	}
}

func TestFeedbackModelPassesThroughGood(t *testing.T) {
	base := &ProxyModel{P: Profile{
		ModelName: "perfect",
		Window:    128000,
		Human:     TaskProfile{Syntax: 1.0, Func: 1.0, Partial: 1.0},
	}}
	wrapped := &FeedbackModel{Base: base, Check: func(resp string) error {
		return sva.CheckSyntax(ExtractCode(resp))
	}}
	ref, _ := sva.ParseAssertion(`assert property (@(posedge clk) a |-> b);`)
	p := BuildHumanPrompt("x", "tb", "spec", ref)
	resp := wrapped.Generate(p, 0)
	if !strings.Contains(resp, "assert property") {
		t.Fatalf("response lost: %q", resp)
	}
	if resp != base.Generate(p, 0) {
		t.Fatalf("passing responses must not be altered")
	}
}
