package llm

import (
	"fmt"
	"sync/atomic"
)

// FeedbackModel wraps a base model with a tool-feedback refinement
// loop — the agentic usage the paper's §6 proposes and the CEX-guided
// refinement track measures (Figure R): when a response fails the
// tool check, the failure message (syntax error, or a rendered
// counterexample trace) is appended to the prompt and the model
// retries.
//
// For proxy models the retry is modeled as a fresh sample with the
// feedback folded into the sampling salt; real endpoint models receive
// the feedback text verbatim.
type FeedbackModel struct {
	Base Model
	// Check returns nil when the response passes the tool; the error
	// text is fed back on retry. The original prompt is passed so
	// checks can reach the instance context (reference assertion,
	// design). Typically sva.CheckSyntax on the extracted code, or
	// core.RefineFeedback for counterexample-guided refinement.
	Check func(p *Prompt, response string) error
	// MaxRetries bounds refinement rounds. The contract is explicit:
	//
	//	> 0 — at most that many retries;
	//	  0 — the default of 2 retries;
	//	< 0 — refinement disabled (the base response is returned
	//	      unchecked).
	MaxRetries int
	// Rounds, when non-nil, accumulates the number of retry rounds
	// actually performed (a Generate call that passes on the first try
	// adds 0). Shared across goroutines; surfaced as the RefineRounds
	// report stat.
	Rounds *atomic.Int64
}

// Name implements Model.
func (m *FeedbackModel) Name() string { return m.Base.Name() + "+feedback" }

// ContextWindow implements Model.
func (m *FeedbackModel) ContextWindow() int { return m.Base.ContextWindow() }

// Generate implements Model: it re-queries the base model with tool
// feedback until the check passes or retries are exhausted, returning
// the last response.
func (m *FeedbackModel) Generate(p *Prompt, sample int) string {
	retries := m.MaxRetries
	switch {
	case retries < 0:
		retries = 0
	case retries == 0:
		retries = 2
	}
	resp := m.Base.Generate(p, sample)
	if m.Check == nil || retries == 0 {
		return resp
	}
	for round := 1; round <= retries; round++ {
		err := m.Check(p, resp)
		if err == nil {
			return resp
		}
		if m.Rounds != nil {
			m.Rounds.Add(1)
		}
		// Fold the tool feedback into the prompt (endpoint models see
		// the text; proxies see a distinct instance salt so the retry
		// is an independent draw — empirically how retry-on-tool-
		// rejection behaves).
		fp := *p
		fp.User = p.User + fmt.Sprintf("\nThe previous response was rejected by the verification tool: %v\nPlease fix the SystemVerilog and answer again.\n", err)
		fp.InstanceID = fmt.Sprintf("%s/fb%d", p.InstanceID, round)
		resp = m.Base.Generate(&fp, sample)
	}
	return resp
}
