package llm

import (
	"fmt"
)

// FeedbackModel wraps a base model with a tool-feedback refinement
// loop — the agentic usage the paper's §6 proposes as future work:
// when a response fails the formal tool's compile step, the failure
// message is appended to the prompt and the model retries.
//
// For proxy models the retry is modeled as a fresh sample with the
// feedback folded into the sampling salt; real endpoint models receive
// the feedback text verbatim.
type FeedbackModel struct {
	Base Model
	// Check returns nil when the response compiles; the error text is
	// fed back on retry. Typically sva.CheckSyntax on the extracted
	// code.
	Check func(response string) error
	// MaxRetries bounds refinement rounds (default 2).
	MaxRetries int
}

// Name implements Model.
func (m *FeedbackModel) Name() string { return m.Base.Name() + "+feedback" }

// ContextWindow implements Model.
func (m *FeedbackModel) ContextWindow() int { return m.Base.ContextWindow() }

// Generate implements Model: it re-queries the base model with tool
// feedback until the check passes or retries are exhausted, returning
// the last response.
func (m *FeedbackModel) Generate(p *Prompt, sample int) string {
	retries := m.MaxRetries
	if retries == 0 {
		retries = 2
	}
	resp := m.Base.Generate(p, sample)
	if m.Check == nil {
		return resp
	}
	for round := 1; round <= retries; round++ {
		err := m.Check(resp)
		if err == nil {
			return resp
		}
		// Fold the tool feedback into the prompt (endpoint models see
		// the text; proxies see a distinct instance salt so the retry
		// is an independent draw — empirically how retry-on-compile-
		// error behaves).
		fp := *p
		fp.User = p.User + fmt.Sprintf("\nThe previous response failed to compile: %v\nPlease fix the SystemVerilog and answer again.\n", err)
		fp.InstanceID = fmt.Sprintf("%s/fb%d", p.InstanceID, round)
		resp = m.Base.Generate(&fp, sample)
	}
	return resp
}
