package llm

import (
	"math"
	"strings"
	"testing"

	"fveval/internal/equiv"
	"fveval/internal/gen/rtlgen"
	"fveval/internal/sva"
)

func refAssertion(t *testing.T) *sva.Assertion {
	t.Helper()
	a, err := sva.ParseAssertion(`asrt: assert property (@(posedge clk) disable iff (tb_reset)
		(wr_push && fifo_empty) |-> ##2 rd_pop);`)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPromptShapes(t *testing.T) {
	ref := refAssertion(t)
	hp := BuildHumanPrompt("fifo_0", "module tb(); endmodule", "that the FIFO works.", ref)
	if !strings.Contains(hp.User, "Question: Create a SVA assertion that checks:") {
		t.Errorf("human prompt missing question")
	}
	if !strings.Contains(hp.User, "module tb") {
		t.Errorf("human prompt missing testbench")
	}
	mp0 := BuildMachinePrompt("m_0", "sig_D is high.", 0, ref)
	if strings.Contains(mp0.User, "More detailed examples") {
		t.Errorf("0-shot prompt must not contain ICL examples")
	}
	mp3 := BuildMachinePrompt("m_0", "sig_D is high.", 3, ref)
	if !strings.Contains(mp3.User, "More detailed examples") {
		t.Errorf("3-shot prompt must contain ICL examples")
	}
	inst := rtlgen.GenerateFSM(rtlgen.FSMParams{States: 4, Edges: 6, Width: 8, Complexity: 2, Seed: 3})
	dp := BuildDesignPrompt(inst)
	if !strings.Contains(dp.User, "Do NOT use signals from the design RTL") {
		t.Errorf("design prompt missing constraints")
	}
}

func TestExtractCode(t *testing.T) {
	raw := "```systemverilog\nassert property (@(posedge clk) a);\n```"
	if got := ExtractCode(raw); got != "assert property (@(posedge clk) a);" {
		t.Errorf("extract: %q", got)
	}
	if got := ExtractCode("no fences"); got != "no fences" {
		t.Errorf("plain passthrough: %q", got)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	m := ModelByName("gpt-4o")
	ref := refAssertion(t)
	p := BuildHumanPrompt("x_1", "tb", "spec", ref)
	a := m.Generate(p, 0)
	b := m.Generate(p, 0)
	if a != b {
		t.Fatalf("greedy generation must be deterministic")
	}
	s1 := m.Generate(p, 1)
	s2 := m.Generate(p, 2)
	_ = s1
	_ = s2 // samples may or may not differ; just must not panic
}

func TestProfileFleet(t *testing.T) {
	if len(Models()) != 8 {
		t.Fatalf("expected 8 models, got %d", len(Models()))
	}
	dm := DesignModels()
	if len(dm) != 6 {
		t.Fatalf("expected 6 design-capable models, got %d", len(dm))
	}
	for _, m := range dm {
		if m.Name() == "llama-3-70b" || m.Name() == "llama-3-8b" {
			t.Errorf("short-context model %s must be excluded from Design2SVA", m.Name())
		}
	}
	if ModelByName("nonexistent") != nil {
		t.Fatalf("unknown model must return nil")
	}
}

// TestResponseClassesMatchVerdicts drives the full verdict pipeline on
// many instances of a single model and checks the measured class rates
// land near the profile targets — the calibration contract.
func TestResponseClassesMatchVerdicts(t *testing.T) {
	m := &ProxyModel{P: Profile{
		ModelName: "test-model",
		Window:    128000,
		Human:     TaskProfile{Syntax: 0.90, Func: 0.45, Partial: 0.60, Jitter: 0.1},
	}}
	ref := refAssertion(t)
	sigs := &equiv.Sigs{Widths: map[string]int{
		"clk": 1, "tb_reset": 1, "wr_push": 1, "fifo_empty": 1, "rd_pop": 1,
	}}
	const n = 220
	var syntax, full, partial int
	for i := 0; i < n; i++ {
		p := BuildHumanPrompt(strings.Repeat("i", i%7)+"-"+string(rune('a'+i%26))+itoa(i), "tb", "spec", ref)
		resp := ExtractCode(m.Generate(p, 0))
		cand, err := sva.ParseAssertion(resp)
		if err != nil {
			continue // syntax failure
		}
		if sva.Validate(cand) != nil {
			continue
		}
		res, err := equiv.Check(cand, ref, sigs, equiv.Options{})
		if err != nil {
			continue // elaboration failure counts against syntax
		}
		syntax++
		switch res.Verdict {
		case equiv.Equivalent:
			full++
			partial++
		case equiv.AImpliesB, equiv.BImpliesA:
			partial++
		}
	}
	sRate := float64(syntax) / n
	fRate := float64(full) / n
	pRate := float64(partial) / n
	if math.Abs(sRate-0.90) > 0.08 {
		t.Errorf("syntax rate %.3f too far from 0.90", sRate)
	}
	if math.Abs(fRate-0.45) > 0.10 {
		t.Errorf("func rate %.3f too far from 0.45", fRate)
	}
	if math.Abs(pRate-0.60) > 0.10 {
		t.Errorf("partial rate %.3f too far from 0.60", pRate)
	}
	if !(pRate > fRate) {
		t.Errorf("partial (%f) must exceed func (%f)", pRate, fRate)
	}
}

func TestDesignResponsesParse(t *testing.T) {
	m := ModelByName("gpt-4o")
	for _, kind := range []string{"fsm", "pipeline"} {
		var inst *rtlgen.Instance
		if kind == "fsm" {
			inst = rtlgen.GenerateFSM(rtlgen.FSMParams{States: 4, Edges: 6, Width: 8, Complexity: 2, Seed: 5})
		} else {
			inst = rtlgen.GeneratePipeline(rtlgen.PipelineParams{Units: 1, Depth: 3, Width: 8, Complexity: 2, Seed: 5})
		}
		p := BuildDesignPrompt(inst)
		for s := 0; s < 5; s++ {
			resp := m.Generate(p, s)
			if !strings.Contains(resp, "assert property") {
				t.Errorf("%s sample %d: no assertion in response", kind, s)
			}
		}
	}
}

func itoa(n int) string {
	digits := "0123456789"
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(digits[n%10]) + s
		n /= 10
	}
	return s
}
