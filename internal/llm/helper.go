package llm

import (
	"math/rand"
	"strings"
)

// helperResponse synthesizes an AGR helper-set response from the
// instance's ground-truth pools, class-typed like the other proxy
// channels (DESIGN.md §2):
//
//	classEquivalent — the golden helper set, shuffled (the judge's
//	                  prove-then-assume fixpoint is order-independent)
//	                  and sometimes relabeled: valid and unlocking.
//	classPartial    — the Insufficient pool: a provable invariant
//	                  (often the decoy counter's) that does not unlock
//	                  the target.
//	classWrong      — the Invalid pool: parses and elaborates but is
//	                  falsifiable, so the lemma pipeline refuses to
//	                  assume it.
//	classSyntax     — text the compile step rejects.
func (m *ProxyModel) helperResponse(p *Prompt, class responseClass, rng *rand.Rand) string {
	inst := p.Helper
	if inst == nil {
		return "assert property (@(posedge clk) 1'b1);"
	}
	switch class {
	case classEquivalent:
		helpers := append([]string(nil), inst.Helpers...)
		rng.Shuffle(len(helpers), func(i, j int) {
			helpers[i], helpers[j] = helpers[j], helpers[i]
		})
		for i, h := range helpers {
			if rng.Intn(3) == 0 {
				helpers[i] = strings.Replace(h, ": assert property", "_"+pickWord(rng)+": assert property", 1)
			}
		}
		return strings.Join(helpers, "\n")
	case classPartial:
		return inst.Insufficient
	case classWrong:
		return inst.Invalid
	default:
		broken := inst.Helpers[rng.Intn(len(inst.Helpers))]
		switch rng.Intn(3) {
		case 0:
			// unbalanced parenthesis
			return strings.Replace(broken, ");", "));", 1)
		case 1:
			// hallucinated "invariant" keyword
			return strings.Replace(broken, "assert property", "assert invariant property", 1)
		default:
			// dropped terminator: the statement never closes
			return strings.TrimSuffix(strings.TrimSpace(broken), ";")
		}
	}
}
