package rtl

import (
	"fmt"
	"strings"

	"fveval/internal/sv"
	"fveval/internal/sva"
)

// Preprocess expands `define macros (object-like, single line) and
// strips the directives. Unknown macros cause an error at parse time.
func Preprocess(src string) (string, map[string]string) {
	defines := map[string]string{}
	var out []string
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "`define") {
			rest := strings.TrimSpace(trimmed[len("`define"):])
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) == 2 {
				defines[parts[0]] = strings.TrimSpace(parts[1])
			} else if len(parts) == 1 && parts[0] != "" {
				defines[parts[0]] = "1"
			}
			out = append(out, "")
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n"), defines
}

// Parse parses a source file (after running the preprocessor).
func Parse(src string) (*File, error) {
	text, defines := Preprocess(src)
	toks, err := sv.Tokenize(text)
	if err != nil {
		return nil, err
	}
	// Splice macro uses.
	toks, err = expandMacros(toks, defines)
	if err != nil {
		return nil, err
	}
	p := &rparser{toks: toks}
	f := &File{}
	for !p.at(sv.EOF, "") {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		f.Modules = append(f.Modules, m)
	}
	return f, nil
}

func expandMacros(toks []sv.Token, defines map[string]string) ([]sv.Token, error) {
	var out []sv.Token
	for _, t := range toks {
		if t.Kind != sv.Macro {
			out = append(out, t)
			continue
		}
		def, ok := defines[t.Text]
		if !ok {
			return nil, fmt.Errorf("%v: undefined macro `%s", t.Pos, t.Text)
		}
		sub, err := sv.Tokenize(def)
		if err != nil {
			return nil, fmt.Errorf("%v: in macro `%s: %v", t.Pos, t.Text, err)
		}
		for _, st := range sub {
			if st.Kind == sv.EOF {
				break
			}
			st.Pos = t.Pos
			out = append(out, st)
		}
	}
	return out, nil
}

type rparser struct {
	toks []sv.Token
	i    int
}

func (p *rparser) peek() sv.Token { return p.toks[p.i] }
func (p *rparser) peekAt(off int) sv.Token {
	if p.i+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+off]
}

func (p *rparser) next() sv.Token {
	t := p.toks[p.i]
	if t.Kind != sv.EOF {
		p.i++
	}
	return t
}

func (p *rparser) at(k sv.Kind, text string) bool {
	t := p.peek()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *rparser) accept(k sv.Kind, text string) bool {
	if p.at(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *rparser) expect(k sv.Kind, text string) (sv.Token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return sv.Token{}, fmt.Errorf("%v: expected %q, found %v", p.peek().Pos, text, p.peek())
}

func (p *rparser) parseExpr() (sva.Expr, error) {
	e, ni, err := sva.ParseExprTokens(p.toks, p.i)
	if err != nil {
		return nil, err
	}
	p.i = ni
	return e, nil
}

func (p *rparser) parseModule() (*Module, error) {
	if _, err := p.expect(sv.Keyword, "module"); err != nil {
		return nil, err
	}
	name, err := p.expect(sv.Ident, "")
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name.Text}
	// optional #(parameter ...) header — not used by the benchmark
	// sources but accepted.
	if p.accept(sv.Punct, "#") {
		if _, err := p.expect(sv.Punct, "("); err != nil {
			return nil, err
		}
		for !p.at(sv.Punct, ")") {
			p.accept(sv.Keyword, "parameter")
			pname, err := p.expect(sv.Ident, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sv.Punct, "="); err != nil {
				return nil, err
			}
			def, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, Param{Name: pname.Text, Default: def})
			if !p.accept(sv.Punct, ",") {
				break
			}
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
	}
	// port list
	if p.accept(sv.Punct, "(") {
		for !p.at(sv.Punct, ")") {
			// tolerate ANSI-style "input ..." in the port list by
			// skipping keywords and ranges.
			for p.at(sv.Keyword, "input") || p.at(sv.Keyword, "output") ||
				p.at(sv.Keyword, "inout") || p.at(sv.Keyword, "wire") ||
				p.at(sv.Keyword, "reg") || p.at(sv.Keyword, "logic") {
				p.next()
			}
			for p.at(sv.Punct, "[") {
				if err := p.skipBrackets(); err != nil {
					return nil, err
				}
			}
			pn, err := p.expect(sv.Ident, "")
			if err != nil {
				return nil, err
			}
			m.Ports = append(m.Ports, pn.Text)
			if !p.accept(sv.Punct, ",") {
				break
			}
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(sv.Punct, ";"); err != nil {
		return nil, err
	}
	// items
	for !p.at(sv.Keyword, "endmodule") {
		if p.at(sv.EOF, "") {
			return nil, fmt.Errorf("unexpected EOF inside module %s", m.Name)
		}
		items, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	p.next() // endmodule
	return m, nil
}

func (p *rparser) skipBrackets() error {
	if _, err := p.expect(sv.Punct, "["); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch {
		case t.Kind == sv.EOF:
			return fmt.Errorf("unterminated bracket")
		case t.Kind == sv.Punct && t.Text == "[":
			depth++
		case t.Kind == sv.Punct && t.Text == "]":
			depth--
		}
	}
	return nil
}

// parseItem parses one module item; parameter lists may yield several.
func (p *rparser) parseItem() ([]Item, error) {
	t := p.peek()
	switch {
	case t.Kind == sv.Keyword && (t.Text == "parameter" || t.Text == "localparam"):
		return p.parseParams()
	case t.Kind == sv.Keyword && (t.Text == "input" || t.Text == "output" ||
		t.Text == "inout" || t.Text == "wire" || t.Text == "reg" ||
		t.Text == "logic" || t.Text == "genvar" || t.Text == "integer"):
		return p.parseDecl()
	case t.Kind == sv.Keyword && t.Text == "assign":
		return p.parseAssign()
	case t.Kind == sv.Keyword && (t.Text == "always" || t.Text == "always_ff" || t.Text == "always_comb"):
		a, err := p.parseAlways()
		if err != nil {
			return nil, err
		}
		return []Item{a}, nil
	case t.Kind == sv.Keyword && t.Text == "generate":
		p.next()
		var out []Item
		for !p.at(sv.Keyword, "endgenerate") {
			items, err := p.parseItem()
			if err != nil {
				return nil, err
			}
			out = append(out, items...)
		}
		p.next()
		return out, nil
	case t.Kind == sv.Keyword && t.Text == "for":
		g, err := p.parseGenFor()
		if err != nil {
			return nil, err
		}
		return []Item{g}, nil
	case t.Kind == sv.Keyword && (t.Text == "assert" || t.Text == "assume" || t.Text == "cover"):
		return p.parseAssertItem("")
	case t.Kind == sv.Keyword && t.Text == "initial":
		return nil, fmt.Errorf("%v: initial blocks are not allowed in formal testbenches", t.Pos)
	case t.Kind == sv.Ident:
		// Either a labeled assertion, an instantiation, or a genvar
		// for-loop using a declared genvar.
		if p.peekAt(1).Kind == sv.Punct && p.peekAt(1).Text == ":" &&
			p.peekAt(2).Kind == sv.Keyword &&
			(p.peekAt(2).Text == "assert" || p.peekAt(2).Text == "assume" || p.peekAt(2).Text == "cover") {
			label := p.next().Text
			p.next() // :
			return p.parseAssertItem(label)
		}
		return p.parseInstance()
	}
	return nil, fmt.Errorf("%v: unexpected token %v at module level", t.Pos, t)
}

func (p *rparser) parseParams() ([]Item, error) {
	kw := p.next().Text
	isLocal := kw == "localparam"
	var out []Item
	_ = out
	var items []Item
	for {
		name, err := p.expect(sv.Ident, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, "="); err != nil {
			return nil, err
		}
		def, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, &paramItem{Param{Name: name.Text, Default: def, IsLocal: isLocal}})
		if !p.accept(sv.Punct, ",") {
			break
		}
	}
	if _, err := p.expect(sv.Punct, ";"); err != nil {
		return nil, err
	}
	return items, nil
}

// paramItem wraps a Param as an Item so parameters stay in source
// order relative to generate loops.
type paramItem struct{ P Param }

func (*paramItem) itemNode() {}

func (p *rparser) parseDecl() ([]Item, error) {
	kind := p.next().Text
	kind2 := ""
	if kind == "input" || kind == "output" || kind == "inout" {
		if p.at(sv.Keyword, "reg") || p.at(sv.Keyword, "wire") || p.at(sv.Keyword, "logic") {
			kind2 = p.next().Text
		}
	}
	p.accept(sv.Keyword, "signed")
	p.accept(sv.Keyword, "unsigned")
	var packed []Range
	for p.at(sv.Punct, "[") {
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		packed = append(packed, r)
	}
	var items []Item
	for {
		name, err := p.expect(sv.Ident, "")
		if err != nil {
			return nil, err
		}
		var unpacked []Range
		for p.at(sv.Punct, "[") {
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			unpacked = append(unpacked, r)
		}
		d := &Decl{Kind: kind, Kind2: kind2, Packed: packed, Name: name.Text, Unpacked: unpacked}
		items = append(items, d)
		if p.accept(sv.Punct, "=") {
			// declaration assignment: logic x = expr;
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &Assign{LHS: &sva.Ident{Name: name.Text}, RHS: rhs})
		}
		if !p.accept(sv.Punct, ",") {
			break
		}
	}
	if _, err := p.expect(sv.Punct, ";"); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *rparser) parseRange() (Range, error) {
	if _, err := p.expect(sv.Punct, "["); err != nil {
		return Range{}, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return Range{}, err
	}
	if _, err := p.expect(sv.Punct, ":"); err != nil {
		return Range{}, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return Range{}, err
	}
	if _, err := p.expect(sv.Punct, "]"); err != nil {
		return Range{}, err
	}
	return Range{Hi: hi, Lo: lo}, nil
}

func (p *rparser) parseAssign() ([]Item, error) {
	p.next() // assign
	var items []Item
	for {
		lhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, "="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, &Assign{LHS: lhs, RHS: rhs})
		if !p.accept(sv.Punct, ",") {
			break
		}
	}
	if _, err := p.expect(sv.Punct, ";"); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *rparser) parseAlways() (*Always, error) {
	kw := p.next().Text
	a := &Always{}
	switch kw {
	case "always_comb":
		a.Kind = "comb"
	case "always_ff":
		a.Kind = "ff"
	default:
		a.Kind = "plain"
	}
	if a.Kind != "comb" {
		if p.accept(sv.Punct, "@") {
			if _, err := p.expect(sv.Punct, "("); err != nil {
				return nil, err
			}
			for {
				edge := ""
				if p.accept(sv.Keyword, "posedge") {
					edge = "posedge"
				} else if p.accept(sv.Keyword, "negedge") {
					edge = "negedge"
				} else {
					return nil, fmt.Errorf("%v: expected posedge/negedge", p.peek().Pos)
				}
				sig, err := p.expect(sv.Ident, "")
				if err != nil {
					return nil, err
				}
				a.Edges = append(a.Edges, Edge{Kind: edge, Signal: sig.Text})
				if !p.accept(sv.Keyword, "or") && !p.accept(sv.Punct, ",") {
					break
				}
			}
			if _, err := p.expect(sv.Punct, ")"); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	a.Body = body
	return a, nil
}

func (p *rparser) parseStmtOrBlock() ([]Stmt, error) {
	if p.accept(sv.Keyword, "begin") {
		// optional block label
		if p.accept(sv.Punct, ":") {
			if _, err := p.expect(sv.Ident, ""); err != nil {
				return nil, err
			}
		}
		var out []Stmt
		for !p.at(sv.Keyword, "end") {
			if p.at(sv.EOF, "") {
				return nil, fmt.Errorf("unexpected EOF in block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				out = append(out, s)
			}
		}
		p.next() // end
		return out, nil
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []Stmt{s}, nil
}

func (p *rparser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.Kind == sv.Punct && t.Text == ";":
		p.next()
		return nil, nil
	case t.Kind == sv.Keyword && t.Text == "if":
		p.next()
		if _, err := p.expect(sv.Punct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		st := &If{Cond: cond, Then: then}
		if p.accept(sv.Keyword, "else") {
			els, err := p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case t.Kind == sv.Keyword && t.Text == "case":
		p.next()
		if _, err := p.expect(sv.Punct, "("); err != nil {
			return nil, err
		}
		subj, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
		c := &Case{Subject: subj}
		for !p.at(sv.Keyword, "endcase") {
			if p.at(sv.EOF, "") {
				return nil, fmt.Errorf("unexpected EOF in case")
			}
			var item CaseItem
			if p.accept(sv.Keyword, "default") {
				p.accept(sv.Punct, ":")
			} else {
				for {
					lbl, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Labels = append(item.Labels, lbl)
					if !p.accept(sv.Punct, ",") {
						break
					}
				}
				if _, err := p.expect(sv.Punct, ":"); err != nil {
					return nil, err
				}
			}
			body, err := p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
			item.Body = body
			c.Items = append(c.Items, item)
		}
		p.next() // endcase
		return c, nil
	}
	// assignment: lhs <= rhs; or lhs = rhs;
	lhs, ni, err := sva.ParseLValueTokens(p.toks, p.i)
	if err != nil {
		return nil, err
	}
	p.i = ni
	nb := false
	switch {
	case p.accept(sv.Punct, "<="):
		nb = true
	case p.accept(sv.Punct, "="):
	default:
		return nil, fmt.Errorf("%v: expected assignment operator", p.peek().Pos)
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(sv.Punct, ";"); err != nil {
		return nil, err
	}
	return &ProcAssign{LHS: lhs, RHS: rhs, NonBlocking: nb}, nil
}

func (p *rparser) parseGenFor() (*GenFor, error) {
	p.next() // for
	if _, err := p.expect(sv.Punct, "("); err != nil {
		return nil, err
	}
	p.accept(sv.Keyword, "genvar")
	name, err := p.expect(sv.Ident, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(sv.Punct, "="); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(sv.Punct, ";"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(sv.Punct, ";"); err != nil {
		return nil, err
	}
	// step: i++ / i=i+1 / i=i+2 ...
	stepVar, err := p.expect(sv.Ident, "")
	if err != nil {
		return nil, err
	}
	if stepVar.Text != name.Text {
		return nil, fmt.Errorf("%v: for-loop step must update %s", stepVar.Pos, name.Text)
	}
	var step sva.Expr
	if p.accept(sv.Punct, "++") {
		step = &sva.Binary{Op: "+", X: &sva.Ident{Name: name.Text}, Y: &sva.Num{Text: "1", Value: 1}}
	} else {
		if _, err := p.expect(sv.Punct, "="); err != nil {
			return nil, err
		}
		step, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(sv.Punct, ")"); err != nil {
		return nil, err
	}
	g := &GenFor{Var: name.Text, Init: init, Cond: cond, Step: step}
	if _, err := p.expect(sv.Keyword, "begin"); err != nil {
		return nil, err
	}
	if p.accept(sv.Punct, ":") {
		lbl, err := p.expect(sv.Ident, "")
		if err != nil {
			return nil, err
		}
		g.Label = lbl.Text
	}
	for !p.at(sv.Keyword, "end") {
		if p.at(sv.EOF, "") {
			return nil, fmt.Errorf("unexpected EOF in generate for")
		}
		items, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		g.Body = append(g.Body, items...)
	}
	p.next() // end
	return g, nil
}

func (p *rparser) parseAssertItem(label string) ([]Item, error) {
	// Re-lex the assertion through the sva parser: capture tokens from
	// "assert" to the closing ");".
	start := p.i
	switch {
	case p.accept(sv.Keyword, "assert"), p.accept(sv.Keyword, "assume"), p.accept(sv.Keyword, "cover"):
	default:
		return nil, fmt.Errorf("%v: expected assert/assume/cover", p.peek().Pos)
	}
	if _, err := p.expect(sv.Keyword, "property"); err != nil {
		return nil, err
	}
	if _, err := p.expect(sv.Punct, "("); err != nil {
		return nil, err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch {
		case t.Kind == sv.EOF:
			return nil, fmt.Errorf("unterminated assertion")
		case t.Kind == sv.Punct && t.Text == "(":
			depth++
		case t.Kind == sv.Punct && t.Text == ")":
			depth--
		}
	}
	p.accept(sv.Punct, ";")
	var b strings.Builder
	for _, t := range p.toks[start:p.i] {
		if t.Kind == sv.String {
			b.WriteString("\"" + t.Text + "\" ")
			continue
		}
		b.WriteString(t.Text)
		b.WriteString(" ")
	}
	a, err := sva.ParseAssertion(b.String())
	if err != nil {
		return nil, err
	}
	a.Label = label
	return []Item{&AssertItem{A: a}}, nil
}

func (p *rparser) parseInstance() ([]Item, error) {
	modName, err := p.expect(sv.Ident, "")
	if err != nil {
		return nil, err
	}
	inst := &Instance{ModName: modName.Text, Params: map[string]sva.Expr{}, Conns: map[string]sva.Expr{}}
	if p.accept(sv.Punct, "#") {
		if _, err := p.expect(sv.Punct, "("); err != nil {
			return nil, err
		}
		for !p.at(sv.Punct, ")") {
			if _, err := p.expect(sv.Punct, "."); err != nil {
				return nil, err
			}
			pn, err := p.expect(sv.Ident, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sv.Punct, "("); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sv.Punct, ")"); err != nil {
				return nil, err
			}
			inst.Params[pn.Text] = val
			if !p.accept(sv.Punct, ",") {
				break
			}
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
	}
	instName, err := p.expect(sv.Ident, "")
	if err != nil {
		return nil, err
	}
	inst.Name = instName.Text
	if _, err := p.expect(sv.Punct, "("); err != nil {
		return nil, err
	}
	for !p.at(sv.Punct, ")") {
		if _, err := p.expect(sv.Punct, "."); err != nil {
			return nil, err
		}
		pn, err := p.expect(sv.Ident, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, "("); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sv.Punct, ")"); err != nil {
			return nil, err
		}
		inst.Conns[pn.Text] = val
		if !p.accept(sv.Punct, ",") {
			break
		}
	}
	if _, err := p.expect(sv.Punct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(sv.Punct, ";"); err != nil {
		return nil, err
	}
	return []Item{inst}, nil
}
