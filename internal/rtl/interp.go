package rtl

import (
	"fmt"
	"math/bits"

	"fveval/internal/sva"
)

// cval is a concrete SystemVerilog value: data plus width.
type cval struct {
	v uint64
	w int
}

func (c cval) mask() cval {
	c.v &= maskOf(c.w)
	return c
}

// Interp is a concrete two-state simulator over an elaborated System.
// It computes the reset state and serves as the oracle for
// symbolic-vs-concrete cross checks in tests.
type Interp struct {
	Sys  *System
	Regs map[string]uint64
}

// NewInterp returns a simulator with registers at their reset values.
func NewInterp(sys *System) *Interp {
	in := &Interp{Sys: sys, Regs: map[string]uint64{}}
	for _, r := range sys.Regs {
		in.Regs[r.Name] = r.Init
	}
	return in
}

// Step evaluates one clock cycle with the given input values (missing
// inputs default to 0), commits the next register state, and returns
// the observed value of every signal during the cycle.
func (in *Interp) Step(inputs map[string]uint64) (map[string]uint64, error) {
	vals, err := in.evalCycle(inputs)
	if err != nil {
		return nil, err
	}
	next := map[string]uint64{}
	for _, r := range in.Sys.Regs {
		nv, err := in.eval(r.Next, vals, map[string]bool{})
		if err != nil {
			return nil, fmt.Errorf("register %s: %v", r.Name, err)
		}
		next[r.Name] = nv.mask().v & maskOf(r.Width)
	}
	in.Regs = next
	return vals, nil
}

// Peek evaluates the current cycle without committing state.
func (in *Interp) Peek(inputs map[string]uint64) (map[string]uint64, error) {
	return in.evalCycle(inputs)
}

func (in *Interp) evalCycle(inputs map[string]uint64) (map[string]uint64, error) {
	vals := map[string]uint64{}
	for _, s := range in.Sys.Inputs {
		vals[s.Name] = inputs[s.Name] & maskOf(s.Width)
	}
	for _, r := range in.Sys.Regs {
		vals[r.Name] = in.Regs[r.Name] & maskOf(r.Width)
	}
	for i := range in.Sys.Nets {
		if _, err := in.netValue(in.Sys.Nets[i].Name, vals, map[string]bool{}); err != nil {
			return nil, err
		}
	}
	return vals, nil
}

func (in *Interp) netValue(name string, vals map[string]uint64, busy map[string]bool) (cval, error) {
	if v, ok := vals[name]; ok {
		return cval{v, in.widthOf(name)}, nil
	}
	net, ok := in.Sys.NetByName(name)
	if !ok {
		return cval{}, fmt.Errorf("undeclared signal %q", name)
	}
	if busy[name] {
		return cval{}, fmt.Errorf("combinational loop through %q", name)
	}
	busy[name] = true
	v, err := in.eval(net.Expr, vals, busy)
	if err != nil {
		return cval{}, err
	}
	delete(busy, name)
	out := cval{v.v & maskOf(net.Width), net.Width}
	vals[name] = out.v
	return out, nil
}

func (in *Interp) widthOf(name string) int {
	if w, ok := in.Sys.Widths[name]; ok {
		return w
	}
	return 64
}

// eval evaluates an elaborated expression concretely. The expression
// language here is the post-elaboration subset (no $past family, no
// free parameters).
func (in *Interp) eval(e sva.Expr, vals map[string]uint64, busy map[string]bool) (cval, error) {
	switch v := e.(type) {
	case *sva.Ident:
		if val, ok := vals[v.Name]; ok {
			return cval{val, in.widthOf(v.Name)}, nil
		}
		return in.netValue(v.Name, vals, busy)
	case *sva.Num:
		if v.Fill {
			return cval{v.Value, 0}, nil // elastic; callers resolve width
		}
		w := v.Width
		if w == 0 {
			w = 32
		}
		return cval{v.Value & maskOf(w), w}, nil
	case *sva.WidthCast:
		x, err := in.eval(v.X, vals, busy)
		if err != nil {
			return cval{}, err
		}
		return cval{x.v & maskOf(v.W), v.W}, nil
	case *sva.Unary:
		x, err := in.eval(v.X, vals, busy)
		if err != nil {
			return cval{}, err
		}
		x = x.mask()
		switch v.Op {
		case "!":
			return cval{boolTo(x.v == 0), 1}, nil
		case "~":
			return cval{^x.v & maskOf(x.w), x.w}, nil
		case "-":
			return cval{-x.v & maskOf(x.w), x.w}, nil
		case "+":
			return x, nil
		case "&":
			return cval{boolTo(x.v == maskOf(x.w) && x.w > 0), 1}, nil
		case "|":
			return cval{boolTo(x.v != 0), 1}, nil
		case "^":
			return cval{uint64(bits.OnesCount64(x.v) % 2), 1}, nil
		case "~&":
			return cval{boolTo(!(x.v == maskOf(x.w) && x.w > 0)), 1}, nil
		case "~|":
			return cval{boolTo(x.v == 0), 1}, nil
		case "~^", "^~":
			return cval{uint64(1 - bits.OnesCount64(x.v)%2), 1}, nil
		}
		return cval{}, fmt.Errorf("unary %q unsupported", v.Op)
	case *sva.Binary:
		return in.evalBinary(v, vals, busy)
	case *sva.Cond:
		c, err := in.eval(v.C, vals, busy)
		if err != nil {
			return cval{}, err
		}
		if c.mask().v != 0 {
			return in.eval(v.T, vals, busy)
		}
		return in.eval(v.E, vals, busy)
	case *sva.Concat:
		var out uint64
		total := 0
		for _, p := range v.Parts {
			pv, err := in.eval(p, vals, busy)
			if err != nil {
				return cval{}, err
			}
			pv = pv.mask()
			if pv.w == 0 {
				return cval{}, fmt.Errorf("fill literal in concatenation")
			}
			out = (out << uint(pv.w)) | pv.v
			total += pv.w
		}
		return cval{out, total}, nil
	case *sva.Repl:
		nv, err := in.eval(v.Count, vals, busy)
		if err != nil {
			return cval{}, err
		}
		x, err := in.eval(v.Value, vals, busy)
		if err != nil {
			return cval{}, err
		}
		x = x.mask()
		var out uint64
		total := 0
		for i := uint64(0); i < nv.v; i++ {
			out = (out << uint(x.w)) | x.v
			total += x.w
		}
		return cval{out, total}, nil
	case *sva.Index:
		x, err := in.eval(v.X, vals, busy)
		if err != nil {
			return cval{}, err
		}
		idx, err := in.eval(v.Idx, vals, busy)
		if err != nil {
			return cval{}, err
		}
		if idx.mask().v >= 64 {
			return cval{0, 1}, nil
		}
		return cval{(x.v >> idx.v) & 1, 1}, nil
	case *sva.Select:
		x, err := in.eval(v.X, vals, busy)
		if err != nil {
			return cval{}, err
		}
		hi, err := in.eval(v.Hi, vals, busy)
		if err != nil {
			return cval{}, err
		}
		lo, err := in.eval(v.Lo, vals, busy)
		if err != nil {
			return cval{}, err
		}
		if hi.v < lo.v || lo.v >= 64 {
			return cval{0, 1}, nil
		}
		w := int(hi.v-lo.v) + 1
		return cval{(x.v >> lo.v) & maskOf(w), w}, nil
	case *sva.Call:
		switch v.Name {
		case "$countones":
			x, err := in.eval(v.Args[0], vals, busy)
			if err != nil {
				return cval{}, err
			}
			return cval{uint64(bits.OnesCount64(x.mask().v)), 32}, nil
		case "$onehot":
			x, err := in.eval(v.Args[0], vals, busy)
			if err != nil {
				return cval{}, err
			}
			return cval{boolTo(bits.OnesCount64(x.mask().v) == 1), 1}, nil
		case "$onehot0":
			x, err := in.eval(v.Args[0], vals, busy)
			if err != nil {
				return cval{}, err
			}
			return cval{boolTo(bits.OnesCount64(x.mask().v) <= 1), 1}, nil
		case "$clog2":
			x, err := in.eval(v.Args[0], vals, busy)
			if err != nil {
				return cval{}, err
			}
			return cval{uint64(clog2u(x.v)), 32}, nil
		}
		return cval{}, fmt.Errorf("system function %s not usable in RTL nets", v.Name)
	}
	return cval{}, fmt.Errorf("unsupported expression %T", e)
}

func (in *Interp) evalBinary(v *sva.Binary, vals map[string]uint64, busy map[string]bool) (cval, error) {
	x, err := in.eval(v.X, vals, busy)
	if err != nil {
		return cval{}, err
	}
	y, err := in.eval(v.Y, vals, busy)
	if err != nil {
		return cval{}, err
	}
	// resolve elastic fills against the sibling
	if x.w == 0 && y.w == 0 {
		x.w, y.w = 1, 1
	} else if x.w == 0 {
		x.w = y.w
	} else if y.w == 0 {
		y.w = x.w
	}
	w := x.w
	if y.w > w {
		w = y.w
	}
	xv := x.v & maskOf(x.w)
	yv := y.v & maskOf(y.w)
	m := maskOf(w)
	switch v.Op {
	case "&&":
		return cval{boolTo(xv != 0 && yv != 0), 1}, nil
	case "||":
		return cval{boolTo(xv != 0 || yv != 0), 1}, nil
	case "==", "===":
		return cval{boolTo(xv == yv), 1}, nil
	case "!=", "!==":
		return cval{boolTo(xv != yv), 1}, nil
	case "<":
		return cval{boolTo(xv < yv), 1}, nil
	case "<=":
		return cval{boolTo(xv <= yv), 1}, nil
	case ">":
		return cval{boolTo(xv > yv), 1}, nil
	case ">=":
		return cval{boolTo(xv >= yv), 1}, nil
	case "+":
		return cval{(xv + yv) & m, w}, nil
	case "-":
		return cval{(xv - yv) & m, w}, nil
	case "*":
		return cval{(xv * yv) & m, w}, nil
	case "&":
		return cval{xv & yv, w}, nil
	case "|":
		return cval{xv | yv, w}, nil
	case "^":
		return cval{xv ^ yv, w}, nil
	case "~^", "^~":
		return cval{(^(xv ^ yv)) & m, w}, nil
	case "<<", "<<<":
		if yv >= 64 {
			return cval{0, x.w}, nil
		}
		return cval{(xv << yv) & maskOf(x.w), x.w}, nil
	case ">>":
		if yv >= 64 {
			return cval{0, x.w}, nil
		}
		return cval{xv >> yv, x.w}, nil
	case ">>>":
		// arithmetic on the declared width
		if x.w == 0 {
			return cval{0, 1}, nil
		}
		sign := (xv >> uint(x.w-1)) & 1
		sh := yv
		if sh > uint64(x.w) {
			sh = uint64(x.w)
		}
		out := xv >> sh
		if sign == 1 {
			// fill with ones
			fill := maskOf(x.w) &^ maskOf(x.w-int(sh))
			out |= fill
		}
		return cval{out & maskOf(x.w), x.w}, nil
	case "%":
		if yv == 0 {
			return cval{}, fmt.Errorf("modulo by zero")
		}
		return cval{xv % yv, w}, nil
	case "/":
		if yv == 0 {
			return cval{}, fmt.Errorf("division by zero")
		}
		return cval{xv / yv, w}, nil
	}
	return cval{}, fmt.Errorf("binary %q unsupported", v.Op)
}

// computeInits determines register reset values by simulating reset:
// all registers start at zero, reset-style inputs are driven active
// (reset_ low per the benchmark convention, every other input zero),
// and the design steps twice so latches settle.
func computeInits(sys *System) error {
	in := &Interp{Sys: sys, Regs: map[string]uint64{}}
	for _, r := range sys.Regs {
		in.Regs[r.Name] = 0
	}
	resetInputs := map[string]uint64{}
	for _, s := range sys.Inputs {
		resetInputs[s.Name] = 0 // reset_ low = active
	}
	for i := 0; i < 2; i++ {
		if _, err := in.Step(resetInputs); err != nil {
			return err
		}
	}
	for i := range sys.Regs {
		sys.Regs[i].Init = in.Regs[sys.Regs[i].Name]
	}
	return nil
}
