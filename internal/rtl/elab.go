package rtl

import (
	"fmt"
	"sort"

	"fveval/internal/ltl"
	"fveval/internal/sva"
)

// Sig is a named signal with a width.
type Sig struct {
	Name  string
	Width int
}

// Reg is a state element: Next is its next-state expression over the
// flat namespace; Init is its post-reset value.
type Reg struct {
	Name  string
	Width int
	Init  uint64
	Next  sva.Expr
}

// Net is a combinational signal defined by an expression.
type Net struct {
	Name  string
	Width int
	Expr  sva.Expr
}

// System is the flat elaborated design: free inputs, registers with
// next-state functions, combinational nets, named constants, and the
// assertions found in the source.
type System struct {
	Top     string
	Inputs  []Sig
	Regs    []Reg
	Nets    []Net
	Widths  map[string]int
	Consts  map[string]ltl.ConstVal
	Asserts []*sva.Assertion
	// Assumes constrain the input stimuli during proofs (FV
	// assumptions, paper §2); Covers are parsed and retained but not
	// evaluated.
	Assumes []*sva.Assertion
	Covers  []*sva.Assertion

	netIdx map[string]int
	regIdx map[string]int
	inIdx  map[string]int
}

// NetByName returns the net definition, if any.
func (s *System) NetByName(name string) (*Net, bool) {
	if i, ok := s.netIdx[name]; ok {
		return &s.Nets[i], true
	}
	return nil, false
}

// RegByName returns the register, if any.
func (s *System) RegByName(name string) (*Reg, bool) {
	if i, ok := s.regIdx[name]; ok {
		return &s.Regs[i], true
	}
	return nil, false
}

// IsInput reports whether name is a free input.
func (s *System) IsInput(name string) bool {
	_, ok := s.inIdx[name]
	return ok
}

// Sigs exposes the signal environment for assertion checking: every
// signal plus the top module's constants.
func (s *System) Sigs() (map[string]int, map[string]ltl.ConstVal) {
	return s.Widths, s.Consts
}

func (s *System) index() {
	s.netIdx = map[string]int{}
	for i := range s.Nets {
		s.netIdx[s.Nets[i].Name] = i
	}
	s.regIdx = map[string]int{}
	for i := range s.Regs {
		s.regIdx[s.Regs[i].Name] = i
	}
	s.inIdx = map[string]int{}
	for i := range s.Inputs {
		s.inIdx[s.Inputs[i].Name] = i
	}
}

// ElabError is an elaboration failure (name resolution, width, drive
// conflicts) — the tool-compile failure class in the paper's flow.
type ElabError struct{ Reason string }

func (e *ElabError) Error() string { return "rtl: elaboration: " + e.Reason }

func errf(format string, args ...interface{}) error {
	return &ElabError{Reason: fmt.Sprintf(format, args...)}
}

// Elaborate flattens the named top module (with optional parameter
// overrides) into a System.
func Elaborate(f *File, top string, overrides map[string]uint64) (*System, error) {
	m := f.Module(top)
	if m == nil {
		return nil, errf("module %q not found", top)
	}
	e := newElab(f)
	if err := e.module(m, "", overrides, true); err != nil {
		return nil, err
	}
	return e.finish(top)
}

// ElaborateBound elaborates a design-under-test and a testbench module
// into one system: the DUT lives under the "dut." prefix and each
// testbench port binds to the same-named DUT port (DUT inputs become
// shared free inputs; DUT outputs drive the testbench net). This is
// the Design2SVA evaluation topology: the testbench must not touch DUT
// internals, and references to undeclared names fail elaboration.
func ElaborateBound(f *File, dutTop, tbTop string, overrides map[string]uint64) (*System, error) {
	dut := f.Module(dutTop)
	if dut == nil {
		return nil, errf("design module %q not found", dutTop)
	}
	tb := f.Module(tbTop)
	if tb == nil {
		return nil, errf("testbench module %q not found", tbTop)
	}
	e := newElab(f)
	if err := e.module(dut, "dut.", overrides, false); err != nil {
		return nil, err
	}
	// Determine DUT port directions.
	dutDirs, err := portDirections(dut)
	if err != nil {
		return nil, err
	}
	e.bindPorts = map[string]string{} // tb port -> dut signal
	e.bindDirs = map[string]string{}
	for _, p := range tb.Ports {
		if dir, ok := dutDirs[p]; ok {
			e.bindPorts[p] = "dut." + p
			e.bindDirs[p] = dir
		}
	}
	if err := e.module(tb, "", overrides, true); err != nil {
		return nil, err
	}
	return e.finish(tbTop)
}

func portDirections(m *Module) (map[string]string, error) {
	dirs := map[string]string{}
	var walk func(items []Item)
	walk = func(items []Item) {
		for _, it := range items {
			if d, ok := it.(*Decl); ok {
				switch d.Kind {
				case "input", "output", "inout":
					dirs[d.Name] = d.Kind
				}
			}
			if g, ok := it.(*GenFor); ok {
				walk(g.Body)
			}
		}
	}
	walk(m.Items)
	return dirs, nil
}

// fragment is a driven bit range of a base signal.
type fragment struct {
	hi, lo int
	expr   sva.Expr // driver (for assigns) or reg-reference (for flops)
	isReg  bool
}

type declInfo struct {
	kind     string
	width    int   // flat packed width
	chunk    int   // inner chunk width for 2-D packed (0 if 1-D)
	unpacked []int // unpacked dimension sizes
	isInput  bool
}

type elab struct {
	file *File

	inputs  []Sig
	regs    []Reg
	nets    []Net
	widths  map[string]int
	consts  map[string]ltl.ConstVal
	asserts []*sva.Assertion
	assumes []*sva.Assertion
	covers  []*sva.Assertion

	frags map[string][]fragment // base signal -> driven fragments
	decls map[string]*declInfo  // flat name -> declaration

	bindPorts map[string]string // port alias map for ElaborateBound
	bindDirs  map[string]string

	regCount int
}

func newElab(f *File) *elab {
	return &elab{
		file:   f,
		widths: map[string]int{},
		consts: map[string]ltl.ConstVal{},
		frags:  map[string][]fragment{},
		decls:  map[string]*declInfo{},
	}
}

// scope is the per-module-instance elaboration scope.
type scope struct {
	prefix  string
	params  map[string]ltl.ConstVal
	genvars map[string]uint64
	top     bool
}

func (e *elab) module(m *Module, prefix string, overrides map[string]uint64, top bool) error {
	sc := &scope{prefix: prefix, params: map[string]ltl.ConstVal{}, genvars: map[string]uint64{}, top: top}
	// header params
	for _, p := range m.Params {
		if err := e.defineParam(sc, p, overrides); err != nil {
			return err
		}
	}
	return e.items(sc, m.Items, overrides)
}

func (e *elab) defineParam(sc *scope, p Param, overrides map[string]uint64) error {
	if ov, ok := overrides[p.Name]; ok && !p.IsLocal {
		w := 32
		if n, isNum := p.Default.(*sva.Num); isNum && n.Width > 0 {
			w = n.Width
		}
		sc.params[p.Name] = ltl.ConstVal{Value: ov, Width: w}
	} else {
		v, w, err := e.constEval(sc, p.Default)
		if err != nil {
			return errf("parameter %s: %v", p.Name, err)
		}
		sc.params[p.Name] = ltl.ConstVal{Value: v, Width: w}
	}
	if sc.top {
		e.consts[p.Name] = sc.params[p.Name]
	}
	return nil
}

func (e *elab) items(sc *scope, items []Item, overrides map[string]uint64) error {
	for _, it := range items {
		switch v := it.(type) {
		case *paramItem:
			if err := e.defineParam(sc, v.P, overrides); err != nil {
				return err
			}
		case *Decl:
			if err := e.decl(sc, v); err != nil {
				return err
			}
		case *Assign:
			if err := e.contAssign(sc, v); err != nil {
				return err
			}
		case *Always:
			if err := e.always(sc, v); err != nil {
				return err
			}
		case *GenFor:
			if err := e.genFor(sc, v, overrides); err != nil {
				return err
			}
		case *Instance:
			if err := e.instance(sc, v); err != nil {
				return err
			}
		case *AssertItem:
			if sc.prefix != "" {
				return errf("assertions inside instantiated modules are not supported")
			}
			a, err := e.rewriteAssertion(sc, v.A)
			if err != nil {
				return err
			}
			switch a.KindOrAssert() {
			case "assume":
				e.assumes = append(e.assumes, a)
			case "cover":
				e.covers = append(e.covers, a)
			default:
				e.asserts = append(e.asserts, a)
			}
		default:
			return errf("unsupported module item %T", it)
		}
	}
	return nil
}

func (e *elab) decl(sc *scope, d *Decl) error {
	if d.Kind == "genvar" {
		return nil // bound at loop elaboration
	}
	width := 1
	chunk := 0
	switch len(d.Packed) {
	case 0:
	case 1:
		w, err := e.rangeWidth(sc, d.Packed[0])
		if err != nil {
			return errf("signal %s: %v", d.Name, err)
		}
		width = w
	case 2:
		outer, err := e.rangeWidth(sc, d.Packed[0])
		if err != nil {
			return errf("signal %s: %v", d.Name, err)
		}
		inner, err := e.rangeWidth(sc, d.Packed[1])
		if err != nil {
			return errf("signal %s: %v", d.Name, err)
		}
		width = outer * inner
		chunk = inner
	default:
		return errf("signal %s: more than two packed dimensions unsupported", d.Name)
	}
	var unpacked []int
	for _, r := range d.Unpacked {
		n, err := e.rangeWidth(sc, r)
		if err != nil {
			return errf("signal %s: %v", d.Name, err)
		}
		unpacked = append(unpacked, n)
	}
	name := sc.prefix + d.Name
	isInput := d.Kind == "input"
	// Bound testbench ports alias DUT signals instead of declaring.
	if sc.prefix == "" && e.bindPorts != nil {
		if dutSig, ok := e.bindPorts[d.Name]; ok {
			dir := e.bindDirs[d.Name]
			if dir == "input" {
				// shared free input: tb name is the input; DUT side is
				// aliased during DUT elaboration below (DUT declared
				// its own input dut.X; alias it to X).
				if _, exists := e.decls[name]; !exists {
					e.declare(name, &declInfo{kind: "input", width: width, chunk: chunk, isInput: true})
					e.inputs = append(e.inputs, Sig{Name: name, Width: width})
				}
				// dut.X becomes a net aliasing X
				if di, ok := e.decls[dutSig]; ok && di.isInput {
					di.isInput = false
					e.removeInput(dutSig)
					e.addFragment(dutSig, fragment{hi: width - 1, lo: 0, expr: &sva.Ident{Name: name}})
				}
				return nil
			}
			// DUT output: tb port is a net aliasing the DUT signal.
			if _, exists := e.decls[name]; !exists {
				e.declare(name, &declInfo{kind: "wire", width: width, chunk: chunk})
				e.addFragment(name, fragment{hi: width - 1, lo: 0, expr: &sva.Ident{Name: dutSig}})
			}
			return nil
		}
	}
	if len(unpacked) > 0 {
		if len(unpacked) > 1 {
			return errf("signal %s: multi-dimensional unpacked arrays unsupported", d.Name)
		}
		for i := 0; i < unpacked[0]; i++ {
			en := fmt.Sprintf("%s$%d", name, i)
			e.declare(en, &declInfo{kind: d.Kind, width: width, chunk: chunk})
		}
		e.decls[name] = &declInfo{kind: d.Kind, width: width, chunk: chunk, unpacked: unpacked}
		return nil
	}
	if prev, exists := e.decls[name]; exists {
		// Port directions declared once in the header and again in the
		// body are tolerated when consistent.
		if prev.width == width {
			return nil
		}
		return errf("signal %s redeclared with different width", name)
	}
	e.declare(name, &declInfo{kind: d.Kind, width: width, chunk: chunk, isInput: isInput})
	if isInput {
		e.inputs = append(e.inputs, Sig{Name: name, Width: width})
	}
	return nil
}

func (e *elab) declare(name string, di *declInfo) {
	e.decls[name] = di
	e.widths[name] = di.width
}

func (e *elab) removeInput(name string) {
	for i := range e.inputs {
		if e.inputs[i].Name == name {
			e.inputs = append(e.inputs[:i], e.inputs[i+1:]...)
			return
		}
	}
}

func (e *elab) rangeWidth(sc *scope, r Range) (int, error) {
	hi, _, err := e.constEval(sc, r.Hi)
	if err != nil {
		return 0, err
	}
	lo, _, err := e.constEval(sc, r.Lo)
	if err != nil {
		return 0, err
	}
	if int64(hi) < int64(lo) {
		return 0, fmt.Errorf("reversed range [%d:%d]", hi, lo)
	}
	return int(hi-lo) + 1, nil
}

func (e *elab) contAssign(sc *scope, a *Assign) error {
	name, hi, lo, err := e.resolveLHS(sc, a.LHS)
	if err != nil {
		return err
	}
	rhs, err := e.rewrite(sc, a.RHS)
	if err != nil {
		return err
	}
	e.addFragment(name, fragment{hi: hi, lo: lo, expr: e.coerce(rhs, hi-lo+1)})
	return nil
}

func (e *elab) addFragment(name string, f fragment) {
	e.frags[name] = append(e.frags[name], f)
}

// coerce wraps an expression so its self-determined width is exactly w
// (package ltl computes self-determined widths during bit-blasting).
func (e *elab) coerce(expr sva.Expr, w int) sva.Expr {
	return &sva.WidthCast{X: expr, W: w}
}

// resolveLHS resolves an assignment target to a flat signal fragment.
func (e *elab) resolveLHS(sc *scope, lhs sva.Expr) (string, int, int, error) {
	switch v := lhs.(type) {
	case *sva.Ident:
		name := sc.prefix + v.Name
		di, ok := e.decls[name]
		if !ok {
			return "", 0, 0, errf("assignment to undeclared signal %q", v.Name)
		}
		if len(di.unpacked) > 0 {
			return "", 0, 0, errf("whole-array assignment to %q unsupported", v.Name)
		}
		return name, di.width - 1, 0, nil
	case *sva.Index:
		base, ok := v.X.(*sva.Ident)
		if !ok {
			return "", 0, 0, errf("unsupported assignment target %s", lhs.String())
		}
		name := sc.prefix + base.Name
		di, ok := e.decls[name]
		if !ok {
			return "", 0, 0, errf("assignment to undeclared signal %q", base.Name)
		}
		idx, _, err := e.constEval(sc, v.Idx)
		if err != nil {
			return "", 0, 0, errf("dynamic index in assignment target %s", lhs.String())
		}
		if len(di.unpacked) > 0 {
			return fmt.Sprintf("%s$%d", name, idx), di.width - 1, 0, nil
		}
		if di.chunk > 0 {
			lo := int(idx) * di.chunk
			return name, lo + di.chunk - 1, lo, nil
		}
		return name, int(idx), int(idx), nil
	case *sva.Select:
		base, ok := v.X.(*sva.Ident)
		if !ok {
			return "", 0, 0, errf("unsupported assignment target %s", lhs.String())
		}
		name := sc.prefix + base.Name
		if _, ok := e.decls[name]; !ok {
			return "", 0, 0, errf("assignment to undeclared signal %q", base.Name)
		}
		hi, _, err := e.constEval(sc, v.Hi)
		if err != nil {
			return "", 0, 0, err
		}
		lo, _, err := e.constEval(sc, v.Lo)
		if err != nil {
			return "", 0, 0, err
		}
		return name, int(hi), int(lo), nil
	}
	return "", 0, 0, errf("unsupported assignment target %s", lhs.String())
}

// rewrite resolves an expression into the flat namespace: parameters
// and genvars fold to literals, identifiers gain the instance prefix,
// array and 2-D packed indexing lower to element selects or mux
// chains.
func (e *elab) rewrite(sc *scope, expr sva.Expr) (sva.Expr, error) {
	switch v := expr.(type) {
	case *sva.Ident:
		if gv, ok := sc.genvars[v.Name]; ok {
			return numLit(gv, 32), nil
		}
		if c, ok := sc.params[v.Name]; ok {
			return numLit(c.Value, c.Width), nil
		}
		name := sc.prefix + v.Name
		if _, ok := e.decls[name]; !ok {
			return nil, errf("undeclared identifier %q", v.Name)
		}
		return &sva.Ident{Name: name}, nil
	case *sva.Num:
		return v, nil
	case *sva.Unary:
		x, err := e.rewrite(sc, v.X)
		if err != nil {
			return nil, err
		}
		return &sva.Unary{Op: v.Op, X: x}, nil
	case *sva.Binary:
		x, err := e.rewrite(sc, v.X)
		if err != nil {
			return nil, err
		}
		y, err := e.rewrite(sc, v.Y)
		if err != nil {
			return nil, err
		}
		return &sva.Binary{Op: v.Op, X: x, Y: y}, nil
	case *sva.Cond:
		c, err := e.rewrite(sc, v.C)
		if err != nil {
			return nil, err
		}
		t, err := e.rewrite(sc, v.T)
		if err != nil {
			return nil, err
		}
		f, err := e.rewrite(sc, v.E)
		if err != nil {
			return nil, err
		}
		return &sva.Cond{C: c, T: t, E: f}, nil
	case *sva.Call:
		// Compile-time functions fold here; runtime sampled-value
		// functions stay for assertion contexts.
		if v.Name == "$clog2" && len(v.Args) == 1 {
			if val, _, err := e.constEval(sc, v.Args[0]); err == nil {
				return numLit(uint64(clog2u(val)), 32), nil
			}
		}
		c := &sva.Call{Name: v.Name}
		for _, a := range v.Args {
			ra, err := e.rewrite(sc, a)
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, ra)
		}
		return c, nil
	case *sva.Concat:
		out := &sva.Concat{}
		for _, p := range v.Parts {
			rp, err := e.rewrite(sc, p)
			if err != nil {
				return nil, err
			}
			out.Parts = append(out.Parts, rp)
		}
		return out, nil
	case *sva.Repl:
		cnt, _, err := e.constEval(sc, v.Count)
		if err != nil {
			return nil, errf("replication count: %v", err)
		}
		val, err := e.rewrite(sc, v.Value)
		if err != nil {
			return nil, err
		}
		return &sva.Repl{Count: numLit(cnt, 32), Value: val}, nil
	case *sva.Index:
		return e.rewriteIndex(sc, v)
	case *sva.Select:
		x, err := e.rewrite(sc, v.X)
		if err != nil {
			return nil, err
		}
		hi, _, err := e.constEval(sc, v.Hi)
		if err != nil {
			return nil, errf("part-select bound: %v", err)
		}
		lo, _, err := e.constEval(sc, v.Lo)
		if err != nil {
			return nil, errf("part-select bound: %v", err)
		}
		return &sva.Select{X: x, Hi: numLit(hi, 32), Lo: numLit(lo, 32)}, nil
	case *sva.WidthCast:
		x, err := e.rewrite(sc, v.X)
		if err != nil {
			return nil, err
		}
		return &sva.WidthCast{X: x, W: v.W}, nil
	}
	return nil, errf("unsupported expression %T", expr)
}

func (e *elab) rewriteIndex(sc *scope, v *sva.Index) (sva.Expr, error) {
	base, isIdent := v.X.(*sva.Ident)
	if isIdent {
		if _, isGen := sc.genvars[base.Name]; !isGen {
			if _, isParam := sc.params[base.Name]; !isParam {
				name := sc.prefix + base.Name
				di, ok := e.decls[name]
				if !ok {
					return nil, errf("undeclared identifier %q", base.Name)
				}
				// unpacked array indexing
				if len(di.unpacked) > 0 {
					if idx, _, err := e.constEval(sc, v.Idx); err == nil {
						if int(idx) >= di.unpacked[0] {
							return nil, errf("array index %d out of range for %s", idx, base.Name)
						}
						return &sva.Ident{Name: fmt.Sprintf("%s$%d", name, idx)}, nil
					}
					// dynamic read: mux chain
					ridx, err := e.rewrite(sc, v.Idx)
					if err != nil {
						return nil, err
					}
					var out sva.Expr = &sva.Ident{Name: name + "$0"}
					for i := 1; i < di.unpacked[0]; i++ {
						out = &sva.Cond{
							C: &sva.Binary{Op: "==", X: ridx, Y: numLit(uint64(i), 32)},
							T: &sva.Ident{Name: fmt.Sprintf("%s$%d", name, i)},
							E: out,
						}
					}
					return out, nil
				}
				// 2-D packed chunk select
				if di.chunk > 0 {
					if idx, _, err := e.constEval(sc, v.Idx); err == nil {
						lo := int(idx) * di.chunk
						return &sva.Select{X: &sva.Ident{Name: name},
							Hi: numLit(uint64(lo+di.chunk-1), 32), Lo: numLit(uint64(lo), 32)}, nil
					}
					ridx, err := e.rewrite(sc, v.Idx)
					if err != nil {
						return nil, err
					}
					n := di.width / di.chunk
					var out sva.Expr = &sva.Select{X: &sva.Ident{Name: name},
						Hi: numLit(uint64(di.chunk-1), 32), Lo: numLit(0, 32)}
					for i := 1; i < n; i++ {
						lo := i * di.chunk
						out = &sva.Cond{
							C: &sva.Binary{Op: "==", X: ridx, Y: numLit(uint64(i), 32)},
							T: &sva.Select{X: &sva.Ident{Name: name},
								Hi: numLit(uint64(lo+di.chunk-1), 32), Lo: numLit(uint64(lo), 32)},
							E: out,
						}
					}
					return out, nil
				}
			}
		}
	}
	x, err := e.rewrite(sc, v.X)
	if err != nil {
		return nil, err
	}
	if idx, _, cerr := e.constEval(sc, v.Idx); cerr == nil {
		return &sva.Index{X: x, Idx: numLit(idx, 32)}, nil
	}
	ridx, err := e.rewrite(sc, v.Idx)
	if err != nil {
		return nil, err
	}
	return &sva.Index{X: x, Idx: ridx}, nil
}

func numLit(v uint64, w int) *sva.Num {
	return &sva.Num{Text: fmt.Sprintf("%d'd%d", w, v), Value: v, Width: w}
}

// constEval evaluates a compile-time constant in the current scope.
func (e *elab) constEval(sc *scope, expr sva.Expr) (uint64, int, error) {
	switch v := expr.(type) {
	case *sva.Num:
		if v.Fill {
			return v.Value, 0, nil
		}
		w := v.Width
		if w == 0 {
			w = 32
		}
		return v.Value, w, nil
	case *sva.Ident:
		if gv, ok := sc.genvars[v.Name]; ok {
			return gv, 32, nil
		}
		if c, ok := sc.params[v.Name]; ok {
			return c.Value, c.Width, nil
		}
		return 0, 0, fmt.Errorf("%q is not a constant", v.Name)
	case *sva.Unary:
		x, w, err := e.constEval(sc, v.X)
		if err != nil {
			return 0, 0, err
		}
		switch v.Op {
		case "-":
			return -x & maskOf(w), w, nil
		case "+":
			return x, w, nil
		case "~":
			return ^x & maskOf(w), w, nil
		case "!":
			return boolTo(x == 0), 1, nil
		}
		return 0, 0, fmt.Errorf("constant unary %q unsupported", v.Op)
	case *sva.Binary:
		x, wx, err := e.constEval(sc, v.X)
		if err != nil {
			return 0, 0, err
		}
		y, wy, err := e.constEval(sc, v.Y)
		if err != nil {
			return 0, 0, err
		}
		w := wx
		if wy > w {
			w = wy
		}
		if w == 0 {
			w = 32
		}
		m := maskOf(w)
		switch v.Op {
		case "+":
			return (x + y) & m, w, nil
		case "-":
			return (x - y) & m, w, nil
		case "*":
			return (x * y) & m, w, nil
		case "/":
			if y == 0 {
				return 0, 0, fmt.Errorf("constant division by zero")
			}
			return x / y, w, nil
		case "%":
			if y == 0 {
				return 0, 0, fmt.Errorf("constant modulo by zero")
			}
			return x % y, w, nil
		case "<<":
			return (x << (y & 63)) & m, w, nil
		case ">>":
			return x >> (y & 63), w, nil
		case "==":
			return boolTo(x == y), 1, nil
		case "!=":
			return boolTo(x != y), 1, nil
		case "<":
			return boolTo(x < y), 1, nil
		case "<=":
			return boolTo(x <= y), 1, nil
		case ">":
			return boolTo(x > y), 1, nil
		case ">=":
			return boolTo(x >= y), 1, nil
		case "&&":
			return boolTo(x != 0 && y != 0), 1, nil
		case "||":
			return boolTo(x != 0 || y != 0), 1, nil
		}
		return 0, 0, fmt.Errorf("constant binary %q unsupported", v.Op)
	case *sva.Call:
		if v.Name == "$clog2" && len(v.Args) == 1 {
			x, _, err := e.constEval(sc, v.Args[0])
			if err != nil {
				return 0, 0, err
			}
			return uint64(clog2u(x)), 32, nil
		}
		return 0, 0, fmt.Errorf("call %s is not constant", v.Name)
	}
	return 0, 0, fmt.Errorf("expression is not constant")
}

func maskOf(w int) uint64 {
	if w <= 0 || w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func clog2u(x uint64) int {
	n := 0
	for (uint64(1) << uint(n)) < x {
		n++
	}
	return n
}

func (e *elab) genFor(sc *scope, g *GenFor, overrides map[string]uint64) error {
	init, _, err := e.constEval(sc, g.Init)
	if err != nil {
		return errf("generate-for init: %v", err)
	}
	const loopCap = 4096
	sc.genvars[g.Var] = init
	defer delete(sc.genvars, g.Var)
	for iter := 0; ; iter++ {
		if iter > loopCap {
			return errf("generate-for exceeds %d iterations", loopCap)
		}
		cond, _, err := e.constEval(sc, g.Cond)
		if err != nil {
			return errf("generate-for condition: %v", err)
		}
		if cond == 0 {
			return nil
		}
		if err := e.items(sc, g.Body, overrides); err != nil {
			return err
		}
		next, _, err := e.constEval(sc, g.Step)
		if err != nil {
			return errf("generate-for step: %v", err)
		}
		sc.genvars[g.Var] = next
	}
}

func (e *elab) instance(sc *scope, inst *Instance) error {
	child := e.file.Module(inst.ModName)
	if child == nil {
		return errf("instantiated module %q not found", inst.ModName)
	}
	overrides := map[string]uint64{}
	for name, expr := range inst.Params {
		v, _, err := e.constEval(sc, expr)
		if err != nil {
			return errf("instance %s parameter %s: %v", inst.Name, name, err)
		}
		overrides[name] = v
	}
	prefix := sc.prefix + inst.Name + "."
	if err := e.module(child, prefix, overrides, false); err != nil {
		return err
	}
	dirs, err := portDirections(child)
	if err != nil {
		return err
	}
	for port, conn := range inst.Conns {
		dir, ok := dirs[port]
		if !ok {
			return errf("instance %s: module %s has no port %q", inst.Name, inst.ModName, port)
		}
		inner := prefix + port
		di, ok := e.decls[inner]
		if !ok {
			return errf("instance %s: port %q not elaborated", inst.Name, port)
		}
		switch dir {
		case "input":
			// drive the child's input net from the outer expression
			if di.isInput {
				di.isInput = false
				e.removeInput(inner)
			}
			rhs, err := e.rewrite(sc, conn)
			if err != nil {
				return err
			}
			e.addFragment(inner, fragment{hi: di.width - 1, lo: 0, expr: e.coerce(rhs, di.width)})
		case "output":
			// outer target := child signal
			name, hi, lo, err := e.resolveLHS(sc, conn)
			if err != nil {
				return errf("instance %s output %s: %v", inst.Name, port, err)
			}
			e.addFragment(name, fragment{hi: hi, lo: lo,
				expr: e.coerce(&sva.Ident{Name: inner}, hi-lo+1)})
		default:
			return errf("inout ports unsupported")
		}
	}
	return nil
}

func (e *elab) rewriteAssertion(sc *scope, a *sva.Assertion) (*sva.Assertion, error) {
	// Assertions at top level reference flat names already; rewrite
	// parameters to constants is unnecessary because the checking
	// environment carries Consts. Validate signal references resolve.
	return a, nil
}

// ---- always blocks ----------------------------------------------------

type fragKey struct {
	name   string
	hi, lo int
}

func (e *elab) always(sc *scope, a *Always) error {
	seq := a.Kind == "ff" || (a.Kind == "plain" && hasClockEdge(a.Edges))
	asn := map[fragKey]sva.Expr{}
	var order []fragKey
	track := func(k fragKey) {
		for _, o := range order {
			if o == k {
				return
			}
		}
		order = append(order, k)
	}
	if err := e.execStmts(sc, a.Body, asn, track, seq); err != nil {
		return err
	}
	for _, k := range order {
		expr := asn[k]
		w := k.hi - k.lo + 1
		if seq {
			e.regCount++
			regName := k.name
			if !(k.lo == 0 && k.hi == e.decls[k.name].width-1) {
				regName = fmt.Sprintf("%s$%d_%d", k.name, k.hi, k.lo)
			}
			r := Reg{Name: regName, Width: w, Next: e.coerce(expr, w)}
			e.regs = append(e.regs, r)
			e.widths[regName] = w
			e.addFragment(k.name, fragment{hi: k.hi, lo: k.lo, isReg: true,
				expr: &sva.Ident{Name: regName}})
		} else {
			e.addFragment(k.name, fragment{hi: k.hi, lo: k.lo, expr: e.coerce(expr, w)})
		}
	}
	return nil
}

func hasClockEdge(edges []Edge) bool { return len(edges) > 0 }

// execStmts symbolically executes a statement list, accumulating
// assigned expressions per target fragment.
func (e *elab) execStmts(sc *scope, stmts []Stmt, asn map[fragKey]sva.Expr, track func(fragKey), seq bool) error {
	for _, s := range stmts {
		switch v := s.(type) {
		case *ProcAssign:
			name, hi, lo, err := e.resolveLHS(sc, v.LHS)
			if err != nil {
				return err
			}
			rhs, err := e.rewrite(sc, v.RHS)
			if err != nil {
				return err
			}
			k := fragKey{name, hi, lo}
			track(k)
			asn[k] = rhs
		case *If:
			cond, err := e.rewrite(sc, v.Cond)
			if err != nil {
				return err
			}
			thenM := copyAsn(asn)
			if err := e.execStmts(sc, v.Then, thenM, track, seq); err != nil {
				return err
			}
			elseM := copyAsn(asn)
			if err := e.execStmts(sc, v.Else, elseM, track, seq); err != nil {
				return err
			}
			mergeBranches(cond, asn, thenM, elseM, track, e, seq)
		case *Case:
			subj, err := e.rewrite(sc, v.Subject)
			if err != nil {
				return err
			}
			// desugar to nested ifs, last item first
			if err := e.execCase(sc, subj, v.Items, asn, track, seq); err != nil {
				return err
			}
		default:
			return errf("unsupported statement %T", s)
		}
	}
	return nil
}

func (e *elab) execCase(sc *scope, subj sva.Expr, items []CaseItem, asn map[fragKey]sva.Expr, track func(fragKey), seq bool) error {
	if len(items) == 0 {
		return nil
	}
	it := items[0]
	if it.Labels == nil { // default arm
		return e.execStmts(sc, it.Body, asn, track, seq)
	}
	var cond sva.Expr
	for _, lbl := range it.Labels {
		rl, err := e.rewrite(sc, lbl)
		if err != nil {
			return err
		}
		eq := sva.Expr(&sva.Binary{Op: "==", X: subj, Y: rl})
		if cond == nil {
			cond = eq
		} else {
			cond = &sva.Binary{Op: "||", X: cond, Y: eq}
		}
	}
	thenM := copyAsn(asn)
	if err := e.execStmts(sc, it.Body, thenM, track, seq); err != nil {
		return err
	}
	elseM := copyAsn(asn)
	if err := e.execCase(sc, subj, items[1:], elseM, track, seq); err != nil {
		return err
	}
	mergeBranches(cond, asn, thenM, elseM, track, e, seq)
	return nil
}

func copyAsn(m map[fragKey]sva.Expr) map[fragKey]sva.Expr {
	out := make(map[fragKey]sva.Expr, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeBranches folds then/else assignment maps back into asn under
// the branch condition. Fragments assigned on only one path take the
// hold value on the other: for sequential logic the register itself;
// for combinational logic a latch register is synthesized by holdExpr.
func mergeBranches(cond sva.Expr, asn, thenM, elseM map[fragKey]sva.Expr, track func(fragKey), e *elab, seq bool) {
	keys := map[fragKey]bool{}
	for k := range thenM {
		keys[k] = true
	}
	for k := range elseM {
		keys[k] = true
	}
	for k := range keys {
		tv, tok := thenM[k]
		ev, eok := elseM[k]
		base, bok := asn[k]
		if !tok {
			if bok {
				tv = base
			} else {
				tv = e.holdExpr(k, seq)
			}
		}
		if !eok {
			if bok {
				ev = base
			} else {
				ev = e.holdExpr(k, seq)
			}
		}
		if tok || eok {
			track(k)
			if exprEqual(tv, ev) {
				asn[k] = tv
			} else {
				asn[k] = &sva.Cond{C: cond, T: tv, E: ev}
			}
		}
	}
}

func exprEqual(a, b sva.Expr) bool {
	return a == b || a.String() == b.String()
}

// holdExpr yields the "keep previous value" expression for a fragment.
func (e *elab) holdExpr(k fragKey, seq bool) sva.Expr {
	w := k.hi - k.lo + 1
	if seq {
		// the register's own current value
		if k.lo == 0 && e.decls[k.name] != nil && k.hi == e.decls[k.name].width-1 {
			return &sva.Ident{Name: k.name}
		}
		return &sva.Select{X: &sva.Ident{Name: k.name},
			Hi: numLit(uint64(k.hi), 32), Lo: numLit(uint64(k.lo), 32)}
	}
	// combinational incomplete assignment: synthesize a latch register
	// holding last cycle's resolved value.
	latch := fmt.Sprintf("%s$latch$%d_%d", k.name, k.hi, k.lo)
	if _, ok := e.widths[latch]; !ok {
		e.widths[latch] = w
		// Next expression is the resolved net fragment itself — filled
		// in during finish() once the net exists.
		e.regs = append(e.regs, Reg{Name: latch, Width: w,
			Next: &sva.Select{X: &sva.Ident{Name: k.name},
				Hi: numLit(uint64(k.hi), 32), Lo: numLit(uint64(k.lo), 32)}})
	}
	return &sva.Ident{Name: latch}
}

// finish assembles fragments into net definitions and builds the
// System.
func (e *elab) finish(top string) (*System, error) {
	sys := &System{
		Top:    top,
		Inputs: e.inputs,
		Widths: e.widths,
		Consts: e.consts,
	}
	// registers collected during elaboration
	sys.Regs = e.regs

	regNames := map[string]bool{}
	for _, r := range sys.Regs {
		regNames[r.Name] = true
	}

	var names []string
	for n := range e.frags {
		names = append(names, n)
	}
	sort.Strings(names)
	// fragRanges records per-fragment net names so reads of a sub-range
	// can bypass the whole-word concat (avoiding false word-level
	// combinational loops, e.g. a pipeline bus whose high chunk feeds
	// back from an instance driven by the low chunk).
	fragRanges := map[string][]fragRef{}
	for _, name := range names {
		frags := e.frags[name]
		di := e.decls[name]
		if di == nil {
			return nil, errf("internal: fragment for undeclared %q", name)
		}
		// single full-width register fragment: the register IS the
		// signal; no net needed.
		if len(frags) == 1 && frags[0].isReg && frags[0].lo == 0 && frags[0].hi == di.width-1 {
			if id, ok := frags[0].expr.(*sva.Ident); ok && id.Name == name {
				continue
			}
		}
		// sort by lo, check overlap, fill holes with zeros
		sort.Slice(frags, func(i, j int) bool { return frags[i].lo < frags[j].lo })
		multi := len(frags) > 1
		var parts []sva.Expr // low to high
		cursor := 0
		for _, f := range frags {
			if f.lo < cursor {
				return nil, errf("signal %s: bits [%d:%d] multiply driven", name, f.hi, f.lo)
			}
			if f.lo > cursor {
				parts = append(parts, numLit(0, f.lo-cursor))
			}
			part := f.expr
			if multi {
				fragName := fmt.Sprintf("%s$f%d_%d", name, f.lo, f.hi)
				fw := f.hi - f.lo + 1
				sys.Nets = append(sys.Nets, Net{Name: fragName, Width: fw, Expr: f.expr})
				sys.Widths[fragName] = fw
				fragRanges[name] = append(fragRanges[name], fragRef{hi: f.hi, lo: f.lo, net: fragName})
				part = &sva.Ident{Name: fragName}
			}
			parts = append(parts, part)
			cursor = f.hi + 1
		}
		if cursor < di.width {
			parts = append(parts, numLit(0, di.width-cursor))
		}
		var expr sva.Expr
		if len(parts) == 1 {
			expr = parts[0]
		} else {
			// Concat is MSB-first
			cat := &sva.Concat{}
			for i := len(parts) - 1; i >= 0; i-- {
				cat.Parts = append(cat.Parts, parts[i])
			}
			expr = cat
		}
		sys.Nets = append(sys.Nets, Net{Name: name, Width: di.width, Expr: expr})
	}
	// Rewrite in-fragment selects in every net and register expression.
	if len(fragRanges) > 0 {
		for i := range sys.Nets {
			sys.Nets[i].Expr = rewriteFragReads(sys.Nets[i].Expr, fragRanges)
		}
		for i := range sys.Regs {
			sys.Regs[i].Next = rewriteFragReads(sys.Regs[i].Next, fragRanges)
		}
	}
	sys.Asserts = e.asserts
	sys.Assumes = e.assumes
	sys.Covers = e.covers
	sys.index()
	if err := computeInits(sys); err != nil {
		return nil, err
	}
	return sys, nil
}

type fragRef struct {
	hi, lo int
	net    string
}

// rewriteFragReads redirects Select/Index reads that land entirely
// inside one fragment of a multiply-fragmented net to that fragment's
// dedicated net, cutting false whole-word dependency cycles.
func rewriteFragReads(e sva.Expr, frs map[string][]fragRef) sva.Expr {
	switch v := e.(type) {
	case *sva.Select:
		if id, ok := v.X.(*sva.Ident); ok {
			if hi, ok1 := numVal(v.Hi); ok1 {
				if lo, ok2 := numVal(v.Lo); ok2 {
					for _, fr := range frs[id.Name] {
						if lo >= fr.lo && hi <= fr.hi {
							if lo == fr.lo && hi == fr.hi {
								return &sva.Ident{Name: fr.net}
							}
							return &sva.Select{X: &sva.Ident{Name: fr.net},
								Hi: numLit(uint64(hi-fr.lo), 32), Lo: numLit(uint64(lo-fr.lo), 32)}
						}
					}
				}
			}
		}
		return &sva.Select{X: rewriteFragReads(v.X, frs), Hi: v.Hi, Lo: v.Lo}
	case *sva.Index:
		if id, ok := v.X.(*sva.Ident); ok {
			if bit, ok1 := numVal(v.Idx); ok1 {
				for _, fr := range frs[id.Name] {
					if bit >= fr.lo && bit <= fr.hi {
						return &sva.Index{X: &sva.Ident{Name: fr.net},
							Idx: numLit(uint64(bit-fr.lo), 32)}
					}
				}
			}
		}
		return &sva.Index{X: rewriteFragReads(v.X, frs), Idx: rewriteFragReads(v.Idx, frs)}
	case *sva.Unary:
		return &sva.Unary{Op: v.Op, X: rewriteFragReads(v.X, frs)}
	case *sva.Binary:
		return &sva.Binary{Op: v.Op, X: rewriteFragReads(v.X, frs), Y: rewriteFragReads(v.Y, frs)}
	case *sva.Cond:
		return &sva.Cond{C: rewriteFragReads(v.C, frs), T: rewriteFragReads(v.T, frs), E: rewriteFragReads(v.E, frs)}
	case *sva.Call:
		c := &sva.Call{Name: v.Name}
		for _, a := range v.Args {
			c.Args = append(c.Args, rewriteFragReads(a, frs))
		}
		return c
	case *sva.Concat:
		c := &sva.Concat{}
		for _, p := range v.Parts {
			c.Parts = append(c.Parts, rewriteFragReads(p, frs))
		}
		return c
	case *sva.Repl:
		return &sva.Repl{Count: v.Count, Value: rewriteFragReads(v.Value, frs)}
	case *sva.WidthCast:
		return &sva.WidthCast{X: rewriteFragReads(v.X, frs), W: v.W}
	}
	return e
}

func numVal(e sva.Expr) (int, bool) {
	if n, ok := e.(*sva.Num); ok && !n.Fill {
		return int(n.Value), true
	}
	return 0, false
}
