// Package rtl parses and elaborates the synthesizable SystemVerilog
// subset used by the FVEval benchmark: the synthetic pipeline and FSM
// designs from the Design2SVA generator, the expert-written formal
// testbenches of NL2SVA-Human, and testbench snippets produced by
// models. Elaboration flattens parameters, generate loops, and module
// instances into a word-level transition system (package mc consumes
// it for proving).
package rtl

import (
	"fveval/internal/sva"
)

// File is a parsed source file.
type File struct {
	Modules []*Module
}

// Module finds a module by name.
func (f *File) Module(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Module is a parsed module declaration.
type Module struct {
	Name   string
	Ports  []string
	Params []Param
	Items  []Item
}

// Param is a parameter or localparam declaration.
type Param struct {
	Name    string
	Default sva.Expr
	IsLocal bool
}

// Item is a module-level item.
type Item interface{ itemNode() }

// Range is a vector range [Hi:Lo].
type Range struct {
	Hi, Lo sva.Expr
}

// Decl declares a signal. Kind is input/output/inout/wire/reg/logic/
// genvar/integer. Packed ranges precede the name; Unpacked follow it.
type Decl struct {
	Kind     string
	Kind2    string // e.g. "output reg": second storage keyword
	Packed   []Range
	Name     string
	Unpacked []Range
}

// Assign is a continuous assignment.
type Assign struct {
	LHS sva.Expr // Ident, Index, or Select
	RHS sva.Expr
}

// Always is a procedural block. Kind is "ff", "comb", or "plain"
// (always @(...)). Edges lists the sensitivity events for ff/plain.
type Always struct {
	Kind  string
	Edges []Edge
	Body  []Stmt
}

// Edge is a sensitivity-list event.
type Edge struct {
	Kind   string // posedge / negedge
	Signal string
}

// GenFor is a generate-for loop (with or without the generate keyword).
type GenFor struct {
	Var   string
	Init  sva.Expr
	Cond  sva.Expr
	Step  sva.Expr // expression for the next value of Var
	Label string
	Body  []Item
}

// Instance is a module instantiation.
type Instance struct {
	ModName string
	Name    string
	Params  map[string]sva.Expr
	Conns   map[string]sva.Expr
}

// AssertItem is a concurrent assertion at module level.
type AssertItem struct {
	A *sva.Assertion
}

func (*Decl) itemNode()       {}
func (*Assign) itemNode()     {}
func (*Always) itemNode()     {}
func (*GenFor) itemNode()     {}
func (*Instance) itemNode()   {}
func (*AssertItem) itemNode() {}

// Stmt is a procedural statement.
type Stmt interface{ stmtNode() }

// If is a procedural if/else.
type If struct {
	Cond sva.Expr
	Then []Stmt
	Else []Stmt
}

// Case is a case statement; a CaseItem with nil Labels is the default.
type Case struct {
	Subject sva.Expr
	Items   []CaseItem
}

// CaseItem is one arm of a case statement.
type CaseItem struct {
	Labels []sva.Expr
	Body   []Stmt
}

// ProcAssign is a procedural assignment; NonBlocking distinguishes <=
// from =.
type ProcAssign struct {
	LHS         sva.Expr
	RHS         sva.Expr
	NonBlocking bool
}

func (*If) stmtNode()         {}
func (*Case) stmtNode()       {}
func (*ProcAssign) stmtNode() {}
