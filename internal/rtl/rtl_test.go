package rtl

import (
	"testing"
)

// fsmSrc is the FSM design from the paper's Design2SVA appendix (C.1).
const fsmSrc = "`define WIDTH 32\n" + `
module fsm(clk, reset_, in_A, in_B, in_C, in_D, fsm_out);
parameter WIDTH = ` + "`WIDTH" + `;
parameter FSM_WIDTH = 2;
parameter S0 = 2'b00;
parameter S1 = 2'b01;
parameter S2 = 2'b10;
parameter S3 = 2'b11;
input clk;
input reset_;
input [WIDTH-1:0] in_A;
input [WIDTH-1:0] in_B;
input [WIDTH-1:0] in_C;
input [WIDTH-1:0] in_D;
output reg [FSM_WIDTH-1:0] fsm_out;
reg [FSM_WIDTH-1:0] state, next_state;
always_ff @(posedge clk or negedge reset_) begin
  if (!reset_) begin
    state <= S0;
  end else begin
    state <= next_state;
  end
end
always_comb begin
  case(state)
    S0: begin next_state = S2; end
    S1: begin next_state = S3; end
    S2: begin
      if (((in_A != in_B) < 'd1)) begin next_state = S0; end
      else begin next_state = S1; end
    end
    S3: begin end
  endcase
end
always_comb begin
  fsm_out = state;
end
endmodule
`

// pipeSrc is a reduced version of the paper's pipeline example.
const pipeSrc = "`define WIDTH 8\n`define DEPTH 3\n" + `
module exec_unit_0 (clk, reset_, in_data, in_vld, out_data, out_vld);
parameter WIDTH = ` + "`WIDTH" + `;
localparam DEPTH = 3;
input clk;
input reset_;
input [WIDTH-1:0] in_data;
input in_vld;
output [WIDTH-1:0] out_data;
output out_vld;
logic [DEPTH:0] ready;
logic [DEPTH:0][WIDTH-1:0] data;
assign ready[0] = in_vld;
assign data[0] = in_data;
assign out_vld = ready[DEPTH];
assign out_data = data[DEPTH];
generate
for (genvar i=0; i < DEPTH; i=i+1) begin : gen
  always @(posedge clk) begin
    if (!reset_) begin
      ready[i+1] <= 'd0;
      data[i+1] <= 'd0;
    end else begin
      ready[i+1] <= ready[i];
      data[i+1] <= ((data[i] ^ 9) + 4);
    end
  end
end
endgenerate
endmodule

module pipeline (clk, reset_, in_vld, in_data, out_vld, out_data);
parameter WIDTH=` + "`WIDTH" + `;
parameter DEPTH=` + "`DEPTH" + `;
input clk;
input reset_;
input in_vld;
input [WIDTH-1:0] in_data;
output out_vld;
output [WIDTH-1:0] out_data;
wire [DEPTH:0] ready;
wire [DEPTH:0][WIDTH-1:0] data;
assign ready[0] = in_vld;
assign data[0] = in_data;
assign out_vld = ready[DEPTH];
assign out_data = data[DEPTH];
exec_unit_0 #(.WIDTH(WIDTH)) unit_0 (
  .clk(clk), .reset_(reset_),
  .in_data(data[0]), .in_vld(ready[0]),
  .out_data(data[3]), .out_vld(ready[3])
);
endmodule
`

// fifoSrc is the paper's 1R1W FIFO testbench (Appendix A.1), lightly
// reduced in depth for test speed.
const fifoSrc = `
module fifo_1r1w_tb (clk, reset_, wr_vld, wr_data, wr_ready, rd_vld, rd_data, rd_ready);
parameter FIFO_DEPTH = 4;
parameter DATA_WIDTH = 1;
localparam FIFO_DEPTH_log2 = $clog2(FIFO_DEPTH);
input clk;
input reset_;
input wr_vld;
input [DATA_WIDTH-1:0] wr_data;
input wr_ready;
input rd_vld;
input [DATA_WIDTH-1:0] rd_data;
input rd_ready;
wire wr_push;
wire rd_pop;
wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
wire fifo_full;
assign wr_push = wr_vld && wr_ready;
assign rd_pop = rd_vld && rd_ready;
reg [DATA_WIDTH-1:0] fifo_array [FIFO_DEPTH-1:0];
reg [FIFO_DEPTH_log2-1:0] fifo_rd_ptr;
reg fifo_empty;
wire [DATA_WIDTH-1:0] fifo_out_data;
always @(posedge clk) begin
  if (!reset_) fifo_array[0] <= 'd0;
  else if (wr_push) begin
    fifo_array[0] <= wr_data;
  end else fifo_array[0] <= fifo_array[0];
end
for (genvar i = 1; i < FIFO_DEPTH; i++ ) begin : loop_id
  always @(posedge clk) begin
    if (!reset_) fifo_array[i] <= 'd0;
    else if (wr_push) begin
      fifo_array[i] <= fifo_array[i-1];
    end else fifo_array[i] <= fifo_array[i];
  end
end
always @(posedge clk) begin
  if (!reset_) begin
    fifo_rd_ptr <= 'd0;
  end else if (wr_push && fifo_empty) begin
    fifo_rd_ptr <= 'd0;
  end else if (rd_pop && !fifo_empty && (fifo_rd_ptr == 'd0)) begin
    fifo_rd_ptr <= 'd0;
  end else begin
    fifo_rd_ptr <= fifo_rd_ptr + wr_push - rd_pop;
  end
  if (!reset_) begin
    fifo_empty <= 'd1;
  end else if (rd_pop && !fifo_empty && (fifo_rd_ptr == 'd0) && !wr_push) begin
    fifo_empty <= 'd1;
  end else if ((fifo_rd_ptr != 'd0) || wr_push && !rd_pop) begin
    fifo_empty <= 'd0;
  end
end
assign fifo_full = (fifo_rd_ptr == (FIFO_DEPTH - 1)) && !fifo_empty;
assign fifo_out_data = fifo_array[fifo_rd_ptr];
endmodule
`

func elaborate(t *testing.T, src, top string) *System {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := Elaborate(f, top, nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return sys
}

func TestParseModules(t *testing.T) {
	f, err := Parse(fsmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Modules) != 1 || f.Modules[0].Name != "fsm" {
		t.Fatalf("modules: %v", f.Modules)
	}
	if len(f.Modules[0].Ports) != 7 {
		t.Fatalf("ports: %v", f.Modules[0].Ports)
	}
	f2, err := Parse(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Modules) != 2 {
		t.Fatalf("pipeline modules: %d", len(f2.Modules))
	}
}

func TestFSMElaborationAndReset(t *testing.T) {
	sys := elaborate(t, fsmSrc, "fsm")
	st, ok := sys.RegByName("state")
	if !ok {
		t.Fatalf("state register missing; regs: %v", sys.Regs)
	}
	if st.Init != 0 {
		t.Fatalf("state reset value: %d", st.Init)
	}
	if sys.Consts["S2"].Value != 2 || sys.Consts["S2"].Width != 2 {
		t.Fatalf("parameter S2: %+v", sys.Consts["S2"])
	}
	if w := sys.Widths["in_A"]; w != 32 {
		t.Fatalf("in_A width: %d", w)
	}
}

func TestFSMSimulation(t *testing.T) {
	sys := elaborate(t, fsmSrc, "fsm")
	in := NewInterp(sys)
	run := map[string]uint64{"reset_": 1}
	// Reset state S0; next_state = S2.
	vals, err := in.Step(run)
	if err != nil {
		t.Fatal(err)
	}
	if vals["state"] != 0 {
		t.Fatalf("cycle 0 state: %d", vals["state"])
	}
	if vals["fsm_out"] != 0 {
		t.Fatalf("fsm_out must mirror state, got %d", vals["fsm_out"])
	}
	// S0 -> S2.
	vals, err = in.Step(run)
	if err != nil {
		t.Fatal(err)
	}
	if vals["state"] != 2 {
		t.Fatalf("cycle 1 state: %d want 2 (S2)", vals["state"])
	}
	// In S2 with in_A==in_B: (in_A != in_B) = 0 < 1 -> S0.
	vals, err = in.Step(run)
	if err != nil {
		t.Fatal(err)
	}
	if vals["state"] != 0 {
		t.Fatalf("cycle 2 state: %d want 0 (S0)", vals["state"])
	}
	// In S2 with in_A != in_B: condition false -> S1, then S1 -> S3.
	in2 := NewInterp(sys)
	step2 := map[string]uint64{"reset_": 1, "in_A": 5}
	in2.Step(step2)           // state=S0, next=S2
	vals, _ = in2.Step(step2) // state=S2
	if vals["next_state"] != 1 {
		t.Fatalf("S2 with in_A!=in_B: next %d want 1", vals["next_state"])
	}
	vals, _ = in2.Step(step2) // state=S1
	if vals["state"] != 1 {
		t.Fatalf("state: %d want 1", vals["state"])
	}
	vals, _ = in2.Step(step2) // state=S3
	if vals["state"] != 3 {
		t.Fatalf("state: %d want 3", vals["state"])
	}
	// S3 has an incomplete case arm: next_state latches its previous
	// value (3), so the FSM stays in S3.
	vals, _ = in2.Step(step2)
	if vals["state"] != 3 {
		t.Fatalf("S3 must hold (latch), got %d", vals["state"])
	}
}

func TestPipelineSimulation(t *testing.T) {
	sys := elaborate(t, pipeSrc, "pipeline")
	in := NewInterp(sys)
	run := map[string]uint64{"reset_": 1, "in_vld": 1, "in_data": 7}
	idle := map[string]uint64{"reset_": 1}
	// push one word, then idle; valid must appear DEPTH cycles later.
	vals, err := in.Step(run)
	if err != nil {
		t.Fatal(err)
	}
	if vals["out_vld"] != 0 {
		t.Fatalf("out_vld must be low at cycle 0")
	}
	for i := 0; i < 2; i++ {
		vals, err = in.Step(idle)
		if err != nil {
			t.Fatal(err)
		}
		if vals["out_vld"] != 0 {
			t.Fatalf("out_vld early at cycle %d", i+1)
		}
	}
	vals, err = in.Step(idle)
	if err != nil {
		t.Fatal(err)
	}
	if vals["out_vld"] != 1 {
		t.Fatalf("out_vld must be high after DEPTH=3 cycles")
	}
	// data transform: ((7^9)+4) applied per stage... the first stage
	// registers the transformed value, then passes through the chain.
	want := uint64(7)
	for i := 0; i < 3; i++ {
		want = ((want ^ 9) + 4) & 0xFF
	}
	if vals["out_data"] != want {
		t.Fatalf("out_data: %d want %d", vals["out_data"], want)
	}
}

func TestFIFOTestbenchSimulation(t *testing.T) {
	sys := elaborate(t, fifoSrc, "fifo_1r1w_tb")
	in := NewInterp(sys)
	idle := map[string]uint64{"reset_": 1}
	push := map[string]uint64{"reset_": 1, "wr_vld": 1, "wr_ready": 1, "wr_data": 1}
	pop := map[string]uint64{"reset_": 1, "rd_vld": 1, "rd_ready": 1}

	vals, err := in.Step(idle)
	if err != nil {
		t.Fatal(err)
	}
	if vals["fifo_empty"] != 1 {
		t.Fatalf("fifo must reset empty")
	}
	if vals["tb_reset"] != 0 {
		t.Fatalf("tb_reset must be low when reset_ is high")
	}
	// push two entries
	in.Step(push)
	vals, _ = in.Step(push)
	if vals["fifo_empty"] != 0 {
		t.Fatalf("fifo must be non-empty after push")
	}
	// pop both
	vals, _ = in.Step(pop)
	if vals["rd_pop"] != 1 {
		t.Fatalf("rd_pop must assert")
	}
	vals, _ = in.Step(pop)
	vals, _ = in.Step(idle)
	if vals["fifo_empty"] != 1 {
		t.Fatalf("fifo must drain to empty, ptr=%d empty=%d",
			vals["fifo_rd_ptr"], vals["fifo_empty"])
	}
}

func TestElaborationErrors(t *testing.T) {
	cases := []struct{ name, src, top string }{
		{"undeclared", `module m(a); input a; assign b = a; endmodule`, "m"},
		{"missing module", `module m(a); input a; endmodule`, "zzz"},
		{"bad instance", `module m(); foo u0 (.x(1)); endmodule`, "m"},
		{"multiply driven", `module m(a); input a; wire w; assign w = a; assign w = !a; endmodule`, "m"},
		{"undefined macro", "module m(a); input a; wire [`W-1:0] x; endmodule", "m"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			continue // parse-level failure acceptable
		}
		if _, err := Elaborate(f, c.top, nil); err == nil {
			t.Errorf("%s: expected elaboration error", c.name)
		}
	}
}

func TestAssertionsCollected(t *testing.T) {
	src := `module m(clk, a, b); input clk; input a; input b;
	my_check: assert property (@(posedge clk) a |-> b);
	assert property (@(posedge clk) b |-> a);
	endmodule`
	sys := elaborate(t, src, "m")
	if len(sys.Asserts) != 2 {
		t.Fatalf("asserts: %d", len(sys.Asserts))
	}
	if sys.Asserts[0].Label != "my_check" {
		t.Fatalf("label: %q", sys.Asserts[0].Label)
	}
}

func TestParameterOverride(t *testing.T) {
	src := `module m(clk, x); parameter W = 4; input clk; input [W-1:0] x; endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Elaborate(f, "m", map[string]uint64{"W": 8})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Widths["x"] != 8 {
		t.Fatalf("width with override: %d", sys.Widths["x"])
	}
}

func TestBoundElaboration(t *testing.T) {
	tbSrc := "`define WIDTH 32\n" + `
module fsm_tb(clk, reset_, in_A, in_B, in_C, in_D, fsm_out);
parameter WIDTH = ` + "`WIDTH" + `;
parameter FSM_WIDTH = 2;
parameter S0 = 2'b00;
parameter S1 = 2'b01;
parameter S2 = 2'b10;
parameter S3 = 2'b11;
input clk;
input reset_;
input [WIDTH-1:0] in_A;
input [WIDTH-1:0] in_B;
input [WIDTH-1:0] in_C;
input [WIDTH-1:0] in_D;
input reg [FSM_WIDTH-1:0] fsm_out;
wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
endmodule
`
	f, err := Parse(fsmSrc + tbSrc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ElaborateBound(f, "fsm", "fsm_tb", nil)
	if err != nil {
		t.Fatal(err)
	}
	// tb port fsm_out must alias the DUT output.
	if _, ok := sys.NetByName("fsm_out"); !ok {
		t.Fatalf("fsm_out must be a bound net")
	}
	// DUT internals live under dut. and are not tb-visible names.
	if _, ok := sys.Widths["state"]; ok {
		t.Fatalf("DUT internal 'state' leaked into testbench namespace")
	}
	if _, ok := sys.Widths["dut.state"]; !ok {
		t.Fatalf("dut.state missing")
	}
	// Simulate: fsm_out mirrors the DUT.
	in := NewInterp(sys)
	run := map[string]uint64{"reset_": 1}
	in.Step(run)
	vals, err := in.Step(run)
	if err != nil {
		t.Fatal(err)
	}
	if vals["fsm_out"] != 2 {
		t.Fatalf("bound fsm_out: %d want 2", vals["fsm_out"])
	}
}
