// Package helpergen generates the AGR (assertion-guided reasoning)
// dataset: synthetic designs paired with a true target assertion that
// the model checker cannot prove by k-induction alone, plus the golden
// helper lemmas that unlock the proof once assumed (the paper's
// data_agr/helpergen task family). Every instance is hard by
// construction relative to the checker's default induction bound:
// either the induction step admits a spurious counterexample at every
// depth (a stall input lets the violation frontier slide arbitrarily
// far out), or the target only becomes inductive at a depth beyond
// mc.Options' default MaxInduction.
//
// Three design families cover the canonical helper shapes:
//
//   - stride: a gated counter stepping by a power of two; the target
//     excludes an off-stride value, provable only under the alignment
//     invariant (cnt & (S-1)) == 0.
//   - lockstep: two registers advancing in lockstep feeding a deep
//     mismatch delay chain into a sticky error flag; the target
//     (err_out == 0) needs the chain-clear invariant, and the golden
//     set pairs it with the (redundant) lockstep equality so the
//     load-bearing ablation has both an essential and a merely
//     supportive helper to tell apart.
//   - ring: a rotating one-filled ring; the single-bit target needs
//     the full-ring invariant (r == all-ones).
//
// Every design also carries a decoy stride counter (dcnt) whose valid
// but irrelevant invariant populates the "provable yet insufficient"
// proxy response class.
package helpergen

import (
	"fmt"
	"strings"
	"sync"

	"fveval/internal/sva"
)

// Instance is one AGR test case: a design, its testbench header, the
// stuck target assertion, and the response pools the proxy models draw
// from.
type Instance struct {
	ID   string
	Kind string // "stride", "lockstep", or "ring"

	Design   string // DUT SystemVerilog
	Bench    string // testbench header SystemVerilog
	DUTTop   string
	BenchTop string

	// Target is the stuck assertion: true from reset but not
	// k-inductive alone within the checker's default bound. TargetAst
	// is its parsed form (construction self-check at generation time).
	Target    string
	TargetAst *sva.Assertion

	// Helpers is the golden helper set: spliced into the bench and run
	// through the lemma pipeline, they make Target provable.
	Helpers []string
	// Insufficient is a provable helper that does not unlock the
	// target (the decoy counter's invariant, or a genuine-but-partial
	// golden subset); Invalid is falsifiable from reset. Both feed the
	// proxy response classes.
	Insufficient string
	Invalid      string
}

// assertStmt renders one labeled concurrent assertion in the
// benchmark's house style.
func assertStmt(label, body string) string {
	return fmt.Sprintf(`%s: assert property (@(posedge clk) disable iff (tb_reset)
  %s
);`, label, body)
}

// bench renders a testbench header binding the DUT ports, mirroring
// the rtlgen convention (ports re-declared as inputs, plus the
// tb_reset abort net).
func bench(top string, ports []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n  clk,\n  reset_", top)
	for _, p := range ports {
		name := p
		if i := strings.LastIndex(p, " "); i >= 0 {
			name = p[i+1:]
		}
		fmt.Fprintf(&b, ",\n  %s", name)
	}
	b.WriteString("\n);\n")
	b.WriteString("input clk;\ninput reset_;\n")
	for _, p := range ports {
		fmt.Fprintf(&b, "input %s;\n", p)
	}
	b.WriteString("wire tb_reset;\nassign tb_reset = (reset_ == 1'b0);\nendmodule\n")
	return b.String()
}

// decoy is the per-design decoy counter fragment: an even-stride
// counter whose alignment invariant is provable but never load-bearing
// for any family's target.
const decoyRegs = "reg [3:0] dcnt_q;\n"
const decoyReset = "    dcnt_q <= 'd0;\n"
const decoyStep = "    dcnt_q <= dcnt_q + 'd2;\n"

const decoyHelper = "((dcnt & 'd1) == 'd0)"

// GenerateStride emits the stride family: a gated counter stepping by
// stride (2 or 4) inside width bits, with an off-stride target value.
// The en input lets the induction-step violation stall arbitrarily, so
// the target alone is not k-inductive at any depth.
func GenerateStride(width, stride, target int) *Instance {
	full := fmt.Sprintf(
		`module stride (
  clk,
  reset_,
  en,
  cnt,
  dcnt
);
input clk;
input reset_;
input en;
output [%d:0] cnt;
output [3:0] dcnt;
reg [%d:0] cnt_q;
%salways @(posedge clk) begin
  if (!reset_) begin
    cnt_q <= 'd0;
%s  end else begin
    cnt_q <= en ? (cnt_q + 'd%d) : cnt_q;
%s  end
end
assign cnt = cnt_q;
assign dcnt = dcnt_q;
endmodule
`, width-1, width-1, decoyRegs, decoyReset, stride, decoyStep)

	inst := &Instance{
		ID:       fmt.Sprintf("agr_stride_wd_%d_st_%d_tg_%d", width, stride, target),
		Kind:     "stride",
		Design:   full,
		DUTTop:   "stride",
		BenchTop: "stride_tb",
		Bench: bench("stride_tb", []string{
			"en",
			fmt.Sprintf("[%d:0] cnt", width-1),
			"[3:0] dcnt",
		}),
		Target: assertStmt("target_unreach", fmt.Sprintf("(cnt != 'd%d)", target)),
		Helpers: []string{
			assertStmt("helper_align", fmt.Sprintf("((cnt & 'd%d) == 'd0)", stride-1)),
		},
		Insufficient: assertStmt("helper_decoy", decoyHelper),
		Invalid:      assertStmt("helper_stuck", "(cnt == 'd0)"),
	}
	return finish(inst)
}

// GenerateLockstep emits the lockstep family: registers x and y share
// a stimulus increment, a chain-length-deep mismatch delay line feeds
// a sticky error flag. The target (err_out == 0) only becomes
// inductive beyond the checker's default bound for chain >= 10, so it
// is Unknown alone. The golden set is {x == y, dchain == 0}: the
// chain-clear invariant is the load-bearing one (it is 2-inductive —
// two clear frames imply the sticky equality — and unlocks the target
// at depth 1), while the equality helper is deliberately redundant,
// exercising the ablation's LoadBearing=false path. The equality
// alone is the family's Insufficient class: provable, but flushing a
// dirty chain takes chain frames, past the induction bound.
func GenerateLockstep(width, chain int) *Instance {
	full := fmt.Sprintf(
		`module lockstep (
  clk,
  reset_,
  inc,
  x,
  y,
  dchain,
  err_out,
  dcnt
);
input clk;
input reset_;
input [%d:0] inc;
output [%d:0] x;
output [%d:0] y;
output [%d:0] dchain;
output err_out;
output [3:0] dcnt;
reg [%d:0] x_q;
reg [%d:0] y_q;
reg [%d:0] dchain_q;
reg err_q;
%salways @(posedge clk) begin
  if (!reset_) begin
    x_q <= 'd0;
    y_q <= 'd0;
    dchain_q <= 'd0;
    err_q <= 'd0;
%s  end else begin
    x_q <= x_q + inc;
    y_q <= y_q + inc;
    dchain_q <= (x_q != y_q) ? ((dchain_q << 1) | 'd1) : (dchain_q << 1);
    err_q <= err_q | dchain_q[%d];
%s  end
end
assign x = x_q;
assign y = y_q;
assign dchain = dchain_q;
assign err_out = err_q;
assign dcnt = dcnt_q;
endmodule
`, width-1, width-1, width-1, chain-1, width-1, width-1, chain-1,
		decoyRegs, decoyReset, chain-1, decoyStep)

	inst := &Instance{
		ID:       fmt.Sprintf("agr_lockstep_wd_%d_ch_%d", width, chain),
		Kind:     "lockstep",
		Design:   full,
		DUTTop:   "lockstep",
		BenchTop: "lockstep_tb",
		Bench: bench("lockstep_tb", []string{
			fmt.Sprintf("[%d:0] inc", width-1),
			fmt.Sprintf("[%d:0] x", width-1),
			fmt.Sprintf("[%d:0] y", width-1),
			fmt.Sprintf("[%d:0] dchain", chain-1),
			"err_out",
			"[3:0] dcnt",
		}),
		Target: assertStmt("target_err", "(err_out == 1'b0)"),
		Helpers: []string{
			assertStmt("helper_lock", "(x == y)"),
			assertStmt("helper_chain", "(dchain == 'd0)"),
		},
		// A genuine golden subset: provable alone, yet the target stays
		// stuck without the chain-clear invariant.
		Insufficient: assertStmt("helper_lock", "(x == y)"),
		Invalid:      assertStmt("helper_still", "(x == 'd0)"),
	}
	return finish(inst)
}

// GenerateRing emits the ring family: an all-ones ring rotating under
// an enable. The single-bit target ((r & 1) == 1) stalls out of every
// induction depth alone and follows directly from the full-ring
// invariant r == 2^n - 1.
func GenerateRing(n int) *Instance {
	fullVal := (uint64(1) << n) - 1
	full := fmt.Sprintf(
		`module ring (
  clk,
  reset_,
  en,
  r,
  dcnt
);
input clk;
input reset_;
input en;
output [%d:0] r;
output [3:0] dcnt;
reg [%d:0] r_q;
%salways @(posedge clk) begin
  if (!reset_) begin
    r_q <= 'd%d;
%s  end else begin
    r_q <= en ? ((r_q << 1) | (r_q >> %d)) : r_q;
%s  end
end
assign r = r_q;
assign dcnt = dcnt_q;
endmodule
`, n-1, n-1, decoyRegs, fullVal, decoyReset, n-1, decoyStep)

	inst := &Instance{
		ID:       fmt.Sprintf("agr_ring_nb_%d", n),
		Kind:     "ring",
		Design:   full,
		DUTTop:   "ring",
		BenchTop: "ring_tb",
		Bench: bench("ring_tb", []string{
			"en",
			fmt.Sprintf("[%d:0] r", n-1),
			"[3:0] dcnt",
		}),
		Target: assertStmt("target_bit", "((r & 'd1) == 'd1)"),
		Helpers: []string{
			assertStmt("helper_full", fmt.Sprintf("(r == 'd%d)", fullVal)),
		},
		Insufficient: assertStmt("helper_decoy", decoyHelper),
		Invalid:      assertStmt("helper_dark", "((r & 'd1) == 'd0)"),
	}
	return finish(inst)
}

// finish parses the target (a generation-time self-check: a dataset
// instance with an unparsable target is a construction bug, so panic
// loudly rather than emit it).
func finish(inst *Instance) *Instance {
	a, err := sva.ParseAssertion(inst.Target)
	if err != nil {
		panic(fmt.Sprintf("helpergen: %s: target does not parse: %v", inst.ID, err))
	}
	inst.TargetAst = a
	return inst
}

// sweepOnce caches the benchmark sweep: generation is deterministic,
// and instances are shared read-only across the engine's workers.
var sweepOnce sync.Once
var sweepInsts []*Instance

// Sweep returns the fixed 18-instance AGR benchmark sweep: six
// parameter points per family, in a deterministic order. Instances
// are shared; treat them as read-only.
func Sweep() []*Instance {
	sweepOnce.Do(func() {
		var out []*Instance
		// stride: width x stride with an off-stride target value.
		for _, w := range []int{4, 6, 8} {
			out = append(out, GenerateStride(w, 2, 5))
			out = append(out, GenerateStride(w, 4, 7))
		}
		// lockstep: the chain must exceed the checker's default
		// MaxInduction (10) minus the two base frames.
		for _, w := range []int{4, 6, 8} {
			out = append(out, GenerateLockstep(w, 11))
			out = append(out, GenerateLockstep(w, 12))
		}
		// ring: widths around the induction bound.
		for _, n := range []int{9, 10, 11, 12, 13, 14} {
			out = append(out, GenerateRing(n))
		}
		sweepInsts = out
	})
	return sweepInsts
}
