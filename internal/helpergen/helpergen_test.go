package helpergen_test

import (
	"strings"
	"testing"

	"fveval/internal/core"
	"fveval/internal/helpergen"
	"fveval/internal/mc"
	"fveval/internal/rtl"
	"fveval/internal/sva"
)

// TestConstructionSoundness pins the dataset's defining contract for
// every sweep instance: the target is true but Unknown alone (not
// k-inductive within the checker's default bound), the golden helper
// set unlocks it, the Insufficient response is valid but does not
// unlock, and the Invalid response fails helper validity.
func TestConstructionSoundness(t *testing.T) {
	insts := helpergen.Sweep()
	if len(insts) != 18 {
		t.Fatalf("sweep size: got %d, want 18", len(insts))
	}
	for _, inst := range insts {
		merged := strings.Replace(inst.Bench, "endmodule", inst.Target+"\nendmodule", 1)
		f, err := rtl.Parse(inst.Design + "\n" + merged)
		if err != nil {
			t.Fatalf("%s: parse: %v", inst.ID, err)
		}
		sys, err := rtl.ElaborateBound(f, inst.DUTTop, inst.BenchTop, nil)
		if err != nil {
			t.Fatalf("%s: elaborate: %v", inst.ID, err)
		}
		alone, err := mc.CheckAssertion(sys, inst.TargetAst, mc.Options{})
		if err != nil {
			t.Fatalf("%s: target alone: %v", inst.ID, err)
		}
		if alone.Status != mc.Unknown {
			t.Errorf("%s: target alone: got %v, want unknown (hard by construction)", inst.ID, alone.Status)
		}

		if syn, valid, unlocked := core.JudgeHelper(inst, strings.Join(inst.Helpers, "\n"), mc.Options{}); !syn || !valid || !unlocked {
			t.Errorf("%s: golden helpers: syn=%v valid=%v unlocked=%v, want all true", inst.ID, syn, valid, unlocked)
		}
		if syn, valid, unlocked := core.JudgeHelper(inst, inst.Insufficient, mc.Options{}); !syn || !valid || unlocked {
			t.Errorf("%s: insufficient helper: syn=%v valid=%v unlocked=%v, want valid but not unlocked", inst.ID, syn, valid, unlocked)
		}
		if syn, valid, unlocked := core.JudgeHelper(inst, inst.Invalid, mc.Options{}); !syn || valid || unlocked {
			t.Errorf("%s: invalid helper: syn=%v valid=%v unlocked=%v, want syntax-only", inst.ID, syn, valid, unlocked)
		}
	}
}

// TestGoldenOrderIndependent: the prove-then-assume fixpoint makes
// helper order irrelevant, so a reversed golden set judges the same.
func TestGoldenOrderIndependent(t *testing.T) {
	for _, inst := range helpergen.Sweep() {
		if len(inst.Helpers) < 2 {
			continue
		}
		rev := make([]string, len(inst.Helpers))
		for i, h := range inst.Helpers {
			rev[len(rev)-1-i] = h
		}
		if syn, valid, unlocked := core.JudgeHelper(inst, strings.Join(rev, "\n"), mc.Options{}); !syn || !valid || !unlocked {
			t.Errorf("%s: reversed golden helpers: syn=%v valid=%v unlocked=%v, want all true", inst.ID, syn, valid, unlocked)
		}
	}
}

// TestSweepDeterministic: Sweep is cached and deterministic — the
// same slice on every call, and stable well-formed instances.
func TestSweepDeterministic(t *testing.T) {
	a, b := helpergen.Sweep(), helpergen.Sweep()
	if &a[0] != &b[0] {
		t.Fatal("Sweep must return the cached slice")
	}
	seen := map[string]bool{}
	for _, inst := range a {
		if seen[inst.ID] {
			t.Fatalf("duplicate instance ID %s", inst.ID)
		}
		seen[inst.ID] = true
		if inst.TargetAst == nil {
			t.Fatalf("%s: missing parsed target", inst.ID)
		}
		if _, err := sva.ParseAssertion(inst.Invalid); err != nil {
			t.Fatalf("%s: Invalid response must still parse: %v", inst.ID, err)
		}
		if len(inst.Helpers) == 0 || inst.Insufficient == "" {
			t.Fatalf("%s: incomplete response pools", inst.ID)
		}
	}
}
