//go:build !faultinject

package fault

// BuildEnabled is false in regular builds: FVEVAL_FAULTS is ignored
// and the CLIs reject -faults, so release binaries cannot be switched
// into fault mode. Tests still inject programmatically via Activate.
const BuildEnabled = false
