// Package fault is the deterministic fault-injection layer used to
// harden the service, dist, store, and engine crash seams. Call sites
// name an injection point (Hit, CutLen); an activated Plan decides —
// from a seeded per-point RNG, so a given seed always fires the same
// arrivals — whether that arrival errors, stalls, or tears a write.
//
// When no plan is active every hook is a single atomic pointer load
// (the same discipline internal/obs uses for disabled tracing), so the
// points cost nothing on production paths. Activation from the
// environment (FVEVAL_FAULTS) is compiled in only under the
// `faultinject` build tag — release binaries cannot be switched into
// fault mode; tests activate programmatically via Activate/Reset.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the activation variable honored by faultinject builds:
// a plan spec like "seed=7;dist.response:p=0.1;worker.heartbeat:delay=300ms".
const EnvVar = "FVEVAL_FAULTS"

// Injection point names, one per crash seam. Every point compiled into
// the tree is listed in Points; ParsePlan and Activate reject unknown
// names so a chaos config typo fails loudly instead of silently
// injecting nothing.
const (
	// JournalAppend fails a run-store journal append before any bytes
	// are written (the record simply doesn't land).
	JournalAppend = "journal.append"
	// JournalFsync tears a journal write mid-record (cut mode): a
	// prefix of the line reaches disk, as after a crash between write
	// and fsync.
	JournalFsync = "journal.fsync"
	// SnapshotCompact fails snapshot compaction before it starts.
	SnapshotCompact = "snapshot.compact"
	// WorkerRegister fails worker registration at the coordinator.
	WorkerRegister = "worker.register"
	// WorkerHeartbeat delays or fails a worker heartbeat at the
	// coordinator (late heartbeats lapse the lease and force
	// re-registration).
	WorkerHeartbeat = "worker.heartbeat"
	// DistDispatch fails a shard dispatch before it reaches the runner.
	DistDispatch = "dist.dispatch"
	// DistResponse drops a shard response after the runner succeeded —
	// the work happened but the coordinator never sees the partial.
	DistResponse = "dist.response"
	// EngineJob delays or fails one engine evaluation job.
	EngineJob = "engine.job"
)

// Points lists every injection point compiled into this binary.
var Points = []string{
	JournalAppend, JournalFsync, SnapshotCompact,
	WorkerRegister, WorkerHeartbeat,
	DistDispatch, DistResponse,
	EngineJob,
}

// PointPlan configures one injection point.
type PointPlan struct {
	// Prob is the fire probability per arrival; 0 means always fire
	// (once armed and under Count).
	Prob float64
	// Count caps total fires (0 = unlimited).
	Count int
	// Skip arms the point only after this many arrivals passed through.
	Skip int
	// Delay stalls the caller on every fire.
	Delay time.Duration
	// Err makes a fire return an injected error (message ErrMsg, or a
	// default). A plan with neither Err, Cut, nor Delay set defaults to
	// Err on Activate.
	Err    bool
	ErrMsg string
	// Cut makes the point a torn-write point: CutLen fires return an
	// offset to cut the payload at — CutAt if non-negative, else seeded
	// random in [0, n).
	Cut   bool
	CutAt int
}

// Plan is a full activation: a seed plus per-point configs.
type Plan struct {
	Seed   uint64
	Points map[string]PointPlan
}

// Counts is one point's arrival/fire tally.
type Counts struct {
	Arrivals int
	Fires    int
}

type pointState struct {
	mu       sync.Mutex
	cfg      PointPlan
	rng      uint64
	arrivals int
	fires    int
}

type state struct {
	pts map[string]*pointState
}

var active atomic.Pointer[state]

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashName folds a point name into the seed so distinct points draw
// independent deterministic streams from one plan seed.
func hashName(name string) uint64 {
	var h uint64 = 0xcbf29ce484222325 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

func knownPoint(name string) bool {
	for _, p := range Points {
		if p == name {
			return true
		}
	}
	return false
}

// Activate installs a plan, replacing any active one. Counters reset.
func Activate(p Plan) error {
	st := &state{pts: map[string]*pointState{}}
	for name, cfg := range p.Points {
		if !knownPoint(name) {
			return fmt.Errorf("fault: unknown injection point %q", name)
		}
		if cfg.Prob < 0 || cfg.Prob > 1 {
			return fmt.Errorf("fault: point %s: probability %v out of [0,1]", name, cfg.Prob)
		}
		if cfg.Count < 0 || cfg.Skip < 0 || cfg.Delay < 0 {
			return fmt.Errorf("fault: point %s: negative option", name)
		}
		if !cfg.Err && !cfg.Cut && cfg.Delay == 0 {
			cfg.Err = true
		}
		if !cfg.Cut {
			cfg.CutAt = 0
		}
		seed := p.Seed ^ hashName(name)
		splitmix64(&seed) // decorrelate near-identical seeds
		st.pts[name] = &pointState{cfg: cfg, rng: seed}
	}
	active.Store(st)
	return nil
}

// Reset deactivates injection; every hook reverts to its no-op path.
func Reset() {
	active.Store(nil)
}

// Enabled reports whether a plan is active.
func Enabled() bool {
	return active.Load() != nil
}

// arrive consumes one arrival and decides whether it fires; the second
// return is an independent random draw for fire-time choices (cut
// offsets).
func (ps *pointState) arrive() (bool, uint64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.arrivals++
	if ps.arrivals <= ps.cfg.Skip {
		return false, 0
	}
	if ps.cfg.Count > 0 && ps.fires >= ps.cfg.Count {
		return false, 0
	}
	draw := splitmix64(&ps.rng)
	if ps.cfg.Prob > 0 && ps.cfg.Prob < 1 {
		if float64(draw>>11)/float64(1<<53) >= ps.cfg.Prob {
			return false, 0
		}
	}
	ps.fires++
	return true, splitmix64(&ps.rng)
}

// Hit is the generic seam: it returns nil instantly when no plan
// targets the point, stalls for the plan's Delay on a fire, and
// returns an injected error when the plan is an error plan.
func Hit(point string) error {
	st := active.Load()
	if st == nil {
		return nil
	}
	ps := st.pts[point]
	if ps == nil {
		return nil
	}
	fire, _ := ps.arrive()
	if !fire {
		return nil
	}
	if ps.cfg.Delay > 0 {
		time.Sleep(ps.cfg.Delay)
	}
	if !ps.cfg.Err {
		return nil
	}
	msg := ps.cfg.ErrMsg
	if msg == "" {
		msg = "injected fault"
	}
	return fmt.Errorf("fault %s: %s", point, msg)
}

// CutLen is the torn-write seam: for an n-byte payload it returns
// (offset, true) when a cut-mode plan fires, telling the caller to
// persist only payload[:offset] and fail — the on-disk artifact of a
// crash mid-write. Returns (0, false) when inactive or not firing.
func CutLen(point string, n int) (int, bool) {
	st := active.Load()
	if st == nil {
		return 0, false
	}
	ps := st.pts[point]
	if ps == nil || !ps.cfg.Cut || n <= 0 {
		return 0, false
	}
	fire, draw := ps.arrive()
	if !fire {
		return 0, false
	}
	if ps.cfg.CutAt >= 0 {
		off := ps.cfg.CutAt
		if off > n {
			off = n
		}
		return off, true
	}
	return int(draw % uint64(n)), true
}

// Snapshot returns per-point arrival/fire tallies for the active plan
// (nil when inactive). Used by /metrics and tests.
func Snapshot() map[string]Counts {
	st := active.Load()
	if st == nil {
		return nil
	}
	out := make(map[string]Counts, len(st.pts))
	for name, ps := range st.pts {
		ps.mu.Lock()
		out[name] = Counts{Arrivals: ps.arrivals, Fires: ps.fires}
		ps.mu.Unlock()
	}
	return out
}

// Fires returns one point's fire count (0 when inactive).
func Fires(point string) int {
	st := active.Load()
	if st == nil {
		return 0
	}
	ps := st.pts[point]
	if ps == nil {
		return 0
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.fires
}

// ParsePlan parses the FVEVAL_FAULTS spec grammar:
//
//	seed=7;point:opt,opt;point:opt
//
// where each opt is p=<float> | count=<n> | skip=<n> | delay=<dur> |
// err | err=<msg> | cut | cut=<offset>. Example:
//
//	seed=7;dist.response:p=0.1;journal.fsync:cut=12,count=1;worker.heartbeat:delay=300ms,p=0.5
func ParsePlan(spec string) (Plan, error) {
	plan := Plan{Points: map[string]PointPlan{}}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed %q", v)
			}
			plan.Seed = n
			continue
		}
		name, opts, ok := strings.Cut(part, ":")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad plan element %q (want point:opts)", part)
		}
		name = strings.TrimSpace(name)
		if !knownPoint(name) {
			return Plan{}, fmt.Errorf("fault: unknown injection point %q (known: %s)", name, strings.Join(Points, ", "))
		}
		if _, dup := plan.Points[name]; dup {
			return Plan{}, fmt.Errorf("fault: point %s configured twice", name)
		}
		cfg := PointPlan{CutAt: -1}
		for _, opt := range strings.Split(opts, ",") {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			key, val, hasVal := strings.Cut(opt, "=")
			var err error
			switch key {
			case "p":
				cfg.Prob, err = strconv.ParseFloat(val, 64)
			case "count":
				cfg.Count, err = strconv.Atoi(val)
			case "skip":
				cfg.Skip, err = strconv.Atoi(val)
			case "delay":
				cfg.Delay, err = time.ParseDuration(val)
			case "err":
				cfg.Err = true
				if hasVal {
					cfg.ErrMsg = val
				}
			case "cut":
				cfg.Cut = true
				if hasVal {
					cfg.CutAt, err = strconv.Atoi(val)
				}
			default:
				return Plan{}, fmt.Errorf("fault: point %s: unknown option %q", name, opt)
			}
			if err != nil {
				return Plan{}, fmt.Errorf("fault: point %s: bad option %q: %v", name, opt, err)
			}
		}
		plan.Points[name] = cfg
	}
	return plan, nil
}

// Describe renders the active plan's tallies one point per line,
// sorted — a stable debugging/summary form.
func Describe() string {
	snap := Snapshot()
	if snap == nil {
		return "fault injection inactive"
	}
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s: %d/%d fired\n", name, snap[name].Fires, snap[name].Arrivals)
	}
	return strings.TrimRight(b.String(), "\n")
}
