package fault

import (
	"strings"
	"testing"
	"time"
)

func activate(t *testing.T, p Plan) {
	t.Helper()
	if err := Activate(p); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	t.Cleanup(Reset)
}

func TestInactiveIsNoOp(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with no plan")
	}
	if err := Hit(DistResponse); err != nil {
		t.Fatalf("inactive Hit returned %v", err)
	}
	if off, ok := CutLen(JournalFsync, 100); ok {
		t.Fatalf("inactive CutLen fired at %d", off)
	}
	if Snapshot() != nil {
		t.Fatal("inactive Snapshot non-nil")
	}
}

func TestUnconfiguredPointIsNoOp(t *testing.T) {
	activate(t, Plan{Points: map[string]PointPlan{DistDispatch: {}}})
	for i := 0; i < 10; i++ {
		if err := Hit(EngineJob); err != nil {
			t.Fatalf("unconfigured point fired: %v", err)
		}
	}
	if got := Snapshot()[EngineJob]; got.Arrivals != 0 {
		t.Fatalf("unconfigured point tallied arrivals: %+v", got)
	}
}

func TestCountAndSkip(t *testing.T) {
	activate(t, Plan{Points: map[string]PointPlan{
		DistResponse: {Count: 2, Skip: 1},
	}})
	var errs int
	for i := 0; i < 6; i++ {
		if Hit(DistResponse) != nil {
			if i == 0 {
				t.Fatal("skip=1 fired on first arrival")
			}
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("count=2 plan fired %d times", errs)
	}
	if got := Snapshot()[DistResponse]; got.Arrivals != 6 || got.Fires != 2 {
		t.Fatalf("tally = %+v, want 6 arrivals / 2 fires", got)
	}
	if Fires(DistResponse) != 2 {
		t.Fatalf("Fires = %d", Fires(DistResponse))
	}
}

// TestProbabilityDeterministic pins that a seeded probabilistic plan
// fires the exact same arrival indices every activation — the property
// the chaos smoke's reproducibility rests on.
func TestProbabilityDeterministic(t *testing.T) {
	pattern := func() []int {
		activate(t, Plan{Seed: 42, Points: map[string]PointPlan{
			DistResponse: {Prob: 0.3},
		}})
		var fired []int
		for i := 0; i < 200; i++ {
			if Hit(DistResponse) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := pattern(), pattern()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 over 200 arrivals fired %d times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("runs disagree: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire %d at arrival %d vs %d", i, a[i], b[i])
		}
	}
	// Rough sanity on the rate: 0.3 ± a wide band.
	if len(a) < 30 || len(a) > 90 {
		t.Fatalf("p=0.3 fired %d/200 times", len(a))
	}
}

func TestSeedsDiverge(t *testing.T) {
	fires := func(seed uint64) []int {
		activate(t, Plan{Seed: seed, Points: map[string]PointPlan{DistResponse: {Prob: 0.3}}})
		var out []int
		for i := 0; i < 100; i++ {
			if Hit(DistResponse) != nil {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := fires(1), fires(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fire patterns")
	}
}

func TestDelayOnlyPlanStallsWithoutError(t *testing.T) {
	activate(t, Plan{Points: map[string]PointPlan{
		WorkerHeartbeat: {Delay: 30 * time.Millisecond},
	}})
	start := time.Now()
	if err := Hit(WorkerHeartbeat); err != nil {
		t.Fatalf("delay-only plan returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay-only plan stalled %v, want ~30ms", d)
	}
}

func TestCutLenFixedAndRandom(t *testing.T) {
	activate(t, Plan{Points: map[string]PointPlan{
		JournalFsync: {Cut: true, CutAt: 7},
	}})
	off, ok := CutLen(JournalFsync, 100)
	if !ok || off != 7 {
		t.Fatalf("fixed cut = (%d, %v), want (7, true)", off, ok)
	}
	// Hit on a cut-mode plan must not synthesize errors.
	if err := Hit(JournalFsync); err != nil {
		t.Fatalf("cut plan Hit errored: %v", err)
	}

	activate(t, Plan{Seed: 9, Points: map[string]PointPlan{
		JournalFsync: {Cut: true, CutAt: -1},
	}})
	for i := 0; i < 50; i++ {
		off, ok := CutLen(JournalFsync, 33)
		if !ok {
			t.Fatal("always-on cut plan did not fire")
		}
		if off < 0 || off >= 33 {
			t.Fatalf("random cut offset %d out of [0,33)", off)
		}
	}
}

func TestActivateRejectsBadPlans(t *testing.T) {
	if err := Activate(Plan{Points: map[string]PointPlan{"no.such.point": {}}}); err == nil {
		t.Fatal("unknown point accepted")
	}
	if err := Activate(Plan{Points: map[string]PointPlan{DistResponse: {Prob: 1.5}}}); err == nil {
		t.Fatal("probability 1.5 accepted")
	}
	Reset()
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("seed=7; dist.response:p=0.1,count=3 ;journal.fsync:cut=12;worker.heartbeat:delay=300ms,p=0.5;engine.job:err=boom")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if plan.Seed != 7 {
		t.Fatalf("seed = %d", plan.Seed)
	}
	if got := plan.Points[DistResponse]; got.Prob != 0.1 || got.Count != 3 {
		t.Fatalf("dist.response = %+v", got)
	}
	if got := plan.Points[JournalFsync]; !got.Cut || got.CutAt != 12 {
		t.Fatalf("journal.fsync = %+v", got)
	}
	if got := plan.Points[WorkerHeartbeat]; got.Delay != 300*time.Millisecond || got.Prob != 0.5 {
		t.Fatalf("worker.heartbeat = %+v", got)
	}
	if got := plan.Points[EngineJob]; !got.Err || got.ErrMsg != "boom" {
		t.Fatalf("engine.job = %+v", got)
	}

	for _, bad := range []string{
		"seed=x",
		"dist.response",
		"no.such.point:p=0.1",
		"dist.response:p=lots",
		"dist.response:frequency=2",
		"dist.response:p=0.1;dist.response:p=0.2",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestErrMessageNamesPoint(t *testing.T) {
	activate(t, Plan{Points: map[string]PointPlan{DistDispatch: {ErrMsg: "link down"}}})
	err := Hit(DistDispatch)
	if err == nil || !strings.Contains(err.Error(), DistDispatch) || !strings.Contains(err.Error(), "link down") {
		t.Fatalf("err = %v", err)
	}
}

func TestDescribe(t *testing.T) {
	Reset()
	if Describe() != "fault injection inactive" {
		t.Fatalf("inactive Describe = %q", Describe())
	}
	activate(t, Plan{Points: map[string]PointPlan{DistResponse: {Count: 1}}})
	Hit(DistResponse)
	Hit(DistResponse)
	if got := Describe(); got != "dist.response: 1/2 fired" {
		t.Fatalf("Describe = %q", got)
	}
}
