//go:build faultinject

package fault

import (
	"fmt"
	"os"
)

// BuildEnabled reports whether this binary was built with the
// faultinject tag: only such builds honor FVEVAL_FAULTS or accept a
// -faults flag.
const BuildEnabled = true

// init activates the FVEVAL_FAULTS plan before main runs, so every
// process in a chaos run — coordinator, workers, client — picks up
// injection from its environment with no per-binary wiring. A
// malformed spec aborts the process: a chaos config typo must never
// degrade silently into a fault-free run.
func init() {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return
	}
	plan, err := ParsePlan(spec)
	if err == nil {
		err = Activate(plan)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fault: %s: %v\n", EnvVar, err)
		os.Exit(2)
	}
}
