// Package equiv decides formal equivalence and implication between
// pairs of SVA assertions — the role played by the custom Cadence
// Jasper function in the paper's evaluation flow (§3.2). Signals are
// treated as unconstrained inputs of their declared widths; two
// assertions are compared per evaluation attempt over all infinite
// (ultimately periodic) traces.
//
// Verdicts mirror the paper's metrics: Equivalent feeds the Func
// metric; either implication direction additionally feeds the
// Partial-Func metric.
package equiv

import (
	"fmt"
	"sort"
	"time"

	"fveval/internal/bitvec"
	"fveval/internal/formal"
	"fveval/internal/logic"
	"fveval/internal/ltl"
	"fveval/internal/obs"
	"fveval/internal/sat"
	"fveval/internal/sva"
)

// Verdict classifies a pair of assertions.
type Verdict int

// Verdict values.
const (
	Inequivalent Verdict = iota
	Equivalent
	AImpliesB // every trace satisfying A satisfies B
	BImpliesA
)

func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case AImpliesB:
		return "A=>B"
	case BImpliesA:
		return "B=>A"
	}
	return "inequivalent"
}

// Sigs declares the signal environment both assertions are interpreted
// in: signal widths plus named constants (parameters).
type Sigs struct {
	Widths map[string]int
	Consts map[string]ltl.ConstVal
}

// Options tunes the checker.
type Options struct {
	// MaxBound caps the lasso length K the ramp may grow to
	// (0 = default 16).
	MaxBound int
	// Bound, when positive, forces the lasso length K exactly
	// (clamped to the formula depth + 1) and disables the ramp —
	// one solve at that bound; used by bound-sweep ablations.
	Bound int
	// Budget caps SAT conflicts per solver call (0 = unlimited): each
	// ramp step of each direction gets the full allowance, so the
	// authoritative final-bound solve keeps exactly the budget the
	// former one-shot check gave it.
	Budget int64
	// SimPatterns enables the bit-parallel simulation prefilter
	// (DESIGN.md §10): before each direction's SAT call, this many
	// random patterns (rounded up to 64-lane rounds, plus recycled
	// Bank patterns) are simulated over the violation cone, and a lane
	// satisfying it decides the direction — with the lane as the
	// witness — without opening the solver. 0 disables. The prefilter
	// is refute-only, so verdicts are identical either way (and the
	// knob is excluded from cache keys).
	SimPatterns int
	// Bank, when non-nil, supplies recycled counterexample patterns to
	// the prefilter and receives every SAT witness found here, so later
	// queries in the same run are refuted by earlier counterexamples.
	Bank *formal.Bank
	// Stats, when non-nil, receives solver-reuse and ramp counters.
	// It never affects verdicts (and is excluded from cache keys).
	Stats *formal.Stats
	// Span, when non-nil, is the traced parent span of this check:
	// every ramp step and prefilter decision records a child span under
	// it. Like Stats it never affects verdicts and is excluded from
	// cache keys; a nil Span makes every span call a no-op.
	Span *obs.Span
}

// Trace is a decoded counterexample: signal values per position with a
// loop back-edge from the last position to Loop.
type Trace struct {
	Loop    int
	Len     int
	Signals map[string][]uint64
}

// String renders the trace as a small table.
func (t *Trace) String() string {
	var names []string
	for n := range t.Signals {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("lasso: %d positions, loop->%d\n", t.Len, t.Loop)
	for _, n := range names {
		s += fmt.Sprintf("  %-16s", n)
		for _, v := range t.Signals[n] {
			s += fmt.Sprintf(" %d", v)
		}
		s += "\n"
	}
	return s
}

// Result reports the verdict with witnesses for the failed directions.
type Result struct {
	Verdict Verdict
	// AB is a witness trace satisfying A but not B (present when A
	// does not imply B); BA likewise.
	AB, BA *Trace
	// Bound is the largest lasso bound the checker actually solved at;
	// with the incremental ramp a witness trace may live at a smaller
	// bound, recorded in its own Len.
	Bound int
}

// Check decides the relationship between two assertions.
func Check(a, b *sva.Assertion, sigs *Sigs, opt Options) (Result, error) {
	// Clock compatibility: assertion equivalence is defined relative to
	// a common clocking event.
	if a.ClockEdge != b.ClockEdge {
		return Result{Verdict: Inequivalent}, nil
	}

	fa, err := ltl.LowerAssertion(a)
	if err != nil {
		return Result{}, err
	}
	fb, err := ltl.LowerAssertion(b)
	if err != nil {
		return Result{}, err
	}

	// Reconcile disable-iff conditions (see DESIGN.md §4): equal
	// conditions reduce the comparison to abort-free traces; a missing
	// condition on one side can only weaken verdicts toward the
	// implication from the stronger (undisabled) assertion.
	condRel, err := disableRelation(a.DisableIff, b.DisableIff, sigs, opt)
	if err != nil {
		return Result{}, err
	}

	res, err := checkFormulas(fa, fb, sigs, opt)
	if err != nil {
		return Result{}, err
	}
	res.Verdict = combineDisable(res.Verdict, condRel)
	return res, nil
}

// CheckProperties compares two bare properties (no clocking or disable
// handling) — used by tests and the model checker.
func CheckProperties(pa, pb sva.Property, sigs *Sigs, opt Options) (Result, error) {
	fa, err := ltl.LowerProperty(pa)
	if err != nil {
		return Result{}, err
	}
	fb, err := ltl.LowerProperty(pb)
	if err != nil {
		return Result{}, err
	}
	return checkFormulas(fa, fb, sigs, opt)
}

// disable relation outcomes.
type disableRel int

const (
	disSame    disableRel = iota // both absent or provably equivalent
	disOnlyA                     // only A is disable-guarded
	disOnlyB                     // only B is disable-guarded
	disDiffers                   // both present but inequivalent
)

func disableRelation(da, db sva.Expr, sigs *Sigs, opt Options) (disableRel, error) {
	switch {
	case da == nil && db == nil:
		return disSame, nil
	case da != nil && db == nil:
		return disOnlyA, nil
	case da == nil && db != nil:
		return disOnlyB, nil
	}
	eq, err := boolExprEquivalent(da, db, sigs, opt)
	if err != nil {
		return disSame, err
	}
	if eq {
		return disSame, nil
	}
	return disDiffers, nil
}

// combineDisable folds the disable-iff relationship into the body
// verdict. With equal conditions the body verdict stands (aborted
// attempts satisfy both assertions identically). When only one side is
// guarded, the unguarded assertion is strictly stronger on aborting
// traces, so only implications from it survive.
func combineDisable(body Verdict, rel disableRel) Verdict {
	switch rel {
	case disSame:
		return body
	case disOnlyA:
		// B (unguarded) is stronger: B=>A can survive; A=>B cannot.
		if body == Equivalent || body == BImpliesA {
			return BImpliesA
		}
		return Inequivalent
	case disOnlyB:
		if body == Equivalent || body == AImpliesB {
			return AImpliesB
		}
		return Inequivalent
	}
	return Inequivalent
}

// boolExprEquivalent SAT-checks two boolean-layer expressions for
// functional equality over free signals.
func boolExprEquivalent(x, y sva.Expr, sigs *Sigs, opt Options) (bool, error) {
	b := logic.NewBuilder()
	env := ltl.NewTraceEnv(b, sigs.Widths, sigs.Consts)
	ev := &ltl.ExprEval{Ops: bitvec.Ops{B: b}, Env: env}
	nx, err := ev.Bool(x, 0)
	if err != nil {
		return false, err
	}
	ny, err := ev.Bool(y, 0)
	if err != nil {
		return false, err
	}
	diff := b.Xor(nx, ny)
	s := sat.New()
	if opt.Budget > 0 {
		s.SetBudget(opt.Budget)
	}
	cnf := logic.NewCNF(b, s)
	cnf.Assert(diff)
	satisfiable, err := s.Solve()
	if err != nil {
		return false, err
	}
	return !satisfiable, nil
}

func checkFormulas(fa, fb ltl.Formula, sigs *Sigs, opt Options) (Result, error) {
	depth := ltl.Depth(fa)
	if d := ltl.Depth(fb); d > depth {
		depth = d
	}
	k := depth + 4
	if k < 8 {
		k = 8
	}
	maxB := opt.MaxBound
	if maxB == 0 {
		maxB = 16
	}
	if k > maxB {
		k = maxB
	}
	if opt.Bound > 0 {
		k = opt.Bound
	}
	if k <= depth {
		k = depth + 1 // always give the formula room to evaluate
	}

	usesPast := ltl.UsesPast(fa) || ltl.UsesPast(fb)
	unbounded := ltl.HasUnbounded(fa) || ltl.HasUnbounded(fb)

	// Bound ramp: probe at the smallest bound the formulas can evaluate
	// at, then finish at the final bound k. A witness word found at a
	// small bound is representable at every larger one, and the last
	// ramp step poses exactly the fixed-bound query, so verdicts match
	// the one-shot check — small counterexamples just surface after far
	// less encoding and solving. Pure bounded-future pairs collapse
	// further: their truth depends only on positions 0..depth, so the
	// first evaluable bound already decides the query in one solve. A
	// forced Bound (ablations) skips the ramp entirely.
	var ks []int
	switch {
	case opt.Bound > 0:
		ks = []int{k}
	case !usesPast && !unbounded:
		ks = []int{depth + 1}
	default:
		ks = rampSchedule(depth+1, k)
	}

	abTrace, baTrace, solved, err := findWitnesses(fa, fb, sigs, ks, usesPast, unbounded, opt)
	if err != nil {
		return Result{}, err
	}

	res := Result{AB: abTrace, BA: baTrace, Bound: solved}
	switch {
	case abTrace == nil && baTrace == nil:
		res.Verdict = Equivalent
	case abTrace == nil:
		res.Verdict = AImpliesB
	case baTrace == nil:
		res.Verdict = BImpliesA
	default:
		res.Verdict = Inequivalent
	}
	return res, nil
}

// loopsFor picks the candidate loop positions at bound k. Pure
// bounded-future formulas are insensitive to the loop, one suffices;
// past references need a position to look back from.
func loopsFor(k int, usesPast, unbounded bool) []int {
	var loops []int
	switch {
	case !unbounded && !usesPast:
		loops = []int{k - 1}
	case usesPast:
		for l := 1; l < k; l++ {
			loops = append(loops, l)
		}
	default:
		for l := 0; l < k; l++ {
			loops = append(loops, l)
		}
	}
	return loops
}

// rampSchedule enumerates the bounds an incremental query visits: a
// probe at kMin (where small counterexamples live), then straight to
// kMax (so the final step poses the same query a one-shot fixed-bound
// check would). Queries here are construction-dominated, not
// conflict-dominated, so intermediate rungs would cost more encoding
// than they save in solving.
func rampSchedule(kMin, kMax int) []int {
	if kMin < 1 {
		kMin = 1
	}
	if kMin >= kMax {
		return []int{kMax}
	}
	return []int{kMin, kMax}
}

// direction tracks one implication direction's progress through the
// shared incremental session.
type direction struct {
	f, g  ltl.Formula // searching for a trace satisfying f, violating g
	trace *Trace
	done  bool
	early bool // decided before the final ramp bound

	solves, conflicts, learntKept int64
}

// findWitnesses searches for lasso traces separating the two formulas
// in both directions at once, ramping the lasso bound through ks on
// one persistent solver shared by the whole pair (see DESIGN.md §7).
// Both directions' violation circuits are built over one structurally
// hashed builder — their truth cones are the same two formulas — and
// each (direction, bound) constraint is gated behind its own
// activation literal: solved under assumption, retired on UNSAT. The
// solver's learnt clauses, variable activity, and the Tseitin
// encoding carry across bounds and directions. A nil trace means no
// witness up to the final bound (that direction's implication holds).
func findWitnesses(fa, fb ltl.Formula, sigs *Sigs, ks []int, usesPast, unbounded bool, opt Options) (*Trace, *Trace, int, error) {
	b := logic.NewBuilder()
	env := ltl.NewTraceEnv(b, sigs.Widths, sigs.Consts)
	ev := &ltl.ExprEval{Ops: bitvec.Ops{B: b}, Env: env}
	family := ltl.NewLassoFamily(ev)

	names := unionNames(fa, fb)

	s := sat.New()
	if opt.Budget > 0 {
		s.SetBudget(opt.Budget)
	}
	cnf := logic.NewCNF(b, s)
	dirs := [2]*direction{
		{f: fa, g: fb},
		{f: fb, g: fa},
	}
	var hashBase int64
	started := time.Now()
	report := func() {
		for _, dir := range dirs {
			opt.Stats.Query(dir.solves, dir.conflicts, dir.learntKept, dir.early)
		}
		opt.Stats.GatesShared(b.HashHits() - hashBase)
		opt.Stats.NodesEncoded(int64(cnf.Encoded()))
		opt.Stats.SolveWall(time.Since(started).Nanoseconds())
	}
	// Every exit — verdict, budget exhaustion, or elaboration error —
	// must account the session's solver work.
	fail := func(err error) (*Trace, *Trace, int, error) {
		report()
		return nil, nil, 0, err
	}

	var pf *simPrefilter
	if opt.SimPatterns > 0 {
		pf = newSimPrefilter(b, env, opt)
	}

	solved := 0
	for step, k := range ks {
		solved = k // reaching a step means at least one direction solves here
		loops := loopsFor(k, usesPast, unbounded)
		for di, dir := range dirs {
			if dir.done {
				continue
			}
			perLoop := make(map[int]logic.Node)
			total := logic.False
			for _, l := range loops {
				le := family.At(k, l)
				tf, err := le.Truth(dir.f, 0)
				if err != nil {
					return fail(err)
				}
				tg, err := le.Truth(dir.g, 0)
				if err != nil {
					return fail(err)
				}
				viol := b.And(tf, tg.Not())
				if usesPast && l >= 1 {
					// Seam consistency: past references at the loop entry
					// must agree between the first and repeated loop
					// traversals.
					viol = b.And(viol, seamConstraint(b, env, ev, names, l, k))
				}
				perLoop[l] = viol
				total = b.Or(total, viol)
			}
			if step == 0 && di == 0 {
				// Reuse below the first direction's first bound is
				// baseline circuit CSE, not incremental savings.
				hashBase = b.HashHits()
			}

			// Refute before solving: a simulation lane satisfying the
			// violation disjunction is a complete concrete witness at
			// this exact bound, so the SAT call it preempts could only
			// have returned the same verdict (DESIGN.md §10).
			if pf != nil {
				ssp := opt.Span.Child("sim").SetPhase(obs.PhaseSim).
					SetInt("bound", int64(k)).SetInt("dir", int64(di))
				lane, hit, fromBank := pf.refute(names, k, total)
				ssp.SetBool("refuted", hit).SetBool("bank_hit", fromBank)
				ssp.End()
				if hit {
					dir.trace = decodeTraceLane(pf.sim, lane, env, names, k, perLoop)
					dir.done = true
					dir.early = step < len(ks)-1
					opt.Stats.SimRefuted(fromBank, 1)
					continue
				}
			}

			rsp := opt.Span.Child("ramp").SetPhase(obs.PhaseSAT).
				SetInt("bound", int64(k)).SetInt("dir", int64(di))
			act := b.Input(fmt.Sprintf("ramp_act@%d.%d", k, di))
			cnf.AssertIf(act, total)

			pre := s.Stats()
			if pre.Solves > 0 {
				dir.learntKept += int64(pre.Learnt)
			}
			ok, model, err := s.SolveModel(cnf.Lit(act))
			post := s.Stats()
			dir.solves++
			dir.conflicts += post.Conflicts - pre.Conflicts
			if err != nil {
				rsp.SetStr("verdict", "error").End()
				return fail(err)
			}
			if ok {
				rsp.SetStr("verdict", "sat")
			} else {
				rsp.SetStr("verdict", "unsat")
			}
			rsp.End()
			if ok {
				dir.trace = decodeTrace(b, env, cnf, model, names, sigs, k, perLoop)
				dir.done = true
				dir.early = step < len(ks)-1
				// Counterexample-guided refinement: fold the witness into
				// the shared bank so later pairs can be refuted by it.
				bankTrace(opt.Bank, dir.trace)
			}
			// Retire the activation either way: a found witness ends this
			// direction, and an UNSAT bound's constraints must drop out
			// before the next one. Everything learnt stays.
			cnf.Retire(act)
		}
		if dirs[0].done && dirs[1].done {
			report()
			return dirs[0].trace, dirs[1].trace, solved, nil
		}
	}
	report()
	return dirs[0].trace, dirs[1].trace, solved, nil
}

func seamConstraint(b *logic.Builder, env *ltl.TraceEnv, ev *ltl.ExprEval, names []string, l, k int) logic.Node {
	acc := logic.True
	ops := bitvec.Ops{B: b}
	for _, n := range names {
		prev, err1 := env.Signal(n, l-1)
		last, err2 := env.Signal(n, k-1)
		if err1 != nil || err2 != nil {
			continue
		}
		acc = b.And(acc, ops.Eq(prev, last))
	}
	return acc
}

func unionNames(f, g ltl.Formula) []string {
	set := map[string]bool{}
	for _, n := range ltl.SignalNames(f) {
		set[n] = true
	}
	for _, n := range ltl.SignalNames(g) {
		set[n] = true
	}
	var out []string
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// decodeTrace decodes a SAT model into a witness trace: the model's
// input values are broadcast into a one-lane simulation of the dense
// evaluator (no maps, no recursion) and the trace reads off lane 0.
func decodeTrace(b *logic.Builder, env *ltl.TraceEnv, cnf *logic.CNF,
	model []bool, names []string, sigs *Sigs, k int, perLoop map[int]logic.Node) *Trace {

	sim := logic.NewSim(b)
	for _, n := range names {
		for pos := 0; pos < k; pos++ {
			if bv, ok := env.At(n, pos); ok {
				for _, bit := range bv.Bits {
					if !bit.IsConst() && cnf.InputValue(model, bit) {
						sim.SetInput(bit, ^uint64(0))
					}
				}
			}
		}
	}
	sim.Run()
	return decodeTraceLane(sim, 0, env, names, k, perLoop)
}

// decodeTraceLane reads one simulation lane off as a witness trace —
// the shared decode path of the SAT model decoder and the prefilter
// (whose hit lane is already a complete assignment).
func decodeTraceLane(sim *logic.Sim, lane int, env *ltl.TraceEnv,
	names []string, k int, perLoop map[int]logic.Node) *Trace {

	tr := &Trace{Loop: -1, Len: k, Signals: map[string][]uint64{}}
	for l, viol := range perLoop {
		if sim.Bit(viol, lane) {
			tr.Loop = l
			break
		}
	}
	for _, n := range names {
		vals := make([]uint64, k)
		for pos := 0; pos < k; pos++ {
			if bv, ok := env.At(n, pos); ok {
				var v uint64
				for i, bit := range bv.Bits {
					if i < 64 && sim.Bit(bit, lane) {
						v |= 1 << uint(i)
					}
				}
				vals[pos] = v
			}
		}
		tr.Signals[n] = vals
	}
	return tr
}

// bankTrace folds a decoded witness into the shared pattern bank
// (copying the values: banked patterns are read-only and the trace is
// cached alongside the verdict).
func bankTrace(bank *formal.Bank, t *Trace) {
	if bank == nil || t == nil {
		return
	}
	vals := make(map[string][]uint64, len(t.Signals))
	for n, vs := range t.Signals {
		vals[n] = append([]uint64(nil), vs...)
	}
	bank.Add(formal.Pattern{Len: t.Len, Vals: vals})
}

// ---- bit-parallel simulation prefilter (DESIGN.md §10) ------------------

// simPrefilter drives refute-before-solve for one findWitnesses
// session: one Sim over the session's shared builder, a snapshot of
// the run-wide pattern bank, and a deterministic random stream.
type simPrefilter struct {
	env     *ltl.TraceEnv
	sim     *logic.Sim
	lanes   int // random lanes to simulate per query
	banked  []formal.Pattern
	rng     uint64
	st      *formal.Stats
	scratch []uint64 // per-signal lane-word buffer, reused across rounds
}

func newSimPrefilter(b *logic.Builder, env *ltl.TraceEnv, opt Options) *simPrefilter {
	return &simPrefilter{
		env:    env,
		sim:    logic.NewSim(b),
		lanes:  opt.SimPatterns,
		banked: opt.Bank.Patterns(64),
		// Fixed seed: every session draws the same deterministic
		// stream, keeping stats and witness traces reproducible.
		rng: 0x5eed5eed5eed5eed,
		st:  opt.Stats,
	}
}

// refute simulates banked + random patterns over the violation
// disjunction at bound k. A true lane is a complete concrete witness;
// the caller decodes it from the still-warm Sim. Missing is not a
// verdict — the SAT path runs as before.
func (pf *simPrefilter) refute(names []string, k int, total logic.Node) (int, bool, bool) {
	if total == logic.False {
		// Constant-folded to unsatisfiable: nothing to refute.
		return 0, false, false
	}
	remaining := pf.lanes
	for round := 0; remaining > 0 || (round == 0 && len(pf.banked) > 0); round++ {
		bankLanes := 0
		if round == 0 {
			bankLanes = len(pf.banked)
		}
		bankMask := ^uint64(0)
		if bankLanes < 64 {
			bankMask = 1<<uint(bankLanes) - 1
		}
		for _, name := range names {
			for pos := 0; pos < k; pos++ {
				bv, ok := pf.env.At(name, pos)
				if !ok {
					continue
				}
				if cap(pf.scratch) < len(bv.Bits) {
					pf.scratch = make([]uint64, len(bv.Bits))
				}
				words := pf.scratch[:len(bv.Bits)]
				if bankLanes > 0 {
					formal.LaneWords(pf.banked, bankLanes, name, pos, words)
				} else {
					for i := range words {
						words[i] = 0
					}
				}
				for i, bit := range bv.Bits {
					if bit.IsConst() {
						continue
					}
					pf.sim.SetInput(bit, words[i]|formal.SplitMix64(&pf.rng)&^bankMask)
				}
			}
		}
		pf.sim.Run()
		pf.st.SimPatterns(64)
		remaining -= 64 - bankLanes
		if lane, ok := pf.sim.FirstLane(total); ok {
			return lane, true, lane < bankLanes
		}
	}
	return 0, false, false
}

// DefaultMachineSigs is the symbolic signal environment of the
// NL2SVA-Machine benchmark: sig_A..sig_J where a subset are multi-bit
// vectors (so reduction operators and $countones are meaningful).
func DefaultMachineSigs() *Sigs {
	w := map[string]int{
		"clk":      1,
		"tb_reset": 1,
		"sig_A":    4,
		"sig_B":    4,
		"sig_C":    4,
		"sig_D":    1,
		"sig_E":    1,
		"sig_F":    1,
		"sig_G":    4,
		"sig_H":    4,
		"sig_I":    1,
		"sig_J":    1,
	}
	return &Sigs{Widths: w, Consts: map[string]ltl.ConstVal{}}
}
