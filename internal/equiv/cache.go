package equiv

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fveval/internal/sva"
)

// CacheStats reports memo effectiveness for one run.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// HitRate is Hits / (Hits + Misses), 0 when the cache saw no traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s CacheStats) String() string {
	return fmt.Sprintf("equiv cache: %d hits / %d misses (%.1f%% hit rate)",
		s.Hits, s.Misses, 100*s.HitRate())
}

type cacheEntry struct {
	res Result
	err error
}

// Cache is a concurrency-safe, content-addressed memo for Check.
// Keys are derived from the normalized assertion pair (labels carry no
// semantics and are stripped), the signal environment, and the checker
// options, so two lexically different but canonically identical queries
// share one SAT solve. Pass@k evaluation re-checks many duplicate
// candidate/reference pairs across samples and models; sharing one
// Cache across a whole run collapses them.
//
// A nil *Cache is valid and degenerates to an uncached Check call, so
// callers can thread an optional cache without branching.
type Cache struct {
	mu     sync.RWMutex
	m      map[[sha256.Size]byte]cacheEntry
	hits   atomic.Int64
	misses atomic.Int64

	// Key-derivation memos: canonical renderings by assertion identity
	// and signal-environment digests by Sigs identity. References and
	// signal environments repeat across thousands of queries, and
	// re-rendering them dominated cacheKey. Both grow with the same
	// traffic the verdict map does.
	normMu sync.RWMutex
	norm   map[*sva.Assertion]string
	sigsMu sync.RWMutex
	sigsD  map[*Sigs][]byte
}

// NewCache returns an empty cache ready for concurrent use.
func NewCache() *Cache {
	return &Cache{
		m:     map[[sha256.Size]byte]cacheEntry{},
		norm:  map[*sva.Assertion]string{},
		sigsD: map[*Sigs][]byte{},
	}
}

// Check is Check with memoization. Cached Results are shared — callers
// must treat the witness traces as read-only (every caller in this
// repo does).
func (c *Cache) Check(a, b *sva.Assertion, sigs *Sigs, opt Options) (Result, error) {
	if c == nil {
		return Check(a, b, sigs, opt)
	}
	key := c.key(a, b, sigs, opt)
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		opt.Span.SetBool("cache_hit", true)
		return e.res, e.err
	}
	c.misses.Add(1)
	opt.Span.SetBool("cache_hit", false)
	res, err := Check(a, b, sigs, opt)
	c.mu.Lock()
	c.m[key] = cacheEntry{res, err}
	c.mu.Unlock()
	return res, err
}

// Stats snapshots the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len reports the number of distinct queries memoized.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// key hashes the semantic content of a query: canonical assertion
// renderings with labels stripped, the sorted signal environment, and
// every option that can change the verdict (the simulation-prefilter
// knobs are deliberately excluded — they never do).
func (c *Cache) key(a, b *sva.Assertion, sigs *Sigs, opt Options) [sha256.Size]byte {
	h := sha256.New()
	io.WriteString(h, c.normalized(a))
	h.Write([]byte{0})
	io.WriteString(h, c.normalized(b))
	h.Write([]byte{0})
	h.Write(c.sigsDigest(sigs))
	fmt.Fprintf(h, "|%d|%d|%d", opt.MaxBound, opt.Bound, opt.Budget)
	var key [sha256.Size]byte
	copy(key[:], h.Sum(nil))
	return key
}

// memoCap bounds the pointer-keyed derivation memos below: unlike the
// content-hashed verdict map, their keys are object identities, so a
// long-lived service re-parsing duplicate assertions would otherwise
// grow them (and pin the keyed ASTs) forever. Hitting the cap clears
// the memo — rare, and only costs re-rendering.
const memoCap = 1 << 16

// normalized memoizes normalizeAssertion by assertion identity:
// references recur across every sample of every model, and rendering
// them per query dominated key derivation.
func (c *Cache) normalized(a *sva.Assertion) string {
	c.normMu.RLock()
	s, ok := c.norm[a]
	c.normMu.RUnlock()
	if ok {
		return s
	}
	s = normalizeAssertion(a)
	c.normMu.Lock()
	if len(c.norm) >= memoCap {
		c.norm = map[*sva.Assertion]string{}
	}
	c.norm[a] = s
	c.normMu.Unlock()
	return s
}

// sigsDigest memoizes the signal-environment serialization by Sigs
// identity (one Sigs value typically serves a whole dataset).
func (c *Cache) sigsDigest(sigs *Sigs) []byte {
	c.sigsMu.RLock()
	d, ok := c.sigsD[sigs]
	c.sigsMu.RUnlock()
	if ok {
		return d
	}
	var buf strings.Builder
	writeSigs(&buf, sigs)
	d = []byte(buf.String())
	c.sigsMu.Lock()
	if len(c.sigsD) >= memoCap {
		c.sigsD = map[*Sigs][]byte{}
	}
	c.sigsD[sigs] = d
	c.sigsMu.Unlock()
	return d
}

// normalizeAssertion renders an assertion canonically, dropping the
// label (it never affects the verdict).
func normalizeAssertion(a *sva.Assertion) string {
	if a.Label == "" {
		return a.String()
	}
	c := a.Clone()
	c.Label = ""
	return c.String()
}

func writeSigs(h io.Writer, sigs *Sigs) {
	if sigs == nil {
		return
	}
	names := make([]string, 0, len(sigs.Widths))
	for n := range sigs.Widths {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "%s=%d;", n, sigs.Widths[n])
	}
	if len(sigs.Consts) > 0 {
		cnames := make([]string, 0, len(sigs.Consts))
		for n := range sigs.Consts {
			cnames = append(cnames, n)
		}
		sort.Strings(cnames)
		for _, n := range cnames {
			v := sigs.Consts[n]
			fmt.Fprintf(h, "%s=%d/%d;", n, v.Value, v.Width)
		}
	}
}
