package equiv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fveval/internal/bitvec"
	"fveval/internal/gen/svagen"
	"fveval/internal/logic"
	"fveval/internal/ltl"
	"fveval/internal/sva"
)

// Metamorphic properties of the equivalence checker over the machine
// benchmark's randomly generated assertions: known-direction rewrites
// must always produce the expected verdict class.

func machineAssertion(seed int64) *sva.Assertion {
	return svagen.Generate(seed).Reference
}

func TestQuickReflexivity(t *testing.T) {
	sigs := DefaultMachineSigs()
	f := func(seedRaw uint16) bool {
		a := machineAssertion(int64(seedRaw) + 1)
		res, err := Check(a, a, sigs, Options{})
		if err != nil {
			return false
		}
		return res.Verdict == Equivalent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVerdictSymmetry(t *testing.T) {
	// Check(a, b) and Check(b, a) must be mirror verdicts.
	sigs := DefaultMachineSigs()
	f := func(s1, s2 uint16) bool {
		a := machineAssertion(int64(s1) + 1)
		b := machineAssertion(int64(s2) + 500)
		r1, err1 := Check(a, b, sigs, Options{})
		r2, err2 := Check(b, a, sigs, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		switch r1.Verdict {
		case Equivalent:
			return r2.Verdict == Equivalent
		case Inequivalent:
			return r2.Verdict == Inequivalent
		case AImpliesB:
			return r2.Verdict == BImpliesA
		default:
			return r2.Verdict == AImpliesB
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConjunctionStrengthens(t *testing.T) {
	// For any boolean-bodied assertion A with body e, the assertion
	// with body (e && sig_E) must imply A.
	sigs := DefaultMachineSigs()
	f := func(seedRaw uint16) bool {
		a := machineAssertion(int64(seedRaw)*3 + 7)
		body, ok := a.Body.(*sva.PropSeq)
		if !ok {
			return true // only boolean-bodied instances
		}
		se, ok := body.S.(*sva.SeqExpr)
		if !ok {
			return true
		}
		stronger := a.Clone()
		stronger.Body = &sva.PropSeq{S: &sva.SeqExpr{E: &sva.Binary{
			Op: "&&", X: sva.CloneExpr(se.E), Y: &sva.Ident{Name: "sig_E"},
		}}}
		res, err := Check(stronger, a, sigs, Options{})
		if err != nil {
			return false
		}
		// stronger implies original: A=>B, or Equivalent when e
		// already forces sig_E (possible for degenerate bodies).
		return res.Verdict == AImpliesB || res.Verdict == Equivalent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDoubleNegationPreserves(t *testing.T) {
	sigs := DefaultMachineSigs()
	f := func(seedRaw uint16) bool {
		a := machineAssertion(int64(seedRaw)*5 + 11)
		body, ok := a.Body.(*sva.PropSeq)
		if !ok {
			return true
		}
		se, ok := body.S.(*sva.SeqExpr)
		if !ok {
			return true
		}
		dn := a.Clone()
		dn.Body = &sva.PropSeq{S: &sva.SeqExpr{E: &sva.Unary{
			Op: "!", X: &sva.Unary{Op: "!", X: sva.CloneExpr(se.E)},
		}}}
		res, err := Check(dn, a, sigs, Options{})
		if err != nil {
			return false
		}
		return res.Verdict == Equivalent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDelayNarrowingImplies(t *testing.T) {
	// a |-> ##[lo:hi] b narrowed to ##lo must imply the original.
	sigs := DefaultMachineSigs()
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for seed := int64(1); seed < 400 && checked < 15; seed++ {
		a := machineAssertion(seed)
		impl, ok := a.Body.(*sva.PropImpl)
		if !ok {
			continue
		}
		ps, ok := impl.P.(*sva.PropSeq)
		if !ok {
			continue
		}
		sd, ok := ps.S.(*sva.SeqDelay)
		if !ok || sd.D.Inf || sd.D.Lo == sd.D.Hi {
			continue
		}
		checked++
		narrowed := a.Clone()
		nImpl := narrowed.Body.(*sva.PropImpl)
		nSd := nImpl.P.(*sva.PropSeq).S.(*sva.SeqDelay)
		nSd.D.Hi = nSd.D.Lo
		res, err := Check(narrowed, a, sigs, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Verdict != AImpliesB && res.Verdict != Equivalent {
			t.Fatalf("seed %d: narrowed delay must imply original, got %v\nA: %s\nB: %s",
				seed, res.Verdict, narrowed, a)
		}
	}
	if checked < 5 {
		t.Fatalf("too few delay-range instances exercised: %d", checked)
	}
	_ = rng
}

func TestQuickNegationInequivalent(t *testing.T) {
	// not(A) is never equivalent to A (bodies are satisfiable and
	// falsifiable for generated instances).
	sigs := DefaultMachineSigs()
	f := func(seedRaw uint16) bool {
		a := machineAssertion(int64(seedRaw)*7 + 3)
		neg := a.Clone()
		neg.Body = &sva.PropNot{P: sva.CloneProp(a.Body)}
		res, err := Check(neg, a, sigs, Options{})
		if err != nil {
			return false
		}
		return res.Verdict != Equivalent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWitnessTracesAreSound replays every counterexample the checker
// returns: evaluating both formulas on the decoded lasso must confirm
// the separating verdict (A holds, B fails). This closes the loop on
// the SAT encoding, the lasso evaluator, and the trace decoder.
func TestWitnessTracesAreSound(t *testing.T) {
	sigs := DefaultMachineSigs()
	checked := 0
	for seed := int64(1); seed < 160 && checked < 25; seed++ {
		a := machineAssertion(seed)
		b := machineAssertion(seed + 1000)
		res, err := Check(a, b, sigs, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.AB != nil {
			checked++
			replayWitness(t, a, b, res.AB, sigs)
		}
		if res.BA != nil {
			replayWitness(t, b, a, res.BA, sigs)
		}
	}
	if checked < 10 {
		t.Fatalf("too few witnesses exercised: %d", checked)
	}
}

// replayWitness checks that trace satisfies holds and violates fails.
func replayWitness(t *testing.T, holds, fails *sva.Assertion, tr *Trace, sigs *Sigs) {
	t.Helper()
	fh, err := ltl.LowerAssertion(holds)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := ltl.LowerAssertion(fails)
	if err != nil {
		t.Fatal(err)
	}
	b := logic.NewBuilder()
	env := ltl.NewTraceEnv(b, sigs.Widths, sigs.Consts)
	ev := &ltl.ExprEval{Ops: bitvec.Ops{B: b}, Env: env}
	le := ltl.NewLassoEval(ev, tr.Len, tr.Loop)
	nh, err := le.Truth(fh, 0)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := le.Truth(ff, 0)
	if err != nil {
		t.Fatal(err)
	}
	assign := map[logic.Node]bool{}
	for name, vals := range tr.Signals {
		for pos, v := range vals {
			bv, err := env.Signal(name, pos)
			if err != nil {
				continue
			}
			for i, bit := range bv.Bits {
				if !bit.IsConst() {
					assign[bit] = v&(1<<uint(i)) != 0
				}
			}
		}
	}
	cache := map[int32]bool{}
	if !b.Eval(nh, assign, cache) {
		t.Fatalf("witness does not satisfy the holding assertion\n%s\nholds: %s\nfails: %s",
			tr, holds, fails)
	}
	if b.Eval(nf, assign, cache) {
		t.Fatalf("witness does not violate the failing assertion\n%s\nholds: %s\nfails: %s",
			tr, holds, fails)
	}
}
