package equiv

import (
	"testing"

	"fveval/internal/ltl"
	"fveval/internal/sva"
)

func mustParse(t *testing.T, src string) *sva.Assertion {
	t.Helper()
	a, err := sva.ParseAssertion(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return a
}

func humanSigs() *Sigs {
	return &Sigs{
		Widths: map[string]int{
			"clk": 1, "tb_reset": 1,
			"rd_pop": 1, "wr_push": 1, "fifo_empty": 1, "fifo_full": 1,
			"rd_data": 2, "fifo_out_data": 2,
			"busy": 1, "hold": 1, "cont_gnt": 1,
			"tb_req": 4, "tb_gnt": 4,
			"a": 1, "b": 1, "c": 1,
		},
		Consts: map[string]ltl.ConstVal{},
	}
}

func check(t *testing.T, srcA, srcB string, sigs *Sigs) Result {
	t.Helper()
	res, err := Check(mustParse(t, srcA), mustParse(t, srcB), sigs, Options{})
	if err != nil {
		t.Fatalf("check error: %v\nA: %s\nB: %s", err, srcA, srcB)
	}
	return res
}

const clkReset = "assert property (@(posedge clk) disable iff (tb_reset) "

func TestReflexivity(t *testing.T) {
	cases := []string{
		clkReset + "(fifo_empty && rd_pop) !== 1'b1);",
		clkReset + "wr_push |-> strong(##[0:$] rd_pop));",
		clkReset + "!fifo_empty |-> strong(##[0:$] rd_pop));",
		clkReset + "a |-> ##2 b);",
		clkReset + "a until b);",
		clkReset + "(a ##1 b) |=> c);",
	}
	for _, src := range cases {
		res := check(t, src, src, humanSigs())
		if res.Verdict != Equivalent {
			t.Errorf("self-equivalence failed for %s: %v", src, res.Verdict)
		}
	}
}

func TestBooleanRewritesEquivalent(t *testing.T) {
	cases := [][2]string{
		// (x && y) !== 1'b1  ===  !(x && y)
		{clkReset + "(fifo_empty && rd_pop) !== 1'b1);",
			clkReset + "!(fifo_empty && rd_pop));"},
		// De Morgan
		{clkReset + "!(a && b));", clkReset + "(!a || !b));"},
		// The FIFO data-consistency pair from paper Fig. 13: the
		// reference !== form and the |-> rewrite are equivalent.
		{clkReset + "(rd_pop && (fifo_out_data != rd_data)) !== 1'b1);",
			clkReset + "rd_pop |-> (rd_data == fifo_out_data));"},
		// === and == coincide in two-state semantics.
		{clkReset + "rd_pop |-> rd_data === fifo_out_data);",
			clkReset + "rd_pop |-> rd_data == fifo_out_data);"},
		// |=> is |-> ##1.
		{clkReset + "a |=> b);", clkReset + "a |-> ##1 b);"},
		// delay splitting
		{clkReset + "a |-> ##2 b);", clkReset + "a |-> ##1 ##1 b);"},
	}
	for _, c := range cases {
		res := check(t, c[0], c[1], humanSigs())
		if res.Verdict != Equivalent {
			t.Errorf("expected Equivalent, got %v\nA: %s\nB: %s\nAB cex: %v\nBA cex: %v",
				res.Verdict, c[0], c[1], res.AB, res.BA)
		}
	}
}

func TestPaperPartialEquivalenceFIFO(t *testing.T) {
	// Paper Fig. 7, fifo_1r1w_bypass_4: reference uses a strong
	// eventuality; gpt-4o answered with a weak ##[1:$] which the paper
	// classifies as partial (reference implies the response).
	ref := clkReset + "wr_push |-> strong(##[0:$] rd_pop));"
	gpt := clkReset + "wr_push |-> ##[1:$] rd_pop);"
	res := check(t, gpt, ref, humanSigs())
	// A = model (gpt), B = reference: reference implies model.
	if res.Verdict != BImpliesA {
		t.Errorf("expected B=>A (ref implies model), got %v (AB=%v BA=%v)",
			res.Verdict, res.AB != nil, res.BA != nil)
	}
}

func TestPaperPartialEquivalenceArbiter(t *testing.T) {
	// Paper Fig. 7, arbiter_reverse_priority_9: gpt-4o's
	// !(busy && hold && cont_gnt) is implied by the reference
	// $onehot0 form ("this assertion implies the reference" is the
	// paper's comment written from the response's perspective:
	// the reference implies the response).
	ref := clkReset + "!$onehot0({hold,busy,cont_gnt}) !== 1'b1);"
	gpt := clkReset + "!(busy && hold && cont_gnt));"
	res := check(t, gpt, ref, humanSigs())
	if res.Verdict != BImpliesA {
		t.Errorf("expected B=>A, got %v", res.Verdict)
	}
	// And the Llama pairwise-exclusion expansion is fully equivalent
	// (paper marks it Functionality: pass).
	llama := clkReset + "!(busy && (hold || cont_gnt)) && !(hold && (busy || cont_gnt)) && !(cont_gnt && (busy || hold)));"
	res = check(t, llama, ref, humanSigs())
	if res.Verdict != Equivalent {
		t.Errorf("expected Equivalent for llama response, got %v\nAB: %v\nBA: %v",
			res.Verdict, res.AB, res.BA)
	}
}

func TestPaperMachineExample(t *testing.T) {
	sigs := DefaultMachineSigs()
	// Paper Fig. 8 problem nl2sva_machine_3_61_0.
	ref := `assert property(@(posedge clk) ((sig_D || ^sig_H) && sig_F));`
	// gpt-4o 0-shot: |-> instead of && — response is implied by the
	// reference (partial pass per the paper).
	zeroShot := `assert property (@(posedge clk) (sig_D || ($countones(sig_H) % 2 == 1)) |-> sig_F);`
	res := check(t, mustSrc(t, zeroShot), mustSrc(t, ref), sigs)
	if res.Verdict != BImpliesA {
		t.Errorf("0-shot: expected B=>A, got %v", res.Verdict)
	}
	// gpt-4o 3-shot: exact rewrite with ^ — full pass.
	threeShot := `assert property(@(posedge clk) ((sig_D || (^sig_H)) && sig_F));`
	res = check(t, mustSrc(t, threeShot), mustSrc(t, ref), sigs)
	if res.Verdict != Equivalent {
		t.Errorf("3-shot: expected Equivalent, got %v", res.Verdict)
	}
	// Llama 0-shot: $countones odd && — full pass.
	llama0 := `assert property (@(posedge clk) (sig_D || ($countones(sig_H) % 2 == 1)) && sig_F);`
	res = check(t, mustSrc(t, llama0), mustSrc(t, ref), sigs)
	if res.Verdict != Equivalent {
		t.Errorf("llama 0-shot: expected Equivalent, got %v", res.Verdict)
	}
	// Llama 3-shot: $bits instead of $countones — partial: the paper
	// says this response implies the reference... $bits(sig_H)=4 is
	// even so the left disjunct is constantly false: the response is
	// sig_D-independent (sig_F && false-or-sig_D). Response = sig_F &&
	// sig_D... wait: (sig_D || ($bits % 2 == 1)) && sig_F with $bits=4
	// reduces to sig_D && sig_F, which implies the reference.
	llama3 := `assert property(@(posedge clk) ((sig_D || ($bits(sig_H) % 2 == 1)) && sig_F));`
	res = check(t, mustSrc(t, llama3), mustSrc(t, ref), sigs)
	if res.Verdict != AImpliesB {
		t.Errorf("llama 3-shot: expected A=>B, got %v", res.Verdict)
	}
}

func mustSrc(t *testing.T, s string) string { return s }

func TestDelayMismatchInequivalent(t *testing.T) {
	sigs := DefaultMachineSigs()
	ref := `assert property(@(posedge clk) (sig_G !== 1'b1) |-> ##4 sig_J);`
	wrongDelay := `assert property(@(posedge clk) (sig_G !== 1'b1) |-> ##3 sig_J);`
	res := check(t, wrongDelay, ref, sigs)
	if res.Verdict != Inequivalent {
		t.Errorf("expected Inequivalent, got %v", res.Verdict)
	}
	// ##[1:4] is weaker than ##4: reference implies it.
	rangeDelay := `assert property(@(posedge clk) (sig_G !== 1'b1) |-> ##[1:4] sig_J);`
	res = check(t, rangeDelay, ref, sigs)
	if res.Verdict != BImpliesA {
		t.Errorf("expected B=>A for range delay, got %v (AB=%v BA=%v)",
			res.Verdict, res.AB != nil, res.BA != nil)
	}
}

func TestAntecedentStrengthening(t *testing.T) {
	// Adding a conjunct to the antecedent weakens the property: the
	// original implies the strengthened-antecedent version.
	orig := clkReset + "a |-> ##1 c);"
	weaker := clkReset + "(a && b) |-> ##1 c);"
	res := check(t, weaker, orig, humanSigs())
	if res.Verdict != BImpliesA {
		t.Errorf("expected B=>A, got %v", res.Verdict)
	}
}

func TestConsequentWeakening(t *testing.T) {
	orig := clkReset + "a |-> (b && c));"
	weaker := clkReset + "a |-> b);"
	res := check(t, weaker, orig, humanSigs())
	if res.Verdict != BImpliesA {
		t.Errorf("expected B=>A, got %v", res.Verdict)
	}
}

func TestLivenessDistinctions(t *testing.T) {
	sigs := humanSigs()
	// strong(##[0:$] e) vs strong(##[1:$] e): the latter requires a
	// strictly future e; the former also accepts e now. [1:$] implies
	// [0:$].
	a := clkReset + "wr_push |-> strong(##[0:$] rd_pop));"
	b := clkReset + "wr_push |-> strong(##[1:$] rd_pop));"
	res := check(t, a, b, sigs)
	if res.Verdict != BImpliesA {
		t.Errorf("expected B=>A, got %v", res.Verdict)
	}
	// weak unbounded tail is vacuous on infinite traces: implied by
	// everything, including the trivial property.
	weak := clkReset + "wr_push |-> ##[1:$] rd_pop);"
	trivial := clkReset + "1'b1);"
	res = check(t, weak, trivial, sigs)
	if res.Verdict != Equivalent {
		t.Errorf("weak eventuality should be vacuously true, got %v", res.Verdict)
	}
}

func TestUntilSemantics(t *testing.T) {
	sigs := humanSigs()
	// s_until requires termination: it implies weak until.
	strong := clkReset + "a s_until b);"
	weak := clkReset + "a until b);"
	res := check(t, strong, weak, sigs)
	if res.Verdict != AImpliesB {
		t.Errorf("expected A=>B (s_until => until), got %v", res.Verdict)
	}
	// until_with includes the overlap cycle: a until_with b requires a
	// at the cycle b first holds; plain until does not.
	withV := clkReset + "a until_with b);"
	res = check(t, withV, weak, sigs)
	if res.Verdict != AImpliesB {
		t.Errorf("expected A=>B (until_with => until), got %v", res.Verdict)
	}
}

func TestSEventuallyEquivalence(t *testing.T) {
	sigs := humanSigs()
	a := clkReset + "a |-> s_eventually b);"
	b2 := clkReset + "a |-> strong(##[0:$] b));"
	res := check(t, a, b2, sigs)
	if res.Verdict != Equivalent {
		t.Errorf("s_eventually == strong(##[0:$]): got %v", res.Verdict)
	}
}

func TestDisableIffHandling(t *testing.T) {
	sigs := humanSigs()
	// Same bodies, same disable: equivalent.
	a := clkReset + "!(a && b));"
	b2 := clkReset + "!(a && b));"
	if res := check(t, a, b2, sigs); res.Verdict != Equivalent {
		t.Errorf("same disable: got %v", res.Verdict)
	}
	// One guarded, one not: unguarded implies guarded.
	noDis := "assert property (@(posedge clk) !(a && b));"
	res := check(t, noDis, a, sigs)
	if res.Verdict != AImpliesB {
		t.Errorf("unguarded should imply guarded, got %v", res.Verdict)
	}
	res = check(t, a, noDis, sigs)
	if res.Verdict != BImpliesA {
		t.Errorf("guarded implied by unguarded, got %v", res.Verdict)
	}
	// Different disable conditions: conservative inequivalent.
	otherDis := "assert property (@(posedge clk) disable iff (c) !(a && b));"
	res = check(t, a, otherDis, sigs)
	if res.Verdict != Inequivalent {
		t.Errorf("different disables: got %v", res.Verdict)
	}
	// Rewritten but equivalent disable conditions reconcile.
	rewr := "assert property (@(posedge clk) disable iff (tb_reset == 1'b1) !(a && b));"
	res = check(t, a, rewr, sigs)
	if res.Verdict != Equivalent {
		t.Errorf("equivalent disables: got %v", res.Verdict)
	}
}

func TestPastOperators(t *testing.T) {
	sigs := humanSigs()
	// $rose(a) === a && !$past(a)
	x := clkReset + "$rose(a) |-> b);"
	y := clkReset + "(a && !$past(a)) |-> b);"
	res := check(t, x, y, sigs)
	if res.Verdict != Equivalent {
		t.Errorf("$rose rewrite: got %v\nAB: %v\nBA: %v", res.Verdict, res.AB, res.BA)
	}
	// $stable vs $changed are complements.
	s1 := clkReset + "$stable(rd_data) |-> b);"
	s2 := clkReset + "!$changed(rd_data) |-> b);"
	res = check(t, s1, s2, sigs)
	if res.Verdict != Equivalent {
		t.Errorf("$stable/!$changed: got %v", res.Verdict)
	}
}

func TestCounterexampleWitness(t *testing.T) {
	sigs := humanSigs()
	a := clkReset + "a |-> ##1 b);"
	bSrc := clkReset + "a |-> ##2 b);"
	res := check(t, a, bSrc, sigs)
	if res.Verdict != Inequivalent {
		t.Fatalf("expected Inequivalent, got %v", res.Verdict)
	}
	if res.AB == nil || res.BA == nil {
		t.Fatalf("expected witnesses in both directions")
	}
	if res.AB.Loop < 0 || res.AB.Loop >= res.AB.Len {
		t.Errorf("bad loop position %d", res.AB.Loop)
	}
	if len(res.AB.Signals["a"]) != res.AB.Len {
		t.Errorf("trace should carry signal a values")
	}
	if res.AB.String() == "" {
		t.Errorf("trace must render")
	}
}

func TestVerdictStringAndSymmetry(t *testing.T) {
	if Equivalent.String() != "equivalent" || Inequivalent.String() != "inequivalent" {
		t.Fatalf("verdict strings broken")
	}
	sigs := humanSigs()
	a := clkReset + "a |-> (b && c));"
	b2 := clkReset + "a |-> b);"
	r1 := check(t, a, b2, sigs)
	r2 := check(t, b2, a, sigs)
	if r1.Verdict != AImpliesB || r2.Verdict != BImpliesA {
		t.Errorf("verdicts not symmetric: %v vs %v", r1.Verdict, r2.Verdict)
	}
}

func TestUndeclaredSignalIsError(t *testing.T) {
	sigs := humanSigs()
	a := mustParse(t, clkReset+"mystery_signal |-> b);")
	b2 := mustParse(t, clkReset+"b);")
	if _, err := Check(a, b2, sigs, Options{}); err == nil {
		t.Fatalf("expected elaboration error for undeclared signal")
	}
}

func TestThroughoutAndRepetition(t *testing.T) {
	sigs := humanSigs()
	// b throughout (a ##2 c) requires b at offsets 0..2.
	x := clkReset + "(b throughout (a ##2 c)) |-> ##1 hold);"
	y := clkReset + "((a && b) ##1 b ##1 (b && c)) |-> ##1 hold);"
	res := check(t, x, y, sigs)
	if res.Verdict != Equivalent {
		t.Errorf("throughout expansion: got %v", res.Verdict)
	}
	// a[*2] == a ##1 a
	x2 := clkReset + "a[*2] |-> c);"
	y2 := clkReset + "(a ##1 a) |-> c);"
	res = check(t, x2, y2, sigs)
	if res.Verdict != Equivalent {
		t.Errorf("repetition expansion: got %v", res.Verdict)
	}
}

func TestFSMStateExample(t *testing.T) {
	// Design2SVA-style widths with parameters.
	sigs := &Sigs{
		Widths: map[string]int{
			"clk": 1, "reset_": 1, "state": 2, "next_state": 2,
			"in_A": 4, "in_C": 4, "in_D": 4,
		},
		Consts: map[string]ltl.ConstVal{
			"S0": {Value: 0, Width: 2}, "S1": {Value: 1, Width: 2},
			"S2": {Value: 2, Width: 2}, "S3": {Value: 3, Width: 2},
		},
	}
	a := "assert property (@(posedge clk) disable iff (reset_) state == 2'b10 |-> (next_state == 2'b00 || next_state == 2'b01 || next_state == 2'b11));"
	b2 := "assert property (@(posedge clk) disable iff (reset_) state == S2 |-> (next_state != S2));"
	res := check(t, a, b2, sigs)
	if res.Verdict != Equivalent {
		t.Errorf("parameter-based FSM states: got %v", res.Verdict)
	}
}
