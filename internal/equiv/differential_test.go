package equiv

import (
	"testing"

	"fveval/internal/bitvec"
	"fveval/internal/formal"
	"fveval/internal/logic"
	"fveval/internal/ltl"
	"fveval/internal/sat"
	"fveval/internal/sva"
)

// Differential fuzzing of the incremental bound-ramping checker against
// a one-shot fixed-bound oracle: the oracle re-implements the
// pre-incremental solve path (fresh builder, fresh solver, single query
// at the final bound), so any divergence in verdicts between the two
// is a bug in the ramp, the activation gating, or the shared-solver
// reuse.

// oneShotFindWitness is the fixed-bound oracle: one builder, one
// solver, one query at bound k.
func oneShotFindWitness(f, g ltl.Formula, sigs *Sigs, k int, usesPast, unbounded bool, opt Options) (*Trace, error) {
	b := logic.NewBuilder()
	env := ltl.NewTraceEnv(b, sigs.Widths, sigs.Consts)
	ev := &ltl.ExprEval{Ops: bitvec.Ops{B: b}, Env: env}
	names := unionNames(f, g)

	perLoop := make(map[int]logic.Node)
	total := logic.False
	for _, l := range loopsFor(k, usesPast, unbounded) {
		le := ltl.NewLassoEval(ev, k, l)
		tf, err := le.Truth(f, 0)
		if err != nil {
			return nil, err
		}
		tg, err := le.Truth(g, 0)
		if err != nil {
			return nil, err
		}
		viol := b.And(tf, tg.Not())
		if usesPast && l >= 1 {
			viol = b.And(viol, seamConstraint(b, env, ev, names, l, k))
		}
		perLoop[l] = viol
		total = b.Or(total, viol)
	}

	s := sat.New()
	if opt.Budget > 0 {
		s.SetBudget(opt.Budget)
	}
	cnf := logic.NewCNF(b, s)
	cnf.Assert(total)
	ok, model, err := s.SolveModel()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return decodeTrace(b, env, cnf, model, names, sigs, k, perLoop), nil
}

// oneShotCheck mirrors Check but runs the oracle solve path.
func oneShotCheck(a, b *sva.Assertion, sigs *Sigs, opt Options) (Result, error) {
	if a.ClockEdge != b.ClockEdge {
		return Result{Verdict: Inequivalent}, nil
	}
	fa, err := ltl.LowerAssertion(a)
	if err != nil {
		return Result{}, err
	}
	fb, err := ltl.LowerAssertion(b)
	if err != nil {
		return Result{}, err
	}
	condRel, err := disableRelation(a.DisableIff, b.DisableIff, sigs, opt)
	if err != nil {
		return Result{}, err
	}

	depth := ltl.Depth(fa)
	if d := ltl.Depth(fb); d > depth {
		depth = d
	}
	k := depth + 4
	if k < 8 {
		k = 8
	}
	maxB := opt.MaxBound
	if maxB == 0 {
		maxB = 16
	}
	if k > maxB {
		k = maxB
	}
	if opt.Bound > 0 {
		k = opt.Bound
	}
	if k <= depth {
		k = depth + 1
	}
	usesPast := ltl.UsesPast(fa) || ltl.UsesPast(fb)
	unbounded := ltl.HasUnbounded(fa) || ltl.HasUnbounded(fb)

	abTrace, err := oneShotFindWitness(fa, fb, sigs, k, usesPast, unbounded, opt)
	if err != nil {
		return Result{}, err
	}
	baTrace, err := oneShotFindWitness(fb, fa, sigs, k, usesPast, unbounded, opt)
	if err != nil {
		return Result{}, err
	}
	res := Result{AB: abTrace, BA: baTrace, Bound: k}
	switch {
	case abTrace == nil && baTrace == nil:
		res.Verdict = Equivalent
	case abTrace == nil:
		res.Verdict = AImpliesB
	case baTrace == nil:
		res.Verdict = BImpliesA
	default:
		res.Verdict = Inequivalent
	}
	res.Verdict = combineDisable(res.Verdict, condRel)
	return res, nil
}

// TestDifferentialRampVsOneShot checks verdict agreement between the
// incremental ramp and the one-shot oracle on random machine-benchmark
// assertion pairs, plus mutated variants that skew the verdict mix
// toward every class (self pairs for Equivalent, strengthened bodies
// for implications, negations for Inequivalent).
func TestDifferentialRampVsOneShot(t *testing.T) {
	sigs := DefaultMachineSigs()
	seen := map[Verdict]int{}
	compare := func(a, b *sva.Assertion, tag string) {
		t.Helper()
		got, err1 := Check(a, b, sigs, Options{})
		want, err2 := oneShotCheck(a, b, sigs, Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error disagreement: ramp=%v oracle=%v\nA: %s\nB: %s",
				tag, err1, err2, a, b)
		}
		if err1 != nil {
			return
		}
		if got.Verdict != want.Verdict {
			t.Fatalf("%s: verdict disagreement: ramp=%v oracle=%v\nA: %s\nB: %s",
				tag, got.Verdict, want.Verdict, a, b)
		}
		seen[got.Verdict]++
	}

	for seed := int64(1); seed <= 35; seed++ {
		a := machineAssertion(seed)
		b := machineAssertion(seed + 2000)
		compare(a, b, "random-pair")
		compare(a, a, "self-pair")

		neg := a.Clone()
		neg.Body = &sva.PropNot{P: sva.CloneProp(a.Body)}
		compare(neg, a, "negated")

		if body, ok := a.Body.(*sva.PropSeq); ok {
			if se, ok := body.S.(*sva.SeqExpr); ok {
				stronger := a.Clone()
				stronger.Body = &sva.PropSeq{S: &sva.SeqExpr{E: &sva.Binary{
					Op: "&&", X: sva.CloneExpr(se.E), Y: &sva.Ident{Name: "sig_E"},
				}}}
				compare(stronger, a, "strengthened")
			}
		}
	}

	// The fuzz corpus must actually exercise multiple verdict classes,
	// or agreement is vacuous.
	if len(seen) < 3 {
		t.Fatalf("fuzz corpus too narrow: verdict classes seen = %v", seen)
	}
}

// TestDifferentialPrefilterVsSolver fuzzes the bit-parallel simulation
// prefilter against the pure-SAT path: identical verdicts on random
// machine-benchmark pairs and their mutated variants, with a shared
// pattern bank recycling counterexamples across the corpus exactly as
// an engine run would. The prefilter is refute-only, so any verdict
// divergence is a soundness bug in the simulator, the witness decode,
// or the bank replay.
func TestDifferentialPrefilterVsSolver(t *testing.T) {
	sigs := DefaultMachineSigs()
	bank := formal.NewBank(0)
	seen := map[Verdict]int{}
	refuted := 0
	var st formal.Stats
	compare := func(a, b *sva.Assertion, tag string) {
		t.Helper()
		pre := st.Snapshot().Sim.Refutations
		got, err1 := Check(a, b, sigs, Options{SimPatterns: 128, Bank: bank, Stats: &st})
		want, err2 := Check(a, b, sigs, Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error disagreement: prefilter=%v solver=%v\nA: %s\nB: %s",
				tag, err1, err2, a, b)
		}
		if err1 != nil {
			return
		}
		if got.Verdict != want.Verdict {
			t.Fatalf("%s: verdict disagreement: prefilter=%v solver=%v\nA: %s\nB: %s",
				tag, got.Verdict, want.Verdict, a, b)
		}
		if got.Bound != want.Bound {
			t.Fatalf("%s: bound disagreement: prefilter=%d solver=%d\nA: %s\nB: %s",
				tag, got.Bound, want.Bound, a, b)
		}
		// A prefilter witness must itself satisfy the violation it
		// claims: decode already evaluated it, but re-check shape.
		if got.Verdict != Equivalent {
			for _, tr := range []*Trace{got.AB, got.BA} {
				if tr != nil && (tr.Len <= 0 || tr.Loop < 0 || tr.Loop >= tr.Len) {
					t.Fatalf("%s: malformed witness trace %+v", tag, tr)
				}
			}
		}
		if st.Snapshot().Sim.Refutations > pre {
			refuted++
		}
		seen[got.Verdict]++
	}

	for seed := int64(1); seed <= 30; seed++ {
		a := machineAssertion(seed)
		b := machineAssertion(seed + 3000)
		compare(a, b, "random-pair")
		compare(a, a, "self-pair")

		neg := a.Clone()
		neg.Body = &sva.PropNot{P: sva.CloneProp(a.Body)}
		compare(neg, a, "negated")
	}
	if len(seen) < 3 {
		t.Fatalf("fuzz corpus too narrow: verdict classes seen = %v", seen)
	}
	if refuted == 0 {
		t.Fatal("prefilter never refuted anything; the differential test is vacuous")
	}
	if bank.Len() == 0 {
		t.Fatal("no SAT witnesses were folded into the pattern bank")
	}
}

// TestDifferentialRampEarlyExitStats sanity-checks that the ramp really
// does decide inequivalent pairs below the final bound (the speed claim
// the refactor rests on) while still agreeing with the oracle.
func TestDifferentialRampEarlyExitStats(t *testing.T) {
	sigs := DefaultMachineSigs()
	early, total := 0, 0
	for seed := int64(1); seed <= 25; seed++ {
		a := machineAssertion(seed)
		b := machineAssertion(seed + 4000)
		res, err := Check(a, b, sigs, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Verdict != Inequivalent {
			continue
		}
		total++
		// The one-shot checker never solved below bound 8; a shorter
		// witness means the probe bound decided the direction.
		if res.AB != nil && res.AB.Len < 8 {
			early++
		}
	}
	if total == 0 {
		t.Skip("no inequivalent pairs in corpus")
	}
	if early == 0 {
		t.Fatalf("ramp never exited early on %d inequivalent pairs", total)
	}
}
