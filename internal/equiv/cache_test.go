package equiv

import (
	"sync"
	"testing"

	"fveval/internal/sva"
)

func mustParseCT(t *testing.T, src string) *sva.Assertion {
	t.Helper()
	a, err := sva.ParseAssertion(src)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCacheHitsOnRepeatAndLabelVariants(t *testing.T) {
	a := mustParseCT(t, "assert property (@(posedge clk) a |=> b);")
	b := mustParseCT(t, "assert property (@(posedge clk) a |-> ##1 b);")
	labeled := mustParseCT(t, "chk_1: assert property (@(posedge clk) a |=> b);")
	sigs := &Sigs{Widths: map[string]int{"clk": 1, "a": 1, "b": 1}}

	c := NewCache()
	r1, err := c.Check(a, b, sigs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Verdict != Equivalent {
		t.Fatalf("verdict: %v", r1.Verdict)
	}
	// identical query: hit
	r2, err := c.Check(a, b, sigs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// label-only variant: labels carry no semantics, must hit too
	r3, err := c.Check(labeled, b, sigs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Verdict != r1.Verdict || r3.Verdict != r1.Verdict {
		t.Fatalf("cached verdict drifted: %v / %v / %v", r1.Verdict, r2.Verdict, r3.Verdict)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if c.Len() != 1 {
		t.Fatalf("len: %d", c.Len())
	}
}

func TestCacheKeySeparatesDifferentQueries(t *testing.T) {
	a := mustParseCT(t, "assert property (@(posedge clk) a |=> b);")
	b := mustParseCT(t, "assert property (@(posedge clk) a |-> ##1 b);")
	c2 := mustParseCT(t, "assert property (@(posedge clk) a |-> ##2 b);")
	sigs := &Sigs{Widths: map[string]int{"clk": 1, "a": 1, "b": 1}}
	wide := &Sigs{Widths: map[string]int{"clk": 1, "a": 4, "b": 4}}

	c := NewCache()
	if _, err := c.Check(a, b, sigs, Options{}); err != nil {
		t.Fatal(err)
	}
	// different pair, different widths, different budget: all distinct entries
	if _, err := c.Check(a, c2, sigs, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check(a, b, wide, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check(a, b, sigs, Options{Budget: 5000}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("expected 4 distinct queries, got %+v", st)
	}
}

func TestCacheMatchesUncachedVerdicts(t *testing.T) {
	pairs := [][2]string{
		{"assert property (@(posedge clk) a |=> b);", "assert property (@(posedge clk) a |-> ##1 b);"},
		{"assert property (@(posedge clk) a |-> b);", "assert property (@(posedge clk) a |-> ##1 b);"},
		{"assert property (@(posedge clk) a && b);", "assert property (@(posedge clk) a);"},
		{"assert property (@(posedge clk) !a || b);", "assert property (@(posedge clk) a |-> b);"},
	}
	sigs := &Sigs{Widths: map[string]int{"clk": 1, "a": 1, "b": 1}}
	c := NewCache()
	for _, p := range pairs {
		a, b := mustParseCT(t, p[0]), mustParseCT(t, p[1])
		want, err := Check(a, b, sigs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ { // second round served from cache
			got, err := c.Check(a, b, sigs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Verdict != want.Verdict {
				t.Fatalf("%q vs %q: cached %v, uncached %v", p[0], p[1], got.Verdict, want.Verdict)
			}
		}
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	a := mustParseCT(t, "assert property (@(posedge clk) a |=> b);")
	b := mustParseCT(t, "assert property (@(posedge clk) a |-> ##1 b);")
	sigs := &Sigs{Widths: map[string]int{"clk": 1, "a": 1, "b": 1}}
	var c *Cache
	res, err := c.Check(a, b, sigs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("nil cache must not count: %+v", st)
	}
	if c.Len() != 0 {
		t.Fatalf("nil cache len: %d", c.Len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	a := mustParseCT(t, "assert property (@(posedge clk) a |=> b);")
	b := mustParseCT(t, "assert property (@(posedge clk) a |-> ##1 b);")
	sigs := &Sigs{Widths: map[string]int{"clk": 1, "a": 1, "b": 1}}
	c := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := c.Check(a, b, sigs, Options{})
				if err != nil || res.Verdict != Equivalent {
					t.Errorf("concurrent check: %v %v", res.Verdict, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 160 {
		t.Fatalf("lost queries: %+v", st)
	}
	if c.Len() != 1 {
		t.Fatalf("len: %d", c.Len())
	}
}
