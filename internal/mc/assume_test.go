package mc

import (
	"testing"

	"fveval/internal/rtl"
	"fveval/internal/sva"
)

// TestAssumptionsConstrainProofs: a saturating counter that only
// increments. Without an input assumption the "count stays below 3"
// property is falsified; with `assume property` limiting the enable
// duty cycle it becomes unprovable-by-bmc but the never-decrements
// property stays proven; and an assumption forcing enable low makes
// even the strict bound provable.
func TestAssumptionsConstrainProofs(t *testing.T) {
	base := `
module sat_ctr(clk, reset_, en, cnt);
input clk;
input reset_;
input en;
output reg [3:0] cnt;
always @(posedge clk) begin
  if (!reset_) cnt <= 'd0;
  else if (en && (cnt != 4'd15)) cnt <= cnt + 'd1;
end
`
	mk := func(extra string) *rtl.System {
		f, err := rtl.Parse(base + extra + "\nendmodule")
		if err != nil {
			t.Fatal(err)
		}
		sys, err := rtl.Elaborate(f, "sat_ctr", nil)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	prop := `assert property (@(posedge clk) disable iff (!reset_) cnt <= 4'd2);`
	a, err := sva.ParseAssertion(prop)
	if err != nil {
		t.Fatal(err)
	}

	// no assumption: enable free, counter climbs past 2
	res, err := CheckAssertion(mk(""), a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Falsified {
		t.Fatalf("unconstrained: expected falsified, got %v", res.Status)
	}

	// assumption pins enable low: counter frozen at 0, property proven
	sys := mk(`no_enable: assume property (@(posedge clk) !en);`)
	if len(sys.Assumes) != 1 {
		t.Fatalf("assume not collected: %d", len(sys.Assumes))
	}
	res, err = CheckAssertion(sys, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Proven {
		t.Fatalf("with assume !en: expected proven, got %v (depth %d)", res.Status, res.Depth)
	}

	// cover statements parse and are retained without affecting proofs
	sys = mk(`assume property (@(posedge clk) !en);
cover property (@(posedge clk) cnt == 4'd0);`)
	if len(sys.Covers) != 1 {
		t.Fatalf("cover not collected")
	}
	res, err = CheckAssertion(sys, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Proven {
		t.Fatalf("with cover present: expected proven, got %v", res.Status)
	}
}

// TestAssumePropertyKinds covers the assertion-kind surface in the
// parser and printer.
func TestAssumePropertyKinds(t *testing.T) {
	for _, kind := range []string{"assert", "assume", "cover"} {
		src := kind + ` property (@(posedge clk) a |-> b);`
		a, err := sva.ParseAssertion(src)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if a.KindOrAssert() != kind {
			t.Fatalf("kind: %q want %q", a.KindOrAssert(), kind)
		}
		if got := a.String(); got[:len(kind)] != kind {
			t.Fatalf("printer lost kind: %q", got)
		}
		c := a.Clone()
		if c.KindOrAssert() != kind {
			t.Fatalf("clone lost kind")
		}
	}
}

// TestCoverReachability: cover properties find witnesses for reachable
// conditions and report bounded-unreachable otherwise.
func TestCoverReachability(t *testing.T) {
	sys := fsmSystem(t)
	cov, err := sva.ParseAssertion(`cover property (@(posedge clk) state == 2'b11);`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckCover(sys, cov, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Proven {
		t.Fatalf("S3 is reachable; got %v", res.Status)
	}
	if res.Cex == nil || len(res.Cex.Frames) == 0 {
		t.Fatalf("cover witness missing")
	}
	// fsm_out mirrors a 2-bit state; value 4 does not exist
	unreach, err := sva.ParseAssertion(`cover property (@(posedge clk) state == 2'b10 && next_state == 2'b10);`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = CheckCover(sys, unreach, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Falsified {
		t.Fatalf("S2 self-loop does not exist; got %v", res.Status)
	}
	if !res.Bounded {
		t.Fatalf("unreachable cover verdicts are bounded")
	}
}
