// Package mc model-checks SVA assertions against elaborated RTL — the
// role of the commercial tool's proof engines in the paper's
// Design2SVA evaluation. Safety properties are falsified with bounded
// model checking and proven with k-induction; liveness properties are
// falsified with lasso-shaped bounded search (absence of a lasso
// counterexample within the bound is reported as a bounded proof).
//
// Safety checking is incremental (DESIGN.md §7): one persistent
// solver serves the BMC base cases (frame-by-frame unroll, per-depth
// bad-state activation literals, early exit on the first
// counterexample) and a second persistent solver is shared across the
// k-induction steps, so learnt clauses and the Tseitin encoding are
// paid for once per assertion rather than once per depth.
//
// Reset handling follows the formal-testbench convention of the
// benchmark: registers start from their post-reset values, reset
// inputs are free afterwards, and "disable iff" aborts discharge an
// attempt whenever the abort fires inside the attempt's window. With a
// free abort signal this approximation is exact for both falsification
// and proof (see DESIGN.md §4).
package mc

import (
	"fmt"
	"strconv"
	"time"

	"fveval/internal/bitvec"
	"fveval/internal/formal"
	"fveval/internal/logic"
	"fveval/internal/ltl"
	"fveval/internal/obs"
	"fveval/internal/rtl"
	"fveval/internal/sat"
	"fveval/internal/sva"
)

// Status classifies a check result.
type Status int

// Status values.
const (
	Unknown Status = iota
	Proven
	Falsified
)

func (s Status) String() string {
	switch s {
	case Proven:
		return "proven"
	case Falsified:
		return "falsified"
	}
	return "unknown"
}

// Cex is a counterexample: per-frame values of inputs and registers.
type Cex struct {
	Frames []map[string]uint64
	Loop   int // -1 for finite (safety) traces
}

// Result of checking one assertion.
type Result struct {
	Status Status
	// Bounded marks liveness verdicts established only up to the
	// search bound (no unbounded liveness proof engine).
	Bounded bool
	// Depth is the BMC depth or induction length used.
	Depth int
	Cex   *Cex
}

// Options tunes the checker.
type Options struct {
	MaxInduction int   // max k for k-induction (default 10)
	BMCDepth     int   // plain BMC falsification depth (default 16)
	LassoBound   int   // lasso length for liveness (default 10)
	Budget       int64 // SAT conflict budget per query (0 = unlimited)
	// SimPatterns enables the bit-parallel simulation prefilter for
	// safety checks (DESIGN.md §10): this many random patterns (in
	// 64-lane rounds, plus recycled Bank patterns) are simulated over
	// the concrete unrolled frames before each BMC or induction solve,
	// and a lane satisfying the violation discharges the depth — as a
	// falsification witness for BMC, as a step refutation for
	// induction — without touching the solver. 0 disables. Refute-only,
	// so verdicts are identical either way.
	SimPatterns int
	// Bank, when non-nil, supplies recycled counterexample patterns to
	// the prefilter and receives every SAT model found here.
	Bank *formal.Bank
	// Stats, when non-nil, receives solver-reuse counters from the
	// incremental sessions. Never affects verdicts.
	Stats *formal.Stats
	// Span, when non-nil, is the traced parent span of this check:
	// every BMC depth, induction step, and prefilter decision records a
	// child span under it. Like Stats it never affects verdicts; a nil
	// Span makes every span call a no-op.
	Span *obs.Span
}

func (o Options) withDefaults() Options {
	if o.MaxInduction == 0 {
		o.MaxInduction = 10
	}
	if o.BMCDepth == 0 {
		o.BMCDepth = 16
	}
	if o.LassoBound == 0 {
		o.LassoBound = 10
	}
	return o
}

// CheckAssertion proves or falsifies an assertion against the system.
// Assumptions declared in the system (assume property) constrain the
// explored traces.
func CheckAssertion(sys *rtl.System, a *sva.Assertion, opt Options) (Result, error) {
	opt = opt.withDefaults()
	f, err := ltl.LowerAssertion(a)
	if err != nil {
		return Result{}, err
	}
	var abort sva.Expr
	if a.DisableIff != nil {
		abort = a.DisableIff
	}
	assumes, err := lowerAssumes(sys)
	if err != nil {
		return Result{}, err
	}
	if ltl.HasUnbounded(f) {
		return checkLiveness(sys, f, abort, assumes, opt)
	}
	return checkSafety(sys, f, abort, assumes, nil, opt)
}

// CheckCover decides reachability for a cover property: whether some
// trace from reset (satisfying the system's assumptions) reaches a
// position where the property holds. Covered results carry the witness
// trace.
func CheckCover(sys *rtl.System, a *sva.Assertion, opt Options) (Result, error) {
	opt = opt.withDefaults()
	f, err := ltl.LowerAssertion(a)
	if err != nil {
		return Result{}, err
	}
	if ltl.HasUnbounded(f) {
		return Result{}, &ltl.LowerError{Reason: "unbounded cover properties are not supported"}
	}
	assumes, err := lowerAssumes(sys)
	if err != nil {
		return Result{}, err
	}
	d := ltl.Depth(f)
	n := opt.BMCDepth + d + 1
	started := time.Now()
	b := logic.NewBuilder()
	fe := newFrameEnv(b, sys)
	fe.initFrame0(false)
	if err := fe.unroll(n); err != nil {
		return Result{}, err
	}
	le := ltl.NewLassoEval(fe.ev, n, n-1)
	hit := logic.False
	for p := 0; p < opt.BMCDepth; p++ {
		t, err := le.Truth(f, p)
		if err != nil {
			return Result{}, err
		}
		hit = b.Or(hit, t)
	}
	asm, err := assumeConstraint(le, assumes, n)
	if err != nil {
		return Result{}, err
	}
	s := sat.New()
	if opt.Budget > 0 {
		s.SetBudget(opt.Budget)
	}
	cnf := logic.NewCNF(b, s)
	cnf.Assert(b.And(hit, asm))
	ok, model, err := s.SolveModel()
	opt.Stats.Query(1, s.Stats().Conflicts, 0, false)
	opt.Stats.SolveWall(time.Since(started).Nanoseconds())
	if err != nil {
		return Result{}, err
	}
	if !ok {
		// not reachable within the bound
		return Result{Status: Falsified, Bounded: true, Depth: opt.BMCDepth}, nil
	}
	return Result{Status: Proven, Depth: opt.BMCDepth,
		Cex: decodeCex(sys, fe, cnf, model, n, -1)}, nil
}

// lowerAssumes lowers the system's assumptions; only bounded
// assumption properties are supported (standard for stimulus
// constraints).
func lowerAssumes(sys *rtl.System) ([]ltl.Formula, error) {
	var out []ltl.Formula
	for _, a := range sys.Assumes {
		f, err := ltl.LowerAssertion(a)
		if err != nil {
			return nil, err
		}
		if ltl.HasUnbounded(f) {
			return nil, &ltl.LowerError{Reason: "unbounded assume properties are not supported"}
		}
		out = append(out, f)
	}
	return out, nil
}

// assumeConstraint conjoins every assumption at every position whose
// bounded window fits inside the unrolling.
func assumeConstraint(le *ltl.LassoEval, assumes []ltl.Formula, frames int) (logic.Node, error) {
	acc := logic.True
	for _, f := range assumes {
		d := ltl.Depth(f)
		for p := 0; p+d < frames; p++ {
			n, err := le.Truth(f, p)
			if err != nil {
				return logic.False, err
			}
			acc = le.Ev.Ops.B.And(acc, n)
		}
	}
	return acc, nil
}

// frameEnv implements ltl.Env over an unrolled transition system.
type frameEnv struct {
	b   *logic.Builder
	sys *rtl.System
	ev  *ltl.ExprEval

	inputs map[sigPos]bitvec.BV
	states map[sigPos]bitvec.BV
	nets   map[sigPos]bitvec.BV
	busy   map[sigPos]bool
}

type sigPos struct {
	name string
	pos  int
}

func newFrameEnv(b *logic.Builder, sys *rtl.System) *frameEnv {
	fe := &frameEnv{
		b:      b,
		sys:    sys,
		inputs: map[sigPos]bitvec.BV{},
		states: map[sigPos]bitvec.BV{},
		nets:   map[sigPos]bitvec.BV{},
		busy:   map[sigPos]bool{},
	}
	fe.ev = &ltl.ExprEval{Ops: bitvec.Ops{B: b}, Env: fe}
	return fe
}

// initFrame0 seats frame-0 register values: concrete reset values, or
// fresh variables for the inductive step.
func (fe *frameEnv) initFrame0(free bool) {
	for _, r := range fe.sys.Regs {
		key := sigPos{r.Name, 0}
		if free {
			fe.states[key] = bitvec.Inputs(fe.b, r.Name+"@0", r.Width)
		} else {
			fe.states[key] = bitvec.Const(r.Init, r.Width)
		}
	}
}

// unroll extends register states through frame n (exclusive).
func (fe *frameEnv) unroll(n int) error {
	for p := 1; p < n; p++ {
		if _, ok := fe.states[sigPos{firstRegName(fe.sys), p}]; ok && len(fe.sys.Regs) > 0 {
			continue
		}
		for _, r := range fe.sys.Regs {
			next, err := fe.ev.Eval(r.Next, p-1)
			if err != nil {
				return err
			}
			fe.states[sigPos{r.Name, p}] = next.Extend(r.Width)
		}
	}
	return nil
}

func firstRegName(sys *rtl.System) string {
	if len(sys.Regs) > 0 {
		return sys.Regs[0].Name
	}
	return ""
}

// Signal implements ltl.Env.
func (fe *frameEnv) Signal(name string, pos int) (bitvec.BV, error) {
	key := sigPos{name, pos}
	if v, ok := fe.states[key]; ok {
		return v, nil
	}
	if fe.sys.IsInput(name) {
		if v, ok := fe.inputs[key]; ok {
			return v, nil
		}
		w := fe.sys.Widths[name]
		v := bitvec.Inputs(fe.b, name+"@"+strconv.Itoa(pos), w)
		fe.inputs[key] = v
		return v, nil
	}
	if _, isReg := fe.sys.RegByName(name); isReg {
		// register value requested beyond the unrolled range
		return bitvec.BV{}, &ltl.ElabError{Reason: fmt.Sprintf("register %s not unrolled at %d", name, pos)}
	}
	if net, ok := fe.sys.NetByName(name); ok {
		if v, ok := fe.nets[key]; ok {
			return v, nil
		}
		if fe.busy[key] {
			return bitvec.BV{}, &ltl.ElabError{Reason: "combinational loop through \"" + name + "\""}
		}
		fe.busy[key] = true
		v, err := fe.ev.Eval(net.Expr, pos)
		if err != nil {
			return bitvec.BV{}, err
		}
		delete(fe.busy, key)
		v = v.Extend(net.Width)
		fe.nets[key] = v
		return v, nil
	}
	return bitvec.BV{}, &ltl.ElabError{Reason: fmt.Sprintf("undeclared identifier %q", name)}
}

// SignalWidth implements ltl.Env.
func (fe *frameEnv) SignalWidth(name string) (int, bool) {
	w, ok := fe.sys.Widths[name]
	return w, ok
}

// Constant implements ltl.Env.
func (fe *frameEnv) Constant(name string) (uint64, int, bool) {
	c, ok := fe.sys.Consts[name]
	return c.Value, c.Width, ok
}

// violation builds "attempt at position p fails and is not aborted":
// the property is false at p and the abort expression stays low across
// the attempt window.
func violation(fe *frameEnv, le *ltl.LassoEval, f ltl.Formula, abort sva.Expr, p, window int, lasso bool) (logic.Node, error) {
	truth, err := le.Truth(f, p)
	if err != nil {
		return logic.False, err
	}
	viol := truth.Not()
	if abort != nil {
		if lasso {
			for _, j := range lassoReach(le, p) {
				ab, err := fe.ev.Bool(abort, j)
				if err != nil {
					return logic.False, err
				}
				viol = fe.b.And(viol, ab.Not())
			}
		} else {
			for j := p; j <= p+window && j < le.K; j++ {
				ab, err := fe.ev.Bool(abort, j)
				if err != nil {
					return logic.False, err
				}
				viol = fe.b.And(viol, ab.Not())
			}
		}
	}
	return viol, nil
}

func lassoReach(le *ltl.LassoEval, p int) []int {
	var out []int
	seen := map[int]bool{}
	for j := p; j < le.K; j++ {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	for j := le.L; j < le.K; j++ {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// safetySession is a persistent incremental solving context for one
// side of the safety check (BMC base case or induction step): one
// builder, frame environment, and SAT solver serve every depth, with
// the unroll extended frame by frame, assumption instances asserted as
// their windows come into range, and each depth's bad-state constraint
// gated behind an activation literal (DESIGN.md §7). Learnt clauses,
// variable activity, and the Tseitin encoding all carry across depths.
type safetySession struct {
	sys     *rtl.System
	f       ltl.Formula
	abort   sva.Expr
	assumes []ltl.Formula
	lemmas  []assumedLemma
	d       int
	opt     Options

	b      *logic.Builder
	fe     *frameEnv
	family *ltl.LassoFamily
	s      *sat.Solver
	cnf    *logic.CNF

	frames   int   // frames currently unrolled
	asmNext  []int // per assumption: next position to assert
	lemNext  []int // per assumed lemma: next position to assert
	goodNext int   // induction: good-attempt constraints asserted below this

	// Path constraints (assumption instances, good-attempt clauses)
	// are collected here and only flushed into the CNF right before a
	// real solver call, so a run the prefilter fully discharges never
	// pays for Tseitin encoding at all. conj is the running
	// conjunction of every constraint for the simulation side (one new
	// gate per constraint, not one chain per query); pending holds the
	// suffix the solver has not seen yet.
	conj    logic.Node
	pending []logic.Node

	// Bit-parallel prefilter state (nil / zero when disabled).
	sim      *logic.Sim
	banked   []formal.Pattern
	rng      uint64
	scratch  []uint64 // per-signal lane-word buffer, reused across rounds
	freeInit bool

	solves, conflicts, learntKept, hashMark int64
}

func newSafetySession(sys *rtl.System, f ltl.Formula, abort sva.Expr, assumes []ltl.Formula, lemmas []assumedLemma, d int, freeInit bool, opt Options) *safetySession {
	b := logic.NewBuilder()
	fe := newFrameEnv(b, sys)
	fe.initFrame0(freeInit)
	s := sat.New()
	if opt.Budget > 0 {
		// Per-call budget: every depth's Solve gets the full allowance,
		// mirroring the former one-solver-per-query accounting.
		s.SetBudget(opt.Budget)
	}
	ss := &safetySession{
		sys: sys, f: f, abort: abort, assumes: assumes, lemmas: lemmas, d: d, opt: opt,
		b: b, fe: fe, family: ltl.NewLassoFamily(fe.ev),
		s: s, cnf: logic.NewCNF(b, s),
		asmNext:  make([]int, len(assumes)),
		lemNext:  make([]int, len(lemmas)),
		conj:     logic.True,
		freeInit: freeInit,
	}
	if opt.SimPatterns > 0 {
		ss.sim = logic.NewSim(b)
		ss.banked = opt.Bank.Patterns(64)
		// Fixed seed: deterministic pattern stream per session.
		ss.rng = 0x5eed5eed5eed5eed
	}
	return ss
}

// addConstraint records a permanent path constraint: visible to the
// prefilter immediately (folded into the running conjunction),
// asserted into the CNF lazily.
func (ss *safetySession) addConstraint(n logic.Node) {
	ss.conj = ss.b.And(ss.conj, n)
	ss.pending = append(ss.pending, n)
}

// simRefute simulates banked + random patterns over the session's
// path constraints conjoined with the violation v. A satisfying lane
// is a complete concrete witness for the depth's SAT query — the
// caller reads it off the still-warm Sim. Missing is not a verdict.
func (ss *safetySession) simRefute(v logic.Node) (int, bool, bool) {
	if ss.sim == nil {
		return 0, false, false
	}
	target := ss.b.And(v, ss.conj)
	if target == logic.False {
		return 0, false, false
	}
	// Refresh the bank snapshot per query: models found earlier in this
	// very session (or by its sibling) are the best predictors of the
	// next depth's refutation.
	ss.banked = ss.opt.Bank.Patterns(64)
	// Free-initial-state sessions get one structured round first: lane
	// j seeds every register with the small value j, sweeping all 64
	// low state encodings at once — for the benchmark's FSM and
	// shallow-pipeline designs this covers the entire state space
	// deterministically, where uniform random 16-bit states almost
	// never land on a valid encoding.
	if ss.freeInit {
		ss.setSimInputs(-1, 0)
		ss.sim.Run()
		ss.opt.Stats.SimPatterns(64)
		if lane, ok := ss.sim.FirstLane(target); ok {
			return lane, true, false
		}
	}
	remaining := ss.opt.SimPatterns
	for round := 0; remaining > 0 || (round == 0 && len(ss.banked) > 0); round++ {
		bankLanes := 0
		if round == 0 {
			bankLanes = len(ss.banked)
		}
		bankMask := ^uint64(0)
		if bankLanes < 64 {
			bankMask = 1<<uint(bankLanes) - 1
		}
		ss.setSimInputs(bankLanes, bankMask)
		ss.sim.Run()
		ss.opt.Stats.SimPatterns(64)
		remaining -= 64 - bankLanes
		if lane, ok := ss.sim.FirstLane(target); ok {
			return lane, true, lane < bankLanes
		}
	}
	return 0, false, false
}

// laneIndexMasks[i] holds bit i of the lane number in every lane:
// loading them into a register's low bits makes lane j's register
// value equal j.
var laneIndexMasks = [6]uint64{
	0xaaaaaaaaaaaaaaaa, 0xcccccccccccccccc, 0xf0f0f0f0f0f0f0f0,
	0xff00ff00ff00ff00, 0xffff0000ffff0000, 0xffffffff00000000,
}

// setSimInputs loads one round of patterns: free inputs at every
// unrolled frame, plus the free initial registers of an induction
// session. Iteration follows the system's declaration order, keeping
// the random stream deterministic. bankLanes < 0 selects the
// structured state round: random inputs, lane-index register values.
func (ss *safetySession) setSimInputs(bankLanes int, bankMask uint64) {
	structured := bankLanes < 0
	if structured {
		bankLanes = 0
	}
	load := func(bv bitvec.BV, fill func(words []uint64)) {
		if cap(ss.scratch) < len(bv.Bits) {
			ss.scratch = make([]uint64, len(bv.Bits))
		}
		words := ss.scratch[:len(bv.Bits)]
		fill(words)
		for i, bit := range bv.Bits {
			if bit.IsConst() {
				continue
			}
			ss.sim.SetInput(bit, words[i]|formal.SplitMix64(&ss.rng)&^bankMask)
		}
	}
	zero := func(words []uint64) {
		for i := range words {
			words[i] = 0
		}
	}
	for _, in := range ss.sys.Inputs {
		for p := 0; p < ss.frames; p++ {
			bv, ok := ss.fe.inputs[sigPos{in.Name, p}]
			if !ok {
				continue
			}
			if bankLanes > 0 {
				load(bv, func(w []uint64) { formal.LaneWords(ss.banked, bankLanes, in.Name, p, w) })
			} else {
				load(bv, zero)
			}
		}
	}
	if ss.freeInit {
		// Free initial registers seed from the banked traces' first
		// frame: recycled valid-looking states refute induction steps
		// where uniform random state bits rarely do (empirically they
		// beat deep-frame states, which tend to sit mid-violation).
		for _, r := range ss.sys.Regs {
			bv, ok := ss.fe.states[sigPos{r.Name, 0}]
			if !ok {
				continue
			}
			switch {
			case structured:
				for i, bit := range bv.Bits {
					if bit.IsConst() {
						continue
					}
					w := uint64(0)
					if i < len(laneIndexMasks) {
						w = laneIndexMasks[i]
					}
					ss.sim.SetInput(bit, w)
				}
			case bankLanes > 0:
				load(bv, func(w []uint64) { formal.LaneWords(ss.banked, bankLanes, r.Name, 0, w) })
			default:
				load(bv, zero)
			}
		}
	}
}

// grow extends the unroll to n frames and asserts every assumption
// instance whose bounded window newly fits, then returns the lasso
// evaluator for the grown bound. Bounded formulas evaluated strictly
// inside the unroll never reach the saturating last frame, so nodes
// built at smaller bounds are structurally identical at larger ones
// and the CNF layer emits nothing twice.
func (ss *safetySession) grow(n int) (*ltl.LassoEval, error) {
	if n > ss.frames {
		if err := ss.fe.unroll(n); err != nil {
			return nil, err
		}
		ss.frames = n
	}
	le := ss.family.At(ss.frames, ss.frames-1)
	for i, af := range ss.assumes {
		ad := ltl.Depth(af)
		for p := ss.asmNext[i]; p+ad < ss.frames; p++ {
			node, err := le.Truth(af, p)
			if err != nil {
				return nil, err
			}
			ss.addConstraint(node)
			ss.asmNext[i] = p + 1
		}
	}
	// Assumed lemmas constrain every position the same way stimulus
	// assumptions do, except abort-aware: the constraint at p is the
	// negation of the lemma's violation there ("the lemma holds at p,
	// or its attempt is aborted"). In the induction session this is
	// exactly the hypothesis strengthening of prove-then-assume: free
	// initial states outside a proved invariant are discarded, which is
	// sound because every reachable state satisfies it.
	for i, lm := range ss.lemmas {
		for p := ss.lemNext[i]; p+lm.d < ss.frames; p++ {
			v, err := violation(ss.fe, le, lm.f, lm.abort, p, lm.d, false)
			if err != nil {
				return nil, err
			}
			ss.addConstraint(v.Not())
			ss.lemNext[i] = p + 1
		}
	}
	return le, nil
}

// solveGated solves under a fresh activation literal guarding node v;
// on UNSAT the activation is retired so later depths drop the
// constraint but keep everything learnt. Pending path constraints are
// flushed into the CNF first (in the order they accumulated, so the
// encoding matches the eager-assertion layout exactly).
func (ss *safetySession) solveGated(name string, v logic.Node) (bool, []bool, error) {
	for _, n := range ss.pending {
		ss.cnf.Assert(n)
	}
	ss.pending = ss.pending[:0]
	act := ss.b.Input(name)
	ss.cnf.AssertIf(act, v)
	pre := ss.s.Stats()
	if pre.Solves > 0 {
		ss.learntKept += int64(pre.Learnt)
	}
	ok, model, err := ss.s.SolveModel(ss.cnf.Lit(act))
	post := ss.s.Stats()
	ss.solves++
	ss.conflicts += post.Conflicts - pre.Conflicts
	if pre.Solves == 0 {
		ss.hashMark = ss.b.HashHits()
	}
	if err != nil || !ok {
		ss.cnf.Retire(act)
	}
	return ok, model, err
}

// checkDepth asks whether the attempt at position k-1 can be violated
// from the session's initial frame (the incremental BMC base case:
// attempts below k-1 were refuted at earlier depths under a subset of
// the current stimulus constraints, so they stay refuted and only the
// frontier needs solving).
func (ss *safetySession) checkDepth(k int) (*Cex, error) {
	le, err := ss.grow(k + ss.d + 1)
	if err != nil {
		return nil, err
	}
	v, err := violation(ss.fe, le, ss.f, ss.abort, k-1, ss.d, false)
	if err != nil {
		return nil, err
	}
	// Refute before solving: a simulated lane violating the frontier
	// attempt under all path constraints is already the
	// counterexample — the solver (and, if nothing was solved yet, the
	// whole Tseitin encoding) is skipped.
	ssp := ss.opt.Span.Child("sim").SetPhase(obs.PhaseSim).SetInt("bound", int64(k))
	lane, hit, fromBank := ss.simRefute(v)
	ssp.SetBool("refuted", hit).SetBool("bank_hit", fromBank)
	ssp.End()
	if hit {
		ss.opt.Stats.SimRefuted(fromBank, 1)
		return decodeCexLane(ss.sys, ss.fe, ss.sim, lane, ss.frames, -1), nil
	}
	rsp := ss.opt.Span.Child("bmc").SetPhase(obs.PhaseSAT).SetInt("bound", int64(k))
	ok, model, err := ss.solveGated(fmt.Sprintf("bmc_act@%d", k), v)
	if err != nil {
		rsp.SetStr("verdict", "error").End()
		return nil, err
	}
	if !ok {
		rsp.SetStr("verdict", "unsat").End()
		return nil, nil
	}
	rsp.SetStr("verdict", "sat").End()
	cex := decodeCex(ss.sys, ss.fe, ss.cnf, model, ss.frames, -1)
	bankCex(ss.opt.Bank, cex)
	return cex, nil
}

// induct checks whether k consecutive good attempts from an arbitrary
// state force the k+1st to be good. true = inductive. Good-attempt
// path constraints accumulate permanently as k grows; only the bad
// k-th attempt is gated per depth.
func (ss *safetySession) induct(k int) (bool, error) {
	le, err := ss.grow(k + ss.d + 2)
	if err != nil {
		return false, err
	}
	for p := ss.goodNext; p < k; p++ {
		v, err := violation(ss.fe, le, ss.f, ss.abort, p, ss.d, false)
		if err != nil {
			return false, err
		}
		ss.addConstraint(v.Not())
	}
	ss.goodNext = k
	v, err := violation(ss.fe, le, ss.f, ss.abort, k, ss.d, false)
	if err != nil {
		return false, err
	}
	// A simulated lane with k good attempts followed by a bad one is a
	// concrete refutation of the induction step: report "not
	// inductive" without opening the solver.
	ssp := ss.opt.Span.Child("sim").SetPhase(obs.PhaseSim).SetInt("bound", int64(k))
	_, hit, fromBank := ss.simRefute(v)
	ssp.SetBool("refuted", hit).SetBool("bank_hit", fromBank)
	ssp.End()
	if hit {
		ss.opt.Stats.SimRefuted(fromBank, 1)
		return false, nil
	}
	rsp := ss.opt.Span.Child("induct").SetPhase(obs.PhaseSAT).SetInt("bound", int64(k))
	ok, model, err := ss.solveGated(fmt.Sprintf("ind_act@%d", k), v)
	if err != nil {
		rsp.SetStr("verdict", "error").End()
		return false, err
	}
	if ok {
		rsp.SetStr("verdict", "sat")
	} else {
		rsp.SetStr("verdict", "unsat")
	}
	rsp.End()
	if ok && ss.opt.Bank != nil {
		// Fold the refuting model (free initial state + stimulus) into
		// the bank: it seeds the prefilter for later depths and runs.
		bankCex(ss.opt.Bank, decodeCex(ss.sys, ss.fe, ss.cnf, model, ss.frames, -1))
	}
	return !ok, nil
}

// report streams the session's reuse counters into the stats sink.
func (ss *safetySession) report(st *formal.Stats, early bool) {
	st.Query(ss.solves, ss.conflicts, ss.learntKept, early)
	st.GatesShared(ss.b.HashHits() - ss.hashMark)
	st.NodesEncoded(int64(ss.cnf.Encoded()))
}

func checkSafety(sys *rtl.System, f ltl.Formula, abort sva.Expr, assumes []ltl.Formula, lemmas []assumedLemma, opt Options) (Result, error) {
	d := ltl.Depth(f)
	started := time.Now()
	base := newSafetySession(sys, f, abort, assumes, lemmas, d, false, opt)
	step := newSafetySession(sys, f, abort, assumes, lemmas, d, true, opt)
	finish := func(res Result, early bool) Result {
		base.report(opt.Stats, early)
		step.report(opt.Stats, early)
		opt.Stats.SolveWall(time.Since(started).Nanoseconds())
		return res
	}
	// Error exits (budget exhaustion, elaboration failures) must still
	// account the sessions' solver work.
	fail := func(err error) (Result, error) {
		finish(Result{}, false)
		return Result{}, err
	}
	// Interleave BMC base cases with induction steps on the two
	// persistent solvers.
	for k := 1; k <= opt.MaxInduction; k++ {
		// Base: frames 0..k+d from reset; frontier attempt k-1.
		cex, err := base.checkDepth(k)
		if err != nil {
			return fail(err)
		}
		if cex != nil {
			return finish(Result{Status: Falsified, Depth: k, Cex: cex}, true), nil
		}
		// Step: free initial state; no violation in 0..k-1, violation
		// at k.
		ind, err := step.induct(k)
		if err != nil {
			return fail(err)
		}
		if ind {
			return finish(Result{Status: Proven, Depth: k}, true), nil
		}
	}
	// Deep falsification ramp before giving up, continuing the base
	// session depth by depth with early exit on the first
	// counterexample. Grow to the full deep window first so every
	// frontier solves under the same assumption instances the one-shot
	// deep query (frames BMCDepth+d+1) would conjoin — state-dependent
	// assume properties beyond a frontier's own window must keep
	// rejecting traces exactly as before.
	if opt.MaxInduction < opt.BMCDepth {
		if _, err := base.grow(opt.BMCDepth + d + 1); err != nil {
			return fail(err)
		}
	}
	for k := opt.MaxInduction + 1; k <= opt.BMCDepth; k++ {
		cex, err := base.checkDepth(k)
		if err != nil {
			return fail(err)
		}
		if cex != nil {
			return finish(Result{Status: Falsified, Depth: opt.BMCDepth, Cex: cex}, k < opt.BMCDepth), nil
		}
	}
	return finish(Result{Status: Unknown, Depth: opt.BMCDepth}, false), nil
}

func checkLiveness(sys *rtl.System, f ltl.Formula, abort sva.Expr, assumes []ltl.Formula, opt Options) (Result, error) {
	k := opt.LassoBound
	if d := ltl.Depth(f) + 3; d > k {
		k = d
	}
	started := time.Now()
	b := logic.NewBuilder()
	fe := newFrameEnv(b, sys)
	fe.initFrame0(false)
	if err := fe.unroll(k); err != nil {
		return Result{}, err
	}
	ops := bitvec.Ops{B: b}
	perLoop := map[int]logic.Node{}
	total := logic.False
	for l := 0; l < k; l++ {
		le := ltl.NewLassoEval(fe.ev, k, l)
		// loop closure: next-state of frame k-1 equals state at l —
		// and the loop's input columns repeat by construction.
		closure := logic.True
		for _, r := range sys.Regs {
			next, err := fe.ev.Eval(r.Next, k-1)
			if err != nil {
				return Result{}, err
			}
			at, err := fe.Signal(r.Name, l)
			if err != nil {
				return Result{}, err
			}
			closure = b.And(closure, ops.Eq(next.Extend(r.Width), at))
		}
		// inputs must repeat across the loop seam for the lasso to be
		// a genuine infinite trace.
		viol := logic.False
		for p := 0; p < k; p++ {
			v, err := violation(fe, le, f, abort, p, 0, true)
			if err != nil {
				return Result{}, err
			}
			viol = b.Or(viol, v)
		}
		// assumptions hold at every lasso position
		for _, af := range assumes {
			for p := 0; p < k; p++ {
				an, err := le.Truth(af, p)
				if err != nil {
					return Result{}, err
				}
				closure = b.And(closure, an)
			}
		}
		node := b.And(closure, viol)
		perLoop[l] = node
		total = b.Or(total, node)
	}
	s := sat.New()
	if opt.Budget > 0 {
		s.SetBudget(opt.Budget)
	}
	cnf := logic.NewCNF(b, s)
	cnf.Assert(total)
	rsp := opt.Span.Child("lasso").SetPhase(obs.PhaseSAT).SetInt("bound", int64(k))
	ok, model, err := s.SolveModel()
	if err != nil {
		rsp.SetStr("verdict", "error")
	} else if ok {
		rsp.SetStr("verdict", "sat")
	} else {
		rsp.SetStr("verdict", "unsat")
	}
	rsp.End()
	opt.Stats.Query(1, s.Stats().Conflicts, 0, false)
	opt.Stats.SolveWall(time.Since(started).Nanoseconds())
	if err != nil {
		return Result{}, err
	}
	if !ok {
		return Result{Status: Proven, Bounded: true, Depth: k}, nil
	}
	loop := -1
	sim := modelSim(fe, cnf, model)
	for l, node := range perLoop {
		if sim.Bit(node, 0) {
			loop = l
			break
		}
	}
	return Result{Status: Falsified, Depth: k, Cex: decodeCexLane(sys, fe, sim, 0, k, loop)}, nil
}

// modelSim broadcasts a SAT model's free-variable values into a
// one-lane run of the dense bit-parallel evaluator; derived nets and
// register states are recomputed from the inputs, exactly as the
// map-based evaluator did.
func modelSim(fe *frameEnv, cnf *logic.CNF, model []bool) *logic.Sim {
	sim := logic.NewSim(fe.b)
	set := func(bv bitvec.BV) {
		for _, bit := range bv.Bits {
			if !bit.IsConst() && fe.b.IsInput(bit) && cnf.InputValue(model, bit) != bit.Compl() {
				sim.SetInput(bit, ^uint64(0))
			}
		}
	}
	for _, bv := range fe.inputs {
		set(bv)
	}
	for _, bv := range fe.states {
		set(bv)
	}
	sim.Run()
	return sim
}

func decodeCex(sys *rtl.System, fe *frameEnv, cnf *logic.CNF, model []bool, n, loop int) *Cex {
	return decodeCexLane(sys, fe, modelSim(fe, cnf, model), 0, n, loop)
}

// decodeCexLane reads one simulation lane off as a counterexample —
// the shared decode path of SAT models (broadcast to lane 0) and
// prefilter hits (whose lane is already a complete assignment).
func decodeCexLane(sys *rtl.System, fe *frameEnv, sim *logic.Sim, lane, n, loop int) *Cex {
	cex := &Cex{Loop: loop}
	for p := 0; p < n; p++ {
		frame := map[string]uint64{}
		for _, in := range sys.Inputs {
			if bv, ok := fe.inputs[sigPos{in.Name, p}]; ok {
				frame[in.Name] = decodeBVLane(bv, sim, lane)
			}
		}
		for _, r := range sys.Regs {
			if bv, ok := fe.states[sigPos{r.Name, p}]; ok {
				frame[r.Name] = decodeBVLane(bv, sim, lane)
			}
		}
		cex.Frames = append(cex.Frames, frame)
	}
	return cex
}

func decodeBVLane(bv bitvec.BV, sim *logic.Sim, lane int) uint64 {
	var v uint64
	for i, bit := range bv.Bits {
		if i >= 64 {
			break
		}
		if sim.Bit(bit, lane) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// bankCex folds a decoded counterexample into the shared pattern bank
// as a signal-level trace (inputs and register states both: register
// names seed the free initial state of later induction sessions).
func bankCex(bank *formal.Bank, cex *Cex) {
	if bank == nil || cex == nil || len(cex.Frames) == 0 {
		return
	}
	vals := map[string][]uint64{}
	for p, frame := range cex.Frames {
		for name, v := range frame {
			if _, ok := vals[name]; !ok {
				vals[name] = make([]uint64, len(cex.Frames))
			}
			vals[name][p] = v
		}
	}
	bank.Add(formal.Pattern{Len: len(cex.Frames), Vals: vals})
}
