package mc

import (
	"testing"

	"fveval/internal/rtl"
	"fveval/internal/sva"
)

const fsmSrc = `
module fsm(clk, reset_, in_A, in_B, fsm_out);
parameter WIDTH = 8;
parameter FSM_WIDTH = 2;
parameter S0 = 2'b00;
parameter S1 = 2'b01;
parameter S2 = 2'b10;
parameter S3 = 2'b11;
input clk;
input reset_;
input [WIDTH-1:0] in_A;
input [WIDTH-1:0] in_B;
output reg [FSM_WIDTH-1:0] fsm_out;
reg [FSM_WIDTH-1:0] state, next_state;
always_ff @(posedge clk or negedge reset_) begin
  if (!reset_) begin
    state <= S0;
  end else begin
    state <= next_state;
  end
end
always_comb begin
  case(state)
    S0: begin next_state = S2; end
    S1: begin next_state = S3; end
    S2: begin
      if (in_A == in_B) begin next_state = S0; end
      else begin next_state = S1; end
    end
    S3: begin next_state = S1; end
    default: begin next_state = S0; end
  endcase
end
always_comb begin
  fsm_out = state;
end
endmodule
`

func fsmSystem(t *testing.T) *rtl.System {
	t.Helper()
	f, err := rtl.Parse(fsmSrc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rtl.Elaborate(f, "fsm", nil)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func check(t *testing.T, sys *rtl.System, src string) Result {
	t.Helper()
	a, err := sva.ParseAssertion(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := CheckAssertion(sys, a, Options{})
	if err != nil {
		t.Fatalf("check %q: %v", src, err)
	}
	return res
}

func TestFSMSafetyProofs(t *testing.T) {
	sys := fsmSystem(t)
	proven := []string{
		// S2's successors are S0 or S1.
		`assert property (@(posedge clk) disable iff (!reset_)
			state == 2'b10 |-> (next_state == 2'b00 || next_state == 2'b01));`,
		// the FSM never reaches S2 from S1 in one step
		`assert property (@(posedge clk) disable iff (!reset_)
			state == 2'b01 |-> ##1 (state != 2'b10));`,
		// fsm_out mirrors state
		`assert property (@(posedge clk) fsm_out == state);`,
		// S0 always transitions to S2 (with reset free, the attempt is
		// aborted when reset strikes mid-attempt)
		`assert property (@(posedge clk) disable iff (!reset_)
			state == 2'b00 |-> ##1 state == 2'b10);`,
	}
	for _, src := range proven {
		res := check(t, sys, src)
		if res.Status != Proven {
			t.Errorf("expected proven, got %v (depth %d)\n%s", res.Status, res.Depth, src)
			if res.Cex != nil {
				t.Logf("cex: %+v", res.Cex.Frames)
			}
		}
	}
}

func TestFSMSafetyFalsifications(t *testing.T) {
	sys := fsmSystem(t)
	falsified := []string{
		// wrong: claims S2 -> S3 possible next is S3 only
		`assert property (@(posedge clk) disable iff (!reset_)
			state == 2'b10 |-> ##1 state == 2'b11);`,
		// wrong: claims the FSM never visits S3
		`assert property (@(posedge clk) disable iff (!reset_)
			state != 2'b11);`,
		// wrong data relation
		`assert property (@(posedge clk) disable iff (!reset_)
			state == 2'b10 |-> in_A == in_B);`,
	}
	for _, src := range falsified {
		res := check(t, sys, src)
		if res.Status != Falsified {
			t.Errorf("expected falsified, got %v\n%s", res.Status, src)
		}
		if res.Status == Falsified && res.Cex == nil {
			t.Errorf("falsified without counterexample: %s", src)
		}
	}
}

func TestVacuousDisable(t *testing.T) {
	sys := fsmSystem(t)
	// disable iff (reset_) with active-low reset: any attempt where
	// reset_ stays high is aborted... but reset_ low resets the FSM.
	// A wrong body guarded this way can still be falsified with
	// reset_ low at the right moment only if the body can fail while
	// reset_ is 0 — state is forced to S0 then. This one is proven
	// (vacuously or not) — it documents the paper's Fig. 9 setup where
	// gpt-4o used disable iff (reset_).
	res := check(t, sys, `assert property (@(posedge clk) disable iff (reset_)
		state == 2'b10 |-> (next_state == 2'b00 || next_state == 2'b01 || next_state == 2'b11));`)
	if res.Status != Proven {
		t.Errorf("expected proven, got %v", res.Status)
	}
}

func TestCounterProofs(t *testing.T) {
	src := `
module ctr(clk, reset_, en, cnt);
input clk;
input reset_;
input en;
output reg [3:0] cnt;
always @(posedge clk) begin
  if (!reset_) cnt <= 'd0;
  else if (en) begin
    if (cnt == 4'd9) cnt <= 'd0;
    else cnt <= cnt + 'd1;
  end
end
endmodule`
	f, err := rtl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rtl.Elaborate(f, "ctr", nil)
	if err != nil {
		t.Fatal(err)
	}
	// invariant: counter stays below 10 — needs induction over the
	// range invariant, which plain k-induction finds at k=1 because
	// the invariant is inductive.
	res := check(t, sys, `assert property (@(posedge clk) disable iff (!reset_) cnt <= 4'd9);`)
	if res.Status != Proven {
		t.Errorf("range invariant: %v (depth %d)", res.Status, res.Depth)
	}
	// wrong bound is falsified
	res = check(t, sys, `assert property (@(posedge clk) disable iff (!reset_) cnt <= 4'd8);`)
	if res.Status != Falsified {
		t.Errorf("wrong bound: %v", res.Status)
	}
	// step relation
	res = check(t, sys, `assert property (@(posedge clk) disable iff (!reset_)
		(en && cnt < 4'd9) |-> ##1 cnt == ($past(cnt) + 4'd1));`)
	if res.Status != Proven {
		t.Errorf("step relation: %v (depth %d)", res.Status, res.Depth)
	}
}

func TestPipelineValidPropagation(t *testing.T) {
	src := `
module pipe(clk, reset_, in_vld, out_vld);
input clk;
input reset_;
input in_vld;
output out_vld;
reg [2:0] r;
always @(posedge clk) begin
  if (!reset_) r <= 'd0;
  else r <= {r[1:0], in_vld};
end
assign out_vld = r[2];
endmodule`
	f, err := rtl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rtl.Elaborate(f, "pipe", nil)
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, sys, `assert property (@(posedge clk) disable iff (!reset_)
		in_vld |-> ##3 out_vld);`)
	if res.Status != Proven {
		t.Errorf("valid propagation: %v (depth %d)", res.Status, res.Depth)
		if res.Cex != nil {
			t.Logf("cex: %+v loop=%d", res.Cex.Frames, res.Cex.Loop)
		}
	}
	res = check(t, sys, `assert property (@(posedge clk) disable iff (!reset_)
		in_vld |-> ##2 out_vld);`)
	if res.Status != Falsified {
		t.Errorf("wrong latency must fail: %v", res.Status)
	}
}

func TestLiveness(t *testing.T) {
	// A one-hot rotating token: the token eventually returns.
	src := `
module rot(clk, reset_, tok);
input clk;
input reset_;
output reg [2:0] tok;
always @(posedge clk) begin
  if (!reset_) tok <= 3'b001;
  else tok <= {tok[1:0], tok[2]};
end
endmodule`
	f, err := rtl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rtl.Elaborate(f, "rot", nil)
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, sys, `assert property (@(posedge clk) disable iff (!reset_)
		s_eventually tok[0]);`)
	if res.Status != Proven {
		t.Errorf("token liveness: %v", res.Status)
	}
	if !res.Bounded {
		t.Errorf("liveness proof must be flagged bounded")
	}
	// tok[0] and tok[1] are never simultaneously... liveness failure:
	// claiming the token eventually disappears is false.
	res = check(t, sys, `assert property (@(posedge clk) disable iff (!reset_)
		s_eventually (tok == 3'b000));`)
	if res.Status != Falsified {
		t.Errorf("false liveness must be falsified: %v", res.Status)
	}
	if res.Cex == nil || res.Cex.Loop < 0 {
		t.Errorf("liveness cex must carry a loop")
	}
}

func TestUnknownOnHardProperty(t *testing.T) {
	// A modular-arithmetic relation that k-induction at small k cannot
	// prove and BMC cannot refute: expect Unknown, not a wrong answer.
	src := `
module lfsr(clk, reset_, s);
input clk;
input reset_;
output reg [7:0] s;
always @(posedge clk) begin
  if (!reset_) s <= 8'd1;
  else s <= {s[6:0], s[7] ^ s[5]};
end
endmodule`
	f, err := rtl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rtl.Elaborate(f, "lfsr", nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sva.ParseAssertion(`assert property (@(posedge clk) disable iff (!reset_) s != 8'd0);`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckAssertion(sys, a, Options{MaxInduction: 2, BMCDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	// The nonzero invariant is true but not 2-inductive; the checker
	// must not claim Falsified.
	if res.Status == Falsified {
		t.Errorf("must not falsify a true property: %v", res.Status)
	}
}

func TestElaborationErrorSurfaces(t *testing.T) {
	sys := fsmSystem(t)
	a, err := sva.ParseAssertion(`assert property (@(posedge clk) ghost_signal == 1'b1);`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckAssertion(sys, a, Options{}); err == nil {
		t.Fatalf("expected elaboration error for unknown signal")
	}
}
