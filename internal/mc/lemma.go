package mc

import (
	"fveval/internal/ltl"
	"fveval/internal/rtl"
	"fveval/internal/sva"
)

// assumedLemma is a safety property that has already been PROVED
// against the same system and may therefore be assumed as a path
// constraint while checking another property. Assuming an unproved
// formula would be unsound (it prunes real counterexample traces), so
// values of this type are only ever constructed inside CheckWithLemmas
// after a Proven verdict — there is no exported constructor on purpose.
type assumedLemma struct {
	f     ltl.Formula
	abort sva.Expr
	d     int // bounded evaluation window of f
}

// Lemma reports the fate of one candidate helper assertion submitted
// to CheckWithLemmas, index-aligned with the helpers argument.
type Lemma struct {
	// Proved marks helpers that were themselves proved (possibly using
	// other proved helpers as lemmas) and hence assumed during the
	// target check. Unproved helpers are never assumed.
	Proved bool
	// Depth is the induction length of the helper's own proof.
	Depth int
	// LoadBearing marks proved helpers without which the target proof
	// fails: removing the helper from the candidate set and re-running
	// the whole pipeline (so transitive dependencies collapse too)
	// leaves the target unproven. Only computed when the target was
	// proved.
	LoadBearing bool
}

// CheckWithLemmas checks target with candidate helper assertions as
// prospective lemmas, the AGR scoring primitive (DESIGN.md §12).
//
// The pipeline is prove-then-assume: each helper must first be proved
// against the system before it is ever assumed. Helpers are proved to
// a fixpoint — every round retries the still-unproved candidates with
// all previously proved ones assumed, until a round makes no
// progress — so helper chains with sequential dependencies (h2 only
// inductive once h1 is assumed) resolve regardless of candidate
// order. The target is then checked with every proved helper assumed,
// strengthening the induction hypothesis. Unbounded (liveness)
// helpers are never assumed: the checker's liveness verdicts are only
// bounded proofs, which are unsound to assume.
//
// When the target proves, each proved helper is ablated — removed
// from the candidate set entirely and the pipeline re-run — to decide
// whether it was load-bearing. Ablating the candidate (not just the
// assumption) means a helper whose only role is enabling another
// helper's proof is still correctly marked load-bearing.
func CheckWithLemmas(sys *rtl.System, target *sva.Assertion, helpers []*sva.Assertion, opt Options) (Result, []Lemma, error) {
	opt = opt.withDefaults()
	assumes, err := lowerAssumes(sys)
	if err != nil {
		return Result{}, nil, err
	}

	type cand struct {
		f     ltl.Formula
		abort sva.Expr
		d     int
		ok    bool // lowered to a bounded (safety) formula
	}
	cands := make([]cand, len(helpers))
	for i, h := range helpers {
		f, err := ltl.LowerAssertion(h)
		if err != nil || ltl.HasUnbounded(f) {
			continue // never proved, never assumed
		}
		var abort sva.Expr
		if h.DisableIff != nil {
			abort = h.DisableIff
		}
		cands[i] = cand{f: f, abort: abort, d: ltl.Depth(f), ok: true}
	}

	tf, err := ltl.LowerAssertion(target)
	if err != nil {
		return Result{}, nil, err
	}
	var tabort sva.Expr
	if target.DisableIff != nil {
		tabort = target.DisableIff
	}

	// run executes one full pipeline pass with candidate exclude (an
	// index, or -1) removed: fixpoint-prove the helpers, then check
	// the target under the proved set.
	run := func(exclude int) (Result, []bool, []int, error) {
		proved := make([]bool, len(cands))
		depths := make([]int, len(cands))
		var lemmas []assumedLemma
		for progress := true; progress; {
			progress = false
			for i := range cands {
				if i == exclude || !cands[i].ok || proved[i] {
					continue
				}
				res, err := checkSafety(sys, cands[i].f, cands[i].abort, assumes, lemmas, opt)
				if err != nil {
					return Result{}, nil, nil, err
				}
				if res.Status == Proven {
					proved[i] = true
					depths[i] = res.Depth
					lemmas = append(lemmas, assumedLemma{f: cands[i].f, abort: cands[i].abort, d: cands[i].d})
					progress = true
				}
			}
		}
		var tres Result
		if ltl.HasUnbounded(tf) {
			// Liveness targets get no lemma strengthening (the lasso
			// encoding has no induction hypothesis to strengthen), but
			// helper validity is still reported.
			tres, err = checkLiveness(sys, tf, tabort, assumes, opt)
		} else {
			tres, err = checkSafety(sys, tf, tabort, assumes, lemmas, opt)
		}
		if err != nil {
			return Result{}, nil, nil, err
		}
		return tres, proved, depths, nil
	}

	tres, proved, depths, err := run(-1)
	if err != nil {
		return Result{}, nil, err
	}
	out := make([]Lemma, len(helpers))
	for i := range out {
		out[i] = Lemma{Proved: proved[i], Depth: depths[i]}
	}
	if tres.Status == Proven {
		for i := range cands {
			if !proved[i] {
				continue
			}
			ares, _, _, err := run(i)
			if err != nil {
				return Result{}, nil, err
			}
			if ares.Status != Proven {
				out[i].LoadBearing = true
			}
		}
	}

	var nProved, nBearing int64
	for _, lm := range out {
		if lm.Proved {
			nProved++
		}
		if lm.LoadBearing {
			nBearing++
		}
	}
	opt.Stats.Lemmas(int64(len(helpers)), nProved, nBearing)
	return tres, out, nil
}
