package mc

import (
	"fmt"
	"math/rand"
	"testing"

	"fveval/internal/bitvec"
	"fveval/internal/formal"
	"fveval/internal/gen/rtlgen"
	"fveval/internal/logic"
	"fveval/internal/rtl"
	"fveval/internal/sat"
	"fveval/internal/sva"
)

// TestSymbolicMatchesConcreteSimulation cross-checks the symbolic
// frame unrolling (used for proofs) against the concrete interpreter
// (used for reset computation) on random input traces of random
// generated designs: pinning the symbolic inputs to the concrete trace
// must reproduce the concrete register states at every frame.
func TestSymbolicMatchesConcreteSimulation(t *testing.T) {
	srcs := []struct{ name, src, top string }{
		{"fsm", fsmSrc, "fsm"},
		{"ctr", `
module ctr(clk, reset_, en, cnt);
input clk;
input reset_;
input en;
output reg [3:0] cnt;
wire wrap;
assign wrap = (cnt == 4'd11);
always @(posedge clk) begin
  if (!reset_) cnt <= 'd0;
  else if (en) begin
    if (wrap) cnt <= 'd0;
    else cnt <= cnt + 'd1;
  end
end
endmodule`, "ctr"},
		{"shift", `
module sh(clk, reset_, din, q);
input clk;
input reset_;
input [1:0] din;
output reg [5:0] q;
always @(posedge clk) begin
  if (!reset_) q <= 'd0;
  else q <= {q[3:0], din};
end
endmodule`, "sh"},
	}
	for _, cfg := range srcs {
		t.Run(cfg.name, func(t *testing.T) {
			f, err := rtl.Parse(cfg.src)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := rtl.Elaborate(f, cfg.top, nil)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			const frames = 6
			// random concrete input trace (reset held off)
			trace := make([]map[string]uint64, frames)
			for p := range trace {
				in := map[string]uint64{}
				for _, s := range sys.Inputs {
					in[s.Name] = rng.Uint64() & ((1 << uint(s.Width)) - 1)
				}
				in["reset_"] = 1
				trace[p] = in
			}
			// concrete run
			interp := rtl.NewInterp(sys)
			concrete := make([]map[string]uint64, frames)
			for p := 0; p < frames; p++ {
				vals, err := interp.Peek(trace[p])
				if err != nil {
					t.Fatal(err)
				}
				st := map[string]uint64{}
				for _, r := range sys.Regs {
					st[r.Name] = vals[r.Name]
				}
				concrete[p] = st
				if _, err := interp.Step(trace[p]); err != nil {
					t.Fatal(err)
				}
			}
			// symbolic run pinned to the same inputs
			b := logic.NewBuilder()
			fe := newFrameEnv(b, sys)
			fe.initFrame0(false)
			if err := fe.unroll(frames); err != nil {
				t.Fatal(err)
			}
			s := sat.New()
			cnf := logic.NewCNF(b, s)
			ops := bitvec.Ops{B: b}
			for p := 0; p < frames; p++ {
				for _, in := range sys.Inputs {
					bv, err := fe.Signal(in.Name, p)
					if err != nil {
						t.Fatal(err)
					}
					cnf.Assert(ops.Eq(bv, bitvec.Const(trace[p][in.Name], in.Width)))
				}
			}
			ok, model, err := s.SolveModel()
			if err != nil || !ok {
				t.Fatalf("pinned trace must be satisfiable: %v %v", ok, err)
			}
			sim := modelSim(fe, cnf, model)
			for p := 0; p < frames; p++ {
				for _, r := range sys.Regs {
					bv := fe.states[sigPos{r.Name, p}]
					got := decodeBVLane(bv, sim, 0)
					want := concrete[p][r.Name]
					if got != want {
						t.Fatalf("frame %d reg %s: symbolic %d concrete %d",
							p, r.Name, got, want)
					}
				}
			}
		})
	}
}

// TestPrefilterVsSolverCrossCheck fuzzes the simulation prefilter
// against the pure-SAT safety checker on generated designs: the
// ground-truth assertions (proven), their mutated variants (mostly
// falsified), and negations must produce identical Status and Depth
// with the prefilter on and off, sharing one pattern bank across the
// corpus the way an engine run does.
func TestPrefilterVsSolverCrossCheck(t *testing.T) {
	bank := formal.NewBank(0)
	var st formal.Stats
	seen := map[Status]int{}
	compare := func(sys *rtl.System, src, tag string) {
		t.Helper()
		a, err := sva.ParseAssertion(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tag, err)
		}
		got, err1 := CheckAssertion(sys, a, Options{SimPatterns: 128, Bank: bank, Stats: &st})
		want, err2 := CheckAssertion(sys, a, Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error disagreement: prefilter=%v solver=%v\n%s", tag, err1, err2, src)
		}
		if err1 != nil {
			return
		}
		if got.Status != want.Status || got.Depth != want.Depth {
			t.Fatalf("%s: disagreement: prefilter=%v@%d solver=%v@%d\n%s",
				tag, got.Status, got.Depth, want.Status, want.Depth, src)
		}
		if got.Status == Falsified && got.Cex == nil {
			t.Fatalf("%s: falsified without a counterexample", tag)
		}
		seen[got.Status]++
	}

	for seed := int64(1); seed <= 4; seed++ {
		inst := rtlgen.GenerateFSM(rtlgen.FSMParams{States: 5, Edges: 8, Width: 8, Complexity: 2, Seed: seed})
		f, err := rtl.Parse(inst.Design + "\n" + inst.Bench)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := rtl.ElaborateBound(f, inst.DUTTop, inst.BenchTop, nil)
		if err != nil {
			t.Fatal(err)
		}
		succ := inst.FSM.Succ[0]
		body := "fsm_out == S0 |=> ("
		for i, tr := range succ {
			if i > 0 {
				body += " || "
			}
			body += "fsm_out == S" + fmt.Sprint(tr)
		}
		body += ")"
		head := "assert property (@(posedge clk) disable iff (tb_reset) "
		compare(sys, head+body+");", "ground-truth")
		// A state the FSM can leave: claiming it is a sink is falsified.
		compare(sys, head+"fsm_out == S0 |=> fsm_out == S0);", "sink-claim")
		// A reachable-state exclusion must falsify quickly.
		compare(sys, head+"fsm_out != S0);", "excluded-state")
		// Trivial tautology and contradiction exercise the constant
		// paths of the prefilter.
		compare(sys, head+"1'b1);", "tautology")
		compare(sys, head+"fsm_out == S0 |-> 1'b0);", "contradiction")
	}
	if len(seen) < 2 {
		t.Fatalf("fuzz corpus too narrow: statuses seen = %v", seen)
	}
	if st.Snapshot().Sim.Refutations == 0 {
		t.Fatal("prefilter never refuted anything; the cross-check is vacuous")
	}
}

// TestGeneratedDesignsProveGroundTruth sweeps a sample of generated
// instances from both categories and proves the generator's own
// ground-truth assertions — the provability contract behind the
// Design2SVA Func metric.
func TestGeneratedDesignsProveGroundTruth(t *testing.T) {
	// handled at core level for FSMs; here prove pipelines' latency.
	for seed := int64(1); seed <= 4; seed++ {
		src := fmt.Sprintf(`
module pipe(clk, reset_, in_vld, out_vld);
input clk;
input reset_;
input in_vld;
output out_vld;
reg [%d:0] r;
always @(posedge clk) begin
  if (!reset_) r <= 'd0;
  else r <= {r[%d:0], in_vld};
end
assign out_vld = r[%d];
endmodule`, seed, seed-1, seed)
		f, err := rtl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := rtl.Elaborate(f, "pipe", nil)
		if err != nil {
			t.Fatal(err)
		}
		res := check(t, sys, fmt.Sprintf(
			`assert property (@(posedge clk) disable iff (!reset_) in_vld |-> ##%d out_vld);`,
			seed+1))
		if res.Status != Proven {
			t.Errorf("depth %d latency: %v", seed+1, res.Status)
		}
	}
}
