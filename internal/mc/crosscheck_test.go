package mc

import (
	"fmt"
	"math/rand"
	"testing"

	"fveval/internal/bitvec"
	"fveval/internal/logic"
	"fveval/internal/rtl"
	"fveval/internal/sat"
)

// TestSymbolicMatchesConcreteSimulation cross-checks the symbolic
// frame unrolling (used for proofs) against the concrete interpreter
// (used for reset computation) on random input traces of random
// generated designs: pinning the symbolic inputs to the concrete trace
// must reproduce the concrete register states at every frame.
func TestSymbolicMatchesConcreteSimulation(t *testing.T) {
	srcs := []struct{ name, src, top string }{
		{"fsm", fsmSrc, "fsm"},
		{"ctr", `
module ctr(clk, reset_, en, cnt);
input clk;
input reset_;
input en;
output reg [3:0] cnt;
wire wrap;
assign wrap = (cnt == 4'd11);
always @(posedge clk) begin
  if (!reset_) cnt <= 'd0;
  else if (en) begin
    if (wrap) cnt <= 'd0;
    else cnt <= cnt + 'd1;
  end
end
endmodule`, "ctr"},
		{"shift", `
module sh(clk, reset_, din, q);
input clk;
input reset_;
input [1:0] din;
output reg [5:0] q;
always @(posedge clk) begin
  if (!reset_) q <= 'd0;
  else q <= {q[3:0], din};
end
endmodule`, "sh"},
	}
	for _, cfg := range srcs {
		t.Run(cfg.name, func(t *testing.T) {
			f, err := rtl.Parse(cfg.src)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := rtl.Elaborate(f, cfg.top, nil)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			const frames = 6
			// random concrete input trace (reset held off)
			trace := make([]map[string]uint64, frames)
			for p := range trace {
				in := map[string]uint64{}
				for _, s := range sys.Inputs {
					in[s.Name] = rng.Uint64() & ((1 << uint(s.Width)) - 1)
				}
				in["reset_"] = 1
				trace[p] = in
			}
			// concrete run
			interp := rtl.NewInterp(sys)
			concrete := make([]map[string]uint64, frames)
			for p := 0; p < frames; p++ {
				vals, err := interp.Peek(trace[p])
				if err != nil {
					t.Fatal(err)
				}
				st := map[string]uint64{}
				for _, r := range sys.Regs {
					st[r.Name] = vals[r.Name]
				}
				concrete[p] = st
				if _, err := interp.Step(trace[p]); err != nil {
					t.Fatal(err)
				}
			}
			// symbolic run pinned to the same inputs
			b := logic.NewBuilder()
			fe := newFrameEnv(b, sys)
			fe.initFrame0(false)
			if err := fe.unroll(frames); err != nil {
				t.Fatal(err)
			}
			s := sat.New()
			cnf := logic.NewCNF(b, s)
			ops := bitvec.Ops{B: b}
			for p := 0; p < frames; p++ {
				for _, in := range sys.Inputs {
					bv, err := fe.Signal(in.Name, p)
					if err != nil {
						t.Fatal(err)
					}
					cnf.Assert(ops.Eq(bv, bitvec.Const(trace[p][in.Name], in.Width)))
				}
			}
			ok, model, err := s.SolveModel()
			if err != nil || !ok {
				t.Fatalf("pinned trace must be satisfiable: %v %v", ok, err)
			}
			assign := inputAssign(fe, cnf, model)
			cache := map[int32]bool{}
			for p := 0; p < frames; p++ {
				for _, r := range sys.Regs {
					bv := fe.states[sigPos{r.Name, p}]
					got := decodeBVWith(b, bv, assign, cache)
					want := concrete[p][r.Name]
					if got != want {
						t.Fatalf("frame %d reg %s: symbolic %d concrete %d",
							p, r.Name, got, want)
					}
				}
			}
		})
	}
}

func decodeBVWith(b *logic.Builder, bv bitvec.BV, assign map[logic.Node]bool, cache map[int32]bool) uint64 {
	var v uint64
	for i, bit := range bv.Bits {
		if i >= 64 {
			break
		}
		if b.Eval(bit, assign, cache) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// TestGeneratedDesignsProveGroundTruth sweeps a sample of generated
// instances from both categories and proves the generator's own
// ground-truth assertions — the provability contract behind the
// Design2SVA Func metric.
func TestGeneratedDesignsProveGroundTruth(t *testing.T) {
	// handled at core level for FSMs; here prove pipelines' latency.
	for seed := int64(1); seed <= 4; seed++ {
		src := fmt.Sprintf(`
module pipe(clk, reset_, in_vld, out_vld);
input clk;
input reset_;
input in_vld;
output out_vld;
reg [%d:0] r;
always @(posedge clk) begin
  if (!reset_) r <= 'd0;
  else r <= {r[%d:0], in_vld};
end
assign out_vld = r[%d];
endmodule`, seed, seed-1, seed)
		f, err := rtl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := rtl.Elaborate(f, "pipe", nil)
		if err != nil {
			t.Fatal(err)
		}
		res := check(t, sys, fmt.Sprintf(
			`assert property (@(posedge clk) disable iff (!reset_) in_vld |-> ##%d out_vld);`,
			seed+1))
		if res.Status != Proven {
			t.Errorf("depth %d latency: %v", seed+1, res.Status)
		}
	}
}
