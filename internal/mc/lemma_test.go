package mc

import (
	"testing"

	"fveval/internal/formal"
	"fveval/internal/rtl"
	"fveval/internal/sva"
)

// strideSrc is a gated stride-2 counter: cnt stays even, but the
// enable input lets the induction-step violation stall past any
// frontier, so even-ness facts about cnt are not k-inductive alone.
const strideSrc = `
module stride(clk, reset_, en, cnt);
input clk;
input reset_;
input en;
output [3:0] cnt;
reg [3:0] cnt_q;
always @(posedge clk) begin
  if (!reset_) begin
    cnt_q <= 'd0;
  end else begin
    cnt_q <= en ? (cnt_q + 'd2) : cnt_q;
  end
end
assign cnt = cnt_q;
endmodule
`

func strideSystem(t *testing.T) *rtl.System {
	t.Helper()
	f, err := rtl.Parse(strideSrc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rtl.Elaborate(f, "stride", nil)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func parseA(t *testing.T, src string) *sva.Assertion {
	t.Helper()
	a, err := sva.ParseAssertion(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return a
}

const strideTarget = `t: assert property (@(posedge clk) (cnt != 'd5));`
const strideAlign = `h: assert property (@(posedge clk) ((cnt & 'd1) == 'd0));`

// TestLemmaUnlocksTarget is the happy path: the target is not
// k-inductive alone (Unknown), the alignment helper is 1-inductive,
// and assuming it unlocks the target. The helper must be marked
// load-bearing.
func TestLemmaUnlocksTarget(t *testing.T) {
	sys := strideSystem(t)
	target := parseA(t, strideTarget)

	alone, err := CheckAssertion(sys, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if alone.Status != Unknown {
		t.Fatalf("target alone: got %v, want unknown", alone.Status)
	}

	res, lemmas, err := CheckWithLemmas(sys, target, []*sva.Assertion{parseA(t, strideAlign)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Proven {
		t.Fatalf("target with helper: got %v, want proven", res.Status)
	}
	if len(lemmas) != 1 || !lemmas[0].Proved || !lemmas[0].LoadBearing {
		t.Fatalf("lemma report: got %+v, want proved load-bearing", lemmas)
	}
}

// TestUnprovedHelperNeverAssumed is the soundness core: a falsifiable
// helper must not be assumed, even though assuming it would "prove"
// the target. (cnt == 0) is violated on the first enabled step; were
// it assumed regardless, cnt != 5 would follow trivially.
func TestUnprovedHelperNeverAssumed(t *testing.T) {
	sys := strideSystem(t)
	target := parseA(t, strideTarget)
	bogus := parseA(t, `h: assert property (@(posedge clk) (cnt == 'd0));`)

	res, lemmas, err := CheckWithLemmas(sys, target, []*sva.Assertion{bogus}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lemmas[0].Proved {
		t.Fatal("falsifiable helper reported as proved")
	}
	if res.Status != Unknown {
		t.Fatalf("target with unproved helper: got %v, want unknown (helper must not be assumed)", res.Status)
	}
}

// TestLemmaCannotMaskFalsification: assuming a genuinely proved
// invariant must never flip a falsifiable target to proven. cnt == 4
// is reachable (0, 2, 4), so (cnt != 4) is falsified with or without
// the alignment lemma.
func TestLemmaCannotMaskFalsification(t *testing.T) {
	sys := strideSystem(t)
	target := parseA(t, `t: assert property (@(posedge clk) (cnt != 'd4));`)

	res, lemmas, err := CheckWithLemmas(sys, target, []*sva.Assertion{parseA(t, strideAlign)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !lemmas[0].Proved {
		t.Fatal("alignment helper should prove")
	}
	if res.Status != Falsified {
		t.Fatalf("reachable violation under assumed lemma: got %v, want falsified", res.Status)
	}
	if res.Cex == nil {
		t.Fatal("falsification must carry a counterexample")
	}
}

// TestLemmaFixpointOrderIndependent: helper sets prove to a fixpoint,
// so candidate order cannot change any verdict. The set mixes the
// real alignment invariant with a falsifiable decoy in both orders.
func TestLemmaFixpointOrderIndependent(t *testing.T) {
	sys := strideSystem(t)
	target := parseA(t, strideTarget)
	align := parseA(t, strideAlign)
	decoy := parseA(t, `h2: assert property (@(posedge clk) (cnt == 'd0));`)

	for _, helpers := range [][]*sva.Assertion{{align, decoy}, {decoy, align}} {
		res, lemmas, err := CheckWithLemmas(sys, target, helpers, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Proven {
			t.Fatalf("got %v, want proven regardless of helper order", res.Status)
		}
		nProved := 0
		for _, lm := range lemmas {
			if lm.Proved {
				nProved++
			}
		}
		if nProved != 1 {
			t.Fatalf("got %d proved helpers, want exactly 1", nProved)
		}
	}
}

// TestUnboundedHelperNeverAssumed: liveness helpers only ever receive
// bounded proofs from this checker, which are unsound to assume, so
// they must be reported unproved and skipped.
func TestUnboundedHelperNeverAssumed(t *testing.T) {
	sys := strideSystem(t)
	target := parseA(t, strideTarget)
	live := parseA(t, `h: assert property (@(posedge clk) s_eventually (cnt == 'd0));`)

	res, lemmas, err := CheckWithLemmas(sys, target, []*sva.Assertion{live}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lemmas[0].Proved {
		t.Fatal("unbounded helper must never be proved/assumed")
	}
	if res.Status != Unknown {
		t.Fatalf("got %v, want unknown", res.Status)
	}
}

// TestLemmaStats: the pipeline reports candidate/proved/load-bearing
// counts into the formal stats sink.
func TestLemmaStats(t *testing.T) {
	sys := strideSystem(t)
	target := parseA(t, strideTarget)
	align := parseA(t, strideAlign)
	decoy := parseA(t, `h2: assert property (@(posedge clk) (cnt == 'd0));`)

	st := &formal.Stats{}
	_, _, err := CheckWithLemmas(sys, target, []*sva.Assertion{align, decoy}, Options{Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot().Lemma
	if snap.Candidates != 2 || snap.Proved != 1 || snap.LoadBearing != 1 {
		t.Fatalf("lemma stats: got %+v, want 2 candidates / 1 proved / 1 load-bearing", snap)
	}
}
