package mc

import (
	"testing"

	"fveval/internal/logic"
	"fveval/internal/ltl"
	"fveval/internal/rtl"
	"fveval/internal/sat"
	"fveval/internal/sva"
)

// Differential check of the incremental safety engine (persistent
// solvers, per-depth activation literals) against a one-shot oracle
// that re-encodes and re-solves every query from scratch — the
// pre-incremental solve path.

func oracleSafetyQuery(sys *rtl.System, f ltl.Formula, abort sva.Expr, assumes []ltl.Formula, attempts, d int, freeInit bool, opt Options) (*Cex, error) {
	n := attempts + d + 1
	b := logic.NewBuilder()
	fe := newFrameEnv(b, sys)
	fe.initFrame0(freeInit)
	if err := fe.unroll(n); err != nil {
		return nil, err
	}
	le := ltl.NewLassoEval(fe.ev, n, n-1)
	total := logic.False
	for p := 0; p < attempts; p++ {
		v, err := violation(fe, le, f, abort, p, d, false)
		if err != nil {
			return nil, err
		}
		total = b.Or(total, v)
	}
	asm, err := assumeConstraint(le, assumes, n)
	if err != nil {
		return nil, err
	}
	s := sat.New()
	if opt.Budget > 0 {
		s.SetBudget(opt.Budget)
	}
	cnf := logic.NewCNF(b, s)
	cnf.Assert(b.And(total, asm))
	ok, model, err := s.SolveModel()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return decodeCex(sys, fe, cnf, model, n, -1), nil
}

func oracleInductionStep(sys *rtl.System, f ltl.Formula, abort sva.Expr, assumes []ltl.Formula, k, d int, opt Options) (bool, error) {
	n := k + d + 2
	b := logic.NewBuilder()
	fe := newFrameEnv(b, sys)
	fe.initFrame0(true)
	if err := fe.unroll(n); err != nil {
		return false, err
	}
	le := ltl.NewLassoEval(fe.ev, n, n-1)
	s := sat.New()
	if opt.Budget > 0 {
		s.SetBudget(opt.Budget)
	}
	cnf := logic.NewCNF(b, s)
	asm, err := assumeConstraint(le, assumes, n)
	if err != nil {
		return false, err
	}
	cnf.Assert(asm)
	for p := 0; p < k; p++ {
		v, err := violation(fe, le, f, abort, p, d, false)
		if err != nil {
			return false, err
		}
		cnf.Assert(v.Not())
	}
	v, err := violation(fe, le, f, abort, k, d, false)
	if err != nil {
		return false, err
	}
	cnf.Assert(v)
	okSat, err := s.Solve()
	if err != nil {
		return false, err
	}
	return !okSat, nil
}

func oracleCheckSafety(sys *rtl.System, f ltl.Formula, abort sva.Expr, assumes []ltl.Formula, opt Options) (Result, error) {
	d := ltl.Depth(f)
	for k := 1; k <= opt.MaxInduction; k++ {
		cex, err := oracleSafetyQuery(sys, f, abort, assumes, k, d, false, opt)
		if err != nil {
			return Result{}, err
		}
		if cex != nil {
			return Result{Status: Falsified, Depth: k, Cex: cex}, nil
		}
		ind, err := oracleInductionStep(sys, f, abort, assumes, k, d, opt)
		if err != nil {
			return Result{}, err
		}
		if ind {
			return Result{Status: Proven, Depth: k}, nil
		}
	}
	cex, err := oracleSafetyQuery(sys, f, abort, assumes, opt.BMCDepth, d, false, opt)
	if err != nil {
		return Result{}, err
	}
	if cex != nil {
		return Result{Status: Falsified, Depth: opt.BMCDepth, Cex: cex}, nil
	}
	return Result{Status: Unknown, Depth: opt.BMCDepth}, nil
}

// oracleCheckAssertion mirrors CheckAssertion through the oracle for
// safety properties (liveness is unchanged by the refactor).
func oracleCheckAssertion(sys *rtl.System, a *sva.Assertion, opt Options) (Result, error) {
	opt = opt.withDefaults()
	f, err := ltl.LowerAssertion(a)
	if err != nil {
		return Result{}, err
	}
	var abort sva.Expr
	if a.DisableIff != nil {
		abort = a.DisableIff
	}
	assumes, err := lowerAssumes(sys)
	if err != nil {
		return Result{}, err
	}
	if ltl.HasUnbounded(f) {
		return checkLiveness(sys, f, abort, assumes, opt)
	}
	return oracleCheckSafety(sys, f, abort, assumes, opt)
}

func TestIncrementalSafetyMatchesOneShotOracle(t *testing.T) {
	sys := fsmSystem(t)
	cases := []string{
		// proven by induction
		`assert property (@(posedge clk) disable iff (!reset_)
			state == 2'b10 |-> (next_state == 2'b00 || next_state == 2'b01));`,
		`assert property (@(posedge clk) fsm_out == state);`,
		`assert property (@(posedge clk) disable iff (!reset_)
			state == 2'b00 |-> ##1 state == 2'b10);`,
		// falsified at various depths
		`assert property (@(posedge clk) disable iff (!reset_)
			state == 2'b10 |-> ##1 state == 2'b11);`,
		`assert property (@(posedge clk) disable iff (!reset_)
			state != 2'b11);`,
		`assert property (@(posedge clk) disable iff (!reset_)
			state == 2'b10 |-> in_A == in_B);`,
		// deeper falsification: S3 unreachable before three steps
		`assert property (@(posedge clk) disable iff (!reset_)
			##3 state != 2'b11);`,
	}
	for _, src := range cases {
		a, err := sva.ParseAssertion(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		got, err1 := CheckAssertion(sys, a, Options{})
		want, err2 := oracleCheckAssertion(sys, a, Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error disagreement: incremental=%v oracle=%v", src, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if got.Status != want.Status || got.Depth != want.Depth {
			t.Fatalf("%s: incremental (%v, depth %d) vs oracle (%v, depth %d)",
				src, got.Status, got.Depth, want.Status, want.Depth)
		}
	}
}
