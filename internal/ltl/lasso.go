package ltl

import (
	"fveval/internal/bitvec"
	"fveval/internal/logic"
)

// LassoEval computes the truth of LTL formulas over a (K, L)-lasso: an
// ultimately periodic trace with positions 0..K-1 where position K-1
// loops back to position L. Every infinite ultimately periodic word
// whose prefix+period fits in K positions is representable; over free
// signals this family is counterexample-complete for the bounded-depth
// properties in the benchmark (see DESIGN.md §4).
type LassoEval struct {
	Ev   *ExprEval
	K, L int

	// memo is keyed by formula, then indexed by position (positions on
	// a (K, L)-lasso are always < K): one interface-hash per Truth call
	// and a dense slice behind it.
	memo map[Formula][]logic.Node
}

// NewLassoEval constructs an evaluator for a (K, L)-lasso.
func NewLassoEval(ev *ExprEval, k, l int) *LassoEval {
	if l < 0 || l >= k {
		panic("ltl: loop position out of range")
	}
	return &LassoEval{Ev: ev, K: k, L: l, memo: map[Formula][]logic.Node{}}
}

func (le *LassoEval) succ(i int) int {
	if i < le.K-1 {
		return i + 1
	}
	return le.L
}

func (le *LassoEval) advance(i, n int) int {
	for ; n > 0; n-- {
		i = le.succ(i)
	}
	return i
}

// reach returns the positions reachable from i (i..K-1 plus the loop).
func (le *LassoEval) reach(i int) []int {
	var out []int
	seen := make([]bool, le.K)
	for j := i; j < le.K; j++ {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	for j := le.L; j < le.K; j++ {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// path returns the walk i, i+1, ..., K-1, L, ..., K-1 (one loop wrap;
// sufficient for until, see the package comment).
func (le *LassoEval) path(i int) []int {
	var out []int
	for j := i; j < le.K; j++ {
		out = append(out, j)
	}
	for j := le.L; j < le.K; j++ {
		out = append(out, j)
	}
	return out
}

// Truth returns the circuit node representing "f holds at position
// pos" on this lasso.
func (le *LassoEval) Truth(f Formula, pos int) (logic.Node, error) {
	m := le.memo[f]
	if m == nil {
		m = make([]logic.Node, le.K)
		for i := range m {
			m[i] = noNode
		}
		le.memo[f] = m
	}
	if pos < len(m) && m[pos] != noNode {
		return m[pos], nil
	}
	n, err := le.truth(f, pos)
	if err != nil {
		return logic.False, err
	}
	if pos < len(m) {
		m[pos] = n
	}
	return n, nil
}

func (le *LassoEval) truth(f Formula, pos int) (logic.Node, error) {
	b := le.Ev.Ops.B
	switch v := f.(type) {
	case *FConst:
		if v.V {
			return logic.True, nil
		}
		return logic.False, nil
	case *FAtom:
		return le.Ev.Bool(v.E, pos)
	case *FNot:
		n, err := le.Truth(v.F, pos)
		if err != nil {
			return logic.False, err
		}
		return n.Not(), nil
	case *FAnd:
		l, err := le.Truth(v.L, pos)
		if err != nil {
			return logic.False, err
		}
		r, err := le.Truth(v.R, pos)
		if err != nil {
			return logic.False, err
		}
		return b.And(l, r), nil
	case *FOr:
		l, err := le.Truth(v.L, pos)
		if err != nil {
			return logic.False, err
		}
		r, err := le.Truth(v.R, pos)
		if err != nil {
			return logic.False, err
		}
		return b.Or(l, r), nil
	case *FNext:
		return le.Truth(v.F, le.advance(pos, v.N))
	case *FGlobally:
		acc := logic.True
		for _, j := range le.reach(pos) {
			n, err := le.Truth(v.F, j)
			if err != nil {
				return logic.False, err
			}
			acc = b.And(acc, n)
		}
		return acc, nil
	case *FEventually:
		acc := logic.False
		for _, j := range le.reach(pos) {
			n, err := le.Truth(v.F, j)
			if err != nil {
				return logic.False, err
			}
			acc = b.Or(acc, n)
		}
		return acc, nil
	case *FUntil:
		// OR over the walk: R holds at step j and L holds at all
		// earlier steps.
		acc := logic.False
		lAcc := logic.True
		for _, j := range le.path(pos) {
			r, err := le.Truth(v.R, j)
			if err != nil {
				return logic.False, err
			}
			acc = b.Or(acc, b.And(lAcc, r))
			l, err := le.Truth(v.L, j)
			if err != nil {
				return logic.False, err
			}
			lAcc = b.And(lAcc, l)
		}
		return acc, nil
	}
	return logic.False, &LowerError{"unknown formula node in lasso evaluation"}
}

// LassoFamily hands out LassoEval instances over one shared evaluator
// (and therefore one shared circuit builder) as a bounded unroll
// grows. Incremental clients ramp the bound K query by query; the
// family memoizes the evaluator for each (K, L) pair, and because all
// evaluators target the same structurally-hashed builder, formula
// cones that are insensitive to the bound collapse to the same gates
// across ramp steps — the CNF layer then emits each gate once.
type LassoFamily struct {
	Ev    *ExprEval
	evals map[[2]int]*LassoEval
}

// NewLassoFamily creates an empty family over the evaluator.
func NewLassoFamily(ev *ExprEval) *LassoFamily {
	return &LassoFamily{Ev: ev, evals: map[[2]int]*LassoEval{}}
}

// At returns the (K, L)-lasso evaluator, creating it on first use.
func (lf *LassoFamily) At(k, l int) *LassoEval {
	key := [2]int{k, l}
	if le, ok := lf.evals[key]; ok {
		return le
	}
	le := NewLassoEval(lf.Ev, k, l)
	lf.evals[key] = le
	return le
}

// TraceEnv is a simple Env over lazily allocated free inputs — the
// environment used for assertion-to-assertion equivalence where every
// referenced signal is an unconstrained input at each trace position.
type TraceEnv struct {
	B      *logic.Builder
	Widths map[string]int
	Consts map[string]ConstVal

	vars map[sigPos]bitvec.BV
}

// ConstVal is a named constant binding.
type ConstVal struct {
	Value uint64
	Width int
}

type sigPos struct {
	name string
	pos  int
}

// NewTraceEnv creates an environment over free per-position signals.
func NewTraceEnv(b *logic.Builder, widths map[string]int, consts map[string]ConstVal) *TraceEnv {
	return &TraceEnv{
		B:      b,
		Widths: widths,
		Consts: consts,
		vars:   map[sigPos]bitvec.BV{},
	}
}

// Signal implements Env.
func (te *TraceEnv) Signal(name string, pos int) (bitvec.BV, error) {
	w, ok := te.Widths[name]
	if !ok {
		return bitvec.BV{}, &ElabError{Reason: "undeclared identifier \"" + name + "\""}
	}
	key := sigPos{name, pos}
	if v, ok := te.vars[key]; ok {
		return v, nil
	}
	v := bitvec.Inputs(te.B, name+"@"+itoa(pos), w)
	te.vars[key] = v
	return v, nil
}

// SignalWidth implements Env.
func (te *TraceEnv) SignalWidth(name string) (int, bool) {
	w, ok := te.Widths[name]
	return w, ok
}

// Constant implements Env.
func (te *TraceEnv) Constant(name string) (uint64, int, bool) {
	c, ok := te.Consts[name]
	return c.Value, c.Width, ok
}

// At returns the already-allocated signal inputs, if any.
func (te *TraceEnv) At(name string, pos int) (bitvec.BV, bool) {
	v, ok := te.vars[sigPos{name, pos}]
	return v, ok
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
