package ltl

import (
	"testing"
	"testing/quick"

	"fveval/internal/bitvec"
	"fveval/internal/logic"
	"fveval/internal/sva"
)

func mustProp(t *testing.T, src string) sva.Property {
	t.Helper()
	p, err := sva.ParseProperty(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

func TestFormulaConstructors(t *testing.T) {
	a := &FAtom{E: &sva.Ident{Name: "a"}}
	if And(True, a) != a || And(a, True) != a {
		t.Errorf("And identity broken")
	}
	if And(False, a) != False || Or(True, a) != True {
		t.Errorf("And/Or dominance broken")
	}
	if Or(False, a) != a {
		t.Errorf("Or identity broken")
	}
	if Not(Not(a)) != a {
		t.Errorf("double negation not collapsed")
	}
	if Next(0, a) != a {
		t.Errorf("Next(0) must be identity")
	}
	n := Next(2, Next(3, a))
	if x, ok := n.(*FNext); !ok || x.N != 5 {
		t.Errorf("nested Next must fuse: %v", n)
	}
}

func TestDepth(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"a", 0},
		{"a |-> ##2 b", 2},
		{"a |=> b", 1},
		{"a ##1 b |-> ##1 c", 2},
		{"a |-> strong(##[0:$] b)", 1},
		{"a until b", 1},
	}
	for _, c := range cases {
		f, err := LowerProperty(mustProp(t, c.src))
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := Depth(f); got != c.want {
			t.Errorf("Depth(%s) = %d, want %d (formula %s)", c.src, got, c.want, f)
		}
	}
}

func TestHasUnboundedAndUsesPast(t *testing.T) {
	f1, _ := LowerProperty(mustProp(t, "a |-> ##2 b"))
	if HasUnbounded(f1) {
		t.Errorf("bounded formula flagged unbounded")
	}
	f2, _ := LowerProperty(mustProp(t, "a |-> s_eventually b"))
	if !HasUnbounded(f2) {
		t.Errorf("eventually not flagged unbounded")
	}
	f3, _ := LowerProperty(mustProp(t, "$rose(a) |-> b"))
	if !UsesPast(f3) {
		t.Errorf("$rose not flagged as past")
	}
	if UsesPast(f1) {
		t.Errorf("plain formula flagged as past")
	}
}

func TestLoweringShapes(t *testing.T) {
	// |=> shifts by one.
	f, err := LowerProperty(mustProp(t, "a |=> b"))
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "(!(a) | X^1(b))" {
		t.Errorf("|=> lowered to %s", f)
	}
	// weak unbounded tail is vacuous.
	f, err = LowerProperty(mustProp(t, "##[1:$] b"))
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := f.(*FConst); !ok || !c.V {
		t.Errorf("weak unbounded tail should lower to true, got %s", f)
	}
	// strong unbounded tail becomes an eventuality.
	f, err = LowerProperty(mustProp(t, "strong(##[0:$] b)"))
	if err != nil {
		t.Fatal(err)
	}
	if !HasUnbounded(f) {
		t.Errorf("strong tail must be unbounded: %s", f)
	}
}

func TestLowerErrors(t *testing.T) {
	bad := []string{
		"(a ##[0:$] b) intersect c", // unbounded in combination
	}
	for _, src := range bad {
		p, err := sva.ParseProperty(src)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := LowerProperty(p); err == nil {
			t.Errorf("%s: expected lowering error", src)
		}
	}
}

func TestSignalNames(t *testing.T) {
	f, err := LowerProperty(mustProp(t, "(a && sig_B) |-> ##1 $past(zz)"))
	if err != nil {
		t.Fatal(err)
	}
	names := SignalNames(f)
	want := []string{"a", "sig_B", "zz"}
	if len(names) != len(want) {
		t.Fatalf("names: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names: %v want %v", names, want)
		}
	}
}

// concreteTraceEval evaluates a lowered formula on a concrete trace by
// building a lasso circuit and evaluating with fixed inputs.
func concreteTraceEval(t *testing.T, src string, trace map[string][]uint64, widths map[string]int, loop int) bool {
	t.Helper()
	b := logic.NewBuilder()
	env := NewTraceEnv(b, widths, nil)
	ev := &ExprEval{Ops: bitvec.Ops{B: b}, Env: env}
	f, err := LowerProperty(mustProp(t, src))
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	var k int
	for _, vals := range trace {
		k = len(vals)
	}
	le := NewLassoEval(ev, k, loop)
	truth, err := le.Truth(f, 0)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	assign := map[logic.Node]bool{}
	for name, vals := range trace {
		for pos, v := range vals {
			bv, err := env.Signal(name, pos)
			if err != nil {
				t.Fatalf("signal %s: %v", name, err)
			}
			for i, bit := range bv.Bits {
				assign[bit] = v&(1<<uint(i)) != 0
			}
		}
	}
	return b.Eval(truth, assign, nil)
}

func TestLassoConcreteSemantics(t *testing.T) {
	w := map[string]int{"a": 1, "b": 1}
	cases := []struct {
		src   string
		trace map[string][]uint64
		loop  int
		want  bool
	}{
		// a |-> ##2 b at position 0
		{"a |-> ##2 b", map[string][]uint64{
			"a": {1, 0, 0, 0}, "b": {0, 0, 1, 0}}, 3, true},
		{"a |-> ##2 b", map[string][]uint64{
			"a": {1, 0, 0, 0}, "b": {0, 1, 0, 0}}, 3, false},
		// vacuous antecedent
		{"a |-> ##2 b", map[string][]uint64{
			"a": {0, 0, 0, 0}, "b": {0, 0, 0, 0}}, 3, true},
		// eventually via loop: b true only inside the loop
		{"s_eventually b", map[string][]uint64{
			"a": {0, 0, 0, 0}, "b": {0, 0, 0, 1}}, 2, true},
		{"s_eventually b", map[string][]uint64{
			"a": {0, 0, 0, 0}, "b": {0, 0, 0, 0}}, 2, false},
		// globally
		{"always a", map[string][]uint64{
			"a": {1, 1, 1, 1}, "b": {0, 0, 0, 0}}, 0, true},
		{"always a", map[string][]uint64{
			"a": {1, 1, 0, 1}, "b": {0, 0, 0, 0}}, 0, false},
		// until: a holds until b
		{"a s_until b", map[string][]uint64{
			"a": {1, 1, 0, 0}, "b": {0, 0, 1, 0}}, 3, true},
		{"a s_until b", map[string][]uint64{
			"a": {1, 0, 0, 0}, "b": {0, 0, 1, 0}}, 3, false},
		// weak until satisfied by G a (loop keeps a true)
		{"a until b", map[string][]uint64{
			"a": {1, 1, 1, 1}, "b": {0, 0, 0, 0}}, 0, true},
		{"a s_until b", map[string][]uint64{
			"a": {1, 1, 1, 1}, "b": {0, 0, 0, 0}}, 0, false},
	}
	for _, c := range cases {
		got := concreteTraceEval(t, c.src, c.trace, w, c.loop)
		if got != c.want {
			t.Errorf("%s on %v loop=%d: got %v want %v", c.src, c.trace, c.loop, got, c.want)
		}
	}
}

func TestQuickBoundedPropertyAgreesWithDirectEval(t *testing.T) {
	// Property: for the bounded pattern a |-> ##d b, the lasso circuit
	// agrees with a direct check on random concrete traces.
	w := map[string]int{"a": 1, "b": 1}
	f := func(av, bv uint8, dRaw uint8) bool {
		d := int(dRaw % 3)
		k := 8
		trace := map[string][]uint64{"a": make([]uint64, k), "b": make([]uint64, k)}
		for i := 0; i < k; i++ {
			trace["a"][i] = uint64((av >> uint(i)) & 1)
			trace["b"][i] = uint64((bv >> uint(i)) & 1)
		}
		src := "a |-> ##" + string(rune('0'+d)) + " b"
		got := concreteTraceEval(t, src, trace, w, k-1)
		want := trace["a"][0] == 0 || trace["b"][d] == 1
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExprEvalWidthsAndConsts(t *testing.T) {
	b := logic.NewBuilder()
	env := NewTraceEnv(b, map[string]int{"x": 4}, map[string]ConstVal{
		"P": {Value: 5, Width: 4},
	})
	ev := &ExprEval{Ops: bitvec.Ops{B: b}, Env: env}
	e, err := sva.ParseExpr("x == P")
	if err != nil {
		t.Fatal(err)
	}
	n, err := ev.Bool(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	bv, _ := env.Signal("x", 0)
	assign := map[logic.Node]bool{}
	for i, bit := range bv.Bits {
		assign[bit] = 5&(1<<uint(i)) != 0
	}
	if !b.Eval(n, assign, nil) {
		t.Errorf("x==P must hold for x=5")
	}
	// $bits is a compile-time constant
	e2, _ := sva.ParseExpr("$bits(x) == 4")
	n2, err := ev.Bool(e2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != logic.True {
		t.Errorf("$bits(x)==4 must fold to true, got %v", n2)
	}
}

func TestUndeclaredIdentifier(t *testing.T) {
	b := logic.NewBuilder()
	env := NewTraceEnv(b, map[string]int{"x": 1}, nil)
	ev := &ExprEval{Ops: bitvec.Ops{B: b}, Env: env}
	e, _ := sva.ParseExpr("ghost")
	if _, err := ev.Bool(e, 0); err == nil {
		t.Fatal("expected elaboration error")
	}
}
