package ltl

import (
	"fmt"

	"fveval/internal/sva"
)

// LowerError reports an SVA construct the formal backend cannot
// elaborate (the equivalent of a tool elaboration error).
type LowerError struct{ Reason string }

func (e *LowerError) Error() string { return "ltl: " + e.Reason }

// maxMatches bounds the sequence match-shape expansion.
const maxMatches = 4096

// match is one way a bounded sequence can match: Cond must hold
// (anchored at the sequence start) and the match ends End positions
// later. End == -1 denotes the empty match.
type match struct {
	End  int
	Cond Formula
}

// LowerProperty lowers an SVA property to the LTL core.
func LowerProperty(p sva.Property) (Formula, error) {
	return lowerProp(p)
}

// LowerAssertion lowers an assertion body. The disable-iff condition is
// not folded in; callers handle abort semantics (see package equiv and
// package mc for the two strategies and their soundness arguments).
func LowerAssertion(a *sva.Assertion) (Formula, error) {
	if a.Body == nil {
		return nil, &LowerError{"assertion has no body"}
	}
	return lowerProp(a.Body)
}

func lowerProp(p sva.Property) (Formula, error) {
	switch v := p.(type) {
	case *sva.PropSeq:
		if v.Strong {
			return strongSeq(v.S)
		}
		return weakSeq(v.S)
	case *sva.PropNot:
		f, err := lowerProp(v.P)
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case *sva.PropBinary:
		l, err := lowerProp(v.L)
		if err != nil {
			return nil, err
		}
		r, err := lowerProp(v.R)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "and":
			return And(l, r), nil
		case "or":
			return Or(l, r), nil
		case "implies":
			return Implies(l, r), nil
		case "iff":
			return Or(And(l, r), And(Not(l), Not(r))), nil
		}
		return nil, &LowerError{fmt.Sprintf("unknown property operator %q", v.Op)}
	case *sva.PropImpl:
		ms, err := seqMatches(v.S)
		if err != nil {
			return nil, err
		}
		cons, err := lowerProp(v.P)
		if err != nil {
			return nil, err
		}
		shift := 0
		if !v.Overlap {
			shift = 1
		}
		acc := True
		for _, m := range ms {
			if m.End < 0 {
				// Empty antecedent matches have no end point to anchor
				// the consequent; they never trigger (IEEE 1800 16.12.6).
				continue
			}
			acc = And(acc, Implies(m.Cond, Next(m.End+shift, cons)))
		}
		return acc, nil
	case *sva.PropIfElse:
		c := atom(v.C)
		then, err := lowerProp(v.Then)
		if err != nil {
			return nil, err
		}
		els := True
		if v.Else != nil {
			els, err = lowerProp(v.Else)
			if err != nil {
				return nil, err
			}
		}
		return And(Implies(c, then), Implies(Not(c), els)), nil
	case *sva.PropAlways:
		f, err := lowerProp(v.P)
		if err != nil {
			return nil, err
		}
		return &FGlobally{F: f}, nil
	case *sva.PropEventually:
		f, err := lowerProp(v.P)
		if err != nil {
			return nil, err
		}
		if !v.Strong {
			return nil, &LowerError{"weak unbounded eventually is not supported"}
		}
		return &FEventually{F: f}, nil
	case *sva.PropNexttime:
		f, err := lowerProp(v.P)
		if err != nil {
			return nil, err
		}
		return Next(1, f), nil
	case *sva.PropUntil:
		l, err := lowerProp(v.L)
		if err != nil {
			return nil, err
		}
		r, err := lowerProp(v.R)
		if err != nil {
			return nil, err
		}
		if v.With {
			// l until_with r: once r occurs, l must hold through that
			// cycle: l U (l & r).
			r = And(l, r)
		}
		u := Formula(&FUntil{L: l, R: r})
		if !v.Strong {
			u = Or(&FGlobally{F: l}, u)
		}
		return u, nil
	}
	return nil, &LowerError{fmt.Sprintf("unknown property node %T", p)}
}

func atom(e sva.Expr) Formula { return &FAtom{E: e} }

// strongSeq lowers a sequence used as a strong property: some match
// must complete.
func strongSeq(s sva.Sequence) (Formula, error) {
	if !hasUnbounded(s) {
		ms, err := seqMatches(s)
		if err != nil {
			return nil, err
		}
		acc := False
		for _, m := range ms {
			acc = Or(acc, m.Cond)
		}
		return acc, nil
	}
	switch v := s.(type) {
	case *sva.SeqDelay:
		if v.D.Inf {
			// prefix ##[a:$] rest  ->  prefix matched, then F(rest)
			// after at least a more cycles.
			rest, err := strongSeq(v.R)
			if err != nil {
				return nil, err
			}
			target := Formula(&FEventually{F: rest})
			if v.L == nil {
				return Next(v.D.Lo, target), nil
			}
			if hasUnbounded(v.L) {
				return nil, &LowerError{"nested unbounded delays are not supported"}
			}
			ms, err := seqMatches(v.L)
			if err != nil {
				return nil, err
			}
			acc := False
			for _, m := range ms {
				acc = Or(acc, And(m.Cond, Next(m.End+v.D.Lo, target)))
			}
			return acc, nil
		}
		// Bounded delay whose operand is unbounded.
		if v.L != nil && hasUnbounded(v.L) {
			return nil, &LowerError{"unbounded sequence on the left of a bounded delay"}
		}
		rest, err := strongSeq(v.R)
		if err != nil {
			return nil, err
		}
		var heads []match
		if v.L == nil {
			heads = []match{{End: 0, Cond: True}}
		} else {
			heads, err = seqMatches(v.L)
			if err != nil {
				return nil, err
			}
		}
		acc := False
		for _, m := range heads {
			for d := v.D.Lo; d <= v.D.Hi; d++ {
				acc = Or(acc, And(m.Cond, Next(m.End+d, rest)))
			}
		}
		return acc, nil
	case *sva.SeqRepeat:
		if v.Inf {
			inner, err := seqMatches(v.S)
			if err != nil {
				return nil, err
			}
			// s[*a:$]: a consecutive repetitions suffice for a
			// (shortest) match.
			if v.Lo == 0 {
				return True, nil
			}
			rep := &sva.SeqRepeat{S: v.S, Lo: v.Lo, Hi: v.Lo}
			_ = inner
			return strongSeq(rep)
		}
		return nil, &LowerError{"unsupported bounded repetition of unbounded sequence"}
	}
	return nil, &LowerError{fmt.Sprintf("unsupported unbounded sequence %s as strong property", s.String())}
}

// weakSeq lowers a sequence used as a weak property: no finite prefix
// may rule out every possible match. On infinite traces an unbounded
// tail can always still arrive, so the weak obligation reduces to the
// bounded prefix of the sequence.
func weakSeq(s sva.Sequence) (Formula, error) {
	if !hasUnbounded(s) {
		return strongSeq(s) // bounded: weak and strong coincide
	}
	switch v := s.(type) {
	case *sva.SeqDelay:
		if v.D.Inf {
			// prefix ##[a:$] rest: only the prefix is ever obligated;
			// the unbounded tail keeps every prefix alive (assuming
			// rest is satisfiable, which elaboration checks for the
			// benchmark's boolean tails).
			if v.L == nil {
				return True, nil
			}
			if hasUnbounded(v.L) {
				return nil, &LowerError{"nested unbounded delays are not supported"}
			}
			ms, err := seqMatches(v.L)
			if err != nil {
				return nil, err
			}
			acc := False
			for _, m := range ms {
				acc = Or(acc, m.Cond)
			}
			return acc, nil
		}
		if v.L != nil && hasUnbounded(v.L) {
			return nil, &LowerError{"unbounded sequence on the left of a bounded delay"}
		}
		rest, err := weakSeq(v.R)
		if err != nil {
			return nil, err
		}
		var heads []match
		if v.L == nil {
			heads = []match{{End: 0, Cond: True}}
		} else {
			heads, err = seqMatches(v.L)
			if err != nil {
				return nil, err
			}
		}
		acc := False
		for _, m := range heads {
			for d := v.D.Lo; d <= v.D.Hi; d++ {
				acc = Or(acc, And(m.Cond, Next(m.End+d, rest)))
			}
		}
		return acc, nil
	case *sva.SeqRepeat:
		if v.Inf {
			if v.Lo == 0 {
				return True, nil
			}
			return weakSeq(&sva.SeqRepeat{S: v.S, Lo: v.Lo, Hi: v.Lo})
		}
		return nil, &LowerError{"unsupported bounded repetition of unbounded sequence"}
	}
	return nil, &LowerError{fmt.Sprintf("unsupported unbounded sequence %s as weak property", s.String())}
}

func hasUnbounded(s sva.Sequence) bool {
	switch v := s.(type) {
	case *sva.SeqExpr:
		return false
	case *sva.SeqDelay:
		if v.D.Inf {
			return true
		}
		if v.L != nil && hasUnbounded(v.L) {
			return true
		}
		return hasUnbounded(v.R)
	case *sva.SeqRepeat:
		return v.Inf || hasUnbounded(v.S)
	case *sva.SeqBinary:
		return hasUnbounded(v.L) || hasUnbounded(v.R)
	case *sva.SeqThroughout:
		return hasUnbounded(v.S)
	case *sva.SeqFirstMatch:
		return hasUnbounded(v.S)
	}
	return false
}

// seqMatches expands a bounded sequence into its finite set of match
// shapes.
func seqMatches(s sva.Sequence) ([]match, error) {
	switch v := s.(type) {
	case *sva.SeqExpr:
		return []match{{End: 0, Cond: atom(v.E)}}, nil
	case *sva.SeqDelay:
		if v.D.Inf {
			return nil, &LowerError{"unbounded delay in bounded context"}
		}
		var left []match
		if v.L == nil {
			// A leading delay ##d anchors the operand exactly d
			// positions ahead: model it as a virtual length-1 head
			// ending at offset 0.
			left = []match{{End: 0, Cond: True}}
		} else {
			var err error
			left, err = seqMatches(v.L)
			if err != nil {
				return nil, err
			}
		}
		right, err := seqMatches(v.R)
		if err != nil {
			return nil, err
		}
		var out []match
		for _, ml := range left {
			for d := v.D.Lo; d <= v.D.Hi; d++ {
				for _, mr := range right {
					start := ml.End + d // start of right match
					if mr.End < 0 {
						// right is empty: composed match keeps left's
						// span, the delay still elapses conceptually
						// but contributes no obligation.
						out = append(out, match{End: ml.End, Cond: ml.Cond})
						continue
					}
					if start < 0 {
						// ##0 against an empty left: right anchors at
						// the sequence start.
						start = 0
					}
					out = append(out, match{
						End:  start + mr.End,
						Cond: And(ml.Cond, Next(start, mr.Cond)),
					})
				}
			}
			if len(out) > maxMatches {
				return nil, &LowerError{"sequence match expansion too large"}
			}
		}
		return dedupe(out), nil
	case *sva.SeqRepeat:
		if v.Inf {
			return nil, &LowerError{"unbounded repetition in bounded context"}
		}
		inner, err := seqMatches(v.S)
		if err != nil {
			return nil, err
		}
		var out []match
		for k := v.Lo; k <= v.Hi; k++ {
			ms, err := repeatK(inner, k)
			if err != nil {
				return nil, err
			}
			out = append(out, ms...)
			if len(out) > maxMatches {
				return nil, &LowerError{"repetition expansion too large"}
			}
		}
		return dedupe(out), nil
	case *sva.SeqBinary:
		left, err := seqMatches(v.L)
		if err != nil {
			return nil, err
		}
		right, err := seqMatches(v.R)
		if err != nil {
			return nil, err
		}
		var out []match
		switch v.Op {
		case "or":
			out = append(append(out, left...), right...)
		case "and":
			for _, ml := range left {
				for _, mr := range right {
					out = append(out, match{
						End:  maxInt(ml.End, mr.End),
						Cond: And(ml.Cond, mr.Cond),
					})
				}
			}
		case "intersect":
			for _, ml := range left {
				for _, mr := range right {
					if ml.End == mr.End {
						out = append(out, match{End: ml.End, Cond: And(ml.Cond, mr.Cond)})
					}
				}
			}
		case "within":
			// L within R: a match of L occurs inside R's span.
			for _, mr := range right {
				for _, ml := range left {
					if ml.End < 0 {
						out = append(out, mr)
						continue
					}
					for off := 0; off+ml.End <= mr.End; off++ {
						out = append(out, match{
							End:  mr.End,
							Cond: And(mr.Cond, Next(off, ml.Cond)),
						})
					}
				}
			}
		default:
			return nil, &LowerError{fmt.Sprintf("unknown sequence operator %q", v.Op)}
		}
		if len(out) > maxMatches {
			return nil, &LowerError{"sequence combination too large"}
		}
		return dedupe(out), nil
	case *sva.SeqThroughout:
		inner, err := seqMatches(v.S)
		if err != nil {
			return nil, err
		}
		var out []match
		for _, m := range inner {
			cond := m.Cond
			for i := 0; i <= m.End; i++ {
				cond = And(cond, Next(i, atom(v.E)))
			}
			out = append(out, match{End: m.End, Cond: cond})
		}
		return out, nil
	case *sva.SeqFirstMatch:
		inner, err := seqMatches(v.S)
		if err != nil {
			return nil, err
		}
		// A match is a first match iff no strictly earlier-ending match
		// also fires.
		var out []match
		for _, m := range inner {
			cond := m.Cond
			for _, other := range inner {
				if other.End < m.End {
					cond = And(cond, Not(other.Cond))
				}
			}
			out = append(out, match{End: m.End, Cond: cond})
		}
		return out, nil
	}
	return nil, &LowerError{fmt.Sprintf("unknown sequence node %T", s)}
}

// repeatK concatenates k copies of the inner match set with ##1 fusion
// between repetitions.
func repeatK(inner []match, k int) ([]match, error) {
	if k == 0 {
		return []match{{End: -1, Cond: True}}, nil
	}
	acc := inner
	for rep := 1; rep < k; rep++ {
		var next []match
		for _, ml := range acc {
			for _, mr := range inner {
				start := ml.End + 1
				if mr.End < 0 {
					next = append(next, ml)
					continue
				}
				if start < 0 {
					start = 0
				}
				next = append(next, match{
					End:  start + mr.End,
					Cond: And(ml.Cond, Next(start, mr.Cond)),
				})
			}
		}
		if len(next) > maxMatches {
			return nil, &LowerError{"repetition expansion too large"}
		}
		acc = next
	}
	return acc, nil
}

func dedupe(ms []match) []match {
	seen := map[string]bool{}
	out := ms[:0]
	for _, m := range ms {
		key := fmt.Sprintf("%d|%s", m.End, m.Cond.String())
		if !seen[key] {
			seen[key] = true
			out = append(out, m)
		}
	}
	return out
}
