// Package ltl lowers SVA properties to a linear temporal logic core and
// evaluates that core symbolically over lasso-shaped traces. Together
// with the sat and logic packages it forms the reasoning engine that
// substitutes for the commercial formal tool in the paper's evaluation
// flow: assertion-to-assertion equivalence (internal/equiv) and
// property proving on RTL (internal/mc) are both built on it.
package ltl

import (
	"fmt"

	"fveval/internal/sva"
)

// Formula is a node of the LTL core. Atoms carry SVA boolean-layer
// expressions which are bit-blasted at evaluation time.
type Formula interface {
	fNode()
	String() string
}

// FTrue and FFalse are the constants.
type FConst struct{ V bool }

// FAtom is a boolean-layer expression evaluated at the current trace
// position ($past/$rose/$fell/$stable/$changed reference the previous
// position).
type FAtom struct{ E sva.Expr }

// FNot negates a formula.
type FNot struct{ F Formula }

// FAnd is conjunction.
type FAnd struct{ L, R Formula }

// FOr is disjunction.
type FOr struct{ L, R Formula }

// FNext advances N positions (N >= 1).
type FNext struct {
	N int
	F Formula
}

// FGlobally is G f.
type FGlobally struct{ F Formula }

// FEventually is strong F f.
type FEventually struct{ F Formula }

// FUntil is l U r (strong). Weak until is expressed as G l OR (l U r).
type FUntil struct{ L, R Formula }

func (*FConst) fNode()      {}
func (*FAtom) fNode()       {}
func (*FNot) fNode()        {}
func (*FAnd) fNode()        {}
func (*FOr) fNode()         {}
func (*FNext) fNode()       {}
func (*FGlobally) fNode()   {}
func (*FEventually) fNode() {}
func (*FUntil) fNode()      {}

func (f *FConst) String() string {
	if f.V {
		return "true"
	}
	return "false"
}
func (f *FAtom) String() string { return f.E.String() }
func (f *FNot) String() string  { return "!(" + f.F.String() + ")" }
func (f *FAnd) String() string {
	return "(" + f.L.String() + " & " + f.R.String() + ")"
}
func (f *FOr) String() string {
	return "(" + f.L.String() + " | " + f.R.String() + ")"
}
func (f *FNext) String() string {
	return fmt.Sprintf("X^%d(%s)", f.N, f.F.String())
}
func (f *FGlobally) String() string   { return "G(" + f.F.String() + ")" }
func (f *FEventually) String() string { return "F(" + f.F.String() + ")" }
func (f *FUntil) String() string {
	return "(" + f.L.String() + " U " + f.R.String() + ")"
}

// True and False are shared constants.
var (
	True  Formula = &FConst{V: true}
	False Formula = &FConst{V: false}
)

// Not returns the negation with light simplification.
func Not(f Formula) Formula {
	switch v := f.(type) {
	case *FConst:
		return &FConst{V: !v.V}
	case *FNot:
		return v.F
	}
	return &FNot{F: f}
}

// And conjoins with constant folding.
func And(l, r Formula) Formula {
	if c, ok := l.(*FConst); ok {
		if c.V {
			return r
		}
		return False
	}
	if c, ok := r.(*FConst); ok {
		if c.V {
			return l
		}
		return False
	}
	return &FAnd{L: l, R: r}
}

// Or disjoins with constant folding.
func Or(l, r Formula) Formula {
	if c, ok := l.(*FConst); ok {
		if c.V {
			return True
		}
		return r
	}
	if c, ok := r.(*FConst); ok {
		if c.V {
			return True
		}
		return l
	}
	return &FOr{L: l, R: r}
}

// Implies returns l -> r.
func Implies(l, r Formula) Formula { return Or(Not(l), r) }

// Next advances a formula by n positions (n == 0 returns f unchanged).
func Next(n int, f Formula) Formula {
	if n == 0 {
		return f
	}
	if c, ok := f.(*FConst); ok {
		return c
	}
	if x, ok := f.(*FNext); ok {
		return &FNext{N: n + x.N, F: x.F}
	}
	return &FNext{N: n, F: f}
}

// AndAll folds And.
func AndAll(fs ...Formula) Formula {
	acc := True
	for _, f := range fs {
		acc = And(acc, f)
	}
	return acc
}

// OrAll folds Or.
func OrAll(fs ...Formula) Formula {
	acc := False
	for _, f := range fs {
		acc = Or(acc, f)
	}
	return acc
}

// Depth returns the bounded temporal depth of the formula: the largest
// finite look-ahead needed before unbounded operators take over. The
// lasso bound is derived from it.
func Depth(f Formula) int {
	switch v := f.(type) {
	case *FConst, *FAtom:
		return 0
	case *FNot:
		return Depth(v.F)
	case *FAnd:
		return maxInt(Depth(v.L), Depth(v.R))
	case *FOr:
		return maxInt(Depth(v.L), Depth(v.R))
	case *FNext:
		return v.N + Depth(v.F)
	case *FGlobally:
		return 1 + Depth(v.F)
	case *FEventually:
		return 1 + Depth(v.F)
	case *FUntil:
		return 1 + maxInt(Depth(v.L), Depth(v.R))
	}
	return 0
}

// HasUnbounded reports whether the formula contains G, F, or U.
func HasUnbounded(f Formula) bool {
	switch v := f.(type) {
	case *FConst, *FAtom:
		return false
	case *FNot:
		return HasUnbounded(v.F)
	case *FAnd:
		return HasUnbounded(v.L) || HasUnbounded(v.R)
	case *FOr:
		return HasUnbounded(v.L) || HasUnbounded(v.R)
	case *FNext:
		return HasUnbounded(v.F)
	case *FGlobally, *FEventually, *FUntil:
		return true
	}
	return false
}

// UsesPast reports whether any atom references the previous position
// ($past/$rose/$fell/$stable/$changed).
func UsesPast(f Formula) bool {
	found := false
	walkAtoms(f, func(a *FAtom) {
		sva.WalkExprs(&sva.PropSeq{S: &sva.SeqExpr{E: a.E}}, func(e sva.Expr) {
			if c, ok := e.(*sva.Call); ok {
				switch c.Name {
				case "$past", "$rose", "$fell", "$stable", "$changed":
					found = true
				}
			}
		})
	})
	return found
}

func walkAtoms(f Formula, fn func(*FAtom)) {
	switch v := f.(type) {
	case *FAtom:
		fn(v)
	case *FNot:
		walkAtoms(v.F, fn)
	case *FAnd:
		walkAtoms(v.L, fn)
		walkAtoms(v.R, fn)
	case *FOr:
		walkAtoms(v.L, fn)
		walkAtoms(v.R, fn)
	case *FNext:
		walkAtoms(v.F, fn)
	case *FGlobally:
		walkAtoms(v.F, fn)
	case *FEventually:
		walkAtoms(v.F, fn)
	case *FUntil:
		walkAtoms(v.L, fn)
		walkAtoms(v.R, fn)
	}
}

// Atoms returns the distinct atom expressions in the formula (by
// printed form).
func Atoms(f Formula) []sva.Expr {
	seen := map[string]bool{}
	var out []sva.Expr
	walkAtoms(f, func(a *FAtom) {
		s := a.E.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, a.E)
		}
	})
	return out
}

// SignalNames returns the sorted identifiers referenced by the formula.
func SignalNames(f Formula) []string {
	set := map[string]bool{}
	walkAtoms(f, func(a *FAtom) {
		collectIdents(a.E, set)
	})
	var names []string
	for n := range set {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func collectIdents(e sva.Expr, set map[string]bool) {
	switch v := e.(type) {
	case *sva.Ident:
		set[v.Name] = true
	case *sva.Unary:
		collectIdents(v.X, set)
	case *sva.Binary:
		collectIdents(v.X, set)
		collectIdents(v.Y, set)
	case *sva.Cond:
		collectIdents(v.C, set)
		collectIdents(v.T, set)
		collectIdents(v.E, set)
	case *sva.Call:
		for _, a := range v.Args {
			collectIdents(a, set)
		}
	case *sva.Concat:
		for _, p := range v.Parts {
			collectIdents(p, set)
		}
	case *sva.Repl:
		collectIdents(v.Count, set)
		collectIdents(v.Value, set)
	case *sva.Index:
		collectIdents(v.X, set)
		collectIdents(v.Idx, set)
	case *sva.Select:
		collectIdents(v.X, set)
		collectIdents(v.Hi, set)
		collectIdents(v.Lo, set)
	case *sva.WidthCast:
		collectIdents(v.X, set)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
