package ltl

import (
	"fmt"

	"fveval/internal/bitvec"
	"fveval/internal/logic"
	"fveval/internal/sva"
)

// Env resolves names during bit-blasting.
type Env interface {
	// Signal returns the symbolic value of a signal at a trace
	// position. Positions are non-negative; the evaluator handles
	// pre-trace references itself.
	Signal(name string, pos int) (bitvec.BV, error)
	// SignalWidth returns the declared width of a signal.
	SignalWidth(name string) (int, bool)
	// Constant resolves a named parameter/constant.
	Constant(name string) (val uint64, width int, ok bool)
}

// ElabError reports a name-resolution or typing failure — the
// equivalent of a tool elaboration error (counted against the Syntax
// metric in the paper's flow).
type ElabError struct{ Reason string }

func (e *ElabError) Error() string { return "ltl: elaboration: " + e.Reason }

// ExprEval bit-blasts boolean-layer SVA expressions. Results are
// memoized per (expression, position): the boolean layer is
// loop-structure-independent, so one evaluator shared by a family of
// lasso evaluators (or a deepening frame unroll) elaborates each atom
// instance once instead of once per loop shape or depth.
type ExprEval struct {
	Ops bitvec.Ops
	Env Env

	// Memos are keyed by expression, then indexed by position: one
	// interface-hash per call instead of hashing an (expr, pos) pair,
	// and far fewer map entries. noNode marks empty bool slots; a nil
	// Bits slice marks empty vector slots (a miss there merely
	// recomputes).
	boolMemo map[sva.Expr][]logic.Node
	evalMemo map[sva.Expr][]bitvec.BV
}

// noNode is the empty-slot sentinel of the position-indexed memos
// (never a valid node reference).
const noNode = logic.Node(-1)

// growNodes returns s extended to hold index pos, filling with noNode.
func growNodes(s []logic.Node, pos int) []logic.Node {
	for len(s) <= pos {
		s = append(s, noNode)
	}
	return s
}

// Bool evaluates an expression at a position and reduces it to its
// truth value.
func (ev *ExprEval) Bool(e sva.Expr, pos int) (logic.Node, error) {
	m := ev.boolMemo[e]
	if pos < len(m) && m[pos] != noNode {
		return m[pos], nil
	}
	v, err := ev.eval(e, pos, 0)
	if err != nil {
		return logic.False, err
	}
	n := ev.Ops.Bool(v)
	if ev.boolMemo == nil {
		ev.boolMemo = map[sva.Expr][]logic.Node{}
	}
	m = growNodes(m, pos)
	m[pos] = n
	ev.boolMemo[e] = m
	return n, nil
}

// Eval evaluates an expression at a position to a bit-vector.
func (ev *ExprEval) Eval(e sva.Expr, pos int) (bitvec.BV, error) {
	m := ev.evalMemo[e]
	if pos < len(m) && m[pos].Bits != nil {
		return m[pos], nil
	}
	v, err := ev.eval(e, pos, 0)
	if err != nil {
		return bitvec.BV{}, err
	}
	if ev.evalMemo == nil {
		ev.evalMemo = map[sva.Expr][]bitvec.BV{}
	}
	for len(m) <= pos {
		m = append(m, bitvec.BV{})
	}
	m[pos] = v
	ev.evalMemo[e] = m
	return v, nil
}

// Width computes the self-determined width of an expression; elastic
// fill literals report 0.
func (ev *ExprEval) Width(e sva.Expr) (int, error) {
	switch v := e.(type) {
	case *sva.Ident:
		if w, ok := ev.Env.SignalWidth(v.Name); ok {
			return w, nil
		}
		if _, w, ok := ev.Env.Constant(v.Name); ok {
			if w == 0 {
				return 32, nil
			}
			return w, nil
		}
		return 0, &ElabError{fmt.Sprintf("undeclared identifier %q", v.Name)}
	case *sva.Num:
		if v.Fill {
			return 0, nil
		}
		if v.Width > 0 {
			return v.Width, nil
		}
		return 32, nil
	case *sva.Unary:
		switch v.Op {
		case "!", "&", "|", "^", "~&", "~|", "~^", "^~":
			return 1, nil
		}
		return ev.Width(v.X)
	case *sva.Binary:
		switch v.Op {
		case "&&", "||", "==", "!=", "===", "!==", "<", "<=", ">", ">=":
			return 1, nil
		case "<<", ">>", "<<<", ">>>":
			return ev.Width(v.X)
		}
		wx, err := ev.Width(v.X)
		if err != nil {
			return 0, err
		}
		wy, err := ev.Width(v.Y)
		if err != nil {
			return 0, err
		}
		return maxInt(wx, wy), nil
	case *sva.Cond:
		wt, err := ev.Width(v.T)
		if err != nil {
			return 0, err
		}
		we, err := ev.Width(v.E)
		if err != nil {
			return 0, err
		}
		return maxInt(wt, we), nil
	case *sva.Concat:
		total := 0
		for _, p := range v.Parts {
			w, err := ev.Width(p)
			if err != nil {
				return 0, err
			}
			if w == 0 {
				return 0, &ElabError{"fill literal not allowed in concatenation"}
			}
			total += w
		}
		return total, nil
	case *sva.Repl:
		n, ok := ev.constVal(v.Count)
		if !ok {
			return 0, &ElabError{"replication count must be constant"}
		}
		w, err := ev.Width(v.Value)
		if err != nil {
			return 0, err
		}
		return int(n) * w, nil
	case *sva.Index:
		return 1, nil
	case *sva.Select:
		hi, ok1 := ev.constVal(v.Hi)
		lo, ok2 := ev.constVal(v.Lo)
		if !ok1 || !ok2 {
			return 0, &ElabError{"part-select bounds must be constant"}
		}
		if hi < lo {
			return 0, &ElabError{"part-select bounds reversed"}
		}
		return int(hi-lo) + 1, nil
	case *sva.WidthCast:
		return v.W, nil
	case *sva.Call:
		switch v.Name {
		case "$onehot", "$onehot0", "$rose", "$fell", "$stable", "$changed", "$isunknown":
			return 1, nil
		case "$bits", "$clog2":
			return 32, nil
		case "$countones":
			w, err := ev.Width(v.Args[0])
			if err != nil {
				return 0, err
			}
			c := 1
			for (1 << uint(c)) <= w {
				c++
			}
			return c, nil
		case "$past":
			return ev.Width(v.Args[0])
		}
		return 0, &ElabError{fmt.Sprintf("unknown system function %q", v.Name)}
	}
	return 0, &ElabError{fmt.Sprintf("unknown expression node %T", e)}
}

// constVal evaluates a compile-time constant expression.
func (ev *ExprEval) constVal(e sva.Expr) (uint64, bool) {
	switch v := e.(type) {
	case *sva.Num:
		if v.Fill {
			return 0, false
		}
		return v.Value, true
	case *sva.Ident:
		if val, _, ok := ev.Env.Constant(v.Name); ok {
			return val, true
		}
		return 0, false
	case *sva.Unary:
		x, ok := ev.constVal(v.X)
		if !ok {
			return 0, false
		}
		switch v.Op {
		case "-":
			return -x, true
		case "+":
			return x, true
		case "~":
			return ^x, true
		case "!":
			if x == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *sva.Binary:
		x, ok1 := ev.constVal(v.X)
		y, ok2 := ev.constVal(v.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch v.Op {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		case "/":
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case "%":
			if y == 0 {
				return 0, false
			}
			return x % y, true
		case "<<":
			return x << (y & 63), true
		case ">>":
			return x >> (y & 63), true
		}
		return 0, false
	case *sva.Call:
		if v.Name == "$clog2" && len(v.Args) == 1 {
			if x, ok := ev.constVal(v.Args[0]); ok {
				return uint64(clog2(x)), true
			}
		}
		if v.Name == "$bits" && len(v.Args) == 1 {
			if w, err := ev.Width(v.Args[0]); err == nil && w > 0 {
				return uint64(w), true
			}
		}
		return 0, false
	}
	return 0, false
}

func clog2(x uint64) int {
	n := 0
	for (uint64(1) << uint(n)) < x {
		n++
	}
	return n
}

// eval evaluates at a position; hint is the context width for elastic
// fill literals (0 if none).
func (ev *ExprEval) eval(e sva.Expr, pos int, hint int) (bitvec.BV, error) {
	o := ev.Ops
	switch v := e.(type) {
	case *sva.Ident:
		if _, ok := ev.Env.SignalWidth(v.Name); ok {
			return ev.signalAt(v.Name, pos)
		}
		if val, w, ok := ev.Env.Constant(v.Name); ok {
			if w == 0 {
				w = 32
			}
			return bitvec.Const(val, w), nil
		}
		return bitvec.BV{}, &ElabError{fmt.Sprintf("undeclared identifier %q", v.Name)}
	case *sva.Num:
		if v.Fill {
			w := hint
			if w == 0 {
				w = 1
			}
			return bitvec.Const(v.Value, w), nil
		}
		w := v.Width
		if w == 0 {
			w = 32
			if hint > 32 {
				w = hint
			}
		}
		return bitvec.Const(v.Value, w), nil
	case *sva.Unary:
		switch v.Op {
		case "!":
			x, err := ev.eval(v.X, pos, 0)
			if err != nil {
				return bitvec.BV{}, err
			}
			return bitvec.FromBool(o.Bool(x).Not()), nil
		case "~":
			x, err := ev.eval(v.X, pos, hint)
			if err != nil {
				return bitvec.BV{}, err
			}
			return o.Not(x), nil
		case "-":
			x, err := ev.eval(v.X, pos, hint)
			if err != nil {
				return bitvec.BV{}, err
			}
			return o.Neg(x), nil
		case "+":
			return ev.eval(v.X, pos, hint)
		case "&":
			return ev.reduction(v.X, pos, o.RedAnd)
		case "|":
			return ev.reduction(v.X, pos, o.RedOr)
		case "^":
			return ev.reduction(v.X, pos, o.RedXor)
		case "~&":
			return ev.reductionNot(v.X, pos, o.RedAnd)
		case "~|":
			return ev.reductionNot(v.X, pos, o.RedOr)
		case "~^", "^~":
			return ev.reductionNot(v.X, pos, o.RedXor)
		}
		return bitvec.BV{}, &ElabError{fmt.Sprintf("unknown unary operator %q", v.Op)}
	case *sva.Binary:
		return ev.evalBinary(v, pos, hint)
	case *sva.Cond:
		c, err := ev.Bool(v.C, pos)
		if err != nil {
			return bitvec.BV{}, err
		}
		t, err2 := ev.eval(v.T, pos, hint)
		if err2 != nil {
			return bitvec.BV{}, err2
		}
		f, err3 := ev.eval(v.E, pos, hint)
		if err3 != nil {
			return bitvec.BV{}, err3
		}
		return o.Mux(c, t, f), nil
	case *sva.Concat:
		var parts []bitvec.BV
		for _, p := range v.Parts {
			b, err := ev.eval(p, pos, 0)
			if err != nil {
				return bitvec.BV{}, err
			}
			parts = append(parts, b)
		}
		return o.Concat(parts...), nil
	case *sva.Repl:
		n, ok := ev.constVal(v.Count)
		if !ok {
			return bitvec.BV{}, &ElabError{"replication count must be constant"}
		}
		b, err := ev.eval(v.Value, pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		return o.Replicate(b, int(n)), nil
	case *sva.Index:
		x, err := ev.eval(v.X, pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		if idx, ok := ev.constVal(v.Idx); ok {
			if int(idx) >= x.Width() {
				return bitvec.Const(0, 1), nil
			}
			return bitvec.BV{Bits: x.Bits[idx : idx+1]}, nil
		}
		iv, err := ev.eval(v.Idx, pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		return bitvec.FromBool(o.Index(x, iv)), nil
	case *sva.Select:
		x, err := ev.eval(v.X, pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		hi, ok1 := ev.constVal(v.Hi)
		lo, ok2 := ev.constVal(v.Lo)
		if !ok1 || !ok2 {
			return bitvec.BV{}, &ElabError{"part-select bounds must be constant"}
		}
		return o.Extract(x, int(hi), int(lo)), nil
	case *sva.WidthCast:
		x, err := ev.eval(v.X, pos, v.W)
		if err != nil {
			return bitvec.BV{}, err
		}
		return x.Extend(v.W), nil
	case *sva.Call:
		return ev.evalCall(v, pos)
	}
	return bitvec.BV{}, &ElabError{fmt.Sprintf("unknown expression node %T", e)}
}

func (ev *ExprEval) reduction(x sva.Expr, pos int, f func(bitvec.BV) logic.Node) (bitvec.BV, error) {
	b, err := ev.eval(x, pos, 0)
	if err != nil {
		return bitvec.BV{}, err
	}
	return bitvec.FromBool(f(b)), nil
}

func (ev *ExprEval) reductionNot(x sva.Expr, pos int, f func(bitvec.BV) logic.Node) (bitvec.BV, error) {
	b, err := ev.eval(x, pos, 0)
	if err != nil {
		return bitvec.BV{}, err
	}
	return bitvec.FromBool(f(b).Not()), nil
}

func (ev *ExprEval) evalBinary(v *sva.Binary, pos int, hint int) (bitvec.BV, error) {
	o := ev.Ops
	switch v.Op {
	case "&&", "||":
		x, err := ev.Bool(v.X, pos)
		if err != nil {
			return bitvec.BV{}, err
		}
		y, err := ev.Bool(v.Y, pos)
		if err != nil {
			return bitvec.BV{}, err
		}
		if v.Op == "&&" {
			return bitvec.FromBool(o.B.And(x, y)), nil
		}
		return bitvec.FromBool(o.B.Or(x, y)), nil
	case "==", "!=", "===", "!==", "<", "<=", ">", ">=":
		x, y, err := ev.evalPair(v.X, v.Y, pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		var n logic.Node
		switch v.Op {
		case "==", "===":
			n = o.Eq(x, y)
		case "!=", "!==":
			n = o.Ne(x, y)
		case "<":
			n = o.Ult(x, y)
		case "<=":
			n = o.Ule(x, y)
		case ">":
			n = o.Ult(y, x)
		case ">=":
			n = o.Ule(y, x)
		}
		return bitvec.FromBool(n), nil
	case "<<", ">>", "<<<", ">>>":
		x, err := ev.eval(v.X, pos, hint)
		if err != nil {
			return bitvec.BV{}, err
		}
		if amt, ok := ev.constVal(v.Y); ok {
			switch v.Op {
			case "<<", "<<<":
				return o.ShlConst(x, int(amt)), nil
			case ">>":
				return o.ShrConst(x, int(amt)), nil
			default: // >>>
				return o.AshrConst(x, int(amt)), nil
			}
		}
		y, err := ev.eval(v.Y, pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		switch v.Op {
		case "<<", "<<<":
			return o.Shl(x, y), nil
		case ">>":
			return o.Shr(x, y), nil
		default:
			return o.Ashr(x, y), nil
		}
	case "+", "-", "*", "&", "|", "^", "~^", "^~":
		x, y, err := ev.evalPair(v.X, v.Y, pos, hint)
		if err != nil {
			return bitvec.BV{}, err
		}
		switch v.Op {
		case "+":
			return o.Add(x, y), nil
		case "-":
			return o.Sub(x, y), nil
		case "*":
			return o.Mul(x, y), nil
		case "&":
			return o.And(x, y), nil
		case "|":
			return o.Or(x, y), nil
		case "^":
			return o.Xor(x, y), nil
		default: // ~^ ^~
			return o.Xnor(x, y), nil
		}
	case "%", "/":
		// Supported only with constant divisor (the benchmark uses
		// $countones(x) % 2 forms).
		x, err := ev.eval(v.X, pos, hint)
		if err != nil {
			return bitvec.BV{}, err
		}
		d, ok := ev.constVal(v.Y)
		if !ok || d == 0 {
			return bitvec.BV{}, &ElabError{"division/modulo requires nonzero constant divisor"}
		}
		if v.Op == "%" {
			if d&(d-1) == 0 {
				// power of two: mask
				k := clog2(d)
				return o.And(x, bitvec.Const(d-1, x.Width())).Extend(maxInt(k, 1)), nil
			}
			return ev.modConst(x, d)
		}
		if d&(d-1) == 0 {
			return o.ShrConst(x, clog2(d)), nil
		}
		return bitvec.BV{}, &ElabError{"division by non-power-of-two constant unsupported"}
	}
	return bitvec.BV{}, &ElabError{fmt.Sprintf("unknown binary operator %q", v.Op)}
}

// modConst computes x % d for small constant d by conditional
// subtraction over the value range.
func (ev *ExprEval) modConst(x bitvec.BV, d uint64) (bitvec.BV, error) {
	if x.Width() > 16 {
		return bitvec.BV{}, &ElabError{"modulo by non-power-of-two on wide operand unsupported"}
	}
	o := ev.Ops
	res := bitvec.Const(0, x.Width())
	for v := uint64(0); v < (uint64(1) << uint(x.Width())); v++ {
		sel := o.Eq(x, bitvec.Const(v, x.Width()))
		res = o.Mux(sel, bitvec.Const(v%d, x.Width()), res)
	}
	return res, nil
}

// evalPair evaluates two operands at a common width, resolving elastic
// fill literals against the sibling operand.
func (ev *ExprEval) evalPair(xe, ye sva.Expr, pos int, hint int) (bitvec.BV, bitvec.BV, error) {
	wx, errX := ev.Width(xe)
	if errX != nil {
		return bitvec.BV{}, bitvec.BV{}, errX
	}
	wy, errY := ev.Width(ye)
	if errY != nil {
		return bitvec.BV{}, bitvec.BV{}, errY
	}
	w := maxInt(maxInt(wx, wy), hint)
	if w == 0 {
		w = 1
	}
	x, err := ev.eval(xe, pos, w)
	if err != nil {
		return bitvec.BV{}, bitvec.BV{}, err
	}
	y, err := ev.eval(ye, pos, w)
	if err != nil {
		return bitvec.BV{}, bitvec.BV{}, err
	}
	return x.Extend(w), y.Extend(w), nil
}

func (ev *ExprEval) evalCall(v *sva.Call, pos int) (bitvec.BV, error) {
	o := ev.Ops
	switch v.Name {
	case "$countones":
		x, err := ev.eval(v.Args[0], pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		return o.CountOnes(x), nil
	case "$onehot":
		x, err := ev.eval(v.Args[0], pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		return bitvec.FromBool(o.OneHot(x)), nil
	case "$onehot0":
		x, err := ev.eval(v.Args[0], pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		return bitvec.FromBool(o.OneHot0(x)), nil
	case "$isunknown":
		// two-state semantics: never unknown
		return bitvec.Const(0, 1), nil
	case "$bits":
		w, err := ev.Width(v.Args[0])
		if err != nil {
			return bitvec.BV{}, err
		}
		return bitvec.Const(uint64(w), 32), nil
	case "$clog2":
		x, ok := ev.constVal(v.Args[0])
		if !ok {
			return bitvec.BV{}, &ElabError{"$clog2 requires a constant argument"}
		}
		return bitvec.Const(uint64(clog2(x)), 32), nil
	case "$past":
		n := 1
		if len(v.Args) == 2 {
			c, ok := ev.constVal(v.Args[1])
			if !ok {
				return bitvec.BV{}, &ElabError{"$past depth must be constant"}
			}
			n = int(c)
		}
		if pos-n < 0 {
			w, err := ev.Width(v.Args[0])
			if err != nil {
				return bitvec.BV{}, err
			}
			if w == 0 {
				w = 1
			}
			return bitvec.Const(0, w), nil
		}
		return ev.eval(v.Args[0], pos-n, 0)
	case "$rose", "$fell", "$stable", "$changed":
		cur, err := ev.eval(v.Args[0], pos, 0)
		if err != nil {
			return bitvec.BV{}, err
		}
		var prev bitvec.BV
		if pos-1 < 0 {
			prev = bitvec.Const(0, cur.Width())
		} else {
			prev, err = ev.eval(v.Args[0], pos-1, 0)
			if err != nil {
				return bitvec.BV{}, err
			}
		}
		switch v.Name {
		case "$rose":
			// LSB transition 0 -> 1
			return bitvec.FromBool(o.B.And(cur.Bits[0], prev.Bits[0].Not())), nil
		case "$fell":
			return bitvec.FromBool(o.B.And(cur.Bits[0].Not(), prev.Bits[0])), nil
		case "$stable":
			return bitvec.FromBool(o.Eq(cur, prev)), nil
		default: // $changed
			return bitvec.FromBool(o.Ne(cur, prev)), nil
		}
	}
	return bitvec.BV{}, &ElabError{fmt.Sprintf("unknown system function %q", v.Name)}
}

func (ev *ExprEval) signalAt(name string, pos int) (bitvec.BV, error) {
	if pos < 0 {
		w, ok := ev.Env.SignalWidth(name)
		if !ok {
			return bitvec.BV{}, &ElabError{fmt.Sprintf("undeclared identifier %q", name)}
		}
		return bitvec.Const(0, w), nil
	}
	return ev.Env.Signal(name, pos)
}
