package task

import (
	"encoding/json"
	"fmt"
	"strings"

	"fveval/internal/core"
)

// Report is the unified result of any task run: a superset of the
// three legacy report shapes (core.ModelReport, core.PassKReport,
// core.DesignReport), all of which project out of it losslessly. It
// round-trips through JSON, so runs can be served, archived, and
// re-rendered without re-evaluating.
type Report struct {
	// Task names the registry entry that produced this report.
	Task  string `json:"task"`
	Title string `json:"title,omitempty"`
	// Table / Figure tie the report to the paper artifact (0 = none).
	Table  int  `json:"table,omitempty"`
	Figure int  `json:"figure,omitempty"`
	Kind   Kind `json:"kind"`
	// Params echoes the fully resolved parameters of the run.
	Params Params `json:"params"`
	// Groups carries per-model result rows, one group per sub-setting
	// (shot count, design category; single-setting tasks use one
	// unnamed group). Empty for purely textual artifacts.
	Groups []Group `json:"groups,omitempty"`
	// Text is the pre-rendered artifact for static tasks and figures.
	Text string `json:"text,omitempty"`
}

// Group is one sub-setting of a task ("0-shot", "pipeline", ...).
type Group struct {
	Name string `json:"name,omitempty"`
	Rows []Row  `json:"rows"`
}

// Row is the unified per-model result record. Greedy tasks fill the
// mean metrics (Count, Syntax, Func, Partial, BLEU, Outcomes);
// sampled tasks fill Samples and the pass@k maps. The legacy report
// types project out via ModelReport, PassKReport, and DesignReport.
type Row struct {
	Model string `json:"model"`
	// Count is the number of judged outcomes (greedy tasks).
	Count int `json:"count,omitempty"`
	// Samples is n, the samples drawn per instance (sampled tasks).
	Samples int `json:"samples,omitempty"`

	Syntax  float64 `json:"syntax,omitempty"`
	Func    float64 `json:"func,omitempty"`
	Partial float64 `json:"partial,omitempty"`
	BLEU    float64 `json:"bleu,omitempty"`

	SyntaxK  map[int]float64 `json:"syntax_at_k,omitempty"`
	FuncK    map[int]float64 `json:"func_at_k,omitempty"`
	PartialK map[int]float64 `json:"partial_at_k,omitempty"`

	// Outcomes are the per-instance judgments (greedy tasks keep them
	// for downstream analyses such as Figure 6).
	Outcomes []core.Outcome `json:"outcomes,omitempty"`
}

// ---- projections onto the legacy report types ---------------------------

func rowsFromModelReports(rs []core.ModelReport) []Row {
	rows := make([]Row, 0, len(rs))
	for _, r := range rs {
		rows = append(rows, Row{
			Model: r.Model, Count: r.Count,
			Syntax: r.Syntax, Func: r.Func, Partial: r.Partial, BLEU: r.BLEU,
			Outcomes: r.Outcomes,
		})
	}
	return rows
}

func rowsFromPassKReports(rs []core.PassKReport) []Row {
	rows := make([]Row, 0, len(rs))
	for _, r := range rs {
		rows = append(rows, Row{
			Model: r.Model, Samples: r.N,
			SyntaxK: r.SyntaxK, FuncK: r.FuncK, PartialK: r.PartialK,
		})
	}
	return rows
}

func rowsFromDesignReports(rs []core.DesignReport) []Row {
	rows := make([]Row, 0, len(rs))
	for _, r := range rs {
		rows = append(rows, Row{
			Model: r.Model, Samples: r.N,
			SyntaxK: r.SyntaxK, FuncK: r.FuncK,
		})
	}
	return rows
}

// ModelReport projects the row onto the legacy greedy report type.
func (r Row) ModelReport() core.ModelReport {
	return core.ModelReport{
		Model: r.Model, Count: r.Count,
		Syntax: r.Syntax, Func: r.Func, Partial: r.Partial, BLEU: r.BLEU,
		Outcomes: r.Outcomes,
	}
}

// PassKReport projects the row onto the legacy pass@k report type.
func (r Row) PassKReport() core.PassKReport {
	return core.PassKReport{
		Model: r.Model, N: r.Samples,
		SyntaxK: r.SyntaxK, FuncK: r.FuncK, PartialK: r.PartialK,
	}
}

// DesignReport projects the row onto the legacy Design2SVA report
// type; kind is the group name the row came from.
func (r Row) DesignReport(kind string) core.DesignReport {
	return core.DesignReport{
		Model: r.Model, Kind: kind, N: r.Samples,
		SyntaxK: r.SyntaxK, FuncK: r.FuncK,
	}
}

// ModelReports projects every row of the group.
func (g Group) ModelReports() []core.ModelReport {
	out := make([]core.ModelReport, 0, len(g.Rows))
	for _, r := range g.Rows {
		out = append(out, r.ModelReport())
	}
	return out
}

// PassKReports projects every row of the group.
func (g Group) PassKReports() []core.PassKReport {
	out := make([]core.PassKReport, 0, len(g.Rows))
	for _, r := range g.Rows {
		out = append(out, r.PassKReport())
	}
	return out
}

// DesignReports projects every row of the group under its kind.
func (g Group) DesignReports() []core.DesignReport {
	out := make([]core.DesignReport, 0, len(g.Rows))
	for _, r := range g.Rows {
		out = append(out, r.DesignReport(g.Name))
	}
	return out
}

// Group finds a group by name; a missing group projects to empty
// report slices, so renderers degrade instead of panicking.
func (r *Report) Group(name string) Group {
	for _, g := range r.Groups {
		if g.Name == name {
			return g
		}
	}
	return Group{Name: name}
}

// Encode is the canonical wire encoding (indented JSON); the golden
// files under testdata pin this format.
func (r *Report) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// DecodeReport parses a Report previously produced by Encode (or any
// JSON encoding of the type).
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("task: decode report: %w", err)
	}
	return &r, nil
}

// Render produces the paper-layout artifact for the report: the table
// renderers for tables 1–6 (byte-identical to the pre-registry entry
// points on default parameters) and the pre-rendered text for static
// tasks and figures. Non-default parameter sets that the paper
// layouts cannot express (e.g. a single shot setting of Table 3)
// render as one generic block per group.
func (r *Report) Render() string {
	if r.Text != "" {
		return r.Text
	}
	switch r.Table {
	case 1:
		return core.FormatTable1(r.Group("").ModelReports())
	case 2:
		return core.FormatTable2(r.Group("").PassKReports())
	case 3:
		if len(r.Groups) == 2 {
			return core.FormatTable3(r.Groups[0].ModelReports(), r.Groups[1].ModelReports())
		}
		return r.renderGeneric("NL2SVA-Machine")
	case 4:
		return core.FormatTable4(r.Group("").PassKReports())
	case 5:
		if len(r.Groups) == 2 && r.Groups[0].Name == "pipeline" && r.Groups[1].Name == "fsm" {
			return core.FormatTable5(r.Groups[0].DesignReports(), r.Groups[1].DesignReports())
		}
		return r.renderGeneric("Design2SVA")
	}
	return r.renderGeneric(r.Task)
}

// renderGeneric lists every group's rows in the greedy column layout
// (means) or a pass@k layout, for parameterizations outside the
// paper's fixed tables.
func (r *Report) renderGeneric(title string) string {
	var b strings.Builder
	for _, g := range r.Groups {
		if g.Name != "" {
			fmt.Fprintf(&b, "%s (%s)\n", title, g.Name)
		} else {
			b.WriteString(title + "\n")
		}
		sampled := len(g.Rows) > 0 && g.Rows[0].Samples > 0
		if sampled {
			ks := sortedKs(g.Rows)
			fmt.Fprintf(&b, "%-18s", "Model")
			for _, k := range ks {
				fmt.Fprintf(&b, " %9s", fmt.Sprintf("Func.@%d", k))
			}
			b.WriteString("\n")
			for _, row := range g.Rows {
				fmt.Fprintf(&b, "%-18s", row.Model)
				for _, k := range ks {
					fmt.Fprintf(&b, " %9.3f", row.FuncK[k])
				}
				b.WriteString("\n")
			}
		} else {
			fmt.Fprintf(&b, "%-18s %8s %8s %8s %8s\n", "Model", "Syntax", "Func.", "Partial", "BLEU")
			for _, row := range g.Rows {
				fmt.Fprintf(&b, "%-18s %8.3f %8.3f %8.3f %8.3f\n",
					row.Model, row.Syntax, row.Func, row.Partial, row.BLEU)
			}
		}
	}
	return b.String()
}

// renderTableAGR lays out the AGR helper-generation table: one row
// per model, pass@k columns for all three judgment tiers. Syntax =
// the helper set parses and elaborates, Valid = every helper in the
// set is itself proved, Unlock = the stuck target is proved with the
// helpers assumed (the task's headline metric).
func renderTableAGR(p Params, groups []Group) (string, error) {
	var b strings.Builder
	b.WriteString("Table AGR: assertion-guided helper generation, pass@k (sampled decoding)\n")
	b.WriteString("Syntax = helper set compiles; Valid = every helper proved; Unlock = target proved under the helpers\n")
	var rows []Row
	if len(groups) > 0 {
		rows = groups[0].Rows
	}
	ks := p.Ks
	if len(ks) == 0 {
		ks = sortedKs(rows)
	}
	fmt.Fprintf(&b, "%-18s", "Model")
	for _, label := range []string{"Syn.", "Valid", "Unlock"} {
		for _, k := range ks {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("%s@%d", label, k))
		}
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-18s", row.Model)
		for _, m := range []map[int]float64{row.SyntaxK, row.PartialK, row.FuncK} {
			for _, k := range ks {
				fmt.Fprintf(&b, " %9.3f", m[k])
			}
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// renderFigureR lays out the CEX-guided refinement figure: functional
// pass@k per model and cut-off, one column per refinement retry
// budget ("round=N" groups), so the refinement gain reads across each
// row.
func renderFigureR(p Params, groups []Group) (string, error) {
	var b strings.Builder
	b.WriteString("Figure R: NL2SVA-Machine pass@k vs CEX-guided refinement rounds (3-shot)\n")
	b.WriteString("Each column is a retry budget; failing candidates retry with the formal counterexample in the prompt\n")
	var rows []Row
	if len(groups) > 0 {
		rows = groups[0].Rows
	}
	ks := p.Ks
	if len(ks) == 0 {
		ks = sortedKs(rows)
	}
	fmt.Fprintf(&b, "%-18s %4s", "Model", "k")
	for _, g := range groups {
		fmt.Fprintf(&b, " %9s", g.Name)
	}
	b.WriteString("\n")
	for _, row := range rows {
		for _, k := range ks {
			fmt.Fprintf(&b, "%-18s %4d", row.Model, k)
			for _, g := range groups {
				v := 0.0
				for _, gr := range g.Rows {
					if gr.Model == row.Model {
						v = gr.FuncK[k]
						break
					}
				}
				fmt.Fprintf(&b, " %9.3f", v)
			}
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

func sortedKs(rows []Row) []int {
	seen := map[int]bool{}
	var ks []int
	for _, r := range rows {
		for k := range r.FuncK {
			if !seen[k] {
				seen[k] = true
				ks = append(ks, k)
			}
		}
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j-1] > ks[j]; j-- {
			ks[j-1], ks[j] = ks[j], ks[j-1]
		}
	}
	return ks
}
