package task

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"fveval/internal/engine"
)

// goldenCases pins the unified Report wire format with one task per
// paper table, each on a small deterministic slice. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/task -run TestGolden
type goldenCase struct {
	file    string
	request Request
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"table1_nl2sva_human.json", Request{
			Task:    "nl2sva-human",
			Params:  Params{Models: []string{"gpt-4o"}},
			Options: engine.Config{Limit: 4, Workers: 1},
		}},
		{"table2_nl2sva_human_passk.json", Request{
			Task:    "nl2sva-human-passk",
			Params:  Params{Models: []string{"gpt-4o"}},
			Options: engine.Config{Limit: 3, Samples: 3, Workers: 1},
		}},
		{"table3_nl2sva_machine.json", Request{
			Task:    "nl2sva-machine",
			Params:  Params{Models: []string{"gpt-4o"}, Count: 6},
			Options: engine.Config{Workers: 1},
		}},
		{"table4_nl2sva_machine_passk.json", Request{
			Task:    "nl2sva-machine-passk",
			Params:  Params{Models: []string{"gpt-4o"}, Count: 5},
			Options: engine.Config{Samples: 2, Workers: 1},
		}},
		{"table5_design2sva.json", Request{
			Task:    "design2sva",
			Params:  Params{Models: []string{"gpt-4o"}},
			Options: engine.Config{Limit: 2, Samples: 2, Workers: 1},
		}},
		{"table6_dataset_stats.json", Request{
			Task: "dataset-stats",
		}},
		{"table_agr.json", Request{
			Task:    "agr",
			Params:  Params{Models: []string{"gpt-4o"}},
			Options: engine.Config{Limit: 6, Samples: 4, Workers: 1},
		}},
		{"figure_r_refinement.json", Request{
			Task:    "refinement",
			Params:  Params{Models: []string{"gpt-4o"}, Count: 5, Rounds: []int{0, 2}},
			Options: engine.Config{Samples: 2, Workers: 1},
		}},
	}
}

// TestGoldenReports runs each pinned request and compares the encoded
// unified Report byte-for-byte against its golden file.
func TestGoldenReports(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	e := NewEngine(engine.Config{})
	for _, c := range goldenCases() {
		t.Run(c.file, func(t *testing.T) {
			run, err := e.Run(context.Background(), c.request)
			if err != nil {
				t.Fatal(err)
			}
			got, err := run.Report.Encode()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", c.file)
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", c.file, got, want)
			}
		})
	}
}

// TestGoldenRoundTrip decodes every golden file and re-encodes it,
// demanding byte identity: the unified Report must survive a JSON
// round trip with nothing lost or reshaped.
func TestGoldenRoundTrip(t *testing.T) {
	for _, c := range goldenCases() {
		t.Run(c.file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			rep, err := DecodeReport(data)
			if err != nil {
				t.Fatal(err)
			}
			again, err := rep.Encode()
			if err != nil {
				t.Fatal(err)
			}
			again = append(again, '\n')
			if !bytes.Equal(data, again) {
				t.Errorf("round trip not identical for %s:\n--- decoded+encoded ---\n%s", c.file, again)
			}
			// A decoded report must still render its table.
			if rep.Render() == "" {
				t.Errorf("decoded report renders empty")
			}
		})
	}
}
