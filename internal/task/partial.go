package task

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"fveval/internal/engine"
	"fveval/internal/equiv"
	"fveval/internal/obs"
)

// Partial is the wire shape of one shard's contribution to a task: the
// raw outcome grids (with slot provenance) instead of aggregated rows,
// plus the resolved request echo and this shard's execution metadata.
// Partials from a complete shard partition recombine via MergeReports
// into a Report byte-identical to an unsharded Engine.Run — the merge
// invariant the distributed layer (internal/dist) is built on.
//
// Partials round-trip through JSON (Encode/DecodePartial), so they
// double as the fvevald partial-run response body and the cmd/fveval
// -shard output format.
type Partial struct {
	// Task is the registry name; Params echo the fully resolved
	// parameters (identical across every shard of one run).
	Task   string `json:"task"`
	Params Params `json:"params"`
	// Options echo the engine configuration the shard ran under,
	// including its Shard slice.
	Options engine.Config `json:"options,omitzero"`
	// Groups carry the raw outcome lattice per sub-setting; empty for
	// grid-less tasks (their text renders at merge time).
	Groups []GridGroup `json:"groups,omitempty"`
	// Stats is this shard's execution metadata.
	Stats Stats `json:"stats"`
	// Trace carries this shard's completed spans when the request asked
	// for tracing (Request.Trace non-nil); the coordinator adopts them
	// under its shard span so distributed runs stitch into one tree.
	// Absent (and absent from JSON) for untraced runs.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// Encode is the canonical wire encoding (indented JSON), matching the
// Report conventions.
func (p *Partial) Encode() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// DecodePartial parses a Partial previously produced by Encode (or
// any JSON encoding of the type).
func DecodePartial(data []byte) (*Partial, error) {
	var p Partial
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("task: decode partial: %w", err)
	}
	return &p, nil
}

// RunPartial executes one registry task like Run but skips the
// aggregation fold: it returns the shard's raw grids so a coordinator
// can recombine them with other shards. The request's Options.Shard
// selects the slice; an unsharded request yields a partial covering
// the whole instance axis (which merges to itself).
func (e *Engine) RunPartial(ctx context.Context, req Request) (*Partial, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, p, eng, err := e.prepare(req)
	if err != nil {
		return nil, err
	}
	// A traced shard records into its own fresh recorder — never the
	// context's (a loopback coordinator's recorder may be there) — so
	// local and remote runners produce identical Partial wire bytes and
	// the coordinator stitches both the same way, by adoption.
	var rec *obs.Recorder
	var root *obs.Span
	if req.Trace != nil {
		rec = obs.NewRecorder(req.Trace.Cap)
		// The shard root records parent 0 (a recorder-local root); the
		// coordinator re-roots it under its shard span when it adopts
		// the partial's spans. Embedding req.Trace.Parent — an ID from
		// the coordinator's space — would collide with this recorder's
		// own IDs and corrupt the remap.
		root = rec.Start("shard-run", 0)
		root.SetStr("task", req.Task)
		ctx = obs.ContextWithSpan(obs.NewContext(ctx, rec), root)
	}
	groups, stats, err := e.execute(ctx, spec, p, eng, req.Progress)
	if err != nil {
		return nil, err
	}
	part := &Partial{
		Task: spec.Name, Params: p, Options: eng.Config(),
		Groups: groups, Stats: stats,
	}
	if rec != nil {
		root.End()
		spans, dropped := rec.Snapshot()
		part.Trace = &obs.TraceData{Spans: spans, Dropped: dropped}
	}
	return part, nil
}

// paramsKey is the canonical comparison form of resolved parameters.
func paramsKey(p Params) ([]byte, error) {
	return json.Marshal(p)
}

// comparableOptions strips the execution-only knobs that legitimately
// differ across shards: the shard slice itself and Workers (resolved
// per machine from GOMAXPROCS). Everything else — Limit, Samples,
// Budget, MaxBound, NoCache — shapes verdicts or grid geometry and
// must agree for a merge to be meaningful.
func comparableOptions(c engine.Config) engine.Config {
	c.Shard = engine.Shard{}
	c.Workers = 0
	return c
}

// MergeReports deterministically recombines a complete shard partition
// into the unified Report. The merge is commutative — partials may
// arrive in any order — and slot-ordered: each shard's outcomes land
// at their global grid positions and the merged lattice folds through
// the same aggregation path a local run uses, so Render() and Encode()
// output is byte-identical to an unsharded Engine.Run with the same
// parameters. Grid-less tasks merge from a single partial, with their
// text rendered here.
func MergeReports(partials []*Partial) (*Report, error) {
	spec, p, groups, err := mergeGroups(partials)
	if err != nil {
		return nil, err
	}
	return buildReport(spec, p, groups)
}

// mergeGroups validates the partition and reassembles the grid groups.
func mergeGroups(partials []*Partial) (*Spec, Params, []GridGroup, error) {
	if len(partials) == 0 {
		return nil, Params{}, nil, fmt.Errorf("task: merge of zero partials")
	}
	first := partials[0]
	spec, err := Lookup(first.Task)
	if err != nil {
		return nil, Params{}, nil, err
	}
	key, err := paramsKey(first.Params)
	if err != nil {
		return nil, Params{}, nil, err
	}
	opts := comparableOptions(first.Options)
	for _, q := range partials[1:] {
		if q.Task != first.Task {
			return nil, Params{}, nil, fmt.Errorf("task: merging %s with %s", first.Task, q.Task)
		}
		qk, err := paramsKey(q.Params)
		if err != nil {
			return nil, Params{}, nil, err
		}
		if !bytes.Equal(key, qk) {
			return nil, Params{}, nil, fmt.Errorf("task %s: shards disagree on resolved params", first.Task)
		}
		if comparableOptions(q.Options) != opts {
			return nil, Params{}, nil, fmt.Errorf("task %s: shards disagree on engine options", first.Task)
		}
		if len(q.Groups) != len(first.Groups) {
			return nil, Params{}, nil, fmt.Errorf("task %s: shards disagree on group structure", first.Task)
		}
		for i := range q.Groups {
			if q.Groups[i].Name != first.Groups[i].Name {
				return nil, Params{}, nil, fmt.Errorf("task %s: shards disagree on group %d (%q vs %q)",
					first.Task, i, q.Groups[i].Name, first.Groups[i].Name)
			}
		}
	}
	merged := make([]GridGroup, 0, len(first.Groups))
	for gi := range first.Groups {
		grids := make([]*engine.Grid, 0, len(partials))
		for _, q := range partials {
			if q.Groups[gi].Grid == nil {
				return nil, Params{}, nil, fmt.Errorf("task %s: group %q missing its grid", first.Task, first.Groups[gi].Name)
			}
			grids = append(grids, q.Groups[gi].Grid)
		}
		g, err := engine.MergeGrids(grids)
		if err != nil {
			return nil, Params{}, nil, fmt.Errorf("task %s group %q: %w", first.Task, first.Groups[gi].Name, err)
		}
		merged = append(merged, GridGroup{Name: first.Groups[gi].Name, Grid: g})
	}
	return spec, first.Params, merged, nil
}

// MergeStats folds shard execution metadata: jobs and the cache/formal
// deltas sum across shards (each shard's delta is disjoint traffic on
// its own memo pool), while wall-clock takes the slowest shard — the
// distributed run's critical path.
func MergeStats(partials []*Partial) Stats {
	var s Stats
	for _, p := range partials {
		s.Jobs += p.Stats.Jobs
		if p.Stats.WallMS > s.WallMS {
			s.WallMS = p.Stats.WallMS
		}
		s.Cache = equiv.CacheStats{
			Hits:   s.Cache.Hits + p.Stats.Cache.Hits,
			Misses: s.Cache.Misses + p.Stats.Cache.Misses,
		}
		s.Formal = s.Formal.Add(p.Stats.Formal)
		s.RefineRounds += p.Stats.RefineRounds
		s.Profile = s.Profile.Add(p.Stats.Profile)
	}
	return s
}

// MergeRuns is MergeReports plus the folded execution metadata and a
// request echo (the shared options with the shard slice cleared),
// shaped like a local Engine.Run result.
func MergeRuns(partials []*Partial) (*Run, error) {
	spec, p, groups, err := mergeGroups(partials)
	if err != nil {
		return nil, err
	}
	report, err := buildReport(spec, p, groups)
	if err != nil {
		return nil, err
	}
	return &Run{
		Request: Request{Task: spec.Name, Params: p, Options: comparableOptions(partials[0].Options)},
		Report:  report,
		Stats:   MergeStats(partials),
	}, nil
}
