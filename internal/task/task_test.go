package task

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fveval/internal/core"
	"fveval/internal/engine"
	"fveval/internal/llm"
)

func TestRegistryCoversTablesAndFigures(t *testing.T) {
	specs := Tasks()
	if len(specs) < 10 {
		t.Fatalf("registry too small: %d tasks", len(specs))
	}
	for table := 1; table <= 6; table++ {
		if _, err := ByTable(table); err != nil {
			t.Errorf("table %d unreachable: %v", table, err)
		}
	}
	for _, fig := range []int{2, 3, 4, 6} {
		if _, err := ByFigure(fig); err != nil {
			t.Errorf("figure %d unreachable: %v", fig, err)
		}
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Title == "" || s.Kind == "" || (s.run == nil && s.text == nil) {
			t.Errorf("incomplete spec %+v", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate task name %q", s.Name)
		}
		seen[s.Name] = true
		if _, err := Lookup(s.Name); err != nil {
			t.Errorf("listed task %q not found: %v", s.Name, err)
		}
	}
	if _, err := Lookup("no-such-task"); err == nil || !strings.Contains(err.Error(), "nl2sva-human") {
		t.Errorf("unknown-task error must list known names, got: %v", err)
	}
}

func TestRequestValidation(t *testing.T) {
	e := NewEngine(engine.Config{Limit: 2})
	ctx := context.Background()
	bad := []Request{
		{Task: "no-such-task"},
		{Task: "nl2sva-human", Params: Params{Kinds: []string{"fsm"}}},    // param not accepted
		{Task: "nl2sva-human", Params: Params{Models: []string{"gpt-5"}}}, // unknown model
		{Task: "nl2sva-human-passk", Params: Params{Ks: []int{0}}},        // k out of range
		{Task: "nl2sva-machine", Params: Params{Shots: []int{-1}}},        // negative shots
		{Task: "nl2sva-machine", Params: Params{Count: -3}},               // negative count
		{Task: "nl2sva-machine", Params: Params{Count: maxMachineCount + 1}},
		{Task: "design2sva", Params: Params{Kinds: []string{"chipmunk"}}}, // unknown kind
		{Task: "nl2sva-human", Options: engine.Config{Samples: -1}},       // invalid options
		{Task: "nl2sva-human", Options: engine.Config{Workers: -2}},
	}
	for _, req := range bad {
		if _, err := e.Run(ctx, req); err == nil {
			t.Errorf("request %+v accepted", req)
		}
	}
}

func TestRunStreamsEventsAndStats(t *testing.T) {
	e := NewEngine(engine.Config{})
	var events []Event
	run, err := e.Run(context.Background(), Request{
		Task:     "nl2sva-human",
		Params:   Params{Models: []string{"gpt-4o", "llama-3-8b"}},
		Options:  engine.Config{Limit: 5, Workers: 3},
		Progress: func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 5; len(events) != want || run.Stats.Jobs != want {
		t.Fatalf("events %d, stats jobs %d, want %d", len(events), run.Stats.Jobs, want)
	}
	for i, ev := range events {
		if ev.Task != "nl2sva-human" || ev.Done != i+1 || ev.Total != 10 || ev.Model == "" || ev.Instance == "" {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
	}
	if run.Report == nil || len(run.Report.Groups) != 1 || len(run.Report.Groups[0].Rows) != 2 {
		t.Fatalf("report malformed: %+v", run.Report)
	}
	// the echoed request must carry the resolved params and options
	if len(run.Request.Params.Models) != 2 || run.Request.Options.Limit != 5 {
		t.Fatalf("request echo not resolved: %+v", run.Request)
	}
	if run.Stats.Cache.Misses == 0 {
		t.Fatalf("run recorded no formal activity: %+v", run.Stats)
	}
}

func TestRunCancellation(t *testing.T) {
	e := NewEngine(engine.Config{Limit: 12})
	ctx, cancel := context.WithCancel(context.Background())
	var n int
	_, err := e.Run(ctx, Request{
		Task:   "nl2sva-human",
		Params: Params{Models: []string{"gpt-4o"}},
		Progress: func(ev Event) {
			n++
			if n == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	cancel()
}

// TestMultiGroupTasks checks the per-group event labelling and group
// structure of the shots and design tasks.
func TestMultiGroupTasks(t *testing.T) {
	e := NewEngine(engine.Config{Limit: 3, Samples: 2})
	groupsSeen := map[string]bool{}
	run, err := e.Run(context.Background(), Request{
		Task:     "nl2sva-machine",
		Params:   Params{Models: []string{"gpt-4o"}, Count: 5},
		Progress: func(ev Event) { groupsSeen[ev.Group] = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Report.Groups) != 2 || run.Report.Groups[0].Name != "0-shot" || run.Report.Groups[1].Name != "3-shot" {
		t.Fatalf("groups malformed: %+v", run.Report.Groups)
	}
	if !groupsSeen["0-shot"] || !groupsSeen["3-shot"] {
		t.Fatalf("events missed a group: %v", groupsSeen)
	}

	run, err = e.Run(context.Background(), Request{
		Task:   "design2sva",
		Params: Params{Models: []string{"gpt-4o"}, Kinds: []string{"fsm"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Report.Groups) != 1 || run.Report.Groups[0].Name != "fsm" {
		t.Fatalf("design groups malformed: %+v", run.Report.Groups)
	}
	if rep := run.Report.Groups[0].DesignReports(); len(rep) != 1 || rep[0].Kind != "fsm" {
		t.Fatalf("design projection malformed: %+v", rep)
	}
}

// TestRenderMatchesLegacyEntryPoints demands byte-identical table
// output between registry runs and the pre-redesign per-table entry
// points, for every table and figure.
func TestRenderMatchesLegacyEntryPoints(t *testing.T) {
	ctx := context.Background()
	cfg := engine.Config{Limit: 4, Samples: 2, Workers: 2}
	e := NewEngine(cfg)
	models := []string{"gpt-4o", "llama-3.1-70b"}
	fleet := resolveModels(models)

	runTask := func(name string, p Params) string {
		t.Helper()
		run, err := e.Run(ctx, Request{Task: name, Params: p})
		if err != nil {
			t.Fatal(err)
		}
		return run.Report.Render()
	}

	// Table 1
	legacy1, err := engine.RunNL2SVAHuman(fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := runTask("nl2sva-human", Params{Models: models}), core.FormatTable1(legacy1); got != want {
		t.Errorf("table 1 diverged:\n--- registry ---\n%s--- legacy ---\n%s", got, want)
	}

	// Table 2
	legacy2, err := engine.RunNL2SVAHumanPassK(fleet, []int{1, 3, 5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := runTask("nl2sva-human-passk", Params{Models: models}), core.FormatTable2(legacy2); got != want {
		t.Errorf("table 2 diverged:\n--- registry ---\n%s--- legacy ---\n%s", got, want)
	}

	// Table 3
	zero, err := engine.RunNL2SVAMachine(fleet, 0, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	three, err := engine.RunNL2SVAMachine(fleet, 3, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := runTask("nl2sva-machine", Params{Models: models, Count: 8}), core.FormatTable3(zero, three); got != want {
		t.Errorf("table 3 diverged:\n--- registry ---\n%s--- legacy ---\n%s", got, want)
	}

	// Table 4
	legacy4, err := engine.RunNL2SVAMachinePassK(fleet, []int{1, 3, 5}, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := runTask("nl2sva-machine-passk", Params{Models: models, Count: 8}), core.FormatTable4(legacy4); got != want {
		t.Errorf("table 4 diverged:\n--- registry ---\n%s--- legacy ---\n%s", got, want)
	}

	// Table 5
	pipe, err := engine.RunDesign2SVA(fleet, "pipeline", cfg)
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := engine.RunDesign2SVA(fleet, "fsm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := runTask("design2sva", Params{Models: models}), core.FormatTable5(pipe, fsm); got != want {
		t.Errorf("table 5 diverged:\n--- registry ---\n%s--- legacy ---\n%s", got, want)
	}

	// Table 6 and the figures
	if got, want := runTask("dataset-stats", Params{}), core.FormatTable6(); got != want {
		t.Errorf("table 6 diverged")
	}
	fig2, err := core.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if got := runTask("human-token-lengths", Params{}); got != fig2 {
		t.Errorf("figure 2 diverged")
	}
	if got, want := runTask("machine-token-lengths", Params{Count: 30}), core.Figure3(30); got != want {
		t.Errorf("figure 3 diverged")
	}
	if got, want := runTask("design-token-lengths", Params{}), core.Figure4(); got != want {
		t.Errorf("figure 4 diverged")
	}
	legacyFig6, err := engine.New(cfg).Figure6(ctx, resolveModels([]string{"gpt-4o"}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := runTask("bleu-correlation", Params{Models: []string{"gpt-4o"}}); got != legacyFig6 {
		t.Errorf("figure 6 diverged:\n--- registry ---\n%s--- legacy ---\n%s", got, legacyFig6)
	}
}

// TestSharedEnginePoolsAcrossRuns checks that two runs through one
// task engine share the memo pool: the duplicate second run must not
// add cache misses.
func TestSharedEnginePoolsAcrossRuns(t *testing.T) {
	e := NewEngine(engine.Config{Limit: 6})
	req := Request{Task: "nl2sva-human", Params: Params{Models: []string{"gpt-4o"}}}
	first, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Cache.Misses == 0 {
		t.Fatalf("first run saw no formal work: %+v", first.Stats)
	}
	if second.Stats.Cache.Misses != 0 {
		t.Fatalf("second run re-solved %d queries despite the shared pool", second.Stats.Cache.Misses)
	}
}

func TestDefaultModelSetsResolve(t *testing.T) {
	for _, s := range Tasks() {
		for _, m := range s.Defaults.Models {
			if llm.ModelByName(m) == nil {
				t.Errorf("task %s: default model %q unresolvable", s.Name, m)
			}
		}
	}
}
