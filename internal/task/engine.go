package task

import (
	"context"
	"fmt"
	"time"

	"fveval/internal/core"
	"fveval/internal/engine"
	"fveval/internal/equiv"
	"fveval/internal/formal"
	"fveval/internal/obs"
)

// Request names one registry task plus overrides: Params are merged
// onto the spec defaults and validated against it, Options tune the
// evaluation engine for this run (zero value = the serving engine's
// own configuration). Requests are JSON round-trippable, so they
// double as the HTTP service's submission body.
type Request struct {
	// Task is a registry name (see Tasks).
	Task string `json:"task"`
	// Params overrides the spec defaults; fields the spec does not
	// accept are rejected, not ignored.
	Params Params `json:"params,omitzero"`
	// Options tunes the engine for this run. The zero value inherits
	// the serving engine's configuration; any other value derives an
	// engine that still shares the serving engine's memo pool (unless
	// NoCache detaches it).
	Options engine.Config `json:"options,omitzero"`
	// Progress, when non-nil, receives one Event per completed
	// evaluation job. Events are delivered from the run's collector
	// goroutine: calls are serialized and must not block for long.
	Progress func(Event) `json:"-"`
	// Trace, when non-nil, turns tracing on for a partial (shard) run:
	// RunPartial records spans into a fresh recorder and ships them on
	// the Partial, re-rooted under Trace.Parent (a span ID in the
	// coordinator's ID space). Trace is execution plumbing like
	// Progress — Canonical strips it, so it never reaches result-cache
	// keys or report echoes, which keeps traced and untraced report
	// bytes identical.
	Trace *obs.TraceContext `json:"trace,omitempty"`
}

// Validate checks the request against the registry without running
// it: the task must exist, the parameter overrides must be accepted
// by its spec, and the engine options must be well-formed.
func (r Request) Validate() error {
	spec, err := Lookup(r.Task)
	if err != nil {
		return err
	}
	if _, err := spec.resolve(r.Params); err != nil {
		return fmt.Errorf("task %s: %w", spec.Name, err)
	}
	return r.Options.Validate()
}

// Canonical resolves the request to its content-equivalent normal
// form: the registry task name with its parameters fully merged
// against the spec defaults. Two requests with the same Canonical
// form (options aside) evaluate the same work and produce the same
// Report, which is what makes cross-request result caching sound —
// the service tier keys its content-addressed result store on this.
func (r Request) Canonical() (Request, error) {
	spec, err := Lookup(r.Task)
	if err != nil {
		return Request{}, err
	}
	p, err := spec.resolve(r.Params)
	if err != nil {
		return Request{}, fmt.Errorf("task %s: %w", spec.Name, err)
	}
	if err := r.Options.Validate(); err != nil {
		return Request{}, err
	}
	return Request{Task: spec.Name, Params: p, Options: r.Options}, nil
}

// Event is one per-job progress notification.
type Event struct {
	Task string `json:"task"`
	// Group is the sub-setting being evaluated ("0-shot", "pipeline",
	// ...; empty for single-setting tasks).
	Group string `json:"group,omitempty"`
	// Done / Total count jobs within this group's evaluation grid.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Model, Instance, and Sample locate the finished job.
	Model    string `json:"model,omitempty"`
	Instance string `json:"instance,omitempty"`
	Sample   int    `json:"sample"`
	// Syntax and Func summarize the job's judgment.
	Syntax bool `json:"syntax,omitempty"`
	Func   bool `json:"func,omitempty"`
	// WallMS is the job's evaluation wall-clock in milliseconds,
	// measured at the worker — the live signal for spotting slow jobs.
	WallMS int64 `json:"wall_ms,omitempty"`
	// Kind classifies the outcome for display: "func" (fully correct),
	// "syntax" (compiles but not proven equivalent), or "fail".
	Kind string `json:"kind,omitempty"`
}

// Stats is the run's execution metadata.
type Stats struct {
	// Jobs is the number of evaluation jobs completed.
	Jobs int `json:"jobs"`
	// WallMS is the run's wall-clock duration in milliseconds.
	WallMS int64 `json:"wall_ms"`
	// Cache is this run's equivalence-cache delta (hits against
	// entries predating the run still count as this run's hits).
	Cache equiv.CacheStats `json:"cache"`
	// Formal is this run's incremental formal-backend delta.
	//
	// Both deltas are computed from the shared memo pool's cumulative
	// counters, so when several runs execute concurrently on one
	// engine each delta also includes the traffic of runs overlapping
	// it in time; per-run attribution is exact only for serialized
	// runs. Engine-lifetime totals (Engine.CacheStats/FormalStats)
	// are always exact.
	Formal formal.Snapshot `json:"formal"`
	// RefineRounds is this run's CEX-guided refinement retry delta:
	// how many feedback rounds the run's FeedbackModels performed.
	// Subject to the same concurrent-run attribution caveat as the
	// cache and formal deltas.
	RefineRounds int64 `json:"refine_rounds,omitempty"`
	// Profile is the per-phase wall-clock rollup of a traced run
	// (zero — and absent from JSON — when tracing is off, keeping
	// untraced output byte-identical). Shard profiles sum commutatively
	// in MergeStats, mirroring the Formal snapshot.
	Profile obs.Profile `json:"profile,omitzero"`
}

// Run is the result of one task execution: the unified report plus
// the echoed (fully resolved) request and execution metadata.
type Run struct {
	// Request echoes the request with params merged and options
	// resolved to the configuration the run actually used.
	Request Request `json:"request"`
	Report  *Report `json:"report"`
	Stats   Stats   `json:"stats"`
}

// Engine executes registry tasks. One Engine owns one evaluation
// memo pool (equivalence cache, judgment memos, formal counters);
// every Run through it — including concurrent runs with different
// Options — shares that pool, so duplicate formal queries across
// requests are solved once.
type Engine struct {
	base *engine.Engine
}

// NewEngine builds a task engine whose default run configuration is
// cfg. Like engine.New it panics on an invalid cfg; callers holding
// untrusted configuration should cfg.Validate() first.
func NewEngine(cfg engine.Config) *Engine {
	return &Engine{base: engine.New(cfg)}
}

// Config returns the engine's resolved default configuration.
func (e *Engine) Config() engine.Config { return e.base.Config() }

// CacheStats snapshots the shared equivalence-cache counters.
func (e *Engine) CacheStats() equiv.CacheStats { return e.base.CacheStats() }

// FormalStats snapshots the shared formal-backend counters.
func (e *Engine) FormalStats() formal.Snapshot { return e.base.FormalStats() }

// prepare validates a request against the registry and resolves the
// engine it should run on (the base engine, or a derived one sharing
// the memo pool when the request carries options).
func (e *Engine) prepare(req Request) (*Spec, Params, *engine.Engine, error) {
	spec, err := Lookup(req.Task)
	if err != nil {
		return nil, Params{}, nil, err
	}
	p, err := spec.resolve(req.Params)
	if err != nil {
		return nil, Params{}, nil, fmt.Errorf("task %s: %w", spec.Name, err)
	}
	eng := e.base
	if req.Options != (engine.Config{}) {
		if eng, err = e.base.Reconfigure(req.Options); err != nil {
			return nil, Params{}, nil, err
		}
	}
	return spec, p, eng, nil
}

// execute runs a prepared task's grids with progress streaming and
// stat-delta accounting — the shared body of Run and RunPartial.
func (e *Engine) execute(ctx context.Context, spec *Spec, p Params, eng *engine.Engine, progress func(Event)) ([]GridGroup, Stats, error) {
	// jobs is only touched from each grid's collector goroutine, and
	// grids within one run execute sequentially, so no lock is needed.
	jobs := 0
	observer := func(group string) engine.Observer {
		return func(pr engine.Progress) {
			jobs++
			if progress != nil {
				progress(Event{
					Task: spec.Name, Group: group,
					Done: pr.Done, Total: pr.Total,
					Model: pr.Model, Instance: pr.InstanceID, Sample: pr.Sample,
					Syntax: pr.Outcome.Syntax, Func: pr.Outcome.Full,
					WallMS: pr.Wall.Milliseconds(),
					Kind:   outcomeKind(pr.Outcome),
				})
			}
		}
	}

	cache0, formal0, rounds0 := eng.CacheStats(), eng.FormalStats(), eng.RefineRounds()
	start := time.Now()
	var groups []GridGroup
	if spec.run != nil {
		var err error
		groups, err = spec.run(ctx, eng, p, observer)
		if err != nil {
			return nil, Stats{}, err
		}
	}
	cache1, formal1 := eng.CacheStats(), eng.FormalStats()
	return groups, Stats{
		Jobs:   jobs,
		WallMS: time.Since(start).Milliseconds(),
		Cache: equiv.CacheStats{
			Hits:   cache1.Hits - cache0.Hits,
			Misses: cache1.Misses - cache0.Misses,
		},
		Formal:       formal1.Sub(formal0),
		RefineRounds: eng.RefineRounds() - rounds0,
		// The run owns its recorder (one per run), so the cumulative
		// profile is this run's attribution; zero when untraced.
		Profile: obs.FromContext(ctx).Profile(),
	}, nil
}

// outcomeKind classifies a judged outcome for live display.
func outcomeKind(o core.Outcome) string {
	switch {
	case o.Full:
		return "func"
	case o.Syntax:
		return "syntax"
	}
	return "fail"
}

// Run executes one registry task: the request is validated against
// the task's spec, the evaluation runs on this engine's memo pool
// under the request's options, progress streams to req.Progress, and
// the unified report comes back with run metadata. Cancelling ctx
// aborts the evaluation and returns ctx.Err().
func (e *Engine) Run(ctx context.Context, req Request) (*Run, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, p, eng, err := e.prepare(req)
	if err != nil {
		return nil, err
	}
	groups, stats, err := e.execute(ctx, spec, p, eng, req.Progress)
	if err != nil {
		return nil, err
	}
	report, err := buildReport(spec, p, groups)
	if err != nil {
		return nil, err
	}
	return &Run{
		Request: Request{Task: spec.Name, Params: p, Options: eng.Config()},
		Report:  report,
		Stats:   stats,
	}, nil
}

// buildReport aggregates raw grid groups into the unified Report —
// the single fold path shared by local runs and MergeReports, which
// is what makes merged output byte-identical to unsharded output.
func buildReport(spec *Spec, p Params, groups []GridGroup) (*Report, error) {
	var rgs []Group
	for _, gg := range groups {
		var rows []Row
		switch spec.Kind {
		case KindPassK:
			rows = rowsFromPassKReports(gg.Grid.PassKReports(p.Ks))
		case KindDesign:
			rows = rowsFromDesignReports(gg.Grid.DesignReports(gg.Name, p.Ks))
		default: // greedy, shots, and gridded figures fold to means
			rows = rowsFromModelReports(gg.Grid.ModelReports())
		}
		rgs = append(rgs, Group{Name: gg.Name, Rows: rows})
	}
	text := ""
	if spec.text != nil {
		var err error
		if text, err = spec.text(p, rgs); err != nil {
			return nil, err
		}
	}
	return &Report{
		Task: spec.Name, Title: spec.Title,
		Table: spec.Table, Figure: spec.Figure, Kind: spec.Kind,
		Params: p, Groups: rgs, Text: text,
	}, nil
}
