// Package task is the task-centric public surface of the FVEval
// reproduction: a registry of Specs describing every sub-benchmark
// (the paper's tables and figures), a Request type naming one task
// plus parameter overrides, and an Engine whose single Run entry
// point executes any registered task and returns one unified Report.
//
// The registry replaces the old grid of per-table entry points
// (RunNL2SVAHuman, RunNL2SVAMachinePassK, ...): a new workload is a
// new Spec, not a new exported function, and everything registered is
// automatically reachable from the CLI (-task/-list), the facade
// (fveval.Run), and the HTTP service (cmd/fvevald).
package task

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fveval/internal/core"
	"fveval/internal/engine"
	"fveval/internal/llm"
)

// Kind classifies how a task evaluates and aggregates.
type Kind string

const (
	// KindGreedy draws one greedy sample per instance and reports mean
	// syntax/func/partial/BLEU per model.
	KindGreedy Kind = "greedy"
	// KindPassK draws n samples per instance and reports unbiased
	// pass@k per metric.
	KindPassK Kind = "passk"
	// KindShots runs the greedy flow once per in-context shot count
	// and groups the results by shot setting.
	KindShots Kind = "shots"
	// KindDesign runs the Design2SVA flow once per design category.
	KindDesign Kind = "design"
	// KindStatic renders a dataset artifact without evaluating models.
	KindStatic Kind = "static"
	// KindFigure renders one of the paper's figures (figure 6 also
	// evaluates models; the length-distribution figures are static).
	KindFigure Kind = "figure"
)

// Params are the tunable knobs of a task. A Spec carries the paper's
// defaults; a Request may override any field the spec accepts (see
// Spec.Accepts). The zero value of a field means "keep the default".
type Params struct {
	// Models names the evaluated proxy models.
	Models []string `json:"models,omitempty"`
	// Shots lists the in-context example counts (KindShots).
	Shots []int `json:"shots,omitempty"`
	// Ks lists the pass@k cut-offs (KindPassK, KindDesign).
	Ks []int `json:"ks,omitempty"`
	// Count sizes the synthetic NL2SVA-Machine dataset.
	Count int `json:"count,omitempty"`
	// Kinds lists the design categories (KindDesign).
	Kinds []string `json:"kinds,omitempty"`
	// Rounds lists the CEX-guided refinement retry budgets (the
	// refinement task runs one grid per budget; 0 = no refinement).
	Rounds []int `json:"rounds,omitempty"`
}

// merge overlays the non-zero fields of over onto p.
func (p Params) merge(over Params) Params {
	if len(over.Models) > 0 {
		p.Models = over.Models
	}
	if len(over.Shots) > 0 {
		p.Shots = over.Shots
	}
	if len(over.Ks) > 0 {
		p.Ks = over.Ks
	}
	if over.Count > 0 {
		p.Count = over.Count
	}
	if len(over.Kinds) > 0 {
		p.Kinds = over.Kinds
	}
	if len(over.Rounds) > 0 {
		p.Rounds = over.Rounds
	}
	return p
}

// GridGroup is one sub-setting's raw outcome lattice ("0-shot",
// "pipeline", ...; single-setting tasks use one unnamed group). It is
// the unit a shard ships home: grids carry slot provenance, so
// engine.MergeGrids can reassemble the full instance axis and the
// shared report-building path folds it exactly as a local run would.
type GridGroup struct {
	Name string       `json:"name,omitempty"`
	Grid *engine.Grid `json:"grid"`
}

// runFunc evaluates one task's grids: it receives the engine, the
// resolved parameters, and an observer factory keyed by group name
// (multi-part tasks run one grid per group), and returns the raw
// outcome lattice per group. nil for grid-less tasks (static datasets
// and pre-rendered figures), which only have a text renderer.
type runFunc func(ctx context.Context, eng *engine.Engine, p Params, obs func(group string) engine.Observer) ([]GridGroup, error)

// textFunc renders a task's textual artifact from the resolved
// parameters and the aggregated report groups (empty for grid-less
// tasks). It runs after aggregation — on the coordinator for merged
// runs — so sharded text output is identical to a local run's.
type textFunc func(p Params, groups []Group) (string, error)

// Spec describes one registered task.
type Spec struct {
	// Name is the registry key, e.g. "nl2sva-human-passk".
	Name string `json:"name"`
	// Title is a one-line human description.
	Title string `json:"title"`
	// Table and Figure tie the task to the paper artifact it
	// reproduces (0 = none).
	Table  int  `json:"table,omitempty"`
	Figure int  `json:"figure,omitempty"`
	Kind   Kind `json:"kind"`
	// Accepts lists the Params fields a Request may override
	// ("models", "shots", "ks", "count", "kinds", "rounds").
	Accepts []string `json:"accepts,omitempty"`
	// Defaults are the paper's parameters for this task.
	Defaults Params `json:"defaults"`

	run  runFunc
	text textFunc
}

// Shardable reports whether the task evaluates a model grid, i.e.
// whether splitting its instance axis across workers does any good.
// Grid-less tasks (static tables, pre-rendered figures) run whole on
// a single worker.
func (s Spec) Shardable() bool { return s.run != nil }

func (s *Spec) accepts(field string) bool {
	for _, f := range s.Accepts {
		if f == field {
			return true
		}
	}
	return false
}

// designKinds are the valid Design2SVA categories.
var designKinds = map[string]bool{"pipeline": true, "fsm": true}

// maxMachineCount bounds the synthetic dataset a single request may
// ask for; the paper uses 300.
const maxMachineCount = 10000

// maxRefineRounds bounds a refinement retry budget; past a handful of
// rounds the feedback loop has long converged and each extra round
// only multiplies evaluation cost.
const maxRefineRounds = 8

// resolve merges an override onto the spec defaults and validates the
// result against the spec: overriding a parameter the task does not
// take is an error (not silently ignored), as is any out-of-range or
// unresolvable value.
func (s *Spec) resolve(over Params) (Params, error) {
	for field, set := range map[string]bool{
		"models": len(over.Models) > 0,
		"shots":  len(over.Shots) > 0,
		"ks":     len(over.Ks) > 0,
		"count":  over.Count != 0,
		"kinds":  len(over.Kinds) > 0,
		"rounds": len(over.Rounds) > 0,
	} {
		if set && !s.accepts(field) {
			return Params{}, fmt.Errorf("parameter %q not accepted (accepts: %s)",
				field, strings.Join(s.Accepts, ", "))
		}
	}
	if over.Count < 0 {
		return Params{}, fmt.Errorf("negative count %d", over.Count)
	}
	p := s.Defaults.merge(over)
	for _, m := range p.Models {
		if llm.ModelByName(m) == nil {
			return Params{}, fmt.Errorf("unknown model %q (see fveval.Models)", m)
		}
	}
	for _, k := range p.Ks {
		if k < 1 {
			return Params{}, fmt.Errorf("pass@k cut-off %d out of range", k)
		}
	}
	for _, sh := range p.Shots {
		if sh < 0 {
			return Params{}, fmt.Errorf("negative shot count %d", sh)
		}
	}
	if s.accepts("count") && (p.Count < 1 || p.Count > maxMachineCount) {
		return Params{}, fmt.Errorf("count %d out of range 1..%d", p.Count, maxMachineCount)
	}
	for _, k := range p.Kinds {
		if !designKinds[k] {
			return Params{}, fmt.Errorf("unknown design kind %q (want pipeline or fsm)", k)
		}
	}
	for _, r := range p.Rounds {
		if r < 0 || r > maxRefineRounds {
			return Params{}, fmt.Errorf("refinement rounds %d out of range 0..%d", r, maxRefineRounds)
		}
	}
	return p, nil
}

// resolveModels maps validated model names onto the proxy fleet.
func resolveModels(names []string) []llm.Model {
	out := make([]llm.Model, 0, len(names))
	for _, n := range names {
		if m := llm.ModelByName(n); m != nil {
			out = append(out, m)
		}
	}
	return out
}

func modelNames(models []llm.Model) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.Name()
	}
	return out
}

// passKFleet is the three-model subset the paper samples for the
// pass@k tables.
func passKFleet() []string {
	return []string{"gpt-4o", "gemini-1.5-flash", "llama-3.1-70b"}
}

// registry holds every task in display order plus a name index.
var (
	registry = buildRegistry()
	byName   = indexRegistry(registry)
)

func indexRegistry(specs []*Spec) map[string]*Spec {
	m := make(map[string]*Spec, len(specs))
	for _, s := range specs {
		m[s.Name] = s
	}
	return m
}

// Tasks returns the registry in display order. The returned specs are
// deep copies; mutating them (including their slices) does not affect
// the registry.
func Tasks() []Spec {
	out := make([]Spec, len(registry))
	for i, s := range registry {
		c := *s
		c.Accepts = append([]string(nil), s.Accepts...)
		c.Defaults = s.Defaults.clone()
		out[i] = c
	}
	return out
}

// clone deep-copies the parameter slices.
func (p Params) clone() Params {
	p.Models = append([]string(nil), p.Models...)
	p.Shots = append([]int(nil), p.Shots...)
	p.Ks = append([]int(nil), p.Ks...)
	p.Kinds = append([]string(nil), p.Kinds...)
	p.Rounds = append([]int(nil), p.Rounds...)
	return p
}

// Lookup finds a task by registry name.
func Lookup(name string) (*Spec, error) {
	if s, ok := byName[name]; ok {
		return s, nil
	}
	known := make([]string, 0, len(byName))
	for n := range byName {
		known = append(known, n)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("task: unknown task %q (known: %s)", name, strings.Join(known, ", "))
}

// ByTable finds the task reproducing a paper table.
func ByTable(n int) (*Spec, error) {
	for _, s := range registry {
		if s.Table == n {
			return s, nil
		}
	}
	return nil, fmt.Errorf("task: no task reproduces table %d", n)
}

// ByFigure finds the task reproducing a paper figure.
func ByFigure(n int) (*Spec, error) {
	for _, s := range registry {
		if s.Figure == n {
			return s, nil
		}
	}
	return nil, fmt.Errorf("task: no task reproduces figure %d", n)
}

// singleGrid wraps one unnamed grid as the task's only group.
func singleGrid(g *engine.Grid, err error) ([]GridGroup, error) {
	if err != nil {
		return nil, err
	}
	return []GridGroup{{Grid: g}}, nil
}

func buildRegistry() []*Spec {
	return []*Spec{
		{
			Name:     "nl2sva-human",
			Title:    "NL2SVA-Human, greedy decoding (Table 1)",
			Table:    1,
			Kind:     KindGreedy,
			Accepts:  []string{"models"},
			Defaults: Params{Models: modelNames(llm.Models())},
			run: func(ctx context.Context, eng *engine.Engine, p Params, obs func(string) engine.Observer) ([]GridGroup, error) {
				return singleGrid(eng.HumanGrid(ctx, resolveModels(p.Models), false, obs("")))
			},
		},
		{
			Name:     "nl2sva-human-passk",
			Title:    "NL2SVA-Human, pass@k over sampled decoding (Table 2)",
			Table:    2,
			Kind:     KindPassK,
			Accepts:  []string{"models", "ks"},
			Defaults: Params{Models: passKFleet(), Ks: []int{1, 3, 5}},
			run: func(ctx context.Context, eng *engine.Engine, p Params, obs func(string) engine.Observer) ([]GridGroup, error) {
				return singleGrid(eng.HumanGrid(ctx, resolveModels(p.Models), true, obs("")))
			},
		},
		{
			Name:     "nl2sva-machine",
			Title:    "NL2SVA-Machine, greedy decoding per shot count (Table 3)",
			Table:    3,
			Kind:     KindShots,
			Accepts:  []string{"models", "shots", "count"},
			Defaults: Params{Models: modelNames(llm.Models()), Shots: []int{0, 3}, Count: 300},
			run: func(ctx context.Context, eng *engine.Engine, p Params, obs func(string) engine.Observer) ([]GridGroup, error) {
				var groups []GridGroup
				for _, sh := range p.Shots {
					name := fmt.Sprintf("%d-shot", sh)
					g, err := eng.MachineGrid(ctx, resolveModels(p.Models), sh, p.Count, false, obs(name))
					if err != nil {
						return nil, err
					}
					groups = append(groups, GridGroup{Name: name, Grid: g})
				}
				return groups, nil
			},
		},
		{
			Name:     "nl2sva-machine-passk",
			Title:    "NL2SVA-Machine, pass@k at 3-shot (Table 4)",
			Table:    4,
			Kind:     KindPassK,
			Accepts:  []string{"models", "ks", "count"},
			Defaults: Params{Models: passKFleet(), Ks: []int{1, 3, 5}, Count: 300},
			run: func(ctx context.Context, eng *engine.Engine, p Params, obs func(string) engine.Observer) ([]GridGroup, error) {
				return singleGrid(eng.MachineGrid(ctx, resolveModels(p.Models), 3, p.Count, true, obs("")))
			},
		},
		{
			Name:     "design2sva",
			Title:    "Design2SVA, assertion generation over synthetic RTL (Table 5)",
			Table:    5,
			Kind:     KindDesign,
			Accepts:  []string{"models", "ks", "kinds"},
			Defaults: Params{Models: modelNames(llm.DesignModels()), Ks: []int{1, 5}, Kinds: []string{"pipeline", "fsm"}},
			run: func(ctx context.Context, eng *engine.Engine, p Params, obs func(string) engine.Observer) ([]GridGroup, error) {
				var groups []GridGroup
				for _, kind := range p.Kinds {
					g, err := eng.DesignGrid(ctx, resolveModels(p.Models), kind, obs(kind))
					if err != nil {
						return nil, err
					}
					groups = append(groups, GridGroup{Name: kind, Grid: g})
				}
				return groups, nil
			},
		},
		{
			Name:     "agr",
			Title:    "AGR, assertion-guided helper generation, pass@k (Table AGR)",
			Kind:     KindPassK,
			Accepts:  []string{"models", "ks"},
			Defaults: Params{Models: passKFleet(), Ks: []int{1, 3, 5}},
			run: func(ctx context.Context, eng *engine.Engine, p Params, obs func(string) engine.Observer) ([]GridGroup, error) {
				return singleGrid(eng.HelperGrid(ctx, resolveModels(p.Models), obs("")))
			},
			text: renderTableAGR,
		},
		{
			Name:     "refinement",
			Title:    "NL2SVA-Machine with CEX-guided refinement, pass@k per retry budget (Figure R)",
			Kind:     KindPassK,
			Accepts:  []string{"models", "ks", "count", "rounds"},
			Defaults: Params{Models: passKFleet(), Ks: []int{1, 5}, Count: 60, Rounds: []int{0, 1, 2}},
			run: func(ctx context.Context, eng *engine.Engine, p Params, obs func(string) engine.Observer) ([]GridGroup, error) {
				var groups []GridGroup
				for _, r := range p.Rounds {
					name := fmt.Sprintf("round=%d", r)
					g, err := eng.RefinementGrid(ctx, resolveModels(p.Models), r, p.Count, obs(name))
					if err != nil {
						return nil, err
					}
					groups = append(groups, GridGroup{Name: name, Grid: g})
				}
				return groups, nil
			},
			text: renderFigureR,
		},
		{
			Name:  "dataset-stats",
			Title: "NL2SVA-Human dataset composition (Table 6)",
			Table: 6,
			Kind:  KindStatic,
			text: func(p Params, groups []Group) (string, error) {
				return core.FormatTable6(), nil
			},
		},
		{
			Name:   "human-token-lengths",
			Title:  "NL2SVA-Human token-length distributions (Figure 2)",
			Figure: 2,
			Kind:   KindFigure,
			text: func(p Params, groups []Group) (string, error) {
				return core.Figure2()
			},
		},
		{
			Name:     "machine-token-lengths",
			Title:    "NL2SVA-Machine token-length distributions (Figure 3)",
			Figure:   3,
			Kind:     KindFigure,
			Accepts:  []string{"count"},
			Defaults: Params{Count: 300},
			text: func(p Params, groups []Group) (string, error) {
				return core.Figure3(p.Count), nil
			},
		},
		{
			Name:   "design-token-lengths",
			Title:  "Synthetic RTL token-length distributions (Figure 4)",
			Figure: 4,
			Kind:   KindFigure,
			text: func(p Params, groups []Group) (string, error) {
				return core.Figure4(), nil
			},
		},
		{
			Name:     "bleu-correlation",
			Title:    "BLEU vs formal functional equivalence on NL2SVA-Human (Figure 6)",
			Figure:   6,
			Kind:     KindFigure,
			Accepts:  []string{"models"},
			Defaults: Params{Models: []string{"gpt-4o", "llama-3.1-70b"}},
			run: func(ctx context.Context, eng *engine.Engine, p Params, obs func(string) engine.Observer) ([]GridGroup, error) {
				return singleGrid(eng.HumanGrid(ctx, resolveModels(p.Models), false, obs("")))
			},
			text: func(p Params, groups []Group) (string, error) {
				var reports []core.ModelReport
				if len(groups) > 0 {
					reports = groups[0].ModelReports()
				}
				return core.Figure6(reports), nil
			},
		},
	}
}
