package task

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"fveval/internal/engine"
)

// mergeCase pins one registry task with a small deterministic slice;
// the property tests below shard each case every which way and demand
// byte-identical reports back.
type mergeCase struct {
	name string
	req  Request
}

func mergeCases() []mergeCase {
	return []mergeCase{
		{"table1", Request{
			Task:    "nl2sva-human",
			Params:  Params{Models: []string{"gpt-4o", "llama-3-8b"}},
			Options: engine.Config{Limit: 7, Workers: 2},
		}},
		{"table2", Request{
			Task:    "nl2sva-human-passk",
			Params:  Params{Models: []string{"gpt-4o"}},
			Options: engine.Config{Limit: 5, Samples: 2, Workers: 2},
		}},
		{"table3", Request{
			Task:    "nl2sva-machine",
			Params:  Params{Models: []string{"gpt-4o"}, Count: 9},
			Options: engine.Config{Workers: 2},
		}},
		{"table4", Request{
			Task:    "nl2sva-machine-passk",
			Params:  Params{Models: []string{"gpt-4o"}, Count: 7},
			Options: engine.Config{Samples: 2, Workers: 2},
		}},
		{"table5", Request{
			Task:    "design2sva",
			Params:  Params{Models: []string{"gpt-4o"}},
			Options: engine.Config{Limit: 2, Samples: 2, Workers: 2},
		}},
		{"table6", Request{Task: "dataset-stats"}},
		{"table_agr", Request{
			Task:    "agr",
			Params:  Params{Models: []string{"gpt-4o"}},
			Options: engine.Config{Limit: 5, Samples: 2, Workers: 2},
		}},
		{"figure_r", Request{
			Task:    "refinement",
			Params:  Params{Models: []string{"gpt-4o"}, Count: 6, Rounds: []int{0, 1}},
			Options: engine.Config{Samples: 2, Workers: 2},
		}},
		{"figure6", Request{
			Task:    "bleu-correlation",
			Params:  Params{Models: []string{"gpt-4o"}},
			Options: engine.Config{Limit: 6, Workers: 2},
		}},
	}
}

// runShards evaluates one shard per fresh engine — separate memo
// pools, like real workers — and round-trips every partial through
// its JSON wire encoding to prove nothing is lost in flight.
func runShards(t *testing.T, req Request, n int) []*Partial {
	t.Helper()
	partials := make([]*Partial, 0, n)
	for i := 0; i < n; i++ {
		sub := req
		sub.Options.Shard = engine.Shard{Index: i, Count: n}
		p, err := NewEngine(engine.Config{}).RunPartial(context.Background(), sub)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		data, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		rt, err := DecodePartial(data)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, rt)
	}
	return partials
}

// reportBytes is the pair the merge invariant quantifies over.
func reportBytes(t *testing.T, r *Report) ([]byte, string) {
	t.Helper()
	enc, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc, r.Render()
}

// TestMergeReportsByteIdentical is the merge invariant: for every
// registry task, MergeReports over any permutation of any shard
// partition (counts 1, 2, 4, 7) equals the unsharded report
// byte-for-byte, in both Encode and Render output.
func TestMergeReportsByteIdentical(t *testing.T) {
	for _, c := range mergeCases() {
		t.Run(c.name, func(t *testing.T) {
			base, err := NewEngine(engine.Config{}).Run(context.Background(), c.req)
			if err != nil {
				t.Fatal(err)
			}
			wantEnc, wantText := reportBytes(t, base.Report)

			counts := []int{1, 2, 4, 7}
			spec, err := Lookup(c.req.Task)
			if err != nil {
				t.Fatal(err)
			}
			if !spec.Shardable() {
				counts = []int{1} // grid-less tasks run whole
			}
			rng := rand.New(rand.NewSource(42))
			for _, n := range counts {
				partials := runShards(t, c.req, n)
				for trial := 0; trial < 3; trial++ {
					perm := append([]*Partial(nil), partials...)
					rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
					merged, err := MergeRuns(perm)
					if err != nil {
						t.Fatalf("n=%d trial %d: %v", n, trial, err)
					}
					gotEnc, gotText := reportBytes(t, merged.Report)
					if !bytes.Equal(gotEnc, wantEnc) {
						t.Fatalf("n=%d trial %d: merged Encode diverged\n--- merged ---\n%s\n--- unsharded ---\n%s", n, trial, gotEnc, wantEnc)
					}
					if gotText != wantText {
						t.Fatalf("n=%d trial %d: merged Render diverged\n--- merged ---\n%s\n--- unsharded ---\n%s", n, trial, gotText, wantText)
					}
					if merged.Stats.Jobs != base.Stats.Jobs {
						t.Errorf("n=%d: merged stats count %d jobs, unsharded %d", n, merged.Stats.Jobs, base.Stats.Jobs)
					}
				}
			}
		})
	}
}

// TestMergeAfterShardRetry models the coordinator's failure path: one
// shard's first attempt dies mid-run (context cancellation), a fresh
// engine retries it, and the merged report must still be
// byte-identical to the unsharded run.
func TestMergeAfterShardRetry(t *testing.T) {
	req := Request{
		Task:    "nl2sva-human-passk",
		Params:  Params{Models: []string{"gpt-4o"}},
		Options: engine.Config{Limit: 5, Samples: 2, Workers: 2},
	}
	base, err := NewEngine(engine.Config{}).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, wantText := reportBytes(t, base.Report)

	const n = 3
	partials := make([]*Partial, 0, n)
	for i := 0; i < n; i++ {
		sub := req
		sub.Options.Shard = engine.Shard{Index: i, Count: n}
		if i == 1 {
			// First attempt: cancelled after two jobs, as a worker crash
			// or timeout would leave it.
			ctx, cancel := context.WithCancel(context.Background())
			jobs := 0
			attempt := sub
			attempt.Progress = func(Event) {
				if jobs++; jobs == 2 {
					cancel()
				}
			}
			if _, err := NewEngine(engine.Config{}).RunPartial(ctx, attempt); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled shard attempt returned %v", err)
			}
			cancel()
		}
		p, err := NewEngine(engine.Config{}).RunPartial(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	merged, err := MergeReports(partials)
	if err != nil {
		t.Fatal(err)
	}
	gotEnc, gotText := reportBytes(t, merged)
	if !bytes.Equal(gotEnc, wantEnc) || gotText != wantText {
		t.Fatalf("post-retry merge diverged from unsharded run")
	}
}

// TestMergeRejectsBrokenPartitions pins the validation surface:
// incomplete, duplicated, or inconsistent partitions must error, not
// silently mis-merge.
func TestMergeRejectsBrokenPartitions(t *testing.T) {
	req := Request{
		Task:    "nl2sva-human",
		Params:  Params{Models: []string{"gpt-4o"}},
		Options: engine.Config{Limit: 6, Workers: 2},
	}
	partials := runShards(t, req, 3)

	cases := []struct {
		name string
		in   []*Partial
		want string
	}{
		{"empty", nil, "zero partials"},
		{"missing shard", partials[:2], "shards"},
		{"duplicate shard", []*Partial{partials[0], partials[1], partials[1]}, "partition"},
	}
	for _, c := range cases {
		if _, err := MergeReports(c.in); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}

	// A shard from a different task or parameterization must be refused.
	other := runShards(t, Request{
		Task:    "nl2sva-human",
		Params:  Params{Models: []string{"llama-3-8b"}},
		Options: engine.Config{Limit: 6, Workers: 2},
	}, 3)
	mixed := []*Partial{partials[0], partials[1], other[2]}
	if _, err := MergeReports(mixed); err == nil || !strings.Contains(err.Error(), "params") {
		t.Errorf("mixed params: got %v", err)
	}
	otherOpts := runShards(t, Request{
		Task:    "nl2sva-human",
		Params:  Params{Models: []string{"gpt-4o"}},
		Options: engine.Config{Limit: 4, Workers: 2},
	}, 3)
	mixed = []*Partial{partials[0], partials[1], otherOpts[2]}
	if _, err := MergeReports(mixed); err == nil || !strings.Contains(err.Error(), "options") {
		t.Errorf("mixed options: got %v", err)
	}
}
