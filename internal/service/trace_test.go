package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fveval/internal/engine"
	"fveval/internal/obs"
	"fveval/internal/service/api"
	"fveval/internal/service/client"
	"fveval/internal/task"
)

// traceRequest is the small run the trace tests submit.
func traceRequest() task.Request {
	return task.Request{
		Task:    "nl2sva-human",
		Params:  task.Params{Models: []string{"gpt-4o"}},
		Options: engine.Config{Limit: 4, Workers: 2},
	}
}

// spanIndex builds lookup tables over a fetched span dump.
func spanIndex(t *testing.T, spans []obs.SpanData) (byID map[uint64]obs.SpanData, counts map[string]int) {
	t.Helper()
	byID = make(map[uint64]obs.SpanData, len(spans))
	counts = map[string]int{}
	roots := 0
	for _, d := range spans {
		if _, dup := byID[d.ID]; dup {
			t.Fatalf("duplicate span id %d", d.ID)
		}
		byID[d.ID] = d
		counts[d.Name]++
		if d.Parent == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want 1", roots)
	}
	for _, d := range spans {
		if d.Parent != 0 {
			if _, ok := byID[d.Parent]; !ok {
				t.Fatalf("span %d %q has unknown parent %d", d.ID, d.Name, d.Parent)
			}
		}
	}
	return byID, counts
}

// TestTraceEndpointLocal submits a traced run against the local
// engine, fetches its span dump, and pins: one rooted tree with the
// queue span and per-job spans, a queue-phase profile entry on the
// run, byte-identical report output vs. an untraced submission, and
// 404 for runs that did not opt in.
func TestTraceEndpointLocal(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{}))
	defer srv.Close()
	ctx := context.Background()
	cl := client.New(srv.URL)

	// Oracle: a fresh single engine, independent of the server's state
	// (the server's engine memoizes judgments across runs, which would
	// mask the judge-phase spans on a second submission).
	base, err := task.NewEngine(engine.Config{}).Run(ctx, traceRequest())
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, err := base.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}

	req := traceRequest()
	req.Trace = &obs.TraceContext{}
	traced, err := cl.Run(ctx, api.Submission{Request: req}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Cached {
		t.Fatalf("traced submission was served from the result cache")
	}
	gotEnc, err := traced.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("tracing changed report bytes\n--- traced ---\n%s\n--- plain ---\n%s", gotEnc, wantEnc)
	}
	if traced.Run.Stats.Profile.Queue.Count != 1 {
		t.Errorf("queue phase %+v, want exactly one sample", traced.Run.Stats.Profile.Queue)
	}
	if traced.Run.Stats.Profile.Parse.Count == 0 {
		t.Errorf("profile missing engine phases: %+v", traced.Run.Stats.Profile)
	}

	spans, dropped, err := cl.Trace(ctx, traced.ID)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d spans under default capacity", dropped)
	}
	byID, counts := spanIndex(t, spans)
	if counts["run"] != 1 || counts["queue"] != 1 {
		t.Fatalf("span counts %v, want one run and one queue span", counts)
	}
	if counts["job"] != traced.Run.Stats.Jobs {
		t.Errorf("%d job spans, want %d", counts["job"], traced.Run.Stats.Jobs)
	}
	for _, d := range spans {
		if d.Name == "queue" && d.Phase != obs.PhaseQueue {
			t.Errorf("queue span phase %q", d.Phase)
		}
		if d.Name == "job" && byID[d.Parent].Name != "run" {
			t.Errorf("job span parented under %q, want run", byID[d.Parent].Name)
		}
	}

	// The trace export must convert cleanly.
	if _, err := obs.ChromeTrace(spans); err != nil {
		t.Fatal(err)
	}

	// An untraced submission has no trace to serve — even when (as
	// here) the traced run populated the result cache for it.
	plain, err := cl.Run(ctx, api.Submission{Request: traceRequest()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Trace(ctx, plain.ID); !api.IsCode(err, api.CodeNotFound) {
		t.Fatalf("untraced run trace error %v, want %s", err, api.CodeNotFound)
	}
}

// TestTraceEndpointDistributed is the cross-worker propagation e2e:
// two HTTP workers join the registry, a traced distributed run fans
// out across them, and the coordinator's trace endpoint serves one
// stitched tree containing the remote workers' spans, with the report
// still byte-identical to a single-engine run.
func TestTraceEndpointDistributed(t *testing.T) {
	coordSrv := httptest.NewServer(newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})}))
	defer coordSrv.Close()
	w1 := httptest.NewServer(newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})}))
	defer w1.Close()
	w2 := httptest.NewServer(newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})}))
	defer w2.Close()

	ctx := context.Background()
	cl := client.New(coordSrv.URL)
	for _, w := range []string{w1.URL, w2.URL} {
		if _, err := cl.RegisterWorker(ctx, w); err != nil {
			t.Fatal(err)
		}
	}

	req := traceRequest()
	base, err := task.NewEngine(engine.Config{}).Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, err := base.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}

	req.Trace = &obs.TraceContext{}
	view, err := cl.Run(ctx, api.Submission{Request: req, Distributed: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotEnc, err := view.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("traced distributed Encode diverged\n--- dist ---\n%s\n--- single ---\n%s", gotEnc, wantEnc)
	}

	spans, _, err := cl.Trace(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	byID, counts := spanIndex(t, spans)
	if counts["shard"] == 0 || counts["shard-run"] == 0 {
		t.Fatalf("distributed trace lacks worker spans: %v", counts)
	}
	if counts["shard-run"] != counts["shard"] {
		t.Errorf("%d adopted worker roots vs %d shard spans", counts["shard-run"], counts["shard"])
	}
	if counts["job"] != view.Run.Stats.Jobs {
		t.Errorf("%d job spans across workers, want %d", counts["job"], view.Run.Stats.Jobs)
	}
	for _, d := range spans {
		if d.Name == "shard-run" && byID[d.Parent].Name != "shard" {
			t.Errorf("worker root %d under %q, want shard", d.ID, byID[d.Parent].Name)
		}
	}
	// Merged profile = shard phases + the coordinator's queue wait.
	prof := view.Run.Stats.Profile
	if prof.Queue.Count != 1 || prof.Prompt.Count == 0 {
		t.Errorf("distributed profile %+v, want one queue sample and worker phases", prof)
	}
}

// TestPprofAndRuntimeMetrics covers the profiling satellites: pprof
// handlers mount only behind Config.Pprof, and the scrape carries the
// queue-wait histogram and the Go runtime gauges.
func TestPprofAndRuntimeMetrics(t *testing.T) {
	plain := httptest.NewServer(newTestServer(t, Config{}))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without the flag: %d", resp.StatusCode)
	}

	prof := httptest.NewServer(newTestServer(t, Config{Pprof: true}))
	defer prof.Close()
	resp, err = http.Get(prof.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof heap scrape: %d", resp.StatusCode)
	}

	cl := client.New(prof.URL)
	if _, err := cl.Run(context.Background(), api.Submission{Request: traceRequest()}, nil); err != nil {
		t.Fatal(err)
	}
	text, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fveval_queue_wait_seconds_count 1",
		`fveval_queue_wait_seconds_bucket{le="+Inf"} 1`,
		"fveval_go_goroutines ",
		"fveval_go_heap_bytes ",
		"fveval_go_gc_pause_seconds_total ",
		"fveval_go_sched_latency_p50_seconds ",
		"fveval_go_sched_latency_p99_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}
}
