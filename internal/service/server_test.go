package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fveval/internal/dist"
	"fveval/internal/engine"
	"fveval/internal/service/api"
	"fveval/internal/service/client"
	"fveval/internal/task"
)

// newTestServer builds a server (in-memory store unless cfg sets a
// DataDir) and registers cleanup.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = task.NewEngine(engine.Config{Workers: 2})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, v)
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// pollTerminal waits for a run to reach a terminal state and returns
// its final view.
func pollTerminal(t *testing.T, base, id string) api.RunView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var view api.RunView
		getJSON(t, base+"/v1/runs/"+id, &view)
		if api.Terminal(view.Status) {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never finished (status %s)", id, view.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceEndToEnd is the smoke flow CI exercises: list the
// registry, submit a small run, stream its progress, poll it to
// completion, and check the returned unified report renders the
// paper table.
func TestServiceEndToEnd(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{}))
	defer srv.Close()

	// 1. Registry listing.
	var tasks api.TaskList
	getJSON(t, srv.URL+"/v1/tasks", &tasks)
	if len(tasks.Tasks) < 10 {
		t.Fatalf("registry listing too small: %d", len(tasks.Tasks))
	}
	found := false
	for _, s := range tasks.Tasks {
		if s.Name == "nl2sva-human" && s.Table == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("nl2sva-human missing from listing")
	}

	// 2. Submit a small run.
	body := `{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":6}}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted api.SubmitResponse
	decodeBody(t, resp, &submitted)
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, submitted.ID)
	}

	// 3. Stream progress events (NDJSON): expect one line per job plus
	// a terminal status line.
	streamResp, err := http.Get(srv.URL + "/v1/runs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []task.Event
	var terminal string
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]any
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if st, ok := probe["status"].(string); ok {
			terminal = st
			break
		}
		var ev task.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if terminal != api.StateDone {
		t.Fatalf("stream ended with %q, want %q", terminal, api.StateDone)
	}
	if len(events) != 6 {
		t.Fatalf("streamed %d events, want 6", len(events))
	}
	for i, ev := range events {
		if ev.Task != "nl2sva-human" || ev.Done != i+1 || ev.Total != 6 {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
	}

	// 4. Poll the finished run; the unified report must render Table 1.
	var view api.RunView
	getJSON(t, srv.URL+"/v1/runs/"+submitted.ID, &view)
	if view.Status != api.StateDone || view.Run == nil {
		t.Fatalf("poll: %+v", view)
	}
	table := view.Run.Report.Render()
	if !strings.HasPrefix(table, "Table 1:") || !strings.Contains(table, "gpt-4o") {
		t.Fatalf("rendered report malformed:\n%s", table)
	}
	if view.Run.Stats.Jobs != 6 {
		t.Fatalf("run stats jobs %d, want 6", view.Run.Stats.Jobs)
	}

	// 5. The run list includes it, with lifecycle timestamps.
	var list api.RunList
	getJSON(t, srv.URL+"/v1/runs", &list)
	if len(list.Runs) != 1 || list.Runs[0].ID != submitted.ID {
		t.Fatalf("run list malformed: %+v", list)
	}
	if list.Runs[0].CreatedMS == 0 || list.Runs[0].FinishedMS == 0 {
		t.Fatalf("missing lifecycle timestamps: %+v", list.Runs[0])
	}
}

// TestServiceNewSpecs runs the AGR table and the refinement figure
// end-to-end through the HTTP surface: submit, poll to completion,
// and check each renders its artifact (and that the refinement run
// reports its feedback-loop traffic in the stats).
func TestServiceNewSpecs(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{}))
	defer srv.Close()

	submit := func(body string) api.RunView {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sub api.SubmitResponse
		decodeBody(t, resp, &sub)
		if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
			t.Fatalf("submit: status %d, id %q", resp.StatusCode, sub.ID)
		}
		view := pollTerminal(t, srv.URL, sub.ID)
		if view.Status != api.StateDone || view.Run == nil {
			t.Fatalf("run did not finish cleanly: %+v", view)
		}
		return view
	}

	agr := submit(`{"task":"agr","params":{"models":["gpt-4o"]},"options":{"limit":4,"samples":2}}`)
	if out := agr.Run.Report.Render(); !strings.HasPrefix(out, "Table AGR:") || !strings.Contains(out, "Unlock@") {
		t.Fatalf("AGR report malformed:\n%s", out)
	}

	ref := submit(`{"task":"refinement","params":{"models":["gpt-4o"],"count":5,"rounds":[0,2]},"options":{"samples":2}}`)
	if out := ref.Run.Report.Render(); !strings.HasPrefix(out, "Figure R:") || !strings.Contains(out, "round=2") {
		t.Fatalf("refinement report malformed:\n%s", out)
	}
	if ref.Run.Stats.RefineRounds == 0 {
		t.Fatalf("refinement run reports zero refine rounds: %+v", ref.Run.Stats)
	}
}

// TestServiceValidationAndErrors checks the 400/404 surfaces and the
// unified {"error":{"code","message"}} envelope they speak.
func TestServiceValidationAndErrors(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{}))
	defer srv.Close()

	bad := []string{
		`{"task":"no-such-task"}`,
		`{"task":"nl2sva-human","params":{"kinds":["fsm"]}}`,
		`{"task":"nl2sva-human","options":{"limit":-1}}`,
		`{"task":"nl2sva-human","unknown_field":1}`,
		`{not json`,
		`{"task":"nl2sva-human","priority":11}`,
		`{"task":"nl2sva-human","distributed":true,"options":{"shard":{"index":0,"count":2}}}`,
	}
	for _, body := range bad {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var env api.ErrorEnvelope
		decodeBody(t, resp, &env)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
		if env.Error.Code != api.CodeBadRequest || env.Error.Message == "" {
			t.Errorf("body %s: envelope %+v, want code %q", body, env, api.CodeBadRequest)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/runs/run-999999")
	if err != nil {
		t.Fatal(err)
	}
	var env api.ErrorEnvelope
	decodeBody(t, resp, &env)
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != api.CodeNotFound {
		t.Errorf("unknown run: status %d code %q, want 404 %q", resp.StatusCode, env.Error.Code, api.CodeNotFound)
	}
}

// TestServiceCancel submits a larger run, cancels it, and polls until
// it lands in a terminal state.
func TestServiceCancel(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{Engine: task.NewEngine(engine.Config{Workers: 1})}))
	defer srv.Close()

	body := `{"task":"nl2sva-human-passk","params":{"models":["gpt-4o","llama-3.1-70b"]},"options":{"samples":5,"workers":1}}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted api.SubmitResponse
	decodeBody(t, resp, &submitted)

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+submitted.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", cresp.StatusCode)
	}

	view := pollTerminal(t, srv.URL, submitted.ID)
	// A fast machine may finish the run before the cancel lands; both
	// terminal states are acceptable, but hanging is not.
	if view.Status != api.StateCancelled && view.Status != api.StateDone {
		t.Fatalf("unexpected terminal status %q", view.Status)
	}
}

// TestServiceSSEFraming checks the Accept-negotiated SSE framing.
func TestServiceSSEFraming(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(`{"task":"dataset-stats"}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted api.SubmitResponse
	decodeBody(t, resp, &submitted)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/runs/"+submitted.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(sresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "event: end") {
		t.Fatalf("SSE stream missing end event:\n%s", buf.String())
	}
}

// TestServicePartialRun submits a shard-scoped run and expects the
// raw partial-report wire shape (not an aggregated Run) back.
func TestServicePartialRun(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{}))
	defer srv.Close()

	body := `{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":6,"shard":{"index":0,"count":2}}}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted api.SubmitResponse
	decodeBody(t, resp, &submitted)
	view := pollTerminal(t, srv.URL, submitted.ID)
	if view.Status != api.StateDone {
		t.Fatalf("partial run ended %s (%s)", view.Status, view.Error)
	}
	if view.Run != nil {
		t.Fatalf("shard-scoped run returned an aggregated Run")
	}
	p := view.Part
	if p == nil || p.Task != "nl2sva-human" || len(p.Groups) != 1 {
		t.Fatalf("partial malformed: %+v", p)
	}
	g := p.Groups[0].Grid
	want := engine.Shard{Index: 0, Count: 2}
	if g == nil || g.Shard != want || g.Total != 6 || g.Local != 3 {
		t.Fatalf("grid provenance malformed: %+v", g)
	}
}

// TestServerDrain exercises graceful shutdown: in-flight runs are
// cancelled to a terminal state, their event streams end, new
// submissions are refused 503 draining, and /readyz flips.
func TestServerDrain(t *testing.T) {
	s := newTestServer(t, Config{Engine: task.NewEngine(engine.Config{Workers: 1})})
	srv := httptest.NewServer(s)
	defer srv.Close()

	body := `{"task":"nl2sva-human-passk","params":{"models":["gpt-4o","llama-3.1-70b"]},"options":{"samples":5,"workers":1}}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted api.SubmitResponse
	decodeBody(t, resp, &submitted)

	s.Drain()

	view := pollTerminal(t, srv.URL, submitted.ID)
	if !api.Terminal(view.Status) {
		t.Fatalf("drain left run %s in %s", submitted.ID, view.Status)
	}

	// The drained run's event stream must replay and terminate, not hang.
	streamResp, err := http.Get(srv.URL + "/v1/runs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(streamResp.Body); err != nil {
		t.Fatal(err)
	}
	streamResp.Body.Close()
	if !strings.Contains(buf.String(), `"status"`) {
		t.Fatalf("drained stream missing terminal status:\n%s", buf.String())
	}

	resp, err = http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(`{"task":"dataset-stats"}`))
	if err != nil {
		t.Fatal(err)
	}
	var env api.ErrorEnvelope
	decodeBody(t, resp, &env)
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != api.CodeDraining {
		t.Fatalf("post-drain submit: status %d code %q, want 503 %q", resp.StatusCode, env.Error.Code, api.CodeDraining)
	}

	rresp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain readyz: status %d, want 503", rresp.StatusCode)
	}
}

// TestAdmissionControl fills one executor and the queue, then checks
// the quota (429) and queue-full (503) rejections, their Retry-After
// headers, and that a second identity is accounted separately. The
// executor is pinned deterministically: it runs a distributed
// submission against a worker that hangs until the test releases it.
func TestAdmissionControl(t *testing.T) {
	gate := make(chan struct{})
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-gate:
		case <-r.Context().Done():
		}
		http.Error(w, `{"error":{"code":"internal","message":"gated worker"}}`, http.StatusInternalServerError)
	}))
	defer worker.Close()
	defer close(gate) // release the handler before worker.Close waits on it

	s := newTestServer(t, Config{
		Engine:      task.NewEngine(engine.Config{Workers: 1}),
		Concurrency: 1,
		ClientQuota: 2,
		QueueDepth:  1,
	})
	srv := httptest.NewServer(s)
	defer srv.Close()
	s.registry.register(worker.URL)

	slow := `{"task":"dataset-stats","distributed":true}`
	quick := `{"task":"dataset-stats"}`

	submit := func(body, key string) (*http.Response, api.ErrorEnvelope, api.SubmitResponse) {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/runs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var raw json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
			t.Fatal(err)
		}
		var env api.ErrorEnvelope
		var ok api.SubmitResponse
		json.Unmarshal(raw, &env) //nolint:errcheck
		json.Unmarshal(raw, &ok)  //nolint:errcheck
		return resp, env, ok
	}

	// Occupy the executor, then the queue slot: client load 2 of 2.
	resp, _, first := submit(slow, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	waitRunning(t, srv.URL, first.ID)
	resp, _, _ = submit(quick, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}

	// Same identity: quota trips first.
	resp, env, _ := submit(quick, "")
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != api.CodeQuotaExceeded {
		t.Fatalf("quota: status %d code %q", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("quota rejection missing Retry-After")
	}

	// Fresh identity: the quota is per client, but the shared queue
	// (depth 1, already holding one run) is full.
	resp, env, _ = submit(quick, "other-client")
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != api.CodeQueueFull {
		t.Fatalf("queue full: status %d code %q", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("queue-full rejection missing Retry-After")
	}
}

// waitRunning polls until a run leaves the queued state.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var view api.RunView
		getJSON(t, base+"/v1/runs/"+id, &view)
		if view.Status != api.StateQueued {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never started", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResultCache submits the same request twice: the second response
// must be an immediate cache hit (200, cached) whose payload encodes
// byte-identically to the first run's, and NoCache must bypass it.
func TestResultCache(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{}))
	defer srv.Close()

	body := `{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":4}}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var first api.SubmitResponse
	decodeBody(t, resp, &first)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	firstView := pollTerminal(t, srv.URL, first.ID)
	if firstView.Status != api.StateDone {
		t.Fatalf("first run: %s (%s)", firstView.Status, firstView.Error)
	}
	firstEnc, err := json.Marshal(firstView.Run)
	if err != nil {
		t.Fatal(err)
	}

	// Identical resubmission (different parallelism on purpose — the
	// cache key canonicalizes Workers away).
	body2 := `{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":4,"workers":3}}`
	resp, err = http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	var second api.SubmitResponse
	decodeBody(t, resp, &second)
	if resp.StatusCode != http.StatusOK || !second.Cached || second.Status != api.StateDone {
		t.Fatalf("second submit not a cache hit: status %d %+v", resp.StatusCode, second)
	}
	if second.ID == first.ID {
		t.Fatalf("cache hit reused the run id")
	}
	var secondView api.RunView
	getJSON(t, srv.URL+"/v1/runs/"+second.ID, &secondView)
	if !secondView.Cached || secondView.Run == nil {
		t.Fatalf("cached view malformed: %+v", secondView)
	}
	secondEnc, err := json.Marshal(secondView.Run)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstEnc, secondEnc) {
		t.Fatalf("cached payload diverged\n--- first ---\n%s\n--- second ---\n%s", firstEnc, secondEnc)
	}

	// NoCache bypasses the store: a fresh execution, not a hit.
	body3 := `{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":4,"no_cache":true}}`
	resp, err = http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body3))
	if err != nil {
		t.Fatal(err)
	}
	var third api.SubmitResponse
	decodeBody(t, resp, &third)
	if resp.StatusCode != http.StatusAccepted || third.Cached {
		t.Fatalf("nocache submit was served from cache: status %d %+v", resp.StatusCode, third)
	}
	pollTerminal(t, srv.URL, third.ID)
}

// TestListPaginationAndFilters pages a run population with limit and
// cursor and filters it by state and task.
func TestListPaginationAndFilters(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{}))
	defer srv.Close()

	// Five terminal runs: one executed, four cache hits — plus one
	// distinct task for the task filter.
	for i := 0; i < 5; i++ {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
			strings.NewReader(`{"task":"dataset-stats"}`))
		if err != nil {
			t.Fatal(err)
		}
		var sub api.SubmitResponse
		decodeBody(t, resp, &sub)
		pollTerminal(t, srv.URL, sub.ID)
	}
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub api.SubmitResponse
	decodeBody(t, resp, &sub)
	pollTerminal(t, srv.URL, sub.ID)

	// Page through all six runs two at a time.
	var pages [][]api.RunView
	cursor := ""
	for {
		url := srv.URL + "/v1/runs?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var page api.RunList
		getJSON(t, url, &page)
		if len(page.Runs) > 0 {
			pages = append(pages, page.Runs)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	total := 0
	var lastID string
	for _, p := range pages {
		for _, r := range p {
			if r.ID <= lastID {
				t.Fatalf("pagination order broken: %q after %q", r.ID, lastID)
			}
			lastID = r.ID
			total++
		}
	}
	if total != 6 || len(pages) != 3 {
		t.Fatalf("paged %d runs over %d pages, want 6 over 3", total, len(pages))
	}

	// Filters.
	var byTask api.RunList
	getJSON(t, srv.URL+"/v1/runs?task=nl2sva-human", &byTask)
	if len(byTask.Runs) != 1 || byTask.Runs[0].Task != "nl2sva-human" {
		t.Fatalf("task filter: %+v", byTask.Runs)
	}
	var byState api.RunList
	getJSON(t, srv.URL+"/v1/runs?state=done", &byState)
	if len(byState.Runs) != 6 {
		t.Fatalf("state filter matched %d, want 6", len(byState.Runs))
	}
	var none api.RunList
	getJSON(t, srv.URL+"/v1/runs?state=cancelled", &none)
	if len(none.Runs) != 0 {
		t.Fatalf("cancelled filter matched %d, want 0", len(none.Runs))
	}
	resp, err = http.Get(srv.URL + "/v1/runs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus state filter: status %d, want 400", resp.StatusCode)
	}
}

// TestMetricsExposition checks the Prometheus text surface: known
// families present, counters moved by the work performed, and the
// exposition stable in sorted order.
func TestMetricsExposition(t *testing.T) {
	srv := httptest.NewServer(newTestServer(t, Config{}))
	defer srv.Close()

	for i := 0; i < 2; i++ { // second submission is a cache hit
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
			strings.NewReader(`{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":4}}`))
		if err != nil {
			t.Fatal(err)
		}
		var sub api.SubmitResponse
		decodeBody(t, resp, &sub)
		pollTerminal(t, srv.URL, sub.ID)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := buf.String()

	for _, want := range []string{
		"fveval_runs_submitted_total 2",
		`fveval_runs_total{status="done"} 1`,
		"fveval_result_cache_hits_total 1",
		"fveval_result_cache_misses_total 1",
		"fveval_queue_depth 0",
		"fveval_runs_inflight 0",
		"fveval_workers_live 0",
		`fveval_admission_rejected_total{reason="quota"} 0`,
		"fveval_run_wall_seconds_count 1",
		"fveval_solver_wall_seconds_bucket",
		"fveval_equiv_cache_hits_total",
		"fveval_sim_refutations_total",
		"fveval_shard_retries_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The formal backend ran real checks, so the solver histogram has
	// observations.
	if !strings.Contains(text, "fveval_solver_wall_seconds_count") {
		t.Fatalf("solver wall histogram missing:\n%s", text)
	}
	var names []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			names = append(names, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("families not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

// fakeClock is a mutable test clock shared with Config.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestWorkerRegistryLifecycle drives register/heartbeat/evict over
// HTTP against a TTL clock the test controls.
func TestWorkerRegistryLifecycle(t *testing.T) {
	clock := &fakeClock{t: time.UnixMilli(1_700_000_000_000)}
	s := newTestServer(t, Config{WorkerTTL: 10 * time.Second, Now: clock.now})
	srv := httptest.NewServer(s)
	defer srv.Close()
	cl := client.New(srv.URL)
	ctx := context.Background()

	lease, err := cl.RegisterWorker(ctx, "http://worker-a:9000")
	if err != nil {
		t.Fatal(err)
	}
	if lease.TTLMS != 10_000 || lease.IntervalMS == 0 {
		t.Fatalf("lease malformed: %+v", lease)
	}
	// Re-registering the same URL keeps the identity.
	lease2, err := cl.RegisterWorker(ctx, "http://worker-a:9000")
	if err != nil || lease2.ID != lease.ID {
		t.Fatalf("re-register changed identity: %+v vs %+v (%v)", lease, lease2, err)
	}
	if _, err := cl.RegisterWorker(ctx, "http://worker-b:9000"); err != nil {
		t.Fatal(err)
	}

	workers, err := cl.Workers(ctx)
	if err != nil || len(workers) != 2 {
		t.Fatalf("workers: %+v (%v)", workers, err)
	}
	if workers[0].URL != "http://worker-a:9000" || workers[1].URL != "http://worker-b:9000" {
		t.Fatalf("fleet not URL-sorted: %+v", workers)
	}

	// Within TTL: heartbeat refreshes.
	clock.advance(8 * time.Second)
	if err := cl.Heartbeat(ctx, lease.ID); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	// worker-b never heartbeats: TTL lapses, the next listing evicts it.
	clock.advance(8 * time.Second)
	workers, err = cl.Workers(ctx)
	if err != nil || len(workers) != 1 || workers[0].ID != lease.ID {
		t.Fatalf("eviction: %+v (%v)", workers, err)
	}

	// A lapsed worker's heartbeat is a 404 not_found: re-register.
	clock.advance(11 * time.Second)
	err = cl.Heartbeat(ctx, lease.ID)
	if !api.IsCode(err, api.CodeNotFound) {
		t.Fatalf("lapsed heartbeat error %v, want %s", err, api.CodeNotFound)
	}

	// Explicit deregistration.
	lease3, err := cl.RegisterWorker(ctx, "http://worker-c:9000")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.DeregisterWorker(ctx, lease3.ID); err != nil {
		t.Fatal(err)
	}
	workers, err = cl.Workers(ctx)
	if err != nil || len(workers) != 0 {
		t.Fatalf("post-deregister fleet: %+v (%v)", workers, err)
	}

	// The eviction counter made it to /metrics.
	var buf bytes.Buffer
	s.writeMetrics(&buf)
	if !strings.Contains(buf.String(), "fveval_workers_evicted_total 2") {
		t.Fatalf("metrics missing eviction count:\n%s", buf.String())
	}
}

// TestClusterDistributedRun is the in-process cluster smoke over the
// rewritten client-backed HTTPRunner: two fvevald workers — one of
// which crashes its first submission — and coordinator output must be
// byte-identical to a single-engine run.
func TestClusterDistributedRun(t *testing.T) {
	a := httptest.NewServer(newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})}))
	defer a.Close()
	healthy := newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})})
	var injected atomic.Bool
	injected.Store(true)
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && injected.CompareAndSwap(true, false) {
			http.Error(w, `{"error":{"code":"internal","message":"injected worker crash"}}`, http.StatusInternalServerError)
			return
		}
		healthy.ServeHTTP(w, r)
	}))
	defer b.Close()

	req := task.Request{
		Task:    "nl2sva-human",
		Params:  task.Params{Models: []string{"gpt-4o", "llama-3-8b"}},
		Options: engine.Config{Limit: 6, Workers: 2},
	}
	base, err := task.NewEngine(engine.Config{}).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, err := base.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var jobs atomic.Int64
	coord, err := dist.New(
		[]dist.Runner{dist.NewHTTPRunner(a.URL), dist.NewHTTPRunner(b.URL)},
		dist.Options{Progress: func(ev dist.Event) {
			if ev.Type == dist.EventJob {
				jobs.Add(1)
			}
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("distributed Encode diverged\n--- dist ---\n%s\n--- single ---\n%s", gotEnc, wantEnc)
	}
	if got, want := res.Run.Report.Render(), base.Report.Render(); got != want {
		t.Fatalf("distributed Render diverged\n--- dist ---\n%s\n--- single ---\n%s", got, want)
	}
	if res.Retries < 1 {
		t.Fatalf("injected failure was never retried: %+v", res)
	}
	// 2 models x 6 instances, streamed once each across the fleet.
	if jobs.Load() != 12 {
		t.Fatalf("streamed %d merged job events, want 12", jobs.Load())
	}
}

// TestDistributedViaRegistry is the acceptance flow for the worker
// registry: two workers register themselves with a coordinator (no
// static fleet flags anywhere), a distributed submission fans out
// across them through the coordinator's own dist integration, and the
// merged report is byte-identical to a single-engine run.
func TestDistributedViaRegistry(t *testing.T) {
	coordSrv := httptest.NewServer(newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})}))
	defer coordSrv.Close()
	w1 := httptest.NewServer(newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})}))
	defer w1.Close()
	w2 := httptest.NewServer(newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})}))
	defer w2.Close()

	ctx := context.Background()
	cl := client.New(coordSrv.URL)

	// Distributed submissions against an empty registry are refused.
	_, err := cl.Submit(ctx, api.Submission{
		Request:     task.Request{Task: "nl2sva-human", Options: engine.Config{Limit: 6}},
		Distributed: true,
	})
	if !api.IsCode(err, api.CodeNoWorkers) {
		t.Fatalf("empty-registry submit error %v, want %s", err, api.CodeNoWorkers)
	}

	for _, w := range []string{w1.URL, w2.URL} {
		lease, err := cl.RegisterWorker(ctx, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Heartbeat(ctx, lease.ID); err != nil {
			t.Fatal(err)
		}
	}

	req := task.Request{
		Task:    "nl2sva-human",
		Params:  task.Params{Models: []string{"gpt-4o", "llama-3-8b"}},
		Options: engine.Config{Limit: 6, Workers: 2},
	}
	base, err := task.NewEngine(engine.Config{}).Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, err := base.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var jobs atomic.Int64
	view, err := cl.Run(ctx, api.Submission{Request: req, Distributed: true},
		func(task.Event) { jobs.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != api.StateDone || view.Run == nil {
		t.Fatalf("distributed run: %+v", view)
	}
	gotEnc, err := view.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("registry-distributed Encode diverged\n--- dist ---\n%s\n--- single ---\n%s", gotEnc, wantEnc)
	}
	if jobs.Load() == 0 {
		t.Fatalf("no forwarded job events from the distributed run")
	}
}
