package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"fveval/internal/fault"
	"fveval/internal/service/api"
	"fveval/internal/task"
)

// The run store is a disk journal with snapshot compaction: every run
// lifecycle transition appends one JSON line to journal.jsonl (synced
// before the transition is acknowledged), and once the journal
// accumulates enough appends the live run set is rewritten as
// snapshot.json and the journal truncated. Recovery replays snapshot
// then journal, tolerating a torn final line (the kill -9 case).
// Terminal runs therefore survive restarts byte-for-byte — a
// recovered Report re-encodes identically to its pre-crash JSON —
// while queued runs are re-admitted, in-flight distributed runs
// resume from their checkpointed shards, and other in-flight runs are
// reported interrupted (their partial engine state is gone).
const (
	journalFile  = "journal.jsonl"
	snapshotFile = "snapshot.json"
)

// compactThreshold is how many journal appends accumulate before the
// next append triggers snapshot compaction — the bound on journal
// growth for a long-lived server.
const compactThreshold = 256

// runRecord is the persisted form of one run: everything needed to
// serve its view after a restart. It doubles as the snapshot element.
type runRecord struct {
	ID         string         `json:"id"`
	Client     string         `json:"client,omitempty"`
	Sub        api.Submission `json:"sub"`
	Status     string         `json:"status"`
	Error      string         `json:"error,omitempty"`
	Cached     bool           `json:"cached,omitempty"`
	CreatedMS  int64          `json:"created_ms,omitempty"`
	StartedMS  int64          `json:"started_ms,omitempty"`
	FinishedMS int64          `json:"finished_ms,omitempty"`
	Run        *task.Run      `json:"run,omitempty"`
	Partial    *task.Partial  `json:"partial,omitempty"`
	// Checkpoints hold the completed shard partials of an in-flight
	// distributed run, keyed by shard index; CheckpointShards pins the
	// plan size they were cut against (checkpoint indices are only
	// meaningful for that exact shard count). Recovery reseeds the
	// dist coordinator from them instead of reporting the run
	// interrupted; both clear when the run finishes.
	Checkpoints      map[int]*task.Partial `json:"checkpoints,omitempty"`
	CheckpointShards int                   `json:"checkpoint_shards,omitempty"`
}

// journalRecord is one append-only journal line.
type journalRecord struct {
	Op string `json:"op"` // "submit" | "start" | "finish" | "evict" | "checkpoint"
	MS int64  `json:"ms"`
	// ID locates the run (submit/start/finish/checkpoint); IDs carries
	// a batch eviction.
	ID  string   `json:"id,omitempty"`
	IDs []string `json:"ids,omitempty"`
	// submit payload
	Client string          `json:"client,omitempty"`
	Sub    *api.Submission `json:"sub,omitempty"`
	// finish payload
	Status  string        `json:"status,omitempty"`
	Error   string        `json:"error,omitempty"`
	Cached  bool          `json:"cached,omitempty"`
	Run     *task.Run     `json:"run,omitempty"`
	Partial *task.Partial `json:"partial,omitempty"`
	// checkpoint payload: one completed shard of a distributed run
	// (Partial above carries the shard's grids).
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
}

// snapshot is the compacted on-disk state.
type snapshot struct {
	V    int          `json:"v"`
	Runs []*runRecord `json:"runs"`
}

// journal is the append side of the store. A nil *journal is a valid
// no-persistence store: every method is a no-op, which is how the
// server runs without -data-dir (and how most tests run).
type journal struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	appends int // since the last compaction
}

// maxJournalLine bounds one journal line on replay; table-scale Run
// payloads are hundreds of KB, so allow plenty of headroom.
const maxJournalLine = 64 << 20

// openJournal opens (creating if needed) the store under dir and
// replays it, returning the recovered run records keyed by id.
func openJournal(dir string) (*journal, map[string]*runRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: data dir: %w", err)
	}
	recovered := map[string]*runRecord{}

	// Snapshot first, then the journal suffix on top of it.
	if data, err := os.ReadFile(filepath.Join(dir, snapshotFile)); err == nil {
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, nil, fmt.Errorf("service: corrupt snapshot: %w", err)
		}
		for _, r := range snap.Runs {
			recovered[r.ID] = r
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	jpath := filepath.Join(dir, journalFile)
	if rf, err := os.Open(jpath); err == nil {
		sc := bufio.NewScanner(rf)
		sc.Buffer(make([]byte, 64*1024), maxJournalLine)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				// A torn final line is the expected kill -9 artifact:
				// everything before it is intact, so stop replaying
				// rather than failing recovery.
				break
			}
			applyRecord(recovered, &rec)
		}
		rf.Close()
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("service: journal replay: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &journal{dir: dir, f: f}, recovered, nil
}

// applyRecord folds one journal line into the recovered state.
func applyRecord(state map[string]*runRecord, rec *journalRecord) {
	switch rec.Op {
	case "submit":
		if rec.Sub == nil {
			return
		}
		state[rec.ID] = &runRecord{
			ID: rec.ID, Client: rec.Client, Sub: *rec.Sub,
			Status: api.StateQueued, CreatedMS: rec.MS,
		}
	case "start":
		if r, ok := state[rec.ID]; ok {
			r.Status = api.StateRunning
			r.StartedMS = rec.MS
		}
	case "finish":
		if r, ok := state[rec.ID]; ok {
			r.Status = rec.Status
			r.Error = rec.Error
			r.Cached = rec.Cached
			r.FinishedMS = rec.MS
			r.Run = rec.Run
			r.Partial = rec.Partial
			r.Checkpoints = nil
			r.CheckpointShards = 0
		}
	case "checkpoint":
		// A checkpoint is only meaningful for a run still in flight; a
		// terminal record (a cancel that raced the shard landing) must
		// never be resurrected by a late checkpoint.
		if r, ok := state[rec.ID]; ok && !api.Terminal(r.Status) && rec.Partial != nil {
			if r.Checkpoints == nil || r.CheckpointShards != rec.Shards {
				// First checkpoint, or a re-plan under a different shard
				// count: earlier indices no longer line up.
				r.Checkpoints = map[int]*task.Partial{}
				r.CheckpointShards = rec.Shards
			}
			r.Checkpoints[rec.Shard] = rec.Partial
		}
	case "evict":
		for _, id := range rec.IDs {
			delete(state, id)
		}
	}
}

// append writes one record and syncs it to disk before returning, so
// an acknowledged transition survives kill -9. Returns the append
// count since the last compaction (0 for a nil journal).
func (j *journal) append(rec *journalRecord) (int, error) {
	if j == nil {
		return 0, nil
	}
	if err := fault.Hit(fault.JournalAppend); err != nil {
		return 0, err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	line := append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	// Torn-write seam: a firing cut persists only a prefix of the line
	// — the on-disk shape of a crash between write and fsync — and
	// fails the append. Recovery treats the torn tail as the expected
	// kill -9 artifact.
	if off, ok := fault.CutLen(fault.JournalFsync, len(line)); ok {
		j.f.Write(line[:off]) //nolint:errcheck
		j.f.Sync()            //nolint:errcheck
		return 0, fmt.Errorf("service: journal append torn at byte %d/%d (injected)", off, len(line))
	}
	if _, err := j.f.Write(line); err != nil {
		return 0, err
	}
	if err := j.f.Sync(); err != nil {
		return 0, err
	}
	j.appends++
	return j.appends, nil
}

// compact rewrites the snapshot from the live run set and truncates
// the journal: snapshot.json.tmp is written and synced, renamed over
// snapshot.json, and only then is journal.jsonl truncated — a crash
// between those steps replays a journal whose records are idempotent
// over the new snapshot.
func (j *journal) compact(records []*runRecord) error {
	if j == nil {
		return nil
	}
	if err := fault.Hit(fault.SnapshotCompact); err != nil {
		return err
	}
	sorted := append([]*runRecord(nil), records...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].ID < sorted[b].ID })
	data, err := json.Marshal(snapshot{V: 1, Runs: sorted})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp := filepath.Join(j.dir, snapshotFile+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapshotFile)); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(j.dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.appends = 0
	return nil
}

// size reports the journal's current byte length (testing hook).
func (j *journal) size() (int64, error) {
	if j == nil {
		return 0, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st, err := j.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close flushes and closes the journal file.
func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
