// Package service is the production HTTP tier of the FVEval task
// registry — the code behind cmd/fvevald. It wraps one shared
// task.Engine with everything a long-lived, multi-client deployment
// needs that the engine itself does not provide:
//
//   - a persistent run store: every lifecycle transition is journaled
//     to disk (append-only JSONL with snapshot compaction) and
//     recovered on restart — terminal runs are served byte-identical
//     from the journal, queued runs are re-admitted, in-flight
//     distributed runs resume from their checkpointed shards, and
//     other in-flight runs are reported interrupted (store.go);
//   - an admission-controlled job queue: bounded depth, per-client
//     queued+running quotas, and priority ordering, with 429/503 +
//     Retry-After on overload (queue.go);
//   - a worker registry: fvevald workers register and heartbeat in,
//     so distributed runs draw their fleet from live registrations
//     instead of a static flag list (registry.go);
//   - a cross-request content-addressed result cache keyed on the
//     canonicalized request (resultcache.go);
//   - observability: Prometheus-text /metrics, structured JSON
//     request logging, and /healthz + /readyz (metrics.go).
//
// The wire contract lives in internal/service/api; the matching typed
// client in internal/service/client.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"fveval/internal/dist"
	"fveval/internal/fault"
	"fveval/internal/obs"
	"fveval/internal/service/api"
	"fveval/internal/task"
)

// maxTraceCap bounds the per-run completed-span ring a client can
// request via Trace.Cap — the server-side ceiling on how much memory
// one traced run pins (~256k spans).
const maxTraceCap = 1 << 18

// Config tunes a Server. Engine is required; every other field has a
// production default.
type Config struct {
	// Engine is the shared evaluation engine behind every run.
	Engine *task.Engine
	// DataDir roots the persistent run store; empty disables
	// persistence (runs live only in memory, as in tests).
	DataDir string
	// QueueDepth bounds the admission queue (0 = 256). A submission
	// beyond it is rejected 503 queue_full.
	QueueDepth int
	// ClientQuota bounds one client's queued+running runs (0 = 16). A
	// submission beyond it is rejected 429 quota_exceeded.
	ClientQuota int
	// Concurrency is the number of run executors draining the queue
	// (0 = 2).
	Concurrency int
	// RetainRuns bounds retained terminal run records (0 = 64); the
	// oldest-finished beyond it are evicted from memory and journal.
	RetainRuns int
	// RetainAge, when positive, additionally evicts terminal runs
	// whose finish time is older than the age — age-based retention
	// on top of the count bound.
	RetainAge time.Duration
	// WorkerTTL is the registry liveness window (0 = 15s): a worker
	// that misses heartbeats for longer is evicted.
	WorkerTTL time.Duration
	// ResultCacheSize bounds the content-addressed result store
	// (0 = 256 entries).
	ResultCacheSize int
	// LogWriter receives structured JSON request logs (nil = off).
	LogWriter io.Writer
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: profiling endpoints expose process internals and
	// belong behind the same kind of deliberate flag as the Go runtime's
	// own defaults.
	Pprof bool
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c *Config) withDefaults() error {
	if c.Engine == nil {
		return fmt.Errorf("service: Config.Engine is required")
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.ClientQuota == 0 {
		c.ClientQuota = 16
	}
	if c.Concurrency == 0 {
		c.Concurrency = 2
	}
	if c.RetainRuns == 0 {
		c.RetainRuns = 64
	}
	if c.WorkerTTL == 0 {
		c.WorkerTTL = 15 * time.Second
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.QueueDepth < 0 || c.ClientQuota < 0 || c.Concurrency < 0 ||
		c.RetainRuns < 0 || c.RetainAge < 0 || c.WorkerTTL < 0 || c.ResultCacheSize < 0 {
		return fmt.Errorf("service: negative Config field")
	}
	return nil
}

// runState is one run's in-memory state: the persisted record plus
// the live machinery persistence cannot carry (progress buffer,
// stream wakeups, the cancel hook).
type runState struct {
	// rec is the persisted shape; its fields are guarded by mu.
	rec    runRecord
	cancel context.CancelFunc // non-nil while running

	// tracer, rootSp, and queueSp are the run's trace machinery,
	// armed once (before the state is published) for traced full
	// runs and immutable afterwards. Traces are deliberately
	// in-memory only — never journaled — so a recovered run either
	// re-records (it was still queued) or has no trace (terminal).
	tracer  *obs.Recorder
	rootSp  *obs.Span
	queueSp *obs.Span

	mu     sync.Mutex
	events []task.Event
	// notify is closed (and, while live, replaced) whenever events or
	// status change; it stays closed once the run is terminal.
	notify chan struct{}
}

// armTrace attaches the in-memory trace recorder to a traced full
// run: the root "run" span opens immediately and its "queue" child
// measures submit→dequeue wait. Partial (shard) runs skip this — the
// worker records into a fresh recorder inside RunPartial and ships
// the spans on the Partial for coordinator adoption instead.
func (rs *runState) armTrace() {
	if rs.rec.Sub.Trace == nil || rs.rec.Sub.Partial {
		return
	}
	// Clients may ask for a bigger span ring (heavy runs overflow the
	// default), but the server bounds the per-run memory they can pin.
	traceCap := rs.rec.Sub.Trace.Cap
	if traceCap > maxTraceCap {
		traceCap = maxTraceCap
	}
	rs.tracer = obs.NewRecorder(traceCap)
	rs.rootSp = rs.tracer.Start("run", 0)
	rs.rootSp.SetStr("task", rs.rec.Sub.Task).SetStr("run_id", rs.rec.ID)
	rs.queueSp = rs.rootSp.Child("queue").SetPhase(obs.PhaseQueue)
}

// publish appends one progress event and wakes streamers.
func (rs *runState) publish(ev task.Event) {
	rs.mu.Lock()
	rs.events = append(rs.events, ev)
	close(rs.notify)
	rs.notify = make(chan struct{})
	rs.mu.Unlock()
}

// Server is the fvevald HTTP front-end.
type Server struct {
	cfg      Config
	eng      *task.Engine
	mux      *http.ServeMux
	registry *workerRegistry
	results  *resultCache
	metrics  metrics
	now      func() time.Time

	// jmu serializes journal compaction (writer) against appends
	// (readers), so a compaction snapshot can never race an append
	// into losing a record. Never acquired while holding mu.
	jmu     sync.RWMutex
	journal *journal

	logMu sync.Mutex

	mu          sync.Mutex
	cond        *sync.Cond // signals executors; waits on mu
	seq         int64
	runs        map[string]*runState
	queue       admitQueue
	qseq        int64
	queuedCount int
	inflight    int
	clientLoad  map[string]int
	draining    bool
	killed      bool // abrupt Close: suppress journaling, stop executors

	execWG sync.WaitGroup // executor goroutines
	runWG  sync.WaitGroup // claimed (executing) runs
}

// New builds a server, recovering the run store when cfg.DataDir is
// set: terminal runs are served from the journal, queued runs are
// re-admitted in their original priority order, and runs that were in
// flight at the crash are marked interrupted.
func New(cfg Config) (*Server, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		eng:        cfg.Engine,
		mux:        http.NewServeMux(),
		results:    newResultCache(cfg.ResultCacheSize),
		now:        cfg.Now,
		runs:       map[string]*runState{},
		clientLoad: map[string]int{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.metrics.init()
	s.registry = newWorkerRegistry(cfg.WorkerTTL, cfg.Now, func() { s.metrics.workerEvicts.Add(1) })

	if cfg.DataDir != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}

	s.mux.HandleFunc("GET /v1/tasks", s.handleTasks)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/workers/register", s.handleRegister)
	s.mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("DELETE /v1/workers/{id}", s.handleDeregister)
	s.mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if cfg.Pprof {
		// Index serves /debug/pprof/{heap,goroutine,...} via the
		// trailing-slash route; the named profiles need explicit mounts.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	for i := 0; i < cfg.Concurrency; i++ {
		s.execWG.Add(1)
		go s.executor()
	}
	return s, nil
}

// recover opens the journal and folds its records back into live
// server state.
func (s *Server) recover() error {
	j, recovered, err := openJournal(s.cfg.DataDir)
	if err != nil {
		return err
	}
	s.journal = j

	ids := make([]string, 0, len(recovered))
	for id := range recovered {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	nowMS := s.now().UnixMilli()
	var interrupted []*runState
	for _, id := range ids {
		rec := recovered[id]
		if n := runSeq(rec.ID); n > s.seq {
			s.seq = n
		}
		rs := &runState{rec: *rec, notify: make(chan struct{})}
		switch rec.Status {
		case api.StateQueued:
			// Never started: resume it through the normal queue. A
			// traced run re-records from scratch — the pre-crash queue
			// wait is gone, like its progress events.
			rs.armTrace()
			s.runs[id] = rs
			s.queuedCount++
			s.clientLoad[rec.Client]++
			s.qseq++
			s.queue.push(qitem{id: id, priority: rec.Sub.Priority, seq: s.qseq})
		case api.StateRunning:
			if rec.Sub.Distributed {
				// A distributed run checkpoints each completed shard to
				// the store, so the crash lost only the in-flight shards:
				// re-admit it and let the coordinator resume from the
				// survivors instead of reporting it interrupted.
				rs.rec.Status = api.StateQueued
				rs.rec.StartedMS = 0
				rs.armTrace()
				s.runs[id] = rs
				s.queuedCount++
				s.clientLoad[rec.Client]++
				s.qseq++
				s.queue.push(qitem{id: id, priority: rec.Sub.Priority, seq: s.qseq})
				continue
			}
			// In flight at the crash: its engine state is gone.
			rs.rec.Status = api.StateInterrupted
			rs.rec.Error = "server restarted while the run was in flight"
			rs.rec.FinishedMS = nowMS
			close(rs.notify)
			s.runs[id] = rs
			interrupted = append(interrupted, rs)
			s.metrics.finished(api.StateInterrupted)
		default: // terminal: serve as-is; re-seed the result cache
			close(rs.notify)
			s.runs[id] = rs
			if rec.Status == api.StateDone && !rec.Sub.Options.NoCache {
				if key, err := resultKey(rec.Sub.Request, rec.Partial != nil); err == nil {
					s.results.put(key, rec.Run, rec.Partial)
				}
			}
		}
	}
	for _, rs := range interrupted {
		s.journalAppend(&journalRecord{
			Op: "finish", MS: nowMS, ID: rs.rec.ID,
			Status: api.StateInterrupted, Error: rs.rec.Error,
		})
	}
	// Fold the recovery into a fresh snapshot so the next crash
	// replays from a compact store.
	s.compactNow(true)
	return nil
}

// runSeq parses the numeric suffix of a run id (0 if malformed).
func runSeq(id string) int64 {
	const prefix = "run-"
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return 0
	}
	n, err := strconv.ParseInt(id[len(prefix):], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// ServeHTTP serves the v1 API with structured request logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.LogWriter == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := s.now()
	lw := &loggedWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(lw, r)
	line, err := json.Marshal(map[string]any{
		"ts":     start.UTC().Format(time.RFC3339Nano),
		"method": r.Method,
		"path":   r.URL.Path,
		"status": lw.status,
		"dur_ms": s.now().Sub(start).Milliseconds(),
		"bytes":  lw.bytes,
		"client": clientID(r),
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	fmt.Fprintf(s.cfg.LogWriter, "%s\n", line)
	s.logMu.Unlock()
}

// loggedWriter records status and byte count while preserving the
// Flusher the event stream depends on.
type loggedWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (l *loggedWriter) WriteHeader(code int) {
	l.status = code
	l.ResponseWriter.WriteHeader(code)
}

func (l *loggedWriter) Write(p []byte) (int, error) {
	n, err := l.ResponseWriter.Write(p)
	l.bytes += n
	return n, err
}

func (l *loggedWriter) Flush() {
	if f, ok := l.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// clientID derives the admission identity: the SHA-addressed API key
// when one is presented, the remote host otherwise. Keys are hashed
// so they never appear in run views or logs.
func clientID(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		sum := sha256.Sum256([]byte(key))
		return "key-" + hex.EncodeToString(sum[:4])
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "ip-" + host
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

// writeError emits the unified error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, api.ErrorEnvelope{Error: api.ErrorInfo{Code: code, Message: msg}})
}

// journalAppend routes one record through the compaction lock and
// triggers compaction once the journal accumulates enough appends.
func (s *Server) journalAppend(rec *journalRecord) {
	s.mu.Lock()
	killed := s.killed
	s.mu.Unlock()
	if killed {
		return
	}
	s.jmu.RLock()
	n, err := s.journal.append(rec)
	s.jmu.RUnlock()
	if err != nil {
		s.logInternal("journal append failed: " + err.Error())
		return
	}
	if n >= compactThreshold {
		s.compactNow(false)
	}
}

// compactNow snapshots the live run set and truncates the journal.
// The exclusive jmu hold means no append can land between the state
// collection and the truncation, so compaction never loses a record.
func (s *Server) compactNow(force bool) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journal == nil {
		return
	}
	if !force && s.journal.appends < compactThreshold {
		return // raced with another compaction
	}
	s.mu.Lock()
	records := make([]*runRecord, 0, len(s.runs))
	for _, rs := range s.runs {
		rs.mu.Lock()
		rec := rs.rec
		rs.mu.Unlock()
		records = append(records, &rec)
	}
	s.mu.Unlock()
	if err := s.journal.compact(records); err != nil {
		s.logInternal("journal compaction failed: " + err.Error())
		return
	}
	s.metrics.compactions.Add(1)
}

func (s *Server) logInternal(msg string) {
	if s.cfg.LogWriter == nil {
		return
	}
	line, err := json.Marshal(map[string]any{
		"ts":    s.now().UTC().Format(time.RFC3339Nano),
		"level": "error",
		"msg":   msg,
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	fmt.Fprintf(s.cfg.LogWriter, "%s\n", line)
	s.logMu.Unlock()
}

// handleTasks lists the registry: GET /v1/tasks.
func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.TaskList{Tasks: task.Tasks()})
}

// handleSubmit admits a run: POST /v1/runs with an api.Submission
// body. The request is validated synchronously (400), checked against
// the result cache (200 with the finished run), then admitted against
// the per-client quota (429) and the queue bound (503) — both with
// Retry-After — and finally journaled and queued (202).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub api.Submission
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := sub.Request.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if sub.Priority < api.MinPriority || sub.Priority > api.MaxPriority {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("priority %d out of range %d..%d", sub.Priority, api.MinPriority, api.MaxPriority))
		return
	}
	sub.Partial = sub.Partial || sub.Request.Options.Shard.Enabled()
	if sub.Partial && sub.Distributed {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			"a shard-scoped (partial) run cannot itself be distributed")
		return
	}
	if sub.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "timeout_ms must be non-negative")
		return
	}
	client := clientID(r)
	key, keyErr := resultKey(sub.Request, sub.Partial)
	if keyErr != nil {
		key = "" // validated above, so unreachable in practice; run uncached
	}
	nowMS := s.now().UnixMilli()

	s.mu.Lock()
	if s.draining || s.killed {
		s.mu.Unlock()
		s.metrics.admissionRejected.draining.Add(1)
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is shutting down")
		return
	}

	// Cross-request result cache: identical canonical requests are
	// served the finished result without touching the engine or the
	// queue (and without consuming quota). Traced submissions skip the
	// lookup — the key is trace-blind (Canonical strips Trace), so a
	// hit would hand back a result with no spans to serve; they still
	// feed the cache on finish, since the result itself is
	// trace-independent.
	if !sub.Request.Options.NoCache && sub.Request.Trace == nil {
		if run, partial, ok := s.results.get(key); ok {
			s.seq++
			id := fmt.Sprintf("run-%06d", s.seq)
			rs := &runState{
				rec: runRecord{
					ID: id, Client: client, Sub: sub,
					Status: api.StateDone, Cached: true,
					CreatedMS: nowMS, FinishedMS: nowMS,
					Run: run, Partial: partial,
				},
				notify: make(chan struct{}),
			}
			close(rs.notify)
			s.runs[id] = rs
			s.mu.Unlock()
			s.metrics.runsSubmitted.Add(1)
			s.metrics.cacheHits.Add(1)
			s.journalAppend(&journalRecord{Op: "submit", MS: nowMS, ID: id, Client: client, Sub: &sub})
			s.journalAppend(&journalRecord{
				Op: "finish", MS: nowMS, ID: id,
				Status: api.StateDone, Cached: true, Run: run, Partial: partial,
			})
			s.evictAndPersist()
			writeJSON(w, http.StatusOK, api.SubmitResponse{ID: id, Status: api.StateDone, Cached: true})
			return
		}
	}

	if sub.Distributed && len(s.registry.live()) == 0 {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, api.CodeNoWorkers,
			"no live workers registered; distributed runs need a registered fleet")
		return
	}
	if s.clientLoad[client] >= s.cfg.ClientQuota {
		s.mu.Unlock()
		s.metrics.admissionRejected.quota.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, api.CodeQuotaExceeded,
			fmt.Sprintf("client %s has %d runs queued or running (quota %d)", client, s.cfg.ClientQuota, s.cfg.ClientQuota))
		return
	}
	if s.queuedCount >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.metrics.admissionRejected.queueFull.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, api.CodeQueueFull,
			fmt.Sprintf("admission queue is full (%d runs)", s.cfg.QueueDepth))
		return
	}

	s.seq++
	id := fmt.Sprintf("run-%06d", s.seq)
	rs := &runState{
		rec: runRecord{
			ID: id, Client: client, Sub: sub,
			Status: api.StateQueued, CreatedMS: nowMS,
		},
		notify: make(chan struct{}),
	}
	rs.armTrace()
	s.runs[id] = rs
	s.queuedCount++
	s.clientLoad[client]++
	s.qseq++
	s.queue.push(qitem{id: id, priority: sub.Priority, seq: s.qseq})
	position := s.queuedCount
	s.cond.Signal()
	s.mu.Unlock()

	s.metrics.runsSubmitted.Add(1)
	s.metrics.cacheMisses.Add(1)
	s.journalAppend(&journalRecord{Op: "submit", MS: nowMS, ID: id, Client: client, Sub: &sub})
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: id, Status: api.StateQueued, Position: position})
}

// executor drains the admission queue: claim the highest-priority
// queued run, journal its start, execute it, and record the terminal
// state. Runs whose records already went terminal while queued
// (cancel-while-queued) are skipped.
func (s *Server) executor() {
	defer s.execWG.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.killed {
			s.cond.Wait()
		}
		if s.killed {
			s.mu.Unlock()
			return
		}
		it, _ := s.queue.pop()
		rs := s.runs[it.id]
		if rs == nil {
			s.mu.Unlock()
			continue // evicted while queued
		}
		rs.mu.Lock()
		if rs.rec.Status != api.StateQueued {
			rs.mu.Unlock()
			s.mu.Unlock()
			continue // cancelled while queued; counters already adjusted
		}
		ctx, cancel := context.WithCancel(context.Background())
		rs.rec.Status = api.StateRunning
		rs.rec.StartedMS = s.now().UnixMilli()
		rs.cancel = cancel
		startMS := rs.rec.StartedMS
		waitMS := startMS - rs.rec.CreatedMS
		rs.mu.Unlock()
		s.queuedCount--
		s.inflight++
		s.runWG.Add(1)
		s.mu.Unlock()

		rs.queueSp.End()
		s.metrics.queueWait.observe(float64(waitMS) / 1000)
		s.journalAppend(&journalRecord{Op: "start", MS: startMS, ID: it.id})
		s.execute(ctx, cancel, rs)
	}
}

// execute runs one claimed run to a terminal state.
func (s *Server) execute(ctx context.Context, cancel context.CancelFunc, rs *runState) {
	defer s.runWG.Done()
	defer cancel()

	rs.mu.Lock()
	sub := rs.rec.Sub
	rs.mu.Unlock()
	req := sub.Request
	req.Progress = rs.publish
	if rs.tracer != nil {
		ctx = obs.ContextWithSpan(obs.NewContext(ctx, rs.tracer), rs.rootSp)
	}
	if sub.TimeoutMS > 0 {
		// End-to-end deadline: the remaining budget rides the context so
		// distributed shard requests forward it to workers (the client
		// turns it back into timeout_ms per shard submission).
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, time.Duration(sub.TimeoutMS)*time.Millisecond)
		defer cancelT()
	}

	started := s.now()
	var (
		run     *task.Run
		partial *task.Partial
		err     error
	)
	switch {
	case sub.Distributed:
		run, err = s.runDistributed(ctx, rs, req)
	case sub.Partial:
		partial, err = s.eng.RunPartial(ctx, req)
	default:
		run, err = s.eng.Run(ctx, req)
	}
	if rs.tracer != nil {
		if err != nil {
			rs.rootSp.SetStr("err", err.Error())
		}
		rs.rootSp.End()
		if run != nil && sub.Distributed {
			// A distributed run's merged profile is the sum of shard
			// profiles; the coordinator's own phases (the queue wait)
			// live in this recorder and fold in here. Local runs pick
			// them up cumulatively inside task.Engine.execute instead.
			run.Stats.Profile = run.Stats.Profile.Add(rs.tracer.Profile())
		}
	}
	s.metrics.runWall.observe(s.now().Sub(started).Seconds())
	s.finish(rs, run, partial, err)
}

// runDistributed fans one run across the live worker registry via the
// dist coordinator. Completed shards are checkpointed to the store as
// they land, so a coordinator crash resumes instead of restarting;
// shard retries, hedges, and breaker transitions feed /metrics.
func (s *Server) runDistributed(ctx context.Context, rs *runState, req task.Request) (*task.Run, error) {
	rs.mu.Lock()
	checkpoints := rs.rec.Checkpoints
	ckShards := rs.rec.CheckpointShards
	rs.mu.Unlock()

	// A run resumed after a coordinator restart can come up before its
	// workers have re-registered (they heartbeat every TTL/3 and fall
	// back to registration on 404), so wait out up to one TTL for the
	// fleet rather than failing the recovery immediately.
	workers := s.registry.live()
	if len(workers) == 0 {
		deadline := s.now().Add(s.cfg.WorkerTTL)
		for len(workers) == 0 {
			if s.now().After(deadline) {
				return nil, fmt.Errorf("no live workers registered")
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
			workers = s.registry.live()
		}
	}
	runners := make([]dist.Runner, len(workers))
	for i, w := range workers {
		runners[i] = dist.NewHTTPRunner(w.URL)
	}
	progress := req.Progress
	req.Progress = nil
	opts := dist.Options{
		Hedge: true,
		Progress: func(ev dist.Event) {
			switch ev.Type {
			case dist.EventJob:
				if progress != nil && ev.Job != nil {
					progress(*ev.Job)
				}
			case dist.EventShardRetry:
				s.metrics.shardRetries.Add(1)
			case dist.EventShardHedge:
				s.metrics.shardHedges.Add(1)
			case dist.EventWorkerDown:
				s.metrics.breakerTrips.Add(1)
			case dist.EventWorkerUp:
				s.metrics.breakerRecoveries.Add(1)
			}
		},
		OnPartial: func(shard, total int, p *task.Partial) {
			s.checkpoint(rs, shard, total, p)
		},
	}
	if len(checkpoints) > 0 && ckShards > 0 {
		// Pin the plan to the shard count the checkpoints were cut
		// against; indices are only meaningful for that exact split.
		opts.Shards = ckShards
		opts.Completed = checkpoints
	}
	coord, err := dist.New(runners, opts)
	if err != nil {
		return nil, err
	}
	res, err := coord.Run(ctx, req)
	if err != nil {
		return nil, err
	}
	if res.Restored > 0 {
		s.metrics.checkpointRestores.Add(int64(res.Restored))
	}
	return res.Run, nil
}

// checkpoint persists one completed shard of an in-flight distributed
// run. The record map is replaced copy-on-write under rs.mu (never
// mutated in place) so concurrent snapshot compaction can marshal the
// old map without a lock on its contents.
func (s *Server) checkpoint(rs *runState, shard, total int, p *task.Partial) {
	nowMS := s.now().UnixMilli()
	rs.mu.Lock()
	if api.Terminal(rs.rec.Status) {
		// A cancel raced the shard landing; never resurrect it.
		rs.mu.Unlock()
		return
	}
	next := make(map[int]*task.Partial, len(rs.rec.Checkpoints)+1)
	if rs.rec.CheckpointShards == total {
		for k, v := range rs.rec.Checkpoints {
			next[k] = v
		}
	}
	next[shard] = p
	rs.rec.Checkpoints = next
	rs.rec.CheckpointShards = total
	id := rs.rec.ID
	rs.mu.Unlock()

	s.metrics.checkpointsWritten.Add(1)
	s.journalAppend(&journalRecord{Op: "checkpoint", MS: nowMS, ID: id, Shard: shard, Shards: total, Partial: p})
}

// finish records a run's terminal state, journals it, feeds the
// result cache, and applies retention.
func (s *Server) finish(rs *runState, run *task.Run, partial *task.Partial, err error) {
	status := api.StateDone
	errMsg := ""
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		status = api.StateCancelled
		errMsg = err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		status = api.StateError
		errMsg = "run exceeded its deadline (timeout_ms)"
	default:
		status = api.StateError
		errMsg = err.Error()
	}
	nowMS := s.now().UnixMilli()

	rs.mu.Lock()
	rs.rec.Status = status
	rs.rec.Error = errMsg
	rs.rec.FinishedMS = nowMS
	rs.rec.Run = run
	rs.rec.Partial = partial
	rs.rec.Checkpoints = nil
	rs.rec.CheckpointShards = 0
	id, client, sub := rs.rec.ID, rs.rec.Client, rs.rec.Sub
	close(rs.notify)
	rs.mu.Unlock()

	s.mu.Lock()
	s.inflight--
	s.clientLoad[client]--
	if s.clientLoad[client] <= 0 {
		delete(s.clientLoad, client)
	}
	s.mu.Unlock()

	s.metrics.finished(status)
	if status == api.StateDone && !sub.Request.Options.NoCache {
		if key, kerr := resultKey(sub.Request, sub.Partial); kerr == nil {
			s.results.put(key, run, partial)
		}
	}
	s.journalAppend(&journalRecord{
		Op: "finish", MS: nowMS, ID: id,
		Status: status, Error: errMsg, Run: run, Partial: partial,
	})
	s.evictAndPersist()
}

// evictAndPersist applies retention to terminal runs — oldest
// finish-time first beyond RetainRuns, plus anything older than
// RetainAge — and journals the eviction.
func (s *Server) evictAndPersist() {
	nowMS := s.now().UnixMilli()
	var cutoffMS int64
	if s.cfg.RetainAge > 0 {
		cutoffMS = nowMS - s.cfg.RetainAge.Milliseconds()
	}

	type finished struct {
		id string
		ms int64
	}
	s.mu.Lock()
	var terminal []finished
	for id, rs := range s.runs {
		rs.mu.Lock()
		if api.Terminal(rs.rec.Status) {
			terminal = append(terminal, finished{id: id, ms: rs.rec.FinishedMS})
		}
		rs.mu.Unlock()
	}
	// Oldest terminal first: retention is finish-time ordered, so an
	// old run that only recently finished is not evicted ahead of a
	// young run that finished long ago.
	sort.Slice(terminal, func(i, j int) bool {
		if terminal[i].ms != terminal[j].ms {
			return terminal[i].ms < terminal[j].ms
		}
		return terminal[i].id < terminal[j].id
	})
	excess := len(terminal) - s.cfg.RetainRuns
	var evicted []string
	for i, f := range terminal {
		if i < excess || (cutoffMS > 0 && f.ms < cutoffMS) {
			delete(s.runs, f.id)
			evicted = append(evicted, f.id)
		}
	}
	s.mu.Unlock()

	if len(evicted) > 0 {
		sort.Strings(evicted)
		s.journalAppend(&journalRecord{Op: "evict", MS: nowMS, IDs: evicted})
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *runState {
	s.mu.Lock()
	rs := s.runs[r.PathValue("id")]
	s.mu.Unlock()
	if rs == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "unknown run "+r.PathValue("id"))
	}
	return rs
}

// view renders a run's current state; full includes the heavyweight
// result payloads.
func (rs *runState) view(full bool) api.RunView {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	v := api.RunView{
		ID: rs.rec.ID, Status: rs.rec.Status, Task: rs.rec.Sub.Task,
		Client: rs.rec.Client, Priority: rs.rec.Sub.Priority, Cached: rs.rec.Cached,
		CreatedMS: rs.rec.CreatedMS, StartedMS: rs.rec.StartedMS, FinishedMS: rs.rec.FinishedMS,
		Events: len(rs.events), Error: rs.rec.Error,
	}
	if full {
		v.Run = rs.rec.Run
		v.Part = rs.rec.Partial
		if n := len(rs.events); n > 0 {
			last := rs.events[n-1]
			v.Last = &last
		}
	}
	return v
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(w, r)
	if rs == nil {
		return
	}
	writeJSON(w, http.StatusOK, rs.view(true))
}

// handleList pages through runs: GET /v1/runs?limit=&cursor=&state=&task=.
// Runs are ordered by id (admission order); the cursor is the last id
// of the previous page.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := api.DefaultListLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad limit "+raw)
			return
		}
		limit = min(n, api.MaxListLimit)
	}
	cursor := q.Get("cursor")
	stateFilter := q.Get("state")
	taskFilter := q.Get("task")
	if stateFilter != "" && stateFilter != api.StateQueued && stateFilter != api.StateRunning && !api.Terminal(stateFilter) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "unknown state "+stateFilter)
		return
	}

	s.mu.Lock()
	ids := make([]string, 0, len(s.runs))
	for id := range s.runs {
		if id > cursor {
			ids = append(ids, id)
		}
	}
	states := make(map[string]*runState, len(ids))
	for _, id := range ids {
		states[id] = s.runs[id]
	}
	s.mu.Unlock()
	sort.Strings(ids)

	out := api.RunList{Runs: []api.RunView{}}
	for _, id := range ids {
		v := states[id].view(false)
		if stateFilter != "" && v.Status != stateFilter {
			continue
		}
		if taskFilter != "" && v.Task != taskFilter {
			continue
		}
		if len(out.Runs) == limit {
			out.NextCursor = out.Runs[limit-1].ID
			break
		}
		out.Runs = append(out.Runs, v)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCancel aborts a run: DELETE /v1/runs/{id}. A queued run goes
// terminal immediately; a running run reaches "cancelled" once its
// in-flight jobs drain.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(w, r)
	if rs == nil {
		return
	}
	s.cancelRun(rs)
	rs.mu.Lock()
	status := rs.rec.Status
	id := rs.rec.ID
	rs.mu.Unlock()
	writeJSON(w, http.StatusOK, api.SubmitResponse{ID: id, Status: status})
}

// cancelRun moves a queued run straight to cancelled (its heap entry
// is skipped lazily) or cancels a running run's context.
func (s *Server) cancelRun(rs *runState) {
	nowMS := s.now().UnixMilli()
	s.mu.Lock()
	rs.mu.Lock()
	switch rs.rec.Status {
	case api.StateQueued:
		rs.rec.Status = api.StateCancelled
		rs.rec.Error = "cancelled before execution"
		rs.rec.FinishedMS = nowMS
		close(rs.notify)
		id, client := rs.rec.ID, rs.rec.Client
		rs.mu.Unlock()
		s.queuedCount--
		s.clientLoad[client]--
		if s.clientLoad[client] <= 0 {
			delete(s.clientLoad, client)
		}
		s.mu.Unlock()
		s.metrics.finished(api.StateCancelled)
		s.journalAppend(&journalRecord{
			Op: "finish", MS: nowMS, ID: id,
			Status: api.StateCancelled, Error: "cancelled before execution",
		})
	case api.StateRunning:
		cancel := rs.cancel
		rs.mu.Unlock()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		rs.mu.Unlock()
		s.mu.Unlock()
	}
}

// handleEvents streams progress: GET /v1/runs/{id}/events. Buffered
// events replay first, then live events follow until the run reaches
// a terminal state or the client disconnects. NDJSON by default; SSE
// with Accept: text/event-stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(w, r)
	if rs == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "streaming unsupported")
		return
	}
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	write := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		} else {
			fmt.Fprintf(w, "%s\n", data)
		}
	}

	sent := 0
	for {
		rs.mu.Lock()
		pending := rs.events[sent:]
		sent = len(rs.events)
		status := rs.rec.Status
		errMsg := rs.rec.Error
		notify := rs.notify
		rs.mu.Unlock()

		for _, ev := range pending {
			write("progress", ev)
		}
		if len(pending) > 0 {
			flusher.Flush()
		}
		if api.Terminal(status) {
			end := map[string]string{"status": status}
			if errMsg != "" {
				end["error"] = errMsg
			}
			write("end", end)
			flusher.Flush()
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves a traced run's completed spans as NDJSON (one
// obs.SpanData per line): GET /v1/runs/{id}/trace. The snapshot is
// safe mid-run — it simply misses spans still open. X-Trace-Dropped
// carries the ring-eviction count. 404 for runs that were not
// submitted with tracing (including recovered ones: traces are
// in-memory only).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(w, r)
	if rs == nil {
		return
	}
	if rs.tracer == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound,
			"run "+r.PathValue("id")+` has no trace (submit with "trace" to record one)`)
		return
	}
	spans, dropped := rs.tracer.Snapshot()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Trace-Dropped", strconv.FormatInt(dropped, 10))
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for i := range spans {
		enc.Encode(&spans[i]) //nolint:errcheck // client gone is the only failure
	}
}

// handleRegister adds a worker to the live fleet:
// POST /v1/workers/register {"url": "http://host:port"}.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if err := fault.Hit(fault.WorkerRegister); err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, api.CodeInternal, err.Error())
		return
	}
	var req api.RegisterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.URL == "" || (len(req.URL) < 8 || (req.URL[:7] != "http://" && req.URL[:8] != "https://")) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "url must be an http(s) base URL")
		return
	}
	id := s.registry.register(req.URL)
	ttl := s.cfg.WorkerTTL
	writeJSON(w, http.StatusOK, api.RegisterResponse{
		ID:         id,
		TTLMS:      ttl.Milliseconds(),
		IntervalMS: (ttl / 3).Milliseconds(),
	})
}

// handleHeartbeat refreshes liveness: POST /v1/workers/{id}/heartbeat.
// 404 means the worker was evicted and must re-register.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	// Delay-only plans stall the heartbeat past the TTL (forcing the
	// eviction → 404 → re-register path); error plans reject it.
	if err := fault.Hit(fault.WorkerHeartbeat); err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, api.CodeInternal, err.Error())
		return
	}
	id := r.PathValue("id")
	if !s.registry.heartbeat(id) {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "unknown worker "+id+" (re-register)")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "ok"})
}

// handleDeregister removes a worker: DELETE /v1/workers/{id}.
func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry.deregister(id) {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "unknown worker "+id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "deregistered"})
}

// handleWorkers lists the live fleet: GET /v1/workers.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.WorkerList{Workers: s.registry.live()})
}

// handleMetrics serves the Prometheus text exposition: GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// handleHealthz reports process liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
}

// handleReadyz reports readiness to accept runs: 503 while draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining || s.killed
	queued := s.queuedCount
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is shutting down")
		return
	}
	writeJSON(w, http.StatusOK, api.Health{
		Status:     "ready",
		QueueDepth: queued,
		Workers:    len(s.registry.live()),
	})
}

// Drain begins graceful shutdown: refuse new submissions, cancel
// every queued and in-flight run to a journaled terminal state, and
// wait for executing runs to land (which also flushes every event
// stream). The server still answers reads afterwards; follow with
// Close.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	states := make([]*runState, 0, len(s.runs))
	for _, rs := range s.runs {
		states = append(states, rs)
	}
	s.mu.Unlock()
	for _, rs := range states {
		s.cancelRun(rs)
	}
	s.runWG.Wait()
}

// Close shuts the server down abruptly: executors stop, in-flight run
// contexts are cancelled WITHOUT journaling a terminal state, and the
// journal file is closed. This is deliberately kill -9-shaped — a
// crashed or Closed server recovers identically: journaled terminal
// runs are served from disk, queued runs re-admitted, in-flight runs
// reported interrupted. Graceful shutdown is Drain followed by Close.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return nil
	}
	s.killed = true
	states := make([]*runState, 0, len(s.runs))
	for _, rs := range s.runs {
		states = append(states, rs)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, rs := range states {
		rs.mu.Lock()
		cancel := rs.cancel
		rs.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	s.execWG.Wait()
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.journal.Close()
}
