package service

import (
	"crypto/sha256"
	"encoding/hex"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"fveval/internal/service/api"
)

// workerRegistry tracks the live fvevald worker fleet. Workers dial
// in (POST /v1/workers/register), heartbeat within the TTL, and are
// evicted lazily on the next access once the TTL lapses — no
// background sweeper goroutine, so a registry is safe to embed in
// tests and short-lived servers. Eviction here is the fleet-level
// liveness layer; within one distributed run, dist.Coordinator's
// benching/retry machinery handles workers that die mid-shard.
type workerRegistry struct {
	mu      sync.Mutex
	ttl     time.Duration
	now     func() time.Time
	workers map[string]*workerEntry
	// evicted counts TTL evictions for /metrics.
	evicted func()
}

type workerEntry struct {
	id         string
	url        string
	registered time.Time
	lastSeen   time.Time
}

func newWorkerRegistry(ttl time.Duration, now func() time.Time, evicted func()) *workerRegistry {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	if evicted == nil {
		evicted = func() {}
	}
	return &workerRegistry{ttl: ttl, now: now, workers: map[string]*workerEntry{}, evicted: evicted}
}

// normalizeWorkerURL canonicalizes an advertised URL so formatting
// variants of the same endpoint ("http://Host:9000/" vs
// "http://host:9000") collapse to one identity. Without this, a
// worker that re-registers after a missed heartbeat with a slightly
// different -advertise rendering would coexist with its old live
// entry, and the next distributed run would plan the same endpoint
// twice — the double-dispatch race ISSUE 10 pins with a test.
func normalizeWorkerURL(raw string) string {
	trimmed := strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(trimmed)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return trimmed
	}
	u.Scheme = strings.ToLower(u.Scheme)
	u.Host = strings.ToLower(u.Host)
	return strings.TrimRight(u.String(), "/")
}

// workerID derives a stable id from the normalized advertised URL, so
// a worker that restarts and re-registers the same endpoint keeps its
// identity instead of leaking a new entry per restart.
func workerID(rawURL string) string {
	sum := sha256.Sum256([]byte(normalizeWorkerURL(rawURL)))
	return "w-" + hex.EncodeToString(sum[:6])
}

// register adds or refreshes a worker and returns its id.
func (r *workerRegistry) register(rawURL string) string {
	norm := normalizeWorkerURL(rawURL)
	id := workerID(norm)
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[id]; ok {
		w.lastSeen = now
		w.url = norm
		return id
	}
	r.workers[id] = &workerEntry{id: id, url: norm, registered: now, lastSeen: now}
	return id
}

// heartbeat refreshes a worker's liveness; false means the id is
// unknown (never registered, or already evicted) and the worker must
// re-register.
func (r *workerRegistry) heartbeat(id string) bool {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return false
	}
	if now.Sub(w.lastSeen) > r.ttl {
		delete(r.workers, id)
		r.evicted()
		return false
	}
	w.lastSeen = now
	return true
}

// deregister removes a worker explicitly (graceful worker shutdown).
func (r *workerRegistry) deregister(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.workers[id]; !ok {
		return false
	}
	delete(r.workers, id)
	return true
}

// sweepLocked drops entries whose heartbeat lapsed; caller holds mu.
func (r *workerRegistry) sweepLocked() {
	now := r.now()
	for id, w := range r.workers {
		if now.Sub(w.lastSeen) > r.ttl {
			delete(r.workers, id)
			r.evicted()
		}
	}
}

// live returns the live fleet sorted by URL (stable fleet order keeps
// distributed dispatch deterministic for a fixed registry state).
// Entries that normalize to the same endpoint — possible only for
// registrations predating URL normalization, e.g. replayed from an
// old snapshot — are deduplicated keeping the freshest, so one
// endpoint can never be planned twice in a distributed run.
func (r *workerRegistry) live() []api.WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	freshest := map[string]*workerEntry{}
	for _, w := range r.workers {
		norm := normalizeWorkerURL(w.url)
		if cur, ok := freshest[norm]; !ok || w.lastSeen.After(cur.lastSeen) {
			freshest[norm] = w
		}
	}
	out := make([]api.WorkerInfo, 0, len(freshest))
	for norm, w := range freshest {
		out = append(out, api.WorkerInfo{
			ID:           w.id,
			URL:          norm,
			RegisteredMS: w.registered.UnixMilli(),
			LastSeenMS:   w.lastSeen.UnixMilli(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
