package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fveval/internal/engine"
	"fveval/internal/service/api"
	"fveval/internal/task"
)

// TestJournalRoundTrip replays a plain submit/start/finish history.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recovered, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(recovered))
	}
	sub := api.Submission{Request: task.Request{Task: "dataset-stats"}}
	appendAll(t, j,
		&journalRecord{Op: "submit", MS: 10, ID: "run-000001", Client: "ip-x", Sub: &sub},
		&journalRecord{Op: "start", MS: 20, ID: "run-000001"},
		&journalRecord{Op: "finish", MS: 30, ID: "run-000001", Status: api.StateDone},
		&journalRecord{Op: "submit", MS: 40, ID: "run-000002", Client: "ip-x", Sub: &sub},
		&journalRecord{Op: "start", MS: 50, ID: "run-000002"},
		&journalRecord{Op: "submit", MS: 60, ID: "run-000003", Client: "ip-y", Sub: &sub},
	)
	j.Close()

	_, recovered, err = openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recovered))
	}
	r1 := recovered["run-000001"]
	if r1.Status != api.StateDone || r1.CreatedMS != 10 || r1.StartedMS != 20 || r1.FinishedMS != 30 {
		t.Fatalf("run-000001 malformed: %+v", r1)
	}
	if recovered["run-000002"].Status != api.StateRunning {
		t.Fatalf("run-000002 status %q", recovered["run-000002"].Status)
	}
	if r3 := recovered["run-000003"]; r3.Status != api.StateQueued || r3.Client != "ip-y" {
		t.Fatalf("run-000003 malformed: %+v", r3)
	}
}

func appendAll(t *testing.T, j *journal, recs ...*journalRecord) {
	t.Helper()
	for _, rec := range recs {
		if _, err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalTornLine simulates kill -9 mid-append: a torn final line
// must not poison recovery of everything before it.
func TestJournalTornLine(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub := api.Submission{Request: task.Request{Task: "dataset-stats"}}
	appendAll(t, j,
		&journalRecord{Op: "submit", MS: 10, ID: "run-000001", Sub: &sub},
		&journalRecord{Op: "finish", MS: 20, ID: "run-000001", Status: api.StateDone},
	)
	j.Close()

	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"submit","ms":30,"id":"run-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, recovered, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered["run-000001"].Status != api.StateDone {
		t.Fatalf("torn-line recovery malformed: %+v", recovered)
	}
}

// TestJournalCompaction checks snapshot + truncate + idempotent
// replay: records appended after a compaction layer on top of the
// snapshot, and the journal's byte growth is bounded.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub := api.Submission{Request: task.Request{Task: "dataset-stats"}}
	appendAll(t, j,
		&journalRecord{Op: "submit", MS: 10, ID: "run-000001", Sub: &sub},
		&journalRecord{Op: "finish", MS: 20, ID: "run-000001", Status: api.StateDone},
	)
	pre, err := j.size()
	if err != nil || pre == 0 {
		t.Fatalf("journal empty before compaction (%v)", err)
	}

	if err := j.compact([]*runRecord{{
		ID: "run-000001", Sub: sub, Status: api.StateDone, CreatedMS: 10, FinishedMS: 20,
	}}); err != nil {
		t.Fatal(err)
	}
	post, err := j.size()
	if err != nil || post != 0 {
		t.Fatalf("journal not truncated: %d bytes (%v)", post, err)
	}

	// Appends after compaction land in the truncated journal and
	// replay on top of the snapshot.
	appendAll(t, j,
		&journalRecord{Op: "submit", MS: 30, ID: "run-000002", Sub: &sub},
		&journalRecord{Op: "finish", MS: 40, ID: "run-000002", Status: api.StateError, Error: "boom"},
	)
	j.Close()

	_, recovered, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recovered))
	}
	if recovered["run-000001"].Status != api.StateDone {
		t.Fatalf("snapshot record lost: %+v", recovered["run-000001"])
	}
	if r := recovered["run-000002"]; r.Status != api.StateError || r.Error != "boom" {
		t.Fatalf("post-compaction record malformed: %+v", r)
	}
}

// TestServerCompactionTrigger drives enough journal appends through
// the server wrapper to cross compactThreshold and verifies the
// journal resets and the compaction is counted.
func TestServerCompactionTrigger(t *testing.T) {
	s := newTestServer(t, Config{DataDir: t.TempDir()})
	for i := 0; i < compactThreshold+4; i++ {
		// Finish records for ids that never existed are ignored on
		// replay, so this only exercises the append/compact machinery.
		s.journalAppend(&journalRecord{Op: "finish", MS: int64(i), ID: "run-bogus", Status: api.StateDone})
	}
	if got := s.metrics.compactions.Load(); got < 1 {
		t.Fatalf("no compaction after %d appends", compactThreshold+4)
	}
	size, err := s.journal.size()
	if err != nil {
		t.Fatal(err)
	}
	// Bounded growth: far below threshold-many records' worth.
	if s.journal.appends >= compactThreshold || size == 0 && s.journal.appends != 0 {
		t.Fatalf("journal did not reset: %d appends, %d bytes", s.journal.appends, size)
	}
}

// TestEvictionHonorsFinishTime is the retention-bugfix regression:
// eviction beyond RetainRuns must drop the oldest-*finished* runs,
// not the earliest-inserted ones.
func TestEvictionHonorsFinishTime(t *testing.T) {
	s := newTestServer(t, Config{RetainRuns: 2})
	finished := map[string]int64{
		"run-000001": 400, // inserted first, finished last
		"run-000002": 100,
		"run-000003": 300,
		"run-000004": 200,
	}
	s.mu.Lock()
	for id, ms := range finished {
		rs := &runState{rec: runRecord{
			ID: id, Status: api.StateDone, FinishedMS: ms,
			Sub: api.Submission{Request: task.Request{Task: "dataset-stats"}},
		}, notify: make(chan struct{})}
		close(rs.notify)
		s.runs[id] = rs
	}
	s.mu.Unlock()

	s.evictAndPersist()

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.runs) != 2 {
		t.Fatalf("retained %d runs, want 2", len(s.runs))
	}
	for _, id := range []string{"run-000001", "run-000003"} {
		if s.runs[id] == nil {
			t.Fatalf("newest-finished run %s was evicted (insertion-order bug)", id)
		}
	}
}

// TestRetainAgeEviction checks the age bound: terminal runs older
// than RetainAge are evicted even when the count bound has room.
func TestRetainAgeEviction(t *testing.T) {
	clock := &fakeClock{t: time.UnixMilli(1_700_000_000_000)}
	s := newTestServer(t, Config{
		RetainRuns: 100,
		RetainAge:  time.Minute,
		Now:        clock.now,
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(`{"task":"dataset-stats"}`))
	if err != nil {
		t.Fatal(err)
	}
	var first api.SubmitResponse
	decodeBody(t, resp, &first)
	pollTerminal(t, srv.URL, first.ID)

	clock.advance(2 * time.Minute)
	resp, err = http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"task":"dataset-stats","options":{"no_cache":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	var second api.SubmitResponse
	decodeBody(t, resp, &second)
	pollTerminal(t, srv.URL, second.ID)

	resp, err = http.Get(srv.URL + "/v1/runs/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("aged-out run still served: status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/runs/" + second.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("young run evicted: status %d", resp.StatusCode)
	}
}

// TestRestartRecovery is the acceptance e2e for the persistent run
// store: a server dies abruptly (Close is kill -9-shaped) with one
// run finished, one distributed run in flight, one local run in
// flight, and one still queued. On restart over the same data dir the
// finished run is served byte-identical, the distributed in-flight
// run resumes through the queue (not interrupted), the local
// in-flight run is reported interrupted, and the queued run resumes
// to completion.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()

	// A worker that hangs until released pins the in-flight run in the
	// running state deterministically.
	gate := make(chan struct{})
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-gate:
		case <-r.Context().Done():
		}
		http.Error(w, `{"error":{"code":"internal","message":"gated worker"}}`, http.StatusInternalServerError)
	}))
	defer worker.Close()
	defer close(gate)

	s1, err := New(Config{
		Engine:      task.NewEngine(engine.Config{Workers: 1}),
		DataDir:     dir,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(s1)
	s1.registry.register(worker.URL)

	// 1. A run that completes before the crash.
	resp, err := http.Post(srv1.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	var done api.SubmitResponse
	decodeBody(t, resp, &done)
	doneView := pollTerminal(t, srv1.URL, done.ID)
	if doneView.Status != api.StateDone {
		t.Fatalf("first run: %s (%s)", doneView.Status, doneView.Error)
	}
	wantRun, err := json.Marshal(doneView.Run)
	if err != nil {
		t.Fatal(err)
	}

	// 2. A run pinned mid-flight at the crash (single executor, gated
	// worker).
	resp, err = http.Post(srv1.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"task":"dataset-stats","distributed":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var inflight api.SubmitResponse
	decodeBody(t, resp, &inflight)
	waitRunning(t, srv1.URL, inflight.ID)

	// 3. A run still queued behind it.
	resp, err = http.Post(srv1.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"task":"dataset-stats"}`))
	if err != nil {
		t.Fatal(err)
	}
	var queued api.SubmitResponse
	decodeBody(t, resp, &queued)
	if queued.Status != api.StateQueued {
		t.Fatalf("third run not queued: %+v", queued)
	}

	// Crash. Close cancels contexts without journaling terminal
	// states — exactly what kill -9 leaves on disk.
	srv1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// 4. A local (non-distributed) run pinned in flight at the crash:
	// the engine cannot be gated from outside, so append the exact
	// journal suffix kill -9 leaves behind — a submit and a start with
	// no finish.
	jf, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	localSub := api.Submission{Request: task.Request{Task: "dataset-stats"}}
	for _, rec := range []*journalRecord{
		{Op: "submit", MS: 1, ID: "run-000099", Client: "ip-x", Sub: &localSub},
		{Op: "start", MS: 2, ID: "run-000099"},
	} {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jf.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	jf.Close()

	// A functioning worker for the restarted server, so the resumed
	// distributed run has a fleet to finish on.
	goodWorker := httptest.NewServer(newTestServer(t, Config{Engine: task.NewEngine(engine.Config{Workers: 1})}))
	defer goodWorker.Close()

	// Restart over the same data dir.
	s2, err := New(Config{
		Engine:      task.NewEngine(engine.Config{Workers: 1}),
		DataDir:     dir,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.registry.register(goodWorker.URL)
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()

	// Terminal run: byte-identical payload.
	var recoveredView api.RunView
	getJSON(t, srv2.URL+"/v1/runs/"+done.ID, &recoveredView)
	if recoveredView.Status != api.StateDone {
		t.Fatalf("recovered run status %q", recoveredView.Status)
	}
	gotRun, err := json.Marshal(recoveredView.Run)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRun, wantRun) {
		t.Fatalf("recovered Run diverged\n--- recovered ---\n%s\n--- original ---\n%s", gotRun, wantRun)
	}

	// In-flight distributed run: resumed through the queue and driven
	// to completion on the re-registered fleet, not interrupted.
	resumedDist := pollTerminal(t, srv2.URL, inflight.ID)
	if resumedDist.Status != api.StateDone {
		t.Fatalf("in-flight distributed run recovered as %q (%q), want resumed to done",
			resumedDist.Status, resumedDist.Error)
	}

	// In-flight local run: interrupted, with an explanation.
	var interruptedView api.RunView
	getJSON(t, srv2.URL+"/v1/runs/run-000099", &interruptedView)
	if interruptedView.Status != api.StateInterrupted || interruptedView.Error == "" {
		t.Fatalf("in-flight local run recovered as %q (%q)", interruptedView.Status, interruptedView.Error)
	}

	// Queued run: resumed and completed by the restarted server.
	resumed := pollTerminal(t, srv2.URL, queued.ID)
	if resumed.Status != api.StateDone {
		t.Fatalf("queued run resumed to %q (%s)", resumed.Status, resumed.Error)
	}

	// The result cache was reseeded from the journal: resubmitting the
	// finished request is an immediate cache hit.
	resp, err = http.Post(srv2.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	var cached api.SubmitResponse
	decodeBody(t, resp, &cached)
	if resp.StatusCode != http.StatusOK || !cached.Cached {
		t.Fatalf("post-restart resubmit not cached: status %d %+v", resp.StatusCode, cached)
	}

	// A restart marker made it to /metrics.
	var buf bytes.Buffer
	s2.writeMetrics(&buf)
	if !strings.Contains(buf.String(), `fveval_runs_total{status="interrupted"} 1`) {
		t.Fatalf("metrics missing interrupted count:\n%s", buf.String())
	}
}
