// Package client is the typed Go client for the fvevald v1 service
// API (internal/service). Every caller in the repo that speaks to a
// fvevald — cmd/fvevalctl, the dist.HTTPRunner shard transport, the
// worker heartbeat loop — goes through this package, so the wire
// contract (internal/service/api) has exactly one encoder and one
// decoder on each side.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"fveval/internal/obs"
	"fveval/internal/service/api"
	"fveval/internal/task"
)

// Client speaks to one fvevald base URL.
type Client struct {
	base   string
	apiKey string
	http   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithAPIKey attaches an X-API-Key header to every request; the
// server uses it as the admission (quota) identity.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithHTTPClient substitutes the transport (tests, custom timeouts).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New builds a client for a base URL such as "http://host:8080". No
// request timeout is set by default — long runs are bounded by ctx.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

// apiError decodes the unified error envelope into an *api.Error; a
// body that is not an envelope still yields a usable error. A
// Retry-After header (seconds) rides along as the back-pressure hint
// retry loops treat as a floor on their backoff.
func apiError(resp *http.Response) error {
	var retryAfter time.Duration
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env api.ErrorEnvelope
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		return &api.Error{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message, RetryAfter: retryAfter}
	}
	return &api.Error{
		Status:     resp.StatusCode,
		Code:       api.CodeInternal,
		Message:    fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data))),
		RetryAfter: retryAfter,
	}
}

// do issues one request and decodes a 2xx JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: %s %s: decode: %w", method, path, err)
	}
	return nil
}

// Tasks lists the server's task registry.
func (c *Client) Tasks(ctx context.Context) ([]task.Spec, error) {
	var out api.TaskList
	if err := c.do(ctx, http.MethodGet, "/v1/tasks", nil, &out); err != nil {
		return nil, err
	}
	return out.Tasks, nil
}

// Submit admits one run and returns immediately (202 queued, or 200
// done when served from the result cache). Admission rejections
// surface as *api.Error with codes quota_exceeded, queue_full,
// draining, or no_workers.
func (c *Client) Submit(ctx context.Context, sub api.Submission) (api.SubmitResponse, error) {
	var out api.SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/runs", sub, &out)
	return out, err
}

// Get fetches one run's full view, including its Run/Partial payload
// once terminal.
func (c *Client) Get(ctx context.Context, id string) (api.RunView, error) {
	var out api.RunView
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// Runs pages through the run list.
func (c *Client) Runs(ctx context.Context, q api.ListRunsQuery) (api.RunList, error) {
	v := url.Values{}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Cursor != "" {
		v.Set("cursor", q.Cursor)
	}
	if q.State != "" {
		v.Set("state", q.State)
	}
	if q.Task != "" {
		v.Set("task", q.Task)
	}
	path := "/v1/runs"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var out api.RunList
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Cancel aborts a run.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/runs/"+url.PathEscape(id), nil, nil)
}

// Events follows a run's NDJSON event stream, invoking progress for
// each event, and returns the terminal status line. A non-"done"
// terminal status is reported in the status return, not as an error;
// the error return covers transport and protocol failures only.
func (c *Client) Events(ctx context.Context, id string, progress func(task.Event)) (status, errMsg string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return "", "", err
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", "", fmt.Errorf("client: event stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", "", apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return "", "", fmt.Errorf("client: bad event line %q: %w", line, err)
		}
		if probe.Status != "" {
			return probe.Status, probe.Error, nil
		}
		if progress != nil {
			var ev task.Event
			if err := json.Unmarshal(line, &ev); err == nil {
				progress(ev)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", "", fmt.Errorf("client: event stream broke: %w", err)
	}
	return "", "", fmt.Errorf("client: event stream ended without a terminal status")
}

// Wait follows a run to its terminal state and returns the final
// view. A run that lands in error/interrupted is returned along with
// an *api.Error carrying its message.
func (c *Client) Wait(ctx context.Context, id string, progress func(task.Event)) (api.RunView, error) {
	status, errMsg, err := c.Events(ctx, id, progress)
	if err != nil {
		return api.RunView{}, err
	}
	view, err := c.Get(ctx, id)
	if err != nil {
		return api.RunView{}, err
	}
	switch status {
	case api.StateDone:
		return view, nil
	case api.StateCancelled:
		return view, context.Canceled
	default:
		if errMsg == "" {
			errMsg = "run ended " + status
		}
		return view, &api.Error{Status: http.StatusInternalServerError, Code: api.CodeInternal, Message: errMsg}
	}
}

// Run submits and waits: the one-call path used by fvevalctl. The
// remote run is cancelled (best-effort) if ctx dies first.
func (c *Client) Run(ctx context.Context, sub api.Submission, progress func(task.Event)) (api.RunView, error) {
	resp, err := c.Submit(ctx, sub)
	if err != nil {
		return api.RunView{}, err
	}
	if api.Terminal(resp.Status) {
		return c.Get(ctx, resp.ID)
	}
	finished := false
	defer func() {
		if !finished {
			c.cancelDetached(resp.ID)
		}
	}()
	view, err := c.Wait(ctx, resp.ID, progress)
	if err == nil {
		finished = true
	}
	return view, err
}

// RunShard executes one shard-scoped partial run remotely: submit,
// stream progress, fetch the partial. This is the dist.HTTPRunner
// transport. An abandoned shard (cancellation, stream breakage) is
// cancelled on the worker so it stops burning cycles.
func (c *Client) RunShard(ctx context.Context, req task.Request) (*task.Partial, error) {
	progress := req.Progress
	req.Progress = nil
	sub := api.Submission{Request: req, Partial: true}
	// Forward the remaining deadline budget so the worker's executor
	// enforces it server-side: a coordinator that dies mid-shard can't
	// leave the worker grinding an orphaned run to completion.
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return nil, context.DeadlineExceeded
		}
		sub.TimeoutMS = rem.Milliseconds() + 1
	}
	resp, err := c.Submit(ctx, sub)
	if err != nil {
		return nil, fmt.Errorf("client: %s: submit shard: %w", c.base, err)
	}
	finished := false
	defer func() {
		if !finished {
			c.cancelDetached(resp.ID)
		}
	}()
	if !api.Terminal(resp.Status) {
		status, errMsg, err := c.Events(ctx, resp.ID, progress)
		if err != nil {
			return nil, err
		}
		if status != api.StateDone {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if errMsg == "" {
				errMsg = "run ended " + status
			}
			return nil, fmt.Errorf("client: %s: shard %s: %s", c.base, resp.ID, errMsg)
		}
	}
	view, err := c.Get(ctx, resp.ID)
	if err != nil {
		return nil, err
	}
	if view.Part == nil {
		return nil, fmt.Errorf("client: %s: run %s carries no partial (status %s %s)", c.base, resp.ID, view.Status, view.Error)
	}
	finished = true
	return view.Part, nil
}

// cancelDetached issues a best-effort cancel on its own short
// deadline, because the caller's ctx is typically already dead.
func (c *Client) cancelDetached(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c.Cancel(ctx, id) //nolint:errcheck
}

// RegisterWorker announces a worker's base URL to the coordinator and
// returns its lease: worker id, TTL, and suggested heartbeat interval.
func (c *Client) RegisterWorker(ctx context.Context, workerURL string) (api.RegisterResponse, error) {
	var out api.RegisterResponse
	err := c.do(ctx, http.MethodPost, "/v1/workers/register", api.RegisterRequest{URL: workerURL}, &out)
	return out, err
}

// Heartbeat refreshes a worker lease; a not_found error means the
// lease lapsed and the worker must re-register.
func (c *Client) Heartbeat(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/workers/"+url.PathEscape(id)+"/heartbeat", nil, nil)
}

// DeregisterWorker drops a worker lease (graceful worker shutdown).
func (c *Client) DeregisterWorker(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/workers/"+url.PathEscape(id), nil, nil)
}

// Workers lists the coordinator's live fleet.
func (c *Client) Workers(ctx context.Context) ([]api.WorkerInfo, error) {
	var out api.WorkerList
	if err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out); err != nil {
		return nil, err
	}
	return out.Workers, nil
}

// Trace fetches a traced run's completed spans (the NDJSON stream of
// GET /v1/runs/{id}/trace) plus the ring-eviction count from the
// X-Trace-Dropped header. A run submitted without tracing yields a
// not_found *api.Error.
func (c *Client) Trace(ctx context.Context, id string) ([]obs.SpanData, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/runs/"+url.PathEscape(id)+"/trace", nil)
	if err != nil {
		return nil, 0, err
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("client: trace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, apiError(resp)
	}
	dropped, _ := strconv.ParseInt(resp.Header.Get("X-Trace-Dropped"), 10, 64)
	var spans []obs.SpanData
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var sp obs.SpanData
		if err := json.Unmarshal(line, &sp); err != nil {
			return nil, 0, fmt.Errorf("client: bad trace line %q: %w", line, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("client: trace stream broke: %w", err)
	}
	return spans, dropped, nil
}

// Metrics scrapes the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Ready probes /readyz; nil means the server accepts submissions.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}
