// Package api is the versioned wire contract of the fvevald service:
// every request body, response body, state name, and error code the
// v1 HTTP surface speaks, as one compile-checked set of types shared
// by the server (internal/service), the typed Go client
// (internal/service/client), and every tool built on them
// (cmd/fvevalctl, internal/dist). Nothing here has behavior — the
// package exists so the wire shapes cannot drift between the two
// sides of the protocol.
package api

import (
	"fmt"
	"time"

	"fveval/internal/task"
)

// Version is the API version prefix every v1 route carries.
const Version = "v1"

// Run lifecycle states. A run enters the admission queue as
// StateQueued, moves to StateRunning when an executor picks it up,
// and lands in exactly one terminal state. StateInterrupted is the
// recovery verdict for runs that were in flight when the server died:
// their partial progress is unrecoverable, so a restart reports them
// interrupted rather than silently re-running side-effect-bearing
// work (queued runs, by contrast, are resumed — they had not started).
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateError       = "error"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// Terminal reports whether a state is final.
func Terminal(state string) bool {
	switch state {
	case StateDone, StateError, StateCancelled, StateInterrupted:
		return true
	}
	return false
}

// Error codes carried in the error envelope. Machine-readable: a
// client switches on Code, not on message text or status alone.
const (
	CodeBadRequest    = "bad_request"    // 400: malformed body or invalid task/params/options
	CodeNotFound      = "not_found"      // 404: unknown run or worker id
	CodeQuotaExceeded = "quota_exceeded" // 429: per-client queued+running quota hit
	CodeQueueFull     = "queue_full"     // 503: admission queue at capacity
	CodeDraining      = "draining"       // 503: server is shutting down
	CodeNoWorkers     = "no_workers"     // 503: distributed run with an empty live registry
	CodeInternal      = "internal"       // 500: anything else
)

// ErrorInfo is the body of the unified error envelope:
//
//	{"error": {"code": "quota_exceeded", "message": "..."}}
//
// Every non-2xx response from every endpoint uses this shape.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope wraps ErrorInfo as the on-wire JSON object.
type ErrorEnvelope struct {
	Error ErrorInfo `json:"error"`
}

// Error is the client-side form of a non-2xx response; it implements
// error so envelope failures flow through normal Go error handling
// while keeping Status and Code inspectable.
type Error struct {
	Status  int    // HTTP status code
	Code    string // machine-readable error code
	Message string
	// RetryAfter is the server's back-pressure hint (Retry-After
	// header on 429/503), zero when absent. Retry loops — notably the
	// dist coordinator's backoff — treat it as a floor on their delay.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("service: %d %s: %s", e.Status, e.Code, e.Message)
}

// RetryAfterHint exposes the back-pressure hint behind the interface
// internal/dist probes for (it cannot import this package's consumers).
func (e *Error) RetryAfterHint() time.Duration {
	return e.RetryAfter
}

// IsCode reports whether err is a service *Error with the given code.
func IsCode(err error, code string) bool {
	e, ok := err.(*Error)
	return ok && e.Code == code
}

// Priority bounds for submissions; higher-priority runs leave the
// admission queue first (FIFO within a priority level).
const (
	MinPriority = 0
	MaxPriority = 9
)

// Submission is the POST /v1/runs body: a registry request plus the
// service-level execution mode.
//
// The embedded Request carries the tracing knob: a non-nil "trace"
// object turns span recording on for this run. For full runs the
// server roots the trace itself and serves it at
// GET /v1/runs/{id}/trace; the object is normally empty ({}). For
// partial (shard) runs "trace" additionally carries the
// coordinator's parent span id, and the recorded spans come back on
// the task.Partial instead of a server endpoint. Traces never change
// result bytes and are never persisted.
type Submission struct {
	task.Request

	// Partial selects the raw-grid result shape: the run evaluates via
	// RunPartial and its view carries a task.Partial for coordinator
	// merging instead of an aggregated Run. Implied by shard-scoped
	// Options.
	Partial bool `json:"partial,omitempty"`

	// Distributed fans the run out across the server's live worker
	// registry via the dist coordinator instead of the local engine.
	// Rejected (503 no_workers) when no registered worker is alive,
	// and incompatible with Partial (400).
	Distributed bool `json:"distributed,omitempty"`

	// Priority orders the admission queue (MinPriority..MaxPriority,
	// default 0; higher runs earlier).
	Priority int `json:"priority,omitempty"`

	// TimeoutMS bounds the run's execution wall-clock: the server
	// wraps the executor context in this deadline, and a distributed
	// coordinator forwards the remaining budget to worker shard
	// requests — so an abandoned or dead client cannot pin executor
	// slots forever. 0 = no deadline. A run that overruns lands in
	// StateError.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SubmitResponse acknowledges a submission. Status is StateQueued for
// admitted runs and StateDone for result-cache hits (Cached true), in
// which case the run is immediately pollable in its terminal state.
type SubmitResponse struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Cached   bool   `json:"cached,omitempty"`
	Position int    `json:"position,omitempty"` // queue position at admission (1 = next)
}

// RunView is the GET /v1/runs/{id} shape and the element shape of run
// listings (listings omit the heavyweight Run/Partial/Last fields).
type RunView struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Task     string `json:"task"`
	Client   string `json:"client,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Cached marks a run served from the content-addressed result
	// store without touching the engine.
	Cached bool `json:"cached,omitempty"`
	// CreatedMS / StartedMS / FinishedMS are unix-millisecond
	// lifecycle timestamps (0 = not reached).
	CreatedMS  int64 `json:"created_ms,omitempty"`
	StartedMS  int64 `json:"started_ms,omitempty"`
	FinishedMS int64 `json:"finished_ms,omitempty"`
	// Events counts buffered progress events (not persisted across
	// restarts; recovered runs report 0).
	Events int           `json:"events"`
	Error  string        `json:"error,omitempty"`
	Run    *task.Run     `json:"run,omitempty"`
	Part   *task.Partial `json:"partial,omitempty"`
	Last   *task.Event   `json:"last_event,omitempty"`
}

// RunList is the GET /v1/runs page shape. NextCursor, when non-empty,
// is the cursor value for the next page; pass it back as ?cursor=.
type RunList struct {
	Runs       []RunView `json:"runs"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

// ListRunsQuery names the GET /v1/runs query parameters.
type ListRunsQuery struct {
	// Limit caps the page size (default DefaultListLimit, max
	// MaxListLimit).
	Limit int
	// Cursor resumes listing after the run id it names.
	Cursor string
	// State filters on lifecycle state; Task filters on registry name.
	State string
	Task  string
}

// List paging bounds.
const (
	DefaultListLimit = 50
	MaxListLimit     = 500
)

// RegisterRequest is the POST /v1/workers/register body: the worker's
// advertised base URL (the address the coordinator dials shards to).
type RegisterRequest struct {
	URL string `json:"url"`
}

// RegisterResponse acknowledges a registration. The worker must POST
// /v1/workers/{id}/heartbeat at least every TTLMS milliseconds or it
// is evicted from the live registry; IntervalMS is the recommended
// heartbeat period (TTL/3).
type RegisterResponse struct {
	ID         string `json:"id"`
	TTLMS      int64  `json:"ttl_ms"`
	IntervalMS int64  `json:"interval_ms"`
}

// WorkerInfo describes one live registry entry.
type WorkerInfo struct {
	ID           string `json:"id"`
	URL          string `json:"url"`
	RegisteredMS int64  `json:"registered_ms"`
	LastSeenMS   int64  `json:"last_seen_ms"`
}

// WorkerList is the GET /v1/workers shape.
type WorkerList struct {
	Workers []WorkerInfo `json:"workers"`
}

// TaskList is the GET /v1/tasks shape.
type TaskList struct {
	Tasks []task.Spec `json:"tasks"`
}

// Health is the GET /healthz and /readyz shape.
type Health struct {
	Status string `json:"status"`
	// QueueDepth and Workers annotate readiness responses.
	QueueDepth int `json:"queue_depth,omitempty"`
	Workers    int `json:"workers,omitempty"`
}
