package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"fveval/internal/engine"
	"fveval/internal/task"
)

// resultCache is the cross-request content-addressed result store:
// finished Runs (and shard Partials) keyed by the canonicalized
// request, so identical submissions from different clients are served
// the finished Report without touching the engine. Entries are
// LRU-bounded; the cache is repopulated from the journal on restart,
// so a recovered server keeps serving cached results immediately.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent; values are cache keys
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	run     *task.Run
	partial *task.Partial
	elem    *list.Element
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 256
	}
	return &resultCache{max: max, order: list.New(), entries: map[string]*cacheEntry{}}
}

// resultKey canonicalizes a submission into its content address: the
// resolved registry request (task name + fully merged params) plus
// the verdict-shaping options and the result shape (partial or
// aggregated). Workers is cleared — machine-local parallelism never
// changes a byte of output (the engine's determinism invariant) — so
// requests differing only in parallelism share one entry. An error
// means the request does not canonicalize (unknown task, bad params)
// and is therefore uncacheable.
func resultKey(req task.Request, partial bool) (string, error) {
	canon, err := req.Canonical()
	if err != nil {
		return "", err
	}
	canon.Options.Workers = 0
	payload, err := json.Marshal(struct {
		Task    string        `json:"task"`
		Params  task.Params   `json:"params"`
		Options engine.Config `json:"options"`
		Partial bool          `json:"partial"`
	}{canon.Task, canon.Params, canon.Options, partial})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// get returns the cached result for a key, refreshing its recency.
func (c *resultCache) get(key string) (*task.Run, *task.Partial, bool) {
	if key == "" {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(e.elem)
	return e.run, e.partial, true
}

// put stores a finished result, evicting the least-recently-used
// entry beyond capacity.
func (c *resultCache) put(key string, run *task.Run, partial *task.Partial) {
	if key == "" || (run == nil && partial == nil) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.run, e.partial = run, partial
		c.order.MoveToFront(e.elem)
		return
	}
	e := &cacheEntry{run: run, partial: partial}
	e.elem = c.order.PushFront(key)
	c.entries[key] = e
	for len(c.entries) > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(string))
	}
}
