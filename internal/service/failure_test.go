package service

// Failure-semantics tests for ISSUE 10: torn journal writes at every
// byte offset, coordinator kill -9 mid-distributed-run with checkpoint
// resume, the worker re-registration race, end-to-end deadlines, and
// the registration/heartbeat fault seams.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fveval/internal/engine"
	"fveval/internal/fault"
	"fveval/internal/service/api"
	"fveval/internal/service/client"
	"fveval/internal/task"
)

// TestTornCheckpointEveryByteOffset cuts a checkpoint journal record
// at every byte offset — the full sweep of what a crash between write
// and fsync can leave on disk — and asserts recovery never loses a
// terminal run, never resurrects a cancelled one, and never corrupts
// the replay of everything written before the tear.
func TestTornCheckpointEveryByteOffset(t *testing.T) {
	defer fault.Reset()

	plainSub := api.Submission{Request: task.Request{Task: "dataset-stats"}}
	distSub := api.Submission{Request: task.Request{Task: "dataset-stats"}, Distributed: true}
	prefix := []*journalRecord{
		// A finished run, a cancelled run, a queued run, and an
		// in-flight distributed run the torn checkpoint belongs to.
		{Op: "submit", MS: 1, ID: "run-000001", Client: "ip-x", Sub: &plainSub},
		{Op: "start", MS: 2, ID: "run-000001"},
		{Op: "finish", MS: 3, ID: "run-000001", Status: api.StateDone},
		{Op: "submit", MS: 4, ID: "run-000002", Client: "ip-x", Sub: &plainSub},
		{Op: "finish", MS: 5, ID: "run-000002", Status: api.StateCancelled, Error: "cancelled by client"},
		// An intact checkpoint aimed at the cancelled run: the guard
		// must drop it regardless of where the later tear lands.
		{Op: "checkpoint", MS: 6, ID: "run-000002", Shard: 0, Shards: 2, Partial: &task.Partial{}},
		{Op: "submit", MS: 7, ID: "run-000003", Client: "ip-y", Sub: &plainSub},
		{Op: "submit", MS: 8, ID: "run-000004", Client: "ip-y", Sub: &distSub},
		{Op: "start", MS: 9, ID: "run-000004"},
	}
	ck := &journalRecord{Op: "checkpoint", MS: 10, ID: "run-000004", Shard: 0, Shards: 2, Partial: &task.Partial{}}
	ckJSON, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	lineLen := len(ckJSON) + 1 // journal.append writes data + '\n'

	for off := 0; off < lineLen; off++ {
		dir := t.TempDir()
		j, _, err := openJournal(dir)
		if err != nil {
			t.Fatalf("offset %d: open: %v", off, err)
		}
		for _, rec := range prefix {
			if _, err := j.append(rec); err != nil {
				t.Fatalf("offset %d: prefix append: %v", off, err)
			}
		}
		if err := fault.Activate(fault.Plan{Points: map[string]fault.PointPlan{
			fault.JournalFsync: {Cut: true, CutAt: off, Count: 1},
		}}); err != nil {
			t.Fatalf("offset %d: activate: %v", off, err)
		}
		_, err = j.append(ck)
		fault.Reset()
		if err == nil {
			t.Fatalf("offset %d: torn append did not report failure", off)
		}
		j.Close()

		j2, recovered, err := openJournal(dir)
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		j2.Close()

		if r := recovered["run-000001"]; r == nil || r.Status != api.StateDone {
			t.Fatalf("offset %d: terminal run lost or mutated: %+v", off, r)
		}
		if r := recovered["run-000002"]; r == nil || r.Status != api.StateCancelled || len(r.Checkpoints) != 0 {
			t.Fatalf("offset %d: cancelled run resurrected: %+v", off, r)
		}
		if r := recovered["run-000003"]; r == nil || r.Status != api.StateQueued {
			t.Fatalf("offset %d: queued run lost: %+v", off, r)
		}
		r := recovered["run-000004"]
		if r == nil || r.Status != api.StateRunning {
			t.Fatalf("offset %d: in-flight run lost: %+v", off, r)
		}
		// Only a tear after the record's final byte (newline missing
		// but data complete) may surface the checkpoint; any shorter
		// prefix must vanish, never half-apply.
		switch {
		case len(r.Checkpoints) == 0:
			if off == len(ckJSON) {
				t.Fatalf("offset %d: complete record (missing newline only) was dropped", off)
			}
		case len(r.Checkpoints) == 1 && r.Checkpoints[0] != nil && r.CheckpointShards == 2:
			if off != len(ckJSON) {
				t.Fatalf("offset %d: torn checkpoint half-applied", off)
			}
		default:
			t.Fatalf("offset %d: corrupt checkpoint state: %+v", off, r)
		}
	}
}

// TestJournalAppendAndCompactFaultSeams pins the other two journal
// fault points: a failed append surfaces its error without corrupting
// the file, and a failed compaction leaves the journal fully
// replayable — both recover on the next attempt once the fault clears.
func TestJournalAppendAndCompactFaultSeams(t *testing.T) {
	defer fault.Reset()

	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub := api.Submission{Request: task.Request{Task: "dataset-stats"}}
	rec1 := &journalRecord{Op: "submit", MS: 1, ID: "run-000001", Client: "ip-x", Sub: &sub}
	rec2 := &journalRecord{Op: "submit", MS: 2, ID: "run-000002", Client: "ip-x", Sub: &sub}
	if _, err := j.append(rec1); err != nil {
		t.Fatal(err)
	}

	if err := fault.Activate(fault.Plan{Points: map[string]fault.PointPlan{
		fault.JournalAppend:   {Count: 1},
		fault.SnapshotCompact: {Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.append(rec2); err == nil {
		t.Fatal("append fault did not surface")
	}
	if _, err := j.append(rec2); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	if err := j.compact([]*runRecord{{ID: "run-000001", Status: api.StateQueued, Sub: sub}}); err == nil {
		t.Fatal("compact fault did not surface")
	}
	if fault.Fires(fault.JournalAppend) != 1 || fault.Fires(fault.SnapshotCompact) != 1 {
		t.Fatalf("fires = %d/%d, want 1/1",
			fault.Fires(fault.JournalAppend), fault.Fires(fault.SnapshotCompact))
	}
	fault.Reset()
	j.Close()

	// The failed compaction must not have touched the journal: both
	// appended records replay.
	j2, recovered, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d runs after failed compact, want 2", len(recovered))
	}
	// A clean compaction then snapshots the live set and truncates.
	recs := make([]*runRecord, 0, len(recovered))
	for _, r := range recovered {
		recs = append(recs, r)
	}
	if err := j2.compact(recs); err != nil {
		t.Fatalf("compact after fault cleared: %v", err)
	}
	j2.Close()
	j3, again, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if len(again) != 2 {
		t.Fatalf("recovered %d runs from snapshot, want 2", len(again))
	}
}

// gatedShardWorker fronts a real worker server and blocks any shard
// submission whose body matches marker until gate closes (or the
// request context dies — the coordinator-crash case).
func gatedShardWorker(t *testing.T, backend *Server, marker string, gate chan struct{}) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/runs" {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, `{"error":{"code":"bad_request","message":"body"}}`, http.StatusBadRequest)
				return
			}
			if strings.Contains(string(body), marker) {
				select {
				case <-gate:
				case <-r.Context().Done():
					http.Error(w, `{"error":{"code":"internal","message":"gated shard"}}`, http.StatusInternalServerError)
					return
				}
			}
			r2 := r.Clone(r.Context())
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
			backend.ServeHTTP(w, r2)
			return
		}
		backend.ServeHTTP(w, r)
	}))
}

// TestCheckpointResumeAfterCoordinatorKill is the ISSUE 10 acceptance
// e2e: kill -9 the coordinator mid-distributed-run after one shard
// checkpointed, restart over the same data dir, and the run resumes
// from the checkpoint — never reported interrupted — with the final
// report byte-identical to an uninterrupted single-engine run.
func TestCheckpointResumeAfterCoordinatorKill(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})

	// Two workers; shard 1 submissions gate on both, so shard 0
	// completes (and checkpoints) while shard 1 — and any hedge of it —
	// pins the run in flight.
	wA := gatedShardWorker(t, newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})}), `"index":1`, gate)
	defer wA.Close()
	wB := gatedShardWorker(t, newTestServer(t, Config{Engine: task.NewEngine(engine.Config{})}), `"index":1`, gate)
	defer wB.Close()

	req := task.Request{
		Task:    "nl2sva-human",
		Params:  task.Params{Models: []string{"gpt-4o", "llama-3-8b"}},
		Options: engine.Config{Limit: 6, Workers: 2},
	}
	base, err := task.NewEngine(engine.Config{}).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, err := base.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}

	s1, err := New(Config{
		Engine:      task.NewEngine(engine.Config{Workers: 1}),
		DataDir:     dir,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(s1)
	s1.registry.register(wA.URL)
	s1.registry.register(wB.URL)

	cl := client.New(srv1.URL)
	submitted, err := cl.Submit(context.Background(), api.Submission{Request: req, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until shard 0's checkpoint is journaled, then crash.
	deadline := time.Now().Add(10 * time.Second)
	for s1.metrics.checkpointsWritten.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint landed before the crash window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same data dir with the gate open and the fleet
	// re-registered: the run must resume from shard 0's checkpoint.
	close(gate)
	s2, err := New(Config{
		Engine:      task.NewEngine(engine.Config{Workers: 1}),
		DataDir:     dir,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.registry.register(wA.URL)
	s2.registry.register(wB.URL)
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()

	view := pollTerminal(t, srv2.URL, submitted.ID)
	if view.Status != api.StateDone {
		t.Fatalf("resumed run finished %q (%q), want done — interrupted means the checkpoint was ignored",
			view.Status, view.Error)
	}
	gotEnc, err := view.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("resumed report diverged from single-engine run\n--- resumed ---\n%s\n--- single ---\n%s", gotEnc, wantEnc)
	}
	if got := s2.metrics.checkpointRestores.Load(); got == 0 {
		t.Fatalf("restart restored %d shards from checkpoints, want >= 1", got)
	}

	// The exposition carries the new resilience series.
	var buf bytes.Buffer
	s2.writeMetrics(&buf)
	for _, series := range []string{"fveval_checkpoints_total", "fveval_checkpoint_restores_total"} {
		if !strings.Contains(buf.String(), series) {
			t.Fatalf("metrics missing %s:\n%s", series, buf.String())
		}
	}
}

// TestRegistryReRegistrationRace pins the double-planning bug: a
// worker that re-registers with a differently-rendered URL while its
// old entry is still live must collapse to one fleet slot, not two.
func TestRegistryReRegistrationRace(t *testing.T) {
	clock := &fakeClock{t: time.UnixMilli(1_700_000_000_000)}
	reg := newWorkerRegistry(10*time.Second, clock.now, nil)

	id1 := reg.register("http://Worker-A:9000/")
	clock.advance(5 * time.Second)
	// Re-registration with a formatting variant of the same endpoint —
	// the shape a worker produces after its heartbeat 404s and it
	// re-advertises — must resolve to the same identity.
	id2 := reg.register("http://worker-a:9000")
	if id1 != id2 {
		t.Fatalf("variant re-registration forked identity: %s vs %s", id1, id2)
	}
	if live := reg.live(); len(live) != 1 || live[0].URL != "http://worker-a:9000" {
		t.Fatalf("fleet after re-registration: %+v, want one normalized worker", live)
	}

	// Entries predating normalization (replayed state) dedupe in live()
	// keeping the freshest, so one endpoint is never planned twice.
	reg.workers["w-old"] = &workerEntry{
		id: "w-old", url: "http://Worker-A:9000/",
		registered: clock.now().Add(-8 * time.Second),
		lastSeen:   clock.now().Add(-8 * time.Second),
	}
	live := reg.live()
	if len(live) != 1 {
		t.Fatalf("stale variant entry double-planned the endpoint: %+v", live)
	}
	if live[0].ID != id1 {
		t.Fatalf("dedup kept the stale entry %s over the fresh %s", live[0].ID, id1)
	}
}

// TestRegisterAndHeartbeatFaultSeams drives the worker-registration
// and heartbeat fault points: injected failures surface as 503 with
// Retry-After, and the fleet recovers once the plan is exhausted.
func TestRegisterAndHeartbeatFaultSeams(t *testing.T) {
	defer fault.Reset()
	s := newTestServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	cl := client.New(srv.URL)
	ctx := context.Background()

	if err := fault.Activate(fault.Plan{Points: map[string]fault.PointPlan{
		fault.WorkerRegister:  {Count: 1},
		fault.WorkerHeartbeat: {Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}

	if _, err := cl.RegisterWorker(ctx, "http://worker-a:9000"); err == nil {
		t.Fatal("injected registration fault did not surface")
	} else if !api.IsCode(err, api.CodeInternal) {
		t.Fatalf("registration fault surfaced as %v, want %s", err, api.CodeInternal)
	}
	lease, err := cl.RegisterWorker(ctx, "http://worker-a:9000")
	if err != nil {
		t.Fatalf("registration after fault plan exhausted: %v", err)
	}
	if err := cl.Heartbeat(ctx, lease.ID); err == nil {
		t.Fatal("injected heartbeat fault did not surface")
	}
	if err := cl.Heartbeat(ctx, lease.ID); err != nil {
		t.Fatalf("heartbeat after fault plan exhausted: %v", err)
	}
	if fault.Fires(fault.WorkerRegister) != 1 || fault.Fires(fault.WorkerHeartbeat) != 1 {
		t.Fatalf("fault fire counts: register=%d heartbeat=%d, want 1 each",
			fault.Fires(fault.WorkerRegister), fault.Fires(fault.WorkerHeartbeat))
	}
}

// TestRunDeadline covers timeout_ms end to end: negative values are
// rejected at admission, an overrun distributed run lands in the
// error state naming the deadline, and the remaining budget is
// forwarded to workers on every shard submission.
func TestRunDeadline(t *testing.T) {
	resp, err := http.Post(
		httptest.NewServer(newTestServer(t, Config{})).URL+"/v1/runs",
		"application/json",
		strings.NewReader(`{"task":"dataset-stats","timeout_ms":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative timeout_ms admitted: status %d", resp.StatusCode)
	}

	// A worker that records each shard submission body, then hangs
	// until the deadline kills the run.
	var sawTimeout atomic.Bool
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			body, _ := io.ReadAll(r.Body)
			if strings.Contains(string(body), `"timeout_ms"`) {
				sawTimeout.Store(true)
			}
		}
		select { // hang until the coordinator gives up
		case <-r.Context().Done():
		case <-time.After(30 * time.Second):
		}
		http.Error(w, `{"error":{"code":"internal","message":"hung worker"}}`, http.StatusInternalServerError)
	}))
	defer worker.Close()

	s := newTestServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	s.registry.register(worker.URL)

	cl := client.New(srv.URL)
	submitted, err := cl.Submit(context.Background(), api.Submission{
		Request:     task.Request{Task: "dataset-stats"},
		Distributed: true,
		TimeoutMS:   300,
	})
	if err != nil {
		t.Fatal(err)
	}
	view := pollTerminal(t, srv.URL, submitted.ID)
	if view.Status != api.StateError || !strings.Contains(view.Error, "deadline") {
		t.Fatalf("overrun run finished %q (%q), want error naming the deadline", view.Status, view.Error)
	}
	if !sawTimeout.Load() {
		t.Fatal("shard submission did not forward the remaining timeout_ms budget")
	}
}
