package service

import "container/heap"

// qitem is one admitted run waiting for an executor.
type qitem struct {
	id       string
	priority int
	seq      int64 // admission order; ties break FIFO
}

// admitQueue is the admission queue's heap: higher priority first,
// FIFO within a priority level. Cancel-while-queued is lazy — the
// run's record goes terminal immediately and the stale heap entry is
// skipped when an executor pops it — so cancellation never needs a
// heap search.
type admitQueue []qitem

func (q admitQueue) Len() int { return len(q) }

func (q admitQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q admitQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *admitQueue) Push(x any) { *q = append(*q, x.(qitem)) }

func (q *admitQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// push and pop wrap container/heap so call sites stay readable.
func (q *admitQueue) push(it qitem) { heap.Push(q, it) }

func (q *admitQueue) pop() (qitem, bool) {
	if q.Len() == 0 {
		return qitem{}, false
	}
	return heap.Pop(q).(qitem), true
}
