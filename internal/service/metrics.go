package service

import (
	"fmt"
	"io"
	"runtime"
	rm "runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"

	"fveval/internal/fault"
	"fveval/internal/formal"
)

// metrics is the service-local instrument set behind GET /metrics.
// Everything is hand-rolled Prometheus text exposition (version
// 0.0.4): counters and histograms accumulate here, gauges and the
// engine-backed series are sampled at scrape time, and the writer
// emits families in sorted-name order so scrapes are deterministic
// and diffable in tests.
type metrics struct {
	runsSubmitted     atomic.Int64
	admissionRejected struct {
		quota     atomic.Int64
		queueFull atomic.Int64
		draining  atomic.Int64
	}
	runsFinished sync.Map // status -> *atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	shardRetries atomic.Int64
	workerEvicts atomic.Int64
	compactions  atomic.Int64
	// Failure-path counters from the robustness layer: breaker trips
	// and recoveries plus hedges stream in from dist events during
	// distributed runs; checkpoint counters track shard partials
	// persisted to the store and shards restored from them on resume.
	breakerTrips       atomic.Int64
	breakerRecoveries  atomic.Int64
	shardHedges        atomic.Int64
	checkpointsWritten atomic.Int64
	checkpointRestores atomic.Int64

	runWall histogram
	// queueWait measures submit→dequeue admission latency. It reuses
	// the solver-wall bucket scheme: queue waits on a healthy service
	// live in the same sub-second range as solves, and sharing bounds
	// keeps the exposition's bucket vocabulary small.
	queueWait histogram
}

// finished bumps the per-terminal-status run counter.
func (m *metrics) finished(status string) {
	v, _ := m.runsFinished.LoadOrStore(status, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

// runWallBuckets are the run wall-clock histogram bounds in seconds.
var runWallBuckets = [...]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// histogram is a latency histogram over caller-chosen bounds; observe
// is lock-cheap enough for per-run (not per-job) granularity.
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1: one overflow bucket
	sum    float64
	n      int64
}

// init sets the bucket scheme; must run before the first observe.
func (h *histogram) init(bounds []float64) {
	h.bounds = bounds
	h.counts = make([]int64, len(bounds)+1)
}

// init arms the histograms; called once from service.New.
func (m *metrics) init() {
	m.runWall.init(runWallBuckets[:])
	m.queueWait.init(formal.SolveWallBuckets[:])
}

func (h *histogram) observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += seconds
	h.n++
}

// snapshot copies the histogram under its lock.
func (h *histogram) snapshot() (counts []int64, sum float64, n int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int64(nil), h.counts...), h.sum, h.n
}

// family is one metric family ready to emit.
type family struct {
	name, help, typ string
	lines           []string // full sample lines, already formatted
}

// writeMetrics renders the scrape. The gauge values (queue depth,
// in-flight runs, live workers, retained runs) and the engine-backed
// counters (equiv cache, formal backend, sim prefilter, solver
// wall-clock histogram) are sampled from the server at call time.
func (s *Server) writeMetrics(w io.Writer) {
	m := &s.metrics

	s.mu.Lock()
	queued := s.queuedCount
	inflight := s.inflight
	retained := len(s.runs)
	s.mu.Unlock()
	workers := len(s.registry.live())

	cache := s.eng.CacheStats()
	fstats := s.eng.FormalStats()

	fams := []family{
		counter("fveval_breaker_recoveries_total",
			"Worker circuit breakers closed again by a successful half-open probe.",
			plain(m.breakerRecoveries.Load())),
		counter("fveval_breaker_trips_total",
			"Worker circuit breakers tripped open by consecutive shard failures.",
			plain(m.breakerTrips.Load())),
		counter("fveval_checkpoint_restores_total",
			"Distributed shards restored from store checkpoints on resume.",
			plain(m.checkpointRestores.Load())),
		counter("fveval_checkpoints_total",
			"Completed shard partials persisted to the run store.",
			plain(m.checkpointsWritten.Load())),
		faultFamily(),
		counter("fveval_shard_hedges_total",
			"Speculative straggler-shard re-dispatches (first result wins).",
			plain(m.shardHedges.Load())),
		counter("fveval_admission_rejected_total",
			"Submissions rejected at admission, by reason.",
			sample("reason", "draining", m.admissionRejected.draining.Load()),
			sample("reason", "queue_full", m.admissionRejected.queueFull.Load()),
			sample("reason", "quota", m.admissionRejected.quota.Load()),
		),
		counter("fveval_equiv_cache_hits_total",
			"Equivalence-cache hits on the engine's shared memo pool.",
			plain(cache.Hits)),
		counter("fveval_equiv_cache_misses_total",
			"Equivalence-cache misses on the engine's shared memo pool.",
			plain(cache.Misses)),
		counter("fveval_formal_conflicts_total",
			"SAT conflicts spent across all formal sessions.",
			plain(fstats.Conflicts)),
		counter("fveval_formal_queries_total",
			"Incremental formal solver sessions opened.",
			plain(fstats.Queries)),
		counter("fveval_formal_solves_total",
			"Individual incremental Solve calls issued.",
			plain(fstats.Solves)),
		counter("fveval_journal_compactions_total",
			"Run-journal snapshot compactions.",
			m.compactionLines()...),
		gauge("fveval_queue_depth",
			"Runs waiting in the admission queue.",
			plain(int64(queued))),
		counter("fveval_result_cache_hits_total",
			"Submissions served from the content-addressed result store.",
			plain(m.cacheHits.Load())),
		counter("fveval_result_cache_misses_total",
			"Submissions that had to touch the engine.",
			plain(m.cacheMisses.Load())),
		histogramFamily("fveval_queue_wait_seconds",
			"Admission-queue wait (submit to dequeue), per executed run.",
			&m.queueWait),
		histogramFamily("fveval_run_wall_seconds",
			"End-to-end run wall-clock, per executed run.",
			&m.runWall),
		gauge("fveval_runs_inflight",
			"Runs currently executing.",
			plain(int64(inflight))),
		gauge("fveval_runs_retained",
			"Run records currently retained (queued, running, and terminal).",
			plain(int64(retained))),
		counter("fveval_runs_submitted_total",
			"Submissions admitted (including result-cache hits).",
			plain(m.runsSubmitted.Load())),
		counter("fveval_runs_total",
			"Runs finished, by terminal status.",
			m.statusLines()...),
		counter("fveval_shard_retries_total",
			"Distributed shard attempts that failed and were requeued.",
			plain(m.shardRetries.Load())),
		counter("fveval_sim_patterns_total",
			"Bit-parallel simulation pattern lanes evaluated.",
			plain(fstats.Sim.Patterns)),
		counter("fveval_sim_refutations_total",
			"Formal queries refuted by the simulation prefilter alone.",
			plain(fstats.Sim.Refutations)),
		counter("fveval_sim_sat_avoided_total",
			"SAT calls skipped thanks to a simulation witness.",
			plain(fstats.Sim.SATAvoided)),
		solverWallFamily(fstats),
		counter("fveval_workers_evicted_total",
			"Workers evicted from the registry after missed heartbeats.",
			plain(m.workerEvicts.Load())),
		gauge("fveval_workers_live",
			"Workers currently live in the registry.",
			plain(int64(workers))),
	}
	fams = append(fams, goRuntimeFamilies()...)
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, l := range f.lines {
			fmt.Fprintf(w, "%s%s\n", f.name, l)
		}
	}
}

// faultFamily samples the fault-injection subsystem at scrape time:
// total injected fires plus one labeled sample per configured point.
// Zero (with no labeled samples) whenever injection is inactive —
// i.e. always, outside chaos builds.
func faultFamily() family {
	snap := fault.Snapshot()
	points := make([]string, 0, len(snap))
	total := int64(0)
	for name, c := range snap {
		points = append(points, name)
		total += int64(c.Fires)
	}
	sort.Strings(points)
	lines := []string{plain(total)}
	for _, name := range points {
		lines = append(lines, sample("point", name, int64(snap[name].Fires)))
	}
	return counter("fveval_faults_injected_total",
		"Faults fired by the deterministic injection subsystem, total and by point.",
		lines...)
}

// compactionLines exists so the counter stays emitted (as 0) before
// the first compaction.
func (m *metrics) compactionLines() []string {
	return []string{plain(m.compactions.Load())}
}

// statusLines renders fveval_runs_total{status=...} samples sorted by
// status for deterministic scrapes.
func (m *metrics) statusLines() []string {
	var statuses []string
	m.runsFinished.Range(func(k, _ any) bool {
		statuses = append(statuses, k.(string))
		return true
	})
	sort.Strings(statuses)
	lines := make([]string, 0, len(statuses))
	for _, st := range statuses {
		v, _ := m.runsFinished.Load(st)
		lines = append(lines, sample("status", st, v.(*atomic.Int64).Load()))
	}
	if len(lines) == 0 {
		lines = []string{sample("status", "done", 0)}
	}
	return lines
}

func counter(name, help string, lines ...string) family {
	return family{name: name, help: help, typ: "counter", lines: lines}
}

func gauge(name, help string, lines ...string) family {
	return family{name: name, help: help, typ: "gauge", lines: lines}
}

func plain(v int64) string { return fmt.Sprintf(" %d", v) }

func plainF(v float64) string { return fmt.Sprintf(" %g", v) }

func sample(label, value string, v int64) string {
	return fmt.Sprintf("{%s=%q} %d", label, value, v)
}

// histogramFamily renders a Prometheus histogram: cumulative _bucket
// samples, _sum, and _count.
func histogramFamily(name, help string, h *histogram) family {
	counts, sum, n := h.snapshot()
	lines := make([]string, 0, len(counts)+2)
	cum := int64(0)
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatBound(h.bounds[i])
		}
		lines = append(lines, fmt.Sprintf("_bucket{le=%q} %d", le, cum))
	}
	lines = append(lines,
		fmt.Sprintf("_sum %g", sum),
		fmt.Sprintf("_count %d", n))
	return family{name: name, help: help, typ: "histogram", lines: lines}
}

// goRuntimeFamilies samples the Go runtime at scrape time: goroutine
// count, live heap bytes, cumulative GC pause, and scheduling latency
// quantiles from runtime/metrics.
func goRuntimeFamilies() []family {
	samples := []rm.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/sched/latencies:seconds"},
	}
	rm.Read(samples)
	heap := int64(0)
	if samples[0].Value.Kind() == rm.KindUint64 {
		heap = int64(samples[0].Value.Uint64())
	}
	var p50, p99 float64
	if samples[1].Value.Kind() == rm.KindFloat64Histogram {
		p50 = histQuantile(samples[1].Value.Float64Histogram(), 0.5)
		p99 = histQuantile(samples[1].Value.Float64Histogram(), 0.99)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []family{
		counter("fveval_go_gc_pause_seconds_total",
			"Cumulative GC stop-the-world pause.",
			plainF(float64(ms.PauseTotalNs)/1e9)),
		gauge("fveval_go_goroutines",
			"Live goroutines.",
			plain(int64(runtime.NumGoroutine()))),
		gauge("fveval_go_heap_bytes",
			"Bytes of live heap objects.",
			plain(heap)),
		gauge("fveval_go_sched_latency_p50_seconds",
			"Median goroutine scheduling latency since process start.",
			plainF(p50)),
		gauge("fveval_go_sched_latency_p99_seconds",
			"99th-percentile goroutine scheduling latency since process start.",
			plainF(p99)),
	}
}

// histQuantile reads quantile q out of a runtime/metrics histogram,
// returning the upper bound of the bucket the quantile falls in (the
// conservative estimate; +Inf degrades to the last finite bound).
func histQuantile(h *rm.Float64Histogram, q float64) float64 {
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			hi := h.Buckets[i+1]
			if hi > 1e300 || hi != hi { // +Inf bucket
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// solverWallFamily renders the formal backend's per-check wall-clock
// histogram from the engine's cumulative snapshot.
func solverWallFamily(s formal.Snapshot) family {
	lines := make([]string, 0, formal.SolveWallBucketCount+2)
	cum := int64(0)
	for i, c := range s.SolveWallHist {
		cum += c
		le := "+Inf"
		if i < len(formal.SolveWallBuckets) {
			le = formatBound(formal.SolveWallBuckets[i])
		}
		lines = append(lines, fmt.Sprintf("_bucket{le=%q} %d", le, cum))
	}
	lines = append(lines,
		fmt.Sprintf("_sum %g", float64(s.SolveWallNS)/1e9),
		fmt.Sprintf("_count %d", cum))
	return family{
		name: "fveval_solver_wall_seconds",
		help: "Formal-check wall-clock, per equivalence pair or model-checking property.",
		typ:  "histogram", lines: lines,
	}
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
