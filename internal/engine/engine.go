// Package engine is the unified evaluation runner for all FVEval
// sub-benchmarks. It flattens an entire run — every (model, instance,
// sample) tuple — into one job queue, drains the queue with a bounded
// worker pool, and streams outcomes into per-model aggregators whose
// final fold walks outcome slots in deterministic grid order. Final
// tables are therefore byte-identical regardless of worker count,
// scheduling order, sharding off/on differences aside, or whether the
// equivalence-check cache is enabled.
//
// One engine owns one run-wide equiv.Cache: pass@k evaluation
// re-checks many duplicate candidate/reference pairs across samples
// and models, and memoizing equiv.Check collapses those repeated SAT
// solves. Engines derived with Reconfigure share the same cache pool,
// so a long-lived service can serve differently tuned requests while
// still collapsing duplicate solves across them. Horizontal scaling
// across processes is supported by Shard, which partitions the
// instance axis (never the sample axis, so per-instance pass@k folds
// stay complete within a shard).
//
// Every evaluation method takes a context.Context and an optional
// Observer: cancelling the context stops feeding the worker pool and
// the method returns ctx.Err(); the observer receives one Progress
// per completed job, delivered from the collector goroutine (calls
// are serialized, never concurrent).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fveval/internal/core"
	"fveval/internal/equiv"
	"fveval/internal/fault"
	"fveval/internal/formal"
	"fveval/internal/gen/rtlgen"
	"fveval/internal/llm"
	"fveval/internal/mc"
	"fveval/internal/obs"
	"fveval/internal/sva"
)

// Shard selects one horizontal slice of the instance axis: a process
// configured with {Index: i, Count: n} evaluates instances whose
// position modulo n equals i. The zero value disables sharding.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Enabled reports whether the shard actually partitions work.
func (s Shard) Enabled() bool { return s.Count > 1 }

// Validate rejects malformed shard specs.
func (s Shard) Validate() error {
	if s.Count < 0 || s.Index < 0 {
		return fmt.Errorf("engine: negative shard %d/%d", s.Index, s.Count)
	}
	if s.Count > 0 && s.Index >= s.Count {
		return fmt.Errorf("engine: shard index %d out of range 0..%d", s.Index, s.Count-1)
	}
	return nil
}

func (s Shard) String() string {
	if !s.Enabled() {
		return "none"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Config tunes a benchmark run.
type Config struct {
	// Limit truncates the instance list (0 = all); tests use small
	// limits, benches run full size. Applied before sharding.
	Limit int `json:"limit,omitempty"`
	// Samples per instance for pass@k runs.
	Samples int `json:"samples,omitempty"`
	// Budget caps SAT conflicts per query (0 = default 200000). With
	// the incremental backend a query is one formal direction or one
	// model-checking depth; the budget is a per-call delta inside the
	// solver, so it keeps meaning "conflicts per query" across the
	// ramp.
	Budget int64 `json:"budget,omitempty"`
	// MaxBound caps the lasso bound the equivalence ramp may grow to
	// and the BMC falsification depth (0 = backend defaults, 16 each).
	MaxBound int `json:"max_bound,omitempty"`
	// Workers bounds the evaluation pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Shard restricts this process to one slice of the instance axis.
	Shard Shard `json:"shard,omitzero"`
	// NoCache disables every run-wide memo (equivalence checks,
	// translation judgments, design judgments). Verdicts are identical
	// either way; the memos only skip duplicate solves.
	NoCache bool `json:"no_cache,omitempty"`
	// SimPatterns sets how many bit-parallel simulation patterns the
	// formal backend's refute-before-solve prefilter evaluates per
	// query (rounded up to 64-lane rounds; 0 = default 128). The
	// prefilter is refute-only — verdicts, reports, and rendered
	// tables are byte-identical with it on or off (DESIGN.md §10).
	SimPatterns int `json:"sim_patterns,omitempty"`
	// NoSim disables the simulation prefilter entirely: every formal
	// query goes straight to the SAT solver, as before PR 5.
	NoSim bool `json:"no_sim,omitempty"`
}

// Validate rejects configurations that would silently misbehave:
// every knob is a size or a budget, so negative values are always a
// caller bug, not a request for a default.
func (c Config) Validate() error {
	if c.Limit < 0 {
		return fmt.Errorf("engine: negative Limit %d", c.Limit)
	}
	if c.Samples < 0 {
		return fmt.Errorf("engine: negative Samples %d", c.Samples)
	}
	if c.Budget < 0 {
		return fmt.Errorf("engine: negative Budget %d", c.Budget)
	}
	if c.MaxBound < 0 {
		return fmt.Errorf("engine: negative MaxBound %d", c.MaxBound)
	}
	if c.Workers < 0 {
		return fmt.Errorf("engine: negative Workers %d", c.Workers)
	}
	if c.SimPatterns < 0 {
		return fmt.Errorf("engine: negative SimPatterns %d", c.SimPatterns)
	}
	return c.Shard.Validate()
}

// withDefaults resolves the zero-value knobs; Validate has already
// rejected negatives, so no clamping happens here.
func (c Config) withDefaults() Config {
	if c.Budget == 0 {
		c.Budget = 200000
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Samples == 0 {
		c.Samples = 1
	}
	if c.SimPatterns == 0 {
		c.SimPatterns = 128
	}
	if c.NoSim {
		c.SimPatterns = 0
	}
	return c
}

// Progress describes one completed evaluation job.
type Progress struct {
	// Done jobs out of Total in this grid.
	Done, Total int
	// Model and Sample locate the job on the grid; InstanceID names
	// the evaluated instance.
	Model      string
	InstanceID string
	Sample     int
	// Outcome is the job's judged result.
	Outcome core.Outcome
	// Wall is the job's evaluation wall-clock (generation + judgment),
	// measured at the worker.
	Wall time.Duration
}

// Observer receives per-job progress. Calls come from the run's
// single collector goroutine, so implementations need no locking
// against each other (but must not block for long — they gate result
// collection).
type Observer func(Progress)

// state is the memo pool an engine family shares: the equivalence
// cache, the judgment memos, and the formal backend counters. It is
// split from Engine so Reconfigure can derive engines with different
// run configurations that still collapse duplicate solves together.
type state struct {
	cache  *equiv.Cache
	formal *formal.Stats // incremental-backend reuse counters (never nil)
	// bank is the run-wide counterexample pattern bank feeding the
	// simulation prefilter (never nil; unused when NoSim). Like the
	// equivalence cache it is shared across Reconfigure-derived
	// engines, so one request's counterexamples refute the next
	// request's queries.
	bank *formal.Bank

	// transMu guards transMemo, the run-wide translation-judgment memo:
	// identical extracted responses recur across samples and models, and
	// memoizing the whole judgment skips their repeated parse, BLEU, and
	// equivalence work. nil when caching is disabled.
	transMu   sync.Mutex
	transMemo map[string]core.Outcome

	// designMu guards designMemo: identical Design2SVA snippets recur
	// across samples and models, so the expensive elaborate+prove
	// judgment is memoized per (kind, instance, snippet). nil when
	// caching is disabled.
	designMu   sync.Mutex
	designMemo map[string]designCell

	// helperMu guards helperMemo, the AGR analogue of designMemo:
	// identical helper-set snippets recur across samples and models,
	// so the lemma-pipeline judgment is memoized per (instance,
	// snippet). nil when caching is disabled.
	helperMu   sync.Mutex
	helperMemo map[string]helperCell

	// refineRounds counts FeedbackModel retry rounds performed by
	// refinement runs on this pool — the per-run delta is surfaced as
	// the RefineRounds report stat.
	refineRounds atomic.Int64
}

func newState(noCache bool) *state {
	st := &state{formal: &formal.Stats{}, bank: formal.NewBank(0)}
	if !noCache {
		st.cache = equiv.NewCache()
		st.transMemo = map[string]core.Outcome{}
		st.designMemo = map[string]designCell{}
		st.helperMemo = map[string]helperCell{}
	}
	return st
}

// Engine executes benchmark runs over one shared equivalence cache.
type Engine struct {
	cfg Config
	st  *state
}

type designCell struct{ syntax, proven bool }

// dataset tags namespace memo keys across sub-benchmarks.
const (
	datasetHuman   = "human"
	datasetMachine = "machine"
)

// New builds an engine; cfg must be valid (see Config.Validate — New
// panics on malformed configs so misconfigured processes fail loudly
// instead of silently evaluating the wrong thing). Callers holding
// untrusted configuration should call Validate first and surface the
// error.
func New(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Engine{cfg: cfg.withDefaults(), st: newState(cfg.NoCache)}
}

// Reconfigure derives an engine that runs under cfg but shares this
// engine's memo pool (equivalence cache, judgment memos, formal
// counters), so a service can serve differently tuned requests from
// one cache. When cfg flips the caching mode relative to this
// engine's pool, the derived engine gets a fresh pool instead:
// sharing would either leak memoized verdicts into a NoCache run or
// silently re-enable memos.
func (e *Engine) Reconfigure(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := e.st
	if cfg.NoCache != (st.cache == nil) {
		st = newState(cfg.NoCache)
	}
	return &Engine{cfg: cfg.withDefaults(), st: st}, nil
}

// judgeTranslation memoizes core.JudgeTranslation per (dataset,
// instance, extracted code). The judgment depends only on the code and
// the instance's reference environment — never on the prompt or shot
// count — so entries are shared across samples, models, and shot
// settings. Judgments are deterministic, so racing duplicate
// computation is harmless.
func (e *Engine) judgeTranslation(ctx context.Context, dataset, id, response string, ref *sva.Assertion, sigs *equiv.Sigs) core.Outcome {
	opt := e.equivOptions(ctx)
	st := e.st
	if st.transMemo == nil {
		return core.JudgeTranslation(id, response, ref, sigs, opt, st.cache)
	}
	code := llm.ExtractCode(response)
	key := dataset + "\x00" + id + "\x00" + code
	st.transMu.Lock()
	o, ok := st.transMemo[key]
	st.transMu.Unlock()
	if ok {
		obs.SpanFrom(ctx).SetBool("memo_hit", true)
		return o
	}
	// ExtractCode is idempotent, so the pre-extracted code stands in
	// for the raw response.
	o = core.JudgeTranslation(id, code, ref, sigs, opt, st.cache)
	st.transMu.Lock()
	st.transMemo[key] = o
	st.transMu.Unlock()
	return o
}

// Config returns the resolved (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// CacheStats snapshots the equivalence-cache counters; all zero when
// the cache is disabled.
func (e *Engine) CacheStats() equiv.CacheStats { return e.st.cache.Stats() }

// FormalStats snapshots the incremental formal backend's solver-reuse
// and bound-ramp counters for this engine's runs.
func (e *Engine) FormalStats() formal.Snapshot { return e.st.formal.Snapshot() }

// SimStats snapshots the simulation-prefilter counters (a projection
// of FormalStats, for callers that only surface the prefilter).
func (e *Engine) SimStats() formal.SimStats { return e.st.formal.Snapshot().Sim }

// simBank resolves the pattern bank the formal backend should use:
// the shared pool bank, or nil when the prefilter is off (no point
// collecting patterns nothing will replay).
func (e *Engine) simBank() *formal.Bank {
	if e.cfg.SimPatterns == 0 {
		return nil
	}
	return e.st.bank
}

// equivOptions resolves the equivalence-checker options for this run;
// the context's current span (if the run is traced) rides along so the
// checker can hang its ramp-step and prefilter spans under the job.
func (e *Engine) equivOptions(ctx context.Context) equiv.Options {
	return equiv.Options{
		Budget:      e.cfg.Budget,
		MaxBound:    e.cfg.MaxBound,
		SimPatterns: e.cfg.SimPatterns,
		Bank:        e.simBank(),
		Stats:       e.st.formal,
		Span:        obs.SpanFrom(ctx),
	}
}

// mcOptions resolves the model-checker options for this run. MaxBound
// caps the falsification depth; proof depths stay at backend defaults.
func (e *Engine) mcOptions(ctx context.Context) mc.Options {
	return mc.Options{
		Budget:      e.cfg.Budget,
		BMCDepth:    e.cfg.MaxBound,
		SimPatterns: e.cfg.SimPatterns,
		Bank:        e.simBank(),
		Stats:       e.st.formal,
		Span:        obs.SpanFrom(ctx),
	}
}

// ---- flattened job grid -------------------------------------------------

// job identifies one evaluation cell in the flattened grid.
type job struct {
	model, inst, sample int
}

// slot addresses a job's outcome: outcomes[model][inst*samples+sample].
func (j job) slot(samples int) int { return j.inst*samples + j.sample }

// runGrid drains the full models × instances × samples grid through a
// bounded worker pool. Workers stream results to a single collector
// goroutine that places each outcome in its deterministic slot and
// notifies the observer; aggregation then folds the slots in grid
// order, so the result is independent of worker count and completion
// order.
//
// Cancelling ctx stops feeding the queue and wakes idle workers; the
// grid returns ctx.Err() once in-flight jobs have drained, and the
// partial outcome grid is discarded by every caller.
func (e *Engine) runGrid(ctx context.Context, models []string, nInst, nSamples int, eval func(ctx context.Context, j job) core.Outcome, observer Observer) ([][]core.Outcome, error) {
	nModels := len(models)
	outcomes := make([][]core.Outcome, nModels)
	for m := range outcomes {
		outcomes[m] = make([]core.Outcome, nInst*nSamples)
	}
	total := nModels * nInst * nSamples
	if total == 0 {
		return outcomes, ctx.Err()
	}

	// An injected engine.job fault fails the whole grid through the
	// cancel cause, so callers see the injected error rather than a
	// bare context.Canceled (which would misclassify as a user cancel).
	ctx, abort := context.WithCancelCause(ctx)
	defer abort(nil)

	jobs := make(chan job, e.cfg.Workers)
	type result struct {
		j    job
		out  core.Outcome
		wall time.Duration
	}
	results := make(chan result, e.cfg.Workers)

	// evalJob wraps one evaluation in its per-job span (model/sample
	// known up front, instance and verdict attached after) and times
	// it; when the run is untraced the span calls are nil no-ops.
	evalJob := func(j job) result {
		jctx, sp := obs.Start(ctx, "job")
		sp.SetStr("model", models[j.model]).SetInt("sample", int64(j.sample))
		start := time.Now()
		out := eval(jctx, j)
		wall := time.Since(start)
		sp.SetStr("instance", out.InstanceID).
			SetBool("syntax", out.Syntax).
			SetBool("func", out.Full)
		sp.End()
		return result{j: j, out: out, wall: wall}
	}

	var workers sync.WaitGroup
	w := e.cfg.Workers
	if w > total {
		w = total
	}
	for i := 0; i < w; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case j, ok := <-jobs:
					if !ok {
						return
					}
					if err := fault.Hit(fault.EngineJob); err != nil {
						abort(err)
						return
					}
					select {
					case results <- evalJob(j):
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}

	var collector sync.WaitGroup
	collector.Add(1)
	go func() {
		defer collector.Done()
		done := 0
		for r := range results {
			outcomes[r.j.model][r.j.slot(nSamples)] = r.out
			done++
			if observer != nil {
				observer(Progress{
					Done: done, Total: total,
					Model:      models[r.j.model],
					InstanceID: r.out.InstanceID,
					Sample:     r.j.sample,
					Outcome:    r.out,
					Wall:       r.wall,
				})
			}
		}
	}()

feed:
	for m := 0; m < nModels; m++ {
		for i := 0; i < nInst; i++ {
			for s := 0; s < nSamples; s++ {
				select {
				case jobs <- job{model: m, inst: i, sample: s}:
				case <-ctx.Done():
					break feed
				}
			}
		}
	}
	close(jobs)
	workers.Wait()
	close(results)
	collector.Wait()
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	return outcomes, nil
}

// generate runs one model call under a prompt-phase span, so traced
// runs attribute generation wall-clock separately from judgment.
func generate(ctx context.Context, m llm.Model, p *llm.Prompt, sample int) string {
	sp := obs.SpanFrom(ctx).Child("generate")
	sp.SetPhase(obs.PhasePrompt)
	resp := m.Generate(p, sample)
	sp.End()
	return resp
}

// names extracts the model-name axis for progress reporting.
func names(models []llm.Model) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.Name()
	}
	return out
}

// clip truncates to cfg.Limit, then keeps this shard's instances; it
// also returns the post-limit pre-shard count, the grid's global
// instance-axis length.
func clip[T any](xs []T, cfg Config) ([]T, int) {
	if cfg.Limit > 0 && cfg.Limit < len(xs) {
		xs = xs[:cfg.Limit]
	}
	total := len(xs)
	if !cfg.Shard.Enabled() {
		return xs, total
	}
	var out []T
	for i, x := range xs {
		if i%cfg.Shard.Count == cfg.Shard.Index {
			out = append(out, x)
		}
	}
	return out, total
}

// passKSamples resolves the sample count for pass@k runs (the paper
// draws 5 samples; a config of 0/1 means "use the paper default").
func (e *Engine) passKSamples() int {
	if e.cfg.Samples < 2 {
		return 5
	}
	return e.cfg.Samples
}

// ---- NL2SVA-Human -------------------------------------------------------

// HumanGrid evaluates the NL2SVA-Human grid and returns the raw
// outcome lattice with shard provenance; sampled draws passKSamples
// per instance, otherwise one greedy sample.
func (e *Engine) HumanGrid(ctx context.Context, models []llm.Model, sampled bool, obs Observer) (*Grid, error) {
	insts, err := core.LoadHuman()
	if err != nil {
		return nil, err
	}
	kept, total := clip(insts, e.cfg)
	n := 1
	if sampled {
		n = e.passKSamples()
	}
	// Prompts depend only on the instance, so build each once instead
	// of once per (model, sample) job; models treat them read-only.
	prompts := make([]*llm.Prompt, len(kept))
	for i, in := range kept {
		prompts[i] = llm.BuildHumanPrompt(in.ID, in.Testbench.Source, in.NL, in.Reference)
	}
	outs, err := e.runGrid(ctx, names(models), len(kept), n, func(jctx context.Context, j job) core.Outcome {
		in := kept[j.inst]
		resp := generate(jctx, models[j.model], prompts[j.inst], j.sample)
		return e.judgeTranslation(jctx, datasetHuman, in.ID, resp, in.Reference, in.Sigs)
	}, obs)
	if err != nil {
		return nil, err
	}
	return e.newGrid(names(models), total, len(kept), n, outs), nil
}

// NL2SVAHuman evaluates models with greedy decoding (Table 1).
func (e *Engine) NL2SVAHuman(ctx context.Context, models []llm.Model, obs Observer) ([]core.ModelReport, error) {
	g, err := e.HumanGrid(ctx, models, false, obs)
	if err != nil {
		return nil, err
	}
	return g.ModelReports(), nil
}

// NL2SVAHumanPassK evaluates pass@k with multiple samples (Table 2).
func (e *Engine) NL2SVAHumanPassK(ctx context.Context, models []llm.Model, ks []int, obs Observer) ([]core.PassKReport, error) {
	g, err := e.HumanGrid(ctx, models, true, obs)
	if err != nil {
		return nil, err
	}
	return g.PassKReports(ks), nil
}

// ---- NL2SVA-Machine -----------------------------------------------------

// MachineGrid evaluates the NL2SVA-Machine grid at a shot count and
// returns the raw outcome lattice with shard provenance; sampled draws
// passKSamples per instance, otherwise one greedy sample.
func (e *Engine) MachineGrid(ctx context.Context, models []llm.Model, shots, count int, sampled bool, obs Observer) (*Grid, error) {
	kept, total := clip(core.LoadMachine(count), e.cfg)
	n := 1
	if sampled {
		n = e.passKSamples()
	}
	prompts := make([]*llm.Prompt, len(kept))
	for i, in := range kept {
		prompts[i] = llm.BuildMachinePrompt(in.ID, in.NL, shots, in.Reference)
	}
	outs, err := e.runGrid(ctx, names(models), len(kept), n, func(jctx context.Context, j job) core.Outcome {
		in := kept[j.inst]
		resp := generate(jctx, models[j.model], prompts[j.inst], j.sample)
		return e.judgeTranslation(jctx, datasetMachine, in.ID, resp, in.Reference, in.Sigs)
	}, obs)
	if err != nil {
		return nil, err
	}
	return e.newGrid(names(models), total, len(kept), n, outs), nil
}

// NL2SVAMachine evaluates the machine benchmark at a shot count
// (Table 3 columns).
func (e *Engine) NL2SVAMachine(ctx context.Context, models []llm.Model, shots, count int, obs Observer) ([]core.ModelReport, error) {
	g, err := e.MachineGrid(ctx, models, shots, count, false, obs)
	if err != nil {
		return nil, err
	}
	return g.ModelReports(), nil
}

// NL2SVAMachinePassK evaluates machine pass@k at 3-shot (Table 4).
func (e *Engine) NL2SVAMachinePassK(ctx context.Context, models []llm.Model, ks []int, count int, obs Observer) ([]core.PassKReport, error) {
	g, err := e.MachineGrid(ctx, models, 3, count, true, obs)
	if err != nil {
		return nil, err
	}
	return g.PassKReports(ks), nil
}

// ---- Design2SVA ---------------------------------------------------------

// DesignGrid evaluates the Design2SVA grid for one design category
// (always sampled: the paper draws passKSamples per instance) and
// returns the raw outcome lattice with shard provenance.
func (e *Engine) DesignGrid(ctx context.Context, models []llm.Model, kind string, obs Observer) (*Grid, error) {
	kept, total := clip(rtlgen.Sweep96(kind), e.cfg)
	n := e.passKSamples()
	prompts := make([]*llm.Prompt, len(kept))
	for i, inst := range kept {
		prompts[i] = llm.BuildDesignPrompt(inst)
	}
	outs, err := e.runGrid(ctx, names(models), len(kept), n, func(jctx context.Context, j job) core.Outcome {
		inst := kept[j.inst]
		resp := generate(jctx, models[j.model], prompts[j.inst], j.sample)
		code := llm.ExtractCode(resp)
		c := e.judgeDesignMemo(jctx, kind, inst, code)
		return core.Outcome{InstanceID: inst.ID, Response: code, Syntax: c.syntax, Full: c.proven}
	}, obs)
	if err != nil {
		return nil, err
	}
	return e.newGrid(names(models), total, len(kept), n, outs), nil
}

// Design2SVA evaluates models on a design category with n samples per
// instance (Table 5 halves). Outcome.Full carries "proven".
func (e *Engine) Design2SVA(ctx context.Context, models []llm.Model, kind string, obs Observer) ([]core.DesignReport, error) {
	return e.design2SVA(ctx, models, kind, []int{1, 5}, obs)
}

// Design2SVAKs is Design2SVA with a caller-chosen pass@k set.
func (e *Engine) Design2SVAKs(ctx context.Context, models []llm.Model, kind string, ks []int, obs Observer) ([]core.DesignReport, error) {
	return e.design2SVA(ctx, models, kind, ks, obs)
}

func (e *Engine) design2SVA(ctx context.Context, models []llm.Model, kind string, ks []int, obs Observer) ([]core.DesignReport, error) {
	g, err := e.DesignGrid(ctx, models, kind, obs)
	if err != nil {
		return nil, err
	}
	return g.DesignReports(kind, ks), nil
}

// judgeDesignMemo memoizes core.JudgeDesign per (kind, instance,
// snippet). Duplicate computation under contention is possible but
// harmless: the judgment is deterministic.
func (e *Engine) judgeDesignMemo(ctx context.Context, kind string, inst *rtlgen.Instance, code string) designCell {
	st := e.st
	if st.designMemo == nil {
		syn, prov := core.JudgeDesign(inst, code, e.mcOptions(ctx))
		return designCell{syntax: syn, proven: prov}
	}
	key := kind + "\x00" + inst.ID + "\x00" + code
	st.designMu.Lock()
	c, ok := st.designMemo[key]
	st.designMu.Unlock()
	if ok {
		obs.SpanFrom(ctx).SetBool("memo_hit", true)
		return c
	}
	syn, prov := core.JudgeDesign(inst, code, e.mcOptions(ctx))
	c = designCell{syntax: syn, proven: prov}
	st.designMu.Lock()
	st.designMemo[key] = c
	st.designMu.Unlock()
	return c
}

// ---- one-shot conveniences ----------------------------------------------

// RunNL2SVAHuman runs Table 1's evaluation on a fresh engine.
func RunNL2SVAHuman(models []llm.Model, cfg Config) ([]core.ModelReport, error) {
	return New(cfg).NL2SVAHuman(context.Background(), models, nil)
}

// RunNL2SVAHumanPassK runs Table 2's evaluation on a fresh engine.
func RunNL2SVAHumanPassK(models []llm.Model, ks []int, cfg Config) ([]core.PassKReport, error) {
	return New(cfg).NL2SVAHumanPassK(context.Background(), models, ks, nil)
}

// RunNL2SVAMachine runs one shot-setting of Table 3 on a fresh engine.
func RunNL2SVAMachine(models []llm.Model, shots, count int, cfg Config) ([]core.ModelReport, error) {
	return New(cfg).NL2SVAMachine(context.Background(), models, shots, count, nil)
}

// RunNL2SVAMachinePassK runs Table 4's evaluation on a fresh engine.
func RunNL2SVAMachinePassK(models []llm.Model, ks []int, count int, cfg Config) ([]core.PassKReport, error) {
	return New(cfg).NL2SVAMachinePassK(context.Background(), models, ks, count, nil)
}

// RunDesign2SVA runs one category half of Table 5 on a fresh engine.
func RunDesign2SVA(models []llm.Model, kind string, cfg Config) ([]core.DesignReport, error) {
	return New(cfg).Design2SVA(context.Background(), models, kind, nil)
}

// Figure6 runs the NL2SVA-Human evaluation and renders the BLEU-vs-
// functional-correctness correlation analysis.
func (e *Engine) Figure6(ctx context.Context, models []llm.Model, obs Observer) (string, error) {
	reports, err := e.NL2SVAHuman(ctx, models, obs)
	if err != nil {
		return "", err
	}
	return core.Figure6(reports), nil
}
