package engine

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"fveval/internal/core"
	"fveval/internal/fault"
	"fveval/internal/llm"
)

func TestRunHumanSmall(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o"), llm.ModelByName("llama-3-8b")}
	reports, err := RunNL2SVAHuman(models, Config{Limit: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports: %d", len(reports))
	}
	for _, r := range reports {
		if r.Count != 12 {
			t.Fatalf("%s: count %d", r.Model, r.Count)
		}
		if r.Partial < r.Func {
			t.Fatalf("%s: partial %f < func %f", r.Model, r.Partial, r.Func)
		}
		if r.Syntax < r.Partial {
			t.Fatalf("%s: syntax %f < partial %f", r.Model, r.Syntax, r.Partial)
		}
	}
	// the stronger model should not lose to the weakest by a wide
	// margin on this slice
	if reports[0].Func+0.3 < reports[1].Func {
		t.Fatalf("gpt-4o proxy unexpectedly weak: %f vs %f", reports[0].Func, reports[1].Func)
	}
	out := core.FormatTable1(reports)
	if !strings.Contains(out, "gpt-4o") {
		t.Fatalf("table must mention models:\n%s", out)
	}
}

func TestRunMachineSmallBothShots(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gemini-1.5-pro")}
	zero, err := RunNL2SVAMachine(models, 0, 20, Config{})
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunNL2SVAMachine(models, 3, 20, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// gemini-1.5-pro has the paper's dramatic 0-shot -> 3-shot syntax
	// jump (0.467 -> 0.880); with only 20 instances allow wide noise
	// but demand an improvement.
	if three[0].Syntax <= zero[0].Syntax {
		t.Errorf("3-shot syntax (%f) must beat 0-shot (%f) for gemini-1.5-pro",
			three[0].Syntax, zero[0].Syntax)
	}
	tbl := core.FormatTable3(zero, three)
	if !strings.Contains(tbl, "gemini-1.5-pro") {
		t.Fatalf("table 3 malformed:\n%s", tbl)
	}
}

func TestPassKImprovesOverPass1(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o")}
	reports, err := RunNL2SVAHumanPassK(models, []int{1, 3, 5}, Config{Limit: 15, Samples: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	if r.FuncK[5] < r.FuncK[1] {
		t.Errorf("func@5 (%f) must be >= func@1 (%f)", r.FuncK[5], r.FuncK[1])
	}
	if r.SyntaxK[5] < r.SyntaxK[1] {
		t.Errorf("syntax@5 must be >= syntax@1")
	}
	if core.FormatTable2(reports) == "" {
		t.Fatalf("table 2 must render")
	}
}

func TestRunDesignSmall(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o")}
	reports, err := RunDesign2SVA(models, "fsm", Config{Limit: 4, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	if r.SyntaxK[5] < r.SyntaxK[1] || r.FuncK[5] < r.FuncK[1] {
		t.Fatalf("pass@5 must dominate pass@1: %+v", r)
	}
	if core.FormatTable5(reports, reports) == "" {
		t.Fatalf("table 5 must render")
	}
}

// TestDeterministicAcrossWorkerCounts demands byte-identical rendered
// tables for 1 vs 8 workers on every sub-benchmark flow.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o"), llm.ModelByName("llama-3.1-70b")}
	render := func(workers int) string {
		cfg := Config{Limit: 10, Samples: 3, Workers: workers}
		var b strings.Builder
		t1, err := RunNL2SVAHuman(models, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(core.FormatTable1(t1))
		t2, err := RunNL2SVAHumanPassK(models, []int{1, 3, 5}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(core.FormatTable2(t2))
		t4, err := RunNL2SVAMachinePassK(models, []int{1, 3, 5}, 20, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(core.FormatTable4(t4))
		t5, err := RunDesign2SVA(models, "fsm", cfg)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(core.FormatTable5(t5, t5))
		b.WriteString(core.Figure6(t1))
		return b.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("tables differ between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serial, parallel)
	}
}

// TestCacheDoesNotChangeVerdicts checks cache-on vs cache-off verdict
// equality, outcome by outcome, on the machine dataset.
func TestCacheDoesNotChangeVerdicts(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o"), llm.ModelByName("gemini-1.5-flash")}
	cached, err := RunNL2SVAMachinePassK(models, []int{1, 5}, 15, Config{Samples: 4})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := RunNL2SVAMachinePassK(models, []int{1, 5}, 15, Config{Samples: 4, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := core.FormatTable4(cached), core.FormatTable4(uncached); got != want {
		t.Fatalf("cache changed the table:\n--- cached ---\n%s\n--- uncached ---\n%s", got, want)
	}
	// outcome-level equality on the greedy flow too
	ec := New(Config{Limit: 20})
	eu := New(Config{Limit: 20, NoCache: true})
	rc, err := ec.NL2SVAMachine(context.Background(), models, 3, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := eu.NL2SVAMachine(context.Background(), models, 3, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m := range rc {
		for i := range rc[m].Outcomes {
			c, u := rc[m].Outcomes[i], ru[m].Outcomes[i]
			if c != u {
				t.Fatalf("outcome %d diverged: cached %+v uncached %+v", i, c, u)
			}
		}
	}
	if st := ec.CacheStats(); st.Hits+st.Misses == 0 {
		t.Fatalf("cached engine saw no cache traffic")
	}
	if st := eu.CacheStats(); st.Hits+st.Misses != 0 {
		t.Fatalf("uncached engine counted cache traffic: %+v", st)
	}
}

// TestCacheHitsOnPassK verifies the run-wide cache actually collapses
// duplicate equivalence queries in a pass@k run.
func TestCacheHitsOnPassK(t *testing.T) {
	e := New(Config{Limit: 10, Samples: 5})
	models := []llm.Model{llm.ModelByName("gpt-4o"), llm.ModelByName("llama-3.1-70b")}
	if _, err := e.NL2SVAMachinePassK(context.Background(), models, []int{1, 5}, 10, nil); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("expected duplicate queries across samples/models to hit: %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Fatalf("hit rate out of range: %f", st.HitRate())
	}
}

// TestShardsPartitionInstances checks that shard slices are disjoint,
// cover the full instance list, and agree with the unsharded run on
// the instances they own.
func TestShardsPartitionInstances(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o")}
	full, err := RunNL2SVAHuman(models, Config{Limit: 12})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]core.Outcome{}
	for _, o := range full[0].Outcomes {
		byID[o.InstanceID] = o
	}
	seen := map[string]bool{}
	const n = 3
	for i := 0; i < n; i++ {
		part, err := RunNL2SVAHuman(models, Config{Limit: 12, Shard: Shard{Index: i, Count: n}})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range part[0].Outcomes {
			if seen[o.InstanceID] {
				t.Fatalf("instance %s appears in two shards", o.InstanceID)
			}
			seen[o.InstanceID] = true
			if want, ok := byID[o.InstanceID]; !ok || want != o {
				t.Fatalf("shard outcome for %s diverges from full run", o.InstanceID)
			}
		}
	}
	if len(seen) != len(byID) {
		t.Fatalf("shards cover %d of %d instances", len(seen), len(byID))
	}
}

func TestShardValidate(t *testing.T) {
	for _, s := range []Shard{{}, {Index: 0, Count: 1}, {Index: 2, Count: 3}} {
		if err := s.Validate(); err != nil {
			t.Fatalf("valid shard %v rejected: %v", s, err)
		}
	}
	for _, s := range []Shard{{Index: 3, Count: 3}, {Index: -1, Count: 2}, {Index: 0, Count: -1}} {
		if err := s.Validate(); err == nil {
			t.Fatalf("invalid shard %v accepted", s)
		}
	}
	if (Shard{}).Enabled() || (Shard{Count: 1}).Enabled() {
		t.Fatalf("trivial shards must be disabled")
	}
	if !(Shard{Index: 1, Count: 2}).Enabled() {
		t.Fatalf("real shard must be enabled")
	}
}

func TestEngineFigure6(t *testing.T) {
	e := New(Config{Limit: 10})
	out, err := e.Figure6(context.Background(), []llm.Model{llm.ModelByName("gpt-4o")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "corr(BLEU, Func)") {
		t.Fatalf("figure 6 malformed:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	e := New(Config{})
	cfg := e.Config()
	if cfg.Budget != 200000 || cfg.Workers < 1 || cfg.Samples != 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{{}, {Limit: 3, Samples: 5, Workers: 2, Budget: 1000, MaxBound: 8}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Fatalf("valid config %+v rejected: %v", c, err)
		}
	}
	bad := []Config{
		{Limit: -1},
		{Samples: -2},
		{Budget: -5},
		{MaxBound: -1},
		{Workers: -3},
		{Shard: Shard{Index: 2, Count: 2}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid config %+v accepted", c)
		}
	}
	// New must fail loudly on a malformed config instead of clamping.
	defer func() {
		if recover() == nil {
			t.Fatalf("New accepted negative Workers")
		}
	}()
	New(Config{Workers: -1})
}

// TestObserverStreamsEveryJob checks the per-job progress feed: one
// event per grid cell, serialized, with a monotonically increasing
// done counter reaching the grid total.
func TestObserverStreamsEveryJob(t *testing.T) {
	e := New(Config{Limit: 6, Samples: 2, Workers: 4})
	models := []llm.Model{llm.ModelByName("gpt-4o"), llm.ModelByName("llama-3-8b")}
	var events []Progress
	_, err := e.NL2SVAHumanPassK(context.Background(), models, []int{1, 2}, func(p Progress) {
		events = append(events, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 6 * 2 // models × instances × samples
	if len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != want {
			t.Fatalf("event %d: done %d/%d, want %d/%d", i, ev.Done, ev.Total, i+1, want)
		}
		if ev.Model == "" || ev.InstanceID == "" {
			t.Fatalf("event %d missing identity: %+v", i, ev)
		}
	}
}

// TestCancellationStopsRun checks both a pre-cancelled context and a
// cancellation triggered mid-run from the progress observer.
func TestCancellationStopsRun(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o")}
	e := New(Config{Limit: 12, Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.NL2SVAHuman(ctx, models, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	_, err := e.NL2SVAHumanPassK(ctx, models, []int{1}, func(p Progress) {
		if seen.Add(1) == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel returned %v, want context.Canceled", err)
	}
	if n := seen.Load(); n < 2 || n >= 12*5 {
		t.Fatalf("cancelled run completed %d jobs, want a strict prefix past 2", n)
	}
}

// TestReconfigureSharesCache checks that a derived engine reuses the
// base engine's equivalence cache, and that flipping NoCache detaches
// it instead of leaking memoized verdicts.
func TestReconfigureSharesCache(t *testing.T) {
	base := New(Config{Limit: 8})
	models := []llm.Model{llm.ModelByName("gpt-4o")}
	if _, err := base.NL2SVAHuman(context.Background(), models, nil); err != nil {
		t.Fatal(err)
	}
	warm := base.CacheStats()
	if warm.Misses == 0 {
		t.Fatalf("base run recorded no cache traffic")
	}

	derived, err := base.Reconfigure(Config{Limit: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if derived.st != base.st {
		t.Fatalf("derived engine did not share the memo pool")
	}
	if _, err := derived.NL2SVAHuman(context.Background(), models, nil); err != nil {
		t.Fatal(err)
	}
	// The shared judgment memo absorbs the duplicate workload before it
	// reaches the equivalence cache, so no new misses may appear.
	if after := derived.CacheStats(); after.Misses != warm.Misses {
		t.Fatalf("derived run re-solved memoized judgments: before %+v after %+v", warm, after)
	}

	detached, err := base.Reconfigure(Config{Limit: 8, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if detached.st == base.st {
		t.Fatalf("NoCache engine must not share a caching memo pool")
	}
	if st := detached.CacheStats(); st.Hits+st.Misses != 0 {
		t.Fatalf("NoCache engine inherited cache traffic: %+v", st)
	}
	if _, err := base.Reconfigure(Config{Limit: -4}); err == nil {
		t.Fatalf("Reconfigure accepted a negative Limit")
	}
}

// TestEngineJobFaultFailsRun drives the engine.job injection point: a
// fired fault aborts the grid through the cancel cause, so the caller
// sees the injected error — not a bare context.Canceled that would
// misclassify the run as cancelled by the user.
func TestEngineJobFaultFailsRun(t *testing.T) {
	defer fault.Reset()
	if err := fault.Activate(fault.Plan{Points: map[string]fault.PointPlan{
		fault.EngineJob: {Count: 1, Skip: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	e := New(Config{Limit: 12, Workers: 2})
	_, err := e.NL2SVAHuman(context.Background(), []llm.Model{llm.ModelByName("gpt-4o")}, nil)
	if err == nil || !strings.Contains(err.Error(), fault.EngineJob) {
		t.Fatalf("injected engine.job fault returned %v, want the injected cause", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("injected fault surfaced as a user cancel: %v", err)
	}
}
