package engine

import (
	"context"

	"fveval/internal/core"
	"fveval/internal/helpergen"
	"fveval/internal/llm"
	"fveval/internal/obs"
)

// ---- AGR (assertion-guided helper generation) ---------------------------

type helperCell struct{ syntax, valid, unlocked bool }

// HelperGrid evaluates the AGR grid (DESIGN.md §12): for each
// helpergen instance, models are prompted with the design, the bench,
// and the stuck target assertion, and their helper-set responses run
// through the prove-then-assume lemma pipeline. Always sampled, like
// Design2SVA. Outcome mapping: Syntax = the helper set parses and
// elaborates, Partial = every helper is itself proved (helper
// validity), Full = the target is unlocked.
func (e *Engine) HelperGrid(ctx context.Context, models []llm.Model, obs Observer) (*Grid, error) {
	kept, total := clip(helpergen.Sweep(), e.cfg)
	n := e.passKSamples()
	prompts := make([]*llm.Prompt, len(kept))
	for i, inst := range kept {
		prompts[i] = llm.BuildHelperPrompt(inst)
	}
	outs, err := e.runGrid(ctx, names(models), len(kept), n, func(jctx context.Context, j job) core.Outcome {
		inst := kept[j.inst]
		resp := generate(jctx, models[j.model], prompts[j.inst], j.sample)
		code := llm.ExtractCode(resp)
		c := e.judgeHelperMemo(jctx, inst, code)
		return core.Outcome{InstanceID: inst.ID, Response: code, Syntax: c.syntax, Partial: c.valid, Full: c.unlocked}
	}, obs)
	if err != nil {
		return nil, err
	}
	return e.newGrid(names(models), total, len(kept), n, outs), nil
}

// judgeHelperMemo memoizes core.JudgeHelper per (instance, snippet).
// Duplicate computation under contention is possible but harmless:
// the judgment is deterministic.
func (e *Engine) judgeHelperMemo(ctx context.Context, inst *helpergen.Instance, code string) helperCell {
	st := e.st
	if st.helperMemo == nil {
		syn, valid, unlocked := core.JudgeHelper(inst, code, e.mcOptions(ctx))
		return helperCell{syntax: syn, valid: valid, unlocked: unlocked}
	}
	key := inst.ID + "\x00" + code
	st.helperMu.Lock()
	c, ok := st.helperMemo[key]
	st.helperMu.Unlock()
	if ok {
		obs.SpanFrom(ctx).SetBool("memo_hit", true)
		return c
	}
	syn, valid, unlocked := core.JudgeHelper(inst, code, e.mcOptions(ctx))
	c = helperCell{syntax: syn, valid: valid, unlocked: unlocked}
	st.helperMu.Lock()
	st.helperMemo[key] = c
	st.helperMu.Unlock()
	return c
}

// ---- CEX-guided refinement ----------------------------------------------

// RefinementGrid evaluates the NL2SVA-Machine pass@k grid with the
// CEX-guided refinement loop at a retry budget (Figure R's x-axis):
// each model is wrapped in an llm.FeedbackModel whose check renders
// the formal backend's witness traces into the retry prompt
// (core.RefineFeedback), so a candidate refuted by the equivalence
// checker retries against the concrete counterexample. rounds <= 0
// disables refinement — that grid is byte-identical to MachineGrid's.
// Model names on the returned grid are the BASE names, so pass@k
// columns line up across rounds in the figure.
func (e *Engine) RefinementGrid(ctx context.Context, models []llm.Model, rounds, count int, obs Observer) (*Grid, error) {
	kept, total := clip(core.LoadMachine(count), e.cfg)
	n := e.passKSamples()
	byID := make(map[string]*core.MachineInstance, len(kept))
	for _, in := range kept {
		byID[in.ID] = in
	}
	check := func(p *llm.Prompt, resp string) error {
		in := byID[p.InstanceID]
		if in == nil {
			return nil
		}
		return core.RefineFeedback(resp, in.Reference, in.Sigs, e.st.cache, e.equivOptions(context.Background()))
	}
	maxRetries := rounds
	if rounds <= 0 {
		maxRetries = -1 // explicit FeedbackModel contract: disabled
	}
	wrapped := make([]llm.Model, len(models))
	for i, m := range models {
		wrapped[i] = &llm.FeedbackModel{
			Base:       m,
			Check:      check,
			MaxRetries: maxRetries,
			Rounds:     &e.st.refineRounds,
		}
	}
	prompts := make([]*llm.Prompt, len(kept))
	for i, in := range kept {
		prompts[i] = llm.BuildMachinePrompt(in.ID, in.NL, 3, in.Reference)
	}
	outs, err := e.runGrid(ctx, names(models), len(kept), n, func(jctx context.Context, j job) core.Outcome {
		in := kept[j.inst]
		resp := generate(jctx, wrapped[j.model], prompts[j.inst], j.sample)
		return e.judgeTranslation(jctx, datasetMachine, in.ID, resp, in.Reference, in.Sigs)
	}, obs)
	if err != nil {
		return nil, err
	}
	return e.newGrid(names(models), total, len(kept), n, outs), nil
}

// RefineRounds reports the cumulative FeedbackModel retry rounds
// performed on this engine's pool; callers diff before/after a run to
// surface the per-run count.
func (e *Engine) RefineRounds() int64 { return e.st.refineRounds.Load() }
