package engine

import (
	"context"
	"testing"

	"fveval/internal/core"
	"fveval/internal/llm"
)

// TestPrefilterDoesNotChangeTables pins the refute-only contract at
// the engine level: with the simulation prefilter at its default, at a
// high pattern count, and fully disabled, every rendered table and
// every per-instance outcome is byte-identical — the prefilter may
// only ever replace a SAT call, never change its answer.
func TestPrefilterDoesNotChangeTables(t *testing.T) {
	models := []llm.Model{llm.ModelByName("gpt-4o"), llm.ModelByName("gemini-1.5-flash")}

	variants := []Config{
		{Samples: 3},                   // default prefilter (128 patterns)
		{Samples: 3, SimPatterns: 512}, // heavier prefilter
		{Samples: 3, NoSim: true},      // pure SAT
	}
	var tables []string
	for _, cfg := range variants {
		reports, err := RunNL2SVAMachinePassK(models, []int{1, 3}, 12, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, core.FormatTable4(reports))
	}
	for i := 1; i < len(tables); i++ {
		if tables[i] != tables[0] {
			t.Fatalf("prefilter variant %d changed the table:\n--- default ---\n%s\n--- variant ---\n%s",
				i, tables[0], tables[i])
		}
	}

	// Outcome-level equality on the greedy machine flow and the mc-backed
	// design flow.
	ctx := context.Background()
	eOn := New(Config{Limit: 12})
	eOff := New(Config{Limit: 12, NoSim: true})
	on, err := eOn.NL2SVAMachine(ctx, models, 0, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	off, err := eOff.NL2SVAMachine(ctx, models, 0, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m := range on {
		for i := range on[m].Outcomes {
			if on[m].Outcomes[i] != off[m].Outcomes[i] {
				t.Fatalf("outcome %d diverged: prefilter %+v pure-SAT %+v",
					i, on[m].Outcomes[i], off[m].Outcomes[i])
			}
		}
	}
	if eOn.SimStats().Patterns == 0 {
		t.Fatal("prefilter engine simulated nothing; the comparison is vacuous")
	}
	if eOff.SimStats().Patterns != 0 {
		t.Fatalf("NoSim engine still simulated: %+v", eOff.SimStats())
	}

	dOn := New(Config{Limit: 2, Samples: 2})
	dOff := New(Config{Limit: 2, Samples: 2, NoSim: true})
	designModels := llm.DesignModels()[:2]
	ron, err := dOn.Design2SVA(ctx, designModels, "fsm", nil)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := dOff.Design2SVA(ctx, designModels, "fsm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := core.FormatTable5(nil, ron), core.FormatTable5(nil, roff); got != want {
		t.Fatalf("prefilter changed the design table:\n--- on ---\n%s\n--- off ---\n%s", got, want)
	}
}

// TestPrefilterBankSurvivesReconfigure checks the pattern bank lives
// in the shareable pool: a derived engine keeps refuting from the
// base engine's learned counterexamples.
func TestPrefilterBankSurvivesReconfigure(t *testing.T) {
	base := New(Config{Limit: 8})
	derived, err := base.Reconfigure(Config{Limit: 8, MaxBound: 12})
	if err != nil {
		t.Fatal(err)
	}
	if base.st.bank != derived.st.bank {
		t.Fatal("Reconfigure did not share the pattern bank")
	}
	detached, err := base.Reconfigure(Config{Limit: 8, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.st.bank == detached.st.bank {
		t.Fatal("NoCache reconfigure should detach the pool (bank included)")
	}
}
