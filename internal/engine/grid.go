package engine

import (
	"fmt"
	"sort"

	"fveval/internal/core"
)

// Grid is the raw outcome lattice of one evaluation: every judged
// (model, instance, sample) cell in deterministic slot order, plus the
// provenance needed to place a shard's slice back onto the full
// instance axis — the shard spec and the pre-shard instance count.
// Grids are the unit of distributed evaluation: a worker ships its
// shard's grid, MergeGrids reassembles the full lattice, and the
// aggregation helpers fold slots in exactly the order a single-process
// run would, so merged reports are byte-identical to unsharded ones.
//
// Grids round-trip through JSON losslessly (encoding/json preserves
// float64 values exactly), which makes them safe to ship over the
// fvevald wire and re-aggregate on the coordinator.
type Grid struct {
	// Models is the model-name axis, in evaluation order.
	Models []string `json:"models"`
	// Total is the instance count after Limit but before sharding;
	// Local is this shard's instance count. For an unsharded grid the
	// two are equal.
	Total int `json:"total"`
	Local int `json:"local"`
	// Samples is n, the samples drawn per instance (1 for greedy).
	Samples int `json:"samples"`
	// Shard records which slice of the instance axis this grid holds.
	Shard Shard `json:"shard,omitzero"`
	// Outcomes[m][j*Samples+s] is model m, shard-local instance j,
	// sample s. The global instance index of local j is
	// Shard.Index + j*Shard.Count (identity when sharding is off).
	Outcomes [][]core.Outcome `json:"outcomes"`
}

// newGrid wraps a runGrid result with this engine's shard provenance.
func (e *Engine) newGrid(models []string, total, local, samples int, outs [][]core.Outcome) *Grid {
	return &Grid{
		Models: models, Total: total, Local: local, Samples: samples,
		Shard: e.cfg.Shard, Outcomes: outs,
	}
}

// ModelReports folds the grid into per-model greedy reports, visiting
// slots in grid order (the fold Aggregate documents as deterministic).
func (g *Grid) ModelReports() []core.ModelReport {
	reports := make([]core.ModelReport, 0, len(g.Models))
	for m, name := range g.Models {
		reports = append(reports, core.Aggregate(name, g.Outcomes[m]))
	}
	return reports
}

// PassKReports folds the grid into per-model pass@k reports.
func (g *Grid) PassKReports(ks []int) []core.PassKReport {
	reports := make([]core.PassKReport, 0, len(g.Models))
	for m, name := range g.Models {
		reports = append(reports, core.AggregatePassK(name, g.Local, g.Samples, ks, g.Outcomes[m]))
	}
	return reports
}

// DesignReports folds the grid into per-model Design2SVA reports.
func (g *Grid) DesignReports(kind string, ks []int) []core.DesignReport {
	reports := make([]core.DesignReport, 0, len(g.Models))
	for m, name := range g.Models {
		reports = append(reports, core.AggregateDesign(name, kind, g.Local, g.Samples, ks, g.Outcomes[m]))
	}
	return reports
}

// shardLen is the number of global instances a shard holds: the count
// of positions p in [0, total) with p mod Count == Index.
func shardLen(total int, s Shard) int {
	if !s.Enabled() {
		return total
	}
	if total <= s.Index {
		return 0
	}
	return (total-s.Index-1)/s.Count + 1
}

// MergeGrids reassembles a complete instance axis from shard grids.
// The parts may arrive in any order (the merge sorts by shard index,
// so it is commutative); they must form an exact partition — every
// shard of one Count present exactly once — and agree on the model
// axis, the pre-shard instance count, and the sample count. Each
// shard-local slot lands at its global position, so folding the merged
// grid is byte-identical to folding a single-process run.
//
// A single unsharded grid merges to itself, letting callers treat
// one-worker plans uniformly.
func MergeGrids(parts []*Grid) (*Grid, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("engine: merge of zero grids")
	}
	sorted := append([]*Grid(nil), parts...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Shard.Index < sorted[j].Shard.Index
	})
	first := sorted[0]
	if !first.Shard.Enabled() {
		if len(sorted) != 1 {
			return nil, fmt.Errorf("engine: unsharded grid in a %d-part merge", len(sorted))
		}
		return first, nil
	}
	n := first.Shard.Count
	if len(sorted) != n {
		return nil, fmt.Errorf("engine: merge got %d shards, want %d", len(sorted), n)
	}
	merged := &Grid{
		Models: first.Models, Total: first.Total, Local: first.Total,
		Samples:  first.Samples,
		Outcomes: make([][]core.Outcome, len(first.Models)),
	}
	for m := range merged.Outcomes {
		merged.Outcomes[m] = make([]core.Outcome, first.Total*first.Samples)
	}
	for i, g := range sorted {
		if g.Shard.Count != n || g.Shard.Index != i {
			return nil, fmt.Errorf("engine: broken shard partition: got %s at position %d of %d", g.Shard, i, n)
		}
		if g.Total != first.Total || g.Samples != first.Samples {
			return nil, fmt.Errorf("engine: shard %s disagrees on grid shape (%d×%d vs %d×%d instances×samples)",
				g.Shard, g.Total, g.Samples, first.Total, first.Samples)
		}
		if len(g.Models) != len(first.Models) {
			return nil, fmt.Errorf("engine: shard %s disagrees on the model axis", g.Shard)
		}
		for m := range g.Models {
			if g.Models[m] != first.Models[m] {
				return nil, fmt.Errorf("engine: shard %s disagrees on the model axis", g.Shard)
			}
		}
		if want := shardLen(g.Total, g.Shard); g.Local != want {
			return nil, fmt.Errorf("engine: shard %s holds %d instances, want %d of %d", g.Shard, g.Local, want, g.Total)
		}
		for m := range g.Outcomes {
			if len(g.Outcomes[m]) != g.Local*g.Samples {
				return nil, fmt.Errorf("engine: shard %s model %s has %d slots, want %d",
					g.Shard, g.Models[m], len(g.Outcomes[m]), g.Local*g.Samples)
			}
			for j := 0; j < g.Local; j++ {
				global := g.Shard.Index + j*n
				copy(merged.Outcomes[m][global*g.Samples:(global+1)*g.Samples],
					g.Outcomes[m][j*g.Samples:(j+1)*g.Samples])
			}
		}
	}
	return merged, nil
}
