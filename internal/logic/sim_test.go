package logic

import (
	"math/rand"
	"testing"
)

// randomCircuit builds a DAG of random gates over nVars inputs and
// returns the inputs plus a set of probe nodes.
func randomCircuit(rng *rand.Rand, b *Builder, nVars, nGates int) ([]Node, []Node) {
	inputs := make([]Node, nVars)
	for i := range inputs {
		inputs[i] = b.Input("x")
	}
	pool := append([]Node{True, False}, inputs...)
	for i := 0; i < nGates; i++ {
		x := pool[rng.Intn(len(pool))]
		y := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			x = x.Not()
		}
		var n Node
		switch rng.Intn(4) {
		case 0:
			n = b.And(x, y)
		case 1:
			n = b.Or(x, y)
		case 2:
			n = b.Xor(x, y)
		default:
			n = b.Mux(x, y, pool[rng.Intn(len(pool))])
		}
		pool = append(pool, n)
	}
	return inputs, pool
}

// TestSimMatchesEval cross-checks the 64-lane bit-parallel evaluator
// against the single-pattern Eval wrapper on random circuits: every
// lane of every node must agree with a scalar evaluation of that
// lane's assignment.
func TestSimMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		b := NewBuilder()
		inputs, pool := randomCircuit(rng, b, 6, 60)

		sim := NewSim(b)
		words := make([]uint64, len(inputs))
		for i, in := range inputs {
			words[i] = rng.Uint64()
			sim.SetInput(in, words[i])
		}
		sim.Run()

		for _, lane := range []int{0, 1, 17, 63} {
			env := map[Node]bool{}
			for i, in := range inputs {
				env[in] = words[i]>>uint(lane)&1 == 1
			}
			cache := map[int32]bool{}
			for _, n := range pool {
				if got, want := sim.Bit(n, lane), b.Eval(n, env, cache); got != want {
					t.Fatalf("trial %d lane %d node %d: sim=%v eval=%v", trial, lane, n, got, want)
				}
			}
		}
	}
}

// TestSimIncrementalGrowth checks that a Sim keeps working as its
// builder grows between runs — the prefilter's usage pattern across a
// bound ramp.
func TestSimIncrementalGrowth(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	g1 := b.And(x, y)
	sim := NewSim(b)
	sim.SetInput(x, 0b1100)
	sim.SetInput(y, 0b1010)
	sim.Run()
	if sim.Val(g1)&0xF != 0b1000 {
		t.Fatalf("and lanes = %b", sim.Val(g1)&0xF)
	}
	z := b.Input("z")
	g2 := b.Or(g1, z)
	sim.SetInput(z, 0b0001)
	sim.Run()
	if sim.Val(g2)&0xF != 0b1001 {
		t.Fatalf("or lanes after growth = %b", sim.Val(g2)&0xF)
	}
	if lane, ok := sim.FirstLane(g2); !ok || lane != 0 {
		t.Fatalf("FirstLane = %d, %v", lane, ok)
	}
	if _, ok := sim.FirstLane(b.And(g2, g2.Not())); ok {
		t.Fatal("FirstLane found a lane for constant false")
	}
}

// TestEvalCacheSpill pins the Eval wrapper contract: a shared cache
// makes repeated queries under one env O(1), and complemented nodes
// read correctly through it.
func TestEvalCacheSpill(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	n := b.Xor(x, y)
	env := map[Node]bool{x: true}
	cache := map[int32]bool{}
	if !b.Eval(n, env, cache) {
		t.Fatal("x xor y with x=1 y=0 should be true")
	}
	if len(cache) == 0 {
		t.Fatal("cache was not populated")
	}
	if b.Eval(n.Not(), env, cache) {
		t.Fatal("complement read through cache is wrong")
	}
}
