// Bit-parallel circuit simulation. A Sim evaluates every node of a
// Builder's DAG 64 patterns at a time over a dense []uint64 value
// slice — one word per node, one pattern per bit lane, no maps and no
// per-node dispatch. Node indices are topological by construction (a
// gate only ever references already-allocated nodes), so a full
// evaluation is a single linear pass of AND/NOT word operations.
//
// The formal backend uses Sim as a refute-before-solve prefilter
// (DESIGN.md §10): random and recycled counterexample patterns are
// simulated over the violation cone before any SAT call, and a lane
// that satisfies the cone is a complete concrete witness — the solver
// is skipped entirely. The same machinery, run one lane wide, backs
// Builder.Eval and the counterexample decoders.
package logic

import "math/bits"

// Sim is a 64-lane bit-parallel evaluator over one Builder. The
// builder may keep growing between runs: Run always evaluates the
// current node table, and the value slice grows with it. A Sim is not
// safe for concurrent use.
type Sim struct {
	b    *Builder
	vals []uint64 // per node index; bit j = lane j's value
}

// NewSim creates an evaluator for the builder's circuit.
func NewSim(b *Builder) *Sim { return &Sim{b: b} }

// grow sizes the value slice to the builder's current node table.
func (s *Sim) grow() {
	if n := len(s.b.gates); len(s.vals) < n {
		s.vals = append(s.vals, make([]uint64, n-len(s.vals))...)
	}
}

// SetInput assigns the 64-lane word of an input node (non-complemented
// form). Inputs never assigned hold zero in every lane.
func (s *Sim) SetInput(n Node, w uint64) {
	s.grow()
	s.vals[n.index()] = w
}

// Run evaluates every gate of the circuit in one linear pass over the
// dense value slice. Input words must be set (or left zero) first;
// gate results overwrite whatever a previous Run left behind.
func (s *Sim) Run() {
	s.grow()
	gates := s.b.gates
	isVar := s.b.isVar
	vals := s.vals
	vals[0] = 0 // constant false in every lane
	for i := 1; i < len(gates); i++ {
		if isVar[i] {
			continue
		}
		g := gates[i]
		a := vals[g.a>>1]
		if g.a&1 == 1 {
			a = ^a
		}
		bb := vals[g.b>>1]
		if g.b&1 == 1 {
			bb = ^bb
		}
		vals[i] = a & bb
	}
}

// Val returns the 64-lane word of node n after a Run.
func (s *Sim) Val(n Node) uint64 {
	v := s.vals[n.index()]
	if n.compl() {
		return ^v
	}
	return v
}

// Bit reports node n's value in one lane after a Run.
func (s *Sim) Bit(n Node, lane int) bool {
	return s.Val(n)>>uint(lane)&1 == 1
}

// FirstLane returns the lowest lane in which node n evaluates true,
// and whether any lane does — the witness-extraction primitive of the
// prefilter (the lowest set bit keeps lane choice deterministic).
func (s *Sim) FirstLane(n Node) (int, bool) {
	w := s.Val(n)
	if w == 0 {
		return 0, false
	}
	return bits.TrailingZeros64(w), true
}
